GO ?= go

.PHONY: build test check race vet lint vuln bench bench2 serve-smoke fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs the stock vet passes plus hetsynthlint, the project's own
# go/analysis-style suite (internal/lint): ctxpropagate, guardedby,
# goroutinelife, apidoc, retval. See DESIGN.md §8 for the conventions each
# analyzer enforces and how to suppress a finding with justification.
lint: vet
	$(GO) run ./cmd/hetsynthlint ./...

# vuln runs govulncheck when it is installed; local dev containers may not
# ship it, so absence is a skip, not a failure. CI installs and runs it.
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

# race limits itself to the packages with internal concurrency: the sparse
# tree-DP worker pool (internal/hap), the two-orientation expansion
# (internal/cptree), and the hetsynthd serving layer (internal/server).
race:
	$(GO) test -race ./internal/hap/... ./internal/cptree/... ./internal/server/...

# check is the tier-1 gate: vet + hetsynthlint + build + tests + race over
# the concurrent packages.
check: lint build test race

# bench runs the solver benchmark suite with allocation stats and writes the
# parsed results to BENCH_1.json (see cmd/benchjson).
bench:
	$(GO) run ./cmd/benchjson -suite core

# bench2 runs the end-to-end hetsynthd HTTP throughput benchmarks (cached /
# uncached / frontier fast path at client concurrency 1, 8, 64) and writes
# BENCH_2.json.
bench2:
	$(GO) run ./cmd/benchjson -suite server

# serve-smoke boots a real hetsynthd on a random port, solves bundled
# benchmarks over HTTP (asserting the second identical request is a cache
# hit and a deadline-only change is served from the frontier), then SIGTERMs
# the daemon and checks it drains cleanly.
serve-smoke:
	$(GO) build -o bin/hetsynthd ./cmd/hetsynthd
	$(GO) run ./cmd/servesmoke -bin bin/hetsynthd

fuzz:
	$(GO) test ./internal/hap/ -fuzz FuzzCurveMerge -fuzztime 30s
