GO ?= go

.PHONY: build test check race vet bench bench2 serve-smoke fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race limits itself to the packages with internal concurrency: the sparse
# tree-DP worker pool (internal/hap), the two-orientation expansion
# (internal/cptree), and the hetsynthd serving layer (internal/server).
race:
	$(GO) test -race ./internal/hap/... ./internal/cptree/... ./internal/server/...

# check is the tier-1 gate: vet + build + tests + race over the concurrent
# packages.
check: vet build test race

# bench runs the solver benchmark suite with allocation stats and writes the
# parsed results to BENCH_1.json (see cmd/benchjson).
bench:
	$(GO) run ./cmd/benchjson -suite core

# bench2 runs the end-to-end hetsynthd HTTP throughput benchmarks (cached /
# uncached / frontier fast path at client concurrency 1, 8, 64) and writes
# BENCH_2.json.
bench2:
	$(GO) run ./cmd/benchjson -suite server

# serve-smoke boots a real hetsynthd on a random port, solves bundled
# benchmarks over HTTP (asserting the second identical request is a cache
# hit and a deadline-only change is served from the frontier), then SIGTERMs
# the daemon and checks it drains cleanly.
serve-smoke:
	$(GO) build -o bin/hetsynthd ./cmd/hetsynthd
	$(GO) run ./cmd/servesmoke -bin bin/hetsynthd

fuzz:
	$(GO) test ./internal/hap/ -fuzz FuzzCurveMerge -fuzztime 30s
