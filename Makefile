GO ?= go

.PHONY: build test check race vet lint escape-gate vuln bench bench2 bench3 bench4 bench5 bench6 bench7 bench-compare serve-smoke serve-overload serve-admit serve-session serve-cluster fuzz cover-gate

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs the stock vet passes plus hetsynthlint, the project's own
# go/analysis-style suite (internal/lint): ctxpropagate, guardedby,
# goroutinelife, apidoc, retval, plus the dataflow generation — poolsafe,
# pinpair, arenaescape, atomicfield — and the escapebudget gate. See
# DESIGN.md §8 for the conventions each analyzer enforces and how to
# suppress a finding with justification. Package listings are cached under
# bin/lintcache/ keyed on go.mod and source mtimes, so repeat runs skip the
# go list -deps -export walk; HETSYNTHLINT_NOCACHE=1 bypasses the cache.
lint: vet
	$(GO) run ./cmd/hetsynthlint ./...

# escape-gate runs only the escape-budget gate: every // hetsynth:hotpath
# function's heap-escape count from go build -gcflags=-m must stay within
# the committed baseline internal/lint/testdata/escapes.golden. Regenerate
# the baseline after a deliberate change with:
#   go run ./cmd/hetsynthlint -update-escapes ./...
escape-gate:
	$(GO) run ./cmd/hetsynthlint -only=escapebudget ./...

# vuln runs govulncheck when it is installed; local dev containers may not
# ship it, so absence is a skip, not a failure. CI installs and runs it.
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

# race limits itself to the packages with internal concurrency: the sparse
# tree-DP worker pool (internal/hap), the two-orientation expansion
# (internal/cptree), the hetsynthd serving layer (internal/server), and the
# cluster router (internal/cluster: lock-free peer weights + the prober).
race:
	$(GO) test -race ./internal/hap/... ./internal/cptree/... ./internal/server/... ./internal/cluster/...

# cover-gate enforces statement-coverage floors on the packages the anytime,
# serving and admission work concentrates in, plus the analyzer suite that
# gates everything else. The floors are set below the measured numbers
# (hap ~93%, server ~89%, rta ~93%, sim ~92%, lint ~93%) so ordinary churn
# passes while a change that silently drops a solver, handler or analysis
# path out of the tests fails.
cover-gate:
	@mkdir -p bin
	@$(GO) test -count=1 -coverprofile=bin/cover-hap.out ./internal/hap/ > /dev/null
	@$(GO) tool cover -func=bin/cover-hap.out | awk 'END { pct = $$3 + 0; \
		if (pct < 85.0) { printf "FAIL: internal/hap coverage %.1f%% < 85.0%% floor\n", pct; exit 1 } \
		printf "internal/hap coverage %.1f%% (floor 85.0%%)\n", pct }'
	@$(GO) test -count=1 -coverprofile=bin/cover-server.out ./internal/server/ > /dev/null
	@$(GO) tool cover -func=bin/cover-server.out | awk 'END { pct = $$3 + 0; \
		if (pct < 85.0) { printf "FAIL: internal/server coverage %.1f%% < 85.0%% floor\n", pct; exit 1 } \
		printf "internal/server coverage %.1f%% (floor 85.0%%)\n", pct }'
	@$(GO) test -count=1 -coverprofile=bin/cover-rta.out ./internal/rta/ > /dev/null
	@$(GO) tool cover -func=bin/cover-rta.out | awk 'END { pct = $$3 + 0; \
		if (pct < 85.0) { printf "FAIL: internal/rta coverage %.1f%% < 85.0%% floor\n", pct; exit 1 } \
		printf "internal/rta coverage %.1f%% (floor 85.0%%)\n", pct }'
	@$(GO) test -count=1 -coverprofile=bin/cover-sim.out ./internal/sim/ > /dev/null
	@$(GO) tool cover -func=bin/cover-sim.out | awk 'END { pct = $$3 + 0; \
		if (pct < 85.0) { printf "FAIL: internal/sim coverage %.1f%% < 85.0%% floor\n", pct; exit 1 } \
		printf "internal/sim coverage %.1f%% (floor 85.0%%)\n", pct }'
	@$(GO) test -count=1 -coverprofile=bin/cover-lint.out ./internal/lint/ > /dev/null
	@$(GO) tool cover -func=bin/cover-lint.out | awk 'END { pct = $$3 + 0; \
		if (pct < 85.0) { printf "FAIL: internal/lint coverage %.1f%% < 85.0%% floor\n", pct; exit 1 } \
		printf "internal/lint coverage %.1f%% (floor 85.0%%)\n", pct }'

# check is the tier-1 gate: vet + hetsynthlint + build + tests + race over
# the concurrent packages + the coverage floors.
check: lint build test race cover-gate

# bench runs the solver benchmark suite with allocation stats and writes the
# parsed results to BENCH_1.json (see cmd/benchjson).
bench:
	$(GO) run ./cmd/benchjson -suite core

# bench2 runs the end-to-end hetsynthd HTTP throughput benchmarks (cached /
# uncached / frontier fast path at client concurrency 1, 8, 64) and writes
# BENCH_2.json.
bench2:
	$(GO) run ./cmd/benchjson -suite server

# bench3 re-runs the server suite (now including the batch-vs-individual
# sweep benchmarks) and records BENCH_3.json alongside a delta table against
# the pre-sharding BENCH_2.json baseline.
bench3:
	$(GO) run ./cmd/benchjson -suite server -out BENCH_3.json -compare BENCH_2.json

# bench4 re-runs the server suite — now including the binary-codec HTTP
# benchmarks and the direct-dispatch (no net/http floor) cached/uncached
# benchmarks — and records BENCH_4.json with a delta table against the
# pre-binary-protocol BENCH_3.json baseline.
bench4:
	$(GO) run ./cmd/benchjson -suite server -out BENCH_4.json -compare BENCH_3.json

# bench5 re-runs the server suite — now including the admission-control
# endpoint benchmarks (BenchmarkHTTPAdmitCached / Uncached) — and records
# BENCH_5.json with a delta table against the pre-admission BENCH_4.json
# baseline. The baseline is best-of-2 at full benchtime, so bench-compare
# diffs two converged minima rather than whatever the VM scheduler felt like
# during a single recording.
bench5:
	$(GO) run ./cmd/benchjson -suite server -count 2 -out BENCH_5.json -compare BENCH_4.json

# bench6 re-runs the server suite — now including the stateful-session
# benchmarks (BenchmarkHTTPPatchSolve, the single-row PATCH through the live
# incremental solver, against BenchmarkHTTPSolveUncachedTree, the identical
# edit as a from-scratch solve) — and records BENCH_6.json with a delta table
# against the pre-session BENCH_5.json baseline.
bench6:
	$(GO) run ./cmd/benchjson -suite server -count 2 -out BENCH_6.json -compare BENCH_5.json

# bench7 re-runs the server suite — which now spans internal/server AND
# internal/cluster: the consistent-hash ring lookup, affinity-key extraction
# on both wire codecs (the binary inline path is the router's zero-parse
# claim), and the end-to-end router forwarding benchmarks against real
# in-process nodes — and records BENCH_7.json with a delta table against the
# pre-cluster BENCH_6.json baseline.
bench7:
	$(GO) run ./cmd/benchjson -suite server -count 2 -out BENCH_7.json -compare BENCH_6.json

# bench-compare is the regression gate CI runs as a smoke: a short-benchtime
# server-suite run diffed against the committed BENCH_7.json, failing when a
# gated benchmark — the cached hit path (both codecs), the uncached solve
# path (both codecs), the direct-dispatch benchmarks, the admission
# endpoint, the session patch path, or the cluster routing primitives (ring
# lookup and both affinity-key extractions) — regresses by more than 25%
# ns/op or 10% allocs/op. The end-to-end BenchmarkRouterCachedSolve pair is
# recorded but not gated: it stacks two HTTP hops' worth of scheduler noise,
# too flaky for a 25% tolerance on shared runners. Each benchmark runs
# BENCHCOUNT times and gates on its fastest run (scheduler noise only slows
# runs down, so best-of-N de-flakes single-CPU runners). The benchtime floor
# matters as much as the count: 200ms runs carry a systematically higher
# per-iteration floor than the full-benchtime baseline recording and flaked
# the ~25µs HTTP benchmarks right at the 25% tolerance, so the default is
# 500ms — measured stable across repeated runs on a single-vCPU box while
# keeping the whole smoke under two minutes. BENCHTIME/BENCHCOUNT are
# overridable.
BENCHTIME ?= 500ms
BENCHCOUNT ?= 3
bench-compare:
	$(GO) run ./cmd/benchjson -suite server -out bin/bench-compare.json \
		-benchtime $(BENCHTIME) -count $(BENCHCOUNT) -compare BENCH_7.json \
		-gate 'BenchmarkHTTPSolveCached|BenchmarkHTTPSolveUncached|BenchmarkDirectSolve|BenchmarkHTTPAdmit|BenchmarkHTTPPatchSolve|BenchmarkRingRoute|BenchmarkAffinityKey'

# serve-smoke boots a real hetsynthd on a random port, solves bundled
# benchmarks over HTTP (asserting the second identical request is a cache
# hit and a deadline-only change is served from the frontier), then SIGTERMs
# the daemon and checks it drains cleanly. -wire mixed carries every solve
# over BOTH wire codecs and cross-checks the decoded answers.
serve-smoke:
	$(GO) build -o bin/hetsynthd ./cmd/hetsynthd
	$(GO) run ./cmd/servesmoke -bin bin/hetsynthd -wire mixed

# serve-overload floods a deliberately tiny hetsynthd (1 worker, 4 queue
# slots) with concurrent anytime solves under a 150ms compute deadline and
# asserts the overload contract: bounded latency, 429 + Retry-After shedding,
# and honestly reported degraded quality on the answers that did run.
serve-overload:
	$(GO) build -o bin/hetsynthd ./cmd/hetsynthd
	$(GO) run ./cmd/servesmoke -bin bin/hetsynthd -overload

# serve-admit drives the admission-control endpoint end to end: cheapest-fit
# search over a generated periodic task set, cache replay, fixed-config
# consistency and local minimality of the winner, the async job flavor, and
# the /metrics verdict ledger.
serve-admit:
	$(GO) build -o bin/hetsynthd ./cmd/hetsynthd
	$(GO) run ./cmd/servesmoke -bin bin/hetsynthd -admit

# serve-session drives the stateful-session API end to end against a real
# daemon: PUT an instance, a patch loop with client-side state mirroring and
# digest cross-checks against re-PUTs of the materialized instance, SSE
# incumbent/settled framing, and DELETE teardown.
serve-session:
	$(GO) build -o bin/hetsynthd ./cmd/hetsynthd
	$(GO) run ./cmd/servesmoke -bin bin/hetsynthd -session

# serve-cluster drives the scale-out layer end to end with real processes: a
# single-node baseline whose caches are deliberately smaller than the cyclic
# working set (the thrash case), then the same traffic through hetsynthrouter
# fronting three nodes — asserting >= 2.5x throughput from cache-affinity
# partitioning alone, a >= 90% affinity rate, and zero raw-byte key
# fallbacks — then a SIGKILL of one node mid-traffic, asserting every
# request still settles as 200 (or a 429/Retry-After deferral), the router
# records the failovers, and /healthz reports 2 live peers.
serve-cluster:
	$(GO) build -o bin/hetsynthd ./cmd/hetsynthd
	$(GO) build -o bin/hetsynthrouter ./cmd/hetsynthrouter
	$(GO) run ./cmd/servesmoke -bin bin/hetsynthd -cluster -router-bin bin/hetsynthrouter

# fuzz runs each native fuzzer for a short budget: the sparse-curve merge
# algebra, the anytime ladder under randomized deadlines, the server's JSON
# request decoder, the binary frame decoder (arbitrary bytes must yield 400s,
# never panics), the JSON/binary differential (both codecs must resolve a
# request to the same canonical digest), the admission-request decoder
# (arbitrary bytes → 400, accepted specs are valid and canonically keyed),
# and the session patch endpoint (invalid deltas → 400 with state provably
# untouched). CI runs the same targets at 10s each.
fuzz:
	$(GO) test ./internal/hap/ -run '^$$' -fuzz FuzzCurveMerge -fuzztime 30s
	$(GO) test ./internal/hap/ -run '^$$' -fuzz FuzzSolveAnytime -fuzztime 30s
	$(GO) test ./internal/server/ -run '^$$' -fuzz FuzzDecodeRequest -fuzztime 30s
	$(GO) test ./internal/server/ -run '^$$' -fuzz FuzzBinFrame -fuzztime 30s
	$(GO) test ./internal/server/ -run '^$$' -fuzz FuzzBinSolveDifferential -fuzztime 30s
	$(GO) test ./internal/server/ -run '^$$' -fuzz FuzzAdmit -fuzztime 30s
	$(GO) test ./internal/server/ -run '^$$' -fuzz FuzzPatchInstance -fuzztime 30s
