GO ?= go

.PHONY: build test check race vet bench fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race limits itself to the packages with internal concurrency: the sparse
# tree-DP worker pool (internal/hap) and the two-orientation expansion
# (internal/cptree).
race:
	$(GO) test -race ./internal/hap/... ./internal/cptree/...

# check is the tier-1 gate: vet + build + tests + race over the parallel
# packages.
check: vet build test race

# bench runs the benchmark suite with allocation stats and writes the parsed
# results to BENCH_1.json (see cmd/benchjson).
bench:
	$(GO) run ./cmd/benchjson -out BENCH_1.json

fuzz:
	$(GO) test ./internal/hap/ -fuzz FuzzCurveMerge -fuzztime 30s
