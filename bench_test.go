package hetsynth

// This file is the benchmark harness of deliverable (d): one benchmark per
// table and worked figure of the paper, plus ablation benches for the
// design choices DESIGN.md calls out. Run with
//
//	go test -bench=. -benchmem
//
// BenchmarkTable1/* and BenchmarkTable2/* regenerate the rows of the
// paper's two tables (use -v with cmd/experiments for the human-readable
// rendering); the remaining benchmarks time the individual algorithms on
// the workloads of the corresponding figures.

import (
	"fmt"
	"math/rand"
	"testing"

	"hetsynth/internal/benchdfg"
	"hetsynth/internal/cptree"
	"hetsynth/internal/dfg"
	"hetsynth/internal/exper"
	"hetsynth/internal/hap"
	"hetsynth/internal/hls"
	"hetsynth/internal/knapsack"
	"hetsynth/internal/retime"
	"hetsynth/internal/sched"
)

// benchProblem prepares a benchmark DFG with the experiment harness's
// random table and a mid-ladder deadline.
func benchProblem(b *testing.B, name string, slackSteps int) Problem {
	b.Helper()
	g, err := BenchmarkDFG(name)
	if err != nil {
		b.Fatal(err)
	}
	tab := RandomTable(2004, g.N(), 3)
	min, err := MinMakespan(g, tab)
	if err != nil {
		b.Fatal(err)
	}
	return Problem{Graph: g, Table: tab, Deadline: min + slackSteps}
}

// BenchmarkTable1 regenerates one full Table 1 row set per tree benchmark:
// greedy baseline, Tree_Assign, Once and Repeat over the six-deadline
// ladder, plus the phase-two configuration.
func BenchmarkTable1(b *testing.B) {
	for _, bench := range benchdfg.Paper() {
		if !bench.Tree {
			continue
		}
		b.Run(bench.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := exper.Run(bench, exper.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable2 regenerates one full Table 2 row set per DFG benchmark.
func BenchmarkTable2(b *testing.B) {
	for _, bench := range benchdfg.Paper() {
		if bench.Tree {
			continue
		}
		b.Run(bench.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := exper.Run(bench, exper.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSummary regenerates the §7 headline: both tables plus the
// average-reduction aggregation.
func BenchmarkSummary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t1, err := exper.Table1(exper.Options{})
		if err != nil {
			b.Fatal(err)
		}
		t2, err := exper.Table2(exper.Options{})
		if err != nil {
			b.Fatal(err)
		}
		avgOnce, avgRepeat := exper.Summary(append(t1, t2...))
		if avgOnce <= 0 || avgRepeat < avgOnce {
			b.Fatalf("summary regression: once=%.1f repeat=%.1f", avgOnce, avgRepeat)
		}
	}
}

// BenchmarkMotivational times the Figure 1–3 flow: exact assignment plus
// minimum-resource scheduling of the five-node example.
func BenchmarkMotivational(b *testing.B) {
	g := NewGraph()
	na := g.MustAddNode("A", "mul")
	nb := g.MustAddNode("B", "mul")
	nc := g.MustAddNode("C", "add")
	nd := g.MustAddNode("D", "mul")
	ne := g.MustAddNode("E", "add")
	g.MustAddEdge(na, nc, 0)
	g.MustAddEdge(nb, nc, 0)
	g.MustAddEdge(nc, ne, 0)
	g.MustAddEdge(nd, ne, 0)
	tab := NewTable(5, 3)
	tab.MustSet(0, []int{1, 2, 4}, []int64{10, 6, 2})
	tab.MustSet(1, []int{2, 3, 6}, []int64{9, 6, 1})
	tab.MustSet(2, []int{1, 2, 3}, []int64{8, 4, 2})
	tab.MustSet(3, []int{2, 4, 7}, []int64{9, 5, 2})
	tab.MustSet(4, []int{1, 3, 5}, []int64{7, 4, 1})
	p := Problem{Graph: g, Table: tab, Deadline: 6}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Synthesize(p, AlgoExact); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPathAssign times the Figure 5 dynamic program as the path length
// scales, confirming the O(n·L·K) behavior.
func BenchmarkPathAssign(b *testing.B) {
	for _, n := range []int{10, 50, 200} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := chainGraph(n)
			tab := RandomTable(5, n, 3)
			min, err := MinMakespan(g, tab)
			if err != nil {
				b.Fatal(err)
			}
			p := Problem{Graph: g, Table: tab, Deadline: min + min/2}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := hap.PathAssign(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func chainGraph(n int) *Graph {
	g := NewGraph()
	prev := g.MustAddNode("v1", "")
	for i := 2; i <= n; i++ {
		v := g.MustAddNode(fmt.Sprintf("v%d", i), "")
		g.MustAddEdge(prev, v, 0)
		prev = v
	}
	return g
}

// BenchmarkTreeAssign times the Figure 7/8 dynamic program on the paper's
// tree benchmarks.
func BenchmarkTreeAssign(b *testing.B) {
	for _, name := range []string{"4-stage-lattice", "8-stage-lattice", "volterra"} {
		b.Run(name, func(b *testing.B) {
			p := benchProblem(b, name, 6)
			for i := 0; i < b.N; i++ {
				if _, err := hap.TreeAssign(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExpand times Algorithm DFG_Expand (Figures 9–11) on the general
// DFG benchmarks.
func BenchmarkExpand(b *testing.B) {
	for _, name := range []string{"diffeq", "rls-laguerre", "elliptic"} {
		b.Run(name, func(b *testing.B) {
			g, err := BenchmarkDFG(name)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, err := cptree.ExpandBoth(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAssignAlgorithms compares all phase-one solvers on the elliptic
// filter — the per-algorithm cost/speed tradeoff behind Tables 1–2.
func BenchmarkAssignAlgorithms(b *testing.B) {
	p := benchProblem(b, "elliptic", 8)
	for _, algo := range []Algorithm{AlgoGreedy, AlgoGreedyRatio, AlgoOnce, AlgoRepeat} {
		b.Run(algo.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Solve(p, algo); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMinRScheduling times phase two (Figures 13–14) on the elliptic
// filter with the Repeat assignment.
func BenchmarkMinRScheduling(b *testing.B) {
	p := benchProblem(b, "elliptic", 8)
	sol, err := Solve(p, AlgoRepeat)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sched.MinRSchedule(p.Graph, p.Table, sol.Assign, p.Deadline); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKnapsackReduction times the §4 NP-completeness construction plus
// the optimal solve of the reduced instance.
func BenchmarkKnapsackReduction(b *testing.B) {
	in := knapsack.Instance{Capacity: 40}
	for i := 0; i < 20; i++ {
		in.Items = append(in.Items, knapsack.Item{Value: int64(10 + i*3), Weight: 1 + i%7})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		red, err := knapsack.Reduce(in)
		if err != nil {
			b.Fatal(err)
		}
		p := Problem{Graph: red.Graph, Table: red.Table, Deadline: red.Deadline}
		if _, err := hap.PathAssign(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationExactGap measures how far Repeat is from the true
// optimum on the small benchmarks (ablation E9 of DESIGN.md). It reports
// the gap as a custom metric rather than asserting, since the gap is the
// experiment's observable.
func BenchmarkAblationExactGap(b *testing.B) {
	for _, name := range []string{"diffeq", "rls-laguerre"} {
		b.Run(name, func(b *testing.B) {
			p := benchProblem(b, name, 4)
			var gap float64
			for i := 0; i < b.N; i++ {
				rep, err := Solve(p, AlgoRepeat)
				if err != nil {
					b.Fatal(err)
				}
				opt, err := Solve(p, AlgoExact)
				if err != nil {
					b.Fatal(err)
				}
				gap = 100 * float64(rep.Cost-opt.Cost) / float64(opt.Cost)
			}
			b.ReportMetric(gap, "%gap")
		})
	}
}

// BenchmarkILPvsExact reproduces the paper's comparison with the ILP of
// Ito et al. [11]: both find the optimum; the ILP pays the formulation
// overhead. Run both sub-benchmarks to see the speed ratio.
func BenchmarkILPvsExact(b *testing.B) {
	p := benchProblem(b, "diffeq", 4)
	b.Run("ilp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := SolveILP(p, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exact-bnb", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Solve(p, AlgoExact); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("repeat-heuristic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Solve(p, AlgoRepeat); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSimulate times the cycle-accurate simulator over 100 iterations
// of the elliptic filter datapath.
func BenchmarkSimulate(b *testing.B) {
	p := benchProblem(b, "elliptic", 8)
	res, err := Synthesize(p, AlgoRepeat)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(p.Graph, p.Table, res.Schedule, res.Config, 100, res.Schedule.Length); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRotation times rotation scheduling on the cyclic IIR cascade.
func BenchmarkRotation(b *testing.B) {
	g, err := BenchmarkDFG("iir4")
	if err != nil {
		b.Fatal(err)
	}
	tab := RandomTable(11, g.N(), 3)
	assign := make(Assignment, g.N())
	cfg := Config{4, 4, 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Rotate(g, tab, assign, cfg, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUnfoldAssign times unfolding plus assignment on the unfolded
// graph — the [6]-style transformation pipeline.
func BenchmarkUnfoldAssign(b *testing.B) {
	g, err := BenchmarkDFG("iir4")
	if err != nil {
		b.Fatal(err)
	}
	tab := RandomTable(11, g.N(), 3)
	for i := 0; i < b.N; i++ {
		u, err := Unfold(g, 2)
		if err != nil {
			b.Fatal(err)
		}
		ut := UnfoldTable(tab, 2)
		min, err := MinMakespan(u, ut)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Solve(Problem{Graph: u, Table: ut, Deadline: min + 4}, AlgoRepeat); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPruneAblation measures how much the dominance-pruning pre-pass
// buys Tree_Assign on tables with many redundant options (wide fully
// random tables; the paper-style monotone tables have none).
func BenchmarkPruneAblation(b *testing.B) {
	g, err := BenchmarkDFG("volterra")
	if err != nil {
		b.Fatal(err)
	}
	// A wide, fully random table: 8 types, many dominated.
	tab := NewTable(g.N(), 8)
	rngSeed := int64(13)
	x := rngSeed
	next := func(n int) int { // tiny deterministic LCG, stdlib-free hot path
		x = x*6364136223846793005 + 1442695040888963407
		v := int((x >> 33) % int64(n))
		if v < 0 {
			v += n
		}
		return v
	}
	for v := 0; v < g.N(); v++ {
		times := make([]int, 8)
		costs := make([]int64, 8)
		for k := 0; k < 8; k++ {
			times[k] = 1 + next(6)
			costs[k] = int64(1 + next(30))
		}
		tab.MustSet(v, times, costs)
	}
	min, err := MinMakespan(g, tab)
	if err != nil {
		b.Fatal(err)
	}
	L := min + min/2
	pruned, collapsed := PruneDominated(tab)
	b.Logf("collapsed %d of %d options", collapsed, g.N()*8)
	b.Run("raw", func(b *testing.B) {
		p := Problem{Graph: g, Table: tab, Deadline: L}
		for i := 0; i < b.N; i++ {
			if _, err := Solve(p, AlgoTree); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pruned", func(b *testing.B) {
		p := Problem{Graph: g, Table: pruned, Deadline: L}
		for i := 0; i < b.N; i++ {
			if _, err := Solve(p, AlgoTree); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExactParallel compares the serial and shared-bound parallel
// branch-and-bound on the RLS-Laguerre benchmark.
func BenchmarkExactParallel(b *testing.B) {
	p := benchProblem(b, "rls-laguerre", 3)
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := hap.Exact(p, hap.ExactOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := hap.ExactParallel(p, hap.ExactOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCompileKernel times the expression frontend on the diffeq
// kernel source.
func BenchmarkCompileKernel(b *testing.B) {
	src := `
		u = u@1 - 3*x@1*(u@1*dx) - 3*y@1*dx
		x = x@1 + dx
		y = y@1 + u@1*dx
	`
	for i := 0; i < b.N; i++ {
		if _, err := CompileKernel(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullFlow times the complete hetsynthc pipeline (compile →
// assign → schedule → bind → Verilog) on the lattice kernel.
func BenchmarkFullFlow(b *testing.B) {
	src := `
		e1 = x - k1*b0@1
		b1 = b0@1 - k1*e1
		e2 = e1 - k2*b1
		b0 = b1 - k2*e2
	`
	for i := 0; i < b.N; i++ {
		if _, err := hls.Run(hls.Request{Source: src, Slack: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEmitRTL times the Verilog backend on the elliptic filter.
func BenchmarkEmitRTL(b *testing.B) {
	p := benchProblem(b, "elliptic", 8)
	res, err := Synthesize(p, AlgoRepeat)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EmitRTL(p.Graph, nil, res.Schedule, res.Config, RTLOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkArchExplore times the E19 design-space sweep on RLS-Laguerre.
func BenchmarkArchExplore(b *testing.B) {
	g, err := BenchmarkDFG("rls-laguerre")
	if err != nil {
		b.Fatal(err)
	}
	tab := RandomTable(2004, g.N(), 3)
	areas := []int64{60, 25, 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ExploreArchitectures(g, tab, areas, ExploreOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRetiming times the extension: minimum-period retiming of the
// cyclic IIR cascade (E10 of DESIGN.md).
func BenchmarkRetiming(b *testing.B) {
	g, err := BenchmarkDFG("iir4")
	if err != nil {
		b.Fatal(err)
	}
	tab := RandomTable(11, g.N(), 3)
	times := make([]int, g.N())
	for v := range times {
		times[v] = tab.MinTime(v)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := retime.Minimize(g, times); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTreeFrontier times the whole-curve frontier extraction on the
// paper's tree benchmarks. The sparse DP produces the frontier as a
// byproduct of one solve, so this should track BenchmarkTreeAssign rather
// than multiply it by the number of frontier points.
func BenchmarkTreeFrontier(b *testing.B) {
	for _, name := range []string{"4-stage-lattice", "8-stage-lattice", "volterra"} {
		b.Run(name, func(b *testing.B) {
			p := benchProblem(b, name, 6)
			for i := 0; i < b.N; i++ {
				if _, err := hap.TreeFrontier(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTreeAssignParallel times the DP on synthetic trees large enough
// to cross the worker-pool threshold, where independent sibling subtrees are
// evaluated concurrently.
func BenchmarkTreeAssignParallel(b *testing.B) {
	for _, n := range []int{2000, 8000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(2004))
			g := dfg.RandomTree(rng, n)
			tab := RandomTable(2004, n, 3)
			min, err := MinMakespan(g, tab)
			if err != nil {
				b.Fatal(err)
			}
			p := Problem{Graph: g, Table: tab, Deadline: min + min/2 + 6}
			for i := 0; i < b.N; i++ {
				if _, err := hap.TreeAssign(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
