// Command benchjson runs the repository's Go benchmarks with allocation
// statistics and writes the parsed results to a JSON file, so successive
// runs can be diffed mechanically (e.g. to confirm the sparse DP engine's
// speedups don't regress).
//
// Usage:
//
//	go run ./cmd/benchjson [-out BENCH_1.json] [-bench regexp] [-pkg ./...]
//	go run ./cmd/benchjson -suite server      # hetsynthd end-to-end → BENCH_2.json
//
// The named suites bundle package/regexp/output presets: "core" is the
// solver benchmarks (BENCH_1.json), "server" the end-to-end hetsynthd HTTP
// throughput benchmarks — solve latency with and without the result cache
// and off the frontier fast path, at client concurrency 1, 8 and 64
// (BENCH_2.json). Explicit -out/-bench/-pkg flags override the preset.
//
// Compare mode diffs a run (or an existing report) against a baseline file
// and can gate CI on regressions:
//
//	go run ./cmd/benchjson -suite server -compare BENCH_2.json -out BENCH_3.json
//	go run ./cmd/benchjson -compare old.json new.json    # no run, pure diff
//	go run ./cmd/benchjson -suite server -benchtime 200ms \
//	    -compare BENCH_2.json -gate 'BenchmarkHTTPSolveCached'
//
// With -gate, benchmarks matching the regexp fail the run (exit 1) when
// ns/op regresses more than -max-ns-regress (default 25%) or allocs/op more
// than -max-allocs-regress (default 10%) versus the baseline. Results only
// in one of the two reports are reported but never gate.
//
// -count N repeats every benchmark N times (go test -count) and keeps each
// name's fastest run. Scheduler noise on a busy or single-CPU machine only
// ever slows a benchmark down, so best-of-N is the least-noisy estimate and
// is what the short-benchtime CI gate uses to avoid flaking.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Report is the file layout: environment header plus the result list.
type Report struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

// suites maps a suite name to its (pkg, bench regexp, default output). The
// pkg field is a whitespace-separated package-pattern list (split with
// strings.Fields), so one suite can span packages. The server suite covers
// both wire codecs (BenchmarkHTTP*Bin are the binary twins), the
// BenchmarkDirect in-process dispatch benchmarks, which measure the handler
// without the ~20µs net/http loopback floor, and — since the cluster PR —
// the internal/cluster benchmarks: ring lookups, affinity-key extraction
// on both codecs, and the end-to-end router forwarding path.
var suites = map[string][3]string{
	"core": {".", ".", "BENCH_1.json"},
	"server": {"./internal/server/ ./internal/cluster/",
		"BenchmarkHTTP|BenchmarkDirect|BenchmarkRouter|BenchmarkRing|BenchmarkAffinityKey",
		"BENCH_2.json"},
}

func main() {
	suite := flag.String("suite", "core", "benchmark suite preset (core|server)")
	out := flag.String("out", "", "output JSON file (default: the suite's)")
	bench := flag.String("bench", "", "benchmark regexp passed to -bench (default: the suite's)")
	pkg := flag.String("pkg", "", "package pattern to benchmark (default: the suite's)")
	benchtime := flag.String("benchtime", "", "per-benchmark time passed to -benchtime (e.g. 200ms)")
	count := flag.Int("count", 1, "benchmark repetitions passed to -count; results collapse to each name's fastest run (best-of-N)")
	compare := flag.String("compare", "", "baseline JSON report to diff the run (or a positional new report) against")
	gate := flag.String("gate", "", "regexp of benchmark names whose regression fails the run (needs -compare)")
	maxNs := flag.Float64("max-ns-regress", 0.25, "gated ns/op regression tolerance (0.25 = +25%)")
	maxAllocs := flag.Float64("max-allocs-regress", 0.10, "gated allocs/op regression tolerance")
	flag.Parse()

	var gateRe *regexp.Regexp
	if *gate != "" {
		if *compare == "" {
			fmt.Fprintln(os.Stderr, "benchjson: -gate requires -compare")
			os.Exit(2)
		}
		var err error
		if gateRe, err = regexp.Compile(*gate); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: bad -gate regexp: %v\n", err)
			os.Exit(2)
		}
	}

	var rep Report
	if *compare != "" && flag.NArg() == 1 {
		// Pure file-to-file diff: benchjson -compare old.json new.json.
		rep = loadReport(flag.Arg(0))
	} else {
		preset, ok := suites[*suite]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: unknown suite %q (want core|server)\n", *suite)
			os.Exit(2)
		}
		if *pkg == "" {
			*pkg = preset[0]
		}
		if *bench == "" {
			*bench = preset[1]
		}
		if *out == "" {
			*out = preset[2]
		}

		args := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem"}
		if *benchtime != "" {
			args = append(args, "-benchtime", *benchtime)
		}
		if *count > 1 {
			args = append(args, "-count", strconv.Itoa(*count))
		}
		args = append(args, strings.Fields(*pkg)...)
		cmd := exec.Command("go", args...)
		var buf bytes.Buffer
		cmd.Stdout = &buf
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: go test: %v\n", err)
			os.Exit(1)
		}
		os.Stdout.Write(buf.Bytes())

		rep = parse(&buf)
		rep.Results = bestOf(rep.Results)
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(rep.Results), *out)
	}

	if *compare != "" {
		old := loadReport(*compare)
		if !diff(old, rep, gateRe, *maxNs, *maxAllocs) {
			os.Exit(1)
		}
	}
}

// bestOf collapses repeated benchmark lines (-count > 1) to one result per
// name, keeping the whole row of each name's fastest ns/op run so the
// companion byte/alloc stats stay from the same execution.
func bestOf(results []Result) []Result {
	idx := make(map[string]int, len(results))
	out := results[:0]
	for _, r := range results {
		if j, ok := idx[r.Name]; ok {
			if r.NsPerOp < out[j].NsPerOp {
				out[j] = r
			}
			continue
		}
		idx[r.Name] = len(out)
		out = append(out, r)
	}
	return out
}

func loadReport(path string) Report {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: parsing %s: %v\n", path, err)
		os.Exit(1)
	}
	return rep
}

// diff prints a per-benchmark delta table (new vs old, matched by name) and
// reports whether every gated benchmark stayed within tolerance. Each gate
// failure is also written to stderr naming the benchmark and the exact
// metric (ns/op or allocs/op) that regressed, with the measured delta and
// the tolerance it broke — the table alone is too easy to misread in CI.
func diff(old, new Report, gateRe *regexp.Regexp, maxNs, maxAllocs float64) bool {
	byName := make(map[string]Result, len(old.Results))
	for _, r := range old.Results {
		byName[r.Name] = r
	}
	var failures []string
	for _, r := range new.Results {
		o, ok := byName[r.Name]
		if !ok {
			fmt.Printf("%-55s %12.0f ns/op %8d allocs/op  (new)\n", r.Name, r.NsPerOp, r.AllocsPerOp)
			continue
		}
		delete(byName, r.Name)
		nsDelta := ratio(r.NsPerOp, o.NsPerOp)
		allocDelta := ratio(float64(r.AllocsPerOp), float64(o.AllocsPerOp))
		status := ""
		if gateRe != nil && gateRe.MatchString(r.Name) {
			status = "  ok"
			if nsDelta > maxNs {
				status = "  REGRESSION"
				failures = append(failures, fmt.Sprintf(
					"%s: ns/op %.0f -> %.0f (%+.1f%%, tolerance %+.1f%%)",
					r.Name, o.NsPerOp, r.NsPerOp, 100*nsDelta, 100*maxNs))
			}
			// ratio() reports 0 -> N as "no change" to avoid dividing by
			// zero, which would let a zero-alloc benchmark silently start
			// allocating; that jump is always a regression.
			if allocDelta > maxAllocs || (o.AllocsPerOp == 0 && r.AllocsPerOp > 0) {
				status = "  REGRESSION"
				detail := fmt.Sprintf("%+.1f%%, tolerance %+.1f%%", 100*allocDelta, 100*maxAllocs)
				if o.AllocsPerOp == 0 {
					detail = "was zero-alloc"
				}
				failures = append(failures, fmt.Sprintf(
					"%s: allocs/op %d -> %d (%s)",
					r.Name, o.AllocsPerOp, r.AllocsPerOp, detail))
			}
		}
		fmt.Printf("%-55s %12.0f ns/op (%+6.1f%%) %8d allocs/op (%+6.1f%%)%s\n",
			r.Name, r.NsPerOp, 100*nsDelta, r.AllocsPerOp, 100*allocDelta, status)
	}
	for name := range byName {
		fmt.Printf("%-55s (only in baseline)\n", name)
	}
	for _, f := range failures {
		fmt.Fprintf(os.Stderr, "benchjson: gate failure: %s\n", f)
	}
	return len(failures) == 0
}

// ratio is (new-old)/old, treating a zero or missing old value as no change
// so fresh benchmarks never divide by zero.
func ratio(new, old float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old
}

func parse(buf *bytes.Buffer) Report {
	var rep Report
	sc := bufio.NewScanner(buf)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				rep.Results = append(rep.Results, r)
			}
		}
	}
	return rep
}

// parseLine parses one `BenchmarkX-8  1000  1234 ns/op  56 B/op  7 allocs/op`
// line; the B/op and allocs/op columns are optional.
func parseLine(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Result{}, false
	}
	var r Result
	r.Name = f[0]
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r.Iterations = iters
	for i := 2; i+1 < len(f); i += 2 {
		val, unit := f[i], f[i+1]
		switch unit {
		case "ns/op":
			if v, err := strconv.ParseFloat(val, 64); err == nil {
				r.NsPerOp = v
			}
		case "B/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				r.BytesPerOp = v
			}
		case "allocs/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				r.AllocsPerOp = v
			}
		}
	}
	return r, r.NsPerOp > 0
}
