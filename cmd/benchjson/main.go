// Command benchjson runs the repository's Go benchmarks with allocation
// statistics and writes the parsed results to a JSON file, so successive
// runs can be diffed mechanically (e.g. to confirm the sparse DP engine's
// speedups don't regress).
//
// Usage:
//
//	go run ./cmd/benchjson [-out BENCH_1.json] [-bench regexp] [-pkg ./...]
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Report is the file layout: environment header plus the result list.
type Report struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	out := flag.String("out", "BENCH_1.json", "output JSON file")
	bench := flag.String("bench", ".", "benchmark regexp passed to -bench")
	pkg := flag.String("pkg", ".", "package pattern to benchmark")
	flag.Parse()

	cmd := exec.Command("go", "test", "-run", "^$", "-bench", *bench, "-benchmem", *pkg)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: go test: %v\n", err)
		os.Exit(1)
	}
	os.Stdout.Write(buf.Bytes())

	rep := parse(&buf)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(rep.Results), *out)
}

func parse(buf *bytes.Buffer) Report {
	var rep Report
	sc := bufio.NewScanner(buf)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				rep.Results = append(rep.Results, r)
			}
		}
	}
	return rep
}

// parseLine parses one `BenchmarkX-8  1000  1234 ns/op  56 B/op  7 allocs/op`
// line; the B/op and allocs/op columns are optional.
func parseLine(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Result{}, false
	}
	var r Result
	r.Name = f[0]
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r.Iterations = iters
	for i := 2; i+1 < len(f); i += 2 {
		val, unit := f[i], f[i+1]
		switch unit {
		case "ns/op":
			if v, err := strconv.ParseFloat(val, 64); err == nil {
				r.NsPerOp = v
			}
		case "B/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				r.BytesPerOp = v
			}
		case "allocs/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				r.AllocsPerOp = v
			}
		}
	}
	return r, r.NsPerOp > 0
}
