// Command benchjson runs the repository's Go benchmarks with allocation
// statistics and writes the parsed results to a JSON file, so successive
// runs can be diffed mechanically (e.g. to confirm the sparse DP engine's
// speedups don't regress).
//
// Usage:
//
//	go run ./cmd/benchjson [-out BENCH_1.json] [-bench regexp] [-pkg ./...]
//	go run ./cmd/benchjson -suite server      # hetsynthd end-to-end → BENCH_2.json
//
// The named suites bundle package/regexp/output presets: "core" is the
// solver benchmarks (BENCH_1.json), "server" the end-to-end hetsynthd HTTP
// throughput benchmarks — solve latency with and without the result cache
// and off the frontier fast path, at client concurrency 1, 8 and 64
// (BENCH_2.json). Explicit -out/-bench/-pkg flags override the preset.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Report is the file layout: environment header plus the result list.
type Report struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

// suites maps a suite name to its (pkg, bench regexp, default output).
var suites = map[string][3]string{
	"core":   {".", ".", "BENCH_1.json"},
	"server": {"./internal/server/", "BenchmarkHTTP", "BENCH_2.json"},
}

func main() {
	suite := flag.String("suite", "core", "benchmark suite preset (core|server)")
	out := flag.String("out", "", "output JSON file (default: the suite's)")
	bench := flag.String("bench", "", "benchmark regexp passed to -bench (default: the suite's)")
	pkg := flag.String("pkg", "", "package pattern to benchmark (default: the suite's)")
	flag.Parse()

	preset, ok := suites[*suite]
	if !ok {
		fmt.Fprintf(os.Stderr, "benchjson: unknown suite %q (want core|server)\n", *suite)
		os.Exit(2)
	}
	if *pkg == "" {
		*pkg = preset[0]
	}
	if *bench == "" {
		*bench = preset[1]
	}
	if *out == "" {
		*out = preset[2]
	}

	cmd := exec.Command("go", "test", "-run", "^$", "-bench", *bench, "-benchmem", *pkg)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: go test: %v\n", err)
		os.Exit(1)
	}
	os.Stdout.Write(buf.Bytes())

	rep := parse(&buf)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(rep.Results), *out)
}

func parse(buf *bytes.Buffer) Report {
	var rep Report
	sc := bufio.NewScanner(buf)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				rep.Results = append(rep.Results, r)
			}
		}
	}
	return rep
}

// parseLine parses one `BenchmarkX-8  1000  1234 ns/op  56 B/op  7 allocs/op`
// line; the B/op and allocs/op columns are optional.
func parseLine(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Result{}, false
	}
	var r Result
	r.Name = f[0]
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r.Iterations = iters
	for i := 2; i+1 < len(f); i += 2 {
		val, unit := f[i], f[i+1]
		switch unit {
		case "ns/op":
			if v, err := strconv.ParseFloat(val, 64); err == nil {
				r.NsPerOp = v
			}
		case "B/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				r.BytesPerOp = v
			}
		case "allocs/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				r.AllocsPerOp = v
			}
		}
	}
	return r, r.NsPerOp > 0
}
