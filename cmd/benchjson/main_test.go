package main

import (
	"io"
	"os"
	"regexp"
	"strings"
	"testing"
)

// runDiff captures diff's stderr (where gate failures go) while discarding
// the stdout table.
func runDiff(t *testing.T, old, new Report, gate string, maxNs, maxAllocs float64) (bool, string) {
	t.Helper()
	origOut, origErr := os.Stdout, os.Stderr
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout, os.Stderr = devnull, w
	pass := diff(old, new, regexp.MustCompile(gate), maxNs, maxAllocs)
	w.Close()
	os.Stdout, os.Stderr = origOut, origErr
	devnull.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return pass, string(out)
}

func TestDiffGateFailureNamesBenchmarkAndMetric(t *testing.T) {
	old := Report{Results: []Result{
		{Name: "BenchmarkSolve-8", NsPerOp: 100, AllocsPerOp: 2},
		{Name: "BenchmarkCachedPath-8", NsPerOp: 50, AllocsPerOp: 0},
	}}
	// Solve regresses on time only; CachedPath regresses on allocs only.
	cur := Report{Results: []Result{
		{Name: "BenchmarkSolve-8", NsPerOp: 200, AllocsPerOp: 2},
		{Name: "BenchmarkCachedPath-8", NsPerOp: 50, AllocsPerOp: 3},
	}}
	pass, stderr := runDiff(t, old, cur, "Benchmark", 0.10, 0.0)
	if pass {
		t.Fatal("regressed benchmarks must fail the gate")
	}
	if !strings.Contains(stderr, "BenchmarkSolve-8: ns/op 100 -> 200") {
		t.Errorf("failure output must name BenchmarkSolve-8 and its ns/op delta, got:\n%s", stderr)
	}
	if strings.Contains(stderr, "BenchmarkSolve-8: allocs/op") {
		t.Errorf("BenchmarkSolve-8 allocs did not regress, yet stderr blames allocs/op:\n%s", stderr)
	}
	if !strings.Contains(stderr, "BenchmarkCachedPath-8: allocs/op 0 -> 3") {
		t.Errorf("failure output must name BenchmarkCachedPath-8 and its allocs/op delta, got:\n%s", stderr)
	}
	if strings.Contains(stderr, "BenchmarkCachedPath-8: ns/op") {
		t.Errorf("BenchmarkCachedPath-8 time did not regress, yet stderr blames ns/op:\n%s", stderr)
	}
	if !strings.Contains(stderr, "tolerance") {
		t.Errorf("failure output should state the broken tolerance, got:\n%s", stderr)
	}
}

func TestDiffWithinToleranceIsQuiet(t *testing.T) {
	old := Report{Results: []Result{{Name: "BenchmarkSolve-8", NsPerOp: 100, AllocsPerOp: 2}}}
	cur := Report{Results: []Result{{Name: "BenchmarkSolve-8", NsPerOp: 104, AllocsPerOp: 2}}}
	pass, stderr := runDiff(t, old, cur, "Benchmark", 0.10, 0.0)
	if !pass {
		t.Fatal("within-tolerance run must pass the gate")
	}
	if stderr != "" {
		t.Errorf("passing gate should write nothing to stderr, got:\n%s", stderr)
	}
}
