// Command experiments regenerates the paper's evaluation: Table 1 (tree
// benchmarks vs. the greedy baseline, with the optimal Tree_Assign column),
// Table 2 (general DFG benchmarks), the §7 summary (average percentage
// reductions), and two ablation studies that go beyond the paper (exact
// optimum gap; stronger greedy baseline).
//
// Usage:
//
//	experiments                  # Tables 1 and 2 plus the summary
//	experiments -table 1         # only Table 1
//	experiments -csv             # machine-readable output
//	experiments -ablation        # ablation studies
//	experiments -pareto          # ASCII cost-vs-deadline charts
//	experiments -seed 7          # different random time/cost tables
//	experiments -taskset -tasks 8 -util 3 -periods harmonic
//	                             # periodic task set JSON for POST /v1/admit
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"hetsynth/internal/asciiplot"
	"hetsynth/internal/benchdfg"
	"hetsynth/internal/exper"
	"hetsynth/internal/hap"
)

func main() {
	var (
		table    = flag.String("table", "all", "which table to run: 1, 2, or all")
		csv      = flag.Bool("csv", false, "emit CSV instead of text tables")
		ablation = flag.Bool("ablation", false, "run the ablation studies instead of the tables")
		pareto   = flag.Bool("pareto", false, "plot cost-vs-deadline curves instead of the tables")
		phase2   = flag.Bool("phase2", false, "compare the phase-2 schedulers (Min_R / force-directed / search)")
		random   = flag.Bool("random", false, "measure the heuristics on random DAG populations")
		seeds    = flag.Int("seeds", 0, "rerun the tables over N random-table seeds and report mean/stddev")
		seed     = flag.Int64("seed", 2004, "seed for the random time/cost tables")
		rows     = flag.Int("rows", 6, "timing constraints per benchmark")
		taskset  = flag.Bool("taskset", false, "generate a periodic task set (JSON, POST /v1/admit shape) instead of the tables")
		tasks    = flag.Int("tasks", 6, "taskset: number of periodic tasks")
		util     = flag.Float64("util", 2, "taskset: target total utilization on fastest FU types")
		periods  = flag.String("periods", "harmonic", "taskset: period distribution (harmonic|uniform)")
		types    = flag.Int("types", 3, "taskset: FU types per task table")
	)
	flag.Parse()

	if *taskset {
		set, err := benchdfg.TaskSet(benchdfg.TaskSetSpec{
			Tasks: *tasks, Utilization: *util, Periods: *periods, Types: *types, Seed: *seed,
		})
		if err != nil {
			fatal(err)
		}
		out, err := json.MarshalIndent(map[string]any{"tasks": set}, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(out))
		return
	}

	opt := exper.Options{Seed: *seed, Deadlines: *rows}
	if *ablation {
		runAblation(opt)
		return
	}
	if *pareto {
		runPareto(opt)
		return
	}
	if *phase2 {
		p2rows, err := exper.Phase2(opt)
		if err != nil {
			fatal(err)
		}
		fmt.Println("=== Phase-2 schedulers: total FU instances per benchmark and deadline ===")
		fmt.Print(exper.RenderPhase2(p2rows))
		return
	}
	if *random {
		suite, err := exper.RandomSuite(*seed, []int{8, 12, 16, 24, 32}, 0.3, 25)
		if err != nil {
			fatal(err)
		}
		fmt.Println("=== Random-DAG populations: average reduction vs greedy ===")
		fmt.Print(exper.RenderRandomSuite(suite))
		return
	}
	if *seeds > 0 {
		st, err := exper.MultiSeedParallel(*seed, *seeds, opt, 0)
		if err != nil {
			fatal(err)
		}
		fmt.Println("=== Robustness: the §7 headline over many random tables ===")
		fmt.Print(exper.RenderSeedStats(st))
		return
	}

	var results []exper.Result
	if *table == "1" || *table == "all" {
		t1, err := exper.Table1(opt)
		if err != nil {
			fatal(err)
		}
		if !*csv {
			fmt.Println("=== Table 1: tree benchmarks (Greedy vs Tree_Assign / Once / Repeat) ===")
			fmt.Print(exper.RenderTable(t1))
		}
		results = append(results, t1...)
	}
	if *table == "2" || *table == "all" {
		t2, err := exper.Table2(opt)
		if err != nil {
			fatal(err)
		}
		if !*csv {
			fmt.Println("=== Table 2: general DFG benchmarks (Greedy vs Once / Repeat) ===")
			fmt.Print(exper.RenderTable(t2))
		}
		results = append(results, t2...)
	}
	if *csv {
		fmt.Print(exper.RenderCSV(results))
		return
	}
	avgOnce, avgRepeat := exper.Summary(results)
	fmt.Printf("=== Summary (§7 headline) ===\n")
	fmt.Printf("average reduction vs greedy: DFG_Assign_Once %.1f%%, DFG_Assign_Repeat %.1f%%\n", avgOnce, avgRepeat)
	fmt.Printf("(paper reports 13.%% and 19.7%% on the authors' unpublished random tables)\n")
}

// runAblation prints two studies beyond the paper: the gap of each
// heuristic to the exact optimum on the small benchmarks, and how the
// reductions shrink against the stronger cost-aware greedy.
func runAblation(opt exper.Options) {
	fmt.Println("=== Ablation A: gap to the exact optimum (small benchmarks) ===")
	opt.Exact = true
	small := []benchdfg.Benchmark{}
	for _, b := range benchdfg.Paper() {
		if b.Build().N() <= 20 {
			small = append(small, b)
		}
	}
	results, err := exper.RunAll(small, opt)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-16s %-6s %-8s %-8s %-8s %-8s\n", "benchmark", "T", "exact", "once", "repeat", "greedy")
	for _, res := range results {
		for _, r := range res.Rows {
			fmt.Printf("%-16s %-6d %-8d %-8d %-8d %-8d\n",
				res.Bench.Name, r.Deadline, r.Exact, r.Once, r.Repeat, r.Greedy)
		}
	}

	fmt.Println()
	fmt.Println("=== Ablation B: speed-driven vs cost-aware greedy baseline ===")
	opt.Exact = false // the large benchmarks would only burn the B&B budget
	for _, b := range benchdfg.Paper() {
		res, err := exper.Run(b, opt)
		if err != nil {
			fatal(err)
		}
		var speed, ratio, rep int64
		for _, row := range res.Rows {
			p := hap.Problem{Graph: res.Graph, Table: res.Table, Deadline: row.Deadline}
			rs, err := hap.GreedyRatio(p)
			if err != nil {
				fatal(err)
			}
			speed += row.Greedy
			ratio += rs.Cost
			rep += row.Repeat
		}
		fmt.Printf("%-16s greedy(speed)=%-7d greedy(ratio)=%-7d repeat=%-7d "+
			"reduction vs speed %.1f%%, vs ratio %.1f%%\n",
			b.Name, speed, ratio, rep,
			100*float64(speed-rep)/float64(speed),
			100*float64(ratio-rep)/float64(ratio))
	}
}

// runPareto draws the cost-versus-deadline tradeoff of each benchmark as
// an ASCII chart: the Pareto frontier view of Tables 1-2.
func runPareto(opt exper.Options) {
	opt.Deadlines = 10 // finer ladder for plotting
	results, err := exper.RunAll(benchdfg.Paper(), opt)
	if err != nil {
		fatal(err)
	}
	for _, res := range results {
		var xs, greedy, repeat []float64
		for _, r := range res.Rows {
			xs = append(xs, float64(r.Deadline))
			greedy = append(greedy, float64(r.Greedy))
			repeat = append(repeat, float64(r.Repeat))
		}
		chart, err := asciiplot.Plot(
			fmt.Sprintf("%s: system cost vs timing constraint", res.Bench.Name),
			64, 14,
			asciiplot.Series{Name: "greedy", Marker: 'g', X: xs, Y: greedy},
			asciiplot.Series{Name: "repeat", Marker: 'r', X: xs, Y: repeat},
		)
		if err != nil {
			fatal(err)
		}
		fmt.Println(chart)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
