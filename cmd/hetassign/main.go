// Command hetassign runs phase one — heterogeneous assignment — on a DFG
// and prints the chosen FU type per node, the system cost, and the
// resulting schedule length.
//
// The graph comes either from a JSON file (-graph, see internal/dfg for the
// format) or from the bundled benchmark registry (-bench). Time/cost tables
// are drawn with -seed/-types unless the graph is paired with an explicit
// table file later; the paper's experiments use exactly this random-table
// protocol.
//
// Usage:
//
//	hetassign -bench elliptic -algo repeat -slack 4
//	hetassign -graph app.json -algo exact -deadline 20 -dot out.dot
package main

import (
	"flag"
	"fmt"
	"os"

	"hetsynth"
	"hetsynth/internal/cli"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "JSON DFG file (mutually exclusive with -bench/-src)")
		srcPath   = flag.String("src", "", "kernel source file to compile into a DFG (see internal/expr)")
		bench     = flag.String("bench", "", "bundled benchmark name (see -list)")
		list      = flag.Bool("list", false, "list bundled benchmarks and exit")
		algoName  = flag.String("algo", "auto", "algorithm: auto|path|tree|once|repeat|greedy|greedy-ratio|exact")
		deadline  = flag.Int("deadline", 0, "timing constraint in control steps (default: minimum makespan + slack)")
		slack     = flag.Int("slack", 0, "extra steps over the minimum makespan when -deadline is unset")
		seed      = flag.Int64("seed", 2004, "seed for the random time/cost table")
		types     = flag.Int("types", 3, "number of FU types")
		dotPath   = flag.String("dot", "", "write the assigned DFG in Graphviz format to this file")
	)
	flag.Parse()

	if *list {
		for _, name := range hetsynth.BenchmarkNames() {
			fmt.Println(name)
		}
		return
	}
	g, err := cli.LoadGraph(*graphPath, *bench, *srcPath)
	if err != nil {
		fatal(err)
	}
	algo, err := hetsynth.ParseAlgorithm(*algoName)
	if err != nil {
		fatal(err)
	}
	tab := hetsynth.RandomTable(*seed, g.N(), *types)
	min, err := hetsynth.MinMakespan(g, tab)
	if err != nil {
		fatal(err)
	}
	L := *deadline
	if L == 0 {
		L = min + *slack
	}
	p := hetsynth.Problem{Graph: g, Table: tab, Deadline: L}
	sol, err := hetsynth.Solve(p, algo)
	if err != nil {
		fatal(err)
	}

	lib, err := cli.LibraryFor(*types)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d edges; minimum makespan %d; deadline %d\n",
		g.N(), g.M(), min, L)
	fmt.Printf("algorithm %s: system cost %d, schedule length %d\n",
		algo, sol.Cost, sol.Length)
	ex, err := hetsynth.Explain(p, sol.Assign)
	if err != nil {
		fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		k := sol.Assign[v]
		note := ""
		if ex.Slack[v] == 0 {
			note = "  <- critical"
		}
		fmt.Printf("  %-12s -> %-4s (time %d, cost %d, slack %d)%s\n",
			g.Node(hetsynth.NodeID(v)).Name, lib.Name(k),
			tab.Time[v][k], tab.Cost[v][k], ex.Slack[v], note)
	}

	if *dotPath != "" {
		dot := g.DOT("hetassign", func(v hetsynth.NodeID) string {
			return lib.Name(sol.Assign[v])
		})
		if err := os.WriteFile(*dotPath, []byte(dot), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *dotPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hetassign:", err)
	os.Exit(1)
}
