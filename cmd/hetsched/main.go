// Command hetsched runs the full two-phase flow of the paper on a DFG:
// heterogeneous assignment followed by minimum-resource scheduling. It
// prints the assignment, the FU configuration (with the Lower_Bound_R
// floor for comparison), and a text Gantt chart of the schedule.
//
// Usage:
//
//	hetsched -bench rls-laguerre -slack 3
//	hetsched -graph app.json -deadline 18 -algo once
package main

import (
	"flag"
	"fmt"
	"os"

	"hetsynth"
	"hetsynth/internal/cli"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "JSON DFG file (mutually exclusive with -bench/-src)")
		srcPath   = flag.String("src", "", "kernel source file to compile into a DFG (see internal/expr)")
		bench     = flag.String("bench", "", "bundled benchmark name")
		algoName  = flag.String("algo", "auto", "assignment algorithm")
		deadline  = flag.Int("deadline", 0, "timing constraint (default: minimum makespan + slack)")
		slack     = flag.Int("slack", 0, "extra steps over the minimum makespan when -deadline is unset")
		seed      = flag.Int64("seed", 2004, "seed for the random time/cost table")
		types     = flag.Int("types", 3, "number of FU types")
		rtlPath   = flag.String("rtl", "", "write a Verilog skeleton of the architecture to this file")
		vcdPath   = flag.String("vcd", "", "write a 10-iteration VCD waveform to this file")
	)
	flag.Parse()

	g, err := cli.LoadGraph(*graphPath, *bench, *srcPath)
	if err != nil {
		fatal(err)
	}
	algo, err := hetsynth.ParseAlgorithm(*algoName)
	if err != nil {
		fatal(err)
	}
	tab := hetsynth.RandomTable(*seed, g.N(), *types)
	min, err := hetsynth.MinMakespan(g, tab)
	if err != nil {
		fatal(err)
	}
	L := *deadline
	if L == 0 {
		L = min + *slack
	}
	p := hetsynth.Problem{Graph: g, Table: tab, Deadline: L}

	res, err := hetsynth.Synthesize(p, algo)
	if err != nil {
		fatal(err)
	}
	lb, err := hetsynth.ResourceLowerBound(g, tab, res.Solution.Assign, L)
	if err != nil {
		fatal(err)
	}

	lib, err := cli.LibraryFor(*types)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("graph: %d nodes; deadline %d (minimum makespan %d)\n", g.N(), L, min)
	fmt.Printf("phase 1 (%s): system cost %d, critical path %d\n",
		algo, res.Solution.Cost, res.Solution.Length)
	fmt.Printf("phase 2: configuration %s (lower bound %s), schedule length %d\n",
		res.Config, lb, res.Schedule.Length)
	fmt.Println()
	fmt.Print(hetsynth.Gantt(g, lib, res.Schedule, res.Config))

	if *rtlPath != "" {
		v, err := hetsynth.EmitRTL(g, lib, res.Schedule, res.Config, hetsynth.RTLOptions{})
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*rtlPath, []byte(v), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *rtlPath)
	}
	if *vcdPath != "" {
		f, err := os.Create(*vcdPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := hetsynth.WriteVCD(f, g, lib, res.Schedule, res.Config, 10, res.Schedule.Length); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *vcdPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hetsched:", err)
	os.Exit(1)
}
