// Command hetsynthc is the end-to-end compiler driver: it takes a DSP
// kernel (source text, JSON graph or bundled benchmark), runs the complete
// flow — heterogeneous assignment, minimum-resource scheduling, register
// binding — and writes every artifact a hardware engineer would want into
// an output directory:
//
//	report.txt    human-readable synthesis report
//	schedule.json machine-readable schedule + configuration
//	design.v      Verilog-2001 skeleton of the architecture
//	wave.vcd      10-iteration waveform of the FU occupancy
//
// Usage:
//
//	hetsynthc -src kernel.k -catalog lowpower -slack 4 -o build/
//	hetsynthc -bench elliptic -deadline 40 -o build/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"hetsynth/internal/cli"
	"hetsynth/internal/hls"
	"hetsynth/internal/sim"
)

func main() {
	var (
		srcPath   = flag.String("src", "", "kernel source file")
		graphPath = flag.String("graph", "", "JSON DFG file")
		bench     = flag.String("bench", "", "bundled benchmark name")
		catalog   = flag.String("catalog", "generic3", "FU catalog (generic3|lowpower|reliable)")
		algo      = flag.String("algo", "auto", "assignment algorithm")
		deadline  = flag.Int("deadline", 0, "timing constraint (default: minimum makespan + slack)")
		slack     = flag.Int("slack", 2, "extra steps over the minimum makespan when -deadline is unset")
		module    = flag.String("module", "hetsynth_core", "Verilog module name")
		width     = flag.Int("width", 16, "datapath width in bits")
		outDir    = flag.String("o", "hetsynth_out", "output directory")
	)
	flag.Parse()

	req := hls.Request{
		Catalog:    *catalog,
		Algorithm:  *algo,
		Deadline:   *deadline,
		Slack:      *slack,
		ModuleName: *module,
		Width:      *width,
	}
	if *srcPath != "" && *graphPath == "" && *bench == "" {
		data, err := os.ReadFile(*srcPath)
		if err != nil {
			fatal(err)
		}
		req.Source = string(data)
	} else {
		g, err := cli.LoadGraph(*graphPath, *bench, *srcPath)
		if err != nil {
			fatal(err)
		}
		req.Graph = g
		req.Source = ""
	}

	b, err := hls.Run(req)
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	write := func(name string, data []byte) {
		p := filepath.Join(*outDir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", p)
	}
	write("report.txt", []byte(b.Report()))
	js, err := b.MarshalJSON()
	if err != nil {
		fatal(err)
	}
	write("schedule.json", js)
	write("design.v", []byte(b.Verilog))

	vcd, err := os.Create(filepath.Join(*outDir, "wave.vcd"))
	if err != nil {
		fatal(err)
	}
	defer vcd.Close()
	if err := sim.WriteVCD(vcd, b.Graph, b.Library, b.Schedule, b.Config, 10, b.Schedule.Length); err != nil {
		fatal(err)
	}
	fmt.Println("wrote", vcd.Name())

	fmt.Println()
	fmt.Print(b.Report())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hetsynthc:", err)
	os.Exit(1)
}
