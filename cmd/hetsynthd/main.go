// Command hetsynthd is the synthesis daemon: an HTTP/JSON service exposing
// the repository's assignment and scheduling solvers behind a bounded worker
// pool, a canonical-hash result cache, and single-flight deduplication (see
// internal/server).
//
// Endpoints:
//
//	POST   /v1/solve      synchronous solve (blocks until done or timeout)
//	POST   /v1/jobs       asynchronous solve, returns a job id
//	GET    /v1/jobs       list tracked jobs
//	GET    /v1/jobs/{id}  poll a job
//	DELETE /v1/jobs/{id}  cancel a job
//	GET    /v1/benchmarks bundled benchmarks and FU catalogs
//	GET    /healthz       liveness (503 while draining)
//	GET    /metrics       queue depth, cache hit rate, latency histogram
//
// On SIGINT/SIGTERM the daemon stops admission and drains: in-flight and
// queued jobs run to completion before the process exits.
//
// Usage:
//
//	hetsynthd -addr :8080 -workers 8 -queue 128
//	hetsynthd -addr 127.0.0.1:0   # picks a free port, prints it on stdout
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"hetsynth/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "solver pool size")
		queue    = flag.Int("queue", 64, "job queue depth (admission bound)")
		cache    = flag.Int("cache", 256, "result/frontier LRU capacity")
		retain   = flag.Int("retain", 256, "finished async jobs kept for polling")
		timeout  = flag.Duration("timeout", 30*time.Second, "default per-solve time budget")
		maxTO    = flag.Duration("max-timeout", 120*time.Second, "upper clamp on requested budgets")
		logLevel = flag.String("log", "info", "log level (debug|info|warn|error)")
	)
	flag.Parse()
	if err := run(*addr, *workers, *queue, *cache, *retain, *timeout, *maxTO, *logLevel); err != nil {
		fmt.Fprintln(os.Stderr, "hetsynthd:", err)
		os.Exit(1)
	}
}

func run(addr string, workers, queue, cache, retain int, timeout, maxTO time.Duration, logLevel string) error {
	var level slog.Level
	if err := level.UnmarshalText([]byte(logLevel)); err != nil {
		return fmt.Errorf("bad -log level %q: %w", logLevel, err)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// The resolved address goes to stdout as the first line, so wrappers
	// (e.g. the serve-smoke driver) can use "-addr 127.0.0.1:0" and parse
	// the port the kernel handed out.
	fmt.Printf("listening on %s\n", ln.Addr())
	logger.Info("hetsynthd starting", "addr", ln.Addr().String(), "workers", workers, "queue", queue)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	s := server.New(server.Config{
		Workers:        workers,
		QueueDepth:     queue,
		CacheSize:      cache,
		JobRetention:   retain,
		DefaultTimeout: timeout,
		MaxTimeout:     maxTO,
		Logger:         logger,
	})
	return s.Run(ctx, ln)
}
