// Command hetsynthd is the synthesis daemon: an HTTP service exposing the
// repository's assignment and scheduling solvers behind a bounded worker
// pool, a canonical-hash result cache, and single-flight deduplication (see
// internal/server).
//
// The solve endpoints speak JSON by default and a length-prefixed binary
// wire format negotiated by content type: a request with Content-Type
// application/x-hetsynth-bin is decoded as a binary frame, and that content
// type in either Content-Type or Accept selects a binary response. Both
// codecs resolve to the same canonical digests and share all caches; error
// responses are always JSON. See DESIGN.md §11 for the frame layout.
//
// Endpoints:
//
//	POST   /v1/solve       synchronous solve (blocks until done or timeout)
//	POST   /v1/solve-batch answer many solve requests in one round trip
//	POST   /v1/jobs        asynchronous solve, returns a job id
//	GET    /v1/jobs        list tracked jobs
//	GET    /v1/jobs/{id}   poll a job
//	DELETE /v1/jobs/{id}   cancel a job
//	PUT    /v1/instances/{id}        create/replace a stateful session
//	PATCH  /v1/instances/{id}        apply typed deltas, re-solve dirty paths
//	GET    /v1/instances/{id}        read the session's settled view
//	DELETE /v1/instances/{id}        evict the session
//	GET    /v1/instances/{id}/events SSE stream (state/incumbent/settled/evicted)
//	GET    /v1/benchmarks  bundled benchmarks and FU catalogs
//	GET    /healthz        liveness (503 while draining)
//	GET    /metrics        queue depth, cache hit rate, latency histogram
//
// On SIGINT/SIGTERM the daemon stops admission and drains: in-flight and
// queued jobs run to completion before the process exits.
//
// Usage:
//
//	hetsynthd -addr :8080 -workers 8 -queue 128
//	hetsynthd -addr 127.0.0.1:0   # picks a free port, prints it on stdout
//	hetsynthd -pprof 127.0.0.1:6060  # net/http/pprof on a second listener
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"hetsynth/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "solver pool size")
		queue    = flag.Int("queue", 64, "job queue depth (admission bound)")
		cache    = flag.Int("cache", 256, "result/frontier LRU capacity")
		shards   = flag.Int("cache-shards", 16, "cache shard count (rounded up to a power of two)")
		retain   = flag.Int("retain", 256, "finished async jobs kept for polling")
		timeout  = flag.Duration("timeout", 30*time.Second, "default per-solve time budget")
		maxTO    = flag.Duration("max-timeout", 120*time.Second, "upper clamp on requested budgets")
		logLevel = flag.String("log", "info", "log level (debug|info|warn|error)")
		pprofOn  = flag.String("pprof", "", "serve net/http/pprof on this address (empty: disabled)")
		sessTTL  = flag.Duration("session-ttl", 10*time.Minute, "idle lifetime of stateful sessions")
		sessMax  = flag.Int("session-max", 64, "live session cap (LRU eviction past it)")
	)
	flag.Parse()
	cfg := daemonConfig{
		addr: *addr, workers: *workers, queue: *queue, cache: *cache,
		shards: *shards, retain: *retain, timeout: *timeout, maxTO: *maxTO,
		logLevel: *logLevel, pprofAddr: *pprofOn,
		sessTTL: *sessTTL, sessMax: *sessMax,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "hetsynthd:", err)
		os.Exit(1)
	}
}

type daemonConfig struct {
	addr      string
	workers   int
	queue     int
	cache     int
	shards    int
	retain    int
	timeout   time.Duration
	maxTO     time.Duration
	logLevel  string
	pprofAddr string
	sessTTL   time.Duration
	sessMax   int
}

func run(cfg daemonConfig) error {
	var level slog.Level
	if err := level.UnmarshalText([]byte(cfg.logLevel)); err != nil {
		return fmt.Errorf("bad -log level %q: %w", cfg.logLevel, err)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	// The resolved address goes to stdout as the first line, so wrappers
	// (e.g. the serve-smoke driver) can use "-addr 127.0.0.1:0" and parse
	// the port the kernel handed out.
	fmt.Printf("listening on %s\n", ln.Addr())
	logger.Info("hetsynthd starting", "addr", ln.Addr().String(), "workers", cfg.workers, "queue", cfg.queue)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if cfg.pprofAddr != "" {
		if err := servePprof(ctx, cfg.pprofAddr, logger); err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
	}

	s := server.New(server.Config{
		Workers:        cfg.workers,
		QueueDepth:     cfg.queue,
		CacheSize:      cfg.cache,
		CacheShards:    cfg.shards,
		JobRetention:   cfg.retain,
		DefaultTimeout: cfg.timeout,
		MaxTimeout:     cfg.maxTO,
		SessionTTL:     cfg.sessTTL,
		SessionMax:     cfg.sessMax,
		Logger:         logger,
	})
	return s.Run(ctx, ln)
}

// servePprof exposes net/http/pprof on its own listener, kept off the main
// mux so profiling is never reachable through the public service address.
// The listener dies with ctx; profile requests in flight at shutdown are cut.
func servePprof(ctx context.Context, addr string, logger *slog.Logger) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	logger.InfoContext(ctx, "pprof listening", "addr", ln.Addr().String())
	go func() { // detached: lives until process shutdown, joined via Shutdown below
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			logger.WarnContext(ctx, "pprof server exited", "err", err)
		}
	}()
	go func() { // detached: shutdown watcher for the pprof listener
		<-ctx.Done()
		sctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		//hetsynth:ignore retval best-effort shutdown of the profiling
		// listener; the process is exiting either way.
		_ = srv.Shutdown(sctx)
	}()
	return nil
}
