// Command hetsynthlint runs the repository's custom static-analysis suite
// (internal/lint) over the packages matched by its arguments and exits
// non-zero when any analyzer reports a finding. It is the project-specific
// complement to `go vet` — the Makefile's lint target runs both — and proves
// the solver/server conventions: context propagation into solvers, "guarded
// by mu" mutex discipline, goroutine lifecycle tie-down, solver API
// documentation, undiscarded errors, sync.Pool ownership, cache pin pairing,
// arena view containment, all-or-nothing field atomicity, and the hot-path
// heap-escape budget.
//
// Usage:
//
//	hetsynthlint [-only poolsafe,pinpair,...] [-list] [packages]
//	hetsynthlint -only escapebudget [-escapes-golden FILE] [packages]
//	hetsynthlint -update-escapes            # regenerate the escape baseline
//
// Findings print as file:line:col: message [analyzer]. Suppress a finding
// with a justification comment on the flagged line or the line above:
// //hetsynth:ignore <analyzer> <reason>, // detached: <reason> for
// goroutinelife, or // hetsynth:pool-escape <reason> for poolsafe.
//
// The escapebudget analyzer is a whole-module gate rather than a per-package
// pass: it compiles the module with -gcflags=-m and compares the heap-escape
// count of every // hetsynth:hotpath function against the committed baseline
// (-escapes-golden, default internal/lint/testdata/escapes.golden, resolved
// against the module root). -update-escapes rewrites that baseline from the
// current compiler output.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"hetsynth/internal/lint"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list available analyzers and exit")
	golden := flag.String("escapes-golden", "", "escape-budget baseline file (default: <module>/internal/lint/testdata/escapes.golden)")
	update := flag.Bool("update-escapes", false, "regenerate the escape-budget baseline and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	goldenPath := *golden
	if goldenPath == "" {
		root := lint.ModuleRoot(".")
		if root == "" {
			fmt.Fprintln(os.Stderr, "hetsynthlint: no go.mod found; pass -escapes-golden explicitly")
			os.Exit(2)
		}
		goldenPath = filepath.Join(root, "internal", "lint", "testdata", "escapes.golden")
	}

	if *update {
		if err := lint.WriteEscapeBaseline(".", goldenPath, patterns); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "hetsynthlint: wrote escape baseline to %s\n", goldenPath)
		return
	}

	analyzers, err := lint.Select(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var diags []lint.Diagnostic
	astAnalyzers := 0
	for _, a := range analyzers {
		if a.Run != nil {
			astAnalyzers++
		}
	}
	if astAnalyzers > 0 {
		diags, err = lint.Run(".", patterns, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	for _, a := range analyzers {
		if a.Name != lint.EscapeBudgetAnalyzer.Name {
			continue
		}
		ediags, err := lint.EscapeBudget(".", goldenPath, patterns)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		diags = append(diags, ediags...)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "hetsynthlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
