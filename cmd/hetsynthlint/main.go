// Command hetsynthlint runs the repository's custom static-analysis suite
// (internal/lint) over the packages matched by its arguments and exits
// non-zero when any analyzer reports a finding. It is the project-specific
// complement to `go vet` — the Makefile's lint target runs both — and proves
// the solver/server concurrency conventions: context propagation into
// solvers, "guarded by mu" mutex discipline, goroutine lifecycle tie-down,
// solver API documentation, and undiscarded errors.
//
// Usage:
//
//	hetsynthlint [-only ctxpropagate,guardedby,...] [-list] [packages]
//
// Findings print as file:line:col: message [analyzer]. Suppress a finding
// with a justification comment on the flagged line or the line above:
// //hetsynth:ignore <analyzer> <reason>, or // detached: <reason> for
// goroutinelife.
package main

import (
	"flag"
	"fmt"
	"os"

	"hetsynth/internal/lint"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list available analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := lint.Select(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := lint.Run(".", patterns, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "hetsynthlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
