// Command hetsynthrouter is the cluster front door: a cache-affinity
// reverse proxy that consistent-hashes each solve's canonical instance
// digest (package canon) onto a ring of hetsynthd nodes, so same-graph
// traffic always lands on the node already holding the pinned
// FrontierSolver and raw-response entries (see internal/cluster and
// DESIGN.md §14).
//
// The router proxies both wire codecs verbatim — the binary frame's
// instance bytes are digested in place without decoding — and probes each
// peer's GET /v1/peerz for health. A 429/Retry-After from a node (or a
// draining heartbeat) halves its virtual-node weight so part of its
// keyspace spills to ring successors; a dead node weighs zero and its keys
// fail over entirely; recovery ramps weights back over a few probe
// intervals.
//
// The router's own endpoints: GET /healthz (ok while any peer is live) and
// GET /metrics (forwarded, affinity_hits, failovers, peer_sheds, per-peer
// state). Everything else mirrors the hetsynthd API and is forwarded.
//
// Usage:
//
//	hetsynthrouter -addr :8080 -peers http://10.0.0.1:8081,http://10.0.0.2:8081
//	hetsynthrouter -addr 127.0.0.1:0 -peers ...   # free port, printed on stdout
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hetsynth/internal/cluster"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		peers    = flag.String("peers", "", "comma-separated backend base URLs (required)")
		vnodes   = flag.Int("vnodes", 128, "virtual nodes per peer on the hash ring")
		probe    = flag.Duration("probe", 250*time.Millisecond, "peer health probe interval")
		probeTO  = flag.Duration("probe-timeout", 2*time.Second, "per-probe HTTP timeout")
		idle     = flag.Int("idle-per-host", 64, "pooled connections kept per peer")
		logLevel = flag.String("log", "info", "log level (debug|info|warn|error)")
	)
	flag.Parse()
	if err := run(*addr, *peers, *vnodes, *probe, *probeTO, *idle, *logLevel); err != nil {
		fmt.Fprintln(os.Stderr, "hetsynthrouter:", err)
		os.Exit(1)
	}
}

func run(addr, peers string, vnodes int, probe, probeTO time.Duration, idle int, logLevel string) error {
	var level slog.Level
	if err := level.UnmarshalText([]byte(logLevel)); err != nil {
		return fmt.Errorf("bad -log level %q: %w", logLevel, err)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	var urls []string
	for _, u := range strings.Split(peers, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}
	if len(urls) == 0 {
		return fmt.Errorf("-peers is required (comma-separated backend base URLs)")
	}

	rt, err := cluster.New(cluster.Config{
		Peers:          urls,
		VNodes:         vnodes,
		ProbeInterval:  probe,
		ProbeTimeout:   probeTO,
		MaxIdlePerHost: idle,
		Logger:         logger,
	})
	if err != nil {
		return err
	}
	defer rt.Close()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// The resolved address goes to stdout as the first line, so wrappers
	// (e.g. the serve-smoke driver) can use "-addr 127.0.0.1:0" and parse
	// the port the kernel handed out.
	fmt.Printf("listening on %s\n", ln.Addr())
	logger.Info("hetsynthrouter starting", "addr", ln.Addr().String(), "peers", len(urls), "vnodes", vnodes)

	ctx, stopSig := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stopSig()

	srv := &http.Server{Handler: rt.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Info("hetsynthrouter draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return srv.Shutdown(shutCtx)
}
