package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os/exec"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// The cluster scenario (`make serve-cluster`) demonstrates the point of
// cache-affinity scale-out on a box with any number of CPUs: cache
// *capacity*, not parallelism. The working set is sized to overflow one
// node's LRU (every tier of it, result/frontier/raw-replay), so a single
// node thrashes — sequential cyclic access over a set larger than an LRU is
// its worst case, every request misses — while three affinity-routed nodes
// partition the same set into shards that each fit, turning the same traffic
// into raw-replay hits.
const (
	// clusterWorkingSet is the number of distinct instances cycled through.
	// Must exceed clusterNodeCache (single node thrashes) while workingSet/3
	// bodies stay comfortably under it (each cluster shard fits, even at the
	// ring's worst-case ~1.5× skew).
	clusterWorkingSet = 150
	// clusterNodeCache is the -cache flag for every node in both setups.
	clusterNodeCache = 120
	// clusterConcurrency is the in-flight request cap for the timed passes;
	// the shared HTTP client's per-host idle pool is sized to match.
	clusterConcurrency = 8
	// clusterPasses is how many full cycles over the working set each timed
	// measurement runs.
	clusterPasses = 2
)

// clusterBody is the i-th working-set instance: distinct seeds defeat every
// cache across instances; types 8 and the huge slack push the DP horizon to
// its max-makespan clamp, so an uncached solve costs real milliseconds while
// a cached replay is sub-millisecond — the gap the capacity experiment
// amplifies.
func clusterBody(i int) string {
	return fmt.Sprintf(`{"bench":"elliptic","seed":%d,"types":8,"slack":1500}`, i+1)
}

// bootNode starts one hetsynthd sized for the capacity experiment.
func bootNode(bin string) (*exec.Cmd, string, error) {
	return boot(bin, "-workers", "1", "-queue", "64",
		"-cache", fmt.Sprint(clusterNodeCache), "-cache-shards", "1")
}

// runPass pushes one or more full cycles over the working set through base
// at clusterConcurrency in cyclic order, and returns the wall time plus the
// count of 429-deferred requests. Any status other than 200/429 fails the
// pass; a 429 must carry Retry-After.
func runPass(base string, passes int) (time.Duration, int, error) {
	total := passes * clusterWorkingSet
	var (
		next     atomic.Int64
		deferred atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	start := time.Now()
	for w := 0; w < clusterConcurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				body := clusterBody(i % clusterWorkingSet)
				resp, err := smokeClient.Post(base+"/v1/solve", "application/json", strings.NewReader(body))
				if err != nil {
					fail(fmt.Errorf("request %d: %w", i, err))
					return
				}
				_, cerr := io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if cerr != nil {
					fail(fmt.Errorf("request %d: reading body: %w", i, cerr))
					return
				}
				switch resp.StatusCode {
				case 200:
				case 429:
					if resp.Header.Get("Retry-After") == "" {
						fail(fmt.Errorf("request %d: 429 without Retry-After", i))
						return
					}
					deferred.Add(1)
				default:
					fail(fmt.Errorf("request %d: status %d", i, resp.StatusCode))
					return
				}
			}
		}()
	}
	wg.Wait()
	return time.Since(start), int(deferred.Load()), firstErr
}

// getJSON fetches and decodes one JSON endpoint.
func getJSON(url string, out any) error {
	resp, err := smokeClient.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// clusterSmoke runs the full cluster acceptance story:
//
//  1. Baseline: one node whose caches are smaller than the working set,
//     measured over cyclic passes — the thrash case.
//  2. Cluster: three identical nodes behind hetsynthrouter, same traffic —
//     affinity partitions the set so each shard fits; throughput must be at
//     least minSpeedup× the baseline and the router's affinity rate >= 90%.
//  3. Failover: SIGKILL one node mid-traffic; every request must still
//     settle as 200 or a 429/Retry-After deferral, never a failure, and the
//     router must record the failovers.
func clusterSmoke(nodeBin, routerBin string, minSpeedup float64) error {
	// ---- Phase 1: single-node baseline (cache capacity < working set) ----
	single, singleBase, err := bootNode(nodeBin)
	if err != nil {
		return fmt.Errorf("booting baseline node: %w", err)
	}
	defer single.Process.Kill()

	if _, _, err := runPass(singleBase, 1); err != nil {
		return fmt.Errorf("baseline warm pass: %w", err)
	}
	singleDur, singleDeferred, err := runPass(singleBase, clusterPasses)
	if err != nil {
		return fmt.Errorf("baseline timed pass: %w", err)
	}
	if singleDeferred > 0 {
		return fmt.Errorf("baseline shed %d requests; queue should absorb concurrency %d", singleDeferred, clusterConcurrency)
	}
	var singleMet map[string]any
	if err := getJSON(singleBase+"/metrics", &singleMet); err != nil {
		return err
	}
	if err := terminate(single); err != nil {
		return fmt.Errorf("baseline node: %w", err)
	}

	// The working set must actually have thrashed the baseline: with cyclic
	// access over a set larger than the LRU, (nearly) every timed request
	// re-solves. If most were cache hits the experiment is mis-sized and the
	// speedup below would be measuring nothing.
	solves, _ := singleMet["solves"].(float64)
	if solves < float64(clusterWorkingSet)*(clusterPasses+0.5) {
		return fmt.Errorf("baseline solved only %.0f times over %d requests; working set is not thrashing the cache",
			solves, (clusterPasses+1)*clusterWorkingSet)
	}

	// ---- Phase 2: 3-node cluster behind the router ----
	var (
		nodes []*exec.Cmd
		peers []string
	)
	for i := 0; i < 3; i++ {
		n, base, err := bootNode(nodeBin)
		if err != nil {
			return fmt.Errorf("booting cluster node %d: %w", i, err)
		}
		defer n.Process.Kill()
		nodes = append(nodes, n)
		peers = append(peers, base)
	}
	// The probe interval is deliberately long: phase 3 wants the *request
	// path* (transport failure -> markDead -> ring successor) to discover the
	// kill, not the prober racing ahead of it.
	router, routerBase, err := boot(routerBin, "-peers", strings.Join(peers, ","), "-probe", "2s")
	if err != nil {
		return fmt.Errorf("booting router: %w", err)
	}
	defer router.Process.Kill()

	if _, _, err := runPass(routerBase, 1); err != nil {
		return fmt.Errorf("cluster warm pass: %w", err)
	}
	clusterDur, clusterDeferred, err := runPass(routerBase, clusterPasses)
	if err != nil {
		return fmt.Errorf("cluster timed pass: %w", err)
	}
	if clusterDeferred > 0 {
		return fmt.Errorf("healthy cluster shed %d requests", clusterDeferred)
	}

	var rmet struct {
		Forwarded    int64   `json:"forwarded"`
		AffinityHits int64   `json:"affinity_hits"`
		AffinityRate float64 `json:"affinity_rate"`
		Failovers    int64   `json:"failovers"`
		PeerSheds    int64   `json:"peer_sheds"`
		KeyFallbacks int64   `json:"key_fallbacks"`
	}
	if err := getJSON(routerBase+"/metrics", &rmet); err != nil {
		return err
	}
	if rmet.AffinityRate < 0.90 {
		return fmt.Errorf("router affinity rate %.3f, want >= 0.90 (hits %d / forwarded %d)",
			rmet.AffinityRate, rmet.AffinityHits, rmet.Forwarded)
	}
	if rmet.KeyFallbacks > 0 {
		return fmt.Errorf("router fell back to raw-byte keys %d times on well-formed bodies", rmet.KeyFallbacks)
	}

	speedup := float64(singleDur) / float64(clusterDur)
	fmt.Printf("servesmoke: cluster capacity effect: single %v, cluster %v over %d requests -> %.2fx (affinity %.1f%%)\n",
		singleDur.Round(time.Millisecond), clusterDur.Round(time.Millisecond),
		clusterPasses*clusterWorkingSet, speedup, 100*rmet.AffinityRate)
	if speedup < minSpeedup {
		return fmt.Errorf("cluster speedup %.2fx below the %.2fx floor", speedup, minSpeedup)
	}

	// ---- Phase 3: kill one node, then drive traffic into the hole ----
	// SIGKILL lands before the pass so the router still believes the peer is
	// alive (the probe interval is far longer than the pass): every request
	// homed on the dead node must fail over through the request path with no
	// client-visible error.
	killed := nodes[1]
	if err := killed.Process.Signal(syscall.SIGKILL); err != nil {
		return fmt.Errorf("killing node: %w", err)
	}
	//hetsynth:ignore retval the SIGKILLed child's non-zero exit is the point;
	// Wait only reaps the zombie.
	_ = killed.Wait()
	if _, _, err := runPass(routerBase, 1); err != nil {
		return fmt.Errorf("failover pass: %w", err)
	}

	if err := getJSON(routerBase+"/metrics", &rmet); err != nil {
		return err
	}
	if rmet.Failovers < 1 {
		return fmt.Errorf("killed a node mid-traffic but the router recorded %d failovers", rmet.Failovers)
	}
	var health struct {
		Status    string `json:"status"`
		LivePeers int    `json:"live_peers"`
	}
	if err := getJSON(routerBase+"/healthz", &health); err != nil {
		return err
	}
	if health.Status != "ok" || health.LivePeers != 2 {
		return fmt.Errorf("router health after failover: %+v, want ok with 2 live peers", health)
	}

	// A final full pass on the degraded cluster must also settle cleanly —
	// the dead node's keyspace now lives on its ring successors.
	if _, _, err := runPass(routerBase, 1); err != nil {
		return fmt.Errorf("post-failover pass: %w", err)
	}

	if err := terminate(router); err != nil {
		return fmt.Errorf("router: %w", err)
	}
	for i, n := range nodes {
		if i == 1 {
			continue
		}
		if err := terminate(n); err != nil {
			return fmt.Errorf("cluster node %d: %w", i, err)
		}
	}
	return nil
}
