// Command servesmoke is the end-to-end smoke test behind `make serve-smoke`:
// it boots a real hetsynthd process on a random port, solves a bundled
// benchmark over HTTP twice (asserting the second answer comes from the
// cache), sweeps a second deadline off the frontier fast path, then sends
// SIGTERM and verifies the daemon drains and exits cleanly.
//
// With -wire the solve traffic is carried over a chosen wire codec: "json"
// (default), "bin" (the length-prefixed binary protocol, Content-Type
// application/x-hetsynth-bin), or "mixed", which sends every request over
// both codecs against the one daemon and asserts the decoded answers agree —
// ending with a strict check that a settled cached answer decodes
// field-for-field identically from both encodings.
//
// With -admit it runs the admission-control scenario (`make serve-admit`):
// a generated periodic task set is sent to POST /v1/admit in cheapest-fit
// search mode, the winning configuration must re-admit the set when probed
// as a fixed configuration and must be locally minimal (one unit removed →
// rejected), the async job flavor must settle to done, and the admit
// verdict ledger on /metrics must balance.
//
// With -overload it instead runs the overload scenario (`make serve-overload`):
// a 1-worker daemon with a short queue receives a burst of anytime solves
// under a tight per-request compute deadline, and must shed with 429 +
// Retry-After, keep every request's latency bounded, and degrade admitted
// requests to finite-gap incumbents instead of stalling.
//
// With -session it runs the stateful-session scenario (`make serve-session`):
// PUT creates a session on an inline instance, a patch loop mutates it while
// the smoke mirrors the instance client-side and cross-checks each settled
// digest against a from-scratch session on the materialized instance, an SSE
// stream must deliver a settled frame per generation and an evicted frame at
// DELETE, and a rejected patch must leave the session state untouched.
//
// Usage:
//
//	servesmoke -bin ./bin/hetsynthd [-wire json|bin|mixed] [-overload]
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"os/exec"
	"reflect"
	"strings"
	"sync"
	"syscall"
	"time"

	"hetsynth/internal/benchdfg"
	"hetsynth/internal/server"
)

func main() {
	bin := flag.String("bin", "", "path to the hetsynthd binary")
	wire := flag.String("wire", "json", `wire codec for solve traffic: "json", "bin", or "mixed" (both, cross-checked)`)
	overload := flag.Bool("overload", false, "run the overload scenario instead of the cache/drain smoke")
	admit := flag.Bool("admit", false, "run the admission-control scenario instead of the cache/drain smoke")
	session := flag.Bool("session", false, "run the stateful-session scenario instead of the cache/drain smoke")
	cluster := flag.Bool("cluster", false, "run the cluster scale-out scenario (needs -router-bin)")
	routerBin := flag.String("router-bin", "", "path to the hetsynthrouter binary (cluster scenario)")
	minSpeedup := flag.Float64("min-speedup", 2.5, "cluster scenario: required cluster/single throughput ratio")
	flag.Parse()
	if *bin == "" {
		fmt.Fprintln(os.Stderr, "servesmoke: -bin is required")
		os.Exit(2)
	}
	if *wire != "json" && *wire != "bin" && *wire != "mixed" {
		fmt.Fprintf(os.Stderr, "servesmoke: -wire %q: want json, bin, or mixed\n", *wire)
		os.Exit(2)
	}
	run, name := func() error { return smoke(*bin, *wire) }, "PASS (wire="+*wire+")"
	if *overload {
		run, name = func() error { return overloadSmoke(*bin) }, "PASS (overload)"
	}
	if *admit {
		run, name = func() error { return admitSmoke(*bin) }, "PASS (admit)"
	}
	if *session {
		run, name = func() error { return sessionSmoke(*bin) }, "PASS (session)"
	}
	if *cluster {
		if *routerBin == "" {
			fmt.Fprintln(os.Stderr, "servesmoke: -cluster needs -router-bin")
			os.Exit(2)
		}
		run, name = func() error { return clusterSmoke(*bin, *routerBin, *minSpeedup) }, "PASS (cluster)"
	}
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "servesmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("servesmoke:", name)
}

// smokeClient is the one HTTP client every scenario shares. The default
// client keeps only two idle connections per host, so concurrent phases
// (the overload burst, the cluster passes) would re-dial on almost every
// request and measure TCP setup instead of the server; sizing the idle pool
// to the largest concurrency any scenario uses keeps connections hot.
var smokeClient = &http.Client{Transport: &http.Transport{
	MaxIdleConns:        64,
	MaxIdleConnsPerHost: 32,
	IdleConnTimeout:     90 * time.Second,
}}

// boot starts the daemon with extra flags and returns the process plus the
// base URL once it is healthy. The caller owns shutdown via cmd.
func boot(bin string, extra ...string) (*exec.Cmd, string, error) {
	args := append([]string{"-addr", "127.0.0.1:0", "-log", "warn"}, extra...)
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, "", err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, "", err
	}

	// The daemon prints "listening on <addr>" as its first stdout line.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		cmd.Process.Kill()
		return nil, "", fmt.Errorf("daemon exited before announcing its address")
	}
	line := sc.Text()
	addr, ok := strings.CutPrefix(line, "listening on ")
	if !ok {
		cmd.Process.Kill()
		return nil, "", fmt.Errorf("unexpected first line %q", line)
	}
	base := "http://" + addr
	// detached: drains the child's stdout until the pipe closes at process
	// exit, so the daemon never blocks on a full pipe; bounded by cmd.Wait.
	go func() {
		for sc.Scan() {
		}
	}()

	if err := waitHealthy(base); err != nil {
		cmd.Process.Kill()
		return nil, "", err
	}
	return cmd, base, nil
}

// terminate sends SIGTERM and verifies the daemon drains and exits cleanly.
func terminate(cmd *exec.Cmd) error {
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			return fmt.Errorf("daemon exited uncleanly after SIGTERM: %w", err)
		}
	case <-time.After(30 * time.Second):
		return fmt.Errorf("daemon did not exit within 30s of SIGTERM")
	}
	return nil
}

// postOver sends one solve request over the given codec and returns the
// decoded response as the generic map shape the smoke asserts against. The
// body is always authored as JSON; for the binary codec it is re-encoded
// into a frame client-side, and the binary response frame is decoded and
// normalized through encoding/json so both codecs yield comparable maps.
func postOver(base, codec, path, body string) (map[string]any, error) {
	var (
		resp *http.Response
		err  error
	)
	if codec == "bin" {
		var enc []byte
		if path == "/v1/solve-batch" {
			var breq server.BatchRequest
			if err := json.Unmarshal([]byte(body), &breq); err != nil {
				return nil, err
			}
			if enc, err = server.EncodeBinBatchRequest(&breq); err != nil {
				return nil, err
			}
		} else {
			var sreq server.SolveRequest
			if err := json.Unmarshal([]byte(body), &sreq); err != nil {
				return nil, err
			}
			if enc, err = server.EncodeBinSolveRequest(&sreq); err != nil {
				return nil, err
			}
		}
		resp, err = smokeClient.Post(base+path, server.BinContentType, bytes.NewReader(enc))
	} else {
		resp, err = smokeClient.Post(base+path, "application/json", strings.NewReader(body))
	}
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	var m map[string]any
	if resp.StatusCode != 200 {
		// Errors are JSON on every codec.
		json.Unmarshal(raw, &m)
		return nil, fmt.Errorf("status %d: %v", resp.StatusCode, m)
	}
	if codec == "bin" {
		var v any
		if path == "/v1/solve-batch" {
			v, err = server.DecodeBinBatchResponse(raw)
		} else {
			v, err = server.DecodeBinSolveResponse(raw)
		}
		if err != nil {
			return nil, fmt.Errorf("decoding binary response: %w", err)
		}
		if raw, err = json.Marshal(v); err != nil {
			return nil, err
		}
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, err
	}
	return m, nil
}

// stripVolatile removes the fields that legitimately differ between two
// requests for the same answer — the cache tier it came from and wall-clock
// timings — recursively, so solve and batch responses both compare clean.
func stripVolatile(v any) any {
	switch x := v.(type) {
	case map[string]any:
		c := make(map[string]any, len(x))
		for k, val := range x {
			if k == "source" || k == "elapsed_ms" {
				continue
			}
			c[k] = stripVolatile(val)
		}
		return c
	case []any:
		c := make([]any, len(x))
		for i := range x {
			c[i] = stripVolatile(x[i])
		}
		return c
	default:
		return v
	}
}

func smoke(bin, wire string) error {
	cmd, base, err := boot(bin)
	if err != nil {
		return err
	}
	defer cmd.Process.Kill()

	primary := wire
	if wire == "mixed" {
		primary = "json"
	}
	// post drives the smoke over the primary codec; in mixed mode every
	// request is replayed over the binary codec too and the decoded answers
	// must agree once cache-tier and timing fields are set aside.
	post := func(body string) (map[string]any, error) {
		m, err := postOver(base, primary, "/v1/solve", body)
		if err != nil || wire != "mixed" {
			return m, err
		}
		bm, err := postOver(base, "bin", "/v1/solve", body)
		if err != nil {
			return nil, fmt.Errorf("binary twin: %w", err)
		}
		if !reflect.DeepEqual(stripVolatile(m), stripVolatile(bm)) {
			return nil, fmt.Errorf("codecs disagree for %s:\n json %v\n bin  %v", body, m, bm)
		}
		return m, nil
	}

	const req = `{"bench":"elliptic","seed":1,"slack":4}`
	first, err := post(req)
	if err != nil {
		return fmt.Errorf("first solve: %w", err)
	}
	if first["source"] != "solve" {
		return fmt.Errorf("first solve source = %v, want solve", first["source"])
	}
	second, err := post(req)
	if err != nil {
		return fmt.Errorf("second solve: %w", err)
	}
	if second["source"] != "cache" {
		return fmt.Errorf("second identical request source = %v, want cache", second["source"])
	}
	if first["cost"] != second["cost"] {
		return fmt.Errorf("cache returned a different cost: %v vs %v", second["cost"], first["cost"])
	}

	// A tree benchmark warms its frontier; a deadline-only change is then
	// answered from the curve without another solver run.
	if _, err := post(`{"bench":"volterra","seed":1,"slack":6}`); err != nil {
		return fmt.Errorf("tree solve: %w", err)
	}
	shifted, err := post(`{"bench":"volterra","seed":1,"slack":3}`)
	if err != nil {
		return fmt.Errorf("shifted-deadline solve: %w", err)
	}
	if shifted["source"] != "frontier" {
		return fmt.Errorf("deadline-only change source = %v, want frontier", shifted["source"])
	}

	resp, err := smokeClient.Get(base + "/metrics")
	if err != nil {
		return err
	}
	var met map[string]any
	json.NewDecoder(resp.Body).Decode(&met)
	resp.Body.Close()
	if met["solves"].(float64) != 2 || met["cache_hits"].(float64) < 1 || met["frontier_hits"].(float64) < 1 {
		return fmt.Errorf("unexpected metrics: %v", met)
	}

	// Batch endpoint: a deadline sweep over the already-warmed tree instance
	// plus one fresh entry, answered in one round trip. Every entry must
	// succeed and the duplicated sweep point must be deduped server-side.
	batch := `{"entries":[
		{"bench":"volterra","seed":1,"slack":1},
		{"bench":"volterra","seed":1,"slack":2},
		{"bench":"volterra","seed":1,"slack":2},
		{"bench":"elliptic","seed":2,"slack":4}]}`
	bm, err := postOver(base, primary, "/v1/solve-batch", batch)
	if err != nil {
		return fmt.Errorf("batch solve: %w", err)
	}
	if wire == "mixed" {
		bbin, err := postOver(base, "bin", "/v1/solve-batch", batch)
		if err != nil {
			return fmt.Errorf("binary batch twin: %w", err)
		}
		if !reflect.DeepEqual(stripVolatile(bm), stripVolatile(bbin)) {
			return fmt.Errorf("batch codecs disagree:\n json %v\n bin  %v", bm, bbin)
		}
	}
	results, _ := bm["results"].([]any)
	if len(results) != 4 {
		return fmt.Errorf("batch returned %d results, want 4", len(results))
	}
	for i, r := range results {
		e := r.(map[string]any)
		if e["result"] == nil || e["error"] != nil {
			return fmt.Errorf("batch entry %d failed: %v", i, e)
		}
	}
	if bm["deduped"].(float64) != 1 {
		return fmt.Errorf("batch deduped = %v, want 1", bm["deduped"])
	}

	// Strict cross-codec check: the elliptic answer is settled in the result
	// cache by now, so both codecs replay the very same stored response and
	// the decoded maps must be identical in EVERY field — source, timings,
	// everything. A mismatch here means the codecs split the cache.
	if wire == "mixed" || wire == "bin" {
		jm, err := postOver(base, "json", "/v1/solve", req)
		if err != nil {
			return fmt.Errorf("strict check, json: %w", err)
		}
		bm, err := postOver(base, "bin", "/v1/solve", req)
		if err != nil {
			return fmt.Errorf("strict check, bin: %w", err)
		}
		if !reflect.DeepEqual(jm, bm) {
			return fmt.Errorf("settled answer decodes differently per codec:\n json %v\n bin  %v", jm, bm)
		}
	}

	return terminate(cmd)
}

// overloadSmoke floods a deliberately tiny pool (1 worker, 4 queue slots)
// with concurrent anytime solves whose compute deadline is far shorter than
// the backlog they create, then asserts the overload contract: nothing
// hangs, the excess is shed with 429 + Retry-After, and answers that did get
// compute report an honest quality with a finite optimality gap.
func overloadSmoke(bin string) error {
	cmd, base, err := boot(bin, "-workers", "1", "-queue", "4", "-timeout", "2s")
	if err != nil {
		return err
	}
	defer cmd.Process.Kill()

	const burst = 24
	type outcome struct {
		status  int
		wall    time.Duration
		quality string
		retry   string
		gap     float64
		hasGap  bool
		cost    float64
		lower   float64
		hasLB   bool
		err     error
	}
	outcomes := make([]outcome, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			o := &outcomes[i]
			// Unique seeds defeat the result cache and request coalescing, so
			// every request really contends for the single worker.
			body := fmt.Sprintf(`{"bench":"elliptic","seed":%d,"types":8,"slack":6,"algorithm":"anytime"}`, i+1)
			req, err := http.NewRequest("POST", base+"/v1/solve", strings.NewReader(body))
			if err != nil {
				o.err = err
				return
			}
			req.Header.Set("X-Hetsynth-Deadline-Ms", "150")
			start := time.Now()
			resp, err := smokeClient.Do(req)
			o.wall = time.Since(start)
			if err != nil {
				o.err = err
				return
			}
			defer resp.Body.Close()
			o.status = resp.StatusCode
			o.quality = resp.Header.Get("X-Hetsynth-Quality")
			o.retry = resp.Header.Get("Retry-After")
			var m map[string]any
			if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
				o.err = fmt.Errorf("bad response JSON: %w", err)
				return
			}
			if g, ok := m["gap"].(float64); ok {
				o.gap, o.hasGap = g, true
			}
			if c, ok := m["cost"].(float64); ok {
				o.cost = c
			}
			if lb, ok := m["lower_bound"].(float64); ok {
				o.lower, o.hasLB = lb, true
			}
		}(i)
	}
	wg.Wait()

	var shed, ok200, degraded, timeouts int
	for i, o := range outcomes {
		if o.err != nil {
			return fmt.Errorf("request %d: %v", i, o.err)
		}
		// Bounded latency is the core promise: budget (150ms) + abandon grace
		// + HTTP overhead, never a park behind the whole backlog.
		if o.wall > 5*time.Second {
			return fmt.Errorf("request %d took %v; overload must not stall requests", i, o.wall)
		}
		switch o.status {
		case 200:
			ok200++
			if o.quality == "" {
				return fmt.Errorf("request %d: 200 without a %s header", i, "X-Hetsynth-Quality")
			}
			if o.quality != "exact" {
				degraded++
				if !o.hasGap || o.gap < 0 || math.IsNaN(o.gap) || math.IsInf(o.gap, 0) {
					return fmt.Errorf("request %d: %s-quality response without a finite gap (%v)", i, o.quality, o.gap)
				}
				if !o.hasLB || o.lower > o.cost {
					return fmt.Errorf("request %d: lower bound %v inconsistent with cost %v", i, o.lower, o.cost)
				}
			}
			if o.quality == "timeout" {
				timeouts++
			}
		case 429:
			shed++
			if o.retry == "" {
				return fmt.Errorf("request %d: 429 without a Retry-After header", i)
			}
		case 504:
			// Budget burned while queued; bounded and honestly reported.
		default:
			return fmt.Errorf("request %d: unexpected status %d", i, o.status)
		}
	}
	if shed == 0 {
		return fmt.Errorf("burst of %d against a 1-worker pool shed nothing (no 429s)", burst)
	}
	if ok200 == 0 {
		return fmt.Errorf("no request succeeded under overload")
	}
	if degraded == 0 {
		return fmt.Errorf("no admitted request was degraded; the 150ms budget should preclude exact answers")
	}

	resp, err := smokeClient.Get(base + "/metrics")
	if err != nil {
		return err
	}
	var met map[string]any
	json.NewDecoder(resp.Body).Decode(&met)
	resp.Body.Close()
	if met["shed"].(float64) < 1 {
		return fmt.Errorf("shed metric %v, want >= 1", met["shed"])
	}
	// Degraded counts solver executions; every timeout-quality *response*
	// implies at least that many degraded executions (abandoned waiters can
	// push the execution count higher, never lower).
	if met["degraded"].(float64) < float64(timeouts) {
		return fmt.Errorf("degraded metric %v < %d timeout responses", met["degraded"], timeouts)
	}

	return terminate(cmd)
}

func waitHealthy(base string) error {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := smokeClient.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == 200 {
				return nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("daemon never became healthy at %s", base)
}

// admitSmoke drives the admission-control endpoint end to end: cheapest-fit
// search over a generated periodic task set, cache replay, fixed-config
// consistency (the winning configuration admits; one unit less does not),
// the async job flavor, and the /metrics verdict ledger.
func admitSmoke(bin string) error {
	cmd, base, err := boot(bin)
	if err != nil {
		return err
	}
	defer cmd.Process.Kill()

	set, err := benchdfg.TaskSet(benchdfg.TaskSetSpec{
		Tasks: 4, Utilization: 1.2, Periods: benchdfg.PeriodsHarmonic, Types: 3, Seed: 11,
	})
	if err != nil {
		return err
	}
	searchBody, err := json.Marshal(map[string]any{
		"tasks":  set,
		"search": map[string]any{"max_per_type": 6},
	})
	if err != nil {
		return err
	}

	first, err := postOver(base, "json", "/v1/admit", string(searchBody))
	if err != nil {
		return fmt.Errorf("search admit: %w", err)
	}
	if first["source"] != "admit" {
		return fmt.Errorf("first search source = %v, want admit", first["source"])
	}
	if first["found"] != true || first["admitted"] != true {
		return fmt.Errorf("search did not find an admitting configuration: %v", first)
	}
	cfgAny, _ := first["config"].([]any)
	if len(cfgAny) != 3 {
		return fmt.Errorf("search config %v, want width 3", first["config"])
	}
	cfg := make([]int, len(cfgAny))
	for i, v := range cfgAny {
		cfg[i] = int(v.(float64))
	}

	second, err := postOver(base, "json", "/v1/admit", string(searchBody))
	if err != nil {
		return fmt.Errorf("cached search admit: %w", err)
	}
	if second["source"] != "cache" {
		return fmt.Errorf("second identical search source = %v, want cache", second["source"])
	}
	if !reflect.DeepEqual(stripVolatile(first), stripVolatile(second)) {
		return fmt.Errorf("cache replayed a different verdict:\n%v\n%v", first, second)
	}

	// Consistency: the configuration the search returned must itself admit
	// the set when asked as a fixed configuration.
	fixed := func(c []int) (map[string]any, error) {
		body, err := json.Marshal(map[string]any{"tasks": set, "config": c})
		if err != nil {
			return nil, err
		}
		return postOver(base, "json", "/v1/admit", string(body))
	}
	win, err := fixed(cfg)
	if err != nil {
		return fmt.Errorf("fixed-config admit of the search winner: %w", err)
	}
	if win["admitted"] != true {
		return fmt.Errorf("search winner %v does not admit the set: %v", cfg, win)
	}
	if n, _ := win["placements"].([]any); len(n) != len(set) {
		return fmt.Errorf("winner placed %d tasks, want %d", len(n), len(set))
	}

	// Local minimality: the greedy descent only stops when no single-unit
	// removal admits, so the winner minus one unit of any used type must be
	// rejected.
	for k := range cfg {
		if cfg[k] == 0 {
			continue
		}
		less := append([]int(nil), cfg...)
		less[k]--
		rej, err := fixed(less)
		if err != nil {
			return fmt.Errorf("shrunken-config admit: %w", err)
		}
		if rej["admitted"] != false {
			return fmt.Errorf("config %v (one unit below the winner) admitted; search result is not minimal", less)
		}
		break
	}

	// Async flavor on a fresh task set: submit, poll to done, read the verdict.
	set2, err := benchdfg.TaskSet(benchdfg.TaskSetSpec{
		Tasks: 3, Utilization: 1.0, Periods: benchdfg.PeriodsUniform, Types: 3, Seed: 12,
	})
	if err != nil {
		return err
	}
	jobBody, err := json.Marshal(map[string]any{"tasks": set2, "config": []int{4, 4, 4}})
	if err != nil {
		return err
	}
	resp, err := smokeClient.Post(base+"/v1/admit/jobs", "application/json", bytes.NewReader(jobBody))
	if err != nil {
		return err
	}
	var jv map[string]any
	err = json.NewDecoder(resp.Body).Decode(&jv)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != 201 {
		return fmt.Errorf("admit job submit status %d: %v", resp.StatusCode, jv)
	}
	id, _ := jv["id"].(string)
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := smokeClient.Get(base + "/v1/jobs/" + id)
		if err != nil {
			return err
		}
		err = json.NewDecoder(resp.Body).Decode(&jv)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if jv["status"] == "done" {
			break
		}
		if jv["status"] == "failed" || jv["status"] == "canceled" {
			return fmt.Errorf("admit job settled %v: %v", jv["status"], jv["error"])
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("admit job %s stuck in %v", id, jv["status"])
		}
		time.Sleep(25 * time.Millisecond)
	}
	jres, _ := jv["result"].(map[string]any)
	if jres == nil {
		return fmt.Errorf("done admit job has no result: %v", jv)
	}
	if _, ok := jres["admitted"]; !ok {
		return fmt.Errorf("admit job result lacks a verdict: %v", jres)
	}

	// The verdict ledger must balance: every served verdict bumped exactly
	// one of accepted/rejected, cache hits included.
	mresp, err := smokeClient.Get(base + "/metrics")
	if err != nil {
		return err
	}
	var met map[string]any
	err = json.NewDecoder(mresp.Body).Decode(&met)
	mresp.Body.Close()
	if err != nil {
		return err
	}
	reqs := met["admit_requests"].(float64)
	acc := met["admit_accepted"].(float64)
	rej := met["admit_rejected"].(float64)
	if reqs < 5 || acc+rej != reqs {
		return fmt.Errorf("admit ledger broken: requests=%v accepted=%v rejected=%v", reqs, acc, rej)
	}
	if met["admit_search_steps"].(float64) < 1 {
		return fmt.Errorf("admit_search_steps = %v, want >= 1", met["admit_search_steps"])
	}

	return terminate(cmd)
}
