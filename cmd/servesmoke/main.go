// Command servesmoke is the end-to-end smoke test behind `make serve-smoke`:
// it boots a real hetsynthd process on a random port, solves a bundled
// benchmark over HTTP twice (asserting the second answer comes from the
// cache), sweeps a second deadline off the frontier fast path, then sends
// SIGTERM and verifies the daemon drains and exits cleanly.
//
// Usage:
//
//	servesmoke -bin ./bin/hetsynthd
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"
)

func main() {
	bin := flag.String("bin", "", "path to the hetsynthd binary")
	flag.Parse()
	if *bin == "" {
		fmt.Fprintln(os.Stderr, "servesmoke: -bin is required")
		os.Exit(2)
	}
	if err := smoke(*bin); err != nil {
		fmt.Fprintln(os.Stderr, "servesmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("servesmoke: PASS")
}

func smoke(bin string) error {
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-log", "warn")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return err
	}
	defer cmd.Process.Kill()

	// The daemon prints "listening on <addr>" as its first stdout line.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		return fmt.Errorf("daemon exited before announcing its address")
	}
	line := sc.Text()
	addr, ok := strings.CutPrefix(line, "listening on ")
	if !ok {
		return fmt.Errorf("unexpected first line %q", line)
	}
	base := "http://" + addr
	// detached: drains the child's stdout until the pipe closes at process
	// exit, so the daemon never blocks on a full pipe; bounded by cmd.Wait.
	go func() {
		for sc.Scan() {
		}
	}()

	if err := waitHealthy(base); err != nil {
		return err
	}

	post := func(body string) (map[string]any, error) {
		resp, err := http.Post(base+"/v1/solve", "application/json", strings.NewReader(body))
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			return nil, err
		}
		if resp.StatusCode != 200 {
			return nil, fmt.Errorf("status %d: %v", resp.StatusCode, m)
		}
		return m, nil
	}

	const req = `{"bench":"elliptic","seed":1,"slack":4}`
	first, err := post(req)
	if err != nil {
		return fmt.Errorf("first solve: %w", err)
	}
	if first["source"] != "solve" {
		return fmt.Errorf("first solve source = %v, want solve", first["source"])
	}
	second, err := post(req)
	if err != nil {
		return fmt.Errorf("second solve: %w", err)
	}
	if second["source"] != "cache" {
		return fmt.Errorf("second identical request source = %v, want cache", second["source"])
	}
	if first["cost"] != second["cost"] {
		return fmt.Errorf("cache returned a different cost: %v vs %v", second["cost"], first["cost"])
	}

	// A tree benchmark warms its frontier; a deadline-only change is then
	// answered from the curve without another solver run.
	if _, err := post(`{"bench":"volterra","seed":1,"slack":6}`); err != nil {
		return fmt.Errorf("tree solve: %w", err)
	}
	shifted, err := post(`{"bench":"volterra","seed":1,"slack":3}`)
	if err != nil {
		return fmt.Errorf("shifted-deadline solve: %w", err)
	}
	if shifted["source"] != "frontier" {
		return fmt.Errorf("deadline-only change source = %v, want frontier", shifted["source"])
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	var met map[string]any
	json.NewDecoder(resp.Body).Decode(&met)
	resp.Body.Close()
	if met["solves"].(float64) != 2 || met["cache_hits"].(float64) < 1 || met["frontier_hits"].(float64) < 1 {
		return fmt.Errorf("unexpected metrics: %v", met)
	}

	// Graceful shutdown: SIGTERM must drain and exit 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			return fmt.Errorf("daemon exited uncleanly after SIGTERM: %w", err)
		}
	case <-time.After(30 * time.Second):
		return fmt.Errorf("daemon did not exit within 30s of SIGTERM")
	}
	return nil
}

func waitHealthy(base string) error {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == 200 {
				return nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("daemon never became healthy at %s", base)
}
