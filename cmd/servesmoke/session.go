package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// smokeInstance is the client-side mirror of the session's instance: the
// smoke applies every patch to this struct as well as to the daemon, then
// cross-checks that a from-scratch session on the mirrored instance settles
// to the same canonical digest and the same bit-exact answer.
type smokeInstance struct {
	n, k     int
	edges    [][3]int // from, to, delays
	time     [][]int
	cost     [][]int64
	deadline int
}

func (m *smokeInstance) body() string {
	var sb strings.Builder
	sb.WriteString(`{"graph":{"nodes":[`)
	for v := 0; v < m.n; v++ {
		if v > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `{"name":"n%d","op":"op"}`, v)
	}
	sb.WriteString(`],"edges":[`)
	for i, e := range m.edges {
		if i > 0 {
			sb.WriteByte(',')
		}
		if e[2] != 0 {
			fmt.Fprintf(&sb, `{"from":"n%d","to":"n%d","delays":%d}`, e[0], e[1], e[2])
		} else {
			fmt.Fprintf(&sb, `{"from":"n%d","to":"n%d"}`, e[0], e[1])
		}
	}
	sb.WriteString(`]},"table":{"time":`)
	//hetsynth:ignore retval marshaling [][]int cannot fail.
	tb, _ := json.Marshal(m.time)
	sb.Write(tb)
	sb.WriteString(`,"cost":`)
	//hetsynth:ignore retval marshaling [][]int64 cannot fail.
	cb, _ := json.Marshal(m.cost)
	sb.Write(cb)
	fmt.Fprintf(&sb, `},"deadline":%d}`, m.deadline)
	return sb.String()
}

// doJSON issues one request with a JSON body and decodes the JSON response.
func doJSON(method, url, body string) (int, map[string]any, error) {
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	resp, err := smokeClient.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	var m map[string]any
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &m); err != nil {
			return resp.StatusCode, nil, fmt.Errorf("bad response JSON (%s): %w", raw, err)
		}
	}
	return resp.StatusCode, m, nil
}

// sseStream wraps an open text/event-stream response and parses one frame at
// a time (event name + single data line).
type sseStream struct {
	resp *http.Response
	sc   *bufio.Scanner
}

func openEvents(url string) (*sseStream, error) {
	resp, err := smokeClient.Get(url)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != 200 {
		resp.Body.Close()
		return nil, fmt.Errorf("events stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		resp.Body.Close()
		return nil, fmt.Errorf("events Content-Type %q", ct)
	}
	return &sseStream{resp: resp, sc: bufio.NewScanner(resp.Body)}, nil
}

func (st *sseStream) close() { st.resp.Body.Close() }

// frame reads the next SSE frame; io.EOF when the stream ends cleanly.
func (st *sseStream) frame() (event string, data map[string]any, err error) {
	for st.sc.Scan() {
		line := st.sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &data); err != nil {
				return "", nil, fmt.Errorf("bad frame data: %w", err)
			}
		case line == "":
			if event != "" {
				return event, data, nil
			}
		}
	}
	if err := st.sc.Err(); err != nil {
		return "", nil, err
	}
	return "", nil, io.EOF
}

// settled drains frames until the settled frame for generation gen arrives,
// tolerating interleaved incumbent frames from anytime solves.
func (st *sseStream) settled(gen float64) (map[string]any, error) {
	for {
		ev, data, err := st.frame()
		if err != nil {
			return nil, fmt.Errorf("waiting for settled gen %v: %w", gen, err)
		}
		if ev == "settled" && data["gen"] == gen {
			return data, nil
		}
		if ev == "evicted" {
			return nil, fmt.Errorf("session evicted while waiting for settled gen %v: %v", gen, data)
		}
	}
}

// sessionSmoke drives the stateful-session API end to end against a real
// daemon: create, patch with client-side mirroring and digest cross-checks,
// SSE framing, rejection atomicity, and DELETE teardown.
func sessionSmoke(bin string) error {
	cmd, base, err := boot(bin)
	if err != nil {
		return err
	}
	defer cmd.Process.Kill()

	// A 6-node chain with K=3 FU types and a loose deadline: small enough to
	// re-solve from scratch on every cross-check, structured enough that
	// set_row near the shallow end exercises the dirty-path DP.
	inst := &smokeInstance{n: 6, k: 3, deadline: 30}
	for v := 0; v < inst.n; v++ {
		inst.time = append(inst.time, []int{1 + v%2, 2, 4})
		inst.cost = append(inst.cost, []int64{9, 5, int64(1 + v%3)})
		if v > 0 {
			inst.edges = append(inst.edges, [3]int{v - 1, v, 0})
		}
	}

	code, view, err := doJSON("PUT", base+"/v1/instances/smoke", inst.body())
	if err != nil {
		return fmt.Errorf("session PUT: %w", err)
	}
	if code != 201 || view["gen"] != float64(1) || view["digest"] == "" {
		return fmt.Errorf("session PUT: status %d view %v", code, view)
	}

	events, err := openEvents(base + "/v1/instances/smoke/events")
	if err != nil {
		return err
	}
	defer events.close()
	ev, state, err := events.frame()
	if err != nil {
		return fmt.Errorf("first frame: %w", err)
	}
	if ev != "state" || state["digest"] != view["digest"] {
		return fmt.Errorf("first frame %q %v, want state frame matching digest %v", ev, state, view["digest"])
	}

	// crossCheck stands up a from-scratch session on the mirrored instance
	// and requires it to agree with the patched session's settled view in
	// canonical digest, feasibility, and bit-exact cost.
	crossCheck := func(step string, got map[string]any) error {
		tc, twin, err := doJSON("PUT", base+"/v1/instances/twin", inst.body())
		if err != nil || (tc != 200 && tc != 201) {
			return fmt.Errorf("%s: twin PUT status %d: %v (%v)", step, tc, twin, err)
		}
		if twin["digest"] != got["digest"] {
			return fmt.Errorf("%s: session digest %v, from-scratch digest %v", step, got["digest"], twin["digest"])
		}
		if twin["infeasible"] != got["infeasible"] {
			return fmt.Errorf("%s: infeasible disagree: session %v, twin %v", step, got["infeasible"], twin["infeasible"])
		}
		gr, _ := got["result"].(map[string]any)
		tr, _ := twin["result"].(map[string]any)
		if (gr == nil) != (tr == nil) {
			return fmt.Errorf("%s: one side lacks a result: session %v, twin %v", step, got, twin)
		}
		if gr != nil && gr["cost"] != tr["cost"] {
			return fmt.Errorf("%s: session cost %v != from-scratch cost %v", step, gr["cost"], tr["cost"])
		}
		return nil
	}
	if err := crossCheck("initial", view); err != nil {
		return err
	}

	// The patch loop: every op mutates the daemon's session AND the mirror,
	// then the settled SSE frame and the from-scratch twin must both agree.
	type patchStep struct {
		name  string
		ops   string
		apply func()
	}
	steps := []patchStep{
		{"set_row shallow", `{"ops":[{"op":"set_row","node":0,"time":[2,1,3],"cost":[7,6,2]}]}`,
			func() { inst.time[0] = []int{2, 1, 3}; inst.cost[0] = []int64{7, 6, 2} }},
		{"add_edge", `{"ops":[{"op":"add_edge","from":1,"to":3}]}`,
			func() { inst.edges = append(inst.edges, [3]int{1, 3, 0}) }},
		{"set_deadline", `{"ops":[{"op":"set_deadline","deadline":25}]}`,
			func() { inst.deadline = 25 }},
		{"remove_edge", `{"ops":[{"op":"remove_edge","from":1,"to":3}]}`,
			func() {
				for i, e := range inst.edges {
					if e[0] == 1 && e[1] == 3 {
						inst.edges = append(inst.edges[:i], inst.edges[i+1:]...)
						break
					}
				}
			}},
		{"multi-op", `{"ops":[{"op":"set_row","node":5,"time":[1,1,1],"cost":[3,2,1]},{"op":"set_deadline","deadline":28}]}`,
			func() { inst.time[5] = []int{1, 1, 1}; inst.cost[5] = []int64{3, 2, 1}; inst.deadline = 28 }},
	}
	gen := float64(1)
	for _, stp := range steps {
		code, got, err := doJSON("PATCH", base+"/v1/instances/smoke", stp.ops)
		if err != nil {
			return fmt.Errorf("PATCH %s: %w", stp.name, err)
		}
		if code != 200 {
			return fmt.Errorf("PATCH %s: status %d: %v", stp.name, code, got)
		}
		gen++
		if got["gen"] != gen {
			return fmt.Errorf("PATCH %s: gen %v, want %v", stp.name, got["gen"], gen)
		}
		stp.apply()
		settled, err := events.settled(gen)
		if err != nil {
			return err
		}
		if settled["digest"] != got["digest"] {
			return fmt.Errorf("PATCH %s: settled frame digest %v != view digest %v", stp.name, settled["digest"], got["digest"])
		}
		if err := crossCheck(stp.name, got); err != nil {
			return err
		}
	}

	// Rejection atomicity: an out-of-range op must 400 and leave the session
	// at the same generation and digest.
	code, rej, err := doJSON("PATCH", base+"/v1/instances/smoke", `{"ops":[{"op":"set_row","node":99,"time":[1,1,1],"cost":[1,1,1]}]}`)
	if err != nil {
		return fmt.Errorf("rejected PATCH: %w", err)
	}
	if code != 400 {
		return fmt.Errorf("out-of-range patch: status %d %v, want 400", code, rej)
	}
	code, after, err := doJSON("GET", base+"/v1/instances/smoke", "")
	if err != nil || code != 200 {
		return fmt.Errorf("GET after rejection: status %d (%v)", code, err)
	}
	if after["gen"] != gen || after["digest"] == "" {
		return fmt.Errorf("rejected patch moved the session: %v, want gen %v", after, gen)
	}

	// DELETE must push an evicted frame and end the stream.
	if code, m, err := doJSON("DELETE", base+"/v1/instances/smoke", ""); err != nil || code != 200 {
		return fmt.Errorf("DELETE: status %d %v (%v)", code, m, err)
	}
	for {
		ev, data, err := events.frame()
		if err == io.EOF {
			return fmt.Errorf("stream ended without an evicted frame")
		}
		if err != nil {
			return fmt.Errorf("reading toward evicted frame: %w", err)
		}
		if ev == "evicted" {
			if data["reason"] != "deleted" {
				return fmt.Errorf("evicted reason %v, want deleted", data["reason"])
			}
			break
		}
	}
	if ev, data, err := events.frame(); err != io.EOF {
		return fmt.Errorf("stream still open after evicted frame: %q %v (%v)", ev, data, err)
	}
	if code, _, err := doJSON("DELETE", base+"/v1/instances/twin", ""); err != nil || code != 200 {
		return fmt.Errorf("twin DELETE: status %d (%v)", code, err)
	}

	// The session ledger on /metrics must reflect the run.
	code, met, err := doJSON("GET", base+"/metrics", "")
	if err != nil || code != 200 {
		return fmt.Errorf("metrics: status %d (%v)", code, err)
	}
	if met["sessions_active"] != float64(0) {
		return fmt.Errorf("sessions_active %v after deletes, want 0", met["sessions_active"])
	}
	if met["patches"].(float64) < float64(len(steps)) {
		return fmt.Errorf("patches metric %v, want >= %d", met["patches"], len(steps))
	}
	if met["patches_rejected"].(float64) < 1 {
		return fmt.Errorf("patches_rejected %v, want >= 1", met["patches_rejected"])
	}
	if met["sse_frames"].(float64) < float64(len(steps)) {
		return fmt.Errorf("sse_frames %v, want >= %d", met["sse_frames"], len(steps))
	}

	return terminate(cmd)
}
