package hetsynth_test

import (
	"fmt"

	"hetsynth"
)

// The full two-phase flow on a hand-built graph: assignment, then
// minimum-resource scheduling.
func ExampleSynthesize() {
	g := hetsynth.NewGraph()
	a := g.MustAddNode("A", "mul")
	b := g.MustAddNode("B", "add")
	g.MustAddEdge(a, b, 0)

	tab := hetsynth.NewTable(g.N(), 2)
	tab.MustSet(0, []int{1, 3}, []int64{9, 2}) // A: fast/expensive vs slow/cheap
	tab.MustSet(1, []int{1, 2}, []int64{4, 1}) // B

	res, err := hetsynth.Synthesize(hetsynth.Problem{
		Graph: g, Table: tab, Deadline: 4,
	}, hetsynth.AlgoAuto)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("cost %d, length %d, config %s\n",
		res.Solution.Cost, res.Solution.Length, res.Config)
	// A runs slow (cost 2), B must run fast (cost 4) to make the deadline.
	// Output: cost 6, length 4, config 1-1
}

// Kernel sources compile straight into data-flow graphs; '@1' reads the
// previous iteration's value.
func ExampleCompileKernel() {
	k, err := hetsynth.CompileKernel(`s = in + coef*s@1`)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%d ops, inputs %v\n", k.Graph.N(), k.Inputs)
	// Output: 2 ops, inputs [in coef]
}

// Tree-shaped problems expose their whole cost/deadline tradeoff in one
// call.
func ExampleTreeFrontier() {
	g := hetsynth.NewGraph()
	v1 := g.MustAddNode("v1", "")
	v2 := g.MustAddNode("v2", "")
	g.MustAddEdge(v1, v2, 0)
	tab := hetsynth.NewTable(2, 2)
	tab.MustSet(0, []int{1, 2}, []int64{5, 1})
	tab.MustSet(1, []int{1, 2}, []int64{5, 1})

	front, err := hetsynth.TreeFrontier(hetsynth.Problem{Graph: g, Table: tab, Deadline: 4})
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, p := range front {
		fmt.Printf("deadline %d: cost %d\n", p.Deadline, p.Cost)
	}
	// Output:
	// deadline 2: cost 10
	// deadline 3: cost 6
	// deadline 4: cost 2
}
