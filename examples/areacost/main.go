// Areacost explores total architecture cost — execution energy PLUS the
// silicon area of the FU configuration — over the two knobs the flow
// exposes: the timing constraint and the allowed FU-library subset. This
// is the "minimize the total cost" direction the paper's conclusion points
// at: the per-phase optima (cheapest assignment, fewest FUs) are not
// automatically the cheapest architecture.
//
// Run with: go run ./examples/areacost
package main

import (
	"fmt"
	"log"

	"hetsynth"
)

func main() {
	g, err := hetsynth.BenchmarkDFG("rls-laguerre")
	if err != nil {
		log.Fatal(err)
	}
	tab := hetsynth.RandomTable(2004, g.N(), 3)
	lib := hetsynth.StandardLibrary()

	// Area per FU instance: the fast type is 12x larger than the slow one.
	areas := []int64{60, 25, 5}

	points, best, err := hetsynth.ExploreArchitectures(g, tab, areas, hetsynth.ExploreOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("RLS-Laguerre lattice filter: %d nodes; FU areas %v\n\n", g.N(), areas)
	fmt.Printf("%-10s %-14s %-10s %-8s %-8s %-8s\n",
		"deadline", "types", "config", "exec", "area", "total")
	for i, p := range points {
		names := ""
		for j, k := range p.Types {
			if j > 0 {
				names += "+"
			}
			names += lib.Name(k)
		}
		marker := ""
		if i == best {
			marker = "  <= best"
		}
		fmt.Printf("%-10d %-14s %-10s %-8d %-8d %-8d%s\n",
			p.Deadline, names, p.Config, p.ExecCost, p.AreaCost, p.Total, marker)
	}
	bp := points[best]
	fmt.Printf("\nbest architecture: deadline %d, configuration %s, total cost %d\n",
		bp.Deadline, bp.Config, bp.Total)
	fmt.Println("(the tightest deadline pays for speed twice: costly assignments AND big FUs)")
}
