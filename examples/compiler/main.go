// Compiler demonstrates the kernel-source frontend and the cycle-accurate
// simulator: write the differential-equation solver the way the HLS
// literature specifies it, compile it to a DFG, run the two-phase
// synthesis, and simulate the resulting datapath — both non-overlapped (as
// in the paper) and at the minimum initiation interval the hardware
// actually sustains.
//
// Run with: go run ./examples/compiler
package main

import (
	"fmt"
	"log"

	"hetsynth"
)

const kernel = `
	# Euler step of y'' + 3xy' + 3y = 0 (the HAL diffeq benchmark),
	# with the state variables read from the previous iteration.
	u = u@1 - 3*x@1*(u@1*dx) - 3*y@1*dx
	x = x@1 + dx
	y = y@1 + u@1*dx
`

func main() {
	k, err := hetsynth.CompileKernel(kernel)
	if err != nil {
		log.Fatal(err)
	}
	g := k.Graph
	fmt.Printf("compiled kernel: %d operations, inputs %v\n", g.N(), k.Inputs)
	for name, id := range k.Signals {
		fmt.Printf("  signal %-3s <- node %s\n", name, g.Node(id).Name)
	}

	lib := hetsynth.StandardLibrary()
	tab := hetsynth.RandomTable(2004, g.N(), lib.K())
	min, err := hetsynth.MinMakespan(g, tab)
	if err != nil {
		log.Fatal(err)
	}
	p := hetsynth.Problem{Graph: g, Table: tab, Deadline: min + 2}
	res, err := hetsynth.Synthesize(p, hetsynth.AlgoAuto)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsynthesis: cost %d, schedule length %d, configuration %s\n",
		res.Solution.Cost, res.Schedule.Length, res.Config)
	fmt.Print(hetsynth.Gantt(g, lib, res.Schedule, res.Config))

	// Simulate 1000 iterations, non-overlapped and fully pipelined.
	st, err := hetsynth.Simulate(g, tab, res.Schedule, res.Config, 1000, res.Schedule.Length)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnon-overlapped execution:\n%s", st.Report(lib))

	ii, err := hetsynth.MinInitiationInterval(g, res.Schedule, res.Config)
	if err != nil {
		log.Fatal(err)
	}
	st2, err := hetsynth.Simulate(g, tab, res.Schedule, res.Config, 1000, ii)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noverlapped at the minimum initiation interval (II=%d):\n%s", ii, st2.Report(lib))
	fmt.Printf("\nthroughput gain from overlap: %.2fx\n",
		float64(st.TotalCycles)/float64(st2.TotalCycles))

	// Why can the II not shrink further? The u-recurrence limits it: the
	// loop's iteration bound under the chosen execution times.
	times := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		times[v] = tab.Time[v][res.Solution.Assign[v]]
	}
	num, den, err := hetsynth.IterationBound(g, times)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("iteration bound of the kernel at these speeds: %.2f cycles/iteration\n",
		float64(num)/float64(den))
}
