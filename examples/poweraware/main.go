// Poweraware sweeps the timing constraint of the elliptic wave filter and
// prints the energy/latency Pareto frontier under three assignment
// policies: all-fastest (maximum power), the greedy baseline, and
// DFG_Assign_Repeat. This is the energy-minimization scenario the paper's
// introduction motivates: looser real-time budgets let the synthesizer move
// operations onto slower, lower-energy functional units.
//
// Run with: go run ./examples/poweraware
package main

import (
	"fmt"
	"log"

	"hetsynth"
)

func main() {
	g, err := hetsynth.BenchmarkDFG("elliptic")
	if err != nil {
		log.Fatal(err)
	}
	// Energy table: P1 burns the most energy per op, P3 the least.
	tab := hetsynth.RandomTable(2004, g.N(), 3)
	min, err := hetsynth.MinMakespan(g, tab)
	if err != nil {
		log.Fatal(err)
	}

	// Upper reference: everything on the fastest FU type.
	fastest := make(hetsynth.Assignment, g.N())
	var maxEnergy int64
	for v := range fastest {
		fastest[v] = 0
		maxEnergy += tab.Cost[v][0]
	}

	fmt.Printf("elliptic wave filter: %d nodes, minimum makespan %d steps\n", g.N(), min)
	fmt.Printf("all-fastest energy: %d units\n\n", maxEnergy)
	fmt.Printf("%-10s %-12s %-12s %-10s %-10s\n",
		"deadline", "greedy", "repeat", "saved", "config")
	for slack := 0; slack <= 20; slack += 4 {
		L := min + slack
		p := hetsynth.Problem{Graph: g, Table: tab, Deadline: L}
		gs, err := hetsynth.Solve(p, hetsynth.AlgoGreedy)
		if err != nil {
			log.Fatal(err)
		}
		res, err := hetsynth.Synthesize(p, hetsynth.AlgoRepeat)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10d %-12d %-12d %-10s %-10s\n",
			L, gs.Cost, res.Solution.Cost,
			fmt.Sprintf("%.0f%%", 100*float64(maxEnergy-res.Solution.Cost)/float64(maxEnergy)),
			res.Config)
	}
	fmt.Println("\n\"saved\" compares DFG_Assign_Repeat with running every op at full speed.")
}
