// Quickstart walks the paper's motivational example (Figures 1–3) end to
// end on the public API: build a small DFG, give every node per-FU-type
// times and costs, compare a naive fast assignment with the optimized one,
// and synthesize the minimum-resource schedule and configuration.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hetsynth"
)

func main() {
	// The DFG of Figure 1: five operations, a two-level fan-in.
	g := hetsynth.NewGraph()
	a := g.MustAddNode("A", "mul")
	b := g.MustAddNode("B", "mul")
	c := g.MustAddNode("C", "add")
	d := g.MustAddNode("D", "mul")
	e := g.MustAddNode("E", "add")
	g.MustAddEdge(a, c, 0)
	g.MustAddEdge(b, c, 0)
	g.MustAddEdge(c, e, 0)
	g.MustAddEdge(d, e, 0)

	// Figure 1's table: three FU types; P1 is fastest and most expensive,
	// P3 slowest and cheapest (costs here read as energy units).
	lib := hetsynth.StandardLibrary()
	tab := hetsynth.NewTable(g.N(), lib.K())
	tab.MustSet(0, []int{1, 2, 4}, []int64{10, 6, 2}) // A
	tab.MustSet(1, []int{2, 3, 6}, []int64{9, 6, 1})  // B
	tab.MustSet(2, []int{1, 2, 3}, []int64{8, 4, 2})  // C
	tab.MustSet(3, []int{2, 4, 7}, []int64{9, 5, 2})  // D
	tab.MustSet(4, []int{1, 3, 5}, []int64{7, 4, 1})  // E

	p := hetsynth.Problem{Graph: g, Table: tab, Deadline: 6}

	// Assignment 1 (the naive one of Figure 2a): the greedy baseline.
	greedy, err := hetsynth.Solve(p, hetsynth.AlgoGreedy)
	if err != nil {
		log.Fatal(err)
	}
	// Assignment 2 (Figure 2b): the optimal assignment.
	opt, err := hetsynth.Solve(p, hetsynth.AlgoExact)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deadline %d time units\n", p.Deadline)
	fmt.Printf("assignment 1 (greedy): cost %d\n", greedy.Cost)
	fmt.Printf("assignment 2 (optimal): cost %d (%.0f%% less)\n",
		opt.Cost, 100*float64(greedy.Cost-opt.Cost)/float64(greedy.Cost))
	for v := 0; v < g.N(); v++ {
		fmt.Printf("  %s: %s -> %s\n",
			g.Node(hetsynth.NodeID(v)).Name,
			lib.Name(greedy.Assign[v]), lib.Name(opt.Assign[v]))
	}

	// Phase two (Figure 3): schedule the optimal assignment with as few
	// FU instances as possible.
	res, err := hetsynth.Synthesize(p, hetsynth.AlgoExact)
	if err != nil {
		log.Fatal(err)
	}
	lb, err := hetsynth.ResourceLowerBound(g, tab, res.Solution.Assign, p.Deadline)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconfiguration: %s (lower bound %s), %d FUs total\n",
		res.Config, lb, res.Config.Total())
	fmt.Print(hetsynth.Gantt(g, lib, res.Schedule, res.Config))
}
