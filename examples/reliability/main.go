// Reliability demonstrates the reliability-driven cost model of §2: the
// cost of running node v on FU type k is T_k(v)·λ_k, where λ_k is the
// type's failure rate, so minimizing total cost maximizes the probability
// that one execution of the DFG completes without a failure.
//
// The example assigns the differential-equation solver under a deadline
// ladder and reports the system reliability of the optimized assignment
// against the all-fast and all-cheap extremes.
//
// Run with: go run ./examples/reliability
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hetsynth"
)

const scale = 1e6 // fixed-point scale for reliability costs

func main() {
	g, err := hetsynth.BenchmarkDFG("diffeq")
	if err != nil {
		log.Fatal(err)
	}
	// Three FU types: the fast one fails more often per time unit (think
	// aggressive voltage/frequency), the slow one is the most dependable.
	lib, err := hetsynth.NewLibrary(
		hetsynth.FUType{Name: "fast", FailureRate: 4e-4},
		hetsynth.FUType{Name: "mid", FailureRate: 1.5e-4},
		hetsynth.FUType{Name: "slow", FailureRate: 0.5e-4},
	)
	if err != nil {
		log.Fatal(err)
	}

	// Execution times per (node, type), drawn deterministically.
	rng := rand.New(rand.NewSource(7))
	times := make([][]int, g.N())
	for v := range times {
		t := 1 + rng.Intn(2)
		times[v] = []int{t, t + 1 + rng.Intn(2), t + 3 + rng.Intn(3)}
	}
	tab, err := hetsynth.ReliabilityCosts(lib, times, scale)
	if err != nil {
		log.Fatal(err)
	}
	min, err := hetsynth.MinMakespan(g, tab)
	if err != nil {
		log.Fatal(err)
	}

	reliabilityOf := func(a hetsynth.Assignment) float64 {
		var c int64
		for v, k := range a {
			c += tab.Cost[v][k]
		}
		return hetsynth.SystemReliability(c, scale)
	}
	allType := func(k hetsynth.TypeID) hetsynth.Assignment {
		a := make(hetsynth.Assignment, g.N())
		for v := range a {
			a[v] = k
		}
		return a
	}

	fmt.Printf("differential-equation solver: %d nodes, minimum makespan %d\n\n", g.N(), min)
	fmt.Printf("all-fast reliability: %.6f\n", reliabilityOf(allType(0)))
	fmt.Printf("all-slow reliability: %.6f (but ignores the deadline)\n\n", reliabilityOf(allType(2)))
	fmt.Printf("%-10s %-14s %-12s\n", "deadline", "reliability", "critical path")
	for slack := 0; slack <= 10; slack += 2 {
		p := hetsynth.Problem{Graph: g, Table: tab, Deadline: min + slack}
		sol, err := hetsynth.Solve(p, hetsynth.AlgoRepeat)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10d %-14.6f %-12d\n",
			p.Deadline, hetsynth.SystemReliability(sol.Cost, scale), sol.Length)
	}
	fmt.Println("\nLooser deadlines shift ops to dependable slow FUs and raise reliability.")
}
