// Retiming combines the library's two transformation layers on a cyclic
// DFG: a cascade of IIR biquad sections whose feedback edges carry delays.
// Retiming (Leiserson–Saxe) redistributes the delays to cut the cycle
// period; heterogeneous assignment then minimizes cost at the tighter
// period the retimed loop admits. This is the "rotation scheduling"
// direction the paper's introduction situates itself in.
//
// Run with: go run ./examples/retiming
package main

import (
	"fmt"
	"log"

	"hetsynth"
)

func main() {
	g, err := hetsynth.BenchmarkDFG("iir4")
	if err != nil {
		log.Fatal(err)
	}
	tab := hetsynth.RandomTable(11, g.N(), 3)

	// Cycle period under the fastest execution times.
	fastTimes := make([]int, g.N())
	for v := range fastTimes {
		fastTimes[v] = tab.MinTime(v)
	}
	before, err := hetsynth.CyclePeriod(g, fastTimes)
	if err != nil {
		log.Fatal(err)
	}
	retimed, r, after, err := hetsynth.MinimizePeriod(g, fastTimes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("IIR biquad cascade: %d nodes\n", g.N())
	fmt.Printf("cycle period at full speed: %d steps before retiming, %d after\n", before, after)
	moved := 0
	for _, lag := range r {
		if lag != 0 {
			moved++
		}
	}
	fmt.Printf("retiming lags %d of %d nodes\n\n", moved, g.N())

	// Assign both versions at the same deadline: the retimed loop either
	// becomes feasible where the original was not, or gets cheaper.
	fmt.Printf("%-10s %-16s %-16s\n", "deadline", "original cost", "retimed cost")
	for L := after; L <= before+4; L += 2 {
		origCost := "infeasible"
		if s, err := hetsynth.Solve(hetsynth.Problem{Graph: g, Table: tab, Deadline: L}, hetsynth.AlgoRepeat); err == nil {
			origCost = fmt.Sprintf("%d", s.Cost)
		}
		retCost := "infeasible"
		if s, err := hetsynth.Solve(hetsynth.Problem{Graph: retimed, Table: tab, Deadline: L}, hetsynth.AlgoRepeat); err == nil {
			retCost = fmt.Sprintf("%d", s.Cost)
		}
		fmt.Printf("%-10d %-16s %-16s\n", L, origCost, retCost)
	}
	fmt.Println("\nRetiming unlocks deadlines below the original minimum makespan.")
}
