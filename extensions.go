package hetsynth

// This file exposes the subsystems beyond the paper's core flow: the ILP
// reference solver, the cycle-accurate simulator, loop transformations
// (rotation scheduling, unfolding), the resource-constrained scheduler, and
// the kernel-source compiler frontend.

import (
	"io"

	"hetsynth/internal/archopt"
	"hetsynth/internal/dfg"
	"hetsynth/internal/expr"
	"hetsynth/internal/fu"
	"hetsynth/internal/hap"
	"hetsynth/internal/ilp"
	"hetsynth/internal/rotate"
	"hetsynth/internal/rtl"
	"hetsynth/internal/sched"
	"hetsynth/internal/sim"
	"hetsynth/internal/unfold"
)

// Kernel is a DSP kernel compiled from source text (see CompileKernel).
type Kernel = expr.Program

// CompileKernel compiles a textual kernel description into a DFG:
//
//	out = in + k*out@1   # '@1' reads the previous iteration's value
//
// Statements are "name = expression" with +, -, *, parentheses and unary
// minus; identifiers never assigned are external inputs; "@d" reads a
// signal d iterations back (a d-delay edge). See internal/expr for the
// full language description.
func CompileKernel(src string) (*Kernel, error) { return expr.Compile(src) }

// SolveILP solves the assignment problem with the integer-linear-
// programming formulation of Ito, Lucke and Parhi (the paper's reference
// [11]): exact like AlgoExact, but through an LP-relaxation
// branch-and-bound. maxNodes bounds the search (0 = default). It exists as
// an independently-derived optimum; prefer AlgoExact for speed.
func SolveILP(p Problem, maxNodes int) (Solution, error) {
	return ilp.SolveHAP(p, ilp.Options{MaxNodes: maxNodes})
}

// SimStats reports a simulation run (see Simulate).
type SimStats = sim.Stats

// MinInitiationInterval computes the smallest interval at which the
// schedule can be repeated back-to-back: the synthesized datapath's real
// throughput limit, accounting for FU reuse conflicts and loop-carried
// dependences.
func MinInitiationInterval(g *Graph, s *Schedule, cfg Config) (int, error) {
	return sim.MinInitiationInterval(g, s, cfg)
}

// Simulate executes `iterations` repetitions of the schedule cycle by
// cycle at initiation interval ii, re-verifying FU occupancy and data
// availability dynamically, and reports throughput and utilization. Use
// ii = s.Length for the paper's non-overlapped execution.
func Simulate(g *Graph, t *Table, s *Schedule, cfg Config, iterations, ii int) (SimStats, error) {
	return sim.Run(g, t, s, cfg, iterations, ii)
}

// ListSchedule schedules under a FIXED configuration (classic resource-
// constrained list scheduling): the schedule length is whatever the given
// FU counts allow.
func ListSchedule(g *Graph, t *Table, a Assignment, cfg Config) (*Schedule, error) {
	return sched.ListSchedule(g, t, a, cfg)
}

// MinConfigSearch is the search-based alternative to BuildSchedule: grow
// the configuration one FU at a time until the list schedule meets the
// deadline. Exists as an ablation comparator for Min_R_Scheduling.
func MinConfigSearch(g *Graph, t *Table, a Assignment, deadline int) (*Schedule, Config, error) {
	return sched.MinConfigSearch(g, t, a, deadline)
}

// ForceDirected is the time-constrained scheduler of Paulin and Knight
// (the paper's reference [15]): it balances expected FU concurrency across
// control steps before committing nodes, an alternative to BuildSchedule's
// Min_R_Scheduling. The returned configuration is the per-step concurrency
// maximum of the final schedule.
func ForceDirected(g *Graph, t *Table, a Assignment, deadline int) (*Schedule, Config, error) {
	return sched.ForceDirected(g, t, a, deadline)
}

// RegisterDemand reports how many registers the datapath needs to hold
// intermediate values when the schedule repeats with initiation interval
// ii (Ito–Parhi register minimization, the paper's reference [12]).
func RegisterDemand(g *Graph, s *Schedule, ii int) (int, error) {
	return sched.RegisterDemand(g, s, ii)
}

// AnnealOptions tunes the simulated-annealing assignment solver.
type AnnealOptions = hap.AnnealOptions

// Anneal is a generic metaheuristic assignment solver (simulated
// annealing), an extended-ablation baseline for the structured heuristics.
func Anneal(p Problem, opts AnnealOptions) (Solution, error) { return hap.Anneal(p, opts) }

// RotationResult is the outcome of rotation scheduling (see Rotate).
type RotationResult = rotate.Result

// Rotate runs rotation scheduling (Chao–LaPaugh–Sha, the paper's reference
// [4]): repeatedly retime the first-row nodes of the current schedule and
// re-run resource-constrained list scheduling, keeping the shortest static
// schedule found. maxRotations <= 0 defaults to 2·|V|.
func Rotate(g *Graph, t *Table, a Assignment, cfg Config, maxRotations int) (RotationResult, error) {
	return rotate.Rotate(g, t, a, cfg, maxRotations)
}

// Unfold returns the f-unfolded DFG: f copies of every node, one block
// executing f consecutive loop iterations (Chao–Sha, the paper's reference
// [6]).
func Unfold(g *Graph, f int) (*Graph, error) { return unfold.Unfold(g, f) }

// UnfoldTable expands a per-node table onto the f copies of each node so
// the assignment algorithms run unchanged on the unfolded graph.
func UnfoldTable(t *Table, f int) *Table { return unfold.LiftTable(t, f) }

// IterationBound returns the loop's throughput floor — the maximum over
// cycles of (cycle time / cycle delays) — as a num/den pair on a grid fine
// enough to separate all cycle ratios, and 0/1 for acyclic graphs.
func IterationBound(g *Graph, times []int) (num, den int, err error) {
	return unfold.IterationBound(g, times)
}

// FrontierPoint is one point of a cost/deadline tradeoff curve.
type FrontierPoint = hap.FrontierPoint

// TreeFrontier computes the complete optimal cost-versus-deadline curve of
// a tree-shaped problem, from the minimum makespan up to p.Deadline, as the
// breakpoints of the (non-increasing) step function. The whole curve falls
// out of a single sparse dynamic-programming run (the DP's root curve IS the
// frontier), so this costs the same as one TreeAssign call.
func TreeFrontier(p Problem) ([]FrontierPoint, error) { return hap.TreeFrontier(p) }

// TreeAssignWithFrontier returns the optimal tree assignment at p.Deadline
// together with the whole cost-versus-deadline frontier up to p.Deadline,
// both from the same single DP run — the curve exists as a byproduct of the
// solve, so asking for it costs nothing extra.
func TreeAssignWithFrontier(p Problem) (Solution, []FrontierPoint, error) {
	return hap.TreeAssignWithFrontier(p)
}

// PruneDominated collapses dominated FU-type options (no faster AND no
// cheaper than another option) in a table; the optimum is unaffected.
// Returns the rewritten table and the number of collapsed options.
func PruneDominated(t *Table) (*Table, int) { return hap.PruneDominated(t) }

// ValueBinding records the register allocated to one value (see
// BindRegisters).
type ValueBinding = sched.ValueBinding

// BindRegisters allocates registers to the intra-iteration values of a
// schedule with the left-edge algorithm and returns the bindings plus the
// register count.
func BindRegisters(g *Graph, s *Schedule) ([]ValueBinding, int, error) {
	return sched.BindRegisters(g, s)
}

// MuxDemand estimates interconnect complexity: distinct sources feeding
// each FU instance (input multiplexer widths) and the widest one.
func MuxDemand(g *Graph, s *Schedule, cfg Config) (perInstance []int, widest int) {
	return sched.MuxDemand(g, s, cfg)
}

// WriteVCD dumps the simulated FU occupancy as a Value Change Dump
// waveform (GTKWave-compatible).
func WriteVCD(w io.Writer, g *Graph, lib *Library, s *Schedule, cfg Config, iterations, ii int) error {
	return sim.WriteVCD(w, g, lib, s, cfg, iterations, ii)
}

// RTLOptions tunes the Verilog backend.
type RTLOptions = rtl.Options

// EmitRTL generates a Verilog-2001 skeleton of the synthesized
// architecture: control FSM, minimal register file (left-edge binding),
// loop-carried state registers, and per-step register transfers. See
// internal/rtl for the documented simplifications.
func EmitRTL(g *Graph, lib *Library, s *Schedule, cfg Config, opts RTLOptions) (string, error) {
	return rtl.Emit(g, lib, s, cfg, opts)
}

// Catalog is a named FU library with per-operation-class timing/cost rows.
type Catalog = fu.Catalog

// Catalogs lists the bundled FU catalogs ("generic3", "lowpower",
// "reliable").
func Catalogs() []string { return fu.Catalogs() }

// LookupCatalog resolves a bundled FU catalog by name.
func LookupCatalog(name string) (Catalog, error) { return fu.LookupCatalog(name) }

// DesignPoint is one explored architecture (see ExploreArchitectures).
type DesignPoint = archopt.Point

// ExploreOptions bounds an architecture exploration.
type ExploreOptions = archopt.Options

// ExploreArchitectures sweeps deadlines and FU-library subsets, running
// the full two-phase flow at every point, and returns the explored designs
// plus the index of the one with the minimum total cost
// (execution cost + per-instance area of the configuration) — the "total
// cost" direction the paper's conclusion points at.
func ExploreArchitectures(g *Graph, t *Table, areas []int64, opts ExploreOptions) ([]DesignPoint, int, error) {
	return archopt.Explore(g, t, areas, opts)
}

// GraphMetrics summarizes the shape of a DFG's DAG portion.
type GraphMetrics = dfg.Metrics

// ComputeMetrics returns the shape metrics of a DFG.
func ComputeMetrics(g *Graph) (GraphMetrics, error) { return dfg.ComputeMetrics(g) }

// AssignmentExplanation describes an assignment's slack structure (see
// Explain).
type AssignmentExplanation = hap.Explanation

// Explain analyzes a feasible assignment against its deadline: the
// critical path and per-node slack (how much longer each node could run
// without breaking any path's deadline).
func Explain(p Problem, a Assignment) (AssignmentExplanation, error) { return hap.Explain(p, a) }
