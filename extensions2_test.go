package hetsynth

import (
	"testing"
)

func TestForceDirectedFacadeVsMinR(t *testing.T) {
	p, _ := buildQuickstart(t)
	sol, err := Solve(p, AlgoRepeat)
	if err != nil {
		t.Fatal(err)
	}
	sF, cF, err := ForceDirected(p.Graph, p.Table, sol.Assign, p.Deadline)
	if err != nil {
		t.Fatal(err)
	}
	sM, cM, err := BuildSchedule(p, sol.Assign)
	if err != nil {
		t.Fatal(err)
	}
	if sF.Length > p.Deadline || sM.Length > p.Deadline {
		t.Fatal("a phase-2 algorithm missed the deadline")
	}
	t.Logf("force-directed config %v (total %d), min_r config %v (total %d)",
		cF, cF.Total(), cM, cM.Total())
}

func TestRegisterDemandFacade(t *testing.T) {
	p, _ := buildQuickstart(t)
	res, err := Synthesize(p, AlgoRepeat)
	if err != nil {
		t.Fatal(err)
	}
	regs, err := RegisterDemand(p.Graph, res.Schedule, res.Schedule.Length)
	if err != nil {
		t.Fatal(err)
	}
	if regs < 1 {
		t.Fatalf("register demand %d, want >= 1 (values flow between FUs)", regs)
	}
}

func TestAnnealFacadeBeatsOrMatchesGreedy(t *testing.T) {
	p, _ := buildQuickstart(t)
	gs, err := Solve(p, AlgoGreedy)
	if err != nil {
		t.Fatal(err)
	}
	as, err := Anneal(p, AnnealOptions{Seed: 1, Moves: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if as.Cost > gs.Cost {
		t.Fatalf("anneal %d worse than greedy %d", as.Cost, gs.Cost)
	}
	exact, err := Solve(p, AlgoExact)
	if err != nil {
		t.Fatal(err)
	}
	if as.Cost < exact.Cost {
		t.Fatalf("anneal %d beat the optimum %d", as.Cost, exact.Cost)
	}
}
