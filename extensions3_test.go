package hetsynth

import (
	"bytes"
	"strings"
	"testing"
)

func TestTreeFrontierFacadeOnBenchmark(t *testing.T) {
	g, err := BenchmarkDFG("volterra")
	if err != nil {
		t.Fatal(err)
	}
	tab := RandomTable(2004, g.N(), 3)
	min, err := MinMakespan(g, tab)
	if err != nil {
		t.Fatal(err)
	}
	front, err := TreeFrontier(Problem{Graph: g, Table: tab, Deadline: 2 * min})
	if err != nil {
		t.Fatal(err)
	}
	if len(front) < 3 {
		t.Fatalf("frontier too coarse: %+v", front)
	}
	for i := 1; i < len(front); i++ {
		if front[i].Cost >= front[i-1].Cost {
			t.Fatalf("frontier not strictly decreasing: %+v", front)
		}
	}
}

func TestPruneDominatedFacadeOnCatalogTable(t *testing.T) {
	c, err := LookupCatalog("generic3")
	if err != nil {
		t.Fatal(err)
	}
	g, err := BenchmarkDFG("diffeq")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := c.TableFor(g.N(), func(v int) string { return g.Node(NodeID(v)).Op })
	if err != nil {
		t.Fatal(err)
	}
	pruned, collapsed := PruneDominated(tab)
	if collapsed != 0 {
		t.Fatalf("catalog rows are pareto; %d collapsed", collapsed)
	}
	min, err := MinMakespan(g, pruned)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(Problem{Graph: g, Table: pruned, Deadline: min + 3}, AlgoRepeat); err != nil {
		t.Fatal(err)
	}
}

func TestBindingAndMuxFacade(t *testing.T) {
	p, _ := buildQuickstart(t)
	res, err := Synthesize(p, AlgoRepeat)
	if err != nil {
		t.Fatal(err)
	}
	vals, regs, err := BindRegisters(p.Graph, res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if regs < 1 || len(vals) < 1 {
		t.Fatalf("binding degenerate: %d regs, %d values", regs, len(vals))
	}
	per, widest := MuxDemand(p.Graph, res.Schedule, res.Config)
	if len(per) != res.Config.Total() || widest < 1 {
		t.Fatalf("mux demand degenerate: %v widest %d", per, widest)
	}
}

func TestWriteVCDFacade(t *testing.T) {
	p, lib := buildQuickstart(t)
	res, err := Synthesize(p, AlgoRepeat)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteVCD(&buf, p.Graph, lib, res.Schedule, res.Config, 3, res.Schedule.Length); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "$enddefinitions") {
		t.Fatal("VCD header missing")
	}
}

func TestComputeMetricsFacade(t *testing.T) {
	g, err := BenchmarkDFG("elliptic")
	if err != nil {
		t.Fatal(err)
	}
	m, err := ComputeMetrics(g)
	if err != nil {
		t.Fatal(err)
	}
	if m.Nodes != 34 || m.Depth < 5 || m.MaxFanin != 2 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestCatalogEndToEnd(t *testing.T) {
	c, err := LookupCatalog("lowpower")
	if err != nil {
		t.Fatal(err)
	}
	g, err := BenchmarkDFG("8-stage-lattice")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := c.TableFor(g.N(), func(v int) string { return g.Node(NodeID(v)).Op })
	if err != nil {
		t.Fatal(err)
	}
	min, err := MinMakespan(g, tab)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Synthesize(Problem{Graph: g, Table: tab, Deadline: min + 10}, AlgoAuto)
	if err != nil {
		t.Fatal(err)
	}
	if res.Solution.Length > min+10 {
		t.Fatal("deadline violated")
	}
}
