package hetsynth

import (
	"testing"
)

func TestExploreArchitecturesFacade(t *testing.T) {
	g, err := BenchmarkDFG("diffeq")
	if err != nil {
		t.Fatal(err)
	}
	tab := RandomTable(2004, g.N(), 3)
	points, best, err := ExploreArchitectures(g, tab, []int64{40, 15, 4}, ExploreOptions{FullSetOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if best < 0 || best >= len(points) {
		t.Fatalf("best index %d of %d points", best, len(points))
	}
	for _, p := range points {
		if p.Total < points[best].Total {
			t.Fatalf("point %+v beats reported best %+v", p, points[best])
		}
		// Evaluate the assignment independently.
		s, err := Solve(Problem{Graph: g, Table: tab, Deadline: p.Deadline}, AlgoGreedy)
		if err != nil {
			t.Fatal(err)
		}
		_ = s // greedy feasibility at the same deadline confirms the ladder is sane
	}
}

func TestExploreArchitecturesSubsetSweep(t *testing.T) {
	g, err := BenchmarkDFG("diffeq")
	if err != nil {
		t.Fatal(err)
	}
	tab := RandomTable(2004, g.N(), 3)
	full, _, err := ExploreArchitectures(g, tab, []int64{40, 15, 4}, ExploreOptions{FullSetOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	swept, bestSwept, err := ExploreArchitectures(g, tab, []int64{40, 15, 4}, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(swept) <= len(full) {
		t.Fatalf("subset sweep explored %d points, full-only %d", len(swept), len(full))
	}
	// The swept best can only be at least as good: it includes the
	// full-library points.
	bestFullTotal := full[0].Total
	for _, p := range full {
		if p.Total < bestFullTotal {
			bestFullTotal = p.Total
		}
	}
	if swept[bestSwept].Total > bestFullTotal {
		t.Fatalf("sweep best %d worse than full-only best %d", swept[bestSwept].Total, bestFullTotal)
	}
}
