package hetsynth

import "testing"

func TestExplainFacade(t *testing.T) {
	p, _ := buildQuickstart(t)
	sol, err := Solve(p, AlgoExact)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := Explain(p, sol.Assign)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Length != sol.Length {
		t.Fatalf("explanation length %d != solution %d", ex.Length, sol.Length)
	}
	if len(ex.Critical) == 0 || len(ex.Slack) != p.Graph.N() {
		t.Fatalf("degenerate explanation: %+v", ex)
	}
	for _, s := range ex.Slack {
		if s < 0 {
			t.Fatalf("negative slack on a feasible assignment: %v", ex.Slack)
		}
	}
}
