package hetsynth

import (
	"strings"
	"testing"
)

func TestCompileKernelToSynthesisFlow(t *testing.T) {
	k, err := CompileKernel(`
		# two-stage lattice section
		e1 = x - k1*b0@1
		b1 = b0@1 - k1*e1
		e2 = e1 - k2*b1
		b0 = b1 - k2*e2
	`)
	if err != nil {
		t.Fatal(err)
	}
	g := k.Graph
	tab := RandomTable(5, g.N(), 3)
	min, err := MinMakespan(g, tab)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Synthesize(Problem{Graph: g, Table: tab, Deadline: min + 3}, AlgoAuto)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Length > min+3 {
		t.Fatalf("schedule length %d over deadline", res.Schedule.Length)
	}
	// And the synthesized datapath simulates.
	st, err := Simulate(g, tab, res.Schedule, res.Config, 8, res.Schedule.Length)
	if err != nil {
		t.Fatal(err)
	}
	if st.Ops != 8*g.N() {
		t.Fatalf("simulated %d ops, want %d", st.Ops, 8*g.N())
	}
}

func TestSolveILPAgreesWithExactOnFacade(t *testing.T) {
	p, _ := buildQuickstart(t)
	a, err := Solve(p, AlgoExact)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SolveILP(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost {
		t.Fatalf("exact %d != ILP %d", a.Cost, b.Cost)
	}
}

func TestSimulateAtMinII(t *testing.T) {
	p, lib := buildQuickstart(t)
	res, err := Synthesize(p, AlgoRepeat)
	if err != nil {
		t.Fatal(err)
	}
	ii, err := MinInitiationInterval(p.Graph, res.Schedule, res.Config)
	if err != nil {
		t.Fatal(err)
	}
	if ii > res.Schedule.Length {
		t.Fatalf("min II %d exceeds schedule length %d", ii, res.Schedule.Length)
	}
	st, err := Simulate(p.Graph, p.Table, res.Schedule, res.Config, 20, ii)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(st.Report(lib), "utilized") {
		t.Fatal("report broken")
	}
	// Overlap must never lower per-type utilization below the
	// non-overlapped run (same work, fewer cycles).
	slow, err := Simulate(p.Graph, p.Table, res.Schedule, res.Config, 20, res.Schedule.Length)
	if err != nil {
		t.Fatal(err)
	}
	for k := range st.Utilization {
		if st.Utilization[k]+1e-9 < slow.Utilization[k] {
			t.Fatalf("overlap lowered utilization of type %d: %.3f < %.3f",
				k, st.Utilization[k], slow.Utilization[k])
		}
	}
}

func TestListScheduleAndConfigSearchFacade(t *testing.T) {
	p, _ := buildQuickstart(t)
	sol, err := Solve(p, AlgoRepeat)
	if err != nil {
		t.Fatal(err)
	}
	s, cfg, err := MinConfigSearch(p.Graph, p.Table, sol.Assign, p.Deadline)
	if err != nil {
		t.Fatal(err)
	}
	if s.Length > p.Deadline {
		t.Fatalf("config search misses deadline: %d", s.Length)
	}
	s2, err := ListSchedule(p.Graph, p.Table, sol.Assign, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Length != s.Length {
		t.Fatalf("list schedule of found config differs: %d vs %d", s2.Length, s.Length)
	}
}

func TestRotateFacadeOnCyclicKernel(t *testing.T) {
	k, err := CompileKernel(`
		a = in + d@1
		b = a * k1
		c = b * k2
		d = c + a
	`)
	if err != nil {
		t.Fatal(err)
	}
	g := k.Graph
	tab := RandomTable(3, g.N(), 2)
	assign := make(Assignment, g.N())
	for v := range assign {
		assign[v] = 0
	}
	// One FU per node: resources never bottleneck the rotation.
	res, err := Rotate(g, tab, assign, Config{g.N(), 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Length > res.InitialLength {
		t.Fatalf("rotation worsened schedule: %d > %d", res.Schedule.Length, res.InitialLength)
	}
}

func TestUnfoldFacade(t *testing.T) {
	k, err := CompileKernel(`s = in + k*s@2`)
	if err != nil {
		t.Fatal(err)
	}
	g := k.Graph
	u, err := Unfold(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if u.N() != 2*g.N() {
		t.Fatalf("unfolded %d nodes, want %d", u.N(), 2*g.N())
	}
	tab := RandomTable(9, g.N(), 2)
	lifted := UnfoldTable(tab, 2)
	if lifted.N() != u.N() {
		t.Fatalf("lifted table covers %d, want %d", lifted.N(), u.N())
	}
	times := make([]int, g.N())
	for v := range times {
		times[v] = tab.MinTime(v)
	}
	num, den, err := IterationBound(g, times)
	if err != nil {
		t.Fatal(err)
	}
	if num <= 0 || den <= 0 {
		t.Fatalf("iteration bound %d/%d", num, den)
	}
}
