module hetsynth

go 1.22
