// Package hetsynth is a library for high-level synthesis of real-time DSP
// applications onto architectures built from heterogeneous functional units
// (FUs), reproducing Shao, Zhuge, He, Xue, Liu and Sha, "Assignment and
// Scheduling of Real-time DSP Applications for Heterogeneous Functional
// Units" (IPPS/IPDPS 2004).
//
// The flow has two phases:
//
//  1. Heterogeneous assignment: pick an FU type for every operation of a
//     data-flow graph so that the total cost (energy, reliability, price) is
//     minimized while every dependence chain meets a timing constraint.
//     Solvers: optimal dynamic programs for simple paths (Path_Assign) and
//     trees (Tree_Assign), the critical-path-tree heuristics for general
//     DFGs (DFG_Assign_Once, DFG_Assign_Repeat), a speed-driven greedy
//     baseline and a branch-and-bound optimum for small graphs.
//
//  2. Minimum-resource scheduling: turn the assignment into a static
//     schedule plus an FU configuration (how many instances of each type),
//     growing the configuration beyond the ASAP/ALAP lower bound only when
//     a node would otherwise miss its deadline.
//
// The quickest route is Synthesize, which runs both phases:
//
//	g := hetsynth.NewGraph()
//	// ... add nodes and edges ...
//	table := hetsynth.RandomTable(seed, g.N(), 3)
//	res, err := hetsynth.Synthesize(hetsynth.Problem{
//		Graph: g, Table: table, Deadline: 20,
//	}, hetsynth.AlgoAuto)
//
// See the examples/ directory for complete programs and DESIGN.md for the
// mapping from the paper's sections to packages.
package hetsynth

import (
	"context"
	"fmt"
	"math/rand"

	"hetsynth/internal/benchdfg"
	"hetsynth/internal/cptree"
	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
	"hetsynth/internal/hap"
	"hetsynth/internal/retime"
	"hetsynth/internal/sched"
)

// Core types, re-exported from the implementation packages. The aliases
// carry every method of the underlying types.
type (
	// Graph is a data-flow graph: operations, precedence edges, and
	// inter-iteration delays.
	Graph = dfg.Graph
	// NodeID identifies a node within one Graph.
	NodeID = dfg.NodeID
	// Node is one operation of a Graph.
	Node = dfg.Node
	// Edge is one precedence of a Graph.
	Edge = dfg.Edge
	// Library describes the available FU types.
	Library = fu.Library
	// FUType describes one FU type.
	FUType = fu.Type
	// TypeID indexes an FU type within a Library.
	TypeID = fu.TypeID
	// Table holds per-(node, type) execution times and costs.
	Table = fu.Table
	// Problem is one heterogeneous assignment instance.
	Problem = hap.Problem
	// Assignment maps each node to an FU type.
	Assignment = hap.Assignment
	// Solution is an assignment with its cost and schedule length.
	Solution = hap.Solution
	// Algorithm selects an assignment solver.
	Algorithm = hap.Algorithm
	// Config counts FU instances per type.
	Config = sched.Config
	// Schedule is a static schedule of one DFG iteration.
	Schedule = sched.Schedule
	// CriticalPathTree is a DFG expanded into a tree carrying all of its
	// critical paths.
	CriticalPathTree = cptree.Tree
)

// Assignment algorithms.
const (
	// AlgoAuto picks per graph shape: Path_Assign on simple paths,
	// Tree_Assign on trees, DFG_Assign_Repeat otherwise.
	AlgoAuto = hap.AlgoAuto
	// AlgoPath is the optimal DP for simple paths.
	AlgoPath = hap.AlgoPath
	// AlgoTree is the optimal DP for trees (out- or in-forests).
	AlgoTree = hap.AlgoTree
	// AlgoOnce is DFG_Assign_Once.
	AlgoOnce = hap.AlgoOnce
	// AlgoRepeat is DFG_Assign_Repeat, the paper's recommendation.
	AlgoRepeat = hap.AlgoRepeat
	// AlgoGreedy is the speed-driven greedy baseline.
	AlgoGreedy = hap.AlgoGreedy
	// AlgoGreedyRatio is the cost-aware greedy baseline (ablation).
	AlgoGreedyRatio = hap.AlgoGreedyRatio
	// AlgoExact is the branch-and-bound optimum for small graphs.
	AlgoExact = hap.AlgoExact
)

// ErrInfeasible reports that no assignment can meet the timing constraint.
var ErrInfeasible = hap.ErrInfeasible

// ErrShape reports that a shape-restricted solver got the wrong graph shape.
var ErrShape = hap.ErrShape

// NewGraph returns an empty data-flow graph.
func NewGraph() *Graph { return dfg.New() }

// NewLibrary builds an FU library from type descriptors.
func NewLibrary(types ...FUType) (*Library, error) { return fu.NewLibrary(types...) }

// StandardLibrary returns the paper's three-type library P1 (fastest, most
// expensive) to P3 (slowest, cheapest).
func StandardLibrary() *Library { return fu.StandardLibrary() }

// NewTable allocates an empty n-node, k-type time/cost table.
func NewTable(n, k int) *Table { return fu.NewTable(n, k) }

// RandomTable draws a paper-style random table (times increase, costs
// decrease across types) with a deterministic seed.
func RandomTable(seed int64, n, k int) *Table {
	return fu.RandomTable(rand.New(rand.NewSource(seed)), n, k)
}

// ReliabilityCosts derives a reliability-cost table from execution times
// and the library's per-type failure rates (§2 of the paper).
func ReliabilityCosts(lib *Library, times [][]int, scale float64) (*Table, error) {
	return fu.ReliabilityCosts(lib, times, scale)
}

// SystemReliability converts a summed reliability cost back to the survival
// probability of one DFG execution.
func SystemReliability(totalCost int64, scale float64) float64 {
	return fu.SystemReliability(totalCost, scale)
}

// ParseAlgorithm resolves a CLI algorithm name.
func ParseAlgorithm(s string) (Algorithm, error) { return hap.ParseAlgorithm(s) }

// Solve runs phase one: the selected assignment algorithm on the problem.
// Complexity follows the algorithm: the polynomial DP solvers (path, tree,
// once, repeat) are optimal on their graph classes, greedy is a heuristic
// baseline, and exact is an exponential branch-and-bound.
func Solve(p Problem, algo Algorithm) (Solution, error) { return hap.Solve(p, algo) }

// SolveContext is Solve with cooperative cancellation: the iterative and
// exponential solvers (DFG_Assign_Repeat, branch-and-bound) poll the context
// periodically and unwind with its error when it is cancelled or times out.
// The polynomial solvers finish in microseconds and run to completion.
func SolveContext(ctx context.Context, p Problem, algo Algorithm) (Solution, error) {
	return hap.SolveCtx(ctx, p, algo)
}

// MinMakespan returns the smallest deadline for which the problem is
// feasible (every node on its fastest type).
func MinMakespan(g *Graph, t *Table) (int, error) { return hap.MinMakespan(g, t) }

// Expand builds the critical-path tree of a DFG (Algorithm DFG_Expand),
// choosing the smaller of the two orientations like DFG_Assign_Once does.
func Expand(g *Graph) (*CriticalPathTree, error) { return cptree.ExpandBoth(g) }

// ResourceLowerBound computes the per-type FU lower bound of any schedule
// meeting the deadline (Algorithm Lower_Bound_R).
func ResourceLowerBound(g *Graph, t *Table, a Assignment, deadline int) (Config, error) {
	return sched.LowerBoundR(g, t, a, deadline)
}

// BuildSchedule runs phase two on an assignment: minimum-resource list
// scheduling (Algorithm Min_R_Scheduling), returning the schedule and the
// FU configuration.
func BuildSchedule(p Problem, a Assignment) (*Schedule, Config, error) {
	return sched.MinRSchedule(p.Graph, p.Table, a, p.Deadline)
}

// Gantt renders a schedule as a text chart, one row per FU instance.
func Gantt(g *Graph, lib *Library, s *Schedule, cfg Config) string {
	return sched.Gantt(g, lib, s, cfg)
}

// Result is the outcome of the full two-phase flow.
type Result struct {
	Solution Solution
	Schedule *Schedule
	Config   Config
}

// Synthesize runs both phases: assignment, then minimum-resource
// scheduling of the chosen assignment.
func Synthesize(p Problem, algo Algorithm) (Result, error) {
	return SynthesizeContext(context.Background(), p, algo)
}

// SynthesizeContext is Synthesize with cooperative cancellation (see
// SolveContext). Phase two is polynomial and always runs to completion once
// phase one has produced an assignment.
func SynthesizeContext(ctx context.Context, p Problem, algo Algorithm) (Result, error) {
	sol, err := SolveContext(ctx, p, algo)
	if err != nil {
		return Result{}, err
	}
	s, cfg, err := BuildSchedule(p, sol.Assign)
	if err != nil {
		return Result{}, err
	}
	return Result{Solution: sol, Schedule: s, Config: cfg}, nil
}

// MinimizePeriod retimes a (possibly cyclic) DFG to its minimum cycle
// period under the given node execution times, returning the retimed graph,
// the retiming vector, and the achieved period.
func MinimizePeriod(g *Graph, times []int) (*Graph, []int, int, error) {
	return retime.Minimize(g, times)
}

// CyclePeriod returns the longest zero-delay path time of a DFG.
func CyclePeriod(g *Graph, times []int) (int, error) { return retime.Period(g, times) }

// BenchmarkDFG builds one of the bundled benchmark DFGs by registry name
// (see BenchmarkNames).
func BenchmarkDFG(name string) (*Graph, error) {
	b, ok := benchdfg.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("hetsynth: unknown benchmark %q (known: %v)", name, benchdfg.Names())
	}
	return b.Build(), nil
}

// BenchmarkNames lists the bundled benchmark DFGs.
func BenchmarkNames() []string { return benchdfg.Names() }
