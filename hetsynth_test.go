package hetsynth

import (
	"errors"
	"strings"
	"testing"
)

// buildQuickstart assembles the façade-level version of the motivational
// example: a five-node DFG over the standard three-type library.
func buildQuickstart(t testing.TB) (Problem, *Library) {
	t.Helper()
	g := NewGraph()
	a := g.MustAddNode("A", "mul")
	b := g.MustAddNode("B", "mul")
	c := g.MustAddNode("C", "add")
	d := g.MustAddNode("D", "mul")
	e := g.MustAddNode("E", "add")
	g.MustAddEdge(a, c, 0)
	g.MustAddEdge(b, c, 0)
	g.MustAddEdge(c, e, 0)
	g.MustAddEdge(d, e, 0)
	tab := NewTable(5, 3)
	tab.MustSet(0, []int{1, 2, 4}, []int64{10, 6, 2})
	tab.MustSet(1, []int{2, 3, 6}, []int64{9, 6, 1})
	tab.MustSet(2, []int{1, 2, 3}, []int64{8, 4, 2})
	tab.MustSet(3, []int{2, 4, 7}, []int64{9, 5, 2})
	tab.MustSet(4, []int{1, 3, 5}, []int64{7, 4, 1})
	return Problem{Graph: g, Table: tab, Deadline: 6}, StandardLibrary()
}

func TestSynthesizeEndToEnd(t *testing.T) {
	p, lib := buildQuickstart(t)
	res, err := Synthesize(p, AlgoAuto)
	if err != nil {
		t.Fatal(err)
	}
	if res.Solution.Length > p.Deadline {
		t.Fatalf("length %d > deadline %d", res.Solution.Length, p.Deadline)
	}
	if res.Schedule.Length > p.Deadline {
		t.Fatalf("schedule length %d > deadline %d", res.Schedule.Length, p.Deadline)
	}
	if res.Config.Total() < 1 {
		t.Fatalf("empty configuration %v", res.Config)
	}
	lb, err := ResourceLowerBound(p.Graph, p.Table, res.Solution.Assign, p.Deadline)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Config.Covers(lb) {
		t.Fatalf("config %v below lower bound %v", res.Config, lb)
	}
	chart := Gantt(p.Graph, lib, res.Schedule, res.Config)
	for _, name := range []string{"A", "B", "C", "D", "E"} {
		if !strings.Contains(chart, name) {
			t.Errorf("Gantt missing node %s:\n%s", name, chart)
		}
	}
}

func TestSolveAlgorithmsAgreeOnOptimumDirection(t *testing.T) {
	p, _ := buildQuickstart(t)
	exact, err := Solve(p, AlgoExact)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{AlgoOnce, AlgoRepeat, AlgoGreedy, AlgoGreedyRatio} {
		s, err := Solve(p, algo)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if s.Cost < exact.Cost {
			t.Fatalf("%v beat the exact optimum: %d < %d", algo, s.Cost, exact.Cost)
		}
	}
}

func TestSynthesizeInfeasible(t *testing.T) {
	p, _ := buildQuickstart(t)
	p.Deadline = 1
	if _, err := Synthesize(p, AlgoAuto); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestBenchmarkRegistryFacade(t *testing.T) {
	names := BenchmarkNames()
	if len(names) < 8 {
		t.Fatalf("only %d benchmarks", len(names))
	}
	g, err := BenchmarkDFG("elliptic")
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 34 {
		t.Fatalf("elliptic has %d nodes", g.N())
	}
	if _, err := BenchmarkDFG("nope"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestBenchmarkSynthesisFullFlow(t *testing.T) {
	for _, name := range []string{"4-stage-lattice", "diffeq", "elliptic"} {
		g, err := BenchmarkDFG(name)
		if err != nil {
			t.Fatal(err)
		}
		tab := RandomTable(42, g.N(), 3)
		min, err := MinMakespan(g, tab)
		if err != nil {
			t.Fatal(err)
		}
		p := Problem{Graph: g, Table: tab, Deadline: min + 4}
		res, err := Synthesize(p, AlgoRepeat)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Solution.Length > p.Deadline || res.Schedule.Length > p.Deadline {
			t.Fatalf("%s: deadline violated", name)
		}
	}
}

func TestExpandFacade(t *testing.T) {
	g, err := BenchmarkDFG("diffeq")
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Expand(g)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tree.Duplicated()); got != 3 {
		t.Fatalf("diffeq duplicated nodes = %d, want 3", got)
	}
}

func TestReliabilityFacade(t *testing.T) {
	lib, err := NewLibrary(
		FUType{Name: "fast", FailureRate: 0.002},
		FUType{Name: "slow", FailureRate: 0.0005},
	)
	if err != nil {
		t.Fatal(err)
	}
	times := [][]int{{1, 3}, {2, 4}, {1, 2}}
	tab, err := ReliabilityCosts(lib, times, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGraph()
	n0 := g.MustAddNode("x", "")
	n1 := g.MustAddNode("y", "")
	g.MustAddNode("z", "")
	g.MustAddEdge(n0, n1, 0)
	p := Problem{Graph: g, Table: tab, Deadline: 7}
	s, err := Solve(p, AlgoAuto)
	if err != nil {
		t.Fatal(err)
	}
	rel := SystemReliability(s.Cost, 1e6)
	if rel <= 0 || rel > 1 {
		t.Fatalf("reliability %g out of range", rel)
	}
}

func TestRetimingFacade(t *testing.T) {
	g := NewGraph()
	a := g.MustAddNode("a", "")
	b := g.MustAddNode("b", "")
	g.MustAddEdge(a, b, 0)
	g.MustAddEdge(b, a, 2)
	times := []int{2, 2}
	before, err := CyclePeriod(g, times)
	if err != nil {
		t.Fatal(err)
	}
	if before != 4 {
		t.Fatalf("period = %d, want 4", before)
	}
	_, _, after, err := MinimizePeriod(g, times)
	if err != nil {
		t.Fatal(err)
	}
	if after != 2 {
		t.Fatalf("retimed period = %d, want 2", after)
	}
}

func TestParseAlgorithmFacade(t *testing.T) {
	a, err := ParseAlgorithm("repeat")
	if err != nil || a != AlgoRepeat {
		t.Fatalf("ParseAlgorithm(repeat) = %v, %v", a, err)
	}
}
