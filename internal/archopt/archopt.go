// Package archopt explores total architecture cost, the direction the
// paper's conclusion points at: phase one minimizes execution cost (energy,
// reliability) under a timing constraint and phase two minimizes FU count,
// but a designer ultimately pays for both — the operations' execution cost
// AND the silicon of the FU instances the configuration buys.
//
// Explore sweeps the two discrete knobs the flow exposes:
//
//   - the timing constraint, from the minimum makespan up to a cap
//     (looser deadlines trade latency for cheaper assignments and fewer
//     FUs), and
//   - the library subset: restricting which FU types may be used at all
//     (a type that appears in no node's assignment still costs nothing,
//     but forbidding a type can steer the assignment toward
//     configurations with fewer distinct instances).
//
// Every point runs the full two-phase flow; the result is the exact
// latency/total-cost frontier over the swept space plus the single best
// point.
package archopt

import (
	"errors"
	"fmt"
	"math"

	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
	"hetsynth/internal/hap"
	"hetsynth/internal/sched"
)

// Point is one explored design: a deadline, a type subset, and the
// resulting costs.
type Point struct {
	Deadline int
	// Types lists the allowed FU types (indices into the full table).
	Types    []fu.TypeID
	ExecCost int64
	Config   sched.Config // over the FULL type set
	AreaCost int64
	Total    int64
	Assign   hap.Assignment
}

// Options bounds the exploration.
type Options struct {
	// MaxDeadline caps the deadline sweep; 0 means 2x the minimum
	// makespan.
	MaxDeadline int
	// Step is the deadline increment; 0 means max(1, min makespan / 6).
	Step int
	// FullSetOnly disables the library-subset sweep.
	FullSetOnly bool
}

// Explore runs the sweep and returns every feasible point (deadline
// ascending, then subset order) plus the index of the minimum-total point.
// areas[k] is the silicon cost of one FU instance of type k.
func Explore(g *dfg.Graph, tab *fu.Table, areas []int64, opts Options) (points []Point, best int, err error) {
	if len(areas) != tab.K() {
		return nil, 0, fmt.Errorf("archopt: %d areas for %d types", len(areas), tab.K())
	}
	for k, a := range areas {
		if a < 0 {
			return nil, 0, fmt.Errorf("archopt: negative area for type %d", k)
		}
	}
	min, err := hap.MinMakespan(g, tab)
	if err != nil {
		return nil, 0, err
	}
	maxL := opts.MaxDeadline
	if maxL == 0 {
		maxL = 2 * min
	}
	step := opts.Step
	if step == 0 {
		step = min / 6
		if step < 1 {
			step = 1
		}
	}

	subsets := [][]fu.TypeID{allTypes(tab.K())}
	if !opts.FullSetOnly {
		subsets = typeSubsets(tab.K())
	}

	bestTotal := int64(math.MaxInt64)
	best = -1
	for L := min; L <= maxL; L += step {
		for _, subset := range subsets {
			sub, back := restrict(tab, subset)
			p := hap.Problem{Graph: g, Table: sub, Deadline: L}
			sol, err := hap.Solve(p, hap.AlgoAuto)
			if errors.Is(err, hap.ErrInfeasible) {
				continue // this subset cannot meet this deadline
			}
			if err != nil {
				return nil, 0, err
			}
			assign := make(hap.Assignment, len(sol.Assign))
			for v, k := range sol.Assign {
				assign[v] = back[k]
			}
			_, cfg, err := sched.MinRSchedule(g, tab, assign, L)
			if err != nil {
				return nil, 0, err
			}
			var area int64
			for k, n := range cfg {
				area += areas[k] * int64(n)
			}
			pt := Point{
				Deadline: L,
				Types:    subset,
				ExecCost: sol.Cost,
				Config:   cfg,
				AreaCost: area,
				Total:    sol.Cost + area,
				Assign:   assign,
			}
			points = append(points, pt)
			if pt.Total < bestTotal {
				bestTotal = pt.Total
				best = len(points) - 1
			}
		}
	}
	if best < 0 {
		return nil, 0, hap.ErrInfeasible
	}
	return points, best, nil
}

func allTypes(k int) []fu.TypeID {
	out := make([]fu.TypeID, k)
	for i := range out {
		out[i] = fu.TypeID(i)
	}
	return out
}

// typeSubsets enumerates every non-empty subset of the K types, full set
// first (so ties favor the unrestricted library).
func typeSubsets(k int) [][]fu.TypeID {
	var out [][]fu.TypeID
	out = append(out, allTypes(k))
	full := (1 << k) - 1
	for mask := 1; mask <= full; mask++ {
		if mask == full {
			continue
		}
		var s []fu.TypeID
		for i := 0; i < k; i++ {
			if mask&(1<<i) != 0 {
				s = append(s, fu.TypeID(i))
			}
		}
		out = append(out, s)
	}
	return out
}

// restrict builds a table over just the given types plus the map from the
// restricted type index back to the full index.
func restrict(t *fu.Table, subset []fu.TypeID) (*fu.Table, []fu.TypeID) {
	out := fu.NewTable(t.N(), len(subset))
	for v := 0; v < t.N(); v++ {
		for i, k := range subset {
			out.Time[v][i] = t.Time[v][k]
			out.Cost[v][i] = t.Cost[v][k]
		}
	}
	back := append([]fu.TypeID(nil), subset...)
	return out, back
}
