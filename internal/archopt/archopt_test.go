package archopt

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"hetsynth/internal/benchdfg"
	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
	"hetsynth/internal/hap"
	"hetsynth/internal/sched"
)

func TestExploreFindsCheaperTotalThanTightest(t *testing.T) {
	g := benchdfg.DiffEq()
	rng := rand.New(rand.NewSource(2))
	tab := fu.RandomTable(rng, g.N(), 3)
	areas := []int64{50, 20, 5} // fast FUs are big
	points, best, err := Explore(g, tab, areas, Options{FullSetOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 3 {
		t.Fatalf("only %d points", len(points))
	}
	// The tightest point pays for speed twice (exec cost and area); the
	// best total must be at least as good and is found at a looser
	// deadline here.
	if points[best].Total > points[0].Total {
		t.Fatalf("best %d worse than tightest %d", points[best].Total, points[0].Total)
	}
	for _, p := range points {
		if p.Total != p.ExecCost+p.AreaCost {
			t.Fatalf("inconsistent point %+v", p)
		}
	}
}

func TestExploreSubsetsCoverFullSetFirst(t *testing.T) {
	subs := typeSubsets(3)
	if len(subs) != 7 {
		t.Fatalf("%d subsets, want 7", len(subs))
	}
	if len(subs[0]) != 3 {
		t.Fatalf("first subset not the full set: %v", subs[0])
	}
}

func TestExploreValidatesInput(t *testing.T) {
	g := dfg.Chain(3)
	tab := fu.UniformTable(3, []int{1, 2}, []int64{5, 1})
	if _, _, err := Explore(g, tab, []int64{1}, Options{}); err == nil {
		t.Error("short areas accepted")
	}
	if _, _, err := Explore(g, tab, []int64{1, -1}, Options{}); err == nil {
		t.Error("negative area accepted")
	}
}

func TestExploreInfeasibleRange(t *testing.T) {
	// MaxDeadline below the minimum makespan leaves no feasible point.
	g := dfg.Chain(4)
	tab := fu.UniformTable(4, []int{3, 5}, []int64{5, 1})
	_, _, err := Explore(g, tab, []int64{1, 1}, Options{MaxDeadline: 2})
	if !errors.Is(err, hap.ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

// TestExploreProperties: every point's assignment is feasible at its
// deadline, uses only its subset's types, and its config covers the usage.
func TestExploreProperties(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		g := dfg.RandomDAG(rng, n, 0.3)
		tab := fu.RandomTable(rng, n, 3)
		areas := []int64{int64(rng.Intn(40)), int64(rng.Intn(20)), int64(rng.Intn(8))}
		points, best, err := Explore(g, tab, areas, Options{})
		if err != nil {
			return errors.Is(err, hap.ErrInfeasible)
		}
		if best < 0 || best >= len(points) {
			return false
		}
		for _, pt := range points {
			s, err := hap.Evaluate(hap.Problem{Graph: g, Table: tab, Deadline: pt.Deadline}, pt.Assign)
			if err != nil || s.Length > pt.Deadline || s.Cost != pt.ExecCost {
				return false
			}
			allowed := map[fu.TypeID]bool{}
			for _, k := range pt.Types {
				allowed[k] = true
			}
			for _, k := range pt.Assign {
				if !allowed[k] {
					return false
				}
			}
			// Config covers per-type usage needs (validated by scheduling).
			if _, err := sched.ListSchedule(g, tab, pt.Assign, pt.Config); err != nil {
				return false
			}
			if pt.Total < points[best].Total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestSubsetRestrictionCanWin: with extreme areas, forbidding the fast
// expensive type must be at least as good as the full library.
func TestSubsetRestrictionCanWin(t *testing.T) {
	g := benchdfg.RLSLaguerre()
	rng := rand.New(rand.NewSource(5))
	tab := fu.RandomTable(rng, g.N(), 3)
	areas := []int64{1000, 10, 1} // type 0 is prohibitively large
	points, best, err := Explore(g, tab, areas, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bp := points[best]
	if bp.Config[0] != 0 {
		t.Fatalf("best design still buys the 1000-area type: %+v", bp)
	}
}
