// Package asciiplot renders small line charts as plain text, used by
// cmd/experiments to draw cost-versus-deadline curves (the Pareto view of
// the evaluation) without any graphics dependency.
package asciiplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve; X and Y must have equal lengths.
type Series struct {
	Name   string
	Marker byte // single character used for the points
	X      []float64
	Y      []float64
}

// Plot renders the series into a width x height character grid with Y
// scaled to the data range and X mapped linearly. Points from later series
// overwrite earlier ones where they collide.
func Plot(title string, width, height int, series ...Series) (string, error) {
	if width < 16 || height < 4 {
		return "", fmt.Errorf("asciiplot: grid %dx%d too small", width, height)
	}
	if len(series) == 0 {
		return "", fmt.Errorf("asciiplot: no series")
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			return "", fmt.Errorf("asciiplot: series %q has %d x and %d y values", s.Name, len(s.X), len(s.Y))
		}
		if len(s.X) == 0 {
			return "", fmt.Errorf("asciiplot: series %q is empty", s.Name)
		}
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range series {
		m := s.Marker
		if m == 0 {
			m = '*'
		}
		for i := range s.X {
			c := int(math.Round((s.X[i] - minX) / (maxX - minX) * float64(width-1)))
			r := int(math.Round((s.Y[i] - minY) / (maxY - minY) * float64(height-1)))
			grid[height-1-r][c] = m
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	yLabelW := len(fmt.Sprintf("%.0f", maxY))
	for r := 0; r < height; r++ {
		label := strings.Repeat(" ", yLabelW)
		switch r {
		case 0:
			label = fmt.Sprintf("%*.0f", yLabelW, maxY)
		case height - 1:
			label = fmt.Sprintf("%*.0f", yLabelW, minY)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", yLabelW), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %-*.0f%*.0f\n", strings.Repeat(" ", yLabelW), width/2, minX, width-width/2, maxX)
	var legend []string
	for _, s := range series {
		m := s.Marker
		if m == 0 {
			m = '*'
		}
		legend = append(legend, fmt.Sprintf("%c=%s", m, s.Name))
	}
	fmt.Fprintf(&b, "legend: %s\n", strings.Join(legend, "  "))
	return b.String(), nil
}
