package asciiplot

import (
	"strings"
	"testing"
)

func TestPlotBasics(t *testing.T) {
	out, err := Plot("demo", 40, 10,
		Series{Name: "up", Marker: 'u', X: []float64{0, 1, 2}, Y: []float64{1, 2, 3}},
		Series{Name: "down", Marker: 'd', X: []float64{0, 1, 2}, Y: []float64{3, 2, 1}},
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"demo", "u=up", "d=down", "u", "d", "+-"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	// Axis labels carry the data range.
	if !strings.Contains(out, "3") || !strings.Contains(out, "1") {
		t.Errorf("y labels missing:\n%s", out)
	}
}

func TestPlotValidation(t *testing.T) {
	if _, err := Plot("t", 5, 2, Series{X: []float64{1}, Y: []float64{1}}); err == nil {
		t.Error("tiny grid accepted")
	}
	if _, err := Plot("t", 40, 10); err == nil {
		t.Error("no series accepted")
	}
	if _, err := Plot("t", 40, 10, Series{X: []float64{1}, Y: []float64{}}); err == nil {
		t.Error("ragged series accepted")
	}
	if _, err := Plot("t", 40, 10, Series{X: nil, Y: nil}); err == nil {
		t.Error("empty series accepted")
	}
}

func TestPlotConstantSeries(t *testing.T) {
	// Degenerate ranges must not divide by zero.
	out, err := Plot("flat", 30, 6, Series{Name: "c", X: []float64{5, 5}, Y: []float64{2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "*") {
		t.Fatalf("marker missing:\n%s", out)
	}
}

func TestPlotDefaultMarker(t *testing.T) {
	out, err := Plot("m", 30, 6, Series{Name: "s", X: []float64{0, 1}, Y: []float64{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "*=s") {
		t.Fatalf("default marker not applied:\n%s", out)
	}
}
