// Package benchdfg constructs the benchmark data-flow graphs of the paper's
// evaluation (§7) plus a few extras used by the wider test and benchmark
// suites.
//
// The paper's six benchmarks are classic high-level-synthesis workloads:
// 4-stage and 8-stage lattice filters and the Volterra filter (tree-shaped
// DFGs), and the differential-equation solver, RLS-Laguerre lattice filter
// and 5th-order elliptic wave filter (general DFGs). The paper does not
// publish the exact netlists, so the constructors below rebuild the
// standard published structures, shaped to the structural facts the paper
// does state: the first three are trees; the differential-equation solver
// and RLS-Laguerre filter have 3 duplicated nodes each and the elliptic
// filter has 9, where a duplicated node is one with more than one copy in
// the critical-path tree chosen by DFG_Expand. Tests pin those counts.
//
// All graphs are fan-in oriented: edges point from producers (inputs,
// multipliers) toward the consumers that merge them, the usual drawing of
// filter DFGs. Node op classes are "mul", "add", "sub" and "cmp".
package benchdfg

import (
	"fmt"
	"sort"

	"hetsynth/internal/dfg"
)

// LatticeFilter builds the tree DFG of an n-stage normalized lattice
// filter. Each stage contributes two multipliers and two adders:
//
//	out_i = add2_i( mul2_i, add1_i( mul1_i, out_{i−1} ) )
//
// with a single input node seeding out_0. The result is an in-tree with
// 4n+1 nodes; 4 stages give the paper's "4-stage lattice filter" (17
// nodes), 8 stages the "8-stage lattice filter" (33 nodes).
func LatticeFilter(stages int) *dfg.Graph {
	if stages < 1 {
		panic("benchdfg: lattice filter needs at least one stage")
	}
	g := dfg.New()
	prev := g.MustAddNode("in", "add") // input conditioning op
	for s := 1; s <= stages; s++ {
		m1 := g.MustAddNode(fmt.Sprintf("mul1_%d", s), "mul")
		m2 := g.MustAddNode(fmt.Sprintf("mul2_%d", s), "mul")
		a1 := g.MustAddNode(fmt.Sprintf("add1_%d", s), "add")
		a2 := g.MustAddNode(fmt.Sprintf("add2_%d", s), "add")
		g.MustAddEdge(m1, a1, 0)
		g.MustAddEdge(prev, a1, 0)
		g.MustAddEdge(m2, a2, 0)
		g.MustAddEdge(a1, a2, 0)
		prev = a2
	}
	return g
}

// Volterra builds the tree DFG of a second-order Volterra filter section:
// ten product terms x_i·x_j, each scaled by a kernel coefficient, summed by
// a binary adder tree. 10 data multipliers + 10 coefficient multipliers +
// 9 adders = 29 nodes, an in-tree.
func Volterra() *dfg.Graph {
	g := dfg.New()
	var terms []dfg.NodeID
	for i := 0; i < 10; i++ {
		d := g.MustAddNode(fmt.Sprintf("xprod%d", i), "mul") // x_i * x_j
		c := g.MustAddNode(fmt.Sprintf("kcoef%d", i), "mul") // h_ij * xprod
		g.MustAddEdge(d, c, 0)
		terms = append(terms, c)
	}
	// Left-to-right binary adder tree over the ten scaled terms.
	level := 0
	for len(terms) > 1 {
		var next []dfg.NodeID
		for i := 0; i+1 < len(terms); i += 2 {
			a := g.MustAddNode(fmt.Sprintf("sum%d_%d", level, i/2), "add")
			g.MustAddEdge(terms[i], a, 0)
			g.MustAddEdge(terms[i+1], a, 0)
			next = append(next, a)
		}
		if len(terms)%2 == 1 {
			next = append(next, terms[len(terms)-1])
		}
		terms = next
		level++
	}
	return g
}

// DiffEq builds the DFG of the differential-equation solver (the HAL
// benchmark of Paulin and Knight): one Euler step of y” + 3xy' + 3y = 0,
//
//	u' = u − 3·x·(u·dx) − 3·y·dx ;  x' = x + dx ;  y' = y + u·dx ;  x' < a
//
// The shared subexpression u·dx feeds both the u' chain and the y' update,
// which makes the graph a proper DFG rather than a tree: the critical-path
// tree duplicates 3 nodes, matching the count the paper reports.
func DiffEq() *dfg.Graph {
	g := dfg.New()
	uld := g.MustAddNode("ld_u", "add")   // load/condition u
	dxld := g.MustAddNode("ld_dx", "add") // load/condition dx
	m1 := g.MustAddNode("mul1", "mul")    // 3 * x
	m2 := g.MustAddNode("mul2", "mul")    // u * dx (shared subexpression)
	m3 := g.MustAddNode("mul3", "mul")    // (3x) * (u·dx)
	m4 := g.MustAddNode("mul4", "mul")    // 3 * y
	m5 := g.MustAddNode("mul5", "mul")    // (3y) * dx
	s1 := g.MustAddNode("sub1", "sub")    // u − mul3
	s2 := g.MustAddNode("sub2", "sub")    // sub1 − mul5  (u')
	a1 := g.MustAddNode("add1", "add")    // x + dx      (x')
	a2 := g.MustAddNode("add2", "add")    // y + u·dx    (y')
	cmp := g.MustAddNode("cmp", "cmp")    // x' < a
	g.MustAddEdge(uld, m2, 0)
	g.MustAddEdge(dxld, m2, 0)
	g.MustAddEdge(m1, m3, 0)
	g.MustAddEdge(m2, m3, 0)
	g.MustAddEdge(m3, s1, 0)
	g.MustAddEdge(m4, m5, 0)
	g.MustAddEdge(s1, s2, 0)
	g.MustAddEdge(m5, s2, 0)
	g.MustAddEdge(m2, a2, 0) // the shared u·dx
	g.MustAddEdge(a1, cmp, 0)
	return g
}

// RLSLaguerre builds the DFG of one section of an RLS-Laguerre lattice
// filter: two lattice butterflies whose cross-coupling shares a forward
// error term. The shared term makes it a general DFG; its critical-path
// tree duplicates 3 nodes, matching the paper.
func RLSLaguerre() *dfg.Graph {
	g := dfg.New()
	// Laguerre all-pass pre-stage driving the backward path.
	ap1 := g.MustAddNode("ap_mul1", "mul")
	ap2 := g.MustAddNode("ap_mul2", "mul")
	apa := g.MustAddNode("ap_add", "add")
	g.MustAddEdge(ap1, apa, 0)
	g.MustAddEdge(ap2, apa, 0)
	// Butterfly 1: forward error f1 = e + k1·b, backward b1 = b + k1·e.
	ein := g.MustAddNode("e_in", "add") // input conditioning of e
	k1f := g.MustAddNode("k1_mulf", "mul")
	k1b := g.MustAddNode("k1_mulb", "mul")
	f1 := g.MustAddNode("f1_add", "add")
	b1 := g.MustAddNode("b1_add", "add")
	g.MustAddEdge(ein, f1, 0)
	g.MustAddEdge(k1f, f1, 0)
	g.MustAddEdge(apa, k1b, 0) // all-pass output drives the backward leg
	g.MustAddEdge(k1b, b1, 0)
	// Butterfly 2 consumes f1 twice (forward path and gain update): the
	// shared fan-out that breaks tree-ness.
	k2f := g.MustAddNode("k2_mulf", "mul")
	k2b := g.MustAddNode("k2_mulb", "mul")
	f2 := g.MustAddNode("f2_add", "add")
	b2 := g.MustAddNode("b2_add", "add")
	g.MustAddEdge(f1, k2f, 0)
	g.MustAddEdge(k2f, f2, 0)
	g.MustAddEdge(f1, k2b, 0)
	g.MustAddEdge(k2b, b2, 0)
	g.MustAddEdge(b1, b2, 0)
	// RLS gain update chain on the forward output.
	gm := g.MustAddNode("gain_mul", "mul")
	ga := g.MustAddNode("gain_add", "add")
	gs := g.MustAddNode("gain_sub", "sub")
	g.MustAddEdge(f2, gm, 0)
	g.MustAddEdge(gm, ga, 0)
	g.MustAddEdge(ga, gs, 0)
	return g
}

// Elliptic builds the DFG of the 5th-order elliptic wave filter, the
// classic 34-node HLS benchmark (26 additions, 8 multiplications). The
// structure below follows the usual drawing — two input adder chains
// feeding a multiplier ladder with shared feedback adders; the shared
// adders give its critical-path tree 9 duplicated nodes, as the paper
// reports.
func Elliptic() *dfg.Graph {
	g := dfg.New()
	add := func(name string) dfg.NodeID { return g.MustAddNode(name, "add") }
	mul := func(name string) dfg.NodeID { return g.MustAddNode(name, "mul") }
	e := func(u, v dfg.NodeID) { g.MustAddEdge(u, v, 0) }

	// Input section: two adder chains (delayed-state sums) ending in the
	// multiplier pair that drives the shared center adder a8.
	a1, a2, a3, a4 := add("a1"), add("a2"), add("a3"), add("a4")
	e(a1, a2)
	e(a2, a3)
	e(a3, a4)
	a5, a6, a7 := add("a5"), add("a6"), add("a7")
	e(a5, a6)
	e(a6, a7)
	m1, m2 := mul("m1"), mul("m2")
	e(a4, m1)
	e(a7, m2)
	a8 := add("a8")
	e(m1, a8)
	e(m2, a8) // a8 merges both input halves: the shared feedback adder
	// Center ladder below a8: two symmetric branches. These nine nodes
	// (a8..a14 and the two multipliers) are what the critical-path tree
	// duplicates.
	a9, a10 := add("a9"), add("a10")
	e(a8, a9)
	e(a8, a10)
	m3, m4 := mul("m3"), mul("m4")
	e(a9, m3)
	e(a10, m4)
	a11, a12 := add("a11"), add("a12")
	e(m3, a11)
	e(m4, a12)
	a13, a14 := add("a13"), add("a14")
	e(a11, a13)
	e(a13, a14)
	// Output branches tapped off the input chains (feed-forward paths of
	// the wave filter).
	a15, a17, a19 := add("a15"), add("a17"), add("a19")
	m5 := mul("m5")
	e(a4, a15)
	e(a15, m5)
	e(m5, a17)
	e(a17, a19)
	a16, a18, a20 := add("a16"), add("a18"), add("a20")
	m6 := mul("m6")
	e(a7, a16)
	e(a16, m6)
	e(m6, a18)
	e(a18, a20)
	a21, a23 := add("a21"), add("a23")
	m7 := mul("m7")
	e(a2, a21)
	e(a21, m7)
	e(m7, a23)
	a22, a24 := add("a22"), add("a24")
	m8 := mul("m8")
	e(a6, a22)
	e(a22, m8)
	e(m8, a24)
	a25, a26 := add("a25"), add("a26")
	e(a19, a25)
	e(a20, a26)
	return g
}

// FIR builds a transposed-form FIR filter with the given number of taps:
// one multiplier per tap feeding a chain of accumulating adders — a tree,
// used by the extended experiments.
func FIR(taps int) *dfg.Graph {
	if taps < 2 {
		panic("benchdfg: FIR needs at least two taps")
	}
	g := dfg.New()
	prev := g.MustAddNode("tap_mul0", "mul")
	for i := 1; i < taps; i++ {
		m := g.MustAddNode(fmt.Sprintf("tap_mul%d", i), "mul")
		a := g.MustAddNode(fmt.Sprintf("acc_add%d", i), "add")
		g.MustAddEdge(prev, a, 0)
		g.MustAddEdge(m, a, 0)
		prev = a
	}
	return g
}

// IIRBiquad builds a cascade of direct-form-II biquad sections. Each
// section's center node fans out to its feed-forward taps, so the cascade
// is a general DFG with duplicated nodes, used by the extended experiments
// and the retiming example (the section feedback edges carry delays).
func IIRBiquad(sections int) *dfg.Graph {
	if sections < 1 {
		panic("benchdfg: IIR cascade needs at least one section")
	}
	g := dfg.New()
	var prevOut dfg.NodeID = dfg.None
	for s := 0; s < sections; s++ {
		n := func(name, op string) dfg.NodeID {
			return g.MustAddNode(fmt.Sprintf("s%d_%s", s, name), op)
		}
		center := n("center_add", "add") // w[n] = x − a1·w[n−1] − a2·w[n−2]
		fb1 := n("fb_mul1", "mul")
		fb2 := n("fb_mul2", "mul")
		g.MustAddEdge(center, fb1, 1) // w feeds back through one delay
		g.MustAddEdge(center, fb2, 2) // and through two delays
		g.MustAddEdge(fb1, center, 1)
		g.MustAddEdge(fb2, center, 1)
		ff0 := n("ff_mul0", "mul")
		ff1 := n("ff_mul1", "mul")
		ff2 := n("ff_mul2", "mul")
		g.MustAddEdge(center, ff0, 0) // b0·w[n]
		g.MustAddEdge(center, ff1, 0) // b1·w[n] (delayed at the adder)
		g.MustAddEdge(center, ff2, 0)
		out1 := n("out_add1", "add")
		out2 := n("out_add2", "add")
		g.MustAddEdge(ff0, out1, 0)
		g.MustAddEdge(ff1, out1, 0)
		g.MustAddEdge(ff2, out2, 0)
		g.MustAddEdge(out1, out2, 0)
		if prevOut != dfg.None {
			g.MustAddEdge(prevOut, center, 0)
		}
		prevOut = out2
	}
	return g
}

// Benchmark couples a registry name with its constructor and the structural
// facts the paper states (used by tests and table headers).
type Benchmark struct {
	Name  string
	Build func() *dfg.Graph
	// Tree reports whether the paper classifies the DFG as a tree.
	Tree bool
	// PaperDuplicated is the duplicated-node count the paper reports for
	// non-tree benchmarks (0 for trees).
	PaperDuplicated int
}

// paper6 lists the six benchmarks of Tables 1 and 2, in table order.
var paper6 = []Benchmark{
	{Name: "4-stage-lattice", Build: func() *dfg.Graph { return LatticeFilter(4) }, Tree: true},
	{Name: "8-stage-lattice", Build: func() *dfg.Graph { return LatticeFilter(8) }, Tree: true},
	{Name: "volterra", Build: Volterra, Tree: true},
	{Name: "diffeq", Build: DiffEq, PaperDuplicated: 3},
	{Name: "rls-laguerre", Build: RLSLaguerre, PaperDuplicated: 3},
	{Name: "elliptic", Build: Elliptic, PaperDuplicated: 9},
}

// extra lists additional workloads beyond the paper's set.
var extra = []Benchmark{
	{Name: "fir16", Build: func() *dfg.Graph { return FIR(16) }, Tree: true},
	{Name: "iir4", Build: func() *dfg.Graph { return IIRBiquad(4) }},
	{Name: "fft8", Build: func() *dfg.Graph { return FFT(8) }},
	{Name: "wdf5", Build: func() *dfg.Graph { return WDF(5) }},
}

// Paper returns the paper's six benchmarks in table order.
func Paper() []Benchmark {
	return append([]Benchmark(nil), paper6...)
}

// All returns every registered benchmark, the paper's six first.
func All() []Benchmark {
	return append(Paper(), extra...)
}

// Lookup finds a benchmark by registry name.
func Lookup(name string) (Benchmark, bool) {
	for _, b := range All() {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// Names returns all registry names, sorted.
func Names() []string {
	var out []string
	for _, b := range All() {
		out = append(out, b.Name)
	}
	sort.Strings(out)
	return out
}
