package benchdfg

import (
	"testing"

	"hetsynth/internal/cptree"
)

func TestAllBenchmarksValidate(t *testing.T) {
	for _, b := range All() {
		g := b.Build()
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
		if g.N() == 0 {
			t.Errorf("%s: empty graph", b.Name)
		}
	}
}

func TestPaperStructuralFacts(t *testing.T) {
	// The paper states: the two lattice filters and the Volterra filter
	// are trees; diffeq and RLS-Laguerre have 3 duplicated nodes, elliptic
	// has 9, where duplicated means >1 copy in the critical-path tree
	// chosen by DFG_Expand (the smaller of the two orientations).
	for _, b := range Paper() {
		g := b.Build()
		isTree := g.IsInForest() || g.IsOutForest()
		if isTree != b.Tree {
			t.Errorf("%s: tree=%v, paper says %v", b.Name, isTree, b.Tree)
		}
		tree, err := cptree.ExpandBoth(g)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if got := len(tree.Duplicated()); got != b.PaperDuplicated {
			t.Errorf("%s: %d duplicated nodes, paper says %d", b.Name, got, b.PaperDuplicated)
		}
	}
}

func TestBenchmarkSizes(t *testing.T) {
	sizes := map[string]int{
		"4-stage-lattice": 17,
		"8-stage-lattice": 33,
		"volterra":        29,
		"diffeq":          12,
		"rls-laguerre":    15,
		"elliptic":        34,
		"fir16":           31,
		"iir4":            32,
	}
	for name, want := range sizes {
		b, ok := Lookup(name)
		if !ok {
			t.Fatalf("benchmark %s not registered", name)
		}
		if got := b.Build().N(); got != want {
			t.Errorf("%s: %d nodes, want %d", name, got, want)
		}
	}
}

func TestEllipticOpMix(t *testing.T) {
	// The classic 5th-order elliptic wave filter: 26 additions and 8
	// multiplications.
	g := Elliptic()
	counts := map[string]int{}
	for _, n := range g.Nodes() {
		counts[n.Op]++
	}
	if counts["add"] != 26 || counts["mul"] != 8 {
		t.Fatalf("op mix = %v, want 26 add / 8 mul", counts)
	}
}

func TestLatticeStagesScaleLinearly(t *testing.T) {
	for _, stages := range []int{1, 2, 4, 8, 16} {
		g := LatticeFilter(stages)
		if g.N() != 4*stages+1 {
			t.Errorf("%d stages: %d nodes, want %d", stages, g.N(), 4*stages+1)
		}
		if !g.IsInForest() {
			t.Errorf("%d stages: not a fan-in tree", stages)
		}
	}
}

func TestConstructorPanicsOnBadArgs(t *testing.T) {
	for name, f := range map[string]func(){
		"lattice0": func() { LatticeFilter(0) },
		"fir1":     func() { FIR(1) },
		"iir0":     func() { IIRBiquad(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestIIRHasDelayEdges(t *testing.T) {
	g := IIRBiquad(2)
	delayed := 0
	for _, e := range g.Edges() {
		if e.Delays > 0 {
			delayed++
		}
	}
	if delayed != 8 { // 4 delay edges per section
		t.Fatalf("%d delayed edges, want 8", delayed)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("DAG portion invalid: %v", err)
	}
}

func TestRegistry(t *testing.T) {
	if len(Paper()) != 6 {
		t.Fatalf("paper set has %d entries", len(Paper()))
	}
	if len(All()) < 8 {
		t.Fatalf("registry has %d entries", len(All()))
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("unknown name resolved")
	}
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names not sorted: %v", names)
		}
	}
	// Mutating the returned slices must not corrupt the registry.
	p := Paper()
	p[0].Name = "clobbered"
	if All()[0].Name != "4-stage-lattice" {
		t.Fatal("registry aliased by Paper()")
	}
}

func TestFIRIsTree(t *testing.T) {
	g := FIR(16)
	if !g.IsInForest() {
		t.Fatal("FIR not a fan-in tree")
	}
	if _, err := cptree.ExpandBoth(g); err != nil {
		t.Fatal(err)
	}
}

func TestVolterraShape(t *testing.T) {
	g := Volterra()
	if !g.IsInForest() {
		t.Fatal("Volterra not a fan-in tree")
	}
	// Ten product leaves, one summed root.
	leaves := 0
	for _, n := range g.Nodes() {
		if g.InDegree(n.ID) == 0 {
			leaves++
		}
	}
	if leaves != 10 {
		t.Fatalf("%d roots (product inputs), want 10", leaves)
	}
	sinks := g.Leaves()
	if len(sinks) != 1 {
		t.Fatalf("%d sinks, want 1", len(sinks))
	}
}
