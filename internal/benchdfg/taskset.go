package benchdfg

import (
	"fmt"
	"math"
	"math/rand"

	"hetsynth/internal/fu"
)

// Period distributions accepted by TaskSetSpec.Periods.
const (
	// PeriodsHarmonic rounds every generated period up to the next power of
	// two, so any two periods in the set divide each other and the
	// hyperperiod stays equal to the largest period.
	PeriodsHarmonic = "harmonic"
	// PeriodsUniform keeps the utilization-derived periods as generated, so
	// they land anywhere on the integer grid and the hyperperiod can be
	// much larger than any single period.
	PeriodsUniform = "uniform"
)

// maxTaskPeriod caps generated periods; it is far inside every consumer's
// own bound (the admit endpoint accepts periods up to 2^31−1 and the RTA
// horizon is 2^30) while keeping harmonic hyperperiods simulable.
const maxTaskPeriod = 1 << 20

// TaskSetSpec parameterizes a reproducible periodic task-set draw: how many
// tasks, the total utilization they should target on their fastest FU types,
// how periods are distributed, and the seed that makes the draw repeatable.
type TaskSetSpec struct {
	// Tasks is the number of periodic tasks to generate, in [1, 64].
	Tasks int
	// Utilization is the target sum over tasks of (minimum work / period),
	// where minimum work runs every node on its fastest FU type. Split
	// across tasks with the UUniFast algorithm; must be positive. Values
	// above 1 produce heavy tasks that only fit with dedicated parallel
	// capacity.
	Utilization float64
	// Periods selects the period distribution: PeriodsHarmonic (default) or
	// PeriodsUniform.
	Periods string
	// Types is the number of FU types in each task's random table
	// (default 3, max 8).
	Types int
	// Seed drives every random choice; equal specs generate equal sets.
	Seed int64
}

// TaskSpec is one generated periodic task, expressed in the same vocabulary
// the admission endpoint consumes: a bundled benchmark name, the seed and
// type count of its random FU table, and the period/deadline in steps. A
// zero Deadline means implicit (equal to the period).
type TaskSpec struct {
	Bench    string `json:"bench"`
	Seed     int64  `json:"seed"`
	Types    int    `json:"types"`
	Period   int    `json:"period"`
	Deadline int    `json:"deadline,omitempty"`
}

// TaskSet generates a periodic task set from spec, reproducibly by seed.
//
// Each task draws a benchmark from the registry and a fresh random FU table
// (the same fu.RandomTable draw the server performs for a {seed, types}
// request, so a generated TaskSpec round-trips over the wire bit-identically).
// The spec's total utilization is split across tasks with UUniFast; each
// task's period is then its minimum work divided by its utilization share,
// clamped below by the critical path on fastest types (shorter periods are
// trivially infeasible) and above by an internal cap, then shaped by the
// period distribution. Half the tasks, chosen by the same stream, get a
// constrained deadline at three quarters of the period. O(Σ|V|+|E|) over the
// drawn benchmarks.
func TaskSet(spec TaskSetSpec) ([]TaskSpec, error) {
	if spec.Tasks < 1 || spec.Tasks > 64 {
		return nil, fmt.Errorf("benchdfg: taskset: tasks %d out of range [1, 64]", spec.Tasks)
	}
	if !(spec.Utilization > 0) || spec.Utilization > 64 {
		return nil, fmt.Errorf("benchdfg: taskset: utilization %v out of range (0, 64]", spec.Utilization)
	}
	periods := spec.Periods
	if periods == "" {
		periods = PeriodsHarmonic
	}
	if periods != PeriodsHarmonic && periods != PeriodsUniform {
		return nil, fmt.Errorf("benchdfg: taskset: unknown period distribution %q", spec.Periods)
	}
	types := spec.Types
	if types == 0 {
		types = 3
	}
	if types < 1 || types > 8 {
		return nil, fmt.Errorf("benchdfg: taskset: types %d out of range [1, 8]", spec.Types)
	}

	rng := rand.New(rand.NewSource(spec.Seed))
	shares := uuniFast(rng, spec.Tasks, spec.Utilization)
	names := Names()
	out := make([]TaskSpec, 0, spec.Tasks)
	for i := 0; i < spec.Tasks; i++ {
		name := names[rng.Intn(len(names))]
		b, _ := Lookup(name)
		g := b.Build()
		tseed := 1 + rng.Int63n(1<<31-2)
		tab := fu.RandomTable(rand.New(rand.NewSource(tseed)), g.N(), types)

		work, span := 0, 0
		if order, err := g.TopoOrder(); err == nil {
			finish := make([]int, g.N())
			for _, v := range order {
				t := tab.Time[v][0] // fastest type for v
				work += t
				f := t
				for _, u := range g.Pred(v) {
					if finish[u]+t > f {
						f = finish[u] + t
					}
				}
				finish[v] = f
				if f > span {
					span = f
				}
			}
		} else {
			// Defensive: registry graphs are acyclic on zero-delay edges.
			return nil, fmt.Errorf("benchdfg: taskset: %s: %v", name, err)
		}

		period := int(math.Ceil(float64(work) / shares[i]))
		if period < span {
			period = span
		}
		if period > maxTaskPeriod {
			period = maxTaskPeriod
		}
		if periods == PeriodsHarmonic {
			p := 1
			for p < period {
				p <<= 1
			}
			period = p
		}
		dl := 0
		if rng.Intn(2) == 1 {
			dl = 3 * period / 4
			if dl < span {
				dl = span
			}
		}
		out = append(out, TaskSpec{Bench: name, Seed: tseed, Types: types, Period: period, Deadline: dl})
	}
	return out, nil
}

// uuniFast splits total utilization u across n tasks with the classic
// UUniFast recurrence, which samples uniformly from the simplex of
// utilization vectors summing to u. O(n).
func uuniFast(rng *rand.Rand, n int, u float64) []float64 {
	out := make([]float64, n)
	sum := u
	for i := 0; i < n-1; i++ {
		next := sum * math.Pow(rng.Float64(), 1/float64(n-i-1))
		out[i] = sum - next
		sum = next
	}
	out[n-1] = sum
	return out
}
