package benchdfg

import (
	"encoding/json"
	"math/bits"
	"os"
	"reflect"
	"strings"
	"testing"
)

func TestTaskSetReproducible(t *testing.T) {
	spec := TaskSetSpec{Tasks: 8, Utilization: 3, Periods: PeriodsUniform, Types: 4, Seed: 42}
	a, err := TaskSet(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TaskSet(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same spec generated different sets:\n%v\n%v", a, b)
	}
	spec.Seed = 43
	c, err := TaskSet(spec)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds generated identical sets")
	}
}

func TestTaskSetShape(t *testing.T) {
	for _, dist := range []string{PeriodsHarmonic, PeriodsUniform} {
		set, err := TaskSet(TaskSetSpec{Tasks: 12, Utilization: 4, Periods: dist, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		if len(set) != 12 {
			t.Fatalf("%s: got %d tasks, want 12", dist, len(set))
		}
		for i, ts := range set {
			if _, ok := Lookup(ts.Bench); !ok {
				t.Errorf("%s task %d: unknown bench %q", dist, i, ts.Bench)
			}
			if ts.Seed < 1 {
				t.Errorf("%s task %d: seed %d < 1", dist, i, ts.Seed)
			}
			if ts.Types != 3 {
				t.Errorf("%s task %d: types %d, want default 3", dist, i, ts.Types)
			}
			if ts.Period < 1 || ts.Period > maxTaskPeriod {
				t.Errorf("%s task %d: period %d out of range", dist, i, ts.Period)
			}
			if ts.Deadline < 0 || ts.Deadline > ts.Period {
				t.Errorf("%s task %d: deadline %d outside [0, %d]", dist, i, ts.Deadline, ts.Period)
			}
			if dist == PeriodsHarmonic && bits.OnesCount(uint(ts.Period)) != 1 {
				t.Errorf("harmonic task %d: period %d is not a power of two", i, ts.Period)
			}
		}
	}
}

func TestTaskSetValidate(t *testing.T) {
	cases := []struct {
		spec TaskSetSpec
		want string
	}{
		{TaskSetSpec{Tasks: 0, Utilization: 1}, "tasks 0"},
		{TaskSetSpec{Tasks: 65, Utilization: 1}, "tasks 65"},
		{TaskSetSpec{Tasks: 4}, "utilization 0"},
		{TaskSetSpec{Tasks: 4, Utilization: 100}, "utilization 100"},
		{TaskSetSpec{Tasks: 4, Utilization: 1, Periods: "zipf"}, `"zipf"`},
		{TaskSetSpec{Tasks: 4, Utilization: 1, Types: 9}, "types 9"},
	}
	for _, c := range cases {
		if _, err := TaskSet(c.spec); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("TaskSet(%+v) err = %v, want mention of %q", c.spec, err, c.want)
		}
	}
}

// TestTaskSetGolden locks the full generated set for one spec: any change
// to the registry, the random-table generator or the period derivation
// shows up as a diff here. Regenerate testdata/taskset_seed7.json
// deliberately when such a change is intended.
func TestTaskSetGolden(t *testing.T) {
	set, err := TaskSet(TaskSetSpec{Tasks: 6, Utilization: 2, Periods: PeriodsHarmonic, Types: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(set, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	want, err := os.ReadFile("testdata/taskset_seed7.json")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("generated task set drifted from the golden file.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
