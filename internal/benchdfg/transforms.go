package benchdfg

import (
	"fmt"

	"hetsynth/internal/dfg"
)

// FFT builds the data-flow graph of a radix-2 decimation-in-time FFT of
// the given size (a power of two >= 2): log2(n) butterfly stages, each
// butterfly one complex multiplier (twiddle) feeding an add and a sub.
// FFT graphs are the classic many-critical-paths stress test for
// DFG_Expand: every output depends on every input.
func FFT(size int) *dfg.Graph {
	if size < 2 || size&(size-1) != 0 {
		panic("benchdfg: FFT size must be a power of two >= 2")
	}
	g := dfg.New()
	// cur[i]: node currently producing line i (None = primary input).
	cur := make([]dfg.NodeID, size)
	for i := range cur {
		cur[i] = dfg.None
	}
	link := func(from, to dfg.NodeID) {
		if from != dfg.None {
			g.MustAddEdge(from, to, 0)
		}
	}
	stage := 0
	for span := 1; span < size; span *= 2 {
		for base := 0; base < size; base += 2 * span {
			for off := 0; off < span; off++ {
				i, j := base+off, base+off+span
				tw := g.MustAddNode(fmt.Sprintf("s%d_tw_%d_%d", stage, i, j), "mul")
				add := g.MustAddNode(fmt.Sprintf("s%d_add_%d", stage, i), "add")
				sub := g.MustAddNode(fmt.Sprintf("s%d_sub_%d", stage, j), "sub")
				link(cur[j], tw) // twiddle scales the lower line
				link(cur[i], add)
				g.MustAddEdge(tw, add, 0)
				link(cur[i], sub)
				g.MustAddEdge(tw, sub, 0)
				cur[i], cur[j] = add, sub
			}
		}
		stage++
	}
	return g
}

// WDF builds an n-section wave digital filter ladder: each section is a
// two-port adaptor (one multiplier, three adders) with a delayed
// reflection, the classic low-sensitivity filter structure. The delayed
// reflections make the graph cyclic; its DAG portion is a ladder with
// shared adaptor outputs.
func WDF(sections int) *dfg.Graph {
	if sections < 1 {
		panic("benchdfg: WDF needs at least one section")
	}
	g := dfg.New()
	var prev dfg.NodeID = dfg.None
	for s := 0; s < sections; s++ {
		n := func(name, op string) dfg.NodeID {
			return g.MustAddNode(fmt.Sprintf("w%d_%s", s, name), op)
		}
		in := n("in_add", "add")    // incident wave summer
		gm := n("gamma_mul", "mul") // adaptor coefficient
		fw := n("fwd_add", "add")   // transmitted wave
		bk := n("bck_add", "add")   // reflected wave
		g.MustAddEdge(in, gm, 0)
		g.MustAddEdge(gm, fw, 0)
		g.MustAddEdge(gm, bk, 0)
		g.MustAddEdge(in, bk, 0)
		g.MustAddEdge(bk, in, 1) // reflection through the port delay
		if prev != dfg.None {
			g.MustAddEdge(prev, in, 0)
		}
		prev = fw
	}
	return g
}
