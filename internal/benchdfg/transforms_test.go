package benchdfg

import (
	"testing"

	"hetsynth/internal/cptree"
)

func TestFFTShape(t *testing.T) {
	g := FFT(8)
	// 3 stages x 4 butterflies x 3 nodes = 36 nodes.
	if g.N() != 36 {
		t.Fatalf("FFT(8) has %d nodes, want 36", g.N())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, n := range g.Nodes() {
		counts[n.Op]++
	}
	if counts["mul"] != 12 || counts["add"] != 12 || counts["sub"] != 12 {
		t.Fatalf("op mix = %v, want 12/12/12", counts)
	}
	// Full connectivity: many critical paths.
	if n := g.CriticalPathCount(); n < 16 {
		t.Fatalf("only %d critical paths", n)
	}
}

func TestFFTPanicsOnBadSize(t *testing.T) {
	for _, size := range []int{0, 1, 3, 6} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FFT(%d): no panic", size)
				}
			}()
			FFT(size)
		}()
	}
}

func TestFFTExpansionIsBoundedForSmallSizes(t *testing.T) {
	// FFT(4) expands without hitting the node guard; the tree is larger
	// than the DFG (that is the point of the stress test).
	g := FFT(4)
	tree, err := cptree.ExpandBoth(g)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Graph.N() <= g.N() {
		t.Fatalf("expansion did not grow: %d <= %d", tree.Graph.N(), g.N())
	}
}

func TestWDFShape(t *testing.T) {
	g := WDF(5)
	if g.N() != 20 {
		t.Fatalf("WDF(5) has %d nodes, want 20", g.N())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	delayed := 0
	for _, e := range g.Edges() {
		if e.Delays > 0 {
			delayed++
		}
	}
	if delayed != 5 {
		t.Fatalf("%d delayed edges, want 5", delayed)
	}
}

func TestWDFPanicsOnBadSections(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	WDF(0)
}

func TestNewBenchmarksRegistered(t *testing.T) {
	for _, name := range []string{"fft8", "wdf5"} {
		b, ok := Lookup(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		if b.Build().N() == 0 {
			t.Fatalf("%s builds empty graph", name)
		}
	}
}
