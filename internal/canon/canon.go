// Package canon computes canonical digests of synthesis requests so that a
// serving layer can key caches and collapse duplicate work. Two requests
// that describe the same computation — same graph structure (names, op
// classes, edges with delays), same time/cost table, same deadline, same
// algorithm — always hash to the same digest, regardless of how the request
// arrived (inline JSON, benchmark name, catalog name): digests are computed
// over the *resolved* problem, never over the request encoding.
//
// Two key spaces are exposed:
//
//   - Instance(graph, table): deadline- and algorithm-independent. Keys the
//     per-instance artifacts that amortize across a design-space
//     exploration, e.g. a tree's cost-versus-deadline frontier.
//   - Request(graph, table, deadline, algo): the full solve key.
//
// The digest is SHA-256 over an unambiguous binary encoding: every variable-
// length field is length-prefixed, every integer is fixed-width, and section
// tags separate the graph, table, and scalar parts, so no two distinct
// problems can serialize to the same byte stream.
package canon

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"

	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
)

// writeUvarint appends a varint; used only for lengths and tags, which are
// unambiguous because every field is written in a fixed order.
func writeUvarint(h hash.Hash, x uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], x)
	h.Write(buf[:n])
}

func writeInt(h hash.Hash, x int64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(x))
	h.Write(buf[:])
}

func writeString(h hash.Hash, s string) {
	writeUvarint(h, uint64(len(s)))
	h.Write([]byte(s))
}

func writeGraph(h hash.Hash, g *dfg.Graph) {
	h.Write([]byte{'G'})
	writeUvarint(h, uint64(g.N()))
	for _, n := range g.Nodes() {
		writeString(h, n.Name)
		writeString(h, n.Op)
	}
	writeUvarint(h, uint64(g.M()))
	for _, e := range g.Edges() {
		writeInt(h, int64(e.From))
		writeInt(h, int64(e.To))
		writeInt(h, int64(e.Delays))
	}
}

func writeTable(h hash.Hash, t *fu.Table) {
	h.Write([]byte{'T'})
	writeUvarint(h, uint64(t.N()))
	writeUvarint(h, uint64(t.K()))
	for v := range t.Time {
		for k := range t.Time[v] {
			writeInt(h, int64(t.Time[v][k]))
		}
	}
	for v := range t.Cost {
		for k := range t.Cost[v] {
			writeInt(h, t.Cost[v][k])
		}
	}
}

// Instance digests the deadline-independent part of a problem: the graph
// and the time/cost table. Artifacts valid across deadlines (frontiers,
// reusable solvers) are keyed by it.
func Instance(g *dfg.Graph, t *fu.Table) string {
	h := sha256.New()
	writeGraph(h, g)
	writeTable(h, t)
	return hex.EncodeToString(h.Sum(nil))
}

// Request digests a complete solve request: instance plus deadline and
// algorithm name. It is the result-cache and single-flight key.
func Request(g *dfg.Graph, t *fu.Table, deadline int, algo string) string {
	h := sha256.New()
	writeGraph(h, g)
	writeTable(h, t)
	h.Write([]byte{'R'})
	writeInt(h, int64(deadline))
	writeString(h, algo)
	return hex.EncodeToString(h.Sum(nil))
}
