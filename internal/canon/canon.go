// Package canon computes canonical digests of synthesis requests so that a
// serving layer can key caches and collapse duplicate work. Two requests
// that describe the same computation — same graph structure (names, op
// classes, edges with delays), same time/cost table, same deadline, same
// algorithm — always hash to the same digest, regardless of how the request
// arrived (inline JSON, benchmark name, catalog name): digests are computed
// over the *resolved* problem, never over the request encoding.
//
// Two key spaces are exposed:
//
//   - Instance(graph, table): deadline- and algorithm-independent. Keys the
//     per-instance artifacts that amortize across a design-space
//     exploration, e.g. a tree's cost-versus-deadline frontier.
//   - Request(graph, table, deadline, algo): the full solve key.
//
// Keys computes both in one pass over the problem; serving hot paths use it
// so the instance encoding — by far the bulk of the work — is built once.
//
// The digest is SHA-256 over an unambiguous binary encoding: every variable-
// length field is length-prefixed, every integer is fixed-width, and section
// tags separate the graph, table, and scalar parts, so no two distinct
// problems can serialize to the same byte stream. The encoding is built in a
// pooled scratch buffer and hashed in one shot, so digesting allocates only
// the returned hex strings regardless of problem size.
package canon

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sync"

	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
)

// encPool recycles the encoding scratch buffers. Buffers grow to the largest
// problem they have seen and are reused verbatim; the pool hands them out
// exclusively, so no two digests ever share a live buffer.
var encPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// appendUvarint appends a varint; used only for lengths and tags, which are
// unambiguous because every field is written in a fixed order.
func appendUvarint(b []byte, x uint64) []byte {
	return binary.AppendUvarint(b, x)
}

func appendInt(b []byte, x int64) []byte {
	return binary.LittleEndian.AppendUint64(b, uint64(x))
}

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendGraph(b []byte, g *dfg.Graph) []byte {
	b = append(b, 'G')
	n := g.N()
	b = appendUvarint(b, uint64(n))
	for v := 0; v < n; v++ {
		node := g.Node(dfg.NodeID(v))
		b = appendString(b, node.Name)
		b = appendString(b, node.Op)
	}
	m := g.M()
	b = appendUvarint(b, uint64(m))
	for i := 0; i < m; i++ {
		e := g.Edge(i)
		b = appendInt(b, int64(e.From))
		b = appendInt(b, int64(e.To))
		b = appendInt(b, int64(e.Delays))
	}
	return b
}

func appendTable(b []byte, t *fu.Table) []byte {
	b = append(b, 'T')
	b = appendUvarint(b, uint64(t.N()))
	b = appendUvarint(b, uint64(t.K()))
	for v := range t.Time {
		for k := range t.Time[v] {
			b = appendInt(b, int64(t.Time[v][k]))
		}
	}
	for v := range t.Cost {
		for k := range t.Cost[v] {
			b = appendInt(b, t.Cost[v][k])
		}
	}
	return b
}

func hexSum(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Instance digests the deadline-independent part of a problem: the graph
// and the time/cost table. Artifacts valid across deadlines (frontiers,
// reusable solvers) are keyed by it.
//
// hetsynth:hotpath
func Instance(g *dfg.Graph, t *fu.Table) string {
	bp := encPool.Get().(*[]byte)
	b := appendTable(appendGraph((*bp)[:0], g), t)
	d := hexSum(b)
	*bp = b
	encPool.Put(bp)
	return d
}

// Request digests a complete solve request: instance plus deadline and
// algorithm name. It is the result-cache and single-flight key.
func Request(g *dfg.Graph, t *fu.Table, deadline int, algo string) string {
	req, _ := Keys(g, t, deadline, algo)
	return req
}

// AdmitTask is the resolved per-task content digested into an admission
// key: one periodic HAP instance plus its period and relative deadline.
type AdmitTask struct {
	Graph    *dfg.Graph
	Table    *fu.Table
	Period   int
	Deadline int
}

// AdmitKey digests a resolved admission request — the ordered task set plus
// either a fixed configuration (cfg non-nil) or the search parameters
// (prices, maxPerType) — together with the analysis option maxCandidates.
// Like Request, it hashes the resolved problem, so the same fleet submitted
// via benchmarks or inline graphs keys identically. One pass, one SHA-256.
func AdmitKey(tasks []AdmitTask, cfg []int, prices []int64, maxPerType, maxCandidates int) string {
	bp := encPool.Get().(*[]byte)
	b := append((*bp)[:0], 'A')
	b = appendUvarint(b, uint64(len(tasks)))
	for _, t := range tasks {
		b = appendTable(appendGraph(b, t.Graph), t.Table)
		b = append(b, 'P')
		b = appendInt(b, int64(t.Period))
		b = appendInt(b, int64(t.Deadline))
	}
	if cfg != nil {
		b = append(b, 'C')
		b = appendUvarint(b, uint64(len(cfg)))
		for _, m := range cfg {
			b = appendInt(b, int64(m))
		}
	} else {
		b = append(b, 'S')
		b = appendUvarint(b, uint64(len(prices)))
		for _, p := range prices {
			b = appendInt(b, p)
		}
		b = appendInt(b, int64(maxPerType))
	}
	b = appendInt(b, int64(maxCandidates))
	d := hexSum(b)
	*bp = b
	encPool.Put(bp)
	return d
}

// Keys digests a request and its instance in one pass: the instance encoding
// is built once and hashed, then extended with the deadline/algorithm suffix
// and hashed again. The two digests are byte-identical to what Request and
// Instance return separately.
//
// hetsynth:hotpath
func Keys(g *dfg.Graph, t *fu.Table, deadline int, algo string) (request, instance string) {
	bp := encPool.Get().(*[]byte)
	b := appendTable(appendGraph((*bp)[:0], g), t)
	instance = hexSum(b)
	b = append(b, 'R')
	b = appendInt(b, int64(deadline))
	b = appendString(b, algo)
	request = hexSum(b)
	*bp = b
	encPool.Put(bp)
	return request, instance
}
