package canon

import (
	"bytes"
	"math/rand"
	"testing"

	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
)

func instance(seed int64) (*dfg.Graph, *fu.Table) {
	rng := rand.New(rand.NewSource(seed))
	g := dfg.RandomDAG(rng, 12, 0.2)
	t := fu.RandomTable(rng, g.N(), 3)
	return g, t
}

func TestDigestDeterministic(t *testing.T) {
	g, tab := instance(1)
	if Instance(g, tab) != Instance(g, tab) {
		t.Fatal("Instance digest not deterministic")
	}
	if Request(g, tab, 20, "auto") != Request(g, tab, 20, "auto") {
		t.Fatal("Request digest not deterministic")
	}
}

func TestDigestSurvivesJSONRoundTrip(t *testing.T) {
	g, tab := instance(2)
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := dfg.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if Instance(g, tab) != Instance(g2, tab) {
		t.Fatal("digest changed across a JSON round trip of the same graph")
	}
}

func TestDigestSensitivity(t *testing.T) {
	g, tab := instance(3)
	base := Request(g, tab, 20, "auto")

	if Request(g, tab, 21, "auto") == base {
		t.Error("deadline change did not change the digest")
	}
	if Request(g, tab, 20, "repeat") == base {
		t.Error("algorithm change did not change the digest")
	}

	t2 := tab.Clone()
	t2.Time[0][0]++
	if Request(g, t2, 20, "auto") == base {
		t.Error("table time change did not change the digest")
	}
	t3 := tab.Clone()
	t3.Cost[1][1]++
	if Request(g, t3, 20, "auto") == base {
		t.Error("table cost change did not change the digest")
	}

	g2 := g.Clone()
	g2.MustAddNode("extra", "add")
	t4 := fu.NewTable(g2.N(), tab.K())
	for v := 0; v < tab.N(); v++ {
		t4.MustSet(v, tab.Time[v], tab.Cost[v])
	}
	t4.MustSet(g2.N()-1, []int{1, 2, 3}, []int64{3, 2, 1})
	if Instance(g2, t4) == Instance(g, tab) {
		t.Error("node addition did not change the digest")
	}
}

func TestDigestSeparatesOpAndName(t *testing.T) {
	// "ab"+"c" vs "a"+"bc" must not collide: fields are length-prefixed.
	g1 := dfg.New()
	g1.MustAddNode("ab", "c")
	g2 := dfg.New()
	g2.MustAddNode("a", "bc")
	tab := fu.UniformTable(1, []int{1}, []int64{1})
	if Instance(g1, tab) == Instance(g2, tab) {
		t.Fatal("name/op boundary ambiguity: digests collide")
	}
}

func TestDigestDistinguishesDelays(t *testing.T) {
	mk := func(delays int) *dfg.Graph {
		g := dfg.New()
		a := g.MustAddNode("a", "")
		b := g.MustAddNode("b", "")
		g.MustAddEdge(a, b, delays)
		return g
	}
	tab := fu.UniformTable(2, []int{1, 2}, []int64{2, 1})
	if Instance(mk(0), tab) == Instance(mk(1), tab) {
		t.Fatal("edge delay ignored by digest")
	}
}
