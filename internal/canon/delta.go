package canon

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
)

// InstanceEnc is a retained canonical instance encoding that absorbs deltas
// without re-encoding the whole problem: a row edit overwrites the row's
// fixed-width span in the table section in place, and a structural edit
// re-encodes only the graph section. Digesting after a delta is then one
// SHA-256 over the retained bytes — no graph walk, no table walk — which is
// what makes a patched session's digest cheap while staying byte-identical
// to Instance/Keys of the equivalent whole instance.
//
// The encoding layout is exactly the one Instance and Keys hash: the graph
// section ('G', nodes, edges) followed by the table section ('T', N, K,
// times, costs), each integer fixed-width. InstanceEnc is not safe for
// concurrent use; callers (a session holding one) serialize access.
type InstanceEnc struct {
	graph []byte // 'G' section
	table []byte // 'T' section
	n, k  int
	thdr  int // table-section header length: tag + uvarint(N) + uvarint(K)
}

// NewInstanceEnc builds the retained encoding of (g, t). The table must
// cover the graph's nodes; table dimensions are frozen (deltas cannot add
// nodes or types — that is a new instance).
func NewInstanceEnc(g *dfg.Graph, t *fu.Table) *InstanceEnc {
	e := &InstanceEnc{n: t.N(), k: t.K()}
	e.graph = appendGraph(nil, g)
	e.table = appendTable(nil, t)
	e.thdr = 1 + uvarintLen(uint64(e.n)) + uvarintLen(uint64(e.k))
	return e
}

// SetRow overwrites node v's time and cost spans in the table section, in
// place: O(K) byte writes, no reallocation. The caller has already
// validated the row values; only the coordinates are checked here.
func (e *InstanceEnc) SetRow(v int, times []int, costs []int64) error {
	if v < 0 || v >= e.n {
		return fmt.Errorf("canon: SetRow node %d out of range [0,%d)", v, e.n)
	}
	if len(times) != e.k || len(costs) != e.k {
		return fmt.Errorf("canon: SetRow row has %d/%d entries, want %d", len(times), len(costs), e.k)
	}
	off := e.thdr + v*e.k*8
	for j, x := range times {
		binary.LittleEndian.PutUint64(e.table[off+j*8:], uint64(x))
	}
	off = e.thdr + (e.n+v)*e.k*8
	for j, x := range costs {
		binary.LittleEndian.PutUint64(e.table[off+j*8:], uint64(x))
	}
	return nil
}

// SetGraph re-encodes the graph section from g after a structural delta
// (edge insertion/removal). The node set must be unchanged; only the edge
// list differs, so the table section is untouched.
func (e *InstanceEnc) SetGraph(g *dfg.Graph) {
	e.graph = appendGraph(e.graph[:0], g)
}

// Instance returns the instance digest of the current encoding —
// byte-identical to what canon.Instance reports for the equivalent whole
// problem.
func (e *InstanceEnc) Instance() string {
	h := sha256.New()
	h.Write(e.graph)
	h.Write(e.table)
	return hex.EncodeToString(h.Sum(nil))
}

// Keys returns the request and instance digests for the current encoding
// plus a deadline and algorithm — byte-identical to canon.Keys of the
// equivalent whole problem.
func (e *InstanceEnc) Keys(deadline int, algo string) (request, instance string) {
	h := sha256.New()
	h.Write(e.graph)
	h.Write(e.table)
	instance = hex.EncodeToString(h.Sum(nil))
	var sfx []byte
	sfx = append(sfx, 'R')
	sfx = appendInt(sfx, int64(deadline))
	sfx = appendString(sfx, algo)
	h.Write(sfx)
	request = hex.EncodeToString(h.Sum(nil))
	return request, instance
}
