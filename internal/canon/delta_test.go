package canon

import (
	"fmt"
	"math/rand"
	"testing"

	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
)

// TestInstanceEncDifferential drives random delta sequences through an
// InstanceEnc and checks after every step that its digests are
// byte-identical to Instance/Keys of the equivalently rebuilt whole
// problem — the property that lets a patched session reuse the digest
// space of stateless solves.
func TestInstanceEncDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(12)
		k := 2 + rng.Intn(3)
		var edges []dfg.Edge
		for v := 1; v < n; v++ {
			if rng.Intn(4) > 0 {
				edges = append(edges, dfg.Edge{From: dfg.NodeID(rng.Intn(v)), To: dfg.NodeID(v), Delays: rng.Intn(2)})
			}
		}
		build := func() (*dfg.Graph, error) {
			g := dfg.New()
			for v := 0; v < n; v++ {
				g.MustAddNode(fmt.Sprintf("n%d", v), "op")
			}
			for _, e := range edges {
				if err := g.AddEdge(e.From, e.To, e.Delays); err != nil {
					return nil, err
				}
			}
			return g, nil
		}
		g, err := build()
		if err != nil {
			t.Fatal(err)
		}
		tab := fu.RandomTable(rng, n, k)
		enc := NewInstanceEnc(g, tab)

		check := func(step string) {
			t.Helper()
			fresh, err := build()
			if err != nil {
				t.Fatalf("trial %d %s: rebuild: %v", trial, step, err)
			}
			if got, want := enc.Instance(), Instance(fresh, tab); got != want {
				t.Fatalf("trial %d %s: delta instance digest %s != whole-instance %s", trial, step, got, want)
			}
			deadline := 1 + rng.Intn(100)
			gotReq, gotInst := enc.Keys(deadline, "auto")
			wantReq, wantInst := Keys(fresh, tab, deadline, "auto")
			if gotReq != wantReq || gotInst != wantInst {
				t.Fatalf("trial %d %s: delta keys (%s,%s) != whole keys (%s,%s)",
					trial, step, gotReq, gotInst, wantReq, wantInst)
			}
		}
		check("initial")

		for step := 0; step < 10; step++ {
			switch rng.Intn(3) {
			case 0: // row edit
				v := rng.Intn(n)
				times := make([]int, k)
				costs := make([]int64, k)
				for j := range times {
					times[j] = 1 + rng.Intn(20)
					costs[j] = int64(rng.Intn(100))
				}
				if err := enc.SetRow(v, times, costs); err != nil {
					t.Fatalf("trial %d step %d: SetRow: %v", trial, step, err)
				}
				tab.MustSet(v, times, costs)
			case 1: // edge removal
				if len(edges) == 0 {
					continue
				}
				i := rng.Intn(len(edges))
				edges = append(edges[:i:i], edges[i+1:]...)
				fresh, err := build()
				if err != nil {
					t.Fatal(err)
				}
				enc.SetGraph(fresh)
			default: // edge insertion (appended, like a session patch)
				u, v := dfg.NodeID(rng.Intn(n)), dfg.NodeID(rng.Intn(n))
				if u == v {
					continue
				}
				edges = append(edges, dfg.Edge{From: u, To: v, Delays: rng.Intn(3)})
				fresh, err := build()
				if err != nil {
					// The random edge broke graph validity; undo and skip.
					edges = edges[:len(edges)-1]
					continue
				}
				enc.SetGraph(fresh)
			}
			check(fmt.Sprintf("step %d", step))
		}
	}
}

// TestInstanceEncRejects covers SetRow's coordinate validation.
func TestInstanceEncRejects(t *testing.T) {
	g := dfg.New()
	g.MustAddNode("a", "op")
	g.MustAddNode("b", "op")
	g.MustAddEdge(0, 1, 0)
	tab := fu.UniformTable(2, []int{1, 2}, []int64{3, 1})
	enc := NewInstanceEnc(g, tab)
	if err := enc.SetRow(2, []int{1, 1}, []int64{1, 1}); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if err := enc.SetRow(-1, []int{1, 1}, []int64{1, 1}); err == nil {
		t.Fatal("negative node accepted")
	}
	if err := enc.SetRow(0, []int{1}, []int64{1, 1}); err == nil {
		t.Fatal("short row accepted")
	}
}
