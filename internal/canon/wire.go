package canon

import (
	"errors"
	"fmt"

	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
)

// This file turns the digest encoding into a wire format. The canonical
// instance bytes ('G' graph section + 'T' table section) were designed to be
// unambiguous for hashing; the same property makes them self-delimiting, so a
// binary protocol can embed them verbatim and the server can digest the wire
// bytes directly — no decode-then-re-encode round trip on the hot path.
//
// That shortcut is sound only if decoding is *strict*: every byte stream that
// decodes successfully must re-encode to the identical bytes. Two rules
// enforce it — varints must be minimal (a padded length would hash
// differently than its canonical form), and every value must pass the same
// validation the JSON path applies (so a digest never keys an instance the
// server would have rejected). DecodeInstance checks both.

// MaxEntry caps decoded table times, costs, and edge delay counts. It mirrors
// the serving layer's inline-table bound: with at most one entry per 8 wire
// bytes, no longest-path or cost sum can overflow int64 below it.
const MaxEntry = 1 << 40

// ErrTruncated reports an encoding that ended mid-field.
var ErrTruncated = errors.New("canon: truncated encoding")

// AppendGraph appends the canonical 'G' section for g.
func AppendGraph(b []byte, g *dfg.Graph) []byte { return appendGraph(b, g) }

// AppendTable appends the canonical 'T' section for t.
func AppendTable(b []byte, t *fu.Table) []byte { return appendTable(b, t) }

// AppendInstance appends the full instance encoding — exactly the bytes
// Instance digests.
func AppendInstance(b []byte, g *dfg.Graph, t *fu.Table) []byte {
	return appendTable(appendGraph(b, g), t)
}

// InstanceDigest is Instance over a pre-built instance encoding: inst must
// be the exact bytes AppendInstance produces. The digest is byte-identical
// to what Instance returns for the decoded problem, which is what lets a
// router key cache-affinity routing straight off the wire bytes of a binary
// request — one SHA-256, no decode, no re-encode.
//
// hetsynth:hotpath
func InstanceDigest(inst []byte) string { return hexSum(inst) }

// KeysEncoded is Keys over a pre-built instance encoding: inst must be the
// exact bytes AppendInstance produces (DecodeInstance guarantees this for
// validated wire input). The digests are byte-identical to what Keys returns
// for the decoded problem.
func KeysEncoded(inst []byte, deadline int, algo string) (request, instance string) {
	instance = hexSum(inst)
	bp := encPool.Get().(*[]byte)
	b := append((*bp)[:0], inst...)
	b = append(b, 'R')
	b = appendInt(b, int64(deadline))
	b = appendString(b, algo)
	request = hexSum(b)
	*bp = b
	encPool.Put(bp)
	return request, instance
}

// uvarintLen is the minimal encoded size of x.
func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// dec is a strict cursor over an encoding.
type dec struct {
	b   []byte
	off int
}

func (d *dec) remaining() int { return len(d.b) - d.off }

// uvarint reads a minimally-encoded varint.
func (d *dec) uvarint() (uint64, error) {
	var x uint64
	var shift uint
	for i := 0; ; i++ {
		if d.off >= len(d.b) {
			return 0, ErrTruncated
		}
		if i == 10 {
			return 0, errors.New("canon: varint overflows uint64")
		}
		c := d.b[d.off]
		d.off++
		if c < 0x80 {
			if i > 0 && c == 0 {
				return 0, errors.New("canon: non-minimal varint")
			}
			if i == 9 && c > 1 {
				return 0, errors.New("canon: varint overflows uint64")
			}
			return x | uint64(c)<<shift, nil
		}
		x |= uint64(c&0x7f) << shift
		shift += 7
	}
}

// int64 reads a fixed 8-byte little-endian integer.
func (d *dec) int64() (int64, error) {
	if d.remaining() < 8 {
		return 0, ErrTruncated
	}
	b := d.b[d.off:]
	d.off += 8
	return int64(uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56), nil
}

// str reads a length-prefixed string.
func (d *dec) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(d.remaining()) {
		return "", ErrTruncated
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

func (d *dec) tag(want byte) error {
	if d.off >= len(d.b) {
		return ErrTruncated
	}
	if d.b[d.off] != want {
		return fmt.Errorf("canon: expected section %q, found byte 0x%02x", want, d.b[d.off])
	}
	d.off++
	return nil
}

// DecodeInstance parses one canonical instance encoding from the front of b,
// returning the problem pieces, the instance bytes consumed (aliasing b), and
// the unconsumed tail. Decoding is strict: the consumed bytes are guaranteed
// to equal AppendInstance(nil, g, t), so digesting them (KeysEncoded) matches
// digesting the decoded problem (Keys). Every value is validated to the same
// bounds the JSON request path enforces; any violation fails the decode.
func DecodeInstance(b []byte) (g *dfg.Graph, t *fu.Table, inst, rest []byte, err error) {
	d := &dec{b: b}
	if err = d.tag('G'); err != nil {
		return nil, nil, nil, nil, err
	}
	nn, err := d.uvarint()
	if err != nil {
		return nil, nil, nil, nil, err
	}
	// Each node contributes at least two length prefixes, each edge 24
	// bytes, each table entry 8: claimed counts beyond what the buffer can
	// hold are rejected before any allocation is sized by them.
	if nn == 0 || nn > uint64(d.remaining())/2 {
		return nil, nil, nil, nil, fmt.Errorf("canon: implausible node count %d", nn)
	}
	n := int(nn)
	g = dfg.New()
	g.Grow(n, 0)
	for v := 0; v < n; v++ {
		name, err := d.str()
		if err != nil {
			return nil, nil, nil, nil, err
		}
		op, err := d.str()
		if err != nil {
			return nil, nil, nil, nil, err
		}
		if _, err := g.AddNode(name, op); err != nil {
			return nil, nil, nil, nil, err
		}
	}
	mm, err := d.uvarint()
	if err != nil {
		return nil, nil, nil, nil, err
	}
	if mm > uint64(d.remaining())/24 {
		return nil, nil, nil, nil, fmt.Errorf("canon: implausible edge count %d", mm)
	}
	m := int(mm)
	g.Grow(0, m)
	for i := 0; i < m; i++ {
		from, err := d.int64()
		if err != nil {
			return nil, nil, nil, nil, err
		}
		to, err := d.int64()
		if err != nil {
			return nil, nil, nil, nil, err
		}
		delays, err := d.int64()
		if err != nil {
			return nil, nil, nil, nil, err
		}
		if from < 0 || from >= int64(n) || to < 0 || to >= int64(n) {
			return nil, nil, nil, nil, fmt.Errorf("canon: edge %d references node out of range", i)
		}
		if delays < 0 || delays > MaxEntry {
			return nil, nil, nil, nil, fmt.Errorf("canon: edge %d delay count %d out of range", i, delays)
		}
		if err := g.AddEdge(dfg.NodeID(from), dfg.NodeID(to), int(delays)); err != nil {
			return nil, nil, nil, nil, err
		}
	}
	if err = d.tag('T'); err != nil {
		return nil, nil, nil, nil, err
	}
	tn, err := d.uvarint()
	if err != nil {
		return nil, nil, nil, nil, err
	}
	if tn != nn {
		return nil, nil, nil, nil, fmt.Errorf("canon: table covers %d nodes, graph has %d", tn, nn)
	}
	kk, err := d.uvarint()
	if err != nil {
		return nil, nil, nil, nil, err
	}
	if kk == 0 || kk > uint64(d.remaining())/8 {
		return nil, nil, nil, nil, fmt.Errorf("canon: implausible type count %d", kk)
	}
	// nn and kk are individually buffer-bounded, so the product cannot
	// overflow; reject tables whose entries outrun the remaining bytes.
	if 2*nn*kk > uint64(d.remaining())/8 {
		return nil, nil, nil, nil, ErrTruncated
	}
	k := int(kk)
	t = fu.NewTable(n, k)
	for v := 0; v < n; v++ {
		for j := 0; j < k; j++ {
			x, err := d.int64()
			if err != nil {
				return nil, nil, nil, nil, err
			}
			if x < 1 || x > MaxEntry {
				return nil, nil, nil, nil, fmt.Errorf("canon: node %d type %d time %d out of range", v, j, x)
			}
			t.Time[v][j] = int(x)
		}
	}
	for v := 0; v < n; v++ {
		for j := 0; j < k; j++ {
			x, err := d.int64()
			if err != nil {
				return nil, nil, nil, nil, err
			}
			if x < 0 || x > MaxEntry {
				return nil, nil, nil, nil, fmt.Errorf("canon: node %d type %d cost %d out of range", v, j, x)
			}
			t.Cost[v][j] = x
		}
	}
	return g, t, b[:d.off], b[d.off:], nil
}
