package canon

import (
	"bytes"
	"math/rand"
	"testing"

	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
)

// TestDecodeInstanceRoundTrip pins the property the binary protocol leans on:
// strict decoding means every accepted byte stream re-encodes to itself, so
// digests over wire bytes equal digests over the decoded problem.
func TestDecodeInstanceRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		var g *dfg.Graph
		if seed%2 == 0 {
			g = dfg.RandomTree(rng, n)
		} else {
			g = dfg.RandomDAG(rng, n, 0.3)
		}
		tab := fu.RandomTable(rng, n, 1+rng.Intn(4))
		enc := AppendInstance(nil, g, tab)
		tail := []byte{'R', 0xaa}
		g2, t2, inst, rest, err := DecodeInstance(append(append([]byte(nil), enc...), tail...))
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		if !bytes.Equal(inst, enc) {
			t.Fatalf("seed %d: consumed bytes differ from encoding", seed)
		}
		if !bytes.Equal(rest, tail) {
			t.Fatalf("seed %d: rest = %x, want %x", seed, rest, tail)
		}
		re := AppendInstance(nil, g2, t2)
		if !bytes.Equal(re, enc) {
			t.Fatalf("seed %d: re-encoding differs from original", seed)
		}
		wantReq, wantInst := Keys(g, tab, 17, "auto")
		gotReq, gotInst := KeysEncoded(inst, 17, "auto")
		if gotReq != wantReq || gotInst != wantInst {
			t.Fatalf("seed %d: KeysEncoded (%s, %s) != Keys (%s, %s)", seed, gotReq, gotInst, wantReq, wantInst)
		}
	}
}

func TestDecodeInstanceRejectsMalformed(t *testing.T) {
	g := dfg.New()
	a := g.MustAddNode("a", "add")
	b := g.MustAddNode("b", "mul")
	g.MustAddEdge(a, b, 0)
	tab := fu.NewTable(2, 2)
	tab.MustSet(0, []int{1, 2}, []int64{5, 3})
	tab.MustSet(1, []int{2, 1}, []int64{4, 6})
	good := AppendInstance(nil, g, tab)

	check := func(name string, buf []byte) {
		t.Helper()
		if _, _, _, _, err := DecodeInstance(buf); err == nil {
			t.Errorf("%s: decode accepted malformed input", name)
		}
	}
	check("empty", nil)
	check("bad tag", []byte{'X'})
	for i := 1; i < len(good); i++ {
		check("truncated", good[:i])
	}
	// A padded (non-minimal) varint decodes to the same value but different
	// bytes — exactly the ambiguity strictness exists to kill.
	padded := append([]byte{'G', 0x82, 0x00}, good[2:]...)
	check("non-minimal varint", padded)
	// Flip the edge target out of range.
	bad := append([]byte(nil), good...)
	off := bytes.IndexByte(good, 'T') // edge ints precede the table section
	copy(bad[off-24:off-16], []byte{9, 0, 0, 0, 0, 0, 0, 0})
	check("edge out of range", bad)
	// Zero execution time violates table validation.
	bad = append([]byte(nil), good...)
	copy(bad[off+3:off+11], make([]byte, 8))
	check("zero time", bad)
	// Duplicate node name: hand-build 'G', n=2, the same (name, op) twice.
	hb := []byte{'G', 2}
	hb = appendString(hb, "a")
	hb = appendString(hb, "")
	hb = appendString(hb, "a")
	hb = appendString(hb, "")
	hb = append(hb, 0) // m = 0
	hb = append(hb, 'T', 2, 1)
	for i := 0; i < 2; i++ {
		hb = appendInt(hb, 1)
	}
	for i := 0; i < 2; i++ {
		hb = appendInt(hb, 0)
	}
	check("duplicate node name", hb)
}
