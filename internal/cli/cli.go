// Package cli holds the plumbing shared by the command-line tools:
// resolving a DFG from one of the three input sources (JSON graph file,
// bundled benchmark, kernel source) and building display libraries.
package cli

import (
	"fmt"
	"os"

	"hetsynth/internal/benchdfg"
	"hetsynth/internal/dfg"
	"hetsynth/internal/expr"
	"hetsynth/internal/fu"
)

// LoadGraph resolves a DFG from exactly one of the three sources: a JSON
// graph file (path), a bundled benchmark name (bench), or a kernel source
// file (src).
func LoadGraph(path, bench, src string) (*dfg.Graph, error) {
	given := 0
	for _, s := range []string{path, bench, src} {
		if s != "" {
			given++
		}
	}
	switch {
	case given == 0:
		return nil, fmt.Errorf("one of -graph, -bench or -src is required")
	case given > 1:
		return nil, fmt.Errorf("use only one of -graph, -bench, -src")
	case src != "":
		data, err := os.ReadFile(src)
		if err != nil {
			return nil, err
		}
		k, err := expr.Compile(string(data))
		if err != nil {
			return nil, err
		}
		return k.Graph, nil
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return dfg.ReadJSON(f)
	default:
		b, ok := benchdfg.Lookup(bench)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q (known: %v)", bench, benchdfg.Names())
		}
		return b.Build(), nil
	}
}

// LibraryFor builds a display library with the paper's P1..Pk naming.
func LibraryFor(types int) (*fu.Library, error) {
	if types < 1 {
		return nil, fmt.Errorf("need at least one FU type, got %d", types)
	}
	fts := make([]fu.Type, types)
	for i := range fts {
		fts[i] = fu.Type{Name: fmt.Sprintf("P%d", i+1)}
	}
	return fu.NewLibrary(fts...)
}
