package cli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLoadGraphFromBench(t *testing.T) {
	g, err := LoadGraph("", "diffeq", "")
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 12 {
		t.Fatalf("diffeq has %d nodes", g.N())
	}
	if _, err := LoadGraph("", "nope", ""); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestLoadGraphFromJSON(t *testing.T) {
	p := writeFile(t, "g.json", `{"nodes":[{"name":"a"},{"name":"b"}],"edges":[{"from":"a","to":"b"}]}`)
	g, err := LoadGraph(p, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 2 || g.M() != 1 {
		t.Fatalf("graph misread: %s", g.String())
	}
	if _, err := LoadGraph(filepath.Join(t.TempDir(), "missing.json"), "", ""); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := writeFile(t, "bad.json", `{"nodes": [`)
	if _, err := LoadGraph(bad, "", ""); err == nil {
		t.Fatal("bad JSON accepted")
	}
}

func TestLoadGraphFromKernelSource(t *testing.T) {
	p := writeFile(t, "k.k", "y = a*x + b*y@1\n")
	g, err := LoadGraph("", "", p)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 { // two muls and one add
		t.Fatalf("kernel graph has %d nodes, want 3", g.N())
	}
	bad := writeFile(t, "bad.k", "y = $")
	if _, err := LoadGraph("", "", bad); err == nil {
		t.Fatal("bad kernel accepted")
	}
	if _, err := LoadGraph("", "", filepath.Join(t.TempDir(), "missing.k")); err == nil {
		t.Fatal("missing kernel file accepted")
	}
}

func TestLoadGraphSourceExclusivity(t *testing.T) {
	if _, err := LoadGraph("", "", ""); err == nil || !strings.Contains(err.Error(), "required") {
		t.Fatalf("no-source error wrong: %v", err)
	}
	if _, err := LoadGraph("x", "y", ""); err == nil || !strings.Contains(err.Error(), "only one") {
		t.Fatalf("multi-source error wrong: %v", err)
	}
}

func TestLibraryFor(t *testing.T) {
	lib, err := LibraryFor(3)
	if err != nil {
		t.Fatal(err)
	}
	if lib.K() != 3 || lib.Name(2) != "P3" {
		t.Fatalf("library misbuilt")
	}
	if _, err := LibraryFor(0); err == nil {
		t.Fatal("zero types accepted")
	}
}
