package cluster

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
	"hetsynth/internal/server"
)

// BenchmarkRingRoute measures one consistent-hash lookup with chain
// assembly — the per-request routing cost that rides every forward.
func BenchmarkRingRoute(b *testing.B) {
	r, err := NewRing(3, 128)
	if err != nil {
		b.Fatal(err)
	}
	keys := ringKeys(256)
	buf := make([]int, 0, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, chain := r.Route(keys[i&255], fullWeights, buf[:0])
		if len(chain) == 0 {
			b.Fatal("empty chain")
		}
	}
}

// BenchmarkAffinityKeyBinInline measures the zero-parse binary key
// extraction over an inline instance — one header scan plus a SHA-256 over
// the in-place instance bytes, no graph or table reconstruction. This is the
// path the "zero-copy" claim in DESIGN.md §14 is about.
func BenchmarkAffinityKeyBinInline(b *testing.B) {
	g := dfg.New()
	var prev dfg.NodeID
	for i := 0; i < 34; i++ {
		id, err := g.AddNode(fmt.Sprintf("n%d", i), "mac")
		if err != nil {
			b.Fatal(err)
		}
		if i > 0 {
			if err := g.AddEdge(prev, id, 0); err != nil {
				b.Fatal(err)
			}
		}
		prev = id
	}
	tab := fu.RandomTable(rand.New(rand.NewSource(1)), g.N(), 3)
	gj, err := g.MarshalJSON()
	if err != nil {
		b.Fatal(err)
	}
	req := &server.SolveRequest{Graph: gj, Table: &server.TablePayload{Time: tab.Time, Cost: tab.Cost}, Slack: new(int)}
	body, err := server.EncodeBinSolveRequest(req)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(body)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AffinityKey(body, true, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAffinityKeyBinBench measures binary extraction for a
// bench-by-name entry, which must materialize the named graph and seeded
// table to digest them — the same work the JSON path does.
func BenchmarkAffinityKeyBinBench(b *testing.B) {
	seed := int64(1)
	req := &server.SolveRequest{Bench: "elliptic", Seed: &seed, Types: 3, Slack: new(int)}
	body, err := server.EncodeBinSolveRequest(req)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(body)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AffinityKey(body, true, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAffinityKeyJSON measures the JSON key extraction, which must
// decode and resolve the request node-style; the gap to the binary variant
// is the router's zero-parse win.
func BenchmarkAffinityKeyJSON(b *testing.B) {
	body := []byte(`{"bench":"elliptic","seed":1,"types":3,"slack":4}`)
	b.ReportAllocs()
	b.SetBytes(int64(len(body)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AffinityKey(body, false, false); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCluster stands up n real hetsynthd nodes behind a router and returns
// the front URL plus a tuned client.
func benchCluster(b *testing.B, n int) (string, *http.Client) {
	b.Helper()
	var peers []string
	for i := 0; i < n; i++ {
		s := server.New(server.Config{Workers: 1})
		ts := httptest.NewServer(s.Handler())
		b.Cleanup(func() { ts.Close(); s.Close() })
		peers = append(peers, ts.URL)
	}
	rt, err := New(Config{Peers: peers, ProbeInterval: time.Second})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(rt.Close)
	front := httptest.NewServer(rt.Handler())
	b.Cleanup(front.Close)
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}
	return front.URL, client
}

// BenchmarkRouterCachedSolve measures the router's full forwarding overhead
// on the hot path the cluster exists for: a solve already cached on its home
// node. Key extraction + ring lookup + proxy round-trip + node raw replay.
func BenchmarkRouterCachedSolve(b *testing.B) {
	url, client := benchCluster(b, 3)
	bodies := make([]string, 16)
	for i := range bodies {
		bodies[i] = fmt.Sprintf(`{"bench":"elliptic","seed":%d,"types":3,"slack":4}`, i)
	}
	post := func(body string) {
		resp, err := client.Post(url+"/v1/solve", "application/json", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		if err := resp.Body.Close(); err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
	for _, body := range bodies {
		post(body) // warm every node's cache
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		post(bodies[i&15])
	}
}

// BenchmarkRouterCachedSolveBin is BenchmarkRouterCachedSolve over the
// binary codec: the zero-parse extraction path end to end.
func BenchmarkRouterCachedSolveBin(b *testing.B) {
	url, client := benchCluster(b, 3)
	bodies := make([][]byte, 16)
	for i := range bodies {
		seed := int64(i)
		req := &server.SolveRequest{Bench: "elliptic", Seed: &seed, Types: 3, Slack: new(int)}
		enc, err := server.EncodeBinSolveRequest(req)
		if err != nil {
			b.Fatal(err)
		}
		bodies[i] = enc
	}
	post := func(body []byte) {
		req, err := http.NewRequest(http.MethodPost, url+"/v1/solve", strings.NewReader(string(body)))
		if err != nil {
			b.Fatal(err)
		}
		req.Header.Set("Content-Type", server.BinContentType)
		req.Header.Set("Accept", server.BinContentType)
		resp, err := client.Do(req)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		if err := resp.Body.Close(); err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
	for _, body := range bodies {
		post(body)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		post(bodies[i&15])
	}
}

// BenchmarkRouterMetrics measures the /metrics snapshot cost, which status
// pollers hit continuously in production.
func BenchmarkRouterMetrics(b *testing.B) {
	rt, err := New(Config{Peers: []string{"http://127.0.0.1:1"}, ProbeInterval: time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(rt.Close)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := rt.Metrics()
		if len(m.Peers) != 1 {
			b.Fatal("bad snapshot")
		}
	}
}
