package cluster

import (
	"bytes"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"hetsynth/internal/server"
)

// maxProxyBodyBytes bounds a buffered request body, mirroring the node's
// own maxBodyBytes bound so the router never buffers more than a node would
// accept.
const maxProxyBodyBytes = 8 << 20

// hopHeaders are the hop-by-hop headers a proxy must not relay (RFC 9110
// §7.6.1); everything else is copied verbatim in both directions.
var hopHeaders = [...]string{
	"Connection", "Keep-Alive", "Proxy-Authenticate", "Proxy-Authorization",
	"Te", "Trailer", "Transfer-Encoding", "Upgrade",
}

// bodyPool recycles request-body buffers; ownership is exclusive between
// getBody/putBody, exactly like the node's iobuf pool.
var bodyPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func getBody() *bytes.Buffer {
	b := bodyPool.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

func putBody(b *bytes.Buffer) { bodyPool.Put(b) }

// copyPool recycles response-relay chunks.
var copyPool = sync.Pool{New: func() any {
	b := make([]byte, 32<<10)
	return &b
}}

// forward proxies one fully buffered request to peer p and relays the
// response to w. body may be nil for body-less methods; because the body is
// always an in-memory slice, a transport failure is safely retryable on a
// ring successor — nothing has been consumed and nothing written to w.
//
// The returned status is the upstream's; retryAfter carries a parsed
// Retry-After hint on 429/503. A non-nil error means the peer never
// produced an HTTP response (dial/transport failure) and w is untouched;
// once any part of a response has been relayed the request is committed and
// err is nil.
//
// stream switches the body relay to flush-per-chunk, which is what keeps
// SSE sessions (/v1/instances/{id}/events) live through the router.
//
// hetsynth:hotpath
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, body []byte, p *Peer, stream bool) (status int, retryAfter time.Duration, err error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, p.URL+r.URL.RequestURI(), rd)
	if err != nil {
		return 0, 0, err
	}
	copyHeaders(req.Header, r.Header)
	req.Header.Set(server.ForwardedHeader, "hetsynthrouter")
	req.ContentLength = int64(len(body))

	resp, err := rt.client.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer func() {
		//hetsynth:ignore retval response body close after a full relay (or
		// a failed one with the client gone); there is no recovery path.
		_ = resp.Body.Close()
	}()

	copyHeaders(w.Header(), resp.Header)
	w.WriteHeader(resp.StatusCode)
	if stream {
		relayStream(w, resp.Body)
	} else {
		bp := copyPool.Get().(*[]byte)
		//hetsynth:ignore retval a failed relay write means the client is
		// gone; the response status is already committed.
		_, _ = io.CopyBuffer(w, resp.Body, *bp)
		copyPool.Put(bp)
	}
	if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
		if s, aerr := strconv.Atoi(resp.Header.Get("Retry-After")); aerr == nil && s > 0 {
			retryAfter = time.Duration(s) * time.Second
		}
	}
	return resp.StatusCode, retryAfter, nil
}

// relayStream copies an SSE body flushing every read, so upstream frames
// reach the subscriber as they are produced rather than when a 32k buffer
// fills.
func relayStream(w http.ResponseWriter, body io.Reader) {
	f, canFlush := w.(http.Flusher) // non-Flusher writers degrade to buffered relay
	buf := make([]byte, 4<<10)
	for {
		n, err := body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if canFlush {
				f.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// copyHeaders copies everything but hop-by-hop headers from src into dst.
func copyHeaders(dst, src http.Header) {
	for k, vv := range src {
		if isHopHeader(k) {
			continue
		}
		for _, v := range vv {
			dst.Add(k, v)
		}
	}
}

func isHopHeader(k string) bool {
	for _, h := range hopHeaders {
		if h == k {
			return true
		}
	}
	return false
}
