package cluster

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"

	"hetsynth/internal/canon"
	"hetsynth/internal/server"
)

// This file extracts the routing key — the canonical instance digest — from
// a solve or batch body without solving, validating, or (for the binary
// codec) even decoding it.
//
// The binary path is the hot one and is zero-parse: the frame layout
// (DESIGN.md §11) is scanned just far enough to locate the embedded
// canonical instance bytes, which are digested in place via
// canon.InstanceDigest — one SHA-256 over bytes already in the request
// buffer, no graph reconstruction. The JSON path re-uses the node's own
// resolution code (server.ResolveInstance), so both codecs produce exactly
// the digest the node will key its caches with; the property tests in
// key_test.go hold the two implementations together.
//
// Extraction never has to be correct about *validity* — only deterministic.
// A body the node would reject still routes consistently (FallbackKey), so
// the 400 comes from one node's decoder rather than from a router that
// second-guesses it.

// Wire-frame constants mirrored from the binary protocol spec (DESIGN.md
// §11). The router re-states them rather than importing the node's decoder:
// the scanner must stay decode-free, and a spec drift between the two is
// exactly what the cross-codec digest tests are there to catch.
const (
	keyMsgSolveReq = 1
	keyMsgBatchReq = 3

	keyFlagTimeout = 1 << 2
	keyFlagsKnown  = 0b111 // schedule | slack | timeout

	keySrcInline    = 0
	keySrcBench     = 1
	keyTableCatalog = 1
	keyTableSeed    = 2
	keyMaxNameLen   = 256
)

var keyMagic = [4]byte{'H', 'S', 'B', '1'}

// AffinityKey derives the routing key of a /v1/solve or /v1/solve-batch
// body: the canonical instance digest of the (first) entry. batch selects
// the batch frame/JSON shape; bin selects the binary codec. Batches route
// by their first entry — sweep batches share one instance across entries,
// so the whole batch lands where its shared frontier lives.
//
// An error means the body defeated extraction (malformed, or an empty
// batch); the caller should fall back to FallbackKey rather than reject —
// only a node's decoder owns rejection.
func AffinityKey(body []byte, bin, batch bool) (string, error) {
	if bin {
		return binAffinityKey(body, batch)
	}
	return jsonAffinityKey(body, batch)
}

// FallbackKey keys a body the extractor could not understand: a digest of
// the raw bytes. Malformed traffic still routes deterministically —
// byte-identical garbage lands on one node and is rejected there once,
// with the raw-replay cache absorbing repeats of well-formed bodies.
func FallbackKey(body []byte) string {
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:])
}

// binAffinityKey scans a binary frame for its first entry's instance and
// digests it in place.
//
// hetsynth:hotpath
func binAffinityKey(body []byte, batch bool) (string, error) {
	if len(body) < 9 {
		return "", errors.New("cluster: body shorter than a frame header")
	}
	if [4]byte(body[:4]) != keyMagic {
		return "", errors.New("cluster: bad frame magic")
	}
	wantMsg := byte(keyMsgSolveReq)
	if batch {
		wantMsg = keyMsgBatchReq
	}
	if body[4] != wantMsg {
		return "", fmt.Errorf("cluster: frame type %d, want %d", body[4], wantMsg)
	}
	if n := binary.LittleEndian.Uint32(body[5:9]); uint64(n) != uint64(len(body)-9) {
		return "", errors.New("cluster: frame length mismatch")
	}
	s := keyScan{b: body[9:]}
	if batch {
		cnt, err := s.uvarint()
		if err != nil {
			return "", err
		}
		if cnt == 0 {
			return "", errors.New("cluster: batch has no entries")
		}
	}
	return s.entryKey()
}

// keyScan is a minimal forward cursor over a frame payload — just enough
// arithmetic to hop over the fixed entry layout.
type keyScan struct {
	b   []byte
	off int
}

var errKeyTruncated = errors.New("cluster: truncated frame payload")

func (s *keyScan) u8() (byte, error) {
	if s.off >= len(s.b) {
		return 0, errKeyTruncated
	}
	c := s.b[s.off]
	s.off++
	return c, nil
}

func (s *keyScan) uvarint() (uint64, error) {
	x, n := binary.Uvarint(s.b[s.off:])
	if n <= 0 {
		return 0, errKeyTruncated
	}
	s.off += n
	return x, nil
}

// str returns a bounded length-prefixed string.
func (s *keyScan) str() (string, error) {
	n, err := s.uvarint()
	if err != nil {
		return "", err
	}
	if n > keyMaxNameLen || int(n) > len(s.b)-s.off {
		return "", errKeyTruncated
	}
	v := string(s.b[s.off : s.off+int(n)])
	s.off += int(n)
	return v, nil
}

func (s *keyScan) skip(n int) error {
	if n > len(s.b)-s.off {
		return errKeyTruncated
	}
	s.off += n
	return nil
}

// entryKey scans one solve-request entry at the cursor and returns its
// instance digest. Inline entries digest the embedded canonical bytes
// without decoding them; bench entries resolve through the node's own
// request resolution, so named benchmarks and seeded tables key identically
// on router and node.
func (s *keyScan) entryKey() (string, error) {
	flags, err := s.u8()
	if err != nil {
		return "", err
	}
	if flags&^byte(keyFlagsKnown) != 0 {
		return "", fmt.Errorf("cluster: unknown request flags 0x%02x", flags)
	}
	if _, err := s.uvarint(); err != nil { // deadline or slack
		return "", err
	}
	if flags&keyFlagTimeout != 0 {
		if _, err := s.uvarint(); err != nil {
			return "", err
		}
	}
	if _, err := s.str(); err != nil { // algorithm
		return "", err
	}
	src, err := s.u8()
	if err != nil {
		return "", err
	}
	switch src {
	case keySrcInline:
		if err := s.skip(4); err != nil {
			return "", err
		}
		n := binary.LittleEndian.Uint32(s.b[s.off-4 : s.off])
		if int(n) > len(s.b)-s.off {
			return "", errKeyTruncated
		}
		inst := s.b[s.off : s.off+int(n)]
		return canon.InstanceDigest(inst), nil
	case keySrcBench:
		req := server.SolveRequest{}
		if req.Bench, err = s.str(); err != nil {
			return "", err
		}
		tk, err := s.u8()
		if err != nil {
			return "", err
		}
		switch tk {
		case keyTableCatalog:
			if req.Catalog, err = s.str(); err != nil {
				return "", err
			}
		case keyTableSeed:
			if err := s.skip(8); err != nil {
				return "", err
			}
			seed := int64(binary.LittleEndian.Uint64(s.b[s.off-8 : s.off]))
			req.Seed = &seed
			types, err := s.uvarint()
			if err != nil {
				return "", err
			}
			req.Types = int(types)
		default:
			return "", fmt.Errorf("cluster: unknown table source %d", tk)
		}
		return resolveInstanceDigest(&req)
	default:
		return "", fmt.Errorf("cluster: unknown graph source %d", src)
	}
}

// jsonAffinityKey resolves a JSON body through the node's own request
// resolution and digests the materialized instance.
func jsonAffinityKey(body []byte, batch bool) (string, error) {
	dec := json.NewDecoder(bytes.NewReader(body))
	if batch {
		var breq struct {
			Entries []server.SolveRequest `json:"entries"`
		}
		if err := dec.Decode(&breq); err != nil {
			return "", fmt.Errorf("cluster: batch JSON: %w", err)
		}
		if len(breq.Entries) == 0 {
			return "", errors.New("cluster: batch has no entries")
		}
		return resolveInstanceDigest(&breq.Entries[0])
	}
	var req server.SolveRequest
	if err := dec.Decode(&req); err != nil {
		return "", fmt.Errorf("cluster: solve JSON: %w", err)
	}
	return resolveInstanceDigest(&req)
}

// resolveInstanceDigest materializes a request's graph and table exactly as
// a node would and returns the canonical instance digest the node will key
// its caches with.
func resolveInstanceDigest(req *server.SolveRequest) (string, error) {
	g, tab, err := server.ResolveInstance(req)
	if err != nil {
		return "", err
	}
	return canon.Instance(g, tab), nil
}
