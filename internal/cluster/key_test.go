package cluster

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"hetsynth/internal/canon"
	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
	"hetsynth/internal/server"
)

// keyTestBodies is the shared JSON corpus: every request shape the node's
// decoder accepts, mirroring the table in internal/server/wire_test.go.
var keyTestBodies = []string{
	`{"bench":"elliptic","seed":1,"slack":4}`,
	`{"bench":"elliptic","seed":1,"types":3,"slack":4}`,
	`{"bench":"diffeq","catalog":"generic3","deadline":40,"schedule":true}`,
	`{"bench":"iir4","seed":9,"types":2,"deadline":60,"algorithm":"dp","timeout_ms":250}`,
	`{"bench":"fft8","seed":1234,"types":4,"slack":6,"schedule":true}`,
	`{"graph":{"nodes":[{"name":"a","op":"mul"},{"name":"b","op":"add"}],"edges":[{"from":"a","to":"b"}]},"table":{"time":[[1,2],[2,1]],"cost":[[3,1],[1,4]]},"slack":3}`,
}

// nodeDigest resolves a request the way a node does and returns the instance
// digest the node keys its caches with — the reference value every
// router-side extraction must reproduce.
func nodeDigest(t *testing.T, req *server.SolveRequest) string {
	t.Helper()
	g, tab, err := server.ResolveInstance(req)
	if err != nil {
		t.Fatalf("ResolveInstance: %v", err)
	}
	return canon.Instance(g, tab)
}

func parseSolveRequest(t *testing.T, body string) *server.SolveRequest {
	t.Helper()
	var req server.SolveRequest
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatalf("unmarshal %s: %v", body, err)
	}
	return &req
}

// TestAffinityKeyMatchesNodeDigestJSON holds the JSON extraction path to the
// node's own cache keying: for every accepted request shape, the router's
// key equals the canonical instance digest the node computes.
func TestAffinityKeyMatchesNodeDigestJSON(t *testing.T) {
	for _, body := range keyTestBodies {
		req := parseSolveRequest(t, body)
		want := nodeDigest(t, req)
		got, err := AffinityKey([]byte(body), false, false)
		if err != nil {
			t.Fatalf("AffinityKey(%s): %v", body, err)
		}
		if got != want {
			t.Errorf("AffinityKey(%s) = %s, want node digest %s", body, got, want)
		}
	}
}

// TestAffinityKeyMatchesNodeDigestBin is the cross-codec property at the
// heart of the router: the zero-parse scan over a binary frame produces the
// same digest as fully resolving the JSON twin node-side. This is what
// pins the scanner's mirrored wire constants to the real protocol — a spec
// drift between key.go and internal/server/wire.go fails here.
func TestAffinityKeyMatchesNodeDigestBin(t *testing.T) {
	for _, body := range keyTestBodies {
		req := parseSolveRequest(t, body)
		want := nodeDigest(t, req)
		bin, err := server.EncodeBinSolveRequest(req)
		if err != nil {
			t.Fatalf("EncodeBinSolveRequest(%s): %v", body, err)
		}
		got, err := AffinityKey(bin, true, false)
		if err != nil {
			t.Fatalf("AffinityKey(bin %s): %v", body, err)
		}
		if got != want {
			t.Errorf("bin AffinityKey(%s) = %s, want node digest %s", body, got, want)
		}
	}
}

// TestAffinityKeyBatchRoutesByFirstEntry checks both batch codecs key on the
// first entry's digest, and that a JSON batch, its binary twin, and the bare
// first entry all land on the same key.
func TestAffinityKeyBatchRoutesByFirstEntry(t *testing.T) {
	var breq server.BatchRequest
	for _, body := range keyTestBodies[:3] {
		breq.Entries = append(breq.Entries, *parseSolveRequest(t, body))
	}
	want := nodeDigest(t, &breq.Entries[0])

	jsonBody, err := json.Marshal(breq)
	if err != nil {
		t.Fatal(err)
	}
	got, err := AffinityKey(jsonBody, false, true)
	if err != nil {
		t.Fatalf("json batch: %v", err)
	}
	if got != want {
		t.Errorf("json batch key = %s, want first-entry digest %s", got, want)
	}

	binBody, err := server.EncodeBinBatchRequest(&breq)
	if err != nil {
		t.Fatal(err)
	}
	got, err = AffinityKey(binBody, true, true)
	if err != nil {
		t.Fatalf("bin batch: %v", err)
	}
	if got != want {
		t.Errorf("bin batch key = %s, want first-entry digest %s", got, want)
	}
}

// TestAffinityKeyInlineDigestsWithoutDecoding builds instances directly and
// checks the inline scan equals canon.InstanceDigest over the exact encoded
// bytes (the KeysEncoded instance key), across a spread of random graphs.
func TestAffinityKeyInlineDigestsWithoutDecoding(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		g := randomGraph(t, rng, 2+rng.Intn(12))
		tab := fu.RandomTable(rng, g.N(), 1+rng.Intn(4))

		inst := canon.AppendInstance(nil, g, tab)
		wantInst := canon.InstanceDigest(inst)
		if want := canon.Instance(g, tab); wantInst != want {
			t.Fatalf("canon self-check: InstanceDigest %s != Instance %s", wantInst, want)
		}
		_, wantKeyed := canon.KeysEncoded(inst, 10, "auto")
		if wantInst != wantKeyed {
			t.Fatalf("canon self-check: InstanceDigest %s != KeysEncoded instance %s", wantInst, wantKeyed)
		}

		gj, err := g.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		req := &server.SolveRequest{
			Graph: gj,
			Table: &server.TablePayload{Time: tab.Time, Cost: tab.Cost},
			Slack: new(int),
		}
		bin, err := server.EncodeBinSolveRequest(req)
		if err != nil {
			t.Fatalf("trial %d: encode: %v", trial, err)
		}
		want := nodeDigest(t, req)
		got, err := AffinityKey(bin, true, false)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got != want {
			t.Errorf("trial %d: inline bin key %s != node digest %s", trial, got, want)
		}
	}
}

// randomGraph builds a random connected DAG of n nodes.
func randomGraph(t *testing.T, rng *rand.Rand, n int) *dfg.Graph {
	t.Helper()
	ops := []string{"add", "mul", "sub", "mac"}
	g := dfg.New()
	ids := make([]dfg.NodeID, n)
	for i := 0; i < n; i++ {
		id, err := g.AddNode(fmt.Sprintf("n%d", i), ops[rng.Intn(len(ops))])
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	for i := 1; i < n; i++ {
		if err := g.AddEdge(ids[rng.Intn(i)], ids[i], rng.Intn(2)); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// TestAffinityKeyMalformedNeverPanics walks every truncation of a valid
// binary frame (plus bit-flip corruptions) through the scanner: all must
// return an error or a digest, never panic, and extraction failure must be
// deterministic so FallbackKey routing is stable.
func TestAffinityKeyMalformedNeverPanics(t *testing.T) {
	req := parseSolveRequest(t, keyTestBodies[0])
	bin, err := server.EncodeBinSolveRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(bin); cut++ {
		if _, err := AffinityKey(bin[:cut], true, false); err == nil && cut < len(bin) {
			// Truncations shorter than the full frame must fail the length
			// check in the header (or the scan).
			t.Errorf("truncation at %d unexpectedly produced a key", cut)
		}
	}
	for i := 0; i < len(bin); i++ {
		mut := append([]byte(nil), bin...)
		mut[i] ^= 0xff
		k1, e1 := AffinityKey(mut, true, false)
		k2, e2 := AffinityKey(mut, true, false)
		if k1 != k2 || (e1 == nil) != (e2 == nil) {
			t.Fatalf("nondeterministic extraction at flip %d", i)
		}
	}
	if _, err := AffinityKey(nil, true, false); err == nil {
		t.Error("nil body produced a key")
	}
	if _, err := AffinityKey([]byte(`{"entries":[]}`), false, true); err == nil {
		t.Error("empty batch produced a key")
	}
	if _, err := AffinityKey([]byte(`not json`), false, false); err == nil {
		t.Error("garbage JSON produced a key")
	}
}

// TestFallbackKeyDeterministic pins the fallback's two properties: equal
// bodies key equal, distinct bodies key distinct.
func TestFallbackKeyDeterministic(t *testing.T) {
	a, b := FallbackKey([]byte("x")), FallbackKey([]byte("x"))
	if a != b {
		t.Fatalf("FallbackKey not deterministic: %s vs %s", a, b)
	}
	if FallbackKey([]byte("x")) == FallbackKey([]byte("y")) {
		t.Fatal("distinct bodies collided")
	}
	if len(a) != 64 || strings.ToLower(a) != a {
		t.Fatalf("FallbackKey %q is not lowercase hex sha256", a)
	}
}
