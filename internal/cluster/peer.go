package cluster

import (
	"sync/atomic"
	"time"
)

// Peer is one backend node of the cluster: its base URL plus the liveness
// and backpressure state that routing reads. All mutable state is atomic —
// the forwarding hot path reads weights lock-free on every request, and the
// prober writes from its own goroutine.
type Peer struct {
	// URL is the node's base URL (scheme://host:port), immutable.
	URL string

	alive     atomic.Bool  // false after a transport failure or failed health probe
	weight    atomic.Int64 // vnode activation weight in [WeightFloor, WeightFull] while alive
	shedUntil atomic.Int64 // unix nanos until which recovery ramping stays paused

	forwarded atomic.Int64 // requests this peer answered (any HTTP status)
	errs      atomic.Int64 // transport failures talking to this peer
}

func newPeer(url string) *Peer {
	p := &Peer{URL: url}
	p.alive.Store(true)
	p.weight.Store(WeightFull)
	return p
}

// effectiveWeight is the vnode activation weight routing sees right now:
// zero for a dead node, the backpressure-adjusted weight otherwise.
func (p *Peer) effectiveWeight() int {
	if !p.alive.Load() {
		return 0
	}
	return int(p.weight.Load())
}

// markShed records a backpressure signal (a 429 relay or a "draining"
// heartbeat): the weight halves down to WeightFloor — spilling roughly half
// the node's remaining keyspace to ring successors — and recovery ramping
// is paused for the retryAfter hint. It reports whether the weight actually
// dropped, so the router counts shed *events* rather than every 429 of a
// sustained burst.
func (p *Peer) markShed(retryAfter time.Duration, now time.Time) bool {
	if retryAfter < time.Second {
		retryAfter = time.Second
	}
	until := now.Add(retryAfter).UnixNano()
	for {
		cur := p.shedUntil.Load()
		if cur >= until || p.shedUntil.CompareAndSwap(cur, until) {
			break
		}
	}
	for {
		w := p.weight.Load()
		nw := w / 2
		if nw < WeightFloor {
			nw = WeightFloor
		}
		if nw >= w {
			return false
		}
		if p.weight.CompareAndSwap(w, nw) {
			return true
		}
	}
}

// markDead takes the node out of the ring entirely (transport failure or a
// failed health probe); it reports whether the node was alive before.
func (p *Peer) markDead() bool {
	return p.alive.CompareAndSwap(true, false)
}

// markAlive readmits a node the prober found healthy again. It re-enters at
// a quarter weight — its caches are cold after death, so keys flow back
// gradually as recoverStep ramps — and reports whether the node was dead.
func (p *Peer) markAlive(now time.Time) bool {
	if !p.alive.CompareAndSwap(false, true) {
		return false
	}
	p.weight.Store(WeightFloor * 2)
	p.shedUntil.Store(now.UnixNano())
	return true
}

// recoverStep is called by the prober on each healthy heartbeat: once the
// shed pause has elapsed, the weight doubles toward WeightFull, so a node
// that shed under a burst takes back its keyspace over a few probe
// intervals instead of all at once.
func (p *Peer) recoverStep(now time.Time) {
	if !p.alive.Load() || now.UnixNano() < p.shedUntil.Load() {
		return
	}
	for {
		w := p.weight.Load()
		if w >= WeightFull {
			return
		}
		nw := w * 2
		if nw > WeightFull {
			nw = WeightFull
		}
		if p.weight.CompareAndSwap(w, nw) {
			return
		}
	}
}

// PeerStatus is one peer's row in the router's /metrics body.
type PeerStatus struct {
	URL       string `json:"url"`
	Alive     bool   `json:"alive"`
	Weight    int    `json:"weight"`
	Forwarded int64  `json:"forwarded"`
	Errors    int64  `json:"errors"`
}

func (p *Peer) status() PeerStatus {
	return PeerStatus{
		URL:       p.URL,
		Alive:     p.alive.Load(),
		Weight:    int(p.weight.Load()),
		Forwarded: p.forwarded.Load(),
		Errors:    p.errs.Load(),
	}
}
