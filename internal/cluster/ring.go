// Package cluster implements hetsynthd's cache-affinity scale-out layer:
// a consistent-hash ring over backend nodes, a peer table fed by a health
// prober, and a forwarding router (cmd/hetsynthrouter) that keys every
// solve on its canonical instance digest so same-graph traffic always
// lands on the node already holding the pinned FrontierSolver and
// raw-response entries.
//
// The design mirrors the source paper's core move one level up: just as
// each DSP node is assigned to the functional-unit type that executes it
// best, each solve is assigned to the node that already holds its state.
// A naive round-robin would shatter the per-node caches — every node ends
// up holding (and thrashing) the full working set; affinity routing
// partitions the instance space so N nodes hold N cache's worth of
// distinct state.
//
// Backpressure rides the PR-4 shed signal: a 429/Retry-After from a node
// (or a "draining" heartbeat) halves its virtual-node weight, spilling a
// share of its keys to ring successors; sustained health ramps the weight
// back, rebalancing without ever moving keys that were not forced to move.
package cluster

import (
	"fmt"
	"sort"
)

// WeightFull is the virtual-node activation weight of a fully healthy node;
// weights live in [0, WeightFull]. A vnode with activation byte g is active
// iff g < weight, so WeightFull activates every vnode and 0 deactivates all.
const WeightFull = 256

// WeightFloor is the lowest weight backpressure alone can push a node to:
// roughly an eighth of its keyspace keeps landing on it, which both bounds
// how much load spills onto successors and keeps probing the node with real
// traffic so recovery is observed quickly. Only death (transport failure or
// a failed health probe) takes a node to zero.
const WeightFloor = 32

// Ring is a consistent-hash ring mapping affinity keys onto a fixed set of
// nodes through virtual nodes. The node set is immutable after construction
// — membership changes in this design are weight changes (a dead node
// weighs zero), which is what makes rebalancing minimal: a key only moves
// when a vnode between its hash and its current owner changes activation.
//
// Ring itself is immutable and safe for concurrent use; per-node weights
// are supplied at lookup time by the caller (the router's peer table).
type Ring struct {
	points []ringPoint // sorted ascending by hash
	nodes  int
}

// ringPoint is one virtual node: its position on the ring, the node it
// belongs to, and its activation byte. The activation byte comes from the
// low bits of the point's own hash — effectively a fixed random draw per
// vnode, decorrelated from ring position (which sorts on the full hash) —
// so reducing a node's weight deactivates a uniform sample of its vnodes
// rather than a contiguous arc.
type ringPoint struct {
	hash uint64
	node int32
	gate uint16 // active iff int(gate) < weight
}

// NewRing builds a ring of nodes*vnodes points. Nodes are identified by
// index [0, nodes); the caller keeps the parallel peer table. vnodes is the
// points-per-node count: more points tighten the load skew (≈ N/sqrt(vnodes)
// imbalance) at the cost of a larger sorted array.
func NewRing(nodes, vnodes int) (*Ring, error) {
	if nodes < 1 {
		return nil, fmt.Errorf("cluster: ring needs at least one node, got %d", nodes)
	}
	if vnodes < 1 || vnodes > 1<<14 {
		return nil, fmt.Errorf("cluster: vnodes %d out of range [1, %d]", vnodes, 1<<14)
	}
	r := &Ring{points: make([]ringPoint, 0, nodes*vnodes), nodes: nodes}
	for n := 0; n < nodes; n++ {
		for v := 0; v < vnodes; v++ {
			// (node, vnode) is a short structured input; byte-stream hashes
			// like FNV correlate badly over it (same-node points cluster on
			// the ring, so a dead node dumps its whole keyspace on one
			// successor). A splitmix64 finalizer avalanches every input bit
			// into every output bit, which is what spreads each node's
			// points — and its failover spill — uniformly.
			h := mix64(uint64(n)<<32 | uint64(v))
			r.points = append(r.points, ringPoint{hash: h, node: int32(n), gate: uint16(h & 0xff)})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r, nil
}

// Nodes returns the node count the ring was built over.
func (r *Ring) Nodes() int { return r.nodes }

// Route maps an affinity key to its home node and failover chain.
//
// home is the node owning the first ring point at or after the key's hash,
// ignoring weights entirely: it is where the key lives in a fully healthy
// cluster, and it never changes while the membership is fixed — which is
// what makes "affinity hit" well defined (chain[0] == home).
//
// chain is the ordered list of distinct nodes found walking the ring
// clockwise from the key, keeping only vnodes active under the supplied
// per-node weights. chain[0] is where the request should go now; later
// entries are the spill/failover successors. A node whose weight has been
// reduced still appears in the chain if any of its remaining active vnodes
// is reached first — that is the "partial spill" behavior: only the share
// of its keyspace gated off by the weight moves to successors.
//
// chain is appended to buf (pass buf[:0] to reuse storage); an empty chain
// means every node weighs zero.
//
// hetsynth:hotpath
func (r *Ring) Route(key string, weight func(node int) int, buf []int) (home int, chain []int) {
	h := fnv1a64str(key)
	n := len(r.points)
	// First point with hash >= h; wraps to 0 past the top of the ring.
	i := sort.Search(n, func(j int) bool { return r.points[j].hash >= h })
	chain = buf
	home = -1
	for k := 0; k < n; k++ {
		p := &r.points[(i+k)%n]
		node := int(p.node)
		if home < 0 {
			home = node
		}
		if int(p.gate) >= weight(node) {
			continue
		}
		seen := false
		for _, c := range chain {
			if c == node {
				seen = true
				break
			}
		}
		if !seen {
			chain = append(chain, node)
			if len(chain) == r.nodes {
				break
			}
		}
	}
	return home, chain
}

// mix64 is the splitmix64 finalizer: a full-avalanche bijection on uint64,
// used to turn structured (node, vnode) pairs into uniform ring positions.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnv1a64str is FNV-1a over a string, inlined so key lookups never allocate
// a hash.Hash. Keys are long digest strings, which FNV spreads well; the
// result is finalized through mix64 so even short session keys land
// uniformly.
func fnv1a64str(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return mix64(h)
}
