package cluster

import (
	"fmt"
	"testing"
)

// fullWeights weights every node at WeightFull.
func fullWeights(int) int { return WeightFull }

// weightTable builds a weight func from a per-node slice.
func weightTable(w []int) func(int) int {
	return func(node int) int { return w[node] }
}

// ringKeys generates n distinct affinity-key-shaped strings (hex-ish ids).
func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("inst-%08x-key", i*2654435761)
	}
	return keys
}

func TestNewRingValidation(t *testing.T) {
	if _, err := NewRing(0, 16); err == nil {
		t.Error("0 nodes accepted")
	}
	if _, err := NewRing(3, 0); err == nil {
		t.Error("0 vnodes accepted")
	}
	if _, err := NewRing(3, 1<<15); err == nil {
		t.Error("oversized vnodes accepted")
	}
	r, err := NewRing(3, 128)
	if err != nil {
		t.Fatal(err)
	}
	if r.Nodes() != 3 {
		t.Fatalf("Nodes() = %d, want 3", r.Nodes())
	}
}

// TestRingDistribution bounds the load skew of a healthy ring: with 128
// vnodes per node, every node's share of 30k keys must stay within a factor
// of the fair share. The hash is deterministic, so this is a fixed property
// of the construction, not a flaky statistical assertion.
func TestRingDistribution(t *testing.T) {
	keys := ringKeys(30000)
	for _, nodes := range []int{2, 3, 5, 8} {
		r, err := NewRing(nodes, 128)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int, nodes)
		buf := make([]int, 0, nodes)
		for _, k := range keys {
			_, chain := r.Route(k, fullWeights, buf[:0])
			if len(chain) == 0 {
				t.Fatalf("nodes=%d: empty chain at full weight", nodes)
			}
			counts[chain[0]]++
		}
		fair := float64(len(keys)) / float64(nodes)
		for n, c := range counts {
			if ratio := float64(c) / fair; ratio < 0.55 || ratio > 1.55 {
				t.Errorf("nodes=%d: node %d holds %d keys (%.2f× fair share %0.f)",
					nodes, n, c, ratio, fair)
			}
		}
	}
}

// TestRingRouteProperties pins the per-lookup invariants: determinism,
// chain[0] == home at full weight, chain covering all nodes exactly once.
func TestRingRouteProperties(t *testing.T) {
	r, err := NewRing(4, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range ringKeys(2000) {
		home, chain := r.Route(k, fullWeights, nil)
		home2, chain2 := r.Route(k, fullWeights, nil)
		if home != home2 || len(chain) != len(chain2) {
			t.Fatalf("key %q: nondeterministic route", k)
		}
		for i := range chain {
			if chain[i] != chain2[i] {
				t.Fatalf("key %q: nondeterministic chain", k)
			}
		}
		if len(chain) != 4 {
			t.Fatalf("key %q: chain %v does not cover all nodes", k, chain)
		}
		if chain[0] != home {
			t.Fatalf("key %q: chain[0]=%d != home=%d at full weight", k, chain[0], home)
		}
		seen := map[int]bool{}
		for _, n := range chain {
			if seen[n] {
				t.Fatalf("key %q: duplicate node %d in chain %v", k, n, chain)
			}
			seen[n] = true
		}
	}
}

// TestRingMinimalMovementOnDeath is the consistent-hashing contract: when
// one node dies (weight 0), every key homed elsewhere keeps its exact
// placement, the dead node's keys redistribute across the survivors, and
// recovery restores the original mapping bit for bit.
func TestRingMinimalMovementOnDeath(t *testing.T) {
	const nodes, dead = 5, 2
	r, err := NewRing(nodes, 128)
	if err != nil {
		t.Fatal(err)
	}
	keys := ringKeys(20000)

	healthy := make([]int, len(keys))
	for i, k := range keys {
		_, chain := r.Route(k, fullWeights, nil)
		healthy[i] = chain[0]
	}

	w := []int{WeightFull, WeightFull, 0, WeightFull, WeightFull}
	moved, redistributed := 0, make([]int, nodes)
	for i, k := range keys {
		_, chain := r.Route(k, weightTable(w), nil)
		if len(chain) != nodes-1 {
			t.Fatalf("key %q: chain %v should cover the 4 survivors", k, chain)
		}
		switch {
		case healthy[i] != dead && chain[0] != healthy[i]:
			moved++
		case healthy[i] == dead:
			if chain[0] == dead {
				t.Fatalf("key %q still routed to dead node", k)
			}
			redistributed[chain[0]]++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys homed on live nodes moved when node %d died", moved, dead)
	}
	// The orphaned keys must spread over all survivors, not dogpile one.
	orphans := 0
	for _, c := range redistributed {
		orphans += c
	}
	for n, c := range redistributed {
		if n == dead {
			continue
		}
		if share := float64(c) / (float64(orphans) / float64(nodes-1)); share < 0.4 || share > 1.8 {
			t.Errorf("survivor %d absorbed %d of %d orphans (%.2f× fair)", n, c, orphans, share)
		}
	}

	// Full recovery restores the exact original mapping.
	for i, k := range keys {
		_, chain := r.Route(k, fullWeights, nil)
		if chain[0] != healthy[i] {
			t.Fatalf("key %q did not return to node %d after recovery", k, healthy[i])
		}
	}
}

// TestRingWeightSpill checks partial backpressure: halving one node's weight
// moves a fraction (not all, not none) of its keys to successors, leaves
// every other node's keys untouched, and a WeightFloor node still receives
// some traffic (the floor's whole purpose).
func TestRingWeightSpill(t *testing.T) {
	const nodes, shed = 4, 1
	r, err := NewRing(nodes, 128)
	if err != nil {
		t.Fatal(err)
	}
	keys := ringKeys(20000)

	healthy := make([]int, len(keys))
	onShed := 0
	for i, k := range keys {
		_, chain := r.Route(k, fullWeights, nil)
		healthy[i] = chain[0]
		if chain[0] == shed {
			onShed++
		}
	}

	for _, weight := range []int{WeightFull / 2, WeightFloor} {
		w := []int{WeightFull, WeightFull, WeightFull, WeightFull}
		w[shed] = weight
		stayed, movedOff, movedOther := 0, 0, 0
		for i, k := range keys {
			_, chain := r.Route(k, weightTable(w), nil)
			switch {
			case healthy[i] == shed && chain[0] == shed:
				stayed++
			case healthy[i] == shed:
				movedOff++
			case chain[0] != healthy[i]:
				movedOther++
			}
		}
		if movedOther != 0 {
			t.Errorf("weight=%d: %d keys of unshedded nodes moved", weight, movedOther)
		}
		if stayed == 0 {
			t.Errorf("weight=%d: shed node lost all its keys; floor should keep some", weight)
		}
		if movedOff == 0 {
			t.Errorf("weight=%d: no keys spilled off the shed node", weight)
		}
		frac := float64(movedOff) / float64(onShed)
		// Halving the weight should spill very roughly half the keys; the
		// floor (32/256) should spill most but never all.
		switch weight {
		case WeightFull / 2:
			if frac < 0.25 || frac > 0.75 {
				t.Errorf("weight=128: spilled %.2f of shed node's keys, want ~0.5", frac)
			}
		case WeightFloor:
			if frac < 0.70 || frac > 0.99 {
				t.Errorf("weight=32: spilled %.2f of shed node's keys, want most-but-not-all", frac)
			}
		}
	}
}

// TestRingChainBufReuse checks the documented buf contract: passing buf[:0]
// reuses storage without corrupting results.
func TestRingChainBufReuse(t *testing.T) {
	r, err := NewRing(3, 32)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]int, 0, 3)
	a1, c1 := r.Route("key-a", fullWeights, buf[:0])
	first := append([]int(nil), c1...)
	a2, c2 := r.Route("key-a", fullWeights, buf[:0])
	if a1 != a2 || len(first) != len(c2) {
		t.Fatal("buf reuse changed the route")
	}
	for i := range first {
		if first[i] != c2[i] {
			t.Fatal("buf reuse corrupted the chain")
		}
	}
}
