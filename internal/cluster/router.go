package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"hetsynth/internal/server"
)

// Config tunes a Router. Zero values select sensible defaults.
type Config struct {
	// Peers are the backend node base URLs (e.g. "http://127.0.0.1:8081").
	// The set is fixed for the router's lifetime; failed nodes are weighted
	// out of the ring, not removed from it.
	Peers []string

	VNodes         int           // virtual nodes per peer; default 128
	ProbeInterval  time.Duration // health heartbeat period; default 250ms
	ProbeTimeout   time.Duration // per-probe HTTP timeout; default 2s
	MaxIdlePerHost int           // pooled connections per peer; default 64

	Logger *slog.Logger // default: discard
}

func (c Config) withDefaults() Config {
	if c.VNodes < 1 {
		c.VNodes = 128
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 250 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.MaxIdlePerHost < 1 {
		c.MaxIdlePerHost = 64
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c
}

// routerMetrics are the router's operational counters; all atomics, served
// as JSON by the router's own /metrics.
type routerMetrics struct {
	forwarded    atomic.Int64 // requests relayed to a backend (any status)
	affinityHits atomic.Int64 // relayed to the key's home node
	failovers    atomic.Int64 // retried on a ring successor after a transport failure
	peerSheds    atomic.Int64 // weight reductions from 429/draining backpressure
	keyFallbacks atomic.Int64 // bodies routed by raw-byte hash (extraction failed)
	unrouted     atomic.Int64 // requests that failed on every live peer
}

// RouterMetricsSnapshot is the JSON layout of the router's GET /metrics.
type RouterMetricsSnapshot struct {
	Forwarded    int64        `json:"forwarded"`
	AffinityHits int64        `json:"affinity_hits"`
	AffinityRate float64      `json:"affinity_rate"`
	Failovers    int64        `json:"failovers"`
	PeerSheds    int64        `json:"peer_sheds"`
	KeyFallbacks int64        `json:"key_fallbacks"`
	Unrouted     int64        `json:"unrouted"`
	Peers        []PeerStatus `json:"peers"`
}

// Router consistent-hashes solve traffic onto a fixed set of hetsynthd
// nodes by canonical instance digest, so same-instance requests always land
// on the node already holding the pinned FrontierSolver and raw-response
// state. It proxies both codecs verbatim, probes peer health through
// GET /v1/peerz, and treats 429/Retry-After (or a draining heartbeat) as
// backpressure: the peer's virtual-node weight halves and the gated share
// of its keyspace spills to ring successors until recovery ramps it back.
type Router struct {
	cfg    Config
	log    *slog.Logger
	ring   *Ring
	peers  []*Peer
	client *http.Client
	met    routerMetrics

	// weightFn adapts the peer table for Ring.Route; built once so the
	// per-request path does not allocate a fresh closure.
	weightFn func(node int) int

	stop    chan struct{}
	probeWG sync.WaitGroup
	closed  atomic.Bool
}

// New builds a Router over the configured peer set and starts its health
// prober. Callers own shutdown via Close.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("cluster: at least one peer is required")
	}
	ring, err := NewRing(len(cfg.Peers), cfg.VNodes)
	if err != nil {
		return nil, err
	}
	rt := &Router{
		cfg:  cfg,
		log:  cfg.Logger,
		ring: ring,
		client: &http.Client{Transport: &http.Transport{
			MaxIdleConns:        cfg.MaxIdlePerHost * len(cfg.Peers),
			MaxIdleConnsPerHost: cfg.MaxIdlePerHost,
			IdleConnTimeout:     90 * time.Second,
		}},
		stop: make(chan struct{}),
	}
	for _, u := range cfg.Peers {
		rt.peers = append(rt.peers, newPeer(u))
	}
	rt.weightFn = func(node int) int { return rt.peers[node].effectiveWeight() }
	rt.probeWG.Add(1)
	go func() {
		defer rt.probeWG.Done()
		rt.probeLoop()
	}()
	return rt, nil
}

// Close stops the health prober and releases pooled connections.
func (rt *Router) Close() {
	if !rt.closed.CompareAndSwap(false, true) {
		return
	}
	close(rt.stop)
	rt.probeWG.Wait()
	rt.client.CloseIdleConnections()
}

// Metrics returns a point-in-time snapshot of the router counters.
func (rt *Router) Metrics() RouterMetricsSnapshot {
	s := RouterMetricsSnapshot{
		Forwarded:    rt.met.forwarded.Load(),
		AffinityHits: rt.met.affinityHits.Load(),
		Failovers:    rt.met.failovers.Load(),
		PeerSheds:    rt.met.peerSheds.Load(),
		KeyFallbacks: rt.met.keyFallbacks.Load(),
		Unrouted:     rt.met.unrouted.Load(),
	}
	if s.Forwarded > 0 {
		s.AffinityRate = float64(s.AffinityHits) / float64(s.Forwarded)
	}
	for _, p := range rt.peers {
		s.Peers = append(s.Peers, p.status())
	}
	return s
}

// Peers exposes the peer table (for tests and status tooling).
func (rt *Router) Peers() []*Peer { return rt.peers }

// Handler returns the router's HTTP routes: every node endpoint, proxied
// with cache affinity, plus the router's own /healthz and /metrics.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", func(w http.ResponseWriter, r *http.Request) {
		rt.handleSolveLike(w, r, false)
	})
	mux.HandleFunc("POST /v1/solve-batch", func(w http.ResponseWriter, r *http.Request) {
		rt.handleSolveLike(w, r, true)
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		rt.handleSolveLike(w, r, false)
	})
	mux.HandleFunc("POST /v1/admit", rt.handleBodyHashed)
	mux.HandleFunc("POST /v1/admit/jobs", rt.handleBodyHashed)
	mux.HandleFunc("GET /v1/jobs", rt.handleJobList)
	mux.HandleFunc("GET /v1/jobs/{id}", rt.handleFindFirst)
	mux.HandleFunc("DELETE /v1/jobs/{id}", rt.handleFindFirst)
	mux.HandleFunc("PUT /v1/instances/{id}", rt.handleSession)
	mux.HandleFunc("PATCH /v1/instances/{id}", rt.handleSession)
	mux.HandleFunc("GET /v1/instances/{id}", rt.handleSession)
	mux.HandleFunc("DELETE /v1/instances/{id}", rt.handleSession)
	mux.HandleFunc("GET /v1/instances/{id}/events", rt.handleSessionEvents)
	mux.HandleFunc("GET /v1/benchmarks", rt.handleAnyPeer)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	return mux
}

// handleSolveLike routes /v1/solve, /v1/solve-batch and /v1/jobs by
// canonical instance digest — the affinity path this whole package exists
// for.
func (rt *Router) handleSolveLike(w http.ResponseWriter, r *http.Request, batch bool) {
	buf := getBody()
	defer putBody(buf)
	body, aerr := readProxyBody(buf, r.Body)
	if aerr != "" {
		writeRouterErr(w, http.StatusBadRequest, aerr)
		return
	}
	bin := isBinContentType(r.Header.Get("Content-Type"))
	key, err := AffinityKey(body, bin, batch)
	if err != nil {
		rt.met.keyFallbacks.Add(1)
		key = FallbackKey(body)
	}
	rt.route(w, r, body, key, false)
}

// handleBodyHashed routes endpoints without an instance digest (/v1/admit)
// by raw body hash: identical admission requests still share one node's
// admit cache, and distinct ones spread evenly.
func (rt *Router) handleBodyHashed(w http.ResponseWriter, r *http.Request) {
	buf := getBody()
	defer putBody(buf)
	body, aerr := readProxyBody(buf, r.Body)
	if aerr != "" {
		writeRouterErr(w, http.StatusBadRequest, aerr)
		return
	}
	rt.route(w, r, body, FallbackKey(body), false)
}

// handleSession routes every verb of /v1/instances/{id} by session id, so a
// session's whole lifecycle — create, patch, read, delete — stays on the
// node holding its IncrementalSolver.
func (rt *Router) handleSession(w http.ResponseWriter, r *http.Request) {
	buf := getBody()
	defer putBody(buf)
	body, aerr := readProxyBody(buf, r.Body)
	if aerr != "" {
		writeRouterErr(w, http.StatusBadRequest, aerr)
		return
	}
	rt.route(w, r, body, "sess/"+r.PathValue("id"), false)
}

// handleSessionEvents is handleSession for the SSE stream: same key, but
// the relay flushes per chunk so events pass through live.
func (rt *Router) handleSessionEvents(w http.ResponseWriter, r *http.Request) {
	rt.route(w, r, nil, "sess/"+r.PathValue("id"), true)
}

// route picks the key's first live ring node and forwards, failing over to
// ring successors on transport errors. Responses — including 429 sheds,
// which double as the backpressure signal — are relayed verbatim; the
// router never retries a request a node has answered.
func (rt *Router) route(w http.ResponseWriter, r *http.Request, body []byte, key string, stream bool) {
	home, chain := rt.ring.Route(key, rt.weightFn, make([]int, 0, len(rt.peers)))
	for i, node := range chain {
		p := rt.peers[node]
		status, retryAfter, err := rt.forward(w, r, body, p, stream)
		if err != nil {
			p.errs.Add(1)
			if p.markDead() {
				rt.log.Warn("peer dead", "peer", p.URL, "err", err)
			}
			if i+1 < len(chain) {
				rt.met.failovers.Add(1)
			}
			continue
		}
		p.forwarded.Add(1)
		rt.met.forwarded.Add(1)
		if node == home {
			rt.met.affinityHits.Add(1)
		}
		if status == http.StatusTooManyRequests {
			if p.markShed(retryAfter, time.Now()) {
				rt.met.peerSheds.Add(1)
				rt.log.Info("peer shedding", "peer", p.URL, "retry_after", retryAfter)
			}
		}
		return
	}
	rt.met.unrouted.Add(1)
	writeRouterErr(w, http.StatusServiceUnavailable, "no live cluster peer could serve the request")
}

// handleFindFirst serves node-local resources reached by id (/v1/jobs/{id})
// whose owner the router cannot derive: it asks each live peer in turn and
// relays the first non-404 answer.
func (rt *Router) handleFindFirst(w http.ResponseWriter, r *http.Request) {
	for _, p := range rt.peers {
		if !p.alive.Load() {
			continue
		}
		req, err := http.NewRequestWithContext(r.Context(), r.Method, p.URL+r.URL.RequestURI(), nil)
		if err != nil {
			continue
		}
		copyHeaders(req.Header, r.Header)
		req.Header.Set(server.ForwardedHeader, "hetsynthrouter")
		resp, err := rt.client.Do(req)
		if err != nil {
			p.errs.Add(1)
			continue
		}
		if resp.StatusCode == http.StatusNotFound {
			drainClose(resp.Body)
			continue
		}
		copyHeaders(w.Header(), resp.Header)
		w.WriteHeader(resp.StatusCode)
		bp := copyPool.Get().(*[]byte)
		//hetsynth:ignore retval a failed relay write means the client is
		// gone; the response status is already committed.
		_, _ = io.CopyBuffer(w, resp.Body, *bp)
		copyPool.Put(bp)
		drainClose(resp.Body)
		rt.met.forwarded.Add(1)
		return
	}
	writeRouterErr(w, http.StatusNotFound, "no such job on any live peer")
}

// handleJobList merges GET /v1/jobs across every live peer.
func (rt *Router) handleJobList(w http.ResponseWriter, r *http.Request) {
	merged := make([]json.RawMessage, 0, 16)
	for _, p := range rt.peers {
		if !p.alive.Load() {
			continue
		}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, p.URL+"/v1/jobs", nil)
		if err != nil {
			continue
		}
		req.Header.Set(server.ForwardedHeader, "hetsynthrouter")
		resp, err := rt.client.Do(req)
		if err != nil {
			p.errs.Add(1)
			continue
		}
		var page struct {
			Jobs []json.RawMessage `json:"jobs"`
		}
		if resp.StatusCode == http.StatusOK {
			//hetsynth:ignore retval a peer page that fails to decode
			// contributes nothing to the merge; the other peers still answer.
			_ = json.NewDecoder(resp.Body).Decode(&page)
		}
		drainClose(resp.Body)
		merged = append(merged, page.Jobs...)
	}
	writeRouterJSON(w, http.StatusOK, map[string]any{"jobs": merged})
}

// handleAnyPeer serves peer-agnostic reads (/v1/benchmarks) from the first
// live peer.
func (rt *Router) handleAnyPeer(w http.ResponseWriter, r *http.Request) {
	rt.route(w, r, nil, r.URL.Path, false)
}

// handleHealthz reports router liveness: healthy while at least one peer is
// live.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	live := 0
	for _, p := range rt.peers {
		if p.alive.Load() {
			live++
		}
	}
	if live == 0 {
		writeRouterJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "down", "live_peers": 0})
		return
	}
	writeRouterJSON(w, http.StatusOK, map[string]any{"status": "ok", "live_peers": live})
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeRouterJSON(w, http.StatusOK, rt.Metrics())
}

// ---- health prober ----

// probeLoop polls every peer's /v1/peerz at ProbeInterval: a failed probe
// kills the peer (weight zero, keys to successors), a healthy one revives
// it and ramps its weight back toward full, and a "draining" status sheds
// it exactly like a 429. The first sweep runs immediately so a router
// started against a dead node never routes to it.
func (rt *Router) probeLoop() {
	tick := time.NewTicker(rt.cfg.ProbeInterval)
	defer tick.Stop()
	for {
		rt.probeSweep()
		select {
		case <-rt.stop:
			return
		case <-tick.C:
		}
	}
}

// probeSweep probes each peer once, sequentially — cluster fan-in is small
// and sequential probing keeps the prober to one goroutine.
func (rt *Router) probeSweep() {
	now := time.Now()
	for _, p := range rt.peers {
		snap, err := rt.probeOne(p)
		if err != nil {
			p.errs.Add(1)
			if p.markDead() {
				rt.log.Warn("peer failed probe", "peer", p.URL, "err", err)
			}
			continue
		}
		if p.markAlive(now) {
			rt.log.Info("peer recovered", "peer", p.URL)
		}
		if snap.Status == "draining" {
			if p.markShed(rt.cfg.ProbeInterval*8, now) {
				rt.met.peerSheds.Add(1)
				rt.log.Info("peer draining", "peer", p.URL)
			}
			continue
		}
		p.recoverStep(now)
	}
}

// probeOne fetches one peer's /v1/peerz snapshot under the probe timeout.
func (rt *Router) probeOne(p *Peer) (*server.PeerzSnapshot, error) {
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.URL+"/v1/peerz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("peerz status %d", resp.StatusCode)
	}
	var snap server.PeerzSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

// ---- plumbing ----

// isBinContentType mirrors the node's content-type check for the binary
// codec (parameters after ';' tolerated).
func isBinContentType(ct string) bool {
	for i := 0; i < len(ct); i++ {
		if ct[i] == ';' {
			ct = ct[:i]
			break
		}
	}
	for len(ct) > 0 && (ct[0] == ' ' || ct[0] == '\t') {
		ct = ct[1:]
	}
	for len(ct) > 0 && (ct[len(ct)-1] == ' ' || ct[len(ct)-1] == '\t') {
		ct = ct[:len(ct)-1]
	}
	return ct == server.BinContentType
}

// readProxyBody slurps a request body into buf under the proxy bound; the
// returned slice aliases buf. A non-empty string is the rejection message.
func readProxyBody(buf *bytes.Buffer, r io.Reader) ([]byte, string) {
	if _, err := buf.ReadFrom(io.LimitReader(r, maxProxyBodyBytes+1)); err != nil {
		return nil, "reading request body: " + err.Error()
	}
	if buf.Len() > maxProxyBodyBytes {
		return nil, fmt.Sprintf("request body exceeds %d bytes", maxProxyBodyBytes)
	}
	return buf.Bytes(), ""
}

// drainClose finishes a response body so the pooled connection is reusable.
func drainClose(body io.ReadCloser) {
	//hetsynth:ignore retval best-effort drain; a broken connection is
	// simply not returned to the pool.
	_, _ = io.Copy(io.Discard, io.LimitReader(body, 1<<20))
	//hetsynth:ignore retval close after drain has no recovery path.
	_ = body.Close()
}

func writeRouterJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	//hetsynth:ignore retval a failed write means the client is gone; the
	// response status is already committed.
	_ = json.NewEncoder(w).Encode(v)
}

func writeRouterErr(w http.ResponseWriter, status int, msg string) {
	writeRouterJSON(w, status, map[string]any{"error": msg})
}
