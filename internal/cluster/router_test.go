package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hetsynth/internal/server"
)

// stubBackend is a recording fake node: it answers /v1/peerz like a healthy
// hetsynthd and logs every other request it receives. status/retryAfter
// reprogram its solve answer on the fly.
type stubBackend struct {
	ts *httptest.Server

	mu         sync.Mutex
	hits       []string // method+path of each non-peerz request
	bodies     [][]byte
	headers    []http.Header
	status     int
	retryAfter string
	peerz      server.PeerzSnapshot
}

func newStubBackend(t *testing.T) *stubBackend {
	t.Helper()
	b := &stubBackend{status: http.StatusOK, peerz: server.PeerzSnapshot{Status: "ok", Workers: 1}}
	b.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/peerz" {
			b.mu.Lock()
			snap := b.peerz
			b.mu.Unlock()
			w.Header().Set("Content-Type", "application/json")
			if err := json.NewEncoder(w).Encode(snap); err != nil {
				t.Errorf("peerz encode: %v", err)
			}
			return
		}
		body, _ := io.ReadAll(r.Body)
		b.mu.Lock()
		b.hits = append(b.hits, r.Method+" "+r.URL.RequestURI())
		b.bodies = append(b.bodies, body)
		b.headers = append(b.headers, r.Header.Clone())
		status, retryAfter := b.status, b.retryAfter
		b.mu.Unlock()
		if retryAfter != "" {
			w.Header().Set("Retry-After", retryAfter)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		fmt.Fprintf(w, `{"backend":%q}`, b.ts.URL)
	}))
	t.Cleanup(b.ts.Close)
	return b
}

func (b *stubBackend) hitCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.hits)
}

func (b *stubBackend) setStatus(status int, retryAfter string) {
	b.mu.Lock()
	b.status, b.retryAfter = status, retryAfter
	b.mu.Unlock()
}

// newTestRouter builds a router over the given backends with a probe
// interval fast enough for tests to observe recovery.
func newTestRouter(t *testing.T, cfg Config, urls ...string) *Router {
	t.Helper()
	cfg.Peers = urls
	if cfg.VNodes == 0 {
		cfg.VNodes = 64
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 20 * time.Millisecond
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func solveBody(i int) string {
	return fmt.Sprintf(`{"bench":"elliptic","seed":%d,"types":3,"slack":4}`, i)
}

func postSolve(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestRouterAffinityStability is the core routing property over live
// backends: every repeat of a body lands on the backend its first send chose,
// the affinity rate is 1.0 on a healthy cluster, and the forwarded request
// carries the forwarded marker header.
func TestRouterAffinityStability(t *testing.T) {
	backs := []*stubBackend{newStubBackend(t), newStubBackend(t), newStubBackend(t)}
	rt := newTestRouter(t, Config{}, backs[0].ts.URL, backs[1].ts.URL, backs[2].ts.URL)
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	const distinct, repeats = 40, 3
	owner := map[int]string{}
	for rep := 0; rep < repeats; rep++ {
		for i := 0; i < distinct; i++ {
			resp := postSolve(t, front.URL, solveBody(i))
			var got struct {
				Backend string `json:"backend"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
				t.Fatal(err)
			}
			if err := resp.Body.Close(); err != nil {
				t.Fatal(err)
			}
			if prev, ok := owner[i]; ok && prev != got.Backend {
				t.Fatalf("body %d moved from %s to %s on a healthy cluster", i, prev, got.Backend)
			}
			owner[i] = got.Backend
		}
	}

	spread := map[string]int{}
	for _, b := range owner {
		spread[b]++
	}
	if len(spread) != 3 {
		t.Errorf("40 distinct instances only reached %d of 3 backends: %v", len(spread), spread)
	}

	m := rt.Metrics()
	if m.Forwarded != distinct*repeats {
		t.Errorf("forwarded = %d, want %d", m.Forwarded, distinct*repeats)
	}
	if m.AffinityRate != 1.0 {
		t.Errorf("affinity_rate = %v on a healthy cluster, want 1.0", m.AffinityRate)
	}
	if m.KeyFallbacks != 0 {
		t.Errorf("key_fallbacks = %d for well-formed bodies", m.KeyFallbacks)
	}

	for _, b := range backs {
		b.mu.Lock()
		for _, h := range b.headers {
			if h.Get(server.ForwardedHeader) == "" {
				t.Errorf("backend %s saw a request without %s", b.ts.URL, server.ForwardedHeader)
			}
		}
		b.mu.Unlock()
	}
}

// TestRouterCodecEquivalence sends the same requests through both codecs and
// checks the router routes the JSON body and its binary twin to the same
// backend — the property that lets mixed-codec clients share one node's
// cache.
func TestRouterCodecEquivalence(t *testing.T) {
	backs := []*stubBackend{newStubBackend(t), newStubBackend(t), newStubBackend(t)}
	rt := newTestRouter(t, Config{}, backs[0].ts.URL, backs[1].ts.URL, backs[2].ts.URL)
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	for i := 0; i < 20; i++ {
		body := solveBody(i)
		respJSON := postSolve(t, front.URL, body)
		var a, b struct {
			Backend string `json:"backend"`
		}
		if err := json.NewDecoder(respJSON.Body).Decode(&a); err != nil {
			t.Fatal(err)
		}
		if err := respJSON.Body.Close(); err != nil {
			t.Fatal(err)
		}

		req := parseSolveRequest(t, body)
		bin, err := server.EncodeBinSolveRequest(req)
		if err != nil {
			t.Fatal(err)
		}
		respBin, err := http.Post(front.URL+"/v1/solve", server.BinContentType, strings.NewReader(string(bin)))
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(respBin.Body).Decode(&b); err != nil {
			t.Fatal(err)
		}
		if err := respBin.Body.Close(); err != nil {
			t.Fatal(err)
		}
		if a.Backend != b.Backend {
			t.Errorf("body %d: JSON routed to %s, binary twin to %s", i, a.Backend, b.Backend)
		}
	}
	if m := rt.Metrics(); m.KeyFallbacks != 0 {
		t.Errorf("key_fallbacks = %d, want 0", m.KeyFallbacks)
	}
}

// TestRouterFailover kills one backend outright and checks its keyspace
// fails over: zero client-visible errors, failovers counted, the dead peer
// marked down — and its keys come home again once it recovers.
func TestRouterFailover(t *testing.T) {
	backs := []*stubBackend{newStubBackend(t), newStubBackend(t), newStubBackend(t)}
	// Long probe interval: the *request path* must discover the death.
	rt := newTestRouter(t, Config{ProbeInterval: time.Hour}, backs[0].ts.URL, backs[1].ts.URL, backs[2].ts.URL)
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	owner := map[int]string{}
	for i := 0; i < 30; i++ {
		resp := postSolve(t, front.URL, solveBody(i))
		var got struct {
			Backend string `json:"backend"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
			t.Fatal(err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
		owner[i] = got.Backend
	}

	dead := backs[1]
	dead.ts.Close()

	for i := 0; i < 30; i++ {
		resp := postSolve(t, front.URL, solveBody(i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("body %d: status %d during failover, want 200", i, resp.StatusCode)
		}
		var got struct {
			Backend string `json:"backend"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
			t.Fatal(err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
		if got.Backend == dead.ts.URL {
			t.Fatalf("body %d reached the dead backend", i)
		}
		if owner[i] != dead.ts.URL && got.Backend != owner[i] {
			t.Errorf("body %d moved from %s to %s though its owner is alive", i, owner[i], got.Backend)
		}
	}

	m := rt.Metrics()
	if m.Failovers < 1 {
		t.Errorf("failovers = %d, want >= 1", m.Failovers)
	}
	if m.Unrouted != 0 {
		t.Errorf("unrouted = %d, want 0", m.Unrouted)
	}
	var deadStatus *PeerStatus
	for i := range m.Peers {
		if m.Peers[i].URL == dead.ts.URL {
			deadStatus = &m.Peers[i]
		}
	}
	if deadStatus == nil || deadStatus.Alive {
		t.Errorf("dead peer still marked alive: %+v", deadStatus)
	}
}

// TestRouterShedAndRecover drives the 429 backpressure loop end to end: a
// shedding backend loses weight (partially, never fully), the 429s are
// relayed to clients verbatim, and once the backend heals the prober ramps
// its weight back to full.
func TestRouterShedAndRecover(t *testing.T) {
	backs := []*stubBackend{newStubBackend(t), newStubBackend(t)}
	rt := newTestRouter(t, Config{}, backs[0].ts.URL, backs[1].ts.URL)
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	shed := backs[0]
	shed.setStatus(http.StatusTooManyRequests, "1")

	saw429 := false
	for i := 0; i < 60; i++ {
		resp := postSolve(t, front.URL, solveBody(i))
		if resp.StatusCode == http.StatusTooManyRequests {
			saw429 = true
			if resp.Header.Get("Retry-After") == "" {
				t.Error("429 relayed without its Retry-After header")
			}
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if !saw429 {
		t.Fatal("no request reached the shedding backend; cannot exercise the shed path")
	}

	m := rt.Metrics()
	if m.PeerSheds < 1 {
		t.Fatalf("peer_sheds = %d, want >= 1", m.PeerSheds)
	}
	p := rt.Peers()[0]
	if w := p.effectiveWeight(); w != WeightFloor {
		t.Fatalf("shed peer weight = %d after sustained 429s, want floor %d", w, WeightFloor)
	}
	if !p.alive.Load() {
		t.Fatal("shedding must not kill the peer outright")
	}

	// Heal the backend; the prober (20ms interval) should ramp the weight
	// back to full once the shed pause (1s Retry-After) expires.
	shed.setStatus(http.StatusOK, "")
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if p.effectiveWeight() == WeightFull {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if w := p.effectiveWeight(); w != WeightFull {
		t.Fatalf("weight = %d after recovery window, want %d", w, WeightFull)
	}
}

// TestRouterSessionAffinity checks every verb of a session's lifecycle rides
// the same key, so the whole PUT/PATCH/GET/DELETE sequence stays on one
// node.
func TestRouterSessionAffinity(t *testing.T) {
	backs := []*stubBackend{newStubBackend(t), newStubBackend(t), newStubBackend(t)}
	rt := newTestRouter(t, Config{}, backs[0].ts.URL, backs[1].ts.URL, backs[2].ts.URL)
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	client := front.Client()
	for sess := 0; sess < 12; sess++ {
		id := fmt.Sprintf("sess-%d", sess)
		var ownerURL string
		for _, step := range []struct{ method, path, body string }{
			{http.MethodPut, "/v1/instances/" + id, solveBody(sess)},
			{http.MethodPatch, "/v1/instances/" + id, `{"deadline":50}`},
			{http.MethodGet, "/v1/instances/" + id, ""},
			{http.MethodDelete, "/v1/instances/" + id, ""},
		} {
			var rd io.Reader
			if step.body != "" {
				rd = strings.NewReader(step.body)
			}
			req, err := http.NewRequest(step.method, front.URL+step.path, rd)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := client.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			var got struct {
				Backend string `json:"backend"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
				t.Fatal(err)
			}
			if err := resp.Body.Close(); err != nil {
				t.Fatal(err)
			}
			if ownerURL == "" {
				ownerURL = got.Backend
			} else if got.Backend != ownerURL {
				t.Fatalf("session %s: %s %s went to %s, lifecycle started on %s",
					id, step.method, step.path, got.Backend, ownerURL)
			}
		}
	}
}

// TestRouterAllPeersDown checks the terminal case: every peer dead yields a
// 503 with the unrouted counter bumped, and /healthz reports down.
func TestRouterAllPeersDown(t *testing.T) {
	back := newStubBackend(t)
	url := back.ts.URL
	back.ts.Close()
	rt := newTestRouter(t, Config{ProbeInterval: time.Hour}, url)
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	resp := postSolve(t, front.URL, solveBody(1))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d with all peers dead, want 503", resp.StatusCode)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if m := rt.Metrics(); m.Unrouted < 1 {
		t.Errorf("unrouted = %d, want >= 1", m.Unrouted)
	}

	hresp, err := http.Get(front.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz = %d with all peers dead, want 503", hresp.StatusCode)
	}
}

// TestRouterDrainingPeerSheds checks the heartbeat side of backpressure: a
// peer reporting "draining" on /v1/peerz loses weight without a single 429.
func TestRouterDrainingPeerSheds(t *testing.T) {
	back := newStubBackend(t)
	back.mu.Lock()
	back.peerz.Status = "draining"
	back.mu.Unlock()
	rt := newTestRouter(t, Config{}, back.ts.URL)

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if rt.Peers()[0].effectiveWeight() < WeightFull {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if w := rt.Peers()[0].effectiveWeight(); w >= WeightFull {
		t.Fatalf("draining peer kept weight %d, want < %d", w, WeightFull)
	}
	if m := rt.Metrics(); m.PeerSheds < 1 {
		t.Errorf("peer_sheds = %d, want >= 1", m.PeerSheds)
	}
}

// TestRouterEndToEndCluster wires the router to two real hetsynthd servers
// and checks the full story: a repeated solve hits one node's cache (source
// "cache" on the repeat), the response matches a direct hit, and the node's
// forwarded_in counter sees the router's marker.
func TestRouterEndToEndCluster(t *testing.T) {
	var nodes []*httptest.Server
	for i := 0; i < 2; i++ {
		s := server.New(server.Config{Workers: 1})
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(func() { ts.Close(); s.Close() })
		nodes = append(nodes, ts)
	}
	rt := newTestRouter(t, Config{}, nodes[0].URL, nodes[1].URL)
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	body := `{"bench":"elliptic","seed":7,"types":3,"slack":4,"schedule":true}`
	read := func(resp *http.Response) map[string]any {
		t.Helper()
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			raw, _ := io.ReadAll(resp.Body)
			t.Fatalf("status %d: %s", resp.StatusCode, raw)
		}
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return m
	}

	first := read(postSolve(t, front.URL, body))
	second := read(postSolve(t, front.URL, body))
	if src := second["source"]; src != "cache" && src != "raw" {
		t.Errorf("repeat through router had source %v, want a cache hit", src)
	}
	if first["cost"] != second["cost"] {
		t.Errorf("cost changed between repeats: %v vs %v", first["cost"], second["cost"])
	}

	if m := rt.Metrics(); m.AffinityRate != 1.0 {
		t.Errorf("affinity_rate = %v over a healthy 2-node cluster", m.AffinityRate)
	}

	// Exactly one node must have seen the traffic, and it must have counted
	// the router's forwarded marker.
	touched := 0
	for i, ts := range nodes {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		var snap map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatal(err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
		fwd, _ := snap["forwarded_in"].(float64)
		if fwd > 0 {
			touched++
			if fwd != 2 {
				t.Errorf("node %d forwarded_in = %v, want 2", i, fwd)
			}
		}
	}
	if touched != 1 {
		t.Errorf("traffic touched %d nodes, want exactly 1 (affinity)", touched)
	}
}
