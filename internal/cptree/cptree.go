// Package cptree implements Algorithm DFG_Expand of the paper: extracting a
// critical-path tree from a data-flow graph.
//
// A critical-path tree of a DFG G is a tree (out-forest) that contains every
// critical (root-to-leaf) path of the DAG portion of G exactly once. It is
// obtained by walking the nodes children-before-parents and, for every node
// with p > 1 parents, duplicating the (already tree-shaped) subtree rooted
// at that node p−1 times so that each parent keeps a private copy.
//
// Tree_Assign solves the heterogeneous assignment problem optimally on such
// a tree; because the tree carries all critical paths, any assignment that
// is feasible on the tree is feasible on the DFG once each duplicated node
// is collapsed to a single choice (DFG_Assign_Once/Repeat do the
// collapsing).
//
// The second flavor the paper describes — duplicating subtrees connected to
// common nodes with multiple child nodes, top-down — is obtained by
// expanding the transpose of G; ExpandBoth builds both trees and returns the
// smaller, which is the selection rule of DFG_Assign_Once and
// DFG_Assign_Repeat.
package cptree

import (
	"errors"
	"fmt"
	"strconv"

	"hetsynth/internal/dfg"
)

// MaxTreeNodes bounds the size of an expanded tree. Expansion can be
// exponential in pathological DFGs (it enumerates critical paths); the
// benchmarks of the paper stay tiny, but the guard turns a runaway expansion
// into an error instead of an OOM.
const MaxTreeNodes = 1 << 20

// Tree is a critical-path tree together with the copy bookkeeping needed to
// map tree assignments back to the DFG.
type Tree struct {
	// Graph is the expanded out-forest. Edge direction follows the source
	// graph passed to Expand; when Reversed is set, the source was the
	// transpose of the caller's DFG, so an edge u->v here means v precedes
	// u in the original. Longest-path lengths are direction-independent,
	// so Tree_Assign runs on Graph unchanged either way.
	Graph *dfg.Graph
	// Orig maps each tree node to the DFG node it is a copy of.
	Orig []dfg.NodeID
	// Copies maps each DFG node to its tree copies (at least one each).
	Copies [][]dfg.NodeID
	// Reversed records whether Graph was expanded from the transpose.
	Reversed bool
}

// Duplicated returns the DFG nodes having more than one copy in the tree,
// sorted by copy count descending (ties: smaller node ID first). This is the
// processing order of DFG_Assign_Repeat, which fixes the most-copied node
// first because it influences the most paths.
func (t *Tree) Duplicated() []dfg.NodeID {
	var out []dfg.NodeID
	for v, copies := range t.Copies {
		if len(copies) > 1 {
			out = append(out, dfg.NodeID(v))
		}
	}
	// Insertion sort keeps this dependency-free; the list is always short.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := out[j-1], out[j]
			if len(t.Copies[a]) > len(t.Copies[b]) ||
				(len(t.Copies[a]) == len(t.Copies[b]) && a < b) {
				break
			}
			out[j-1], out[j] = b, a
		}
	}
	return out
}

// workNode is one node of the mutable expansion workspace.
type workNode struct {
	orig     dfg.NodeID
	parent   int   // index of parent work node, or -1
	children []int // indices of child work nodes
}

// Expand builds the critical-path tree of the DAG portion of g, duplicating
// multi-parent nodes bottom-up. The result preserves g's edge orientation.
func Expand(g *dfg.Graph) (*Tree, error) {
	rev, err := g.ReverseTopoOrder()
	if err != nil {
		return nil, fmt.Errorf("cptree: %w", err)
	}
	n := g.N()
	if n == 0 {
		return nil, errors.New("cptree: empty graph")
	}

	// Seed the workspace with the DAG portion itself: work node i mirrors
	// DFG node i. Multi-parent nodes temporarily record parent -1 and are
	// fixed up as they are processed. Seeding walks the raw edge list
	// instead of calling g.Succ per node, which would allocate a successor
	// slice per call; parallel edges are deduplicated with a linear scan of
	// the (short) child list they would join.
	work := make([]workNode, n, 2*n)
	parents := make([][]int, n) // current parent work-node indices, per original position
	for i := 0; i < n; i++ {
		work[i] = workNode{orig: dfg.NodeID(i), parent: -1}
	}
	m := g.M()
	for ei := 0; ei < m; ei++ {
		e := g.Edge(ei)
		if e.Delays != 0 {
			continue
		}
		dup := false
		for _, c := range work[e.From].children {
			if c == int(e.To) {
				dup = true // parallel edges carry no extra precedence
				break
			}
		}
		if dup {
			continue
		}
		work[e.From].children = append(work[e.From].children, int(e.To))
		parents[e.To] = append(parents[e.To], int(e.From))
	}

	// cloneSubtree deep-copies the tree rooted at work node w and returns
	// the new root index. Every node below w already has a single parent
	// when this is called (children are processed before parents).
	var cloneSubtree func(w int) (int, error)
	cloneSubtree = func(w int) (int, error) {
		if len(work) >= MaxTreeNodes {
			return -1, fmt.Errorf("cptree: expansion exceeds %d nodes; the DFG has too many critical paths", MaxTreeNodes)
		}
		idx := len(work)
		work = append(work, workNode{orig: work[w].orig, parent: -1})
		for _, c := range work[w].children {
			cc, err := cloneSubtree(c)
			if err != nil {
				return -1, err
			}
			work[cc].parent = idx
			work[idx].children = append(work[idx].children, cc)
		}
		return idx, nil
	}

	for _, v := range rev {
		ps := parents[v]
		if len(ps) == 0 {
			continue
		}
		// The first parent keeps the original; every further parent gets a
		// fresh copy of the (now tree-shaped) subtree rooted at v.
		work[v].parent = ps[0]
		for _, p := range ps[1:] {
			clone, err := cloneSubtree(int(v))
			if err != nil {
				return nil, err
			}
			work[clone].parent = p
			// Rewire p's child entry from v to the clone.
			for i, c := range work[p].children {
				if c == int(v) {
					work[p].children[i] = clone
					break
				}
			}
		}
		work[v].children = work[v].children[:len(work[v].children):len(work[v].children)]
	}

	// Materialize the workspace as a dfg.Graph. Tree nodes are emitted in
	// workspace order, which keeps the original nodes at their original IDs
	// and appends clones after them — convenient and deterministic.
	tree := dfg.New()
	tree.Grow(len(work), len(work))
	t := &Tree{Graph: tree, Copies: make([][]dfg.NodeID, n), Orig: make([]dfg.NodeID, 0, len(work))}
	nameCount := make([]int, n)
	var nameBuf []byte
	for _, w := range work {
		nameCount[w.orig]++
		name := g.Node(w.orig).Name
		if nameCount[w.orig] > 1 {
			nameBuf = append(nameBuf[:0], name...)
			nameBuf = append(nameBuf, '#')
			nameBuf = strconv.AppendInt(nameBuf, int64(nameCount[w.orig]), 10)
			name = string(nameBuf)
		}
		id := tree.MustAddNode(name, g.Node(w.orig).Op)
		t.Orig = append(t.Orig, w.orig)
		t.Copies[w.orig] = append(t.Copies[w.orig], id)
	}
	for i, w := range work {
		if w.parent >= 0 {
			tree.MustAddEdge(dfg.NodeID(w.parent), dfg.NodeID(i), 0)
		}
	}
	if !tree.IsOutForest() {
		// Unreachable by construction; guards against future edits.
		return nil, errors.New("cptree: internal error: expansion is not an out-forest")
	}
	return t, nil
}

// ExpandBoth expands both g and its transpose and returns the tree with
// fewer nodes (ties favor the forward expansion), implementing the selection
// step of DFG_Assign_Once: the smaller tree duplicates fewer nodes, so
// collapsing duplicated assignments loses less optimality.
//
// The two orientations are independent read-only passes over g, so they run
// concurrently: the transpose expansion on its own goroutine, the forward
// one on the caller's.
func ExpandBoth(g *dfg.Graph) (*Tree, error) {
	var bwd *Tree
	var errB error
	done := make(chan struct{})
	go func() {
		defer close(done)
		bwd, errB = Expand(g.Transpose())
	}()
	fwd, errF := Expand(g)
	<-done
	if errF != nil && errB != nil {
		return nil, errF
	}
	if errB != nil {
		return fwd, nil
	}
	if errF != nil {
		bwd.Reversed = true
		return bwd, nil
	}
	if bwd.Graph.N() < fwd.Graph.N() {
		bwd.Reversed = true
		return bwd, nil
	}
	return fwd, nil
}
