package cptree

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"hetsynth/internal/dfg"
)

// paperDFG is the Figure 9 example: roots A, B; common nodes C, D; leaves
// E, F; critical paths {A,B} x C x D x {E,F}.
func paperDFG(t testing.TB) *dfg.Graph {
	t.Helper()
	g := dfg.New()
	a := g.MustAddNode("A", "")
	b := g.MustAddNode("B", "")
	c := g.MustAddNode("C", "")
	d := g.MustAddNode("D", "")
	e := g.MustAddNode("E", "")
	f := g.MustAddNode("F", "")
	g.MustAddEdge(a, c, 0)
	g.MustAddEdge(b, c, 0)
	g.MustAddEdge(c, d, 0)
	g.MustAddEdge(d, e, 0)
	g.MustAddEdge(d, f, 0)
	return g
}

// pathSet collects all root-to-leaf name sequences of the DAG portion. Tree
// copies are canonicalized by stripping the "#n" suffix.
func pathSet(g *dfg.Graph) map[string]int {
	out := make(map[string]int)
	var walk func(v dfg.NodeID, prefix []string)
	walk = func(v dfg.NodeID, prefix []string) {
		name := g.Node(v).Name
		if i := strings.IndexByte(name, '#'); i >= 0 {
			name = name[:i]
		}
		prefix = append(prefix, name)
		succ := g.Succ(v)
		if len(succ) == 0 {
			out[strings.Join(prefix, "-")]++
			return
		}
		for _, c := range succ {
			walk(c, prefix)
		}
	}
	for _, r := range g.Roots() {
		walk(r, nil)
	}
	return out
}

func reversedPathSet(paths map[string]int) map[string]int {
	out := make(map[string]int, len(paths))
	for p, c := range paths {
		parts := strings.Split(p, "-")
		for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
			parts[i], parts[j] = parts[j], parts[i]
		}
		out[strings.Join(parts, "-")] += c
	}
	return out
}

func TestExpandPaperExample(t *testing.T) {
	g := paperDFG(t)
	tree, err := Expand(g)
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Graph.IsOutForest() {
		t.Fatal("expansion is not an out-forest")
	}
	// Figure 11(a): duplicating C's subtree gives A-C-D-E/F and B-C#2-D#2-
	// E#2/F#2 — 10 nodes.
	if tree.Graph.N() != 10 {
		t.Fatalf("forward tree has %d nodes, want 10", tree.Graph.N())
	}
	want := map[string]int{"A-C-D-E": 1, "A-C-D-F": 1, "B-C-D-E": 1, "B-C-D-F": 1}
	got := pathSet(tree.Graph)
	if len(got) != len(want) {
		t.Fatalf("tree paths = %v, want %v", got, want)
	}
	for p, c := range want {
		if got[p] != c {
			t.Fatalf("tree paths = %v, want %v", got, want)
		}
	}
	// C and D are duplicated, sorted by copy count.
	dups := tree.Duplicated()
	names := make([]string, len(dups))
	for i, v := range dups {
		names[i] = g.Node(v).Name
	}
	sort.Strings(names)
	if strings.Join(names, ",") != "C,D,E,F" {
		t.Fatalf("duplicated = %v", names)
	}
}

func TestExpandTransposeIsSmallerOnPaperExample(t *testing.T) {
	// Figure 11(b): expanding the transpose duplicates D's fan-in side:
	// E-D-C-A/B and F-D#2-C#2-A#2/B#2 — also 10 nodes here (the figure's
	// two trees have the same size for this symmetric example), so
	// ExpandBoth must keep the forward orientation on ties.
	g := paperDFG(t)
	both, err := ExpandBoth(g)
	if err != nil {
		t.Fatal(err)
	}
	if both.Reversed {
		t.Fatal("tie should keep forward expansion")
	}
}

func TestExpandBothPrefersSmaller(t *testing.T) {
	// Wide fan-in: x1..x4 -> y -> z. Forward expansion duplicates {y,z}
	// per parent (4+8=12 nodes); transpose is already a tree (6 nodes).
	g := dfg.New()
	y := g.MustAddNode("y", "")
	z := g.MustAddNode("z", "")
	g.MustAddEdge(y, z, 0)
	for _, n := range []string{"x1", "x2", "x3", "x4"} {
		x := g.MustAddNode(n, "")
		g.MustAddEdge(x, y, 0)
	}
	fwd, err := Expand(g)
	if err != nil {
		t.Fatal(err)
	}
	if fwd.Graph.N() != 12 {
		t.Fatalf("forward tree has %d nodes, want 12", fwd.Graph.N())
	}
	both, err := ExpandBoth(g)
	if err != nil {
		t.Fatal(err)
	}
	if !both.Reversed || both.Graph.N() != 6 {
		t.Fatalf("ExpandBoth picked %d-node tree (reversed=%v), want 6-node transpose", both.Graph.N(), both.Reversed)
	}
}

func TestExpandIdentityOnTrees(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := dfg.RandomTree(rng, 1+rng.Intn(25))
		tree, err := Expand(g)
		if err != nil {
			return false
		}
		if tree.Graph.N() != g.N() || len(tree.Duplicated()) != 0 {
			return false
		}
		for v := 0; v < g.N(); v++ {
			if len(tree.Copies[v]) != 1 || tree.Orig[tree.Copies[v][0]] != dfg.NodeID(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestExpandPreservesCriticalPathMultiset(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := dfg.RandomDAG(rng, 2+rng.Intn(12), 0.3)
		want := pathSet(g)
		tree, err := Expand(g)
		if err != nil {
			return false
		}
		got := pathSet(tree.Graph)
		if len(got) != len(want) {
			return false
		}
		for p, c := range want {
			if got[p] != c {
				return false
			}
		}
		return tree.Graph.IsOutForest()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestExpandBothPreservesPathsModuloReversal(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := dfg.RandomDAG(rng, 2+rng.Intn(12), 0.3)
		want := pathSet(g)
		tree, err := ExpandBoth(g)
		if err != nil {
			return false
		}
		got := pathSet(tree.Graph)
		if tree.Reversed {
			got = reversedPathSet(got)
		}
		if len(got) != len(want) {
			return false
		}
		for p, c := range want {
			if got[p] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestExpandCopiesBookkeeping(t *testing.T) {
	g := paperDFG(t)
	tree, err := Expand(g)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for v, copies := range tree.Copies {
		if len(copies) == 0 {
			t.Fatalf("node %d has no copies", v)
		}
		total += len(copies)
		for _, w := range copies {
			if tree.Orig[w] != dfg.NodeID(v) {
				t.Fatalf("copy %d of node %d maps back to %d", w, v, tree.Orig[w])
			}
			if base := strings.SplitN(tree.Graph.Node(w).Name, "#", 2)[0]; base != g.Node(dfg.NodeID(v)).Name {
				t.Fatalf("copy name %q does not match original %q", tree.Graph.Node(w).Name, g.Node(dfg.NodeID(v)).Name)
			}
		}
	}
	if total != tree.Graph.N() {
		t.Fatalf("copies cover %d nodes, tree has %d", total, tree.Graph.N())
	}
}

func TestExpandRejectsEmptyAndCyclic(t *testing.T) {
	if _, err := Expand(dfg.New()); err == nil {
		t.Error("empty graph accepted")
	}
	g := dfg.New()
	a := g.MustAddNode("a", "")
	b := g.MustAddNode("b", "")
	g.MustAddEdge(a, b, 0)
	g.MustAddEdge(b, a, 0)
	if _, err := Expand(g); err == nil {
		t.Error("cyclic graph accepted")
	}
	if _, err := ExpandBoth(g); err == nil {
		t.Error("cyclic graph accepted by ExpandBoth")
	}
}

func TestExpandSizeGuard(t *testing.T) {
	// A chain of diamonds has 2^k critical paths; 25 diamonds overflow the
	// MaxTreeNodes guard and must error out instead of exhausting memory.
	g := dfg.New()
	prev := g.MustAddNode("s", "")
	for i := 0; i < 25; i++ {
		l := g.MustAddNode(name2("l", i), "")
		r := g.MustAddNode(name2("r", i), "")
		j := g.MustAddNode(name2("j", i), "")
		g.MustAddEdge(prev, l, 0)
		g.MustAddEdge(prev, r, 0)
		g.MustAddEdge(l, j, 0)
		g.MustAddEdge(r, j, 0)
		prev = j
	}
	if _, err := Expand(g); err == nil {
		t.Fatal("exponential expansion not guarded")
	}
	if _, err := ExpandBoth(g); err == nil {
		t.Fatal("ExpandBoth not guarded")
	}
}

func TestExpandIgnoresParallelAndDelayEdges(t *testing.T) {
	g := dfg.New()
	a := g.MustAddNode("a", "")
	b := g.MustAddNode("b", "")
	c := g.MustAddNode("c", "")
	g.MustAddEdge(a, b, 0)
	g.MustAddEdge(a, b, 0) // parallel: no extra path
	g.MustAddEdge(b, c, 0)
	g.MustAddEdge(c, a, 1) // loop-carried: not part of the DAG portion
	tree, err := Expand(g)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Graph.N() != 3 {
		t.Fatalf("tree has %d nodes, want 3", tree.Graph.N())
	}
}

func name2(prefix string, i int) string {
	return prefix + string(rune('a'+i/26)) + string(rune('a'+i%26))
}
