package dfg

import (
	"bytes"
	"testing"
)

// FuzzReadJSON checks the graph decoder never panics and that everything
// it accepts re-encodes to an equivalent graph.
func FuzzReadJSON(f *testing.F) {
	seeds := []string{
		`{"nodes":[{"name":"a"},{"name":"b"}],"edges":[{"from":"a","to":"b"}]}`,
		`{"nodes":[{"name":"a","op":"mul"}],"edges":[{"from":"a","to":"a","delays":2}]}`,
		`{"nodes":[],"edges":[]}`,
		`{"nodes":[{"name":""}]}`,
		`{"edges":[{"from":"x","to":"y"}]}`,
		`[]`,
		`{`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := g.WriteJSON(&buf); err != nil {
			t.Fatalf("accepted graph fails to encode: %v", err)
		}
		back, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("round-trip decode failed: %v", err)
		}
		if g.String() != back.String() {
			t.Fatalf("round-trip changed graph:\n%s\nvs\n%s", g.String(), back.String())
		}
	})
}
