// Package dfg implements the data-flow-graph model used throughout the
// library.
//
// A DFG is a node-weighted directed graph G = (V, E, d). Nodes stand for
// operations of a DSP application; an edge (u, v) with delay count d(u, v)
// expresses a precedence between u and v: zero delays mean an
// intra-iteration dependence, one or more delays mean the dependence spans
// that many loop iterations. The assignment and scheduling phases operate on
// the DAG portion of a DFG, which is the subgraph induced by the zero-delay
// edges; the delayed edges matter only to the retiming extension.
//
// Graphs are mutable while being built and are validated on demand. All
// algorithms in sibling packages treat a *Graph as immutable once built.
package dfg

import (
	"errors"
	"fmt"
)

// NodeID identifies a node within one Graph. IDs are dense: a graph with n
// nodes uses IDs 0..n-1 in insertion order, which lets per-node data live in
// plain slices.
type NodeID int

// None is the sentinel returned when a node lookup fails.
const None NodeID = -1

// Node is one operation of the application.
type Node struct {
	ID   NodeID
	Name string // unique human-readable label, e.g. "A" or "mul3"
	Op   string // operation class, e.g. "mul", "add"; may be empty
}

// Edge is a precedence between two operations. Delays is the number of
// inter-iteration delays on the edge; zero means same-iteration precedence.
type Edge struct {
	From   NodeID
	To     NodeID
	Delays int
}

// Graph is a mutable data-flow graph.
type Graph struct {
	nodes  []Node
	edges  []Edge
	succ   [][]int // node -> indices into edges, outgoing
	pred   [][]int // node -> indices into edges, incoming
	byName map[string]NodeID
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{byName: make(map[string]NodeID)}
}

// Grow preallocates capacity for at least nodes more nodes and edges more
// edges, so bulk builders (expansion, transpose, benchmark construction) pay
// one allocation per backing array instead of a geometric growth series.
// Growing is advisory: exceeding the hint stays correct, merely slower.
func (g *Graph) Grow(nodes, edges int) {
	if nodes > 0 {
		g.nodes = append(make([]Node, 0, len(g.nodes)+nodes), g.nodes...)
		g.succ = append(make([][]int, 0, len(g.succ)+nodes), g.succ...)
		g.pred = append(make([][]int, 0, len(g.pred)+nodes), g.pred...)
		if len(g.byName) == 0 {
			g.byName = make(map[string]NodeID, nodes)
		}
	}
	if edges > 0 {
		g.edges = append(make([]Edge, 0, len(g.edges)+edges), g.edges...)
	}
}

// N reports the number of nodes.
func (g *Graph) N() int { return len(g.nodes) }

// M reports the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// AddNode appends a node with the given name and operation class and returns
// its ID. Duplicate names are rejected so that serialized graphs round-trip
// unambiguously.
func (g *Graph) AddNode(name, op string) (NodeID, error) {
	if name == "" {
		return None, errors.New("dfg: empty node name")
	}
	if _, dup := g.byName[name]; dup {
		return None, fmt.Errorf("dfg: duplicate node name %q", name)
	}
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, Node{ID: id, Name: name, Op: op})
	g.succ = append(g.succ, nil)
	g.pred = append(g.pred, nil)
	g.byName[name] = id
	return id, nil
}

// MustAddNode is AddNode for hand-built graphs; it panics on error.
func (g *Graph) MustAddNode(name, op string) NodeID {
	id, err := g.AddNode(name, op)
	if err != nil {
		panic(err)
	}
	return id
}

// AddEdge appends an edge from u to v carrying the given number of delays.
// Self-loops are legal only when they carry at least one delay (a zero-delay
// self-loop could never be scheduled).
func (g *Graph) AddEdge(u, v NodeID, delays int) error {
	if !g.valid(u) || !g.valid(v) {
		return fmt.Errorf("dfg: edge (%d,%d) references unknown node", u, v)
	}
	if delays < 0 {
		return fmt.Errorf("dfg: edge (%d,%d) has negative delay %d", u, v, delays)
	}
	if u == v && delays == 0 {
		return fmt.Errorf("dfg: zero-delay self-loop on node %d", u)
	}
	idx := len(g.edges)
	g.edges = append(g.edges, Edge{From: u, To: v, Delays: delays})
	g.succ[u] = append(g.succ[u], idx)
	g.pred[v] = append(g.pred[v], idx)
	return nil
}

// MustAddEdge is AddEdge for hand-built graphs; it panics on error.
func (g *Graph) MustAddEdge(u, v NodeID, delays int) {
	if err := g.AddEdge(u, v, delays); err != nil {
		panic(err)
	}
}

func (g *Graph) valid(v NodeID) bool { return v >= 0 && int(v) < len(g.nodes) }

// Node returns the node with the given ID. It panics on an invalid ID, which
// always indicates a programming error since IDs only come from this graph.
func (g *Graph) Node(v NodeID) Node {
	if !g.valid(v) {
		panic(fmt.Sprintf("dfg: invalid node id %d (graph has %d nodes)", v, len(g.nodes)))
	}
	return g.nodes[v]
}

// Lookup resolves a node name to its ID; ok is false if the name is unknown.
func (g *Graph) Lookup(name string) (id NodeID, ok bool) {
	id, ok = g.byName[name]
	if !ok {
		id = None
	}
	return id, ok
}

// Nodes returns a copy of the node list in ID order.
func (g *Graph) Nodes() []Node {
	out := make([]Node, len(g.nodes))
	copy(out, g.nodes)
	return out
}

// Edges returns a copy of the edge list in insertion order.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// Edge returns the i-th edge in insertion order.
func (g *Graph) Edge(i int) Edge { return g.edges[i] }

// SetDelays replaces the delay count of edge i. It is used by the retiming
// extension, which rebalances delays without touching the topology.
func (g *Graph) SetDelays(i, delays int) error {
	if i < 0 || i >= len(g.edges) {
		return fmt.Errorf("dfg: edge index %d out of range", i)
	}
	if delays < 0 {
		return fmt.Errorf("dfg: negative delay %d", delays)
	}
	if g.edges[i].From == g.edges[i].To && delays == 0 {
		return fmt.Errorf("dfg: retiming would create zero-delay self-loop on %d", g.edges[i].From)
	}
	g.edges[i].Delays = delays
	return nil
}

// Succ returns the successor node IDs of v over zero-delay edges only,
// i.e. the children of v in the DAG portion. Parallel zero-delay edges yield
// one entry each.
func (g *Graph) Succ(v NodeID) []NodeID {
	var out []NodeID
	for _, ei := range g.succ[v] {
		if g.edges[ei].Delays == 0 {
			out = append(out, g.edges[ei].To)
		}
	}
	return out
}

// Pred returns the predecessor node IDs of v over zero-delay edges only.
func (g *Graph) Pred(v NodeID) []NodeID {
	var out []NodeID
	for _, ei := range g.pred[v] {
		if g.edges[ei].Delays == 0 {
			out = append(out, g.edges[ei].From)
		}
	}
	return out
}

// SuccAll returns all successors of v including delayed edges.
func (g *Graph) SuccAll(v NodeID) []NodeID {
	out := make([]NodeID, 0, len(g.succ[v]))
	for _, ei := range g.succ[v] {
		out = append(out, g.edges[ei].To)
	}
	return out
}

// PredAll returns all predecessors of v including delayed edges.
func (g *Graph) PredAll(v NodeID) []NodeID {
	out := make([]NodeID, 0, len(g.pred[v]))
	for _, ei := range g.pred[v] {
		out = append(out, g.edges[ei].From)
	}
	return out
}

// OutDegree is the number of zero-delay out-edges of v.
func (g *Graph) OutDegree(v NodeID) int {
	n := 0
	for _, ei := range g.succ[v] {
		if g.edges[ei].Delays == 0 {
			n++
		}
	}
	return n
}

// InDegree is the number of zero-delay in-edges of v.
func (g *Graph) InDegree(v NodeID) int {
	n := 0
	for _, ei := range g.pred[v] {
		if g.edges[ei].Delays == 0 {
			n++
		}
	}
	return n
}

// Roots returns the nodes with no zero-delay predecessor, in ID order.
// Following the paper, a root node is a node without any parent in the DAG
// portion.
func (g *Graph) Roots() []NodeID {
	var out []NodeID
	for id := range g.nodes {
		if g.InDegree(NodeID(id)) == 0 {
			out = append(out, NodeID(id))
		}
	}
	return out
}

// Leaves returns the nodes with no zero-delay successor, in ID order.
func (g *Graph) Leaves() []NodeID {
	var out []NodeID
	for id := range g.nodes {
		if g.OutDegree(NodeID(id)) == 0 {
			out = append(out, NodeID(id))
		}
	}
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New()
	c.Grow(len(g.nodes), len(g.edges))
	for _, n := range g.nodes {
		c.MustAddNode(n.Name, n.Op)
	}
	for _, e := range g.edges {
		c.MustAddEdge(e.From, e.To, e.Delays)
	}
	return c
}

// Transpose returns a new graph with every edge reversed. Node IDs, names
// and delay counts are preserved.
func (g *Graph) Transpose() *Graph {
	t := New()
	t.Grow(len(g.nodes), len(g.edges))
	for _, n := range g.nodes {
		t.MustAddNode(n.Name, n.Op)
	}
	for _, e := range g.edges {
		t.MustAddEdge(e.To, e.From, e.Delays)
	}
	return t
}

// Validate checks structural well-formedness: the DAG portion must be
// acyclic and every referenced node must exist (the latter is enforced at
// build time, so in practice Validate reports zero-delay cycles).
func (g *Graph) Validate() error {
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// TopoOrder returns the nodes of the DAG portion in a topological order:
// for every zero-delay edge (u, v), u appears before v. (The paper calls
// this ordering a "post-ordering".) An error is returned if the zero-delay
// subgraph contains a cycle; such a DFG has no static schedule.
//
// The order is deterministic: among ready nodes the smallest ID goes first.
func (g *Graph) TopoOrder() ([]NodeID, error) {
	n := len(g.nodes)
	indeg := make([]int, n)
	for _, e := range g.edges {
		if e.Delays == 0 {
			indeg[e.To]++
		}
	}
	// A binary min-heap of ready IDs keeps the order deterministic (smallest
	// ID first) at O(log n) per node. TopoOrder sits under Validate,
	// LongestPath and every solver, so it is one of the hottest loops in the
	// whole system; the heap is hand-rolled over NodeIDs to avoid the
	// interface and closure costs of the sort/heap packages.
	heap := make([]NodeID, 0, n)
	push := func(v NodeID) {
		heap = append(heap, v)
		for i := len(heap) - 1; i > 0; {
			p := (i - 1) / 2
			if heap[p] <= heap[i] {
				break
			}
			heap[p], heap[i] = heap[i], heap[p]
			i = p
		}
	}
	pop := func() NodeID {
		v := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		for i := 0; ; {
			s := i
			if l := 2*i + 1; l < last && heap[l] < heap[s] {
				s = l
			}
			if r := 2*i + 2; r < last && heap[r] < heap[s] {
				s = r
			}
			if s == i {
				break
			}
			heap[i], heap[s] = heap[s], heap[i]
			i = s
		}
		return v
	}
	for id := 0; id < n; id++ {
		if indeg[id] == 0 {
			heap = append(heap, NodeID(id)) // IDs ascend: already heap-ordered
		}
	}
	order := make([]NodeID, 0, n)
	for len(heap) > 0 {
		v := pop()
		order = append(order, v)
		for _, ei := range g.succ[v] {
			e := g.edges[ei]
			if e.Delays != 0 {
				continue
			}
			indeg[e.To]--
			if indeg[e.To] == 0 {
				push(e.To)
			}
		}
	}
	if len(order) != n {
		return nil, errors.New("dfg: zero-delay cycle detected (no valid topological order)")
	}
	return order, nil
}

// ReverseTopoOrder returns TopoOrder reversed: children before parents.
func (g *Graph) ReverseTopoOrder() ([]NodeID, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order, nil
}

// IsOutForest reports whether every node of the DAG portion has at most one
// parent, i.e. the zero-delay subgraph is a forest of out-trees. Tree_Assign
// requires this shape.
func (g *Graph) IsOutForest() bool {
	for id := range g.nodes {
		if g.InDegree(NodeID(id)) > 1 {
			return false
		}
	}
	return g.Validate() == nil
}

// IsInForest reports whether every node of the DAG portion has at most one
// child, i.e. the zero-delay subgraph is a forest of in-trees (fan-in
// computation trees, the natural shape of filter DFGs whose many inputs
// merge into one output).
func (g *Graph) IsInForest() bool {
	for id := range g.nodes {
		if g.OutDegree(NodeID(id)) > 1 {
			return false
		}
	}
	return g.Validate() == nil
}

// IsSimplePath reports whether the DAG portion is one simple chain
// v1 -> v2 -> ... -> vn covering all nodes.
func (g *Graph) IsSimplePath() bool {
	if g.N() == 0 {
		return false
	}
	roots := 0
	for id := range g.nodes {
		v := NodeID(id)
		if g.InDegree(v) > 1 || g.OutDegree(v) > 1 {
			return false
		}
		if g.InDegree(v) == 0 {
			roots++
		}
	}
	return roots == 1 && g.Validate() == nil
}

// CommonNodes returns the common nodes of the DAG portion in ID order. The
// paper defines a common node as one located on more than one critical
// (root-to-leaf) path, but its own example counts only nodes whose paths
// branch on *both* sides — in Figure 9 the roots A, B and leaves E, F each
// lie on two paths yet only C and D are called common. We follow the
// example: a node is common iff more than one root reaches it and it reaches
// more than one leaf-side path.
func (g *Graph) CommonNodes() []NodeID {
	down := g.pathCounts(false) // paths from v down to any leaf
	up := g.pathCounts(true)    // paths from any root down to v
	var out []NodeID
	for id := range g.nodes {
		if up[id] > 1 && down[id] > 1 {
			out = append(out, NodeID(id))
		}
	}
	return out
}

// CriticalPathCount returns the total number of root-to-leaf paths of the
// DAG portion. It can be exponential in |V|; the count saturates at
// math.MaxInt64 rather than overflowing.
func (g *Graph) CriticalPathCount() int64 {
	up := g.pathCounts(true)
	var total int64
	for id := range g.nodes {
		if g.OutDegree(NodeID(id)) == 0 {
			total = satAdd(total, up[id])
		}
	}
	return total
}

// pathCounts returns, per node, the number of paths from the node to a leaf
// (fromRoots=false) or from a root to the node (fromRoots=true), saturating.
func (g *Graph) pathCounts(fromRoots bool) []int64 {
	order, err := g.TopoOrder()
	if err != nil {
		// A cyclic zero-delay subgraph is rejected everywhere else; treat
		// every node as on a single path so callers degrade gracefully.
		counts := make([]int64, len(g.nodes))
		for i := range counts {
			counts[i] = 1
		}
		return counts
	}
	counts := make([]int64, len(g.nodes))
	if fromRoots {
		for _, v := range order {
			if g.InDegree(v) == 0 {
				counts[v] = 1
				continue
			}
			for _, u := range g.Pred(v) {
				counts[v] = satAdd(counts[v], counts[u])
			}
		}
	} else {
		for i := len(order) - 1; i >= 0; i-- {
			v := order[i]
			if g.OutDegree(v) == 0 {
				counts[v] = 1
				continue
			}
			for _, u := range g.Succ(v) {
				counts[v] = satAdd(counts[v], counts[u])
			}
		}
	}
	return counts
}

const maxInt64 = int64(^uint64(0) >> 1)

func satAdd(a, b int64) int64 {
	if a > maxInt64-b {
		return maxInt64
	}
	return a + b
}

// LongestPath returns the maximum total node weight over all root-to-leaf
// paths of the DAG portion, where weight[v] is the weight of node v, plus
// the list of nodes on one maximal path (in precedence order). Weights must
// be non-negative. An isolated node forms a path by itself.
func (g *Graph) LongestPath(weight []int) (length int, path []NodeID, err error) {
	if len(weight) != len(g.nodes) {
		return 0, nil, fmt.Errorf("dfg: weight slice has %d entries, graph has %d nodes", len(weight), len(g.nodes))
	}
	order, err := g.TopoOrder()
	if err != nil {
		return 0, nil, err
	}
	dist := make([]int, len(g.nodes)) // longest weight of a path ending at v
	from := make([]NodeID, len(g.nodes))
	best := None
	for _, v := range order {
		dist[v] = weight[v]
		from[v] = None
		for _, u := range g.Pred(v) {
			if d := dist[u] + weight[v]; d > dist[v] {
				dist[v] = d
				from[v] = u
			}
		}
		if best == None || dist[v] > dist[best] {
			best = v
		}
	}
	if best == None {
		return 0, nil, nil // empty graph
	}
	for v := best; v != None; v = from[v] {
		path = append(path, v)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return dist[best], path, nil
}

// PathLengthsThrough returns, per node, the maximum total weight of a
// root-to-leaf path passing through that node. The difference between a
// timing constraint and this value is the node's slack — how much longer
// it could run without stretching any deadline-relevant path.
func (g *Graph) PathLengthsThrough(weight []int) ([]int, error) {
	if len(weight) != len(g.nodes) {
		return nil, fmt.Errorf("dfg: weight slice has %d entries, graph has %d nodes", len(weight), len(g.nodes))
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	n := len(g.nodes)
	up := make([]int, n)
	down := make([]int, n)
	for _, v := range order {
		up[v] = weight[v]
		for _, u := range g.Pred(v) {
			if d := up[u] + weight[v]; d > up[v] {
				up[v] = d
			}
		}
	}
	for i := n - 1; i >= 0; i-- {
		v := order[i]
		down[v] = weight[v]
		for _, u := range g.Succ(v) {
			if d := down[u] + weight[v]; d > down[v] {
				down[v] = d
			}
		}
	}
	through := make([]int, n)
	for v := 0; v < n; v++ {
		through[v] = up[v] + down[v] - weight[v]
	}
	return through, nil
}

// OnLongestPath marks every node that lies on at least one maximum-weight
// root-to-leaf path. The greedy assignment baseline uses this to restrict
// its candidate upgrades to timing-critical nodes.
func (g *Graph) OnLongestPath(weight []int) (mask []bool, length int, err error) {
	if len(weight) != len(g.nodes) {
		return nil, 0, fmt.Errorf("dfg: weight slice has %d entries, graph has %d nodes", len(weight), len(g.nodes))
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, 0, err
	}
	n := len(g.nodes)
	down := make([]int, n) // longest path weight starting at v (inclusive)
	up := make([]int, n)   // longest path weight ending at v (inclusive)
	for _, v := range order {
		up[v] = weight[v]
		for _, u := range g.Pred(v) {
			if d := up[u] + weight[v]; d > up[v] {
				up[v] = d
			}
		}
	}
	for i := n - 1; i >= 0; i-- {
		v := order[i]
		down[v] = weight[v]
		for _, u := range g.Succ(v) {
			if d := down[u] + weight[v]; d > down[v] {
				down[v] = d
			}
		}
	}
	for _, v := range order {
		if l := up[v] + down[v] - weight[v]; l > length {
			length = l
		}
	}
	mask = make([]bool, n)
	for _, v := range order {
		mask[v] = up[v]+down[v]-weight[v] == length
	}
	return mask, length, nil
}
