package dfg

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// paperExample builds the DFG of Figure 9 in the paper: roots A and B,
// leaves E and F, common nodes C and D, and four critical paths
// A-C-D-E, A-C-D-F, B-C-D-E, B-C-D-F.
func paperExample(t testing.TB) *Graph {
	t.Helper()
	g := New()
	a := g.MustAddNode("A", "")
	b := g.MustAddNode("B", "")
	c := g.MustAddNode("C", "")
	d := g.MustAddNode("D", "")
	e := g.MustAddNode("E", "")
	f := g.MustAddNode("F", "")
	g.MustAddEdge(a, c, 0)
	g.MustAddEdge(b, c, 0)
	g.MustAddEdge(c, d, 0)
	g.MustAddEdge(d, e, 0)
	g.MustAddEdge(d, f, 0)
	return g
}

func ids(vs []NodeID) []int {
	out := make([]int, len(vs))
	for i, v := range vs {
		out[i] = int(v)
	}
	return out
}

func TestAddNodeRejectsDuplicatesAndEmpty(t *testing.T) {
	g := New()
	if _, err := g.AddNode("", "mul"); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := g.AddNode("A", "mul"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddNode("A", "add"); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := New()
	a := g.MustAddNode("A", "")
	b := g.MustAddNode("B", "")
	if err := g.AddEdge(a, NodeID(7), 0); err == nil {
		t.Error("unknown target accepted")
	}
	if err := g.AddEdge(NodeID(-1), b, 0); err == nil {
		t.Error("unknown source accepted")
	}
	if err := g.AddEdge(a, b, -1); err == nil {
		t.Error("negative delay accepted")
	}
	if err := g.AddEdge(a, a, 0); err == nil {
		t.Error("zero-delay self-loop accepted")
	}
	if err := g.AddEdge(a, a, 1); err != nil {
		t.Errorf("delayed self-loop rejected: %v", err)
	}
	if err := g.AddEdge(a, b, 0); err != nil {
		t.Errorf("plain edge rejected: %v", err)
	}
}

func TestLookup(t *testing.T) {
	g := paperExample(t)
	id, ok := g.Lookup("C")
	if !ok || g.Node(id).Name != "C" {
		t.Fatalf("Lookup(C) = %d, %v", id, ok)
	}
	if id, ok := g.Lookup("nope"); ok || id != None {
		t.Fatalf("Lookup(nope) = %d, %v", id, ok)
	}
}

func TestRootsLeavesDegrees(t *testing.T) {
	g := paperExample(t)
	if got := ids(g.Roots()); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("Roots = %v, want [0 1]", got)
	}
	if got := ids(g.Leaves()); !reflect.DeepEqual(got, []int{4, 5}) {
		t.Errorf("Leaves = %v, want [4 5]", got)
	}
	c, _ := g.Lookup("C")
	if g.InDegree(c) != 2 || g.OutDegree(c) != 1 {
		t.Errorf("C degrees = %d/%d, want 2/1", g.InDegree(c), g.OutDegree(c))
	}
}

func TestDelayedEdgesExcludedFromDAGPortion(t *testing.T) {
	g := New()
	a := g.MustAddNode("A", "")
	b := g.MustAddNode("B", "")
	g.MustAddEdge(a, b, 0)
	g.MustAddEdge(b, a, 2) // feedback through two delays: legal cycle
	if err := g.Validate(); err != nil {
		t.Fatalf("cyclic DFG with delayed back edge should validate: %v", err)
	}
	if got := len(g.Pred(a)); got != 0 {
		t.Errorf("Pred(A) over zero-delay edges = %d, want 0", got)
	}
	if got := len(g.PredAll(a)); got != 1 {
		t.Errorf("PredAll(A) = %d, want 1", got)
	}
	if got := len(g.SuccAll(b)); got != 1 {
		t.Errorf("SuccAll(B) = %d, want 1", got)
	}
}

func TestValidateRejectsZeroDelayCycle(t *testing.T) {
	g := New()
	a := g.MustAddNode("A", "")
	b := g.MustAddNode("B", "")
	g.MustAddEdge(a, b, 0)
	g.MustAddEdge(b, a, 0)
	if err := g.Validate(); err == nil {
		t.Fatal("zero-delay cycle validated")
	}
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	g := paperExample(t)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[NodeID]int)
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range g.Edges() {
		if e.Delays == 0 && pos[e.From] >= pos[e.To] {
			t.Errorf("edge (%d,%d) violated by order %v", e.From, e.To, order)
		}
	}
	rev, err := g.ReverseTopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	for i := range rev {
		if rev[i] != order[len(order)-1-i] {
			t.Fatalf("ReverseTopoOrder mismatch at %d", i)
		}
	}
}

func TestTopoOrderDeterministic(t *testing.T) {
	g := paperExample(t)
	o1, _ := g.TopoOrder()
	o2, _ := g.TopoOrder()
	if !reflect.DeepEqual(o1, o2) {
		t.Fatalf("nondeterministic topo order: %v vs %v", o1, o2)
	}
}

func TestShapePredicates(t *testing.T) {
	if !Chain(4).IsSimplePath() {
		t.Error("Chain(4) not recognized as simple path")
	}
	if !Chain(4).IsOutForest() {
		t.Error("Chain(4) not recognized as out-forest")
	}
	if Chain(0).IsSimplePath() {
		t.Error("empty graph accepted as simple path")
	}
	g := paperExample(t)
	if g.IsSimplePath() {
		t.Error("paper example accepted as simple path")
	}
	if g.IsOutForest() {
		t.Error("paper example accepted as out-forest (C has two parents)")
	}
	tree := New()
	r := tree.MustAddNode("r", "")
	x := tree.MustAddNode("x", "")
	y := tree.MustAddNode("y", "")
	tree.MustAddEdge(r, x, 0)
	tree.MustAddEdge(r, y, 0)
	if !tree.IsOutForest() {
		t.Error("small tree not recognized as out-forest")
	}
	if tree.IsSimplePath() {
		t.Error("branching tree accepted as simple path")
	}
}

func TestCommonNodesMatchPaperExample(t *testing.T) {
	g := paperExample(t)
	got := make([]string, 0, 2)
	for _, v := range g.CommonNodes() {
		got = append(got, g.Node(v).Name)
	}
	if !reflect.DeepEqual(got, []string{"C", "D"}) {
		t.Fatalf("CommonNodes = %v, want [C D]", got)
	}
	if n := g.CriticalPathCount(); n != 4 {
		t.Fatalf("CriticalPathCount = %d, want 4", n)
	}
}

func TestLongestPath(t *testing.T) {
	g := paperExample(t)
	// A=3 B=1 C=2 D=2 E=5 F=1: longest is A-C-D-E = 12.
	w := []int{3, 1, 2, 2, 5, 1}
	length, path, err := g.LongestPath(w)
	if err != nil {
		t.Fatal(err)
	}
	if length != 12 {
		t.Fatalf("length = %d, want 12", length)
	}
	names := make([]string, len(path))
	for i, v := range path {
		names[i] = g.Node(v).Name
	}
	if !reflect.DeepEqual(names, []string{"A", "C", "D", "E"}) {
		t.Fatalf("path = %v, want A C D E", names)
	}
	if _, _, err := g.LongestPath([]int{1}); err == nil {
		t.Error("short weight slice accepted")
	}
}

func TestLongestPathEmptyGraph(t *testing.T) {
	length, path, err := New().LongestPath(nil)
	if err != nil || length != 0 || path != nil {
		t.Fatalf("empty graph: %d %v %v", length, path, err)
	}
}

func TestOnLongestPath(t *testing.T) {
	g := paperExample(t)
	w := []int{3, 3, 2, 2, 5, 5} // both roots and both leaves tie
	mask, length, err := g.OnLongestPath(w)
	if err != nil {
		t.Fatal(err)
	}
	if length != 12 {
		t.Fatalf("length = %d, want 12", length)
	}
	for id, on := range mask {
		if !on {
			t.Errorf("node %d should lie on a longest path", id)
		}
	}
	w = []int{3, 1, 2, 2, 5, 1}
	mask, _, _ = g.OnLongestPath(w)
	want := []bool{true, false, true, true, true, false}
	if !reflect.DeepEqual(mask, want) {
		t.Fatalf("mask = %v, want %v", mask, want)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := paperExample(t)
	c := g.Clone()
	c.MustAddNode("Z", "")
	c.MustAddEdge(0, c.NodeID("Z"), 0)
	if g.N() != 6 || g.M() != 5 {
		t.Fatalf("mutating clone changed original: %d nodes %d edges", g.N(), g.M())
	}
}

// NodeID is a test helper resolving a name that must exist.
func (g *Graph) NodeID(name string) NodeID {
	id, ok := g.Lookup(name)
	if !ok {
		panic("unknown node " + name)
	}
	return id
}

func TestTransposeInvolution(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := RandomDAG(rng, 2+rng.Intn(20), 0.3)
		tt := g.Transpose().Transpose()
		return g.String() == tt.String()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeSwapsRootsAndLeaves(t *testing.T) {
	g := paperExample(t)
	tr := g.Transpose()
	if !reflect.DeepEqual(ids(g.Roots()), ids(tr.Leaves())) {
		t.Errorf("roots %v != transposed leaves %v", g.Roots(), tr.Leaves())
	}
	if !reflect.DeepEqual(ids(g.Leaves()), ids(tr.Roots())) {
		t.Errorf("leaves %v != transposed roots %v", g.Leaves(), tr.Roots())
	}
}

func TestLongestPathInvariantUnderTranspose(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := RandomDAG(rng, 2+rng.Intn(20), 0.3)
		w := make([]int, g.N())
		for i := range w {
			w[i] = 1 + rng.Intn(9)
		}
		l1, _, err1 := g.LongestPath(w)
		l2, _, err2 := g.Transpose().LongestPath(w)
		return err1 == nil && err2 == nil && l1 == l2
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomTreeIsOutForest(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		return RandomTree(rng, 1+rng.Intn(30)).IsOutForest()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomDAGIsAcyclic(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		return RandomDAG(rng, 2+rng.Intn(30), rng.Float64()).Validate() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSetDelays(t *testing.T) {
	g := New()
	a := g.MustAddNode("A", "")
	b := g.MustAddNode("B", "")
	g.MustAddEdge(a, b, 1)
	g.MustAddEdge(a, a, 2)
	if err := g.SetDelays(0, 0); err != nil {
		t.Errorf("clearing delay on plain edge: %v", err)
	}
	if err := g.SetDelays(1, 0); err == nil {
		t.Error("self-loop delay cleared to zero")
	}
	if err := g.SetDelays(0, -1); err == nil {
		t.Error("negative delay accepted")
	}
	if err := g.SetDelays(9, 1); err == nil {
		t.Error("out-of-range edge index accepted")
	}
	if g.Edge(0).Delays != 0 {
		t.Errorf("Delays = %d, want 0", g.Edge(0).Delays)
	}
}

func TestCriticalPathCountSaturates(t *testing.T) {
	// 2^70 paths: a chain of 70 diamonds. The count must clamp, not wrap.
	g := New()
	prev := g.MustAddNode("s", "")
	for i := 0; i < 70; i++ {
		l := g.MustAddNode(fmt2("l", i), "")
		r := g.MustAddNode(fmt2("r", i), "")
		j := g.MustAddNode(fmt2("j", i), "")
		g.MustAddEdge(prev, l, 0)
		g.MustAddEdge(prev, r, 0)
		g.MustAddEdge(l, j, 0)
		g.MustAddEdge(r, j, 0)
		prev = j
	}
	if n := g.CriticalPathCount(); n != maxInt64 {
		t.Fatalf("count = %d, want saturation at %d", n, maxInt64)
	}
}

func fmt2(prefix string, i int) string {
	return prefix + string(rune('a'+i/26)) + string(rune('a'+i%26))
}
