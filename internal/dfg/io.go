package dfg

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// jsonGraph is the on-disk form of a Graph. Nodes are referenced by name so
// that files stay readable and stable under reordering.
type jsonGraph struct {
	Nodes []jsonNode `json:"nodes"`
	Edges []jsonEdge `json:"edges"`
}

type jsonNode struct {
	Name string `json:"name"`
	Op   string `json:"op,omitempty"`
}

type jsonEdge struct {
	From   string `json:"from"`
	To     string `json:"to"`
	Delays int    `json:"delays,omitempty"`
}

// MarshalJSON serializes the graph with nodes in ID order and edges in
// insertion order.
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{
		Nodes: make([]jsonNode, 0, len(g.nodes)),
		Edges: make([]jsonEdge, 0, len(g.edges)),
	}
	for _, n := range g.nodes {
		jg.Nodes = append(jg.Nodes, jsonNode{Name: n.Name, Op: n.Op})
	}
	for _, e := range g.edges {
		jg.Edges = append(jg.Edges, jsonEdge{
			From:   g.nodes[e.From].Name,
			To:     g.nodes[e.To].Name,
			Delays: e.Delays,
		})
	}
	return json.Marshal(jg)
}

// UnmarshalJSON replaces the receiver with the decoded graph.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return fmt.Errorf("dfg: decode: %w", err)
	}
	fresh := New()
	for _, n := range jg.Nodes {
		if _, err := fresh.AddNode(n.Name, n.Op); err != nil {
			return err
		}
	}
	for _, e := range jg.Edges {
		u, ok := fresh.Lookup(e.From)
		if !ok {
			return fmt.Errorf("dfg: edge references unknown node %q", e.From)
		}
		v, ok := fresh.Lookup(e.To)
		if !ok {
			return fmt.Errorf("dfg: edge references unknown node %q", e.To)
		}
		if err := fresh.AddEdge(u, v, e.Delays); err != nil {
			return err
		}
	}
	*g = *fresh
	return nil
}

// ReadJSON decodes a graph from r.
func ReadJSON(r io.Reader) (*Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("dfg: read: %w", err)
	}
	g := New()
	if err := g.UnmarshalJSON(data); err != nil {
		return nil, err
	}
	return g, nil
}

// WriteJSON encodes the graph to w with indentation.
func (g *Graph) WriteJSON(w io.Writer) error {
	data, err := g.MarshalJSON()
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := json.Indent(&buf, data, "", "  "); err != nil {
		return err
	}
	buf.WriteByte('\n')
	_, err = w.Write(buf.Bytes())
	return err
}

// DOT renders the graph in Graphviz dot syntax. Labels carry an optional
// annotation per node (e.g. the assigned FU type); pass nil for plain names.
// Delayed edges are drawn dashed with the delay count as label.
func (g *Graph) DOT(title string, annotate func(NodeID) string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", title)
	b.WriteString("  rankdir=TB;\n  node [shape=circle, fontsize=11];\n")
	for _, n := range g.nodes {
		label := n.Name
		if n.Op != "" {
			label += "\\n" + n.Op
		}
		if annotate != nil {
			if extra := annotate(n.ID); extra != "" {
				label += "\\n" + extra
			}
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\"];\n", n.ID, label)
	}
	for _, e := range g.edges {
		if e.Delays == 0 {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", e.From, e.To)
		} else {
			fmt.Fprintf(&b, "  n%d -> n%d [style=dashed, label=\"%d\"];\n", e.From, e.To, e.Delays)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// String gives a compact one-line description, useful in test failures.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "dfg{%d nodes", len(g.nodes))
	names := make([]string, 0, len(g.edges))
	for _, e := range g.edges {
		s := fmt.Sprintf("%s->%s", g.nodes[e.From].Name, g.nodes[e.To].Name)
		if e.Delays > 0 {
			s += fmt.Sprintf("[%d]", e.Delays)
		}
		names = append(names, s)
	}
	sort.Strings(names)
	if len(names) > 0 {
		b.WriteString("; ")
		b.WriteString(strings.Join(names, " "))
	}
	b.WriteString("}")
	return b.String()
}
