package dfg

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestJSONRoundTrip(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := RandomDAG(rng, 2+rng.Intn(15), 0.3)
		var buf bytes.Buffer
		if err := g.WriteJSON(&buf); err != nil {
			t.Logf("write: %v", err)
			return false
		}
		back, err := ReadJSON(&buf)
		if err != nil {
			t.Logf("read: %v", err)
			return false
		}
		return g.String() == back.String()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := map[string]string{
		"syntax":         `{"nodes": [`,
		"unknown target": `{"nodes":[{"name":"A"}],"edges":[{"from":"A","to":"B"}]}`,
		"unknown source": `{"nodes":[{"name":"A"}],"edges":[{"from":"B","to":"A"}]}`,
		"dup name":       `{"nodes":[{"name":"A"},{"name":"A"}],"edges":[]}`,
		"neg delay":      `{"nodes":[{"name":"A"},{"name":"B"}],"edges":[{"from":"A","to":"B","delays":-1}]}`,
	}
	for name, in := range cases {
		if _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %s", name, in)
		}
	}
}

func TestUnmarshalDoesNotClobberOnError(t *testing.T) {
	g := Chain(3)
	if err := json.Unmarshal([]byte(`{"nodes":[{"name":"A"},{"name":"A"}]}`), g); err == nil {
		t.Fatal("bad input accepted")
	}
	if g.N() != 3 {
		t.Fatalf("failed decode clobbered receiver: %d nodes", g.N())
	}
}

func TestDOTMentionsEveryNodeAndEdge(t *testing.T) {
	g := New()
	a := g.MustAddNode("A", "mul")
	b := g.MustAddNode("B", "add")
	g.MustAddEdge(a, b, 0)
	g.MustAddEdge(b, a, 2)
	dot := g.DOT("demo", func(v NodeID) string {
		if v == a {
			return "P1"
		}
		return ""
	})
	for _, want := range []string{"digraph \"demo\"", "A\\nmul\\nP1", "B\\nadd", "n0 -> n1;", "n1 -> n0 [style=dashed, label=\"2\"]"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestStringIsStable(t *testing.T) {
	g := paperExample(t)
	want := "dfg{6 nodes; A->C B->C C->D D->E D->F}"
	if got := g.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

// TestServerPayloadRoundTrip exercises the exact graph payload shape the
// hetsynthd server accepts in its "graph" request field: a Graph embedded as
// one member of a larger JSON object (decoded via json.RawMessage), with op
// annotations and inter-iteration delays surviving the round trip.
func TestServerPayloadRoundTrip(t *testing.T) {
	g := New()
	a := g.MustAddNode("a", "mul")
	b := g.MustAddNode("b", "add")
	c := g.MustAddNode("c", "")
	g.MustAddEdge(a, b, 0)
	g.MustAddEdge(b, c, 0)
	g.MustAddEdge(c, a, 2) // feedback with delays, legal in a DFG

	inner, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	envelope := []byte(`{"graph":` + string(inner) + `,"deadline":10}`)
	var req struct {
		Graph    json.RawMessage `json:"graph"`
		Deadline int             `json:"deadline"`
	}
	if err := json.Unmarshal(envelope, &req); err != nil {
		t.Fatal(err)
	}
	back := New()
	if err := back.UnmarshalJSON(req.Graph); err != nil {
		t.Fatalf("decode embedded graph: %v", err)
	}
	if back.String() != g.String() {
		t.Fatalf("embedded round trip changed the graph: %s vs %s", back.String(), g.String())
	}
	if back.Node(NodeID(0)).Op != "mul" || back.Node(NodeID(1)).Op != "add" || back.Node(NodeID(2)).Op != "" {
		t.Fatal("op annotations lost in embedded round trip")
	}
	if back.Edge(2).Delays != 2 {
		t.Fatalf("delay count lost: %d", back.Edge(2).Delays)
	}
}

// TestServerPayloadMalformed enumerates the malformed graph payloads the
// server maps to HTTP 400; each must be rejected here, at the dfg layer, so
// the server never sees a half-decoded graph.
func TestServerPayloadMalformed(t *testing.T) {
	cases := map[string]string{
		"not an object":   `[1,2,3]`,
		"node sans name":  `{"nodes":[{"op":"add"}],"edges":[]}`,
		"edge to nowhere": `{"nodes":[{"name":"a"}],"edges":[{"from":"a","to":"ghost"}]}`,
		"self loop":       `{"nodes":[{"name":"a"}],"edges":[{"from":"a","to":"a"}]}`,
		"negative delays": `{"nodes":[{"name":"a"},{"name":"b"}],"edges":[{"from":"a","to":"b","delays":-3}]}`,
		"duplicate nodes": `{"nodes":[{"name":"a"},{"name":"a"}],"edges":[]}`,
	}
	for name, payload := range cases {
		g := New()
		if err := g.UnmarshalJSON([]byte(payload)); err == nil {
			t.Errorf("%s: accepted %s", name, payload)
		}
	}
}

// TestBenchmarkGraphsRoundTripStably round-trips a moderately sized graph
// twice and checks full stability, the property the server's canonical
// digests rely on (same payload -> same graph -> same digest).
func TestBenchmarkGraphsRoundTripStably(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := RandomDAG(rng, 40, 0.15)
	one, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	mid := New()
	if err := mid.UnmarshalJSON(one); err != nil {
		t.Fatal(err)
	}
	two, err := json.Marshal(mid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one, two) {
		t.Fatalf("marshal not stable across a round trip:\n%s\n%s", one, two)
	}
}
