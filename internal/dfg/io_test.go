package dfg

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestJSONRoundTrip(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := RandomDAG(rng, 2+rng.Intn(15), 0.3)
		var buf bytes.Buffer
		if err := g.WriteJSON(&buf); err != nil {
			t.Logf("write: %v", err)
			return false
		}
		back, err := ReadJSON(&buf)
		if err != nil {
			t.Logf("read: %v", err)
			return false
		}
		return g.String() == back.String()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := map[string]string{
		"syntax":         `{"nodes": [`,
		"unknown target": `{"nodes":[{"name":"A"}],"edges":[{"from":"A","to":"B"}]}`,
		"unknown source": `{"nodes":[{"name":"A"}],"edges":[{"from":"B","to":"A"}]}`,
		"dup name":       `{"nodes":[{"name":"A"},{"name":"A"}],"edges":[]}`,
		"neg delay":      `{"nodes":[{"name":"A"},{"name":"B"}],"edges":[{"from":"A","to":"B","delays":-1}]}`,
	}
	for name, in := range cases {
		if _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %s", name, in)
		}
	}
}

func TestUnmarshalDoesNotClobberOnError(t *testing.T) {
	g := Chain(3)
	if err := json.Unmarshal([]byte(`{"nodes":[{"name":"A"},{"name":"A"}]}`), g); err == nil {
		t.Fatal("bad input accepted")
	}
	if g.N() != 3 {
		t.Fatalf("failed decode clobbered receiver: %d nodes", g.N())
	}
}

func TestDOTMentionsEveryNodeAndEdge(t *testing.T) {
	g := New()
	a := g.MustAddNode("A", "mul")
	b := g.MustAddNode("B", "add")
	g.MustAddEdge(a, b, 0)
	g.MustAddEdge(b, a, 2)
	dot := g.DOT("demo", func(v NodeID) string {
		if v == a {
			return "P1"
		}
		return ""
	})
	for _, want := range []string{"digraph \"demo\"", "A\\nmul\\nP1", "B\\nadd", "n0 -> n1;", "n1 -> n0 [style=dashed, label=\"2\"]"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestStringIsStable(t *testing.T) {
	g := paperExample(t)
	want := "dfg{6 nodes; A->C B->C C->D D->E D->F}"
	if got := g.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}
