package dfg

// Metrics summarizes the shape of the DAG portion of a graph; the
// experiment harness prints them alongside results and the generators'
// tests pin them.
type Metrics struct {
	Nodes      int
	Edges      int // zero-delay edges only
	DelayEdges int
	Roots      int
	Leaves     int
	Depth      int // nodes on the longest unit-weight path
	Width      int // max nodes at equal depth (an antichain lower bound)
	MaxFanout  int
	MaxFanin   int
}

// ComputeMetrics returns the shape metrics of the DAG portion. The graph
// must validate (acyclic zero-delay subgraph).
func ComputeMetrics(g *Graph) (Metrics, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return Metrics{}, err
	}
	m := Metrics{Nodes: g.N()}
	for _, e := range g.Edges() {
		if e.Delays == 0 {
			m.Edges++
		} else {
			m.DelayEdges++
		}
	}
	level := make([]int, g.N())
	levelCount := map[int]int{}
	for _, v := range order {
		level[v] = 1
		for _, u := range g.Pred(v) {
			if l := level[u] + 1; l > level[v] {
				level[v] = l
			}
		}
		levelCount[level[v]]++
		if level[v] > m.Depth {
			m.Depth = level[v]
		}
		if in := g.InDegree(v); in > m.MaxFanin {
			m.MaxFanin = in
		}
		if out := g.OutDegree(v); out > m.MaxFanout {
			m.MaxFanout = out
		}
		if g.InDegree(v) == 0 {
			m.Roots++
		}
		if g.OutDegree(v) == 0 {
			m.Leaves++
		}
	}
	for _, c := range levelCount {
		if c > m.Width {
			m.Width = c
		}
	}
	return m, nil
}
