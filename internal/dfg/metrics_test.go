package dfg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestComputeMetricsOnPaperExample(t *testing.T) {
	g := paperExample(t)
	m, err := ComputeMetrics(g)
	if err != nil {
		t.Fatal(err)
	}
	want := Metrics{
		Nodes: 6, Edges: 5, Roots: 2, Leaves: 2,
		Depth: 4, Width: 2, MaxFanout: 2, MaxFanin: 2,
	}
	if m != want {
		t.Fatalf("metrics = %+v, want %+v", m, want)
	}
}

func TestComputeMetricsCountsDelayEdges(t *testing.T) {
	g := New()
	a := g.MustAddNode("a", "")
	b := g.MustAddNode("b", "")
	g.MustAddEdge(a, b, 0)
	g.MustAddEdge(b, a, 2)
	m, err := ComputeMetrics(g)
	if err != nil {
		t.Fatal(err)
	}
	if m.Edges != 1 || m.DelayEdges != 1 {
		t.Fatalf("edge split = %d/%d, want 1/1", m.Edges, m.DelayEdges)
	}
}

func TestComputeMetricsRejectsCycle(t *testing.T) {
	g := New()
	a := g.MustAddNode("a", "")
	b := g.MustAddNode("b", "")
	g.MustAddEdge(a, b, 0)
	g.MustAddEdge(b, a, 0)
	if _, err := ComputeMetrics(g); err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestComputeMetricsInvariants(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := RandomDAG(rng, 2+rng.Intn(20), 0.3)
		m, err := ComputeMetrics(g)
		if err != nil {
			return false
		}
		// Depth equals the unit-weight longest path.
		w := make([]int, g.N())
		for i := range w {
			w[i] = 1
		}
		l, _, err := g.LongestPath(w)
		if err != nil {
			return false
		}
		return m.Depth == l &&
			m.Depth*m.Width >= m.Nodes && // levels partition the nodes
			m.Roots >= 1 && m.Leaves >= 1 &&
			m.Nodes == g.N()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
