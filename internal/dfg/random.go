package dfg

import (
	"fmt"
	"math/rand"
)

// RandomDAG builds a random connected-ish DAG with n nodes. Each ordered
// pair (i, j), i < j, receives an edge with probability p; every non-first
// node additionally gets at least one incoming edge so the graph has no
// stray islands beyond the roots the probability draw produces. Node names
// are "n0".."n{n-1}" and op classes alternate between "mul" and "add" so the
// graphs exercise op-class-based FU tables too.
//
// The generator is deterministic for a given *rand.Rand state; experiments
// and property tests seed it explicitly.
func RandomDAG(rng *rand.Rand, n int, p float64) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		op := "add"
		if i%2 == 0 {
			op = "mul"
		}
		g.MustAddNode(fmt.Sprintf("n%d", i), op)
	}
	for j := 1; j < n; j++ {
		linked := false
		for i := 0; i < j; i++ {
			if rng.Float64() < p {
				g.MustAddEdge(NodeID(i), NodeID(j), 0)
				linked = true
			}
		}
		if !linked {
			g.MustAddEdge(NodeID(rng.Intn(j)), NodeID(j), 0)
		}
	}
	return g
}

// RandomTree builds a random out-tree with n nodes: node 0 is the root and
// every later node picks a uniformly random earlier node as its parent.
func RandomTree(rng *rand.Rand, n int) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		op := "add"
		if i%2 == 0 {
			op = "mul"
		}
		g.MustAddNode(fmt.Sprintf("t%d", i), op)
	}
	for j := 1; j < n; j++ {
		g.MustAddEdge(NodeID(rng.Intn(j)), NodeID(j), 0)
	}
	return g
}

// Chain builds the simple path v1 -> v2 -> ... -> vn.
func Chain(n int) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		g.MustAddNode(fmt.Sprintf("v%d", i+1), "")
	}
	for i := 1; i < n; i++ {
		g.MustAddEdge(NodeID(i-1), NodeID(i), 0)
	}
	return g
}
