// Package exper is the experiment harness that regenerates the paper's
// evaluation (§7, Tables 1 and 2): for each benchmark DFG and a ladder of
// timing constraints starting at the minimum makespan, it runs the greedy
// baseline and the paper's algorithms, reports system costs and percentage
// reductions, and attaches the minimum-resource configuration produced by
// phase two.
//
// The paper's random per-node time/cost tables are not published; we draw
// them from fu.RandomTable with a fixed seed (three FU types, times
// strictly increasing and costs strictly decreasing across types, the same
// monotone structure the paper describes). Absolute costs therefore differ
// from the paper, but the comparisons the paper's conclusions rest on —
// tree algorithms are optimal, Once and Repeat beat greedy by double-digit
// percentages on average, Repeat >= Once, especially with many duplicated
// nodes — are reproduced; see EXPERIMENTS.md.
package exper

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"hetsynth/internal/benchdfg"
	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
	"hetsynth/internal/hap"
	"hetsynth/internal/sched"
	"hetsynth/internal/texttab"
)

// Options configures an experiment run.
type Options struct {
	Seed      int64 // seed for the random time/cost tables (default 2004)
	Types     int   // FU types (default 3, the paper's setting)
	Deadlines int   // timing constraints per benchmark (default 6)
	// Exact additionally runs the branch-and-bound optimum when the graph
	// is small enough; used by the ablation study.
	Exact bool
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 2004
	}
	if o.Types == 0 {
		o.Types = 3
	}
	if o.Deadlines == 0 {
		o.Deadlines = 6
	}
	return o
}

// Row is one table line: one benchmark at one timing constraint.
type Row struct {
	Deadline int
	Greedy   int64
	Tree     int64 // optimal tree cost; -1 when the graph is not a tree
	Once     int64
	Repeat   int64
	Exact    int64 // -1 unless Options.Exact and the search finished
	Config   sched.Config
}

// ReductionOnce is the percentage cost reduction of DFG_Assign_Once versus
// the greedy baseline.
func (r Row) ReductionOnce() float64 { return reduction(r.Greedy, r.Once) }

// ReductionRepeat is the percentage cost reduction of DFG_Assign_Repeat
// versus the greedy baseline.
func (r Row) ReductionRepeat() float64 { return reduction(r.Greedy, r.Repeat) }

func reduction(base, x int64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * float64(base-x) / float64(base)
}

// Result aggregates the rows of one benchmark.
type Result struct {
	Bench benchdfg.Benchmark
	Graph *dfg.Graph
	Table *fu.Table
	Rows  []Row
}

// AvgReductionOnce averages ReductionOnce over all rows.
func (res Result) AvgReductionOnce() float64 {
	var s float64
	for _, r := range res.Rows {
		s += r.ReductionOnce()
	}
	return s / float64(len(res.Rows))
}

// AvgReductionRepeat averages ReductionRepeat over all rows.
func (res Result) AvgReductionRepeat() float64 {
	var s float64
	for _, r := range res.Rows {
		s += r.ReductionRepeat()
	}
	return s / float64(len(res.Rows))
}

// Deadlines builds the ladder of timing constraints for a benchmark: the
// minimum makespan first (the paper's first row), then evenly spaced looser
// constraints.
func Deadlines(g *dfg.Graph, t *fu.Table, count int) ([]int, error) {
	min, err := hap.MinMakespan(g, t)
	if err != nil {
		return nil, err
	}
	step := min / 5
	if step < 1 {
		step = 1
	}
	out := make([]int, count)
	for i := range out {
		out[i] = min + i*step
	}
	return out, nil
}

// Run executes the experiment for one benchmark.
func Run(b benchdfg.Benchmark, opt Options) (Result, error) {
	return RunCtx(context.Background(), b, opt)
}

// RunCtx is Run with cooperative cancellation: the context is checked
// between deadline points and threaded through the iterative solvers, so an
// abandoned sweep stops within one deadline's worth of work.
func RunCtx(ctx context.Context, b benchdfg.Benchmark, opt Options) (Result, error) {
	opt = opt.withDefaults()
	g := b.Build()
	rng := rand.New(rand.NewSource(opt.Seed))
	tab := fu.RandomTable(rng, g.N(), opt.Types)
	res := Result{Bench: b, Graph: g, Table: tab}

	deadlines, err := Deadlines(g, tab, opt.Deadlines)
	if err != nil {
		return Result{}, fmt.Errorf("exper: %s: %w", b.Name, err)
	}
	isTree := g.IsInForest() || g.IsOutForest()

	for _, L := range deadlines {
		if err := ctx.Err(); err != nil {
			return Result{}, fmt.Errorf("exper: %s at L=%d: %w", b.Name, L, err)
		}
		p := hap.Problem{Graph: g, Table: tab, Deadline: L}
		row := Row{Deadline: L, Tree: -1, Exact: -1}

		gs, err := hap.Greedy(p)
		if err != nil {
			return Result{}, fmt.Errorf("exper: %s greedy at L=%d: %w", b.Name, L, err)
		}
		row.Greedy = gs.Cost

		if isTree {
			ts, err := hap.TreeAssign(p)
			if err != nil {
				return Result{}, fmt.Errorf("exper: %s tree at L=%d: %w", b.Name, L, err)
			}
			row.Tree = ts.Cost
		}
		once, err := hap.AssignOnce(p)
		if err != nil {
			return Result{}, fmt.Errorf("exper: %s once at L=%d: %w", b.Name, L, err)
		}
		row.Once = once.Cost
		rep, err := hap.AssignRepeatCtx(ctx, p)
		if err != nil {
			return Result{}, fmt.Errorf("exper: %s repeat at L=%d: %w", b.Name, L, err)
		}
		row.Repeat = rep.Cost

		if opt.Exact {
			if xs, err := hap.ExactCtx(ctx, p, hap.ExactOptions{}); err == nil {
				row.Exact = xs.Cost
			} else if ctx.Err() != nil {
				return Result{}, fmt.Errorf("exper: %s exact at L=%d: %w", b.Name, L, ctx.Err())
			}
		}

		// Phase two: minimum-resource configuration for the recommended
		// algorithm's assignment (Repeat; equals Tree_Assign on trees).
		_, cfg, err := sched.MinRSchedule(g, tab, rep.Assign, L)
		if err != nil {
			return Result{}, fmt.Errorf("exper: %s schedule at L=%d: %w", b.Name, L, err)
		}
		row.Config = cfg
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// RunAll executes Run for each benchmark in order.
func RunAll(benches []benchdfg.Benchmark, opt Options) ([]Result, error) {
	return RunAllCtx(context.Background(), benches, opt)
}

// RunAllCtx is RunAll with cooperative cancellation between benchmarks.
func RunAllCtx(ctx context.Context, benches []benchdfg.Benchmark, opt Options) ([]Result, error) {
	out := make([]Result, 0, len(benches))
	for _, b := range benches {
		r, err := RunCtx(ctx, b, opt)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Table1 runs the tree benchmarks of the paper's Table 1 (4-stage lattice,
// 8-stage lattice, Volterra).
func Table1(opt Options) ([]Result, error) {
	var trees []benchdfg.Benchmark
	for _, b := range benchdfg.Paper() {
		if b.Tree {
			trees = append(trees, b)
		}
	}
	return RunAll(trees, opt)
}

// Table2 runs the general-DFG benchmarks of the paper's Table 2 (diffeq,
// RLS-Laguerre, elliptic).
func Table2(opt Options) ([]Result, error) {
	var dags []benchdfg.Benchmark
	for _, b := range benchdfg.Paper() {
		if !b.Tree {
			dags = append(dags, b)
		}
	}
	return RunAll(dags, opt)
}

// Summary aggregates the headline numbers of §7: the average percentage
// reduction of Once and Repeat versus greedy over all rows of all results.
func Summary(results []Result) (avgOnce, avgRepeat float64) {
	n := 0
	for _, res := range results {
		for _, r := range res.Rows {
			avgOnce += r.ReductionOnce()
			avgRepeat += r.ReductionRepeat()
			n++
		}
	}
	if n == 0 {
		return 0, 0
	}
	return avgOnce / float64(n), avgRepeat / float64(n)
}

// RenderTable renders results in the paper's table layout. Tree benchmarks
// get the Tree_Assign column (Table 1); general DFGs omit it (Table 2).
func RenderTable(results []Result) string {
	var b strings.Builder
	for _, res := range results {
		isTree := res.Bench.Tree
		fmt.Fprintf(&b, "%s (%d nodes", res.Bench.Name, res.Graph.N())
		if isTree {
			b.WriteString(", tree)\n")
		} else {
			fmt.Fprintf(&b, ", DFG, %d duplicated nodes)\n", res.Bench.PaperDuplicated)
		}
		var tbl *texttab.Table
		if isTree {
			tbl = texttab.New("T", "Greedy", "Tree_Assign", "Once", "Repeat", "Reduction", "Config").
				AlignRight(0, 1, 2, 3, 4, 5)
		} else {
			tbl = texttab.New("T", "Greedy", "Once", "Repeat", "Reduction", "Config").
				AlignRight(0, 1, 2, 3, 4)
		}
		for _, r := range res.Rows {
			reduction := fmt.Sprintf("%.1f%%", r.ReductionRepeat())
			if isTree {
				tbl.Row(r.Deadline, r.Greedy, r.Tree, r.Once, r.Repeat, reduction, r.Config)
			} else {
				tbl.Row(r.Deadline, r.Greedy,
					fmt.Sprintf("%d (%.1f%%)", r.Once, r.ReductionOnce()),
					fmt.Sprintf("%d (%.1f%%)", r.Repeat, r.ReductionRepeat()),
					reduction, r.Config)
			}
		}
		b.WriteString(tbl.String())
		fmt.Fprintf(&b, "Average reduction: Once %.1f%%  Repeat %.1f%%\n\n",
			res.AvgReductionOnce(), res.AvgReductionRepeat())
	}
	return b.String()
}

// RenderCSV renders results as CSV for downstream plotting.
func RenderCSV(results []Result) string {
	var b strings.Builder
	b.WriteString("benchmark,nodes,deadline,greedy,tree,once,repeat,exact,once_pct,repeat_pct,config\n")
	for _, res := range results {
		for _, r := range res.Rows {
			fmt.Fprintf(&b, "%s,%d,%d,%d,%d,%d,%d,%d,%.2f,%.2f,%s\n",
				res.Bench.Name, res.Graph.N(), r.Deadline, r.Greedy, r.Tree,
				r.Once, r.Repeat, r.Exact,
				r.ReductionOnce(), r.ReductionRepeat(), r.Config)
		}
	}
	return b.String()
}
