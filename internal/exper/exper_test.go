package exper

import (
	"strings"
	"testing"

	"hetsynth/internal/benchdfg"
	"hetsynth/internal/hap"
)

func TestTable1TreeBenchmarksAreOptimal(t *testing.T) {
	results, err := Table1(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("Table 1 has %d benchmarks, want 3", len(results))
	}
	for _, res := range results {
		if len(res.Rows) != 6 {
			t.Fatalf("%s: %d rows, want 6", res.Bench.Name, len(res.Rows))
		}
		for _, r := range res.Rows {
			// §7: "Algorithm DFG_Assign_Once and Algorithm
			// DFG_Assign_Repeat give the same results as Tree_Assign" on
			// the tree benchmarks, and Tree_Assign is optimal there.
			if r.Tree < 0 {
				t.Fatalf("%s: missing Tree_Assign column", res.Bench.Name)
			}
			if r.Once != r.Tree || r.Repeat != r.Tree {
				t.Errorf("%s L=%d: once=%d repeat=%d tree=%d (must match)",
					res.Bench.Name, r.Deadline, r.Once, r.Repeat, r.Tree)
			}
			if r.Greedy < r.Tree {
				t.Errorf("%s L=%d: greedy %d beats the optimum %d",
					res.Bench.Name, r.Deadline, r.Greedy, r.Tree)
			}
			if len(r.Config) != 3 || r.Config.Total() < 1 {
				t.Errorf("%s L=%d: bad config %v", res.Bench.Name, r.Deadline, r.Config)
			}
		}
	}
}

func TestTable2DFGBenchmarks(t *testing.T) {
	results, err := Table2(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("Table 2 has %d benchmarks, want 3", len(results))
	}
	for _, res := range results {
		// The heuristics are not pointwise dominant (a single row may lose
		// to greedy by a little, as §7's near-zero rows show); the paper's
		// claim is about the averages per benchmark, so that is what we
		// pin: Repeat beats greedy on average and never trails Once.
		var greedy, once, rep int64
		for _, r := range res.Rows {
			greedy += r.Greedy
			once += r.Once
			rep += r.Repeat
		}
		if rep > greedy {
			t.Errorf("%s: repeat aggregate %d worse than greedy %d", res.Bench.Name, rep, greedy)
		}
		if rep > once {
			t.Errorf("%s: repeat aggregate %d worse than once %d", res.Bench.Name, rep, once)
		}
		if res.AvgReductionRepeat() <= 0 {
			t.Errorf("%s: repeat average reduction %.1f%% not positive", res.Bench.Name, res.AvgReductionRepeat())
		}
	}
}

func TestSummaryMatchesPaperDirection(t *testing.T) {
	// Headline of the paper (§7/abstract): double-digit average reductions
	// over greedy; Repeat at least as good as Once. The exact figures
	// (13.% / 19.7%) depend on the authors' unpublished random tables, so
	// we assert sign and rough magnitude; EXPERIMENTS.md records the
	// measured values.
	t1, err := Table1(Options{})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Table2(Options{})
	if err != nil {
		t.Fatal(err)
	}
	avgOnce, avgRepeat := Summary(append(t1, t2...))
	if avgOnce <= 0 || avgRepeat <= 0 {
		t.Fatalf("average reductions not positive: once=%.1f repeat=%.1f", avgOnce, avgRepeat)
	}
	if avgRepeat < avgOnce {
		t.Fatalf("repeat average %.1f below once average %.1f", avgRepeat, avgOnce)
	}
	if avgRepeat < 5 {
		t.Fatalf("repeat average %.1f%% is not a meaningful reduction", avgRepeat)
	}
	t.Logf("measured: once=%.1f%% repeat=%.1f%% (paper: 13.%% / 19.7%%)", avgOnce, avgRepeat)
}

func TestRowReductionMath(t *testing.T) {
	r := Row{Greedy: 200, Once: 150, Repeat: 100}
	if got := r.ReductionOnce(); got != 25 {
		t.Errorf("ReductionOnce = %v, want 25", got)
	}
	if got := r.ReductionRepeat(); got != 50 {
		t.Errorf("ReductionRepeat = %v, want 50", got)
	}
	zero := Row{}
	if zero.ReductionOnce() != 0 {
		t.Error("zero-greedy reduction must be 0")
	}
}

func TestDeadlinesLadder(t *testing.T) {
	b, _ := benchdfg.Lookup("4-stage-lattice")
	g := b.Build()
	res, err := Run(b, Options{Deadlines: 4})
	if err != nil {
		t.Fatal(err)
	}
	min, err := hap.MinMakespan(g, res.Table)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows, want 4", len(res.Rows))
	}
	if res.Rows[0].Deadline != min {
		t.Fatalf("first deadline %d, want minimum makespan %d", res.Rows[0].Deadline, min)
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Deadline <= res.Rows[i-1].Deadline {
			t.Fatalf("deadlines not increasing: %v", res.Rows)
		}
	}
}

func TestCostsWeaklyDecreaseWithDeadline(t *testing.T) {
	for _, b := range benchdfg.Paper() {
		res, err := Run(b, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(res.Rows); i++ {
			if res.Rows[i].Repeat > res.Rows[i-1].Repeat {
				t.Errorf("%s: repeat cost rose from %d to %d as deadline loosened",
					b.Name, res.Rows[i-1].Repeat, res.Rows[i].Repeat)
			}
		}
	}
}

func TestExactOptionTightensRows(t *testing.T) {
	b, _ := benchdfg.Lookup("diffeq")
	res, err := Run(b, Options{Exact: true, Deadlines: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r.Exact < 0 {
			t.Fatalf("exact column missing at L=%d", r.Deadline)
		}
		if r.Exact > r.Repeat || r.Exact > r.Once || r.Exact > r.Greedy {
			t.Fatalf("exact %d worse than a heuristic (g=%d o=%d r=%d)",
				r.Exact, r.Greedy, r.Once, r.Repeat)
		}
	}
}

func TestRenderTableAndCSV(t *testing.T) {
	t1, err := Table1(Options{Deadlines: 2})
	if err != nil {
		t.Fatal(err)
	}
	txt := RenderTable(t1)
	for _, want := range []string{"4-stage-lattice", "Tree_Assign", "Average reduction"} {
		if !strings.Contains(txt, want) {
			t.Errorf("table missing %q:\n%s", want, txt)
		}
	}
	t2, err := Table2(Options{Deadlines: 2})
	if err != nil {
		t.Fatal(err)
	}
	txt2 := RenderTable(t2)
	if strings.Contains(txt2, "Tree_Assign") {
		t.Error("Table 2 must not have a Tree_Assign column")
	}
	if !strings.Contains(txt2, "duplicated nodes") {
		t.Error("Table 2 header missing duplicated-node count")
	}
	csv := RenderCSV(append(t1, t2...))
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 1+6*2 {
		t.Fatalf("CSV has %d lines, want 13", len(lines))
	}
	if !strings.HasPrefix(lines[0], "benchmark,") {
		t.Fatalf("CSV header = %q", lines[0])
	}
}

func TestRunIsDeterministicPerSeed(t *testing.T) {
	b, _ := benchdfg.Lookup("elliptic")
	r1, err := Run(b, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(b, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if RenderCSV([]Result{r1}) != RenderCSV([]Result{r2}) {
		t.Fatal("same seed produced different results")
	}
	r3, err := Run(b, Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if RenderCSV([]Result{r1}) == RenderCSV([]Result{r3}) {
		t.Fatal("different seeds produced identical results (suspicious)")
	}
}
