package exper

import (
	"os"
	"testing"
)

// TestGoldenTables locks the complete Tables 1-2 output for the default
// seed: any change to the algorithms, the benchmark DFGs, the random-table
// generator or the deadline ladder shows up as a diff here. Regenerate the
// golden file deliberately (see EXPERIMENTS.md) when such a change is
// intended.
func TestGoldenTables(t *testing.T) {
	t1, err := Table1(Options{})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Table2(Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := RenderCSV(append(t1, t2...))
	want, err := os.ReadFile("testdata/tables_seed2004.csv")
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("experiment output drifted from the golden file.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
