package exper

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"hetsynth/internal/texttab"
)

var errNeedSeed = errors.New("exper: need at least one seed")

// SeedStats aggregates the headline reductions over several random-table
// seeds: the robustness check that the conclusions do not hinge on one
// lucky draw (the paper reports a single unpublished draw; we report the
// distribution).
type SeedStats struct {
	Seeds      int
	MeanOnce   float64
	MeanRepeat float64
	StdOnce    float64
	StdRepeat  float64
	MinRepeat  float64
	MaxRepeat  float64
}

// MultiSeed reruns the full Tables 1+2 protocol for `seeds` different
// random tables (seeds baseSeed, baseSeed+1, ...) and aggregates the
// average reductions.
func MultiSeed(baseSeed int64, seeds int, opt Options) (SeedStats, error) {
	if seeds < 1 {
		return SeedStats{}, errNeedSeed
	}
	var onces, repeats []float64
	for i := 0; i < seeds; i++ {
		o := opt
		o.Seed = baseSeed + int64(i)
		t1, err := Table1(o)
		if err != nil {
			return SeedStats{}, err
		}
		t2, err := Table2(o)
		if err != nil {
			return SeedStats{}, err
		}
		avgOnce, avgRepeat := Summary(append(t1, t2...))
		onces = append(onces, avgOnce)
		repeats = append(repeats, avgRepeat)
	}
	st := SeedStats{Seeds: seeds, MinRepeat: math.Inf(1), MaxRepeat: math.Inf(-1)}
	st.MeanOnce, st.StdOnce = meanStd(onces)
	st.MeanRepeat, st.StdRepeat = meanStd(repeats)
	for _, r := range repeats {
		st.MinRepeat = math.Min(st.MinRepeat, r)
		st.MaxRepeat = math.Max(st.MaxRepeat, r)
	}
	return st, nil
}

func meanStd(xs []float64) (mean, std float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) > 1 {
		for _, x := range xs {
			std += (x - mean) * (x - mean)
		}
		std = math.Sqrt(std / float64(len(xs)-1))
	}
	return mean, std
}

// RenderSeedStats renders the robustness summary.
func RenderSeedStats(st SeedStats) string {
	tbl := texttab.New("metric", "mean", "stddev", "min", "max").AlignRight(1, 2, 3, 4)
	tbl.Row("once reduction", pct(st.MeanOnce), pct(st.StdOnce), "", "")
	tbl.Row("repeat reduction", pct(st.MeanRepeat), pct(st.StdRepeat), pct(st.MinRepeat), pct(st.MaxRepeat))
	var b strings.Builder
	fmt.Fprintf(&b, "over %d random-table seeds:\n", st.Seeds)
	b.WriteString(tbl.String())
	return b.String()
}

func pct(x float64) string { return fmt.Sprintf("%.1f%%", x) }
