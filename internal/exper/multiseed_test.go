package exper

import (
	"strings"
	"testing"
)

func TestMultiSeedRobustness(t *testing.T) {
	st, err := MultiSeed(100, 5, Options{Deadlines: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.Seeds != 5 {
		t.Fatalf("seeds = %d", st.Seeds)
	}
	// The qualitative conclusion must hold across every seed: Repeat's
	// average reduction stays positive and its mean is meaningfully so.
	if st.MinRepeat <= 0 {
		t.Fatalf("some seed gave non-positive repeat reduction: min %.2f%%", st.MinRepeat)
	}
	if st.MeanRepeat < 5 {
		t.Fatalf("mean repeat reduction %.2f%% too small", st.MeanRepeat)
	}
	if st.MeanRepeat+1e-9 < st.MeanOnce {
		t.Fatalf("repeat mean %.2f%% below once mean %.2f%%", st.MeanRepeat, st.MeanOnce)
	}
	if st.StdRepeat < 0 || st.MaxRepeat < st.MinRepeat {
		t.Fatalf("inconsistent stats: %+v", st)
	}
	out := RenderSeedStats(st)
	for _, want := range []string{"5 random-table seeds", "repeat reduction", "stddev"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestMultiSeedValidation(t *testing.T) {
	if _, err := MultiSeed(1, 0, Options{}); err == nil {
		t.Fatal("zero seeds accepted")
	}
}
