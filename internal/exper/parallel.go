package exper

import (
	"context"
	"runtime"
	"sync"

	"hetsynth/internal/benchdfg"
)

// RunAllParallel is RunAll with the per-benchmark runs spread over worker
// goroutines (the runs are independent: each builds its own graph and
// random table from the shared seed). Results come back in input order and
// are bit-identical to the serial harness; the only difference is wall
// time on multicore machines. workers <= 0 uses GOMAXPROCS.
func RunAllParallel(benches []benchdfg.Benchmark, opt Options, workers int) ([]Result, error) {
	return RunAllParallelCtx(context.Background(), benches, opt, workers)
}

// RunAllParallelCtx is RunAllParallel with cooperative cancellation: no new
// benchmark starts after the context dies, running ones unwind through
// RunCtx, and the workers are always joined before returning.
func RunAllParallelCtx(ctx context.Context, benches []benchdfg.Benchmark, opt Options, workers int) ([]Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(benches) {
		workers = len(benches)
	}
	if workers <= 1 {
		return RunAllCtx(ctx, benches, opt)
	}

	results := make([]Result, len(benches))
	errs := make([]error, len(benches))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				results[i], errs[i] = RunCtx(ctx, benches[i], opt)
			}
		}()
	}
	for i := range benches {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// MultiSeedParallel is MultiSeed with one goroutine per seed batch; the
// aggregation is order-independent, so the statistics match the serial
// version exactly.
func MultiSeedParallel(baseSeed int64, seeds int, opt Options, workers int) (SeedStats, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 1 || seeds <= 1 {
		return MultiSeed(baseSeed, seeds, opt)
	}
	if seeds < 1 {
		return SeedStats{}, errNeedSeed
	}

	type outcome struct {
		once, repeat float64
		err          error
	}
	outcomes := make([]outcome, seeds)
	jobs := make(chan int)
	var wg sync.WaitGroup
	if workers > seeds {
		workers = seeds
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				o := opt
				o.Seed = baseSeed + int64(i)
				t1, err := Table1(o)
				if err != nil {
					outcomes[i].err = err
					continue
				}
				t2, err := Table2(o)
				if err != nil {
					outcomes[i].err = err
					continue
				}
				outcomes[i].once, outcomes[i].repeat = Summary(append(t1, t2...))
			}
		}()
	}
	for i := 0; i < seeds; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	var onces, repeats []float64
	for _, o := range outcomes {
		if o.err != nil {
			return SeedStats{}, o.err
		}
		onces = append(onces, o.once)
		repeats = append(repeats, o.repeat)
	}
	st := SeedStats{Seeds: seeds}
	st.MeanOnce, st.StdOnce = meanStd(onces)
	st.MeanRepeat, st.StdRepeat = meanStd(repeats)
	st.MinRepeat, st.MaxRepeat = repeats[0], repeats[0]
	for _, r := range repeats[1:] {
		if r < st.MinRepeat {
			st.MinRepeat = r
		}
		if r > st.MaxRepeat {
			st.MaxRepeat = r
		}
	}
	return st, nil
}
