package exper

import (
	"testing"

	"hetsynth/internal/benchdfg"
)

func TestRunAllParallelMatchesSerial(t *testing.T) {
	opt := Options{Deadlines: 3}
	serial, err := RunAll(benchdfg.Paper(), opt)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunAllParallel(benchdfg.Paper(), opt, 4)
	if err != nil {
		t.Fatal(err)
	}
	if RenderCSV(serial) != RenderCSV(parallel) {
		t.Fatal("parallel harness diverged from serial output")
	}
	// Degenerate worker counts fall back to serial.
	one, err := RunAllParallel(benchdfg.Paper(), opt, 1)
	if err != nil {
		t.Fatal(err)
	}
	if RenderCSV(one) != RenderCSV(serial) {
		t.Fatal("workers=1 diverged")
	}
}

func TestMultiSeedParallelMatchesSerial(t *testing.T) {
	opt := Options{Deadlines: 3}
	serial, err := MultiSeed(50, 4, opt)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := MultiSeedParallel(50, 4, opt, 4)
	if err != nil {
		t.Fatal(err)
	}
	if serial != parallel {
		t.Fatalf("stats diverged:\nserial   %+v\nparallel %+v", serial, parallel)
	}
	if _, err := MultiSeedParallel(1, 0, opt, 4); err == nil {
		t.Fatal("zero seeds accepted")
	}
}
