package exper

import (
	"fmt"
	"math/rand"
	"strings"

	"hetsynth/internal/benchdfg"
	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
	"hetsynth/internal/hap"
	"hetsynth/internal/sched"
	"hetsynth/internal/texttab"
)

// Phase2Row compares the three phase-2 schedulers on one benchmark at one
// deadline: total FU counts (lower is better) plus the register demand of
// the Min_R schedule.
type Phase2Row struct {
	Bench     string
	Deadline  int
	LowerB    int // Lower_Bound_R total
	MinR      int // Min_R_Scheduling total
	FDS       int // force-directed scheduling total
	Search    int // config-search total
	Registers int // register demand of the Min_R schedule, non-overlapped
}

// Phase2 runs the phase-2 comparison over the paper benchmarks: assign
// with DFG_Assign_Repeat, then schedule with Min_R_Scheduling,
// force-directed scheduling and the config search, recording total FU
// counts. This experiment has no counterpart in the paper (which only
// reports Min_R configurations); it quantifies how the paper's scheduler
// compares against the classic alternative it cites ([15]).
func Phase2(opt Options) ([]Phase2Row, error) {
	opt = opt.withDefaults()
	var out []Phase2Row
	for _, b := range benchdfg.Paper() {
		g := b.Build()
		rng := rand.New(rand.NewSource(opt.Seed))
		tab := fu.RandomTable(rng, g.N(), opt.Types)
		deadlines, err := Deadlines(g, tab, opt.Deadlines)
		if err != nil {
			return nil, err
		}
		for _, L := range deadlines {
			p := hap.Problem{Graph: g, Table: tab, Deadline: L}
			sol, err := hap.AssignRepeat(p)
			if err != nil {
				return nil, fmt.Errorf("exper: %s at L=%d: %w", b.Name, L, err)
			}
			lb, err := sched.LowerBoundR(g, tab, sol.Assign, L)
			if err != nil {
				return nil, err
			}
			ms, cfgM, err := sched.MinRSchedule(g, tab, sol.Assign, L)
			if err != nil {
				return nil, err
			}
			_, cfgF, err := sched.ForceDirected(g, tab, sol.Assign, L)
			if err != nil {
				return nil, err
			}
			_, cfgS, err := sched.MinConfigSearch(g, tab, sol.Assign, L)
			if err != nil {
				return nil, err
			}
			regs, err := sched.RegisterDemand(g, ms, ms.Length)
			if err != nil {
				return nil, err
			}
			out = append(out, Phase2Row{
				Bench: b.Name, Deadline: L,
				LowerB: lb.Total(), MinR: cfgM.Total(),
				FDS: cfgF.Total(), Search: cfgS.Total(),
				Registers: regs,
			})
		}
	}
	return out, nil
}

// RenderPhase2 renders the comparison as a text table.
func RenderPhase2(rows []Phase2Row) string {
	tbl := texttab.New("benchmark", "T", "LowerBound", "Min_R", "ForceDir", "Search", "Registers").
		AlignRight(1, 2, 3, 4, 5, 6)
	last := ""
	for _, r := range rows {
		if last != "" && r.Bench != last {
			tbl.Separator()
		}
		last = r.Bench
		tbl.Row(r.Bench, r.Deadline, r.LowerB, r.MinR, r.FDS, r.Search, r.Registers)
	}
	return tbl.String()
}

// RandomSuiteRow aggregates one (size, density) random-DAG population.
type RandomSuiteRow struct {
	Nodes     int
	Density   float64
	Instances int
	// Average percentage reductions vs the greedy baseline.
	AvgOnce   float64
	AvgRepeat float64
	// OptimalHits counts instances (of those small enough to solve
	// exactly) where Repeat matched the optimum; OptTried is the base.
	OptimalHits int
	OptTried    int
}

// RandomSuite measures the heuristics on random DAG populations — the
// generality check the paper's six fixed benchmarks cannot give. Each
// population draws `instances` DAGs of the given size/density with fresh
// random tables; deadlines sit one third above the minimum makespan.
func RandomSuite(seed int64, sizes []int, density float64, instances int) ([]RandomSuiteRow, error) {
	rng := rand.New(rand.NewSource(seed))
	var out []RandomSuiteRow
	for _, n := range sizes {
		row := RandomSuiteRow{Nodes: n, Density: density, Instances: instances}
		for i := 0; i < instances; i++ {
			g := dfg.RandomDAG(rng, n, density)
			tab := fu.RandomTable(rng, n, 3)
			min, err := hap.MinMakespan(g, tab)
			if err != nil {
				return nil, err
			}
			p := hap.Problem{Graph: g, Table: tab, Deadline: min + min/3 + 1}
			gs, err := hap.Greedy(p)
			if err != nil {
				return nil, err
			}
			once, err := hap.AssignOnce(p)
			if err != nil {
				return nil, err
			}
			rep, err := hap.AssignRepeat(p)
			if err != nil {
				return nil, err
			}
			row.AvgOnce += 100 * float64(gs.Cost-once.Cost) / float64(gs.Cost)
			row.AvgRepeat += 100 * float64(gs.Cost-rep.Cost) / float64(gs.Cost)
			if n <= 14 {
				if opt, err := hap.Exact(p, hap.ExactOptions{}); err == nil {
					row.OptTried++
					if opt.Cost == rep.Cost {
						row.OptimalHits++
					}
				}
			}
		}
		row.AvgOnce /= float64(instances)
		row.AvgRepeat /= float64(instances)
		out = append(out, row)
	}
	return out, nil
}

// RenderRandomSuite renders the population results.
func RenderRandomSuite(rows []RandomSuiteRow) string {
	tbl := texttab.New("nodes", "density", "instances", "once", "repeat", "repeat=optimal").
		AlignRight(0, 1, 2, 3, 4, 5)
	for _, r := range rows {
		opt := "n/a"
		if r.OptTried > 0 {
			opt = fmt.Sprintf("%d/%d", r.OptimalHits, r.OptTried)
		}
		tbl.Row(r.Nodes, fmt.Sprintf("%.2f", r.Density), r.Instances,
			fmt.Sprintf("%.1f%%", r.AvgOnce), fmt.Sprintf("%.1f%%", r.AvgRepeat), opt)
	}
	var b strings.Builder
	b.WriteString(tbl.String())
	return b.String()
}
