package exper

import (
	"strings"
	"testing"
)

func TestPhase2Comparison(t *testing.T) {
	rows, err := Phase2(Options{Deadlines: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6*3 {
		t.Fatalf("%d rows, want 18", len(rows))
	}
	for _, r := range rows {
		// Every scheduler's total must be at least the lower bound's.
		if r.MinR < r.LowerB || r.FDS < r.LowerB || r.Search < r.LowerB {
			t.Errorf("%s T=%d: some scheduler beat the lower bound: %+v", r.Bench, r.Deadline, r)
		}
		if r.Registers < 1 {
			t.Errorf("%s T=%d: register demand %d", r.Bench, r.Deadline, r.Registers)
		}
	}
	out := RenderPhase2(rows)
	for _, want := range []string{"Min_R", "ForceDir", "Search", "elliptic", "Registers"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestRandomSuite(t *testing.T) {
	rows, err := RandomSuite(7, []int{8, 14}, 0.3, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.AvgRepeat < 0 {
			t.Errorf("n=%d: repeat average %.1f%% negative (worse than greedy on average)", r.Nodes, r.AvgRepeat)
		}
		if r.AvgRepeat+1e-9 < r.AvgOnce {
			t.Errorf("n=%d: repeat %.2f%% below once %.2f%%", r.Nodes, r.AvgRepeat, r.AvgOnce)
		}
		if r.OptTried > 0 && r.OptimalHits*2 < r.OptTried {
			t.Errorf("n=%d: repeat matched optimum only %d/%d times", r.Nodes, r.OptimalHits, r.OptTried)
		}
	}
	out := RenderRandomSuite(rows)
	if !strings.Contains(out, "repeat=optimal") {
		t.Errorf("render missing optimal column:\n%s", out)
	}
}
