// Package expr compiles small DSP kernel descriptions into data-flow
// graphs: a frontend so that users can write the computation the way the
// paper's benchmarks are specified in the literature —
//
//	# one Euler step of the differential equation solver
//	u' = u - 3*x*(u*dx) - 3*y*dx;
//	x' = x + dx;
//	y' = y + u*dx;
//
// — instead of hand-wiring nodes and edges.
//
// Language:
//
//   - a program is a list of assignments "name = expression;" (semicolon
//     or newline terminated; "#" starts a line comment);
//   - expressions use +, -, * (with the usual precedence), parentheses
//     and unary minus;
//   - an identifier names either a signal defined by some assignment
//     (its uses become precedence edges from the defining operation) or,
//     if never assigned, an external input, which contributes no node;
//   - numeric literals are external constants (no node);
//   - "name@d" reads the value a signal had d iterations ago: the edge it
//     induces carries d delays, which is how loop-carried dependences
//     (filter state) are expressed. Signals may be used before they are
//     defined; only zero-delay cycles are rejected.
//
// Every arithmetic operator becomes one DFG node with op class "mul",
// "add", "sub" or "neg", ready for the heterogeneous assignment flow.
package expr

import (
	"fmt"
	"strings"

	"hetsynth/internal/dfg"
)

// Program is a compiled kernel.
type Program struct {
	Graph *dfg.Graph
	// Signals maps each assigned name to the node computing it.
	Signals map[string]dfg.NodeID
	// Inputs lists the external identifiers (used but never assigned),
	// sorted by first use.
	Inputs []string
}

// Compile parses and compiles a kernel description.
func Compile(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmts, err := p.parseProgram()
	if err != nil {
		return nil, err
	}
	return build(stmts)
}

// ---- lexer ----

type tokKind int

const (
	tokIdent tokKind = iota
	tokNumber
	tokAssign // =
	tokPlus   // +
	tokMinus  // -
	tokStar   // *
	tokLParen // (
	tokRParen // )
	tokAt     // @
	tokSemi   // ; or newline
	tokEOF
)

type token struct {
	kind tokKind
	text string
	line int
}

func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	emit := func(k tokKind, text string) { toks = append(toks, token{kind: k, text: text, line: line}) }
	for i < len(src) {
		c := src[i]
		switch {
		case c == '#': // comment to end of line
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '\n':
			// Newlines terminate statements like semicolons, but only when
			// a statement is in progress (avoids empty-statement noise).
			if n := len(toks); n > 0 && toks[n-1].kind != tokSemi {
				emit(tokSemi, ";")
			}
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == ';':
			if n := len(toks); n > 0 && toks[n-1].kind != tokSemi {
				emit(tokSemi, ";")
			}
			i++
		case c == '=':
			emit(tokAssign, "=")
			i++
		case c == '+':
			emit(tokPlus, "+")
			i++
		case c == '-':
			emit(tokMinus, "-")
			i++
		case c == '*':
			emit(tokStar, "*")
			i++
		case c == '(':
			emit(tokLParen, "(")
			i++
		case c == ')':
			emit(tokRParen, ")")
			i++
		case c == '@':
			emit(tokAt, "@")
			i++
		case isDigit(c):
			j := i
			for j < len(src) && (isDigit(src[j]) || src[j] == '.') {
				j++
			}
			emit(tokNumber, src[i:j])
			i = j
		case isIdentStart(c):
			j := i
			for j < len(src) && isIdentPart(src[j]) {
				j++
			}
			emit(tokIdent, src[i:j])
			i = j
		default:
			return nil, fmt.Errorf("expr: line %d: unexpected character %q", line, c)
		}
	}
	if n := len(toks); n > 0 && toks[n-1].kind != tokSemi {
		emit(tokSemi, ";")
	}
	toks = append(toks, token{kind: tokEOF, line: line})
	return toks, nil
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
func isIdentPart(c byte) bool  { return isIdentStart(c) || isDigit(c) || c == '\'' }

// ---- parser ----

// ast nodes: binary op, unary neg, reference, constant.
type ast interface{ astNode() }

type binOp struct {
	op   string // "add", "sub", "mul"
	l, r ast
}
type unOp struct {
	op string // "neg"
	x  ast
}
type ref struct {
	name  string
	delay int
	line  int
}
type lit struct{ text string }

func (binOp) astNode() {}
func (unOp) astNode()  {}
func (ref) astNode()   {}
func (lit) astNode()   {}

type stmt struct {
	name string
	rhs  ast
	line int
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) accept(k tokKind) bool {
	if p.peek().kind == k {
		p.pos++
		return true
	}
	return false
}

func (p *parser) parseProgram() ([]stmt, error) {
	var stmts []stmt
	for {
		for p.accept(tokSemi) {
		}
		if p.peek().kind == tokEOF {
			break
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	if len(stmts) == 0 {
		return nil, fmt.Errorf("expr: empty program")
	}
	return stmts, nil
}

func (p *parser) parseStmt() (stmt, error) {
	t := p.next()
	if t.kind != tokIdent {
		return stmt{}, fmt.Errorf("expr: line %d: expected signal name, got %q", t.line, t.text)
	}
	if eq := p.next(); eq.kind != tokAssign {
		return stmt{}, fmt.Errorf("expr: line %d: expected '=' after %q, got %q", t.line, t.text, eq.text)
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return stmt{}, err
	}
	if end := p.next(); end.kind != tokSemi && end.kind != tokEOF {
		return stmt{}, fmt.Errorf("expr: line %d: expected end of statement, got %q", end.line, end.text)
	}
	return stmt{name: t.text, rhs: rhs, line: t.line}, nil
}

func (p *parser) parseExpr() (ast, error) {
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokPlus):
			r, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			l = binOp{op: "add", l: l, r: r}
		case p.accept(tokMinus):
			r, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			l = binOp{op: "sub", l: l, r: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseTerm() (ast, error) {
	l, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for p.accept(tokStar) {
		r, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		l = binOp{op: "mul", l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseFactor() (ast, error) {
	t := p.next()
	switch t.kind {
	case tokMinus:
		x, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return unOp{op: "neg", x: x}, nil
	case tokLParen:
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if !p.accept(tokRParen) {
			return nil, fmt.Errorf("expr: line %d: missing ')'", t.line)
		}
		return x, nil
	case tokNumber:
		return lit{text: t.text}, nil
	case tokIdent:
		r := ref{name: t.text, line: t.line}
		if p.accept(tokAt) {
			d := p.next()
			if d.kind != tokNumber || strings.Contains(d.text, ".") {
				return nil, fmt.Errorf("expr: line %d: '@' needs an integer delay, got %q", t.line, d.text)
			}
			n := 0
			for _, c := range d.text {
				n = n*10 + int(c-'0')
			}
			if n < 1 {
				return nil, fmt.Errorf("expr: line %d: delay must be >= 1 (use the bare name for the current value)", t.line)
			}
			r.delay = n
		}
		return r, nil
	default:
		return nil, fmt.Errorf("expr: line %d: unexpected %q in expression", t.line, t.text)
	}
}

// ---- code generation ----

func build(stmts []stmt) (*Program, error) {
	g := dfg.New()
	signals := make(map[string]dfg.NodeID)
	defined := make(map[string]bool)
	for _, s := range stmts {
		if defined[s.name] {
			return nil, fmt.Errorf("expr: line %d: signal %q assigned twice", s.line, s.name)
		}
		defined[s.name] = true
	}

	counters := map[string]int{}
	newNode := func(op string) dfg.NodeID {
		counters[op]++
		return g.MustAddNode(fmt.Sprintf("%s%d", op, counters[op]), op)
	}

	// Pass one: materialize nodes for every operator and remember, per
	// statement, the root node; signal-to-signal aliases resolve later.
	type pendingEdge struct {
		fromSignal string
		to         dfg.NodeID
		delay      int
		line       int
	}
	var edges []pendingEdge
	var inputs []string
	seenInput := map[string]bool{}

	// operand wires the value of an ast into consumer `to`.
	var genExpr func(a ast) (node dfg.NodeID, signal string, isValue bool, err error)
	operand := func(a ast, to dfg.NodeID) error {
		node, signal, isValue, err := genExpr(a)
		if err != nil {
			return err
		}
		switch {
		case !isValue:
			// external input or constant: no edge
			return nil
		case signal != "":
			edges = append(edges, pendingEdge{fromSignal: signal, to: to, delay: delayOf(a)})
			return nil
		default:
			return g.AddEdge(node, to, 0)
		}
	}
	genExpr = func(a ast) (dfg.NodeID, string, bool, error) {
		switch x := a.(type) {
		case lit:
			return dfg.None, "", false, nil
		case ref:
			if !defined[x.name] {
				if x.delay > 0 {
					return dfg.None, "", false, fmt.Errorf("expr: line %d: delayed read of external input %q (inputs have no producing node)", x.line, x.name)
				}
				if !seenInput[x.name] {
					seenInput[x.name] = true
					inputs = append(inputs, x.name)
				}
				return dfg.None, "", false, nil
			}
			return dfg.None, x.name, true, nil
		case unOp:
			n := newNode(x.op)
			if err := operand(x.x, n); err != nil {
				return dfg.None, "", false, err
			}
			return n, "", true, nil
		case binOp:
			n := newNode(x.op)
			if err := operand(x.l, n); err != nil {
				return dfg.None, "", false, err
			}
			if err := operand(x.r, n); err != nil {
				return dfg.None, "", false, err
			}
			return n, "", true, nil
		}
		return dfg.None, "", false, fmt.Errorf("expr: unknown ast node %T", a)
	}

	aliases := map[string]string{} // signal -> signal it aliases
	for _, s := range stmts {
		if r, ok := s.rhs.(ref); ok && r.delay > 0 {
			return nil, fmt.Errorf("expr: line %d: %q aliases a delayed value; read %s@%d where it is used instead", s.line, s.name, r.name, r.delay)
		}
		node, signal, isValue, err := genExpr(s.rhs)
		if err != nil {
			return nil, err
		}
		switch {
		case !isValue:
			return nil, fmt.Errorf("expr: line %d: %q is a constant or bare input; nothing to synthesize", s.line, s.name)
		case signal != "":
			aliases[s.name] = signal
		default:
			signals[s.name] = node
		}
	}
	// Resolve alias chains (a = b; b = expr).
	resolve := func(name string) (dfg.NodeID, error) {
		seen := map[string]bool{}
		for {
			if id, ok := signals[name]; ok {
				return id, nil
			}
			next, ok := aliases[name]
			if !ok || seen[name] {
				return dfg.None, fmt.Errorf("expr: signal %q has no defining operation (alias cycle?)", name)
			}
			seen[name] = true
			name = next
		}
	}
	for name := range aliases {
		id, err := resolve(name)
		if err != nil {
			return nil, err
		}
		signals[name] = id
	}
	// Pass two: wire signal reads.
	for _, e := range edges {
		from, err := resolve(e.fromSignal)
		if err != nil {
			return nil, err
		}
		if err := g.AddEdge(from, e.to, e.delay); err != nil {
			return nil, err
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("expr: combinational loop (add a delay with '@'): %w", err)
	}
	return &Program{Graph: g, Signals: signals, Inputs: inputs}, nil
}

func delayOf(a ast) int {
	if r, ok := a.(ref); ok {
		return r.delay
	}
	return 0
}
