package expr

import (
	"sort"
	"strings"
	"testing"

	"hetsynth/internal/dfg"
)

func TestCompileDiffEqKernel(t *testing.T) {
	p, err := Compile(`
		# one Euler step of y'' + 3xy' + 3y = 0
		u' = u - 3*x*(u*dx) - 3*y*dx
		x' = x + dx
		y' = y + u*dx
	`)
	if err != nil {
		t.Fatal(err)
	}
	g := p.Graph
	// u': muls 3*x, u*dx, (3x)*(u dx), 3*y, (3y)*dx -> 5 muls; subs 2.
	// x': 1 add. y': 1 mul (u*dx again - no CSE) + 1 add.
	counts := map[string]int{}
	for _, n := range g.Nodes() {
		counts[n.Op]++
	}
	if counts["mul"] != 6 || counts["sub"] != 2 || counts["add"] != 2 {
		t.Fatalf("op counts = %v, want 6 mul / 2 sub / 2 add", counts)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, sig := range []string{"u'", "x'", "y'"} {
		if _, ok := p.Signals[sig]; !ok {
			t.Errorf("signal %q not bound", sig)
		}
	}
	ins := append([]string(nil), p.Inputs...)
	sort.Strings(ins)
	if strings.Join(ins, ",") != "dx,u,x,y" {
		t.Fatalf("inputs = %v", ins)
	}
}

func TestCompilePrecedence(t *testing.T) {
	// a + b*c: the mul feeds the add.
	p, err := Compile(`y = a + b*c`)
	if err != nil {
		t.Fatal(err)
	}
	g := p.Graph
	if g.N() != 2 {
		t.Fatalf("%d nodes, want 2", g.N())
	}
	mul, _ := g.Lookup("mul1")
	add, _ := g.Lookup("add1")
	succ := g.Succ(mul)
	if len(succ) != 1 || succ[0] != add {
		t.Fatalf("mul does not feed add: %s", g.String())
	}
	if p.Signals["y"] != add {
		t.Fatalf("y bound to %d, want add %d", p.Signals["y"], add)
	}
}

func TestCompileParenthesesChangeShape(t *testing.T) {
	flat, err := Compile(`y = a*b + c`)
	if err != nil {
		t.Fatal(err)
	}
	grouped, err := Compile(`y = a*(b + c)`)
	if err != nil {
		t.Fatal(err)
	}
	// a*b + c: mul then add; a*(b+c): add then mul.
	fm, _ := flat.Graph.Lookup("mul1")
	if flat.Graph.OutDegree(fm) != 1 {
		t.Fatal("flat: mul should feed add")
	}
	ga, _ := grouped.Graph.Lookup("add1")
	if grouped.Graph.OutDegree(ga) != 1 {
		t.Fatal("grouped: add should feed mul")
	}
}

func TestCompileUnaryMinus(t *testing.T) {
	p, err := Compile(`y = -a * b`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Graph.Lookup("neg1"); !ok {
		t.Fatalf("no neg node: %s", p.Graph.String())
	}
}

func TestCompileDelayedState(t *testing.T) {
	// A one-pole IIR: state = in + k*state@1. The feedback edge must
	// carry one delay, keeping the DAG portion acyclic.
	p, err := Compile(`state = in + k*state@1`)
	if err != nil {
		t.Fatal(err)
	}
	g := p.Graph
	if g.N() != 2 {
		t.Fatalf("%d nodes, want 2", g.N())
	}
	var feedback *dfg.Edge
	for _, e := range g.Edges() {
		if e.Delays > 0 {
			ec := e
			feedback = &ec
		}
	}
	if feedback == nil {
		t.Fatalf("no delayed edge: %s", g.String())
	}
	if g.Node(feedback.From).Name != "add1" || g.Node(feedback.To).Name != "mul1" || feedback.Delays != 1 {
		t.Fatalf("feedback edge wrong: %+v in %s", feedback, g.String())
	}
}

func TestCompileSignalChaining(t *testing.T) {
	// Later statements may read earlier signals and vice versa.
	p, err := Compile(`
		b = a + c
		d = b * e
		f = g * h
		i = f + d
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Graph.N() != 4 {
		t.Fatalf("%d nodes, want 4", p.Graph.N())
	}
	// b's add feeds d's mul.
	add1, _ := p.Graph.Lookup("add1")
	if p.Graph.OutDegree(add1) != 1 {
		t.Fatal("b not wired into d")
	}
}

func TestCompileForwardReference(t *testing.T) {
	p, err := Compile(`
		y = z * 2
		z = a + b
	`)
	if err != nil {
		t.Fatal(err)
	}
	addID := p.Signals["z"]
	mulID := p.Signals["y"]
	found := false
	for _, e := range p.Graph.Edges() {
		if e.From == addID && e.To == mulID {
			found = true
		}
	}
	if !found {
		t.Fatalf("forward reference not wired: %s", p.Graph.String())
	}
}

func TestCompileAliases(t *testing.T) {
	p, err := Compile(`
		sum = a + b
		out = sum
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Signals["out"] != p.Signals["sum"] {
		t.Fatal("alias not resolved to the same node")
	}
}

func TestCompileErrors(t *testing.T) {
	cases := map[string]string{
		"empty":              ``,
		"bad char":           `y = a $ b`,
		"missing rhs":        `y =`,
		"missing paren":      `y = (a + b`,
		"double assign":      "y = a + b\ny = a * b",
		"constant only":      `y = 3`,
		"bare input":         `y = x`,
		"zero delay at":      `y = a + y@0`,
		"fractional delay":   `y = a + y@1.5`,
		"delayed input":      `y = a + x@1`,
		"delayed alias":      "z = a + b\ny = z@1",
		"combinational loop": "a = b + 1*c\nc = a * d",
		"no assign":          `+ a b`,
		"alias cycle":        "a = b\nb = a",
	}
	for name, src := range cases {
		if _, err := Compile(src); err == nil {
			t.Errorf("%s: compiled without error: %q", name, src)
		}
	}
}

func TestCompileLineNumbersInErrors(t *testing.T) {
	_, err := Compile("a = b + c\nq = $")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error lacks line number: %v", err)
	}
}

func TestCompiledKernelIsSynthesizable(t *testing.T) {
	// The compiled lattice-stage kernel feeds straight into the paper's
	// flow (smoke test; full flows are exercised at the facade level).
	p, err := Compile(`
		e1 = x - k1*b0@1
		b1 = b0@1 - k1*e1
		b0 = e1 + 0.5*b1
	`)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Graph.N() == 0 || len(p.Inputs) == 0 {
		t.Fatal("degenerate kernel")
	}
}
