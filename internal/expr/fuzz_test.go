package expr

import (
	"testing"
)

// FuzzCompile checks that arbitrary input never panics the compiler and
// that accepted programs always yield structurally valid graphs with every
// signal bound. Run with `go test -fuzz=FuzzCompile ./internal/expr` to
// explore beyond the seed corpus.
func FuzzCompile(f *testing.F) {
	seeds := []string{
		"y = a + b",
		"u = u@1 - 3*x@1*(u@1*dx) - 3*y@1*dx\nx = x@1 + dx",
		"a = b\nb = c * d",
		"s = in + k*s@1;",
		"# comment only\ny = -(-a)*b",
		"y = ((((a))))",
		"x = 1 + y@2\ny = x * x",
		"' = ' + '",
		"y = a @ 1",
		"@@@",
		"y == a",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Compile(src)
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		if p.Graph == nil {
			t.Fatal("accepted program with nil graph")
		}
		if err := p.Graph.Validate(); err != nil {
			t.Fatalf("accepted program with invalid graph: %v", err)
		}
		for name, id := range p.Signals {
			if int(id) < 0 || int(id) >= p.Graph.N() {
				t.Fatalf("signal %q bound to out-of-range node %d", name, id)
			}
		}
	})
}
