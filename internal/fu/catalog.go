package fu

import (
	"fmt"
	"sort"
)

// Catalog bundles a named FU library with per-operation-class rows, the
// way vendor cell libraries ship: look one up by name, derive a Table for
// any graph via TableFor. The numbers are representative, not measured —
// they encode the structure the paper assumes (faster types cost more)
// with different spreads per catalog.
type Catalog struct {
	Name    string
	Library *Library
	// Ops maps an operation class to its per-type rows; "" is the
	// fallback row for unknown classes.
	Ops map[string]Rows
}

var catalogs = map[string]Catalog{
	// generic3 mirrors the paper's experimental setup: three anonymous FU
	// types, P1 fastest/most expensive, P3 slowest/cheapest, moderate
	// spread. Multipliers are uniformly slower than adders.
	"generic3": {
		Name: "generic3",
		Library: MustLibrary(
			Type{Name: "P1"}, Type{Name: "P2"}, Type{Name: "P3"},
		),
		Ops: map[string]Rows{
			"mul": {Times: []int{2, 4, 7}, Costs: []int64{32, 14, 4}},
			"add": {Times: []int{1, 2, 4}, Costs: []int64{12, 6, 2}},
			"sub": {Times: []int{1, 2, 4}, Costs: []int64{12, 6, 2}},
			"cmp": {Times: []int{1, 2, 3}, Costs: []int64{8, 4, 2}},
			"":    {Times: []int{1, 2, 4}, Costs: []int64{10, 5, 2}},
		},
	},
	// lowpower widens the energy spread: the slow types are an order of
	// magnitude cheaper, the regime where heterogeneous assignment pays
	// off most.
	"lowpower": {
		Name: "lowpower",
		Library: MustLibrary(
			Type{Name: "turbo"}, Type{Name: "nominal"}, Type{Name: "eco"},
		),
		Ops: map[string]Rows{
			"mul": {Times: []int{2, 5, 9}, Costs: []int64{90, 25, 6}},
			"add": {Times: []int{1, 3, 6}, Costs: []int64{30, 9, 2}},
			"sub": {Times: []int{1, 3, 6}, Costs: []int64{30, 9, 2}},
			"cmp": {Times: []int{1, 2, 4}, Costs: []int64{18, 6, 2}},
			"":    {Times: []int{1, 3, 6}, Costs: []int64{24, 8, 2}},
		},
	},
	// reliable models the §2 reliability regime: costs are scaled failure
	// probabilities (fast units fail more per executed step). Failure
	// rates are attached to the library so ReliabilityCosts can rebuild
	// the table from times alone.
	"reliable": {
		Name: "reliable",
		Library: MustLibrary(
			Type{Name: "fast", FailureRate: 4e-4},
			Type{Name: "mid", FailureRate: 1.5e-4},
			Type{Name: "slow", FailureRate: 0.5e-4},
		),
		Ops: map[string]Rows{
			"mul": {Times: []int{2, 4, 6}, Costs: []int64{800, 600, 300}},
			"add": {Times: []int{1, 2, 4}, Costs: []int64{400, 300, 200}},
			"sub": {Times: []int{1, 2, 4}, Costs: []int64{400, 300, 200}},
			"cmp": {Times: []int{1, 2, 3}, Costs: []int64{400, 300, 150}},
			"":    {Times: []int{1, 2, 4}, Costs: []int64{400, 300, 200}},
		},
	},
}

// Catalogs lists the available catalog names, sorted.
func Catalogs() []string {
	out := make([]string, 0, len(catalogs))
	for name := range catalogs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// LookupCatalog resolves a catalog by name.
func LookupCatalog(name string) (Catalog, error) {
	c, ok := catalogs[name]
	if !ok {
		return Catalog{}, fmt.Errorf("fu: unknown catalog %q (known: %v)", name, Catalogs())
	}
	return c, nil
}

// TableFor derives the per-node table for a graph with n nodes whose
// operation classes are given by opOf.
func (c Catalog) TableFor(n int, opOf func(v int) string) (*Table, error) {
	return OpClassTable(n, c.Library.K(), opOf, c.Ops)
}
