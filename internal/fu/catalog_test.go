package fu

import (
	"testing"
)

func TestCatalogsListedAndResolvable(t *testing.T) {
	names := Catalogs()
	if len(names) < 3 {
		t.Fatalf("only %d catalogs", len(names))
	}
	for _, name := range names {
		c, err := LookupCatalog(name)
		if err != nil {
			t.Fatal(err)
		}
		if c.Library == nil || c.Library.K() != 3 {
			t.Errorf("%s: bad library", name)
		}
		if _, ok := c.Ops[""]; !ok {
			t.Errorf("%s: no fallback op row", name)
		}
	}
	if _, err := LookupCatalog("nope"); err == nil {
		t.Fatal("unknown catalog resolved")
	}
}

func TestCatalogRowsAreMonotone(t *testing.T) {
	// Every catalog must respect the paper's structure: strictly
	// increasing times, strictly decreasing costs across types.
	for _, name := range Catalogs() {
		c, _ := LookupCatalog(name)
		for op, rows := range c.Ops {
			if len(rows.Times) != c.Library.K() || len(rows.Costs) != c.Library.K() {
				t.Fatalf("%s/%s: ragged rows", name, op)
			}
			for j := 1; j < c.Library.K(); j++ {
				if rows.Times[j] <= rows.Times[j-1] {
					t.Errorf("%s/%s: times not increasing: %v", name, op, rows.Times)
				}
				if rows.Costs[j] >= rows.Costs[j-1] {
					t.Errorf("%s/%s: costs not decreasing: %v", name, op, rows.Costs)
				}
			}
		}
	}
}

func TestCatalogTableFor(t *testing.T) {
	c, err := LookupCatalog("generic3")
	if err != nil {
		t.Fatal(err)
	}
	ops := []string{"mul", "add", "weird"}
	tab, err := c.TableFor(3, func(v int) string { return ops[v] })
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	if tab.Time[0][0] != 2 { // mul on P1
		t.Errorf("mul row wrong: %v", tab.Time[0])
	}
	if tab.Time[2][0] != 1 { // fallback row
		t.Errorf("fallback row wrong: %v", tab.Time[2])
	}
}

func TestReliableCatalogFailureRates(t *testing.T) {
	c, _ := LookupCatalog("reliable")
	fast := c.Library.Type(0)
	slow := c.Library.Type(2)
	if fast.FailureRate <= slow.FailureRate {
		t.Fatalf("fast rate %g should exceed slow rate %g", fast.FailureRate, slow.FailureRate)
	}
}
