// Package fu models libraries of heterogeneous functional-unit (FU) types
// and the per-node execution-time/cost tables the assignment algorithms
// consume.
//
// A Library describes the K available FU types (the paper's P1..PK). A
// Table binds a concrete graph to the library: Time[v][k] and Cost[v][k]
// give the execution time (in control steps) and execution cost of node v
// when it runs on an FU of type k. The cost dimension is deliberately
// abstract — the paper uses the same machinery for energy, monetary cost
// and reliability cost (see ReliabilityCosts).
package fu

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// TypeID indexes an FU type within a Library: 0..K-1.
type TypeID int

// Type describes one FU type.
type Type struct {
	Name string
	// FailureRate is the per-time-unit failure rate λ used by the
	// reliability cost model; zero when reliability is not modeled.
	FailureRate float64
}

// Library is an ordered set of FU types.
type Library struct {
	types []Type
}

// NewLibrary builds a library from the given type descriptors.
func NewLibrary(types ...Type) (*Library, error) {
	if len(types) == 0 {
		return nil, errors.New("fu: library needs at least one FU type")
	}
	seen := make(map[string]bool, len(types))
	for _, ft := range types {
		if ft.Name == "" {
			return nil, errors.New("fu: empty FU type name")
		}
		if seen[ft.Name] {
			return nil, fmt.Errorf("fu: duplicate FU type name %q", ft.Name)
		}
		if ft.FailureRate < 0 {
			return nil, fmt.Errorf("fu: negative failure rate for %q", ft.Name)
		}
		seen[ft.Name] = true
	}
	return &Library{types: append([]Type(nil), types...)}, nil
}

// MustLibrary is NewLibrary for hand-built libraries; it panics on error.
func MustLibrary(types ...Type) *Library {
	lib, err := NewLibrary(types...)
	if err != nil {
		panic(err)
	}
	return lib
}

// StandardLibrary returns the paper's default three-type library: P1 is the
// quickest and most expensive type, P3 the slowest and cheapest.
func StandardLibrary() *Library {
	return MustLibrary(Type{Name: "P1"}, Type{Name: "P2"}, Type{Name: "P3"})
}

// K reports the number of FU types.
func (l *Library) K() int { return len(l.types) }

// Type returns the descriptor of type k.
func (l *Library) Type(k TypeID) Type {
	if k < 0 || int(k) >= len(l.types) {
		panic(fmt.Sprintf("fu: invalid type id %d (library has %d types)", k, len(l.types)))
	}
	return l.types[k]
}

// Name is shorthand for Type(k).Name.
func (l *Library) Name(k TypeID) string { return l.Type(k).Name }

// Lookup resolves a type name.
func (l *Library) Lookup(name string) (TypeID, bool) {
	for i, t := range l.types {
		if t.Name == name {
			return TypeID(i), true
		}
	}
	return -1, false
}

// Table holds the per-(node, type) execution times and costs for one graph.
// Index [v][k]: node ID v, FU type k.
type Table struct {
	Time [][]int   // control steps; must be >= 1
	Cost [][]int64 // abstract cost; must be >= 0
}

// NewTable allocates an n-node table for a k-type library, zero-filled.
// Callers must populate every entry; Validate enforces it.
func NewTable(n, k int) *Table {
	// All rows are carved out of two flat arenas, so building a table costs
	// four allocations instead of 2n+2. Rows are full-slice expressions, so
	// an append to one row can never clobber its neighbor.
	t := &Table{Time: make([][]int, n), Cost: make([][]int64, n)}
	timeArena := make([]int, n*k)
	costArena := make([]int64, n*k)
	for v := 0; v < n; v++ {
		t.Time[v] = timeArena[v*k : (v+1)*k : (v+1)*k]
		t.Cost[v] = costArena[v*k : (v+1)*k : (v+1)*k]
	}
	return t
}

// N reports the number of nodes covered by the table.
func (t *Table) N() int { return len(t.Time) }

// K reports the number of FU types covered by the table.
func (t *Table) K() int {
	if len(t.Time) == 0 {
		return 0
	}
	return len(t.Time[0])
}

// Set fills the row of node v: one (time, cost) pair per FU type.
func (t *Table) Set(v int, times []int, costs []int64) error {
	if v < 0 || v >= len(t.Time) {
		return fmt.Errorf("fu: node %d out of table range %d", v, len(t.Time))
	}
	if len(times) != t.K() || len(costs) != t.K() {
		return fmt.Errorf("fu: row for node %d has %d/%d entries, want %d", v, len(times), len(costs), t.K())
	}
	copy(t.Time[v], times)
	copy(t.Cost[v], costs)
	return nil
}

// MustSet is Set for hand-built tables; it panics on error.
func (t *Table) MustSet(v int, times []int, costs []int64) {
	if err := t.Set(v, times, costs); err != nil {
		panic(err)
	}
}

// Validate checks that the table is rectangular, that every execution time
// is at least one control step, and that no cost is negative.
func (t *Table) Validate() error {
	k := t.K()
	if k == 0 {
		return errors.New("fu: table covers no FU types")
	}
	for v := range t.Time {
		if len(t.Time[v]) != k || len(t.Cost[v]) != k {
			return fmt.Errorf("fu: ragged table row %d", v)
		}
		for j := 0; j < k; j++ {
			if t.Time[v][j] < 1 {
				return fmt.Errorf("fu: node %d type %d has execution time %d (< 1)", v, j, t.Time[v][j])
			}
			if t.Cost[v][j] < 0 {
				return fmt.Errorf("fu: node %d type %d has negative cost %d", v, j, t.Cost[v][j])
			}
		}
	}
	return nil
}

// Clone returns a deep copy.
func (t *Table) Clone() *Table {
	c := NewTable(t.N(), t.K())
	for v := range t.Time {
		copy(c.Time[v], t.Time[v])
		copy(c.Cost[v], t.Cost[v])
	}
	return c
}

// MinTime returns the smallest execution time of node v over all types.
func (t *Table) MinTime(v int) int {
	best := t.Time[v][0]
	for _, x := range t.Time[v][1:] {
		if x < best {
			best = x
		}
	}
	return best
}

// MaxTime returns the largest execution time of node v over all types.
func (t *Table) MaxTime(v int) int {
	best := t.Time[v][0]
	for _, x := range t.Time[v][1:] {
		if x > best {
			best = x
		}
	}
	return best
}

// MinCostType returns the type with the smallest cost for node v (ties: the
// faster type, then the lower index, so results are deterministic).
func (t *Table) MinCostType(v int) TypeID {
	best := TypeID(0)
	for k := 1; k < t.K(); k++ {
		switch {
		case t.Cost[v][k] < t.Cost[v][best]:
			best = TypeID(k)
		case t.Cost[v][k] == t.Cost[v][best] && t.Time[v][k] < t.Time[v][best]:
			best = TypeID(k)
		}
	}
	return best
}

// MinTimeType returns the type with the smallest execution time for node v
// (ties: the cheaper type, then the lower index).
func (t *Table) MinTimeType(v int) TypeID {
	best := TypeID(0)
	for k := 1; k < t.K(); k++ {
		switch {
		case t.Time[v][k] < t.Time[v][best]:
			best = TypeID(k)
		case t.Time[v][k] == t.Time[v][best] && t.Cost[v][k] < t.Cost[v][best]:
			best = TypeID(k)
		}
	}
	return best
}

// RandomTable draws a paper-style table for n nodes over a k-type library:
// execution times strictly increase with the type index while costs strictly
// decrease, matching "a FU with type P1 is the quickest with the highest
// cost and a FU with type PK is the slowest with the lowest cost". Times
// fall in [1, 3k]; costs start at 1..4 for the slowest type and climb by
// 1..16 per speed grade, giving the multi-x cost spread between fast and
// slow implementations that energy-model FU libraries show.
func RandomTable(rng *rand.Rand, n, k int) *Table {
	t := NewTable(n, k)
	for v := 0; v < n; v++ {
		tm := 1 + rng.Intn(3) // fastest type: 1..3 steps
		for j := 0; j < k; j++ {
			t.Time[v][j] = tm
			tm += 1 + rng.Intn(3)
		}
		c := int64(1 + rng.Intn(4)) // cheapest (slowest) type: 1..4 units
		for j := k - 1; j >= 0; j-- {
			t.Cost[v][j] = c
			c += int64(1 + rng.Intn(16))
		}
	}
	return t
}

// UniformTable gives every node the same rows; handy in tests and examples.
func UniformTable(n int, times []int, costs []int64) *Table {
	t := NewTable(n, len(times))
	for v := 0; v < n; v++ {
		t.MustSet(v, times, costs)
	}
	return t
}

// OpClassTable derives a table from per-operation-class rows: ops maps an
// operation class (e.g. "mul") to its (times, costs) rows, and opOf yields
// the class of each node. Nodes with an unknown class get the fallback rows
// registered under "", if present.
func OpClassTable(n, k int, opOf func(v int) string, ops map[string]Rows) (*Table, error) {
	t := NewTable(n, k)
	for v := 0; v < n; v++ {
		rows, ok := ops[opOf(v)]
		if !ok {
			rows, ok = ops[""]
		}
		if !ok {
			return nil, fmt.Errorf("fu: no rows for op class %q of node %d", opOf(v), v)
		}
		if err := t.Set(v, rows.Times, rows.Costs); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Rows couples the per-type times and costs of one operation class.
type Rows struct {
	Times []int
	Costs []int64
}

// ReliabilityCosts derives a reliability-cost table from execution times and
// the library's failure rates, following §2 of the paper: the reliability
// cost of node v on type k is T_k(v) · λ_k, scaled by `scale` and rounded to
// the nearest integer so the integer-cost algorithms apply. Minimizing the
// summed reliability cost maximizes the probability that the system does not
// fail while executing the DFG (product of per-node exp(−T·λ) terms).
func ReliabilityCosts(lib *Library, times [][]int, scale float64) (*Table, error) {
	if scale <= 0 {
		return nil, errors.New("fu: reliability cost scale must be positive")
	}
	k := lib.K()
	t := NewTable(len(times), k)
	for v := range times {
		if len(times[v]) != k {
			return nil, fmt.Errorf("fu: times row %d has %d entries, want %d", v, len(times[v]), k)
		}
		for j := 0; j < k; j++ {
			t.Time[v][j] = times[v][j]
			t.Cost[v][j] = int64(math.Round(float64(times[v][j]) * lib.Type(TypeID(j)).FailureRate * scale))
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// SystemReliability converts a summed reliability cost back to the
// probability that the system survives one execution of the DFG,
// exp(−cost/scale). It is the inverse view of ReliabilityCosts for
// reporting.
func SystemReliability(totalCost int64, scale float64) float64 {
	return math.Exp(-float64(totalCost) / scale)
}
