package fu

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewLibraryValidation(t *testing.T) {
	if _, err := NewLibrary(); err == nil {
		t.Error("empty library accepted")
	}
	if _, err := NewLibrary(Type{Name: ""}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewLibrary(Type{Name: "P1"}, Type{Name: "P1"}); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := NewLibrary(Type{Name: "P1", FailureRate: -1}); err == nil {
		t.Error("negative failure rate accepted")
	}
	lib, err := NewLibrary(Type{Name: "P1"}, Type{Name: "P2"})
	if err != nil {
		t.Fatal(err)
	}
	if lib.K() != 2 || lib.Name(1) != "P2" {
		t.Fatalf("library misbuilt: K=%d", lib.K())
	}
}

func TestLibraryLookup(t *testing.T) {
	lib := StandardLibrary()
	if lib.K() != 3 {
		t.Fatalf("standard library has %d types, want 3", lib.K())
	}
	id, ok := lib.Lookup("P2")
	if !ok || id != 1 {
		t.Fatalf("Lookup(P2) = %d, %v", id, ok)
	}
	if _, ok := lib.Lookup("P9"); ok {
		t.Fatal("Lookup(P9) succeeded")
	}
}

func TestTypePanicsOnBadID(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on invalid type id")
		}
	}()
	StandardLibrary().Type(5)
}

func TestTableSetAndValidate(t *testing.T) {
	tab := NewTable(2, 3)
	if err := tab.Validate(); err == nil {
		t.Error("zero-filled table validated (times must be >= 1)")
	}
	if err := tab.Set(5, []int{1, 2, 3}, []int64{3, 2, 1}); err == nil {
		t.Error("out-of-range node accepted")
	}
	if err := tab.Set(0, []int{1, 2}, []int64{3, 2, 1}); err == nil {
		t.Error("short row accepted")
	}
	tab.MustSet(0, []int{1, 2, 3}, []int64{9, 5, 1})
	tab.MustSet(1, []int{2, 4, 6}, []int64{8, 4, 2})
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	tab.Cost[1][0] = -1
	if err := tab.Validate(); err == nil {
		t.Error("negative cost validated")
	}
}

func TestTableSelectors(t *testing.T) {
	tab := NewTable(1, 4)
	tab.MustSet(0, []int{5, 2, 2, 7}, []int64{1, 6, 4, 1})
	if got := tab.MinTime(0); got != 2 {
		t.Errorf("MinTime = %d, want 2", got)
	}
	if got := tab.MaxTime(0); got != 7 {
		t.Errorf("MaxTime = %d, want 7", got)
	}
	// Min cost is 1, shared by types 0 and 3; type 0 is faster.
	if got := tab.MinCostType(0); got != 0 {
		t.Errorf("MinCostType = %d, want 0", got)
	}
	// Min time is 2, shared by types 1 and 2; type 2 is cheaper.
	if got := tab.MinTimeType(0); got != 2 {
		t.Errorf("MinTimeType = %d, want 2", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	tab := UniformTable(2, []int{1, 2}, []int64{5, 1})
	c := tab.Clone()
	c.Time[0][0] = 99
	c.Cost[1][1] = 99
	if tab.Time[0][0] != 1 || tab.Cost[1][1] != 1 {
		t.Fatal("mutating clone changed original")
	}
}

func TestRandomTableMonotoneAndValid(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, k := 1+rng.Intn(20), 2+rng.Intn(4)
		tab := RandomTable(rng, n, k)
		if tab.Validate() != nil {
			return false
		}
		for v := 0; v < n; v++ {
			for j := 1; j < k; j++ {
				if tab.Time[v][j] <= tab.Time[v][j-1] {
					return false // times must strictly increase
				}
				if tab.Cost[v][j] >= tab.Cost[v][j-1] {
					return false // costs must strictly decrease
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestOpClassTable(t *testing.T) {
	ops := map[string]Rows{
		"mul": {Times: []int{2, 4}, Costs: []int64{8, 3}},
		"":    {Times: []int{1, 2}, Costs: []int64{4, 1}},
	}
	opOf := func(v int) string {
		if v == 0 {
			return "mul"
		}
		return "add" // unknown: falls back to ""
	}
	tab, err := OpClassTable(2, 2, opOf, ops)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Time[0][1] != 4 || tab.Cost[1][0] != 4 {
		t.Fatalf("table misderived: %+v", tab)
	}
	delete(ops, "")
	if _, err := OpClassTable(2, 2, opOf, ops); err == nil {
		t.Fatal("missing fallback row accepted")
	}
}

func TestReliabilityCosts(t *testing.T) {
	lib := MustLibrary(
		Type{Name: "fast", FailureRate: 0.004},
		Type{Name: "slow", FailureRate: 0.001},
	)
	times := [][]int{{1, 3}, {2, 5}}
	tab, err := ReliabilityCosts(lib, times, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// node 0: fast = 1*0.004*1000 = 4, slow = 3*0.001*1000 = 3.
	if tab.Cost[0][0] != 4 || tab.Cost[0][1] != 3 {
		t.Fatalf("node 0 costs = %v", tab.Cost[0])
	}
	// node 1: fast = 8, slow = 5.
	if tab.Cost[1][0] != 8 || tab.Cost[1][1] != 5 {
		t.Fatalf("node 1 costs = %v", tab.Cost[1])
	}
	if _, err := ReliabilityCosts(lib, [][]int{{1}}, 1000); err == nil {
		t.Error("ragged times row accepted")
	}
	if _, err := ReliabilityCosts(lib, times, 0); err == nil {
		t.Error("zero scale accepted")
	}
	// Choosing all-slow: total cost 3+5 = 8 -> reliability exp(-0.008).
	got := SystemReliability(8, 1000)
	want := math.Exp(-0.008)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("SystemReliability = %g, want %g", got, want)
	}
}

func TestUniformTable(t *testing.T) {
	tab := UniformTable(3, []int{1, 2, 3}, []int64{10, 5, 2})
	if tab.N() != 3 || tab.K() != 3 {
		t.Fatalf("dims %dx%d", tab.N(), tab.K())
	}
	for v := 0; v < 3; v++ {
		if tab.Time[v][2] != 3 || tab.Cost[v][0] != 10 {
			t.Fatalf("row %d wrong: %v %v", v, tab.Time[v], tab.Cost[v])
		}
	}
	if NewTable(0, 0).K() != 0 {
		t.Error("empty table K != 0")
	}
}
