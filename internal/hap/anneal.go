package hap

import (
	"context"
	"math"
	"math/rand"

	"hetsynth/internal/fu"
)

// AnnealOptions tunes the simulated-annealing solver.
type AnnealOptions struct {
	Seed  int64   // RNG seed; runs are deterministic per seed
	Moves int     // total proposed moves (default 20000)
	T0    float64 // initial temperature (default: cost spread estimate)
	Alpha float64 // geometric cooling factor per move (default 0.9995)
	// ReheatAfter, when positive, resets the temperature to its initial
	// value after that many consecutive moves without improving the feasible
	// incumbent — a restart that lets a frozen walk escape deep local minima
	// late in the cooling schedule. Zero disables reheating.
	ReheatAfter int
}

// Anneal is a randomized assignment solver used by the extended ablations:
// simulated annealing over type vectors with single-node moves. Infeasible
// states are allowed during the walk but charged a penalty proportional to
// the deadline violation, so the search can tunnel through tight regions;
// only feasible states are ever recorded as the incumbent.
//
// It is not part of the paper; it exists to show where the structured
// heuristics (Once/Repeat) sit relative to a generic metaheuristic given
// comparable effort.
func Anneal(p Problem, opts AnnealOptions) (Solution, error) {
	return AnnealCtx(context.Background(), p, opts)
}

// AnnealCtx is Anneal — the simulated-annealing metaheuristic over type
// vectors — with cooperative cancellation: the move loop polls ctx every 256
// moves. A cancelled run returns the best feasible incumbent found so far
// (when one exists) together with ctx's error, so anytime callers can keep
// the partial result; check Solution.Assign != nil before using it. The
// RNG stream is unaffected by polling, so per-seed determinism of full runs
// is preserved.
func AnnealCtx(ctx context.Context, p Problem, opts AnnealOptions) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	moves := opts.Moves
	if moves <= 0 {
		moves = 20000
	}
	alpha := opts.Alpha
	if alpha <= 0 || alpha >= 1 {
		alpha = 0.9995
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	t := p.Table
	n, K := p.Graph.N(), t.K()

	// Penalized energy: cost + λ·max(0, length − L). λ is the largest
	// single-node cost, making one step of lateness never cheaper than the
	// most expensive upgrade.
	var lambda int64 = 1
	for v := 0; v < n; v++ {
		for k := 0; k < K; k++ {
			if t.Cost[v][k] > lambda {
				lambda = t.Cost[v][k]
			}
		}
	}
	energy := func(a Assignment) (float64, int64, int) {
		cost := CostOf(t, a)
		//hetsynth:ignore retval LongestPath fails only on malformed weights;
		// Times derives them from the validated table.
		length, _, _ := p.Graph.LongestPath(Times(t, a))
		e := float64(cost)
		if length > p.Deadline {
			e += float64(lambda) * float64(length-p.Deadline)
		}
		return e, cost, length
	}

	// Start from the greedy solution when feasible, else all-fastest.
	cur := minTimeAssignment(t)
	if s, err := Greedy(p); err == nil {
		cur = s.Assign.Clone()
	}
	curE, curCost, curLen := energy(cur)

	var bestA Assignment
	var bestCost int64 = math.MaxInt64
	if curLen <= p.Deadline {
		bestA, bestCost = cur.Clone(), curCost
	}

	t0 := opts.T0
	if t0 <= 0 {
		t0 = float64(lambda) * 2
	}
	temp := t0
	sinceImprove := 0
	for i := 0; i < moves; i++ {
		if i&255 == 0 && ctx.Err() != nil {
			if bestA == nil {
				return Solution{}, ctx.Err()
			}
			sol, eerr := Evaluate(p, bestA)
			if eerr != nil {
				return Solution{}, eerr
			}
			return sol, ctx.Err()
		}
		v := rng.Intn(n)
		k := fu.TypeID(rng.Intn(K))
		if k == cur[v] {
			continue
		}
		old := cur[v]
		cur[v] = k
		newE, newCost, newLen := energy(cur)
		accept := newE <= curE || rng.Float64() < math.Exp((curE-newE)/temp)
		improved := false
		if accept {
			curE, curCost, curLen = newE, newCost, newLen
			if curLen <= p.Deadline && curCost < bestCost {
				bestA, bestCost = cur.Clone(), curCost
				improved = true
			}
		} else {
			cur[v] = old
		}
		if improved {
			sinceImprove = 0
		} else {
			sinceImprove++
		}
		if opts.ReheatAfter > 0 && sinceImprove >= opts.ReheatAfter {
			temp = t0
			sinceImprove = 0
		} else {
			temp *= alpha
		}
	}
	if bestA == nil {
		return Solution{}, ErrInfeasible
	}
	return Evaluate(p, bestA)
}
