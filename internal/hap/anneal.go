package hap

import (
	"math"
	"math/rand"

	"hetsynth/internal/fu"
)

// AnnealOptions tunes the simulated-annealing solver.
type AnnealOptions struct {
	Seed  int64   // RNG seed; runs are deterministic per seed
	Moves int     // total proposed moves (default 20000)
	T0    float64 // initial temperature (default: cost spread estimate)
	Alpha float64 // geometric cooling factor per move (default 0.9995)
}

// Anneal is a randomized assignment solver used by the extended ablations:
// simulated annealing over type vectors with single-node moves. Infeasible
// states are allowed during the walk but charged a penalty proportional to
// the deadline violation, so the search can tunnel through tight regions;
// only feasible states are ever recorded as the incumbent.
//
// It is not part of the paper; it exists to show where the structured
// heuristics (Once/Repeat) sit relative to a generic metaheuristic given
// comparable effort.
func Anneal(p Problem, opts AnnealOptions) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	moves := opts.Moves
	if moves <= 0 {
		moves = 20000
	}
	alpha := opts.Alpha
	if alpha <= 0 || alpha >= 1 {
		alpha = 0.9995
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	t := p.Table
	n, K := p.Graph.N(), t.K()

	// Penalized energy: cost + λ·max(0, length − L). λ is the largest
	// single-node cost, making one step of lateness never cheaper than the
	// most expensive upgrade.
	var lambda int64 = 1
	for v := 0; v < n; v++ {
		for k := 0; k < K; k++ {
			if t.Cost[v][k] > lambda {
				lambda = t.Cost[v][k]
			}
		}
	}
	energy := func(a Assignment) (float64, int64, int) {
		cost := CostOf(t, a)
		//hetsynth:ignore retval LongestPath fails only on malformed weights;
		// Times derives them from the validated table.
		length, _, _ := p.Graph.LongestPath(Times(t, a))
		e := float64(cost)
		if length > p.Deadline {
			e += float64(lambda) * float64(length-p.Deadline)
		}
		return e, cost, length
	}

	// Start from the greedy solution when feasible, else all-fastest.
	cur := minTimeAssignment(t)
	if s, err := Greedy(p); err == nil {
		cur = s.Assign.Clone()
	}
	curE, curCost, curLen := energy(cur)

	var bestA Assignment
	var bestCost int64 = math.MaxInt64
	if curLen <= p.Deadline {
		bestA, bestCost = cur.Clone(), curCost
	}

	temp := opts.T0
	if temp <= 0 {
		temp = float64(lambda) * 2
	}
	for i := 0; i < moves; i++ {
		v := rng.Intn(n)
		k := fu.TypeID(rng.Intn(K))
		if k == cur[v] {
			continue
		}
		old := cur[v]
		cur[v] = k
		newE, newCost, newLen := energy(cur)
		accept := newE <= curE || rng.Float64() < math.Exp((curE-newE)/temp)
		if accept {
			curE, curCost, curLen = newE, newCost, newLen
			if curLen <= p.Deadline && curCost < bestCost {
				bestA, bestCost = cur.Clone(), curCost
			}
		} else {
			cur[v] = old
		}
		temp *= alpha
	}
	if bestA == nil {
		return Solution{}, ErrInfeasible
	}
	return Evaluate(p, bestA)
}
