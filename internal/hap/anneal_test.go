package hap

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
)

func TestAnnealFindsFeasibleSolutions(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng, 10, false)
		s, err := Anneal(p, AnnealOptions{Seed: seed, Moves: 4000})
		opt, errB := BruteForce(p)
		if errors.Is(errB, ErrInfeasible) {
			return errors.Is(err, ErrInfeasible)
		}
		if err != nil {
			return false
		}
		return s.Length <= p.Deadline && s.Cost >= opt.Cost
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAnnealDeterministicPerSeed(t *testing.T) {
	p := motivational()
	a, err := Anneal(p, AnnealOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Anneal(p, AnnealOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost {
		t.Fatalf("same seed, different costs: %d vs %d", a.Cost, b.Cost)
	}
}

func TestAnnealNeverWorseThanGreedySeed(t *testing.T) {
	// Anneal starts from Greedy, so with any budget its incumbent can only
	// improve on it.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		p := randomProblem(rng, 12, false)
		gs, errG := Greedy(p)
		as, errA := Anneal(p, AnnealOptions{Seed: int64(trial), Moves: 3000})
		if errG != nil {
			if !errors.Is(errA, ErrInfeasible) && errA != nil {
				t.Fatalf("anneal error: %v", errA)
			}
			continue
		}
		if errA != nil {
			t.Fatalf("greedy feasible but anneal failed: %v", errA)
		}
		if as.Cost > gs.Cost {
			t.Fatalf("anneal %d worse than its greedy seed %d", as.Cost, gs.Cost)
		}
	}
}

func TestAnnealInfeasible(t *testing.T) {
	p := pathProblem()
	p.Deadline = 3
	if _, err := Anneal(p, AnnealOptions{Moves: 500}); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestAnnealValidatesProblem(t *testing.T) {
	bad := Problem{Graph: dfg.New(), Table: fu.NewTable(0, 0), Deadline: 1}
	if _, err := Anneal(bad, AnnealOptions{}); err == nil {
		t.Fatal("invalid problem accepted")
	}
}
