package hap

import (
	"context"
	"errors"
)

// Quality classifies how an anytime result was obtained.
type Quality string

const (
	// QualityExact marks a proven-optimal solution: either a shape-
	// restricted polynomial DP (path/tree) or a completed branch-and-bound.
	QualityExact Quality = "exact"
	// QualityHeuristic marks a ladder that ran every stage it was going to
	// run but holds no optimality proof (SkipExact, or the exact stage gave
	// up on its state budget).
	QualityHeuristic Quality = "heuristic"
	// QualityTimeout marks a best-feasible incumbent returned because the
	// context was cancelled or hit its deadline before the ladder finished.
	QualityTimeout Quality = "timeout"
)

// AnytimeOptions tunes SolveAnytime. The zero value runs the full ladder
// with package defaults.
type AnytimeOptions struct {
	// Exact tunes the final branch-and-bound stage. Stats is managed
	// internally; a caller-provided Stats is ignored.
	Exact ExactOptions
	// Anneal tunes the annealing stage; the zero value uses package
	// defaults (20k moves, geometric cooling).
	Anneal AnnealOptions
	// SkipExact stops the ladder after the heuristic stages; the result is
	// QualityHeuristic at best (no optimality proof is attempted).
	SkipExact bool
	// Sequential forces the single-threaded exact solver, whose explored-
	// state counts (and therefore timeout-path traces) are deterministic.
	// The default fans the branch-and-bound out over worker goroutines.
	Sequential bool
	// Observer, when non-nil, is invoked from the solving goroutine each
	// time the ladder's best feasible incumbent improves (and once, on the
	// final solution, when a shape fast path answers exactly). Costs are
	// strictly decreasing across calls by construction. The callback runs
	// synchronously between ladder stages, so it must be fast and must not
	// call back into the solver.
	Observer func(IncumbentUpdate)
}

// IncumbentUpdate describes one improvement of the anytime ladder's best
// feasible incumbent, as delivered to AnytimeOptions.Observer.
type IncumbentUpdate struct {
	Stage string // ladder rung that produced the incumbent
	Cost  int64  // incumbent cost; strictly decreasing across updates
	// LowerBound is the bound proven at the time of the update; later
	// stages may tighten it further (the final result's bound is
	// authoritative).
	LowerBound int64
	// Gap is (Cost − LowerBound) / max(LowerBound, 1) at update time.
	Gap float64
}

// StageOutcome records one rung of the anytime ladder, in execution order.
// Incumbent is the cheapest feasible cost known after the stage, which is
// monotonically non-increasing down the ladder by construction.
type StageOutcome struct {
	Stage     string // "greedy", "repeat", "anneal", "exact" (or "path"/"tree")
	Cost      int64  // the stage's own result cost; meaningful when Err is empty or partial
	Err       string // why the stage produced nothing (or was cut short), empty on success
	Incumbent int64  // best feasible cost after this stage; 0 if none yet
}

// AnytimeResult is a Solution plus how good it provably is: Quality says
// whether it is optimal, LowerBound is a proven lower bound on the optimal
// cost, and Gap is the relative distance between the two.
type AnytimeResult struct {
	Solution
	Quality Quality
	// Gap is the relative optimality gap (Cost − LowerBound) / max(LowerBound, 1).
	// It is 0 for proven-optimal results and always finite: a lower bound
	// exists whenever a feasible incumbent does.
	Gap float64
	// LowerBound is the best proven lower bound on the optimal cost: the
	// per-node admissible-cost bound (CostLowerBound), tightened by the
	// exact stage's live prune-frontier bound when that stage ran.
	LowerBound int64
	// Stage names the ladder rung that produced the returned assignment.
	Stage string
	// Stages is the full ladder trace, in execution order.
	Stages []StageOutcome
}

// CostLowerBound computes a proven lower bound on the optimal cost of p in
// O(|V|·K): every node must run on a type whose execution time fits the
// deadline on its own (a node's time is a lower bound on the longest path
// through it), so summing each node's cheapest admissible cost bounds every
// feasible assignment from below. A node with no admissible type makes the
// instance ErrInfeasible.
func CostLowerBound(p Problem) (int64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	t := p.Table
	var lb int64
	for v := 0; v < t.N(); v++ {
		best := int64(-1)
		for k := 0; k < t.K(); k++ {
			if t.Time[v][k] <= p.Deadline && (best < 0 || t.Cost[v][k] < best) {
				best = t.Cost[v][k]
			}
		}
		if best < 0 {
			return 0, ErrInfeasible
		}
		lb += best
	}
	return lb, nil
}

// SolveAnytime runs the quality/latency ladder of the paper's Phase-1
// solvers — greedy baselines, then DFG_Assign_Repeat, then simulated
// annealing, then the exact branch-and-bound — keeping the cheapest feasible
// incumbent throughout, and returns early with that incumbent the moment ctx
// is cancelled or past its deadline. Shape-restricted optimal DPs short-
// circuit the ladder: simple paths and forests are solved exactly in
// polynomial time. The result always carries a proven LowerBound and a
// finite Gap; Quality reports whether the answer is optimal, a completed
// heuristic, or a timeout incumbent. An error is returned only when no
// feasible solution was found: ErrInfeasible when that is proven (or every
// stage agreed), or ctx's error when time ran out first.
func SolveAnytime(ctx context.Context, p Problem, opts AnytimeOptions) (AnytimeResult, error) {
	if err := p.Validate(); err != nil {
		return AnytimeResult{}, err
	}
	lb, err := CostLowerBound(p)
	if err != nil {
		return AnytimeResult{}, err
	}
	if err := ctx.Err(); err != nil {
		return AnytimeResult{}, err
	}

	// Shape fast paths: optimal pseudo-polynomial DPs, fast enough to run
	// to completion regardless of the remaining budget.
	switch {
	case p.Graph.IsSimplePath():
		sol, err := PathAssign(p)
		return exactLadderResult(sol, "path", err, opts.Observer)
	case p.Graph.IsOutForest() || p.Graph.IsInForest():
		sol, err := TreeAssign(p)
		return exactLadderResult(sol, "tree", err, opts.Observer)
	}

	r := AnytimeResult{LowerBound: lb}
	var best *Solution
	bestStage := ""
	// absorb records a stage outcome and folds its solution (possibly a
	// partial one carried alongside a cancellation error) into the incumbent.
	absorb := func(stage string, sol Solution, err error) {
		out := StageOutcome{Stage: stage}
		if err != nil {
			out.Err = err.Error()
		}
		if sol.Assign != nil {
			out.Cost = sol.Cost
			if best == nil || sol.Cost < best.Cost {
				s := sol
				best = &s
				bestStage = stage
				if opts.Observer != nil {
					den := r.LowerBound
					if den < 1 {
						den = 1
					}
					gap := float64(sol.Cost-r.LowerBound) / float64(den)
					if gap < 0 {
						gap = 0
					}
					opts.Observer(IncumbentUpdate{Stage: stage, Cost: sol.Cost, LowerBound: r.LowerBound, Gap: gap})
				}
			}
		}
		if best != nil {
			out.Incumbent = best.Cost
		}
		r.Stages = append(r.Stages, out)
	}
	finish := func(q Quality) (AnytimeResult, error) {
		if best == nil {
			if err := ctx.Err(); err != nil {
				return AnytimeResult{}, err
			}
			return AnytimeResult{}, ErrInfeasible
		}
		r.Solution = *best
		r.Stage = bestStage
		r.Quality = q
		if q == QualityExact {
			r.LowerBound = best.Cost
			r.Gap = 0
			return r, nil
		}
		den := r.LowerBound
		if den < 1 {
			den = 1
		}
		if g := float64(best.Cost-r.LowerBound) / float64(den); g > 0 {
			r.Gap = g
		}
		return r, nil
	}

	// Rung 1: greedy baselines (microseconds; not worth interrupting).
	gsol, gerr := bestGreedy(p)
	if gerr != nil && errors.Is(gerr, ErrInfeasible) {
		// Greedy fails only when even the all-fastest assignment misses the
		// deadline, which proves the instance infeasible outright.
		return AnytimeResult{}, ErrInfeasible
	}
	absorb("greedy", gsol, gerr)
	if ctx.Err() != nil {
		return finish(QualityTimeout)
	}

	// Rung 2: DFG_Assign_Repeat, the paper's recommended heuristic.
	rsol, rerr := AssignRepeatCtx(ctx, p)
	absorb("repeat", rsol, rerr)
	if ctx.Err() != nil {
		return finish(QualityTimeout)
	}

	// Rung 3: simulated annealing; a cancelled run still contributes its
	// partial incumbent.
	asol, aerr := AnnealCtx(ctx, p, opts.Anneal)
	absorb("anneal", asol, aerr)
	if ctx.Err() != nil {
		return finish(QualityTimeout)
	}

	if opts.SkipExact {
		return finish(QualityHeuristic)
	}

	// Rung 4: exact branch-and-bound with a live observer, so an interrupted
	// search still yields its incumbent and a prune-frontier lower bound.
	stats := &SearchStats{}
	eopts := opts.Exact
	eopts.Stats = stats
	var esol Solution
	var eerr error
	if opts.Sequential {
		esol, eerr = ExactCtx(ctx, p, eopts)
	} else {
		esol, eerr = ExactParallelCtx(ctx, p, eopts)
	}
	switch {
	case eerr == nil:
		absorb("exact", esol, nil)
		return finish(QualityExact)
	case errors.Is(eerr, ErrInfeasible):
		if best == nil {
			return AnytimeResult{}, ErrInfeasible
		}
		// A feasible incumbent contradicts the infeasibility verdict; keep
		// the incumbent and report honestly that no proof was obtained.
		absorb("exact", Solution{}, eerr)
		return finish(QualityHeuristic)
	default:
		// Cancelled, past deadline, or over the state budget: salvage the
		// search's incumbent and tighten the bound with its frontier.
		if a, _, ok := stats.Incumbent(); ok {
			if s, verr := Evaluate(p, a); verr == nil && s.Length <= p.Deadline {
				absorb("exact", s, eerr)
			}
		} else {
			absorb("exact", Solution{}, eerr)
		}
		if slb, ok := stats.LowerBound(); ok && slb > r.LowerBound {
			r.LowerBound = slb
		}
		if errors.Is(eerr, ErrSearchTooLarge) {
			return finish(QualityHeuristic)
		}
		return finish(QualityTimeout)
	}
}

// bestGreedy runs both greedy baselines and keeps the cheaper feasible one.
// It is a heuristic stage helper: O(upgrades · (V+E)) like Greedy itself.
func bestGreedy(p Problem) (Solution, error) {
	s1, e1 := GreedyRatio(p)
	s2, e2 := Greedy(p)
	switch {
	case e1 == nil && (e2 != nil || s1.Cost <= s2.Cost):
		return s1, nil
	case e2 == nil:
		return s2, nil
	default:
		return Solution{}, e1
	}
}

// exactLadderResult wraps a shape-restricted optimal solve as a one-stage
// anytime result (the DP is optimal, so the gap is zero by definition).
func exactLadderResult(sol Solution, stage string, err error, obs func(IncumbentUpdate)) (AnytimeResult, error) {
	if err != nil {
		return AnytimeResult{}, err
	}
	if obs != nil {
		obs(IncumbentUpdate{Stage: stage, Cost: sol.Cost, LowerBound: sol.Cost, Gap: 0})
	}
	return AnytimeResult{
		Solution:   sol,
		Quality:    QualityExact,
		LowerBound: sol.Cost,
		Stage:      stage,
		Stages:     []StageOutcome{{Stage: stage, Cost: sol.Cost, Incumbent: sol.Cost}},
	}, nil
}
