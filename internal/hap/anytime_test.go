package hap

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
)

// diamondProblem builds a 4-node diamond (two parallel branches), the
// smallest graph that is neither a simple path nor a forest, so SolveAnytime
// must run the full ladder instead of a shape fast path.
func diamondProblem() Problem {
	g := dfg.New()
	a := g.MustAddNode("a", "")
	b := g.MustAddNode("b", "")
	c := g.MustAddNode("c", "")
	d := g.MustAddNode("d", "")
	g.MustAddEdge(a, b, 0)
	g.MustAddEdge(a, c, 0)
	g.MustAddEdge(b, d, 0)
	g.MustAddEdge(c, d, 0)
	t := fu.NewTable(4, 2)
	t.MustSet(0, []int{1, 3}, []int64{9, 2})
	t.MustSet(1, []int{1, 2}, []int64{8, 3})
	t.MustSet(2, []int{2, 4}, []int64{7, 1})
	t.MustSet(3, []int{1, 2}, []int64{6, 2})
	return Problem{Graph: g, Table: t, Deadline: 7}
}

func TestCostLowerBound(t *testing.T) {
	p := diamondProblem()
	lb, err := CostLowerBound(p)
	if err != nil {
		t.Fatal(err)
	}
	// Every type fits the deadline per node, so the bound is the cheapest
	// column sum: 2 + 3 + 1 + 2.
	if lb != 8 {
		t.Fatalf("lower bound %d, want 8", lb)
	}
	opt, err := Exact(p, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if lb > opt.Cost {
		t.Fatalf("lower bound %d exceeds optimum %d", lb, opt.Cost)
	}

	tight := p
	tight.Deadline = 1
	if _, err := CostLowerBound(tight); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("deadline below every per-node time: err %v, want ErrInfeasible", err)
	}
	if _, err := CostLowerBound(Problem{}); err == nil {
		t.Fatal("invalid problem accepted")
	}
}

// TestSolveAnytimeDifferential is the anytime property test: across random
// small instances with an unconstrained context, the ladder must (a) return
// a feasible assignment, (b) match the exact optimum with a zero gap, and
// (c) keep its per-stage incumbent trace monotonically non-increasing.
func TestSolveAnytimeDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 200; i++ {
		p := randomProblem(rng, 8, false)
		res, err := SolveAnytime(context.Background(), p, AnytimeOptions{Sequential: i%2 == 0})
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		s, verr := Evaluate(p, res.Assign)
		if verr != nil {
			t.Fatalf("instance %d: invalid assignment: %v", i, verr)
		}
		if s.Length > p.Deadline {
			t.Fatalf("instance %d: infeasible incumbent: length %d > deadline %d", i, s.Length, p.Deadline)
		}
		if s.Cost != res.Cost {
			t.Fatalf("instance %d: reported cost %d, recomputed %d", i, res.Cost, s.Cost)
		}
		if res.Quality != QualityExact {
			t.Fatalf("instance %d: quality %q with an unconstrained context, want exact", i, res.Quality)
		}
		if res.Gap != 0 || res.LowerBound != res.Cost {
			t.Fatalf("instance %d: exact result with gap %v / bound %d (cost %d)", i, res.Gap, res.LowerBound, res.Cost)
		}
		opt, err := Exact(p, ExactOptions{})
		if err != nil {
			t.Fatalf("instance %d: exact reference: %v", i, err)
		}
		if res.Cost != opt.Cost {
			t.Fatalf("instance %d: anytime cost %d, exact optimum %d", i, res.Cost, opt.Cost)
		}
		last := int64(0)
		for j, st := range res.Stages {
			if st.Incumbent == 0 {
				continue
			}
			if last != 0 && st.Incumbent > last {
				t.Fatalf("instance %d: incumbent rose %d -> %d at stage %d (%q)", i, last, st.Incumbent, j, st.Stage)
			}
			last = st.Incumbent
		}
		if last != res.Cost {
			t.Fatalf("instance %d: final stage incumbent %d, result cost %d", i, last, res.Cost)
		}
	}
}

// TestSolveAnytimeBudgetExhausted starves the exact stage with a tiny state
// budget: the result must degrade to a heuristic verdict with a consistent
// finite gap, never an unproven "exact".
func TestSolveAnytimeBudgetExhausted(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	sawHeuristic := false
	for i := 0; i < 40; i++ {
		p := randomProblem(rng, 12, false)
		if p.Graph.IsSimplePath() || p.Graph.IsOutForest() || p.Graph.IsInForest() {
			continue // shape fast path proves optimality without the B&B
		}
		opts := AnytimeOptions{Exact: ExactOptions{MaxStates: 50}, Sequential: true}
		res, err := SolveAnytime(context.Background(), p, opts)
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		switch res.Quality {
		case QualityExact:
			// The search fit in 50 states; the proof stands.
		case QualityHeuristic:
			sawHeuristic = true
		default:
			t.Fatalf("instance %d: quality %q, want exact or heuristic", i, res.Quality)
		}
		s, verr := Evaluate(p, res.Assign)
		if verr != nil || s.Length > p.Deadline {
			t.Fatalf("instance %d: infeasible incumbent (%v, length %d)", i, verr, s.Length)
		}
		if res.LowerBound > res.Cost {
			t.Fatalf("instance %d: lower bound %d exceeds cost %d", i, res.LowerBound, res.Cost)
		}
		den := res.LowerBound
		if den < 1 {
			den = 1
		}
		want := float64(res.Cost-res.LowerBound) / float64(den)
		if want < 0 {
			want = 0
		}
		if res.Gap != want || math.IsNaN(res.Gap) || math.IsInf(res.Gap, 0) {
			t.Fatalf("instance %d: gap %v inconsistent with cost %d / bound %d", i, res.Gap, res.Cost, res.LowerBound)
		}
		opt, err := Exact(p, ExactOptions{})
		if err != nil {
			t.Fatalf("instance %d: exact reference: %v", i, err)
		}
		if res.Cost < opt.Cost {
			t.Fatalf("instance %d: anytime cost %d beats the optimum %d", i, res.Cost, opt.Cost)
		}
		if res.LowerBound > opt.Cost {
			t.Fatalf("instance %d: claimed lower bound %d exceeds the true optimum %d", i, res.LowerBound, opt.Cost)
		}
	}
	if !sawHeuristic {
		t.Fatal("no instance exhausted the 50-state budget; the degraded path went untested")
	}
}

// countdownCtx reports itself cancelled after a fixed number of Err polls —
// a deterministic stand-in for a deadline that fires between ladder rungs.
type countdownCtx struct {
	context.Context
	polls atomic.Int64
	after int64
}

func (c *countdownCtx) Err() error {
	if c.polls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

func TestSolveAnytimeTimeoutKeepsIncumbent(t *testing.T) {
	p := diamondProblem()
	// Poll budget 1: the entry check passes, the post-greedy check fails, so
	// the ladder must stop after the greedy rung with a timeout verdict.
	ctx := &countdownCtx{Context: context.Background(), after: 1}
	res, err := SolveAnytime(ctx, p, AnytimeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Quality != QualityTimeout {
		t.Fatalf("quality %q, want timeout", res.Quality)
	}
	if res.Stage != "greedy" || len(res.Stages) != 1 {
		t.Fatalf("stage %q with trace %+v, want a single greedy rung", res.Stage, res.Stages)
	}
	s, verr := Evaluate(p, res.Assign)
	if verr != nil || s.Length > p.Deadline {
		t.Fatalf("timeout incumbent infeasible (%v, length %d)", verr, s.Length)
	}
	if res.Gap < 0 || math.IsInf(res.Gap, 0) || math.IsNaN(res.Gap) {
		t.Fatalf("gap %v, want finite and non-negative", res.Gap)
	}
	if res.LowerBound > res.Cost {
		t.Fatalf("lower bound %d exceeds cost %d", res.LowerBound, res.Cost)
	}

	// A context dead on arrival yields no incumbent, only its error.
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SolveAnytime(dead, p, AnytimeOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("dead context: err %v, want context.Canceled", err)
	}
}

func TestSolveAnytimeShapeFastPaths(t *testing.T) {
	for _, tc := range []struct {
		name  string
		prob  Problem
		stage string
	}{
		{"path", pathProblem(), "path"},
		{"tree", treeProblem(), "tree"},
	} {
		res, err := SolveAnytime(context.Background(), tc.prob, AnytimeOptions{})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.Quality != QualityExact || res.Stage != tc.stage || res.Gap != 0 {
			t.Fatalf("%s: quality %q stage %q gap %v, want exact/%s/0", tc.name, res.Quality, res.Stage, res.Gap, tc.stage)
		}
		opt, err := Exact(tc.prob, ExactOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Cost != opt.Cost {
			t.Fatalf("%s: cost %d, optimum %d", tc.name, res.Cost, opt.Cost)
		}
	}
}

func TestSolveAnytimeSkipExact(t *testing.T) {
	p := diamondProblem()
	res, err := SolveAnytime(context.Background(), p, AnytimeOptions{SkipExact: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Quality != QualityHeuristic {
		t.Fatalf("quality %q, want heuristic when the exact stage is skipped", res.Quality)
	}
	for _, st := range res.Stages {
		if st.Stage == "exact" {
			t.Fatal("exact stage ran despite SkipExact")
		}
	}
}

func TestSolveAnytimeInfeasible(t *testing.T) {
	p := diamondProblem()
	p.Deadline = 2 // below the 3-node critical path at all-fastest speeds
	if _, err := SolveAnytime(context.Background(), p, AnytimeOptions{}); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err %v, want ErrInfeasible", err)
	}
}

// FuzzSolveAnytime hammers the anytime ladder with randomized instances and
// deadlines from microseconds (everything times out) to milliseconds: any
// returned incumbent must be feasible with consistent gap accounting, and
// the solver must not leak goroutines regardless of where the deadline cut.
func FuzzSolveAnytime(f *testing.F) {
	f.Add(int64(1), uint8(5), uint8(1), uint16(500), false)
	f.Add(int64(7), uint8(0), uint8(2), uint16(0), true)
	f.Add(int64(-3), uint8(40), uint8(9), uint16(5000), false)
	f.Fuzz(func(t *testing.T, seed int64, n, k uint8, budgetUS uint16, seq bool) {
		before := runtime.NumGoroutine()
		nn := 2 + int(n%7)
		kk := 2 + int(k%3)
		rng := rand.New(rand.NewSource(seed))
		g := dfg.RandomDAG(rng, nn, 0.3)
		tab := fu.RandomTable(rng, nn, kk)
		min, err := MinMakespan(g, tab)
		if err != nil {
			t.Fatalf("min makespan: %v", err)
		}
		p := Problem{Graph: g, Table: tab, Deadline: min + rng.Intn(min+3)}
		ctx, cancel := context.WithTimeout(context.Background(), time.Duration(budgetUS+1)*time.Microsecond)
		res, rerr := SolveAnytime(ctx, p, AnytimeOptions{Sequential: seq})
		cancel()
		switch {
		case rerr == nil:
			s, verr := Evaluate(p, res.Assign)
			if verr != nil {
				t.Fatalf("invalid assignment: %v", verr)
			}
			if s.Length > p.Deadline {
				t.Fatalf("infeasible incumbent: length %d > deadline %d", s.Length, p.Deadline)
			}
			if s.Cost != res.Cost {
				t.Fatalf("cost mismatch: reported %d, recomputed %d", res.Cost, s.Cost)
			}
			if res.Gap < 0 || math.IsNaN(res.Gap) || math.IsInf(res.Gap, 0) {
				t.Fatalf("gap %v, want finite and non-negative", res.Gap)
			}
			if res.LowerBound > res.Cost {
				t.Fatalf("lower bound %d exceeds cost %d", res.LowerBound, res.Cost)
			}
			if res.Quality == QualityExact && res.Gap != 0 {
				t.Fatalf("exact result with nonzero gap %v", res.Gap)
			}
		case errors.Is(rerr, context.DeadlineExceeded), errors.Is(rerr, context.Canceled):
			// Out of time before any feasible incumbent: legitimate.
		case errors.Is(rerr, ErrInfeasible):
			t.Fatalf("deadline %d >= min makespan %d reported infeasible", p.Deadline, min)
		default:
			t.Fatalf("unexpected error: %v", rerr)
		}
		// Everything the ladder spawns must join before it returns; allow the
		// runtime a moment to retire exiting goroutines.
		settle := time.Now().Add(2 * time.Second)
		for runtime.NumGoroutine() > before+2 && time.Now().Before(settle) {
			time.Sleep(5 * time.Millisecond)
		}
		if after := runtime.NumGoroutine(); after > before+2 {
			t.Fatalf("goroutine leak: %d before, %d after", before, after)
		}
	})
}
