package hap

import (
	"math"
	"sync"
)

// This file holds the flat curve arenas behind the sparse tree DP. The DP
// retains one Pareto curve per node; storing each as its own []curvePoint
// slice scatters |V| small allocations across the heap and makes the k-way
// merges chase pointers. Instead, every retained curve lives inside a large
// contiguous []curvePoint backing store (a curveArena) owned by its solver,
// and the per-node handle is a curveRef — 12 bytes of plain integers instead
// of a 24-byte slice header — so a whole tree solve touches a handful of
// large allocations, the merges stream over adjacent memory, and recycling a
// solver returns all curve storage to a pool in O(arenas) operations.
//
// Arena invariants:
//
//   - A curve, once written, is immutable: storeCurve appends the points and
//     the full-slice expression in curveOf pins the capacity, so later
//     appends can never clobber a retained curve.
//   - Arena 0 is the solver's serial arena; recomputeParallel registers one
//     additional arena per worker so workers append without synchronization.
//     The ready-queue handoff that orders a child's computation before its
//     parent's read is the same happens-before edge that publishes the
//     arena bytes.
//   - Incremental re-solves append fresh curves and abandon the old ranges;
//     the garbage is reclaimed wholesale when the solver is released, or by
//     compactArena if an arena would outgrow its int32 offset space.
//   - release() returns every arena to the pool; callers must have copied
//     anything they keep (Solution and FrontierPoint values copy, never
//     alias), exactly as with the pooled dpScratch.
type curveArena struct {
	pts []curvePoint
}

// curveRef locates one node's retained curve inside a solver's arenas:
// arenas[ar].pts[off : off+n]. n == 0 is the everywhere-infeasible (nil)
// curve. The zero value is an empty curve, so a freshly built solver's refs
// are all infeasible until recompute fills them.
type curveRef struct {
	off int32
	n   int32
	ar  int32
}

// maxArenaPoints bounds one arena's length so curveRef offsets fit in int32.
// It is a variable only so tests can lower it to exercise compaction; real
// arenas never get within orders of magnitude of the limit.
var maxArenaPoints = math.MaxInt32

// arenaPool recycles arena backing stores across solves, so a steady stream
// of tree solves (the serving hot path) reuses the same few large blocks
// instead of re-growing them per request.
var arenaPool = sync.Pool{New: func() any { return new(curveArena) }}

// getArena hands out an exclusive, empty arena with whatever capacity its
// previous life grew to. Reusing the backing array verbatim is sound because
// putArena's contract guarantees no live curve aliases it.
func getArena() *curveArena {
	a := arenaPool.Get().(*curveArena)
	a.pts = a.pts[:0]
	return a
}

// putArena recycles an arena. Callers must guarantee every curveRef into it
// is dead — i.e. the owning solver is being discarded.
func putArena(a *curveArena) { arenaPool.Put(a) }
