package hap

import (
	"errors"
	"math/rand"
	"testing"

	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
)

// These tests pin the flat-arena curve storage (arena.go) to the retained
// per-node slice representation it replaced: the storage layout must be
// invisible. Solutions, frontiers, and the retained curves themselves must be
// bit-identical between the two modes, including across incremental re-solves
// that abandon arena ranges and across forced compaction.

// sameCurves compares every retained per-node curve of two solvers point by
// point.
func sameCurves(t *testing.T, seed int64, a, b *treeSolver) {
	t.Helper()
	for v := range a.order {
		ca, cb := a.curveOf(dfg.NodeID(v)), b.curveOf(dfg.NodeID(v))
		if len(ca) != len(cb) {
			t.Fatalf("seed %d: node %d: arena curve has %d points, slice curve %d", seed, v, len(ca), len(cb))
		}
		for i := range ca {
			if ca[i] != cb[i] {
				t.Fatalf("seed %d: node %d point %d: arena %+v != slice %+v", seed, v, i, ca[i], cb[i])
			}
		}
	}
}

// runArenaVsSlice drives an arena-mode and a slice-mode solver through the
// same solve-pin-resolve trajectory and fails on any divergence.
func runArenaVsSlice(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	p := randomProblem(rng, 14, true)
	arena, err := newTreeSolverMode(p, nil, false, false)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	defer arena.release()
	slice, err := newTreeSolverMode(p, nil, false, true)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	defer slice.release()
	step := func(stage string) bool {
		sa, errA := arena.solve()
		ss, errS := slice.solve()
		if errors.Is(errA, ErrInfeasible) != errors.Is(errS, ErrInfeasible) {
			t.Fatalf("seed %d %s: feasibility differs: arena %v, slice %v", seed, stage, errA, errS)
		}
		sameCurves(t, seed, arena, slice)
		if errA != nil {
			return false
		}
		if !sameSolution(sa, ss) {
			t.Fatalf("seed %d %s: arena %+v != slice %+v", seed, stage, sa, ss)
		}
		fa, fs := arena.frontier(), slice.frontier()
		if len(fa) != len(fs) {
			t.Fatalf("seed %d %s: frontier sizes %d != %d", seed, stage, len(fa), len(fs))
		}
		for i := range fa {
			if fa[i] != fs[i] {
				t.Fatalf("seed %d %s: frontier[%d] arena %+v != slice %+v", seed, stage, i, fa[i], fs[i])
			}
		}
		return true
	}
	if !step("initial") {
		return
	}
	// Incremental pins abandon the pinned nodes' old arena ranges; the fresh
	// ranges must still read back identically to the slice path.
	for pinStep := 0; pinStep < 4; pinStep++ {
		v := dfg.NodeID(rng.Intn(p.Graph.N()))
		k := fu.TypeID(rng.Intn(p.K()))
		arena.pin([]dfg.NodeID{v}, k)
		slice.pin([]dfg.NodeID{v}, k)
		if !step("pin") {
			return
		}
	}
}

func TestArenaMatchesSliceMode(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		runArenaVsSlice(t, seed)
	}
}

func TestArenaCompactionMatchesSliceMode(t *testing.T) {
	// Shrinking the arena bound forces storeCurve through compactArena (and,
	// when a compacted arena still cannot take the curve, through the
	// open-a-fresh-arena fallback) on ordinary small instances. The serial
	// incremental trajectory is the one that accumulates abandoned ranges.
	old := maxArenaPoints
	maxArenaPoints = 12
	defer func() { maxArenaPoints = old }()
	for seed := int64(0); seed < 120; seed++ {
		runArenaVsSlice(t, 5000+seed)
	}
}

func TestArenaParallelMatchesSliceMode(t *testing.T) {
	// Above parallelMinDirty the first solve takes the worker-pool path with
	// one private arena per worker; under -race this doubles as the probe for
	// the arena handoff (ptmp) being properly ordered.
	for seed := int64(0); seed < 2; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := parallelMinDirty + 100 + rng.Intn(200)
		g := dfg.RandomTree(rng, n)
		tab := fu.RandomTable(rng, n, 3)
		min, err := MinMakespan(g, tab)
		if err != nil {
			t.Fatal(err)
		}
		p := Problem{Graph: g, Table: tab, Deadline: min + 1 + rng.Intn(min+2)}
		arena, err := newTreeSolverMode(p, nil, false, false)
		if err != nil {
			t.Fatal(err)
		}
		defer arena.release()
		slice, err := newTreeSolverMode(p, nil, false, true)
		if err != nil {
			t.Fatal(err)
		}
		defer slice.release()
		sa, errA := arena.solve()
		ss, errS := slice.solve()
		if errA != nil || errS != nil {
			t.Fatalf("seed %d: arena %v slice %v", seed, errA, errS)
		}
		if !sameSolution(sa, ss) {
			t.Fatalf("seed %d: arena %+v != slice %+v", seed, sa, ss)
		}
		sameCurves(t, seed, arena, slice)
	}
}

func TestTreeSolveArenaAllocs(t *testing.T) {
	// With pooled arenas and scratch, a full build-solve-release cycle costs
	// only the solver's own structural allocations — far below the one curve
	// allocation per node the slice layout paid. The bound is deliberately
	// much smaller than n so a regression to per-node allocation fails loudly.
	if raceEnabled {
		t.Skip("allocation counts include race instrumentation")
	}
	rng := rand.New(rand.NewSource(7))
	n := 300
	g := dfg.RandomTree(rng, n)
	tab := fu.RandomTable(rng, n, 3)
	min, err := MinMakespan(g, tab)
	if err != nil {
		t.Fatal(err)
	}
	p := Problem{Graph: g, Table: tab, Deadline: min + min/2 + 1}
	solveOnce := func() {
		s, err := newTreeSolver(p, nil, false)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.solve(); err != nil {
			t.Fatal(err)
		}
		s.release()
	}
	solveOnce() // warm the arena and scratch pools
	allocs := testing.AllocsPerRun(50, solveOnce)
	if allocs > 40 {
		t.Fatalf("tree solve allocated %.1f times per run, want <= 40 (n = %d)", allocs, n)
	}
}
