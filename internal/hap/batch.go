package hap

import (
	"context"
	"runtime"
	"sync"

	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
)

// BatchEntry is one problem of a batch solve: a fully specified Problem plus
// the algorithm to run on it.
type BatchEntry struct {
	Problem Problem
	Algo    Algorithm
}

// BatchResult is the outcome of one batch entry, index-aligned with the
// input. Exactly one of Solution or Err is meaningful; Quality classifies a
// successful solution ("exact" for proven optima, "heuristic" otherwise,
// with anytime entries reporting the ladder's own verdict).
type BatchResult struct {
	Solution Solution
	Quality  Quality
	Err      error
}

// BatchOptions tunes SolveBatch. The zero value selects sensible defaults.
type BatchOptions struct {
	Workers int // concurrent solve units; default GOMAXPROCS
}

// SolveBatch solves many entries together, exploiting structure a sequence
// of Solve calls cannot see: entries that share the same *dfg.Graph and
// *fu.Table (pointer identity) and are tree-eligible — algorithm auto, tree
// or anytime on an out- or in-forest — are answered by ONE sparse frontier
// DP run at the group's loosest deadline, every other deadline of the group
// being a pure traceback. A same-instance sweep of m deadlines therefore
// costs one DP + m tracebacks instead of m DPs, while costs, feasibility
// verdicts and qualities are identical to solving each entry on its own
// (assignments may differ between equal-cost optima).
//
// Everything else runs through SolveCtx / SolveAnytime individually. Units
// are fanned out over a bounded worker pool; errors are isolated per entry
// (an infeasible sweep point never voids its siblings). Cancelling ctx stops
// the batch between units and entries: already-finished entries keep their
// results, unprocessed ones report the context error.
//
// Complexity: one tree DP per distinct tree-eligible (graph, table) group
// plus one solver run per remaining entry, across min(Workers, units)
// goroutines. The result slice is index-aligned with entries.
func SolveBatch(ctx context.Context, entries []BatchEntry, opts BatchOptions) []BatchResult {
	results := make([]BatchResult, len(entries))
	if len(entries) == 0 {
		return results
	}

	// Partition into units: shared-frontier groups keyed by (graph, table)
	// identity, and singleton units for everything else.
	type gkey struct {
		g *dfg.Graph
		t *fu.Table
	}
	groups := make(map[gkey][]int)
	var order []gkey // deterministic unit order
	var units [][]int
	for i := range entries {
		e := &entries[i]
		if batchTreeEligible(e) {
			k := gkey{e.Problem.Graph, e.Problem.Table}
			if _, ok := groups[k]; !ok {
				order = append(order, k)
			}
			groups[k] = append(groups[k], i)
		} else {
			units = append(units, []int{i})
		}
	}
	for _, k := range order {
		units = append(units, groups[k])
	}

	workers := opts.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(units) {
		workers = len(units)
	}
	unitc := make(chan []int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		// Joined by wg.Wait below; workers exit when unitc closes (they keep
		// draining after cancellation — each unit fast-fails on a dead ctx —
		// so the sends below never block forever).
		go func() {
			defer wg.Done()
			for idxs := range unitc {
				solveBatchUnit(ctx, entries, idxs, results)
			}
		}()
	}
	for _, u := range units {
		unitc <- u
	}
	close(unitc)
	wg.Wait()
	return results
}

// batchTreeEligible reports whether an entry may join a shared-frontier
// group: the algorithms for which the tree DP is (or optimally answers) the
// requested computation, on a tree-shaped graph. Heuristics like once/repeat
// coincide with the optimum on trees but promise their own procedure, so
// they always solve individually.
func batchTreeEligible(e *BatchEntry) bool {
	if e.Problem.Graph == nil || e.Problem.Table == nil {
		return false
	}
	switch e.Algo {
	case AlgoAuto, AlgoTree, AlgoAnytime:
	default:
		return false
	}
	return e.Problem.Graph.IsOutForest() || e.Problem.Graph.IsInForest()
}

// solveBatchUnit runs one unit on the calling goroutine: a singleton entry
// through its own solver, a group through one shared FrontierSolver built at
// the group's loosest deadline.
func solveBatchUnit(ctx context.Context, entries []BatchEntry, idxs []int, results []BatchResult) {
	if len(idxs) == 1 {
		solveBatchOne(ctx, &entries[idxs[0]], &results[idxs[0]])
		return
	}
	if err := ctx.Err(); err != nil {
		for _, i := range idxs {
			results[i] = BatchResult{Err: err}
		}
		return
	}
	horizon := 0
	for _, i := range idxs {
		if d := entries[i].Problem.Deadline; d > horizon {
			horizon = d
		}
	}
	base := entries[idxs[0]].Problem
	base.Deadline = horizon
	fs, err := NewFrontierSolver(base)
	if err != nil {
		// Construction fails only for deadline-independent reasons (shape,
		// table mismatch), which condemn every entry of the group alike.
		for _, i := range idxs {
			results[i] = BatchResult{Err: err}
		}
		return
	}
	for _, i := range idxs {
		if err := ctx.Err(); err != nil {
			results[i] = BatchResult{Err: err}
			continue
		}
		sol, err := fs.SolveAt(entries[i].Problem.Deadline)
		if err != nil {
			results[i] = BatchResult{Err: err}
			continue
		}
		results[i] = BatchResult{Solution: sol, Quality: QualityExact}
	}
}

// solveBatchOne answers a single entry exactly as a standalone Solve call
// would, plus the quality classification.
func solveBatchOne(ctx context.Context, e *BatchEntry, r *BatchResult) {
	if err := ctx.Err(); err != nil {
		*r = BatchResult{Err: err}
		return
	}
	if e.Algo == AlgoAnytime {
		ar, err := SolveAnytime(ctx, e.Problem, AnytimeOptions{})
		if err != nil {
			*r = BatchResult{Err: err}
			return
		}
		*r = BatchResult{Solution: ar.Solution, Quality: ar.Quality}
		return
	}
	sol, err := SolveCtx(ctx, e.Problem, e.Algo)
	if err != nil {
		*r = BatchResult{Err: err}
		return
	}
	*r = BatchResult{Solution: sol, Quality: batchQuality(&e.Problem, e.Algo)}
}

// batchQuality mirrors the serving layer's static classification: the
// shape-restricted DPs and the branch-and-bound return proven optima,
// everything else is a heuristic without a proof.
func batchQuality(p *Problem, algo Algorithm) Quality {
	switch algo {
	case AlgoPath, AlgoTree, AlgoExact:
		return QualityExact
	case AlgoAuto:
		if p.Graph != nil && (p.Graph.IsSimplePath() || p.Graph.IsOutForest() || p.Graph.IsInForest()) {
			return QualityExact
		}
		return QualityHeuristic
	default:
		return QualityHeuristic
	}
}
