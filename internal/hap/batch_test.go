package hap

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"
)

// sequentialBatch answers a batch the slow way — one standalone solve per
// entry — and is the oracle SolveBatch is differentially tested against.
func sequentialBatch(ctx context.Context, entries []BatchEntry) []BatchResult {
	out := make([]BatchResult, len(entries))
	for i := range entries {
		solveBatchOne(ctx, &entries[i], &out[i])
	}
	return out
}

// randomBatch assembles a batch mixing same-instance deadline sweeps (the
// shared-frontier case), standalone tree and DAG entries, and a spread of
// algorithms — including shape mismatches that must fail per entry.
func randomBatch(rng *rand.Rand) []BatchEntry {
	var entries []BatchEntry
	algos := []Algorithm{AlgoAuto, AlgoTree, AlgoRepeat, AlgoGreedy, AlgoAnytime}

	// A deadline sweep over one shared tree instance: same Graph and Table
	// pointers, deadlines from infeasibly tight to loose.
	sweep := randomProblem(rng, 12, true)
	m := 2 + rng.Intn(5)
	for j := 0; j < m; j++ {
		p := sweep
		p.Deadline = 1 + rng.Intn(2*sweep.Deadline)
		algo := AlgoAuto
		if rng.Intn(2) == 0 {
			algo = []Algorithm{AlgoTree, AlgoAnytime}[rng.Intn(2)]
		}
		entries = append(entries, BatchEntry{Problem: p, Algo: algo})
	}

	// Standalone entries on fresh instances.
	for j := 0; j < 1+rng.Intn(4); j++ {
		p := randomProblem(rng, 10, rng.Intn(2) == 0)
		entries = append(entries, BatchEntry{Problem: p, Algo: algos[rng.Intn(len(algos))]})
	}
	rng.Shuffle(len(entries), func(i, j int) { entries[i], entries[j] = entries[j], entries[i] })
	return entries
}

// TestSolveBatchDifferential proves SolveBatch is observably equivalent to
// solving each entry on its own: same feasibility verdict, same optimal (or
// heuristic-procedure) cost, same quality class, and every reported solution
// feasible for its own deadline. Assignments may differ between equal-cost
// optima, so they are not compared.
func TestSolveBatchDifferential(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(42))
	ctx := context.Background()
	for trial := 0; trial < 220; trial++ {
		entries := randomBatch(rng)
		got := SolveBatch(ctx, entries, BatchOptions{Workers: 1 + rng.Intn(4)})
		want := sequentialBatch(ctx, entries)
		if len(got) != len(entries) {
			t.Fatalf("trial %d: %d results for %d entries", trial, len(got), len(entries))
		}
		for i := range entries {
			g, w := got[i], want[i]
			if (g.Err == nil) != (w.Err == nil) {
				t.Fatalf("trial %d entry %d: batch err %v, sequential err %v", trial, i, g.Err, w.Err)
			}
			if g.Err != nil {
				if errors.Is(g.Err, ErrInfeasible) != errors.Is(w.Err, ErrInfeasible) {
					t.Fatalf("trial %d entry %d: infeasibility verdicts differ: batch %v, sequential %v", trial, i, g.Err, w.Err)
				}
				continue
			}
			if g.Solution.Cost != w.Solution.Cost {
				t.Fatalf("trial %d entry %d (algo %v): batch cost %d, sequential cost %d",
					trial, i, entries[i].Algo, g.Solution.Cost, w.Solution.Cost)
			}
			if g.Quality != w.Quality {
				t.Fatalf("trial %d entry %d (algo %v): batch quality %q, sequential %q",
					trial, i, entries[i].Algo, g.Quality, w.Quality)
			}
			if g.Solution.Length > entries[i].Problem.Deadline {
				t.Fatalf("trial %d entry %d: batch length %d exceeds deadline %d",
					trial, i, g.Solution.Length, entries[i].Problem.Deadline)
			}
			if sol, err := Evaluate(entries[i].Problem, g.Solution.Assign); err != nil || sol.Cost != g.Solution.Cost {
				t.Fatalf("trial %d entry %d: reported solution does not evaluate back (err %v)", trial, i, err)
			}
		}
	}
}

// TestSolveBatchSharesFrontier spot-checks the sharing contract directly: a
// pure same-instance sweep must report the exact frontier costs a standalone
// TreeFrontier run predicts.
func TestSolveBatchSharesFrontier(t *testing.T) {
	t.Parallel()
	p := treeProblem()
	wide := p
	wide.Deadline = 50
	front, err := TreeFrontier(wide)
	if err != nil {
		t.Fatal(err)
	}
	var entries []BatchEntry
	for L := 1; L <= 50; L++ {
		q := p
		q.Deadline = L
		entries = append(entries, BatchEntry{Problem: q, Algo: AlgoAuto})
	}
	res := SolveBatch(context.Background(), entries, BatchOptions{})
	for i, r := range res {
		L := i + 1
		wantFeasible := L >= front[0].Deadline
		if wantFeasible != (r.Err == nil) {
			t.Fatalf("deadline %d: feasible=%v, err=%v", L, wantFeasible, r.Err)
		}
		if r.Err != nil {
			continue
		}
		wantCost := front[0].Cost
		for _, bp := range front {
			if bp.Deadline <= L {
				wantCost = bp.Cost
			}
		}
		if r.Solution.Cost != wantCost {
			t.Fatalf("deadline %d: cost %d, frontier says %d", L, r.Solution.Cost, wantCost)
		}
	}
}

// TestSolveBatchCancel cancels a batch mid-flight and requires (a) entries
// to report either a real result or the context error, and (b) no worker
// goroutines to outlive the call.
func TestSolveBatchCancel(t *testing.T) {
	before := runtime.NumGoroutine()
	rng := rand.New(rand.NewSource(7))
	var entries []BatchEntry
	for i := 0; i < 40; i++ {
		entries = append(entries, BatchEntry{Problem: randomProblem(rng, 14, i%2 == 0), Algo: AlgoAuto})
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the batch even starts: every entry must fail fast
	res := SolveBatch(ctx, entries, BatchOptions{Workers: 4})
	for i, r := range res {
		if r.Err == nil {
			t.Fatalf("entry %d: no error from a cancelled batch", i)
		}
	}

	// And a mid-flight cancellation: results must be a mix of completed
	// entries and context errors, never corrupt values.
	ctx2, cancel2 := context.WithCancel(context.Background())
	go func() { time.Sleep(200 * time.Microsecond); cancel2() }()
	res2 := SolveBatch(ctx2, entries, BatchOptions{Workers: 2})
	cancel2()
	for i, r := range res2 {
		if r.Err != nil {
			continue
		}
		if sol, err := Evaluate(entries[i].Problem, r.Solution.Assign); err != nil || sol.Cost != r.Solution.Cost {
			t.Fatalf("entry %d: completed entry of a cancelled batch does not evaluate back (err %v)", i, err)
		}
	}

	// Worker goroutines are joined before SolveBatch returns; give the
	// runtime a moment to retire exiting goroutines, then compare.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, n)
	}
}
