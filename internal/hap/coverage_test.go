package hap

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"

	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
)

// forceProcs pins GOMAXPROCS for one test so the parallel solver paths run
// even on single-CPU CI containers (where GOMAXPROCS(0) == 1 would make
// ExactParallelCtx and the tree worker pool silently fall back to serial).
func forceProcs(t *testing.T, n int) {
	old := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

// knapsackChain builds a chain whose per-node time/cost tradeoffs are
// inversely related with node-dependent prices, and a mid-range deadline.
// Branch-and-bound on it cannot prune early — the state space is the classic
// exponential knapsack frontier — which makes it the workhorse for the
// cancellation and budget-exhaustion paths that need a search too big to
// finish.
func knapsackChain(n int) Problem {
	g := dfg.Chain(n)
	t := fu.NewTable(n, 3)
	for v := 0; v < n; v++ {
		t.MustSet(v, []int{3, 2, 1}, []int64{1, 3 + int64(v%3), 7 + int64(v%5)})
	}
	return Problem{Graph: g, Table: t, Deadline: 2 * n}
}

func TestSearchStatsZeroValue(t *testing.T) {
	var s SearchStats
	if _, _, ok := s.Incumbent(); ok {
		t.Error("zero-value stats report an incumbent")
	}
	s.reset()
	if _, _, ok := s.Incumbent(); ok {
		t.Error("reset stats report an incumbent")
	}
	if _, ok := s.LowerBound(); ok {
		t.Error("reset stats report a lower bound")
	}
	if s.Explored() != 0 {
		t.Errorf("reset stats explored %d states", s.Explored())
	}
}

func TestExactCtxEdgeCases(t *testing.T) {
	if _, err := ExactCtx(context.Background(), Problem{}, ExactOptions{}); err == nil {
		t.Error("invalid problem accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ExactCtx(ctx, pathProblem(), ExactOptions{}); !errors.Is(err, context.Canceled) {
		t.Errorf("dead context: err %v, want Canceled", err)
	}
	tight := pathProblem()
	tight.Deadline = 3 // min makespan is 4
	if _, err := ExactCtx(context.Background(), tight, ExactOptions{}); !errors.Is(err, ErrInfeasible) {
		t.Errorf("sub-makespan deadline: err %v, want ErrInfeasible", err)
	}
}

func TestExactCtxCancelMidSearch(t *testing.T) {
	p := knapsackChain(22)
	// The entry poll passes; the next poll — 4096 states into the search —
	// cancels, so the run must unwind with the context error while the stats
	// keep the seeded incumbent and a frontier lower bound.
	ctx := &countdownCtx{Context: context.Background(), after: 1}
	var stats SearchStats
	_, err := ExactCtx(ctx, p, ExactOptions{Stats: &stats})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want Canceled", err)
	}
	a, cost, ok := stats.Incumbent()
	if !ok {
		t.Fatal("cancelled run lost its seeded incumbent")
	}
	s, verr := Evaluate(p, a)
	if verr != nil || s.Length > p.Deadline || s.Cost != cost {
		t.Fatalf("incumbent invalid: %v, length %d, cost %d vs %d", verr, s.Length, s.Cost, cost)
	}
	lb, ok := stats.LowerBound()
	if !ok || lb > cost {
		t.Fatalf("lower bound (%d, %v) inconsistent with incumbent cost %d", lb, ok, cost)
	}
	if stats.Explored() < 4096 {
		t.Fatalf("explored %d states; the cancellation poll never fired", stats.Explored())
	}
}

// TestExactParallelDifferential drives the worker fan-out against the serial
// solver on random instances: same optimum, and a completed parallel search
// must prove it (lower bound == cost, incumbent published, states counted).
func TestExactParallelDifferential(t *testing.T) {
	forceProcs(t, 4)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		p := randomProblem(rng, 9, false)
		var stats SearchStats
		got, err := ExactParallelCtx(context.Background(), p, ExactOptions{Stats: &stats})
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		want, err := Exact(p, ExactOptions{})
		if err != nil {
			t.Fatalf("instance %d: serial reference: %v", i, err)
		}
		if got.Cost != want.Cost {
			t.Fatalf("instance %d: parallel cost %d, serial %d", i, got.Cost, want.Cost)
		}
		lb, ok := stats.LowerBound()
		if !ok || lb != got.Cost {
			t.Fatalf("instance %d: completed search bound (%d, %v), want proof of %d", i, lb, ok, got.Cost)
		}
		if _, c, ok := stats.Incumbent(); !ok || c != got.Cost {
			t.Fatalf("instance %d: incumbent (%d, %v), want %d", i, c, ok, got.Cost)
		}
		if stats.Explored() == 0 {
			t.Fatalf("instance %d: no states counted", i)
		}
	}
}

func TestExactParallelBudgetExhausted(t *testing.T) {
	forceProcs(t, 4)
	p := knapsackChain(12)
	var stats SearchStats
	_, err := ExactParallelCtx(context.Background(), p, ExactOptions{MaxStates: 4, Stats: &stats})
	if !errors.Is(err, ErrSearchTooLarge) {
		t.Fatalf("err %v, want ErrSearchTooLarge", err)
	}
	opt, oerr := Exact(p, ExactOptions{})
	if oerr != nil {
		t.Fatal(oerr)
	}
	lb, ok := stats.LowerBound()
	if !ok || lb > opt.Cost {
		t.Fatalf("early-stop bound (%d, %v) exceeds the true optimum %d", lb, ok, opt.Cost)
	}
}

func TestExactParallelCancelled(t *testing.T) {
	forceProcs(t, 4)
	p := knapsackChain(20)
	ctx := &countdownCtx{Context: context.Background(), after: 1}
	var stats SearchStats
	_, err := ExactParallelCtx(ctx, p, ExactOptions{Stats: &stats})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want Canceled", err)
	}
	a, cost, ok := stats.Incumbent()
	if !ok {
		t.Fatal("cancelled run lost its seeded incumbent")
	}
	if s, verr := Evaluate(p, a); verr != nil || s.Length > p.Deadline || s.Cost != cost {
		t.Fatalf("incumbent invalid: %v", verr)
	}
	if lb, ok := stats.LowerBound(); !ok || lb > cost {
		t.Fatalf("lower bound (%d, %v) inconsistent with incumbent cost %d", lb, ok, cost)
	}
}

func TestExactParallelEdgeCases(t *testing.T) {
	forceProcs(t, 4)
	if _, err := ExactParallelCtx(context.Background(), Problem{}, ExactOptions{}); err == nil {
		t.Error("invalid problem accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ExactParallelCtx(ctx, treeProblem(), ExactOptions{}); !errors.Is(err, context.Canceled) {
		t.Errorf("dead context: err %v, want Canceled", err)
	}
	tight := treeProblem()
	tight.Deadline = 2 // min makespan is 3 (depth-3 tree, all-fastest time 1)
	if _, err := ExactParallel(tight, ExactOptions{}); !errors.Is(err, ErrInfeasible) {
		t.Errorf("sub-makespan deadline: err %v, want ErrInfeasible", err)
	}
	got, err := ExactParallel(treeProblem(), ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := TreeAssign(treeProblem())
	if err != nil {
		t.Fatal(err)
	}
	if got.Cost != want.Cost {
		t.Errorf("parallel optimum %d, tree DP %d", got.Cost, want.Cost)
	}
}

func TestBruteForceEdgeCases(t *testing.T) {
	if _, err := BruteForce(Problem{}); err == nil {
		t.Error("invalid problem accepted")
	}
	if _, err := BruteForce(knapsackChain(18)); err == nil {
		t.Error("3^18 search space accepted; the size guard is gone")
	}
	tight := pathProblem()
	tight.Deadline = 3
	if _, err := BruteForce(tight); !errors.Is(err, ErrInfeasible) {
		t.Errorf("sub-makespan deadline: err %v, want ErrInfeasible", err)
	}
}

func TestAnnealCancelKeepsIncumbent(t *testing.T) {
	// The first move-loop poll (i == 0) sees a cancelled context; the greedy
	// warm start is already a feasible incumbent, so the partial result comes
	// back alongside the context error.
	ctx := &countdownCtx{Context: context.Background(), after: 0}
	sol, err := AnnealCtx(ctx, pathProblem(), AnnealOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want Canceled", err)
	}
	if sol.Assign == nil || !Feasible(pathProblem(), sol.Assign) {
		t.Fatalf("cancelled anneal lost its feasible incumbent: %+v", sol)
	}
}

func TestAnnealCancelWithoutIncumbent(t *testing.T) {
	// An infeasible instance never produces an incumbent, so cancellation
	// returns the bare context error.
	p := pathProblem()
	p.Deadline = 3
	ctx := &countdownCtx{Context: context.Background(), after: 0}
	sol, err := AnnealCtx(ctx, p, AnnealOptions{})
	if !errors.Is(err, context.Canceled) || sol.Assign != nil {
		t.Fatalf("got (%+v, %v), want empty solution with Canceled", sol, err)
	}
}

func TestAnnealReheatAndInfeasible(t *testing.T) {
	// ReheatAfter: 1 resets the temperature on virtually every move; the walk
	// must still land on a feasible solution.
	sol, err := Anneal(diamondProblem(), AnnealOptions{Moves: 500, ReheatAfter: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !Feasible(diamondProblem(), sol.Assign) {
		t.Fatalf("reheated anneal returned an infeasible assignment: %+v", sol)
	}
	p := pathProblem()
	p.Deadline = 3
	if _, err := Anneal(p, AnnealOptions{Moves: 300}); !errors.Is(err, ErrInfeasible) {
		t.Errorf("infeasible instance: err %v, want ErrInfeasible", err)
	}
	if _, err := Anneal(Problem{}, AnnealOptions{}); err == nil {
		t.Error("invalid problem accepted")
	}
}

// TestSolveCtxDispatch runs every algorithm through the façade on the path
// and tree worked examples: all must be feasible, and the optimal ones must
// match brute force.
func TestSolveCtxDispatch(t *testing.T) {
	optimal := map[Algorithm]bool{
		AlgoAuto: true, AlgoPath: true, AlgoTree: true,
		AlgoExact: true, AlgoAnytime: true,
	}
	p := pathProblem()
	want, err := BruteForce(p)
	if err != nil {
		t.Fatal(err)
	}
	for algo := range algoNames {
		if algo == AlgoTree {
			continue // a chain is an out-tree too, but keep shapes separate below
		}
		sol, err := Solve(p, algo)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if !Feasible(p, sol.Assign) {
			t.Fatalf("%v: infeasible result %+v", algo, sol)
		}
		if sol.Cost < want.Cost || (optimal[algo] && sol.Cost != want.Cost) {
			t.Fatalf("%v: cost %d vs optimum %d", algo, sol.Cost, want.Cost)
		}
	}

	tp := treeProblem()
	twant, err := BruteForce(tp)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{AlgoAuto, AlgoTree, AlgoAnytime} {
		sol, err := Solve(tp, algo)
		if err != nil {
			t.Fatalf("%v on tree: %v", algo, err)
		}
		if sol.Cost != twant.Cost {
			t.Fatalf("%v on tree: cost %d, optimum %d", algo, sol.Cost, twant.Cost)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SolveCtx(ctx, p, AlgoGreedy); !errors.Is(err, context.Canceled) {
		t.Errorf("dead context: err %v, want Canceled", err)
	}
	if _, err := Solve(p, Algorithm(99)); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if got := Algorithm(99).String(); got != "Algorithm(99)" {
		t.Errorf("String() = %q", got)
	}
	if _, err := ParseAlgorithm("nope"); err == nil {
		t.Error("unknown algorithm name parsed")
	}
	for algo, name := range algoNames {
		back, err := ParseAlgorithm(name)
		if err != nil || back != algo {
			t.Errorf("ParseAlgorithm(%q) = (%v, %v), want %v", name, back, err, algo)
		}
	}
}

func TestFeasible(t *testing.T) {
	p := pathProblem()
	fast := minTimeAssignment(p.Table)
	if !Feasible(p, fast) {
		t.Error("all-fastest assignment reported infeasible")
	}
	slow := minCostAssignment(p.Table)
	if Feasible(p, slow) {
		t.Error("all-cheapest assignment (length 13 > 10) reported feasible")
	}
	if Feasible(p, Assignment{0}) {
		t.Error("short assignment reported feasible")
	}
}

func TestProblemValidateCyclicGraph(t *testing.T) {
	g := dfg.New()
	a := g.MustAddNode("a", "")
	b := g.MustAddNode("b", "")
	g.MustAddEdge(a, b, 0)
	g.MustAddEdge(b, a, 0)
	p := Problem{Graph: g, Table: fu.NewTable(2, 2), Deadline: 5}
	if err := p.Validate(); err == nil {
		t.Error("zero-delay cycle validated")
	}
}

func TestDistinctOptionsDuplicates(t *testing.T) {
	tab := fu.NewTable(1, 4)
	tab.MustSet(0, []int{2, 3, 2, 3}, []int64{5, 1, 5, 9})
	got := distinctOptions(tab, 0)
	// Type 2 duplicates type 0's (2,5); types 1 and 3 differ in cost.
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 3 {
		t.Fatalf("distinct options %v, want [0 1 3]", got)
	}
}

// TestGreedyRatioUpgradeChoices drives the ratio comparator through the
// reachable paid-vs-paid comparisons: cross-multiplied ratios across nodes
// with distinct time-gain/cost-increase tradeoffs, including the tie broken
// on raw time gain. (The free-upgrade arms of the comparator are defensive:
// the loop starts every node on its cheapest-then-fastest type and only ever
// moves to non-dominated faster types, so a candidate that is faster without
// costing more never arises.)
func TestGreedyRatioUpgradeChoices(t *testing.T) {
	g := dfg.Chain(3)
	tab := fu.NewTable(3, 4)
	tab.MustSet(0, []int{4, 2, 4, 4}, []int64{1, 3, 5, 9}) // one upgrade, ratio 1
	tab.MustSet(1, []int{5, 3, 2, 1}, []int64{1, 1, 1, 3}) // cheap-tie start, one paid upgrade
	tab.MustSet(2, []int{6, 5, 3, 6}, []int64{2, 5, 5, 9}) // two upgrades with distinct ratios
	p := Problem{Graph: g, Table: tab, Deadline: 7}

	sol, err := GreedyRatio(p)
	if err != nil {
		t.Fatal(err)
	}
	if !Feasible(p, sol.Assign) {
		t.Fatalf("infeasible result %+v", sol)
	}
	opt, err := BruteForce(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost < opt.Cost {
		t.Fatalf("heuristic cost %d beats the optimum %d", sol.Cost, opt.Cost)
	}
}

func TestFrontierSolverHorizonAndShape(t *testing.T) {
	p := treeProblem()
	f, err := NewFrontierSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	if f.Horizon() != p.Deadline {
		t.Errorf("horizon %d, want %d", f.Horizon(), p.Deadline)
	}
	if _, err := NewFrontierSolver(diamondProblem()); !errors.Is(err, ErrShape) {
		t.Errorf("diamond accepted: err %v, want ErrShape", err)
	}
	if _, err := NewFrontierSolver(Problem{}); err == nil {
		t.Error("invalid problem accepted")
	}
}

// TestTreeParallelRecompute forces the worker-pool curve evaluation (trees
// at or above parallelMinDirty dirty nodes) and checks it against the serial
// path on the same instance.
func TestTreeParallelRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := parallelMinDirty + 100
	g := dfg.RandomTree(rng, n)
	tab := fu.RandomTable(rng, n, 3)
	min, err := MinMakespan(g, tab)
	if err != nil {
		t.Fatal(err)
	}
	p := Problem{Graph: g, Table: tab, Deadline: min + 25}

	serial, err := TreeAssign(p) // GOMAXPROCS is 1 on CI: serial reference
	if err != nil {
		t.Fatal(err)
	}
	forceProcs(t, 4)
	par, err := TreeAssign(p)
	if err != nil {
		t.Fatal(err)
	}
	if par.Cost != serial.Cost {
		t.Fatalf("parallel cost %d, serial %d", par.Cost, serial.Cost)
	}
	if !Feasible(p, par.Assign) {
		t.Fatal("parallel solve returned an infeasible assignment")
	}
}

func TestSolveAnytimeMoreEdges(t *testing.T) {
	if _, err := SolveAnytime(context.Background(), Problem{}, AnytimeOptions{}); err == nil {
		t.Error("invalid problem accepted")
	}

	// Shape fast paths propagate infeasibility from the DP.
	tightPath := pathProblem()
	tightPath.Deadline = 3
	if _, err := SolveAnytime(context.Background(), tightPath, AnytimeOptions{}); !errors.Is(err, ErrInfeasible) {
		t.Errorf("infeasible path: err %v, want ErrInfeasible", err)
	}
	tightTree := treeProblem()
	tightTree.Deadline = 2
	if _, err := SolveAnytime(context.Background(), tightTree, AnytimeOptions{}); !errors.Is(err, ErrInfeasible) {
		t.Errorf("infeasible tree: err %v, want ErrInfeasible", err)
	}

	// An all-zero-cost table drives the gap denominator to its floor of 1;
	// the result must still carry a zero gap, not NaN or a division artifact.
	free := diamondProblem()
	tab := fu.NewTable(4, 2)
	for v := 0; v < 4; v++ {
		tab.MustSet(v, []int{1, 2}, []int64{0, 0})
	}
	free.Table = tab
	res, err := SolveAnytime(context.Background(), free, AnytimeOptions{SkipExact: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Quality != QualityHeuristic || res.Gap != 0 || res.Cost != 0 || res.LowerBound != 0 {
		t.Fatalf("zero-cost instance: %+v", res)
	}
}

// TestSolveAnytimeCancelSweep cancels the sequential ladder after every poll
// count from 1 to 12, so each exit point between rungs (and inside the anneal
// and exact stages) is crossed at least once. Whatever the cut, the result
// must be a feasible incumbent with a consistent bound — or a bare context
// error when the ladder was cancelled before any rung produced one.
func TestSolveAnytimeCancelSweep(t *testing.T) {
	p := diamondProblem()
	opt, err := Exact(p, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for after := int64(1); after <= 12; after++ {
		ctx := &countdownCtx{Context: context.Background(), after: after}
		res, err := SolveAnytime(ctx, p, AnytimeOptions{Sequential: true})
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("after %d polls: err %v", after, err)
			}
			continue
		}
		if !Feasible(p, res.Assign) {
			t.Fatalf("after %d polls: infeasible result %+v", after, res)
		}
		if res.LowerBound > opt.Cost || res.Cost < opt.Cost {
			t.Fatalf("after %d polls: bound %d / cost %d vs optimum %d",
				after, res.LowerBound, res.Cost, opt.Cost)
		}
		if res.Quality == QualityExact && res.Cost != opt.Cost {
			t.Fatalf("after %d polls: exact verdict with cost %d != optimum %d", after, res.Cost, opt.Cost)
		}
	}
}
