package hap

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
)

// hardInstance builds a problem whose exact search is large enough to be
// cancelled mid-flight: a wide shallow DAG with many distinct type options
// and a deadline loose enough that the time bound prunes little.
func hardInstance(n int) Problem {
	rng := rand.New(rand.NewSource(7))
	g := dfg.RandomDAG(rng, n, 0.08)
	t := fu.RandomTable(rng, n, 4)
	p := Problem{Graph: g, Table: t}
	min, _ := MinMakespan(g, t)
	p.Deadline = 3 * min
	return p
}

func TestSolveCtxCancelledBeforeStart(t *testing.T) {
	p := hardInstance(12)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, algo := range []Algorithm{AlgoAuto, AlgoRepeat, AlgoExact} {
		if _, err := SolveCtx(ctx, p, algo); !errors.Is(err, context.Canceled) {
			t.Errorf("SolveCtx(%v) on cancelled ctx: err = %v, want context.Canceled", algo, err)
		}
	}
}

func TestExactCtxCancellationUnwinds(t *testing.T) {
	p := hardInstance(26)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := ExactCtx(ctx, p, ExactOptions{})
	if err == nil {
		t.Skip("instance solved before the deadline; nothing to cancel")
	}
	if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, ErrSearchTooLarge) {
		t.Fatalf("err = %v, want deadline exceeded (or budget)", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("cancellation took %v, want prompt unwind", d)
	}
}

func TestExactParallelCtxCancellationStopsWorkers(t *testing.T) {
	p := hardInstance(26)
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := ExactParallelCtx(ctx, p, ExactOptions{})
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		// The search may legitimately finish (fast machine) or exhaust the
		// budget before the cancel lands; only a cancelled run must report
		// the context's error.
		if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, ErrSearchTooLarge) {
			t.Fatalf("err = %v, want context.Canceled, budget, or nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ExactParallelCtx did not return after cancellation")
	}
	// All workers must have been joined: the goroutine count settles back to
	// (about) the baseline. Retry to ride out unrelated runtime goroutines.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: before=%d now=%d", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestExactParallelCtxMatchesExactWhenUncancelled(t *testing.T) {
	p := hardInstance(14)
	want, err := Exact(p, ExactOptions{})
	if err != nil {
		t.Fatalf("Exact: %v", err)
	}
	got, err := ExactParallelCtx(context.Background(), p, ExactOptions{})
	if err != nil {
		t.Fatalf("ExactParallelCtx: %v", err)
	}
	if got.Cost != want.Cost {
		t.Fatalf("cost mismatch: parallel %d, serial %d", got.Cost, want.Cost)
	}
}

func TestAssignRepeatCtxCancelBetweenIterations(t *testing.T) {
	// The elliptic benchmark has duplicated nodes, so Repeat runs several
	// fixing iterations; a pre-cancelled context must stop it immediately.
	p := hardInstance(40)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := AssignRepeatCtx(ctx, p); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// And an unconstrained run still matches the plain entry point.
	want, err := AssignRepeat(p)
	if err != nil {
		t.Fatalf("AssignRepeat: %v", err)
	}
	got, err := AssignRepeatCtx(context.Background(), p)
	if err != nil {
		t.Fatalf("AssignRepeatCtx: %v", err)
	}
	if got.Cost != want.Cost || got.Length != want.Length {
		t.Fatalf("ctx variant diverged: got (%d,%d), want (%d,%d)", got.Cost, got.Length, want.Cost, want.Length)
	}
}

func TestFrontierSolverServesAllDeadlines(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := dfg.RandomTree(rng, 60)
	tab := fu.RandomTable(rng, 60, 3)
	min, err := MinMakespan(g, tab)
	if err != nil {
		t.Fatal(err)
	}
	horizon := 3 * min
	fs, err := NewFrontierSolver(Problem{Graph: g, Table: tab, Deadline: horizon})
	if err != nil {
		t.Fatalf("NewFrontierSolver: %v", err)
	}
	front := fs.Frontier()
	if len(front) == 0 {
		t.Fatal("empty frontier on a feasible instance")
	}
	if front[0].Deadline != min {
		t.Errorf("first breakpoint at %d, want min makespan %d", front[0].Deadline, min)
	}
	for L := min - 2; L <= horizon; L++ {
		want, werr := TreeAssign(Problem{Graph: g, Table: tab, Deadline: L})
		got, gerr := fs.SolveAt(L)
		if werr != nil {
			if !errors.Is(gerr, ErrInfeasible) {
				t.Fatalf("L=%d: SolveAt err = %v, want ErrInfeasible", L, gerr)
			}
			continue
		}
		if gerr != nil {
			t.Fatalf("L=%d: SolveAt: %v", L, gerr)
		}
		if got.Cost != want.Cost {
			t.Fatalf("L=%d: SolveAt cost %d, TreeAssign cost %d", L, got.Cost, want.Cost)
		}
		if got.Length > L {
			t.Fatalf("L=%d: SolveAt length %d exceeds deadline", L, got.Length)
		}
		if s, err := Evaluate(Problem{Graph: g, Table: tab, Deadline: L}, got.Assign); err != nil || s.Cost != got.Cost || s.Length != got.Length {
			t.Fatalf("L=%d: SolveAt solution does not evaluate to itself: %v %+v", L, err, s)
		}
	}
	if fs.Complete() {
		// Past-horizon deadlines must reuse the final bracket.
		got, err := fs.SolveAt(horizon + 100)
		if err != nil {
			t.Fatalf("SolveAt beyond horizon on complete curve: %v", err)
		}
		if got.Cost != front[len(front)-1].Cost {
			t.Fatalf("beyond-horizon cost %d, want %d", got.Cost, front[len(front)-1].Cost)
		}
	} else {
		if _, err := fs.SolveAt(horizon + 100); !errors.Is(err, ErrBeyondHorizon) {
			t.Fatalf("SolveAt beyond truncated horizon: err = %v, want ErrBeyondHorizon", err)
		}
	}
}

func TestFrontierSolverInForest(t *testing.T) {
	// An in-forest (reversed tree) exercises the reversed-orientation path.
	g := dfg.New()
	a := g.MustAddNode("a", "mul")
	b := g.MustAddNode("b", "add")
	c := g.MustAddNode("c", "add")
	g.MustAddEdge(a, c, 0)
	g.MustAddEdge(b, c, 0)
	tab := fu.UniformTable(3, []int{1, 2, 4}, []int64{10, 5, 1})
	fs, err := NewFrontierSolver(Problem{Graph: g, Table: tab, Deadline: 8})
	if err != nil {
		t.Fatalf("NewFrontierSolver: %v", err)
	}
	for L := 2; L <= 8; L++ {
		want, werr := TreeAssign(Problem{Graph: g, Table: tab, Deadline: L})
		got, gerr := fs.SolveAt(L)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("L=%d: err mismatch %v vs %v", L, werr, gerr)
		}
		if werr == nil && got.Cost != want.Cost {
			t.Fatalf("L=%d: cost %d, want %d", L, got.Cost, want.Cost)
		}
	}
}
