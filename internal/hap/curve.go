package hap

import (
	"sync"

	"hetsynth/internal/fu"
)

// This file holds the sparse Pareto-frontier representation behind the
// Tree_Assign dynamic program. The dense DP tabulates X_v[j] for every
// integer deadline j in [0, L]; but X_v is a non-increasing step function of
// j, so it is fully described by its breakpoints — the deadlines where the
// optimal subtree cost strictly improves. A curve stores exactly those
// breakpoints, making per-node work proportional to the number of distinct
// optimal costs instead of L·K and dropping memory from O(|V|·L) to the
// frontier size.

// curvePoint is one breakpoint of a deadline→cost Pareto curve: C is the
// optimal cost for every deadline in [T, nextBreakpoint.T).
type curvePoint struct {
	T int   // smallest deadline at which C becomes achievable
	C int64 // optimal cost from that deadline on
}

// curve is a non-increasing step function stored as its breakpoints:
// strictly increasing T, strictly decreasing C. A nil/empty curve is the
// everywhere-infeasible function. Deadlines below the first breakpoint are
// infeasible; beyond the last breakpoint the cost stays at the final C.
type curve []curvePoint

// zeroCurve is the curve of an empty child set: cost 0 at every deadline.
var zeroCurve = curve{{T: 0, C: 0}}

// idxAt returns the index of the breakpoint in effect at deadline j
// (the largest i with c[i].T <= j), or -1 when j is infeasible.
func (c curve) idxAt(j int) int {
	lo, hi := 0, len(c)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c[mid].T <= j {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

// eval returns the curve value at deadline j, or inf when no assignment of
// the underlying subtree can meet j.
func (c curve) eval(j int) int64 {
	i := c.idxAt(j)
	if i < 0 {
		return inf
	}
	return c[i].C
}

// dpScratch holds the reusable transient buffers of the per-node curve
// construction. Each solver (and each parallel DP worker) owns one; retained
// curves live in the solver's curveArena (see arena.go), so every scratch
// buffer is dead the moment its current call returns and the scratch can
// always go back to the pool whole.
type dpScratch struct {
	kids []curve      // the child curves being summed
	idx  []int        // per-run cursors of the k-way merges
	sum  []curvePoint // the summed child curve (consumed immediately)
	pts  []curvePoint // envelope breakpoints before the arena copy
}

// scratchPool recycles dpScratch buffers across solves, so a steady stream
// of tree solves (the serving hot path) reuses the same merge cursors
// instead of re-growing them per request.
var scratchPool = sync.Pool{New: func() any { return new(dpScratch) }}

// getScratch hands out an exclusive scratch.
func getScratch() *dpScratch { return scratchPool.Get().(*dpScratch) }

// putScratch recycles sc. Safe whenever the owner is done with its current
// merge: nothing retained aliases a scratch buffer.
func putScratch(sc *dpScratch) { scratchPool.Put(sc) }

// sumCurves adds a set of step functions: out(j) = Σ curves[i](j), infeasible
// wherever any addend is. Breakpoints beyond limit are discarded (the DP never
// queries past the deadline). The result aliases sc.sum — or one of the
// inputs when len(curves) == 1 — and is only valid until the next call with
// the same scratch; callers must copy anything they keep.
//
// hetsynth:hotpath
func sumCurves(curves []curve, limit int, sc *dpScratch) curve {
	switch len(curves) {
	case 0:
		return zeroCurve
	case 1:
		c := curves[0]
		// Already capped by construction everywhere but the forest-root sum,
		// where a single root may still need truncating.
		for len(c) > 0 && c[len(c)-1].T > limit {
			c = c[:len(c)-1]
		}
		return c
	}
	start := 0
	for _, c := range curves {
		if len(c) == 0 {
			return nil
		}
		if c[0].T > start {
			start = c[0].T
		}
	}
	if start > limit {
		return nil
	}
	// Per-addend cursors walk the breakpoints in time order (each addend is
	// already sorted), accumulating the running sum at every time where any
	// addend's cost drops. Deltas are strictly negative, so the result is
	// strictly monotone.
	if cap(sc.idx) < len(curves) {
		sc.idx = make([]int, len(curves))
	}
	idx := sc.idx[:len(curves)]
	var base int64
	for i, c := range curves {
		idx[i] = c.idxAt(start)
		base += c[idx[i]].C
	}
	out := append(sc.sum[:0], curvePoint{T: start, C: base})
	cur := base
	for {
		nt := limit + 1
		for i, c := range curves {
			if j := idx[i] + 1; j < len(c) && c[j].T < nt {
				nt = c[j].T
			}
		}
		if nt > limit {
			break
		}
		for i, c := range curves {
			if j := idx[i] + 1; j < len(c) && c[j].T == nt {
				cur += c[j].C - c[idx[i]].C
				idx[i] = j
			}
		}
		out = append(out, curvePoint{T: nt, C: cur})
	}
	sc.sum = out
	return out
}

// envelope builds the lower envelope of the per-type candidate curves
// {(T_k + t, C_k + c) : (t, c) ∈ sum, k ∈ cand} truncated at limit — the
// node's own Pareto curve. Each candidate curve is non-increasing, so the
// envelope at deadline j is simply the minimum cost among all shifted
// breakpoints with time ≤ j: a running minimum over the breakpoints in time
// order. Each candidate's shifted breakpoints are already time-sorted, so a
// K-way merge over the candidate heads visits them in order without a
// comparison sort. The result aliases sc.pts and is only valid until the
// next call with the same scratch; callers copy what they retain (the tree
// solver copies it into its curve arena).
//
// hetsynth:hotpath
func envelope(sum curve, cand []fu.TypeID, timeRow []int, costRow []int64, limit int, sc *dpScratch) curve {
	if cap(sc.idx) < len(cand) {
		sc.idx = make([]int, len(cand))
	}
	idx := sc.idx[:len(cand)]
	for i := range idx {
		idx[i] = 0
	}
	pts := sc.pts[:0]
	best := int64(inf)
	for {
		sel := -1
		var selT int
		var selC int64
		for i, k := range cand {
			if idx[i] >= len(sum) {
				continue
			}
			t := sum[idx[i]].T + timeRow[k]
			if t > limit {
				idx[i] = len(sum) // later breakpoints are later still
				continue
			}
			c := sum[idx[i]].C + costRow[k]
			if sel < 0 || t < selT || (t == selT && c < selC) {
				sel, selT, selC = i, t, c
			}
		}
		if sel < 0 {
			break
		}
		idx[sel]++
		if selC < best {
			best = selC
			pts = append(pts, curvePoint{T: selT, C: selC})
		}
	}
	sc.pts = pts
	if len(pts) == 0 {
		return nil
	}
	return curve(pts)
}
