package hap

import (
	"testing"

	"hetsynth/internal/fu"
)

func TestCurveEval(t *testing.T) {
	c := curve{{T: 3, C: 40}, {T: 5, C: 25}, {T: 9, C: 10}}
	cases := []struct {
		j    int
		want int64
	}{
		{0, inf}, {2, inf}, {3, 40}, {4, 40}, {5, 25}, {8, 25}, {9, 10}, {100, 10},
	}
	for _, tc := range cases {
		if got := c.eval(tc.j); got != tc.want {
			t.Errorf("eval(%d) = %d, want %d", tc.j, got, tc.want)
		}
	}
	if got := curve(nil).eval(7); got != inf {
		t.Errorf("nil curve eval = %d, want inf", got)
	}
}

func TestSumCurvesEdgeCases(t *testing.T) {
	var sc dpScratch
	if got := sumCurves(nil, 10, &sc); len(got) != 1 || got[0] != (curvePoint{T: 0, C: 0}) {
		t.Fatalf("empty sum = %+v, want zero curve", got)
	}
	a := curve{{T: 2, C: 8}, {T: 6, C: 3}, {T: 12, C: 1}}
	if got := sumCurves([]curve{a}, 7, &sc); len(got) != 2 || got[1] != (curvePoint{T: 6, C: 3}) {
		t.Fatalf("single-addend truncation = %+v", got)
	}
	if got := sumCurves([]curve{a, nil}, 10, &sc); got != nil {
		t.Fatalf("sum with infeasible addend = %+v, want nil", got)
	}
	// Both addends' first breakpoints beyond the limit: infeasible.
	if got := sumCurves([]curve{a, {{T: 9, C: 1}}}, 8, &sc); got != nil {
		t.Fatalf("sum starting past limit = %+v, want nil", got)
	}
}

func TestEnvelopeTruncatesAndDominates(t *testing.T) {
	var sc dpScratch
	// One node, two children summed to `sum`; type 0 fast+expensive, type 1
	// slow+cheap, type 2 dominated by type 0 (same time, higher cost).
	sum := curve{{T: 1, C: 20}, {T: 4, C: 5}}
	times := []int{2, 5, 2}
	costs := []int64{30, 3, 31}
	got := envelope(sum, []fu.TypeID{0, 1, 2}, times, costs, 9, &sc)
	want := curve{{T: 3, C: 50}, {T: 6, C: 23}, {T: 9, C: 8}}
	if len(got) != len(want) {
		t.Fatalf("envelope = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("envelope = %+v, want %+v", got, want)
		}
	}
	if got := envelope(sum, []fu.TypeID{1}, times, costs, 5, &sc); got != nil {
		t.Fatalf("envelope past limit = %+v, want nil", got)
	}
}

// decodeCurve turns fuzz bytes into a well-formed curve: strictly increasing
// times, strictly decreasing costs. Returns leftover bytes.
func decodeCurve(data []byte, npts int) (curve, []byte) {
	c := curve{}
	tm, cost := 0, int64(1+len(data))*100
	for i := 0; i < npts && len(data) >= 2; i++ {
		tm += 1 + int(data[0]%7)
		cost -= 1 + int64(data[1]%9)
		data = data[2:]
		c = append(c, curvePoint{T: tm, C: cost})
	}
	return c, data
}

// FuzzCurveMerge cross-checks the two merge routines of the sparse DP
// against pointwise brute force: for every deadline j up to the limit,
// sumCurves must equal the sum of its addends' values and envelope must
// equal the cheapest shifted candidate, and both outputs must be strictly
// monotone breakpoint lists.
func FuzzCurveMerge(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{250, 1, 9, 200, 3, 3, 60, 61, 62, 63, 64, 65, 66, 67})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			t.Skip()
		}
		limit := 1 + int(data[0]%40)
		na, nb := int(data[1]%5), int(data[2]%5)
		data = data[3:]
		var a, b curve
		a, data = decodeCurve(data, na)
		b, data = decodeCurve(data, nb)

		var sc dpScratch
		sum := sumCurves([]curve{a, b}, limit, &sc)
		checkMonotone(t, "sum", sum)
		for j := 0; j <= limit; j++ {
			want := int64(inf)
			if va, vb := a.eval(j), b.eval(j); va != inf && vb != inf {
				want = va + vb
			}
			if got := sum.eval(j); got != want {
				t.Fatalf("sum.eval(%d) = %d, want %d (a=%+v b=%+v)", j, got, want, a, b)
			}
		}

		if len(sum) == 0 || len(data) < 4 {
			return
		}
		// Two candidate types decoded from the remaining bytes.
		times := []int{int(data[0] % 8), int(data[1] % 8)}
		costs := []int64{int64(data[2] % 50), int64(data[3] % 50)}
		// envelope must not alias sum (both live in the scratch): copy.
		in := append(curve(nil), sum...)
		env := envelope(in, []fu.TypeID{0, 1}, times, costs, limit, &sc)
		checkMonotone(t, "envelope", env)
		for j := 0; j <= limit; j++ {
			want := int64(inf)
			for k := 0; k < 2; k++ {
				if rem := j - times[k]; rem >= 0 {
					if x := in.eval(rem); x != inf && x+costs[k] < want {
						want = x + costs[k]
					}
				}
			}
			if got := env.eval(j); got != want {
				t.Fatalf("envelope.eval(%d) = %d, want %d (sum=%+v times=%v costs=%v)", j, got, want, in, times, costs)
			}
		}
	})
}

func checkMonotone(t *testing.T, name string, c curve) {
	t.Helper()
	for i := 1; i < len(c); i++ {
		if c[i].T <= c[i-1].T || c[i].C >= c[i-1].C {
			t.Fatalf("%s not strictly monotone: %+v", name, c)
		}
	}
}
