package hap

import (
	"fmt"

	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
)

// treeAssignDense is the original dense-table formulation of Tree_Assign:
// X[v][0..L] tabulated per node, O(|V|·L·K) time and O(|V|·L) memory. The
// production path (treeSolver, curve.go) replaced it with the sparse
// Pareto-frontier engine; this implementation is kept verbatim as the
// reference oracle for the differential tests, which assert that the sparse
// engine reproduces its costs AND assignments bit-for-bit. It accepts the
// same optional per-node type mask as treeAssignMasked.
func treeAssignDense(p Problem, allowed [][]bool) (Solution, error) {
	g, t, L := p.Graph, p.Table, p.Deadline
	n, K := g.N(), t.K()

	candidates := make([][]fu.TypeID, n)
	for v := 0; v < n; v++ {
		if allowed != nil && allowed[v] != nil {
			for k := 0; k < K; k++ {
				if allowed[v][k] {
					candidates[v] = append(candidates[v], fu.TypeID(k))
				}
			}
			continue
		}
		candidates[v] = distinctOptions(t, v)
	}

	rev, err := g.ReverseTopoOrder()
	if err != nil {
		return Solution{}, err
	}

	// X[v][j]: DP value as documented on TreeAssign; inf marks
	// infeasibility. choice[v][j]: the type realizing X[v][j], for traceback.
	X := make([][]int64, n)
	choice := make([][]fu.TypeID, n)
	for v := 0; v < n; v++ {
		X[v] = make([]int64, L+1)
		choice[v] = make([]fu.TypeID, L+1)
	}

	for _, vid := range rev {
		v := int(vid)
		children := g.Succ(vid)
		for j := 0; j <= L; j++ {
			best := int64(inf)
			bestK := fu.TypeID(-1)
			for _, k := range candidates[v] {
				rem := j - t.Time[v][k]
				if rem < 0 {
					continue
				}
				sum := t.Cost[v][k]
				ok := true
				for _, c := range children {
					xc := X[c][rem]
					if xc == inf {
						ok = false
						break
					}
					sum += xc
				}
				if ok && sum < best {
					best = sum
					bestK = fu.TypeID(k)
				}
			}
			X[v][j] = best
			choice[v][j] = bestK
		}
	}

	var total int64
	for _, r := range g.Roots() {
		if X[r][L] == inf {
			return Solution{}, ErrInfeasible
		}
		total += X[r][L]
	}

	// Traceback: every child of v inherits the remaining budget
	// j − T_k(v); within a subtree all children share it.
	assign := make(Assignment, n)
	var walk func(v int, j int)
	walk = func(v int, j int) {
		k := choice[v][j]
		assign[v] = k
		rem := j - t.Time[v][k]
		for _, c := range g.Succ(dfg.NodeID(v)) {
			walk(int(c), rem)
		}
	}
	for _, r := range g.Roots() {
		walk(int(r), L)
	}

	sol, err := Evaluate(p, assign)
	if err != nil {
		return Solution{}, err
	}
	if sol.Cost != total {
		return Solution{}, fmt.Errorf("hap: internal error: traceback cost %d != DP value %d", sol.Cost, total)
	}
	if sol.Length > L {
		return Solution{}, fmt.Errorf("hap: internal error: Tree_Assign produced length %d > %d", sol.Length, L)
	}
	return sol, nil
}
