package hap

import (
	"context"
	"fmt"

	"hetsynth/internal/cptree"
	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
)

// liftTable projects a table over DFG nodes onto the nodes of a critical-
// path tree: every copy of a node inherits the node's rows.
func liftTable(t *fu.Table, orig []dfg.NodeID) *fu.Table {
	lifted := fu.NewTable(len(orig), t.K())
	for w, v := range orig {
		lifted.MustSet(w, t.Time[v], t.Cost[v])
	}
	return lifted
}

// minTimeChoice picks, among the tree copies of DFG node v, the assigned
// type with the smallest execution time (ties: smaller cost, then smaller
// type index). Collapsing a duplicated node to its fastest copy can only
// shorten paths, so the collapsed assignment stays feasible — this is the
// selection rule shared by DFG_Assign_Once and DFG_Assign_Repeat.
func minTimeChoice(t *fu.Table, v dfg.NodeID, copies []dfg.NodeID, treeAssign Assignment) fu.TypeID {
	best := treeAssign[copies[0]]
	for _, w := range copies[1:] {
		k := treeAssign[w]
		switch {
		case t.Time[v][k] < t.Time[v][best]:
			best = k
		case t.Time[v][k] == t.Time[v][best] && t.Cost[v][k] < t.Cost[v][best]:
			best = k
		case t.Time[v][k] == t.Time[v][best] && t.Cost[v][k] == t.Cost[v][best] && k < best:
			best = k
		}
	}
	return best
}

// AssignOnce implements Algorithm DFG_Assign_Once (§5.3): expand the DFG
// (and its transpose) into critical-path trees, keep the smaller tree, solve
// it optimally with Tree_Assign, then collapse every duplicated node to the
// minimum-execution-time assignment among its copies.
//
// On trees the expansion is the identity, so AssignOnce returns the optimal
// solution; on general DFGs it is a heuristic whose result is always
// feasible when Tree_Assign succeeds.
func AssignOnce(p Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	tree, err := cptree.ExpandBoth(p.Graph)
	if err != nil {
		return Solution{}, err
	}
	tp := Problem{Graph: tree.Graph, Table: liftTable(p.Table, tree.Orig), Deadline: p.Deadline}
	tsol, err := TreeAssign(tp)
	if err != nil {
		return Solution{}, err
	}
	assign := make(Assignment, p.Graph.N())
	for v := range assign {
		assign[v] = minTimeChoice(p.Table, dfg.NodeID(v), tree.Copies[v], tsol.Assign)
	}
	sol, err := Evaluate(p, assign)
	if err != nil {
		return Solution{}, err
	}
	if sol.Length > p.Deadline {
		return Solution{}, fmt.Errorf("hap: internal error: DFG_Assign_Once produced length %d > %d", sol.Length, p.Deadline)
	}
	return sol, nil
}

// AssignRepeat implements Algorithm DFG_Assign_Repeat (§5.3): like
// AssignOnce, but after solving the tree it fixes duplicated nodes one at a
// time — most-copied first, since a node with more copies influences more
// critical paths — and re-runs Tree_Assign after each fixing so the
// remaining nodes can cash in the slack freed when all copies of the fixed
// node switch to its fastest chosen type.
//
// The re-runs are incremental: one treeSolver is kept across iterations,
// and pinning a node's copies invalidates only the DP curves on the copies'
// ancestor paths, so each iteration costs Σ affected-path work instead of a
// full |V_tree| solve. The iteration-by-iteration solutions are identical
// to re-solving from scratch.
//
// The paper recommends this algorithm: it matches Tree_Assign exactly on
// trees and dominates DFG_Assign_Once when many nodes are duplicated.
func AssignRepeat(p Problem) (Solution, error) {
	return AssignRepeatCtx(context.Background(), p)
}

// AssignRepeatCtx is AssignRepeat with cooperative cancellation: the context
// is polled before the expansion and between fixing iterations (each of
// which is an incremental re-solve, the unit of work worth interrupting), so
// a cancelled sweep stops after at most one iteration's worth of DP.
func AssignRepeatCtx(ctx context.Context, p Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	if err := ctx.Err(); err != nil {
		return Solution{}, err
	}
	tree, err := cptree.ExpandBoth(p.Graph)
	if err != nil {
		return Solution{}, err
	}
	tp := Problem{Graph: tree.Graph, Table: liftTable(p.Table, tree.Orig), Deadline: p.Deadline}
	solver, err := newTreeSolver(tp, nil, false)
	if err != nil {
		return Solution{}, err
	}
	defer solver.release()
	tsol, err := solver.solve()
	if err != nil {
		return Solution{}, err
	}

	dup := tree.Duplicated()
	assign := make(Assignment, p.Graph.N())
	fixed := make([]bool, p.Graph.N())

	for _, v := range dup {
		if err := ctx.Err(); err != nil {
			return Solution{}, err
		}
		k := minTimeChoice(p.Table, v, tree.Copies[v], tsol.Assign)
		assign[v] = k
		fixed[v] = true
		solver.pin(tree.Copies[v], k)
		tsol, err = solver.solve()
		if err != nil {
			// Pinning to the fastest copy keeps every path no longer than
			// before, so the masked instance stays feasible; any failure
			// here is a bug, not an input condition.
			return Solution{}, fmt.Errorf("hap: internal error: re-run after fixing %s failed: %w", p.Graph.Node(v).Name, err)
		}
	}

	for v := range assign {
		if !fixed[v] {
			assign[v] = tsol.Assign[tree.Copies[v][0]]
		}
	}
	sol, err := Evaluate(p, assign)
	if err != nil {
		return Solution{}, err
	}
	if sol.Length > p.Deadline {
		return Solution{}, fmt.Errorf("hap: internal error: DFG_Assign_Repeat produced length %d > %d", sol.Length, p.Deadline)
	}
	return sol, nil
}
