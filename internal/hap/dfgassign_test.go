package hap

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
)

// motivational reproduces the Figure 1–3 flow: a small DFG, three FU types
// P1 (fast, costly) to P3 (slow, cheap), and a deadline that forces a real
// tradeoff. The exact node values of the paper's figure are unreadable in
// the source text; the structure (5 nodes, two-level fan-in) and the
// phenomenon (the optimal assignment beats the naive one by a double-digit
// percentage) are what we reproduce.
func motivational() Problem {
	g := dfg.New()
	a := g.MustAddNode("A", "mul")
	b := g.MustAddNode("B", "mul")
	c := g.MustAddNode("C", "add")
	d := g.MustAddNode("D", "mul")
	e := g.MustAddNode("E", "add")
	g.MustAddEdge(a, c, 0)
	g.MustAddEdge(b, c, 0)
	g.MustAddEdge(c, e, 0)
	g.MustAddEdge(d, e, 0)
	t := fu.NewTable(5, 3)
	t.MustSet(0, []int{1, 2, 4}, []int64{10, 6, 2})
	t.MustSet(1, []int{2, 3, 6}, []int64{9, 6, 1})
	t.MustSet(2, []int{1, 2, 3}, []int64{8, 4, 2})
	t.MustSet(3, []int{2, 4, 7}, []int64{9, 5, 2})
	t.MustSet(4, []int{1, 3, 5}, []int64{7, 4, 1})
	return Problem{Graph: g, Table: t, Deadline: 6}
}

func TestMotivationalExampleOptimalBeatsGreedy(t *testing.T) {
	p := motivational()
	greedy, err := Greedy(p)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Exact(p, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := AssignRepeat(p)
	if err != nil {
		t.Fatal(err)
	}
	if greedy.Length > p.Deadline || opt.Length > p.Deadline || rep.Length > p.Deadline {
		t.Fatal("some solution misses the deadline")
	}
	if opt.Cost > greedy.Cost {
		t.Fatalf("optimum %d worse than greedy %d", opt.Cost, greedy.Cost)
	}
	if rep.Cost > greedy.Cost {
		t.Fatalf("DFG_Assign_Repeat %d worse than greedy %d", rep.Cost, greedy.Cost)
	}
	t.Logf("greedy=%d repeat=%d optimal=%d (%.0f%% reduction)",
		greedy.Cost, rep.Cost, opt.Cost, 100*float64(greedy.Cost-opt.Cost)/float64(greedy.Cost))
}

func TestAssignOnceAndRepeatAreOptimalOnTrees(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng, 9, true)
		opt, errT := TreeAssign(p)
		once, errO := AssignOnce(p)
		rep, errR := AssignRepeat(p)
		if errors.Is(errT, ErrInfeasible) {
			return errors.Is(errO, ErrInfeasible) && errors.Is(errR, ErrInfeasible)
		}
		if errT != nil || errO != nil || errR != nil {
			return false
		}
		return once.Cost == opt.Cost && rep.Cost == opt.Cost
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestHeuristicsFeasibleAndBoundedByOptimum(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng, 9, false)
		opt, errX := BruteForce(p)
		for _, algo := range []Algorithm{AlgoOnce, AlgoRepeat, AlgoGreedy} {
			s, err := Solve(p, algo)
			if errors.Is(errX, ErrInfeasible) {
				if !errors.Is(err, ErrInfeasible) {
					return false
				}
				continue
			}
			if err != nil {
				// Heuristics may legitimately fail only on infeasible
				// instances; feasible ones must succeed.
				return false
			}
			if s.Length > p.Deadline || s.Cost < opt.Cost {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRepeatNeverWorseThanOnceOnRandomDFGs(t *testing.T) {
	// The paper observes Repeat >= Once in solution quality ("gives better
	// results when the number of duplicated nodes is big"). The guarantee
	// is empirical, not a theorem, so we assert the aggregate: over many
	// random DFGs, Repeat must win or tie on average.
	rng := rand.New(rand.NewSource(7))
	var onceTotal, repTotal int64
	trials := 0
	for trials < 150 {
		p := randomProblem(rng, 12, false)
		once, err1 := AssignOnce(p)
		rep, err2 := AssignRepeat(p)
		if err1 != nil || err2 != nil {
			continue
		}
		onceTotal += once.Cost
		repTotal += rep.Cost
		trials++
	}
	if repTotal > onceTotal {
		t.Fatalf("Repeat total %d worse than Once total %d over %d DFGs", repTotal, onceTotal, trials)
	}
	t.Logf("aggregate cost: once=%d repeat=%d over %d instances", onceTotal, repTotal, trials)
}

func TestGreedyStopsAtMinCostWhenLoose(t *testing.T) {
	p := pathProblem()
	p.Deadline = 100
	s, err := Greedy(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cost != 2+1+2 {
		t.Fatalf("greedy with loose deadline: cost %d, want unconstrained optimum 5", s.Cost)
	}
}

func TestGreedyInfeasible(t *testing.T) {
	p := pathProblem()
	p.Deadline = 3 // below the 4-step minimum makespan
	if _, err := Greedy(p); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestExactMatchesBruteForce(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng, 8, false)
		a, err1 := Exact(p, ExactOptions{})
		b, err2 := BruteForce(p)
		if errors.Is(err2, ErrInfeasible) {
			return errors.Is(err1, ErrInfeasible)
		}
		if err1 != nil || err2 != nil {
			return false
		}
		return a.Cost == b.Cost && a.Length <= p.Deadline
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestExactBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := dfg.RandomDAG(rng, 30, 0.15)
	tab := fu.RandomTable(rng, 30, 3)
	min, _ := MinMakespan(g, tab)
	p := Problem{Graph: g, Table: tab, Deadline: min * 2}
	if _, err := Exact(p, ExactOptions{MaxStates: 50}); !errors.Is(err, ErrSearchTooLarge) {
		t.Fatalf("want ErrSearchTooLarge, got %v", err)
	}
}

func TestSolveAutoDispatch(t *testing.T) {
	pp := pathProblem()
	sp, err := Solve(pp, AlgoAuto)
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := PathAssign(pp)
	if sp.Cost != direct.Cost {
		t.Fatalf("auto on path: %d != %d", sp.Cost, direct.Cost)
	}
	tp := treeProblem()
	st, err := Solve(tp, AlgoAuto)
	if err != nil {
		t.Fatal(err)
	}
	dt, _ := TreeAssign(tp)
	if st.Cost != dt.Cost {
		t.Fatalf("auto on tree: %d != %d", st.Cost, dt.Cost)
	}
	mp := motivational()
	sm, err := Solve(mp, AlgoAuto)
	if err != nil {
		t.Fatal(err)
	}
	dm, _ := AssignRepeat(mp)
	if sm.Cost != dm.Cost {
		t.Fatalf("auto on DFG: %d != %d", sm.Cost, dm.Cost)
	}
	if _, err := Solve(mp, Algorithm(99)); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestParseAlgorithm(t *testing.T) {
	for _, name := range []string{"auto", "path", "tree", "once", "repeat", "greedy", "exact"} {
		a, err := ParseAlgorithm(name)
		if err != nil {
			t.Errorf("ParseAlgorithm(%q): %v", name, err)
		}
		if a.String() != name {
			t.Errorf("round-trip %q -> %q", name, a.String())
		}
	}
	if _, err := ParseAlgorithm("magic"); err == nil {
		t.Error("unknown name accepted")
	}
	if s := Algorithm(42).String(); s != "Algorithm(42)" {
		t.Errorf("String fallback = %q", s)
	}
}

func TestDescribe(t *testing.T) {
	p := pathProblem()
	lib := fu.StandardLibrary()
	got := Describe(p, lib, Assignment{0, 1, 2})
	want := []string{"v1:P1", "v2:P2", "v3:P3"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Describe = %v, want %v", got, want)
		}
	}
}
