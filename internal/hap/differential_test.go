package hap

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"hetsynth/internal/cptree"
	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
)

// These tests pin the sparse Pareto-frontier engine (treesolver.go) to the
// dense table DP it replaced (densedp.go): on every input the two must agree
// on feasibility, optimal cost, schedule length AND the assignment itself —
// the traceback repeats the dense tie-breaking rule, so even ties must
// resolve identically.

// sameSolution fails the check when the two solvers disagree anywhere.
func sameSolution(a, b Solution) bool {
	if a.Cost != b.Cost || a.Length != b.Length || len(a.Assign) != len(b.Assign) {
		return false
	}
	for v := range a.Assign {
		if a.Assign[v] != b.Assign[v] {
			return false
		}
	}
	return true
}

func TestSparseMatchesDenseOnRandomTrees(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng, 12, true)
		sparse, errS := treeAssignMasked(p, nil)
		dense, errD := treeAssignDense(p, nil)
		if errors.Is(errS, ErrInfeasible) != errors.Is(errD, ErrInfeasible) {
			t.Fatalf("seed %d: feasibility differs: sparse %v, dense %v", seed, errS, errD)
		}
		if errS != nil {
			continue
		}
		if errD != nil {
			t.Fatalf("seed %d: dense failed: %v", seed, errD)
		}
		if !sameSolution(sparse, dense) {
			t.Fatalf("seed %d: sparse %+v != dense %+v", seed, sparse, dense)
		}
	}
}

func TestSparseMatchesDenseAndExactOnRandomTrees(t *testing.T) {
	// Third corner of the triangle: both DPs must also hit the brute-force
	// optimum, so a shared bug in the DP recurrence cannot hide.
	for seed := int64(0); seed < 100; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		p := randomProblem(rng, 8, true)
		sparse, errS := TreeAssign(p)
		dense, errD := treeAssignDense(p, nil)
		exact, errX := BruteForce(p)
		if errors.Is(errX, ErrInfeasible) {
			if !errors.Is(errS, ErrInfeasible) || !errors.Is(errD, ErrInfeasible) {
				t.Fatalf("seed %d: brute force infeasible but sparse %v, dense %v", seed, errS, errD)
			}
			continue
		}
		if errS != nil || errD != nil || errX != nil {
			t.Fatalf("seed %d: errors sparse %v dense %v exact %v", seed, errS, errD, errX)
		}
		if sparse.Cost != exact.Cost || dense.Cost != exact.Cost {
			t.Fatalf("seed %d: costs sparse %d dense %d exact %d", seed, sparse.Cost, dense.Cost, exact.Cost)
		}
	}
}

func TestSparseMatchesDenseOnInForests(t *testing.T) {
	// In-forests run the sparse DP on the reversed orientation without
	// materializing the transpose; the reference path does materialize it.
	for seed := int64(0); seed < 100; seed++ {
		rng := rand.New(rand.NewSource(seed))
		out := randomProblem(rng, 12, true)
		p := Problem{Graph: out.Graph.Transpose(), Table: out.Table, Deadline: out.Deadline}
		sparse, errS := TreeAssign(p)
		dense, errD := treeAssignDense(Problem{Graph: p.Graph.Transpose(), Table: p.Table, Deadline: p.Deadline}, nil)
		if errors.Is(errS, ErrInfeasible) != errors.Is(errD, ErrInfeasible) {
			t.Fatalf("seed %d: feasibility differs: sparse %v, dense %v", seed, errS, errD)
		}
		if errS != nil {
			continue
		}
		ref, err := Evaluate(p, dense.Assign)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !sameSolution(sparse, ref) {
			t.Fatalf("seed %d: sparse %+v != dense reference %+v", seed, sparse, ref)
		}
	}
}

func TestSparseMatchesDenseUnderMasks(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng, 10, true)
		allowed := make([][]bool, p.Graph.N())
		for v := range allowed {
			allowed[v] = make([]bool, p.K())
			any := false
			for k := range allowed[v] {
				allowed[v][k] = rng.Float64() < 0.6
				any = any || allowed[v][k]
			}
			if !any { // keep at least one option per node
				allowed[v][rng.Intn(p.K())] = true
			}
		}
		sparse, errS := treeAssignMasked(p, allowed)
		dense, errD := treeAssignDense(p, allowed)
		if errors.Is(errS, ErrInfeasible) != errors.Is(errD, ErrInfeasible) {
			t.Fatalf("seed %d: feasibility differs: sparse %v, dense %v", seed, errS, errD)
		}
		if errS != nil {
			continue
		}
		if !sameSolution(sparse, dense) {
			t.Fatalf("seed %d: sparse %+v != dense %+v", seed, sparse, dense)
		}
	}
}

func TestIncrementalPinMatchesFreshSolve(t *testing.T) {
	// Pinning nodes one by one on a single solver (dirty-path invalidation)
	// must match a from-scratch masked solve after every pin.
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng, 14, true)
		if _, err := treeAssignMasked(p, nil); err != nil {
			continue // infeasible instances have nothing to pin
		}
		solver, err := newTreeSolver(p, nil, false)
		if err != nil {
			t.Fatal(err)
		}
		allowed := make([][]bool, p.Graph.N())
		order := rng.Perm(p.Graph.N())
		for step, vi := range order[:1+rng.Intn(len(order))] {
			v := dfg.NodeID(vi)
			k := fu.TypeID(rng.Intn(p.K()))
			solver.pin([]dfg.NodeID{v}, k)
			row := make([]bool, p.K())
			row[k] = true
			allowed[vi] = row
			inc, errI := solver.solve()
			fresh, errF := treeAssignMasked(p, allowed)
			dense, errD := treeAssignDense(p, allowed)
			if errors.Is(errI, ErrInfeasible) != errors.Is(errF, ErrInfeasible) ||
				errors.Is(errI, ErrInfeasible) != errors.Is(errD, ErrInfeasible) {
				t.Fatalf("seed %d step %d: feasibility differs: inc %v fresh %v dense %v", seed, step, errI, errF, errD)
			}
			if errI != nil {
				break // once infeasible, further pins stay infeasible
			}
			if !sameSolution(inc, fresh) || !sameSolution(inc, dense) {
				t.Fatalf("seed %d step %d: incremental %+v fresh %+v dense %+v", seed, step, inc, fresh, dense)
			}
		}
	}
}

func TestParallelSolveMatchesDense(t *testing.T) {
	// Trees above parallelMinDirty nodes take the worker-pool path on their
	// first solve; under -race this doubles as the data-race probe.
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := parallelMinDirty + 200 + rng.Intn(300)
		g := dfg.RandomTree(rng, n)
		tab := fu.RandomTable(rng, n, 3)
		min, err := MinMakespan(g, tab)
		if err != nil {
			t.Fatal(err)
		}
		p := Problem{Graph: g, Table: tab, Deadline: min + 1 + rng.Intn(min+2)}
		sparse, errS := TreeAssign(p)
		dense, errD := treeAssignDense(p, nil)
		if errS != nil || errD != nil {
			t.Fatalf("seed %d: sparse %v dense %v", seed, errS, errD)
		}
		if !sameSolution(sparse, dense) {
			t.Fatalf("seed %d: sparse (cost %d) != dense (cost %d)", seed, sparse.Cost, dense.Cost)
		}
	}
}

func TestAssignRepeatMatchesScratchReference(t *testing.T) {
	// AssignRepeat keeps one incrementally-invalidated solver across its
	// fixing iterations; this reference replays the same loop with a fresh
	// dense masked solve per iteration. Results must be identical.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng, 9, false)
		got, errG := AssignRepeat(p)
		want, errW := assignRepeatDenseReference(p)
		if errG != nil || errW != nil {
			return errors.Is(errG, ErrInfeasible) == errors.Is(errW, ErrInfeasible)
		}
		return sameSolution(got, want)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// assignRepeatDenseReference is DFG_Assign_Repeat rebuilt on the dense oracle
// with no incremental state: every re-run solves the masked tree problem from
// scratch.
func assignRepeatDenseReference(p Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	tree, err := cptree.ExpandBoth(p.Graph)
	if err != nil {
		return Solution{}, err
	}
	tp := Problem{Graph: tree.Graph, Table: liftTable(p.Table, tree.Orig), Deadline: p.Deadline}
	tsol, err := treeAssignDense(tp, nil)
	if err != nil {
		return Solution{}, err
	}
	allowed := make([][]bool, tree.Graph.N())
	assign := make(Assignment, p.Graph.N())
	fixed := make([]bool, p.Graph.N())
	for _, v := range tree.Duplicated() {
		k := minTimeChoice(p.Table, v, tree.Copies[v], tsol.Assign)
		assign[v] = k
		fixed[v] = true
		for _, w := range tree.Copies[v] {
			row := make([]bool, p.K())
			row[k] = true
			allowed[w] = row
		}
		if tsol, err = treeAssignDense(tp, allowed); err != nil {
			return Solution{}, err
		}
	}
	for v := range assign {
		if !fixed[v] {
			assign[v] = tsol.Assign[tree.Copies[v][0]]
		}
	}
	return Evaluate(p, assign)
}
