package hap

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
)

// ErrSearchTooLarge is returned by Exact when the branch-and-bound explores
// more states than its budget allows.
var ErrSearchTooLarge = errors.New("hap: exact search exceeded its state budget")

// ExactOptions tunes the exact solver.
type ExactOptions struct {
	// MaxStates bounds the number of branch-and-bound nodes explored;
	// zero means DefaultMaxStates.
	MaxStates int
	// Stats, when non-nil, is reset at the start of the run and observes it
	// live: incumbents are published as they are found, and when the search
	// stops early (cancellation, deadline, or state budget) the optimistic
	// bound of the unexplored frontier is recorded as a proven lower bound
	// on the optimum. This is what turns a cancelled Exact run into an
	// anytime result instead of a discarded one (see SolveAnytime).
	Stats *SearchStats
}

// SearchStats observes one branch-and-bound run (Exact or ExactParallel):
// the live incumbent — best feasible assignment found so far — and, once the
// run returns, a proven lower bound on the optimal cost. A completed search
// proves its incumbent optimal (bound == incumbent cost); an early-stopped
// one bounds the optimum by the cheapest optimistic cost of any subtree the
// search never entered, taken off the prune frontier instead of being
// thrown away. Safe for concurrent use; reused across runs (each run resets
// it).
type SearchStats struct {
	inc      incumbent
	lower    atomic.Int64 // proven lower bound on the optimal cost; inf until established
	explored atomic.Int64 // branch-and-bound states visited
}

// reset prepares the stats for a fresh run.
func (s *SearchStats) reset() {
	s.inc.cost.Store(int64(inf))
	s.inc.mu.Lock()
	s.inc.assign = nil
	s.inc.assignCost = 0
	s.inc.mu.Unlock()
	s.lower.Store(int64(inf))
	s.explored.Store(0)
}

// Incumbent returns a copy of the best feasible assignment the observed
// search has found so far, with its cost; ok is false when none has landed
// yet. Safe to call while the search is still running.
func (s *SearchStats) Incumbent() (Assignment, int64, bool) {
	a, c, ok := s.inc.snapshot()
	if !ok {
		return nil, 0, false
	}
	return a.Clone(), c, true
}

// LowerBound returns a proven lower bound on the optimal cost, valid once
// the observed search has returned: the optimum itself when the search
// completed, or min(incumbent cost, cheapest unexplored-subtree bound) when
// it stopped early. ok is false when no bound was established (infeasible
// instance, or a run that never started).
func (s *SearchStats) LowerBound() (int64, bool) {
	lb := s.lower.Load()
	return lb, lb < int64(inf)
}

// Explored reports how many branch-and-bound states the run visited.
func (s *SearchStats) Explored() int64 { return s.explored.Load() }

// DefaultMaxStates is the default exploration budget of Exact.
const DefaultMaxStates = 20_000_000

// ctxCheckMask sets how often the exponential searches poll their context:
// every (ctxCheckMask+1) explored states. Polling is one atomic load inside
// ctx.Err, so every ~4k states is far below measurement noise while keeping
// cancellation latency in the microsecond range.
const ctxCheckMask = 4096 - 1

// Exact computes the true optimum by branch-and-bound over type choices in
// topological order. It plays the role of the ILP formulation of Ito, Lucke
// and Parhi ([11] in the paper): exact, exponential in the worst case, and
// only practical on small graphs — which is precisely the gap the paper's
// heuristics fill.
//
// Pruning:
//   - cost bound: accumulated cost plus the sum of minimum costs of the
//     remaining nodes must stay below the incumbent;
//   - time bound: the longest path using assigned times for decided nodes
//     and fastest times for undecided ones must fit the deadline.
//
// The incumbent is seeded with Greedy (and AssignOnce when Greedy fails),
// so Exact never returns a worse solution than either.
func Exact(p Problem, opts ExactOptions) (Solution, error) {
	return ExactCtx(context.Background(), p, opts)
}

// ExactCtx is Exact with cooperative cancellation: the branch-and-bound
// polls ctx every few thousand explored states and unwinds with ctx's error
// as soon as it is cancelled or past its deadline.
func ExactCtx(ctx context.Context, p Problem, opts ExactOptions) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	if err := ctx.Err(); err != nil {
		return Solution{}, err
	}
	budget := opts.MaxStates
	if budget <= 0 {
		budget = DefaultMaxStates
	}
	stats := opts.Stats
	if stats != nil {
		stats.reset()
	}

	order, err := p.Graph.TopoOrder()
	if err != nil {
		return Solution{}, err
	}
	t := p.Table
	n := p.Graph.N()

	// Fail fast on infeasible instances.
	if minLen, err := MinMakespan(p.Graph, t); err != nil {
		return Solution{}, err
	} else if minLen > p.Deadline {
		return Solution{}, ErrInfeasible
	}

	// Incumbent: best feasible solution seen so far.
	bestCost := int64(inf)
	var bestAssign Assignment
	for _, seed := range []func(Problem) (Solution, error){GreedyRatio, Greedy, AssignOnce} {
		if s, err := seed(p); err == nil && s.Cost < bestCost {
			bestCost, bestAssign = s.Cost, s.Assign.Clone()
		}
	}
	if stats != nil && bestAssign != nil {
		stats.inc.record(bestCost, bestAssign)
	}

	// minCostSuffix[i]: sum of per-node minimum costs of order[i:].
	minCostSuffix := make([]int64, n+1)
	for i := n - 1; i >= 0; i-- {
		v := int(order[i])
		minCostSuffix[i] = minCostSuffix[i+1] + t.Cost[v][t.MinCostType(v)]
	}
	// Branch only on distinct (time, cost) options per node.
	cands := make([][]fu.TypeID, n)
	for v := 0; v < n; v++ {
		cands[v] = distinctOptions(t, v)
	}

	// times starts all-fastest; branch-and-bound overwrites decided nodes.
	times := Times(t, minTimeAssignment(t))
	assign := make(Assignment, n)
	states := 0
	var overBudget bool
	var cancelled bool

	// longest recomputes the optimistic longest path. O(V+E) per call keeps
	// the code simple; Exact is a small-graph oracle, not a production path.
	longest := func() int {
		//hetsynth:ignore retval LongestPath fails only on malformed weights;
		// times is sized by the validated table.
		l, _, _ := p.Graph.LongestPath(times)
		return l
	}

	// frontierLB tracks the cheapest optimistic bound over subtrees the
	// search abandoned on an early stop: every unexplored solution costs at
	// least frontierLB, so min(bestCost, frontierLB) is a proven lower
	// bound on the optimum even when the search did not finish.
	frontierLB := int64(inf)
	note := func(b int64) {
		if b < frontierLB {
			frontierLB = b
		}
	}

	var rec func(i int, cost int64)
	rec = func(i int, cost int64) {
		states++
		if states > budget {
			overBudget = true
			note(cost + minCostSuffix[i])
			return
		}
		if states&ctxCheckMask == 0 && ctx.Err() != nil {
			cancelled = true
			note(cost + minCostSuffix[i])
			return
		}
		if cost+minCostSuffix[i] >= bestCost {
			return
		}
		if longest() > p.Deadline {
			return
		}
		if i == n {
			bestCost = cost
			bestAssign = assign.Clone()
			if stats != nil {
				stats.inc.record(cost, bestAssign)
			}
			return
		}
		v := int(order[i])
		saved := times[v]
		for idx, k := range cands[v] {
			assign[v] = k
			times[v] = t.Time[v][k]
			rec(i+1, cost+t.Cost[v][k])
			if overBudget || cancelled {
				// The aborted child accounted for its own remainder; the
				// untried sibling subtrees are accounted for here, so the
				// whole open frontier ends up in frontierLB.
				for _, k2 := range cands[v][idx+1:] {
					note(cost + t.Cost[v][k2] + minCostSuffix[i+1])
				}
				break
			}
		}
		times[v] = saved
	}
	rec(0, 0)

	if stats != nil {
		stats.explored.Store(int64(states))
		switch {
		case cancelled || overBudget:
			lb := frontierLB
			if bestAssign != nil && bestCost < lb {
				lb = bestCost
			}
			stats.lower.Store(lb)
		case bestAssign != nil:
			// Search completed: the incumbent is the optimum.
			stats.lower.Store(bestCost)
		}
	}
	if cancelled {
		return Solution{}, ctx.Err()
	}
	if overBudget {
		return Solution{}, fmt.Errorf("%w (budget %d)", ErrSearchTooLarge, budget)
	}
	if bestAssign == nil {
		return Solution{}, ErrInfeasible
	}
	return Evaluate(p, bestAssign)
}

// BruteForce enumerates every one of the K^n assignments and returns the
// optimum. It exists purely as an independent oracle for tests and refuses
// instances with more than 3^16-ish search space.
func BruteForce(p Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	n, K := p.Graph.N(), p.K()
	space := 1.0
	for i := 0; i < n; i++ {
		space *= float64(K)
		if space > 5e7 {
			return Solution{}, errors.New("hap: brute force space too large")
		}
	}
	assign := make(Assignment, n)
	bestCost := int64(inf)
	var best Assignment
	var rec func(v int, cost int64)
	rec = func(v int, cost int64) {
		if v == n {
			if cost < bestCost && feasibleQuick(p, assign) {
				bestCost = cost
				best = assign.Clone()
			}
			return
		}
		for k := 0; k < K; k++ {
			assign[v] = fu.TypeID(k)
			rec(v+1, cost+p.Table.Cost[v][k])
		}
	}
	rec(0, 0)
	if best == nil {
		return Solution{}, ErrInfeasible
	}
	return Evaluate(p, best)
}

func feasibleQuick(p Problem, a Assignment) bool {
	l, _, err := p.Graph.LongestPath(Times(p.Table, a))
	return err == nil && l <= p.Deadline
}

// dfgNodeNames renders an assignment as "name:type" pairs for messages and
// goldens; exported via the facade's Solution formatting.
func dfgNodeNames(g *dfg.Graph, lib *fu.Library, a Assignment) []string {
	out := make([]string, len(a))
	for v, k := range a {
		out[v] = g.Node(dfg.NodeID(v)).Name + ":" + lib.Name(k)
	}
	return out
}
