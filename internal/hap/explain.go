package hap

import (
	"fmt"

	"hetsynth/internal/dfg"
)

// Explanation describes how an assignment sits against its deadline: the
// critical path and, per node, the slack — how many extra control steps
// the node could take (e.g. by moving to a slower, cheaper FU type)
// without any root-to-leaf path exceeding the deadline. Zero-slack nodes
// are the ones pinning the schedule; they are where the cost of the
// deadline is actually paid.
type Explanation struct {
	Length   int          // longest-path time under the assignment
	Critical []dfg.NodeID // one maximal path, in precedence order
	Slack    []int        // per node: deadline − longest path through it
}

// Explain analyzes an assignment against the problem's deadline. The
// assignment must be feasible (every slack non-negative); infeasible
// assignments return ErrInfeasible with the violation visible in Length.
func Explain(p Problem, a Assignment) (Explanation, error) {
	sol, err := Evaluate(p, a)
	if err != nil {
		return Explanation{}, err
	}
	times := Times(p.Table, a)
	through, err := p.Graph.PathLengthsThrough(times)
	if err != nil {
		return Explanation{}, err
	}
	_, critical, err := p.Graph.LongestPath(times)
	if err != nil {
		return Explanation{}, err
	}
	ex := Explanation{
		Length:   sol.Length,
		Critical: critical,
		Slack:    make([]int, len(through)),
	}
	for v, th := range through {
		ex.Slack[v] = p.Deadline - th
	}
	if sol.Length > p.Deadline {
		return ex, fmt.Errorf("%w: length %d exceeds deadline %d", ErrInfeasible, sol.Length, p.Deadline)
	}
	return ex, nil
}
