package hap

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"hetsynth/internal/fu"
)

func TestExplainChain(t *testing.T) {
	p := pathProblem()
	p.Deadline = 10
	sol, err := PathAssign(p)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := Explain(p, sol.Assign)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Length != sol.Length {
		t.Fatalf("length %d != solution length %d", ex.Length, sol.Length)
	}
	// On a chain every node lies on the single path: uniform slack.
	want := p.Deadline - sol.Length
	for v, s := range ex.Slack {
		if s != want {
			t.Fatalf("node %d slack %d, want %d", v, s, want)
		}
	}
	if len(ex.Critical) != 3 {
		t.Fatalf("critical path has %d nodes, want 3", len(ex.Critical))
	}
}

func TestExplainOffPathNodeHasMoreSlack(t *testing.T) {
	p := motivational()
	sol, err := Exact(p, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := Explain(p, sol.Assign)
	if err != nil {
		t.Fatal(err)
	}
	// Critical-path nodes have the minimum slack.
	minSlack := p.Deadline - ex.Length
	for _, v := range ex.Critical {
		if ex.Slack[v] != minSlack {
			t.Fatalf("critical node %d slack %d, want %d", v, ex.Slack[v], minSlack)
		}
	}
	for _, s := range ex.Slack {
		if s < minSlack {
			t.Fatalf("slack %d below the critical slack %d", s, minSlack)
		}
	}
}

func TestExplainInfeasibleAssignment(t *testing.T) {
	p := pathProblem()
	p.Deadline = 5
	slow := Assignment{2, 2, 2} // length 13
	ex, err := Explain(p, slow)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
	if ex.Length != 13 {
		t.Fatalf("violation length %d, want 13", ex.Length)
	}
}

// TestExplainSlackIsTight: increasing any single node's execution time by
// exactly its slack keeps the assignment feasible; by slack+1 breaks it.
func TestExplainSlackIsTight(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng, 8, false)
		sol, err := AssignRepeat(p)
		if err != nil {
			return errors.Is(err, ErrInfeasible)
		}
		ex, err := Explain(p, sol.Assign)
		if err != nil {
			return false
		}
		v := rng.Intn(p.Graph.N())
		k := sol.Assign[v]
		stretch := func(extra int) bool {
			t2 := p.Table.Clone()
			t2.Time[v][k] += extra
			s, err := Evaluate(Problem{Graph: p.Graph, Table: t2, Deadline: p.Deadline}, sol.Assign)
			return err == nil && s.Length <= p.Deadline
		}
		if !stretch(ex.Slack[v]) {
			return false
		}
		return !stretch(ex.Slack[v] + 1)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestExplainValidatesAssignment(t *testing.T) {
	p := pathProblem()
	if _, err := Explain(p, Assignment{0}); err == nil {
		t.Fatal("short assignment accepted")
	}
	if _, err := Explain(p, Assignment{0, 0, fu.TypeID(9)}); err == nil {
		t.Fatal("out-of-range type accepted")
	}
}
