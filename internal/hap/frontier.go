package hap

import (
	"fmt"
)

// FrontierPoint is one point of a cost/deadline tradeoff curve.
type FrontierPoint struct {
	Deadline int
	Cost     int64
}

// TreeFrontier computes the complete cost-versus-deadline frontier of a
// tree-shaped problem in a single dynamic-programming run: the sparse
// engine's root curve IS the frontier — its breakpoints are exactly the
// deadlines where the optimal cost strictly improves — so the frontier is
// read straight off one solve at the loosest deadline of interest, with no
// repeated solves or binary searches.
//
// The returned points are the minimal representation: deadlines where the
// optimal cost strictly improves, in increasing deadline order, starting
// at the minimum makespan. Non-tree graphs get ErrShape.
func TreeFrontier(p Problem) ([]FrontierPoint, error) {
	_, front, err := solveTreeFrontier(p, false)
	return front, err
}

// TreeAssignWithFrontier returns both the optimal solution at p.Deadline
// and the full frontier up to p.Deadline from the same single DP run — the
// curve the solve already computed costs nothing extra to expose.
func TreeAssignWithFrontier(p Problem) (Solution, []FrontierPoint, error) {
	return solveTreeFrontier(p, true)
}

// solveTreeFrontier runs the sparse tree DP once and reads the frontier off
// the root curves; when withSolution is set it also tracebacks the optimum
// at p.Deadline.
func solveTreeFrontier(p Problem, withSolution bool) (Solution, []FrontierPoint, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, nil, err
	}
	reversed := false
	switch {
	case outForestShape(p.Graph):
	case inForestShape(p.Graph):
		// Reversing every edge preserves all path lengths, so both the
		// frontier and the optimum carry over unchanged (cf. TreeAssign).
		reversed = true
	default:
		return Solution{}, nil, fmt.Errorf("%w: TreeFrontier needs a tree-shaped graph", ErrShape)
	}
	solver, err := newTreeSolver(p, nil, reversed)
	if err != nil {
		return Solution{}, nil, err
	}
	var sol Solution
	if withSolution {
		sol, err = solver.solve()
		if err != nil {
			return Solution{}, nil, err
		}
	} else {
		solver.recompute()
	}
	front := solver.frontier()
	if len(front) == 0 {
		return Solution{}, nil, ErrInfeasible
	}
	return sol, front, nil
}
