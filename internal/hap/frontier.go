package hap

import (
	"fmt"
)

// FrontierPoint is one point of a cost/deadline tradeoff curve.
type FrontierPoint struct {
	Deadline int
	Cost     int64
}

// TreeFrontier computes the complete cost-versus-deadline frontier of a
// tree-shaped problem in a single dynamic-programming run: because
// Tree_Assign's table X_root[j] already holds the optimal cost for every
// deadline j ≤ L, the frontier costs nothing beyond one solve at the
// loosest deadline of interest.
//
// The returned points are the minimal representation: deadlines where the
// optimal cost strictly improves, in increasing deadline order, starting
// at the minimum makespan. Non-tree graphs get ErrShape.
func TreeFrontier(p Problem) ([]FrontierPoint, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	solve := func(prob Problem) (Solution, error) { return TreeAssign(prob) }
	switch {
	case p.Graph.IsOutForest() || p.Graph.IsInForest():
	default:
		return nil, fmt.Errorf("%w: TreeFrontier needs a tree-shaped graph", ErrShape)
	}
	min, err := MinMakespan(p.Graph, p.Table)
	if err != nil {
		return nil, err
	}
	if min > p.Deadline {
		return nil, ErrInfeasible
	}
	// One DP table holds every answer; re-solving per distinct deadline
	// would be O(L) times more work. We exploit monotonicity instead:
	// binary-search the breakpoints of the step function cost(L), each
	// located with O(log L) solves — still far cheaper than L solves and
	// independent of Tree_Assign internals.
	costAt := func(L int) (int64, error) {
		s, err := solve(Problem{Graph: p.Graph, Table: p.Table, Deadline: L})
		if err != nil {
			return 0, err
		}
		return s.Cost, nil
	}
	var frontier []FrontierPoint
	lo := min
	cLo, err := costAt(lo)
	if err != nil {
		return nil, err
	}
	frontier = append(frontier, FrontierPoint{Deadline: lo, Cost: cLo})
	cEnd, err := costAt(p.Deadline)
	if err != nil {
		return nil, err
	}
	for cLo > cEnd {
		// Find the smallest deadline with cost < cLo in (lo, p.Deadline].
		a, b := lo+1, p.Deadline
		for a < b {
			mid := (a + b) / 2
			c, err := costAt(mid)
			if err != nil {
				return nil, err
			}
			if c < cLo {
				b = mid
			} else {
				a = mid + 1
			}
		}
		c, err := costAt(a)
		if err != nil {
			return nil, err
		}
		frontier = append(frontier, FrontierPoint{Deadline: a, Cost: c})
		lo, cLo = a, c
	}
	return frontier, nil
}
