package hap

import (
	"errors"
	"fmt"
	"sync"
)

// FrontierPoint is one point of a cost/deadline tradeoff curve.
type FrontierPoint struct {
	Deadline int
	Cost     int64
}

// TreeFrontier computes the complete cost-versus-deadline frontier of a
// tree-shaped problem in a single dynamic-programming run: the sparse
// engine's root curve IS the frontier — its breakpoints are exactly the
// deadlines where the optimal cost strictly improves — so the frontier is
// read straight off one solve at the loosest deadline of interest, with no
// repeated solves or binary searches.
//
// The returned points are the minimal representation: deadlines where the
// optimal cost strictly improves, in increasing deadline order, starting
// at the minimum makespan. Non-tree graphs get ErrShape.
func TreeFrontier(p Problem) ([]FrontierPoint, error) {
	_, front, err := solveTreeFrontier(p, false)
	return front, err
}

// TreeAssignWithFrontier returns both the optimal solution at p.Deadline
// and the full frontier up to p.Deadline from the same single DP run — the
// curve the solve already computed costs nothing extra to expose.
func TreeAssignWithFrontier(p Problem) (Solution, []FrontierPoint, error) {
	return solveTreeFrontier(p, true)
}

// solveTreeFrontier runs the sparse tree DP once and reads the frontier off
// the root curves; when withSolution is set it also tracebacks the optimum
// at p.Deadline.
func solveTreeFrontier(p Problem, withSolution bool) (Solution, []FrontierPoint, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, nil, err
	}
	reversed := false
	switch {
	case outForestShape(p.Graph):
	case inForestShape(p.Graph):
		// Reversing every edge preserves all path lengths, so both the
		// frontier and the optimum carry over unchanged (cf. TreeAssign).
		reversed = true
	default:
		return Solution{}, nil, fmt.Errorf("%w: TreeFrontier needs a tree-shaped graph", ErrShape)
	}
	solver, err := newTreeSolver(p, nil, reversed)
	if err != nil {
		return Solution{}, nil, err
	}
	// The frontier() result copies every point out of the DP curves, so the
	// solver (and the arena its curves live in) can be recycled on return.
	defer solver.release()
	var sol Solution
	if withSolution {
		sol, err = solver.solve()
		if err != nil {
			return Solution{}, nil, err
		}
	} else {
		solver.recompute()
	}
	front := solver.frontier()
	if len(front) == 0 {
		return Solution{}, nil, ErrInfeasible
	}
	return sol, front, nil
}

// ErrBeyondHorizon reports that a FrontierSolver was asked about a deadline
// past the horizon its curves were computed for, and the curve is truncated
// there (the unconstrained minimum has not been reached), so answering would
// require a wider solve.
var ErrBeyondHorizon = errors.New("hap: deadline beyond the frontier solver's horizon")

// FrontierSolver is a reusable tree solver for serving layers that answer
// many deadlines on one (graph, table) instance: it runs the sparse DP once
// at construction and afterwards answers any deadline up to its horizon by a
// pure traceback over the stored curves — no DP recomputation. The returned
// solution is traced at the operative frontier breakpoint rather than at the
// requested deadline, so its Length never exceeds the breakpoint and the
// same solution is optimal for every deadline in the breakpoint's bracket.
//
// The zero value is not usable; build one with NewFrontierSolver. Methods
// are safe for concurrent use.
type FrontierSolver struct {
	mu      sync.Mutex
	s       *treeSolver
	front   []FrontierPoint
	horizon int
	minCost int64 // unconstrained minimum (every node its cheapest type)
}

// NewFrontierSolver solves a tree-shaped problem once at p.Deadline (the
// horizon) and keeps the DP curves for later tracebacks. Non-tree graphs get
// ErrShape. An instance that is infeasible even at the horizon is still
// returned: its Frontier is empty and SolveAt answers ErrInfeasible for
// every deadline up to the horizon.
func NewFrontierSolver(p Problem) (*FrontierSolver, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	reversed := false
	switch {
	case outForestShape(p.Graph):
	case inForestShape(p.Graph):
		reversed = true
	default:
		return nil, fmt.Errorf("%w: FrontierSolver needs a tree-shaped graph", ErrShape)
	}
	solver, err := newTreeSolver(p, nil, reversed)
	if err != nil {
		return nil, err
	}
	solver.recompute()
	var minCost int64
	for v := 0; v < p.Graph.N(); v++ {
		minCost += p.Table.Cost[v][p.Table.MinCostType(v)]
	}
	return &FrontierSolver{
		s:       solver,
		front:   solver.frontier(),
		horizon: p.Deadline,
		minCost: minCost,
	}, nil
}

// Frontier returns a copy of the cost-versus-deadline curve up to the
// horizon: the deadlines where the optimal cost strictly improves, in
// increasing order. Empty means infeasible everywhere up to the horizon.
func (f *FrontierSolver) Frontier() []FrontierPoint {
	return append([]FrontierPoint(nil), f.front...)
}

// Horizon is the deadline the curves were computed for; SolveAt answers any
// deadline up to it (and past it too once the curve is Complete).
func (f *FrontierSolver) Horizon() int { return f.horizon }

// Complete reports that the curve has reached the unconstrained minimum
// cost, so the last breakpoint is optimal for every deadline beyond the
// horizon as well and the solver will never need widening.
func (f *FrontierSolver) Complete() bool {
	return len(f.front) > 0 && f.front[len(f.front)-1].Cost == f.minCost
}

// Cover returns the operative frontier breakpoint for deadline L: the last
// breakpoint at or before L. ok is false when L is infeasible (below the
// first breakpoint) or beyond the horizon of a still-truncated curve.
func (f *FrontierSolver) Cover(L int) (FrontierPoint, bool) {
	if len(f.front) == 0 || L < f.front[0].Deadline {
		return FrontierPoint{}, false
	}
	if L > f.horizon && !f.Complete() {
		return FrontierPoint{}, false
	}
	i := len(f.front) - 1
	for i > 0 && f.front[i].Deadline > L {
		i--
	}
	if f.front[i].Deadline > L {
		return FrontierPoint{}, false
	}
	return f.front[i], true
}

// SolveAt recovers the optimal solution for deadline L from the stored
// curves. It returns ErrInfeasible when L is below the first breakpoint and
// ErrBeyondHorizon when L exceeds the horizon of a still-truncated curve
// (the caller should re-solve wider and build a fresh FrontierSolver).
func (f *FrontierSolver) SolveAt(L int) (Solution, error) {
	if L < 1 {
		return Solution{}, fmt.Errorf("hap: non-positive deadline %d", L)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	bp, ok := f.Cover(L)
	if !ok {
		if L > f.horizon && !f.Complete() {
			return Solution{}, ErrBeyondHorizon
		}
		return Solution{}, ErrInfeasible
	}
	// Trace at the breakpoint, not at L: the solution then has Length <=
	// bp.Deadline, making it valid (and optimal) for the whole bracket.
	return f.s.solveAt(bp.Deadline)
}
