package hap

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
)

func TestTreeFrontierOnPath(t *testing.T) {
	p := pathProblem()
	p.Deadline = 13 // the all-slowest makespan
	front, err := TreeFrontier(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(front) < 2 {
		t.Fatalf("frontier too small: %+v", front)
	}
	if front[0].Deadline != 4 { // minimum makespan of pathProblem
		t.Fatalf("first point at %d, want 4", front[0].Deadline)
	}
	if front[0].Cost != 10+9+8 {
		t.Fatalf("tightest cost %d, want 27", front[0].Cost)
	}
	lastCost := front[len(front)-1].Cost
	if lastCost != 2+1+2 {
		t.Fatalf("loosest cost %d, want 5", lastCost)
	}
	// Strictly decreasing costs at strictly increasing deadlines.
	for i := 1; i < len(front); i++ {
		if front[i].Deadline <= front[i-1].Deadline || front[i].Cost >= front[i-1].Cost {
			t.Fatalf("frontier not strictly monotone: %+v", front)
		}
	}
}

func TestTreeFrontierMatchesPointwiseSolves(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := dfg.RandomTree(rng, 2+rng.Intn(8))
		tab := fu.RandomTable(rng, g.N(), 2+rng.Intn(2))
		min, _ := MinMakespan(g, tab)
		p := Problem{Graph: g, Table: tab, Deadline: min + 1 + rng.Intn(2*min+2)}
		front, err := TreeFrontier(p)
		if err != nil {
			return false
		}
		// Every deadline's optimum must equal the frontier's step function.
		stepCost := func(L int) int64 {
			best := front[0].Cost
			for _, pt := range front {
				if pt.Deadline <= L {
					best = pt.Cost
				}
			}
			return best
		}
		for L := min; L <= p.Deadline; L++ {
			s, err := TreeAssign(Problem{Graph: g, Table: tab, Deadline: L})
			if err != nil {
				return false
			}
			if s.Cost != stepCost(L) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeFrontierRejectsNonTreesAndInfeasible(t *testing.T) {
	g := dfg.New()
	a := g.MustAddNode("a", "")
	b := g.MustAddNode("b", "")
	c := g.MustAddNode("c", "")
	d := g.MustAddNode("d", "")
	g.MustAddEdge(a, b, 0)
	g.MustAddEdge(a, c, 0)
	g.MustAddEdge(b, d, 0)
	g.MustAddEdge(c, d, 0)
	p := Problem{Graph: g, Table: fu.UniformTable(4, []int{1, 2}, []int64{5, 1}), Deadline: 9}
	if _, err := TreeFrontier(p); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
	pp := pathProblem()
	pp.Deadline = 3
	if _, err := TreeFrontier(pp); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestTreeAssignWithFrontierAgreesWithSeparateCalls(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := dfg.RandomTree(rng, 2+rng.Intn(10))
		if rng.Intn(2) == 1 {
			g = g.Transpose() // exercise the in-forest orientation too
		}
		tab := fu.RandomTable(rng, g.N(), 2+rng.Intn(2))
		min, _ := MinMakespan(g, tab)
		p := Problem{Graph: g, Table: tab, Deadline: min + rng.Intn(2*min+3)}
		sol, front, err := TreeAssignWithFrontier(p)
		sol2, err2 := TreeAssign(p)
		front2, err3 := TreeFrontier(p)
		if err != nil || err2 != nil || err3 != nil {
			return errors.Is(err, ErrInfeasible) &&
				errors.Is(err2, ErrInfeasible) && errors.Is(err3, ErrInfeasible)
		}
		if sol.Cost != sol2.Cost || sol.Length != sol2.Length {
			return false
		}
		if len(front) != len(front2) {
			return false
		}
		for i := range front {
			if front[i] != front2[i] {
				return false
			}
		}
		// The loosest frontier point is the cost of the returned optimum.
		return front[len(front)-1].Cost == sol.Cost
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
