package hap

import "hetsynth/internal/fu"

// Greedy is the baseline heuristic the paper's experiments compare against,
// reimplemented from the idea of Chang, Wang and Parhi, "Loop-list
// scheduling for heterogeneous functional units" (GLSVLSI 1996), reference
// [3] of the paper. No pseudo-code was published; the defining idea is
// speed-driven: critical operations get faster functional units until the
// timing constraint holds, with no cost/benefit weighing.
//
// Start from the unconstrained optimum (every node on its cheapest type).
// While the longest path exceeds the deadline, consider every node lying on
// a current longest path and every strictly faster type for it, and apply
// the single upgrade with the largest time gain (ties: the smallest cost
// increase, then the smallest node ID). Fail with ErrInfeasible when the
// constraint is still violated and no node on a longest path can go faster
// — which only happens when even the all-fastest assignment misses the
// deadline.
//
// Each accepted upgrade strictly decreases the chosen node's execution
// time, so the total of assigned times strictly decreases and the loop
// terminates.
func Greedy(p Problem) (Solution, error) {
	return greedyLoop(p, func(dt, dc int64, bestDT, bestDC int64) bool {
		return dt > bestDT || (dt == bestDT && dc < bestDC)
	})
}

// GreedyRatio is a stronger cost-aware variant of Greedy used by the
// ablation study: instead of the largest time gain it applies the upgrade
// with the best time-gain per unit cost-increase (free upgrades first). It
// is not part of the paper; it exists to show how much of the heuristics'
// advantage survives against a better-tuned baseline.
func GreedyRatio(p Problem) (Solution, error) {
	return greedyLoop(p, func(dt, dc int64, bestDT, bestDC int64) bool {
		// Free upgrades (dc<=0) beat paid ones; among free prefer larger
		// dt then smaller dc; among paid compare cross-multiplied ratios.
		switch {
		case dc <= 0 && bestDC > 0:
			return true
		case dc > 0 && bestDC <= 0:
			return false
		case dc <= 0:
			return dt > bestDT || (dt == bestDT && dc < bestDC)
		default:
			lhs, rhs := dt*bestDC, bestDT*dc
			return lhs > rhs || (lhs == rhs && dt > bestDT)
		}
	})
}

// greedyLoop is the shared upgrade loop; better decides whether an upgrade
// (dt time gained, dc cost added) beats the incumbent (bestDT, bestDC).
// better is only consulted when an incumbent exists.
func greedyLoop(p Problem, better func(dt, dc, bestDT, bestDC int64) bool) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	t := p.Table
	a := minCostAssignment(t)
	for {
		mask, length, err := p.Graph.OnLongestPath(Times(t, a))
		if err != nil {
			return Solution{}, err
		}
		if length <= p.Deadline {
			return Evaluate(p, a)
		}

		bestV, bestK := -1, fu.TypeID(-1)
		var bestDT, bestDC int64
		for v := 0; v < p.Graph.N(); v++ {
			if !mask[v] {
				continue
			}
			cur := a[v]
			for k := 0; k < t.K(); k++ {
				dt := int64(t.Time[v][cur] - t.Time[v][k])
				if dt <= 0 {
					continue
				}
				dc := t.Cost[v][k] - t.Cost[v][cur]
				if bestV < 0 || better(dt, dc, bestDT, bestDC) {
					bestV, bestK, bestDT, bestDC = v, fu.TypeID(k), dt, dc
				}
			}
		}
		if bestV < 0 {
			// Every node on the longest path already runs at full speed,
			// so the minimum makespan itself exceeds the deadline.
			return Solution{}, ErrInfeasible
		}
		a[bestV] = bestK
	}
}
