package hap

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
)

// pathProblem builds the Figure 5 style worked example: a three-node simple
// path with three FU types. Times/costs follow the paper's example table
// ranges (the OCR destroyed the exact digits, so the concrete values are
// ours; optimality is verified against brute force).
func pathProblem() Problem {
	g := dfg.Chain(3)
	t := fu.NewTable(3, 3)
	//              P1       P2       P3
	t.MustSet(0, []int{1, 2, 4}, []int64{10, 6, 2})
	t.MustSet(1, []int{2, 3, 5}, []int64{9, 5, 1})
	t.MustSet(2, []int{1, 3, 4}, []int64{8, 4, 2})
	return Problem{Graph: g, Table: t, Deadline: 10}
}

// treeProblem builds the Figure 6/8 style worked example: the 7-node tree
//
//	     v7
//	    /  \
//	  v5    v6
//	 /  \     \
//	v1  v4    ...
//
// The paper draws edges child->parent; our out-tree orientation (parent
// before child) carries identical path lengths, so the DP and its optimum
// match.
func treeProblem() Problem {
	g := dfg.New()
	v7 := g.MustAddNode("v7", "")
	v5 := g.MustAddNode("v5", "")
	v6 := g.MustAddNode("v6", "")
	v1 := g.MustAddNode("v1", "")
	v2 := g.MustAddNode("v2", "")
	v3 := g.MustAddNode("v3", "")
	v4 := g.MustAddNode("v4", "")
	g.MustAddEdge(v7, v5, 0)
	g.MustAddEdge(v7, v6, 0)
	g.MustAddEdge(v5, v1, 0)
	g.MustAddEdge(v5, v2, 0)
	g.MustAddEdge(v6, v3, 0)
	g.MustAddEdge(v6, v4, 0)
	t := fu.NewTable(7, 3)
	for v := 0; v < 7; v++ {
		t.MustSet(v, []int{1, 2, 3}, []int64{9 - int64(v%3), 5, 1 + int64(v%2)})
	}
	return Problem{Graph: g, Table: t, Deadline: 7}
}

func randomProblem(rng *rand.Rand, maxNodes int, tree bool) Problem {
	n := 2 + rng.Intn(maxNodes-1)
	var g *dfg.Graph
	if tree {
		g = dfg.RandomTree(rng, n)
	} else {
		g = dfg.RandomDAG(rng, n, 0.25+rng.Float64()*0.3)
	}
	k := 2 + rng.Intn(2)
	t := fu.RandomTable(rng, n, k)
	min, _ := MinMakespan(g, t)
	// Deadlines from the minimum makespan up to comfortably loose.
	L := min + rng.Intn(2*min+3)
	return Problem{Graph: g, Table: t, Deadline: L}
}

func TestProblemValidate(t *testing.T) {
	p := pathProblem()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := p
	bad.Deadline = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero deadline validated")
	}
	bad = p
	bad.Table = fu.NewTable(2, 3)
	if err := bad.Validate(); err == nil {
		t.Error("short table validated")
	}
	if err := (Problem{}).Validate(); err == nil {
		t.Error("nil problem validated")
	}
	bad = p
	bad.Graph = dfg.New()
	if err := bad.Validate(); err == nil {
		t.Error("empty graph validated")
	}
}

func TestEvaluateChecksAssignment(t *testing.T) {
	p := pathProblem()
	if _, err := Evaluate(p, Assignment{0}); err == nil {
		t.Error("short assignment accepted")
	}
	if _, err := Evaluate(p, Assignment{0, 0, 7}); err == nil {
		t.Error("out-of-range type accepted")
	}
	s, err := Evaluate(p, Assignment{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.Cost != 2+1+2 || s.Length != 4+5+4 {
		t.Fatalf("all-P3: cost %d length %d", s.Cost, s.Length)
	}
}

func TestMinMakespan(t *testing.T) {
	p := pathProblem()
	got, err := MinMakespan(p.Graph, p.Table)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1+2+1 {
		t.Fatalf("MinMakespan = %d, want 4", got)
	}
}

func TestPathAssignWorkedExample(t *testing.T) {
	p := pathProblem()
	s, err := PathAssign(p)
	if err != nil {
		t.Fatal(err)
	}
	// With L=10 the total slowest time is 13, so at least one node must
	// speed up; brute force confirms the optimum.
	want, err := BruteForce(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cost != want.Cost {
		t.Fatalf("PathAssign cost %d, optimum %d", s.Cost, want.Cost)
	}
	if s.Length > p.Deadline {
		t.Fatalf("PathAssign length %d > %d", s.Length, p.Deadline)
	}
	// Tight deadline: only all-fastest fits.
	p.Deadline = 4
	s, err = PathAssign(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cost != 10+9+8 || s.Length != 4 {
		t.Fatalf("tight deadline: cost %d length %d", s.Cost, s.Length)
	}
	// Below the minimum makespan: infeasible.
	p.Deadline = 3
	if _, err := PathAssign(p); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
	// Loose deadline: everyone on the cheapest type.
	p.Deadline = 13
	s, err = PathAssign(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cost != 2+1+2 {
		t.Fatalf("loose deadline: cost %d, want 5", s.Cost)
	}
}

func TestPathAssignRejectsNonPath(t *testing.T) {
	p := treeProblem()
	if _, err := PathAssign(p); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestTreeAssignWorkedExample(t *testing.T) {
	p := treeProblem()
	s, err := TreeAssign(p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := BruteForce(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cost != want.Cost {
		t.Fatalf("TreeAssign cost %d, optimum %d", s.Cost, want.Cost)
	}
	if s.Length > p.Deadline {
		t.Fatalf("length %d > %d", s.Length, p.Deadline)
	}
}

func TestTreeAssignOnForestAndSingleton(t *testing.T) {
	g := dfg.New()
	g.MustAddNode("a", "")
	g.MustAddNode("b", "") // two isolated roots: a 2-tree forest
	tab := fu.UniformTable(2, []int{1, 3}, []int64{5, 1})
	s, err := TreeAssign(Problem{Graph: g, Table: tab, Deadline: 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.Cost != 2 { // both nodes fit on the cheap type independently
		t.Fatalf("forest cost %d, want 2", s.Cost)
	}
	s, err = TreeAssign(Problem{Graph: g, Table: tab, Deadline: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Cost != 10 {
		t.Fatalf("tight forest cost %d, want 10", s.Cost)
	}
}

func TestTreeAssignRejectsNonForest(t *testing.T) {
	// A diamond is neither an out-forest (D has two parents) nor an
	// in-forest (A has two children).
	g := dfg.New()
	a := g.MustAddNode("a", "")
	b := g.MustAddNode("b", "")
	c := g.MustAddNode("c", "")
	d := g.MustAddNode("d", "")
	g.MustAddEdge(a, b, 0)
	g.MustAddEdge(a, c, 0)
	g.MustAddEdge(b, d, 0)
	g.MustAddEdge(c, d, 0)
	p := Problem{Graph: g, Table: fu.UniformTable(4, []int{1}, []int64{1}), Deadline: 5}
	if _, err := TreeAssign(p); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestTreeAssignOnInForestsMatchesBruteForce(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Reverse a random out-tree into a fan-in computation tree.
		g := dfg.RandomTree(rng, 2+rng.Intn(8)).Transpose()
		if !g.IsInForest() {
			return false
		}
		tab := fu.RandomTable(rng, g.N(), 2+rng.Intn(2))
		min, _ := MinMakespan(g, tab)
		p := Problem{Graph: g, Table: tab, Deadline: min + rng.Intn(2*min+2)}
		s, err := TreeAssign(p)
		opt, err2 := BruteForce(p)
		if errors.Is(err2, ErrInfeasible) {
			return errors.Is(err, ErrInfeasible)
		}
		if err != nil || err2 != nil {
			return false
		}
		return s.Cost == opt.Cost && s.Length <= p.Deadline
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeAssignMatchesBruteForceOnRandomTrees(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng, 9, true)
		s, err := TreeAssign(p)
		opt, err2 := BruteForce(p)
		if errors.Is(err, ErrInfeasible) || errors.Is(err2, ErrInfeasible) {
			return errors.Is(err, ErrInfeasible) && errors.Is(err2, ErrInfeasible)
		}
		if err != nil || err2 != nil {
			return false
		}
		return s.Cost == opt.Cost && s.Length <= p.Deadline
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestPathAssignAgreesWithTreeAssignOnChains(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		g := dfg.Chain(n)
		tab := fu.RandomTable(rng, n, 2+rng.Intn(2))
		min, _ := MinMakespan(g, tab)
		p := Problem{Graph: g, Table: tab, Deadline: min + rng.Intn(3*min+1)}
		a, err1 := PathAssign(p)
		b, err2 := TreeAssign(p)
		if err1 != nil || err2 != nil {
			return errors.Is(err1, ErrInfeasible) && errors.Is(err2, ErrInfeasible)
		}
		return a.Cost == b.Cost
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestCostMonotoneInDeadline(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng, 10, true)
		s1, err := TreeAssign(p)
		if err != nil {
			return errors.Is(err, ErrInfeasible)
		}
		p2 := p
		p2.Deadline = p.Deadline + 1 + rng.Intn(5)
		s2, err := TreeAssign(p2)
		if err != nil {
			return false
		}
		return s2.Cost <= s1.Cost
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
