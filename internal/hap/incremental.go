package hap

import (
	"fmt"
	"sync"

	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
)

// IncrementalSolver is a live tree DP that absorbs instance deltas — row
// edits, zero-delay edge insertions/removals, deadline retargets — and
// re-solves in O(dirty ancestor paths) instead of O(|V|) per edit. It is
// the exported face of the sparse treeSolver that DFG_Assign_Repeat already
// drives internally: every delta invalidates only the edited node's curve
// and its unique ancestor chain, and the next Solve recomputes exactly that
// dirty set before tracing the assignment.
//
// The solver answers at its target deadline by the same traceback rule the
// one-shot Tree_Assign uses, so Solve is bit-identical — assignment, cost
// and length — to a from-scratch TreeAssign of the mutated problem. The
// curves are computed out to a horizon of max(deadline, maximum makespan),
// so retargeting the deadline within the horizon is a pure O(|V|·K)
// traceback with no DP work at all.
//
// The solver owns a private clone of the problem's table (SetRow mutates
// it) and keeps only a structural view of the graph (parent/children over
// zero-delay edges); the caller's graph is never written. Methods are safe
// for concurrent use. Close releases the pooled curve arenas; every other
// method errors after Close.
type IncrementalSolver struct {
	mu         sync.Mutex
	s          *treeSolver // guarded by mu; nil after Close
	reversed   bool        // immutable: DP runs on the edge-reversed graph (in-forest orientation)
	target     int         // guarded by mu; the deadline Solve answers at
	horizon    int         // guarded by mu; curves are truncated here (>= target)
	recomputed int         // guarded by mu; dirty nodes recomputed by the last Solve
}

// errIncClosed reports use of a solver after Close.
var errIncClosed = fmt.Errorf("hap: IncrementalSolver used after Close")

// NewIncrementalSolver validates p, runs the sparse tree DP once out to
// max(p.Deadline, maximum makespan) — O(|V|·K·B) for B curve breakpoints,
// like TreeAssign — and keeps the solver live for incremental deltas.
// Out-forests run in graph orientation, in-forests on the reversed edges
// (path lengths and type choices carry over unchanged); any other shape is
// ErrShape. Infeasible instances still build: Solve reports ErrInfeasible
// until a delta makes the target deadline reachable.
func NewIncrementalSolver(p Problem) (*IncrementalSolver, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	reversed := false
	switch {
	case outForestShape(p.Graph):
	case inForestShape(p.Graph):
		reversed = true
	default:
		return nil, fmt.Errorf("%w: IncrementalSolver needs a tree-shaped graph", ErrShape)
	}
	target := p.Deadline
	// Solve the curves out to the instance's maximum makespan — the longest
	// path under the slowest type per node — beyond which every assignment
	// is feasible, so deadline retargets never need a DP re-run.
	horizon := target
	wmax := make([]int, p.Graph.N())
	for v := range wmax {
		wmax[v] = p.Table.MaxTime(v)
	}
	if maxLen, _, err := p.Graph.LongestPath(wmax); err == nil && maxLen > horizon {
		horizon = maxLen
	}
	wide := p
	wide.Table = p.Table.Clone()
	wide.Deadline = horizon
	s, err := newTreeSolver(wide, nil, reversed)
	if err != nil {
		return nil, err
	}
	return &IncrementalSolver{s: s, reversed: reversed, target: target, horizon: horizon}, nil
}

// SetRow replaces node v's (time, cost) row and invalidates the curves on
// v's ancestor path — O(path length) marking, deferred recompute. Times
// must be >= 1 and costs >= 0, with exactly K entries each; a rejected row
// leaves the solver untouched.
func (is *IncrementalSolver) SetRow(v int, times []int, costs []int64) error {
	is.mu.Lock()
	defer is.mu.Unlock()
	if is.s == nil {
		return errIncClosed
	}
	t := is.s.p.Table
	if v < 0 || v >= t.N() {
		return fmt.Errorf("hap: SetRow node %d out of range [0,%d)", v, t.N())
	}
	if len(times) != t.K() || len(costs) != t.K() {
		return fmt.Errorf("hap: SetRow row has %d/%d entries, want %d", len(times), len(costs), t.K())
	}
	for k := 0; k < t.K(); k++ {
		if times[k] < 1 {
			return fmt.Errorf("hap: SetRow time %d for type %d (< 1)", times[k], k)
		}
		if costs[k] < 0 {
			return fmt.Errorf("hap: SetRow negative cost %d for type %d", costs[k], k)
		}
	}
	if err := t.Set(v, times, costs); err != nil {
		return err
	}
	is.s.cand[v] = appendCandTypes(make([]fu.TypeID, 0, t.K()), t, v)
	is.s.markDirty(dfg.NodeID(v))
	return nil
}

// AddEdge inserts an edge from u to v. A delayed edge (delays > 0) does not
// constrain the DAG portion, so it is structurally a no-op here (callers
// digest it separately). A zero-delay edge makes u the parent of v in the
// solver's orientation; it is rejected with ErrShape when v already has a
// parent (the graph would stop being a forest in this orientation — rebuild
// via NewIncrementalSolver if the other orientation still fits) and when it
// would close a cycle. An accepted edge dirties the new parent's ancestor
// path, O(path length).
func (is *IncrementalSolver) AddEdge(u, v dfg.NodeID, delays int) error {
	is.mu.Lock()
	defer is.mu.Unlock()
	if is.s == nil {
		return errIncClosed
	}
	n := len(is.s.parent)
	if int(u) < 0 || int(u) >= n || int(v) < 0 || int(v) >= n {
		return fmt.Errorf("hap: AddEdge (%d,%d) references unknown node", u, v)
	}
	if delays < 0 {
		return fmt.Errorf("hap: AddEdge (%d,%d) negative delays %d", u, v, delays)
	}
	if delays != 0 {
		return nil
	}
	if u == v {
		return fmt.Errorf("hap: zero-delay self-loop on node %d", u)
	}
	parent, child := u, v
	if is.reversed {
		parent, child = v, u
	}
	if is.s.parent[child] >= 0 {
		return fmt.Errorf("%w: node %d already has a zero-delay parent in this orientation", ErrShape, child)
	}
	for w := int32(parent); w >= 0; w = is.s.parent[w] {
		if w == int32(child) {
			return fmt.Errorf("%w: edge (%d,%d) would close a zero-delay cycle", ErrShape, u, v)
		}
	}
	// Appending past a shared-arena row's pinned capacity reallocates just
	// that row, exactly like the construction-time comment documents.
	is.s.children[parent] = append(is.s.children[parent], child)
	is.s.parent[child] = int32(parent)
	is.s.rebuildRootsAndOrder()
	is.s.markDirty(parent)
	return nil
}

// RemoveEdge deletes the structural effect of an edge from u to v. Delayed
// edges are a structural no-op (like AddEdge). Removing a zero-delay edge
// detaches v into a new root and dirties u's ancestor path, O(path length);
// a pair that is not a current zero-delay parent/child link is an error and
// leaves the solver untouched.
func (is *IncrementalSolver) RemoveEdge(u, v dfg.NodeID, delays int) error {
	is.mu.Lock()
	defer is.mu.Unlock()
	if is.s == nil {
		return errIncClosed
	}
	n := len(is.s.parent)
	if int(u) < 0 || int(u) >= n || int(v) < 0 || int(v) >= n {
		return fmt.Errorf("hap: RemoveEdge (%d,%d) references unknown node", u, v)
	}
	if delays != 0 {
		return nil
	}
	parent, child := u, v
	if is.reversed {
		parent, child = v, u
	}
	if is.s.parent[child] != int32(parent) {
		return fmt.Errorf("hap: RemoveEdge (%d,%d): no such zero-delay edge", u, v)
	}
	kids := is.s.children[parent]
	for i, c := range kids {
		if c == child {
			is.s.children[parent] = append(kids[:i:i], kids[i+1:]...)
			break
		}
	}
	is.s.parent[child] = -1
	is.s.rebuildRootsAndOrder()
	is.s.markDirty(parent)
	return nil
}

// rebuildRootsAndOrder recomputes the root set (ascending node id, matching
// construction) and a children-before-parents evaluation order after a
// structural delta. O(|V|); called only on edge insertions/removals.
func (s *treeSolver) rebuildRootsAndOrder() {
	n := len(s.parent)
	s.roots = s.roots[:0]
	for v := 0; v < n; v++ {
		if s.parent[v] < 0 {
			s.roots = append(s.roots, dfg.NodeID(v))
		}
	}
	// Parents-before-children via BFS from the roots, then reversed in
	// place: any children-first order yields identical curves, so only
	// validity matters here.
	order := s.order[:0]
	for _, r := range s.roots {
		order = append(order, r)
	}
	for i := 0; i < len(order); i++ {
		order = append(order, s.children[order[i]]...)
	}
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	s.order = order
}

// SetDeadline retargets the deadline Solve answers at. Within the horizon
// this is free — the next Solve re-traces the existing curves, no DP work.
// A target past the horizon (possible only if construction could not reach
// the maximum makespan, or after edits grew it) widens the horizon and
// invalidates every curve, so the next Solve is a full O(|V|·K·B) DP.
func (is *IncrementalSolver) SetDeadline(L int) error {
	is.mu.Lock()
	defer is.mu.Unlock()
	if is.s == nil {
		return errIncClosed
	}
	if L < 1 {
		return fmt.Errorf("hap: non-positive deadline %d", L)
	}
	if L > is.horizon {
		is.horizon = L
		is.s.p.Deadline = L
		is.s.markAllDirty()
	}
	is.target = L
	return nil
}

// Solve recomputes the dirty curves — O(Σ dirty path lengths · K · B), the
// incremental bound — and extracts the optimal assignment at the target
// deadline by the same traceback rule Tree_Assign uses, so the result is
// bit-identical to a from-scratch TreeAssign of the mutated problem.
// ErrInfeasible reports that no assignment meets the target deadline.
func (is *IncrementalSolver) Solve() (Solution, error) {
	is.mu.Lock()
	defer is.mu.Unlock()
	if is.s == nil {
		return Solution{}, errIncClosed
	}
	is.recomputed = is.s.ndirty
	return is.s.solveAt(is.target)
}

// Recomputed reports how many node curves the last Solve recomputed: the
// dirty-set size, which the O(dirty path) contract bounds by the summed
// ancestor path lengths of the deltas since the previous Solve.
func (is *IncrementalSolver) Recomputed() int {
	is.mu.Lock()
	defer is.mu.Unlock()
	return is.recomputed
}

// Target returns the deadline Solve currently answers at.
func (is *IncrementalSolver) Target() int {
	is.mu.Lock()
	defer is.mu.Unlock()
	return is.target
}

// Frontier recomputes any dirty curves and returns the cost-versus-deadline
// frontier up to the horizon — the deadlines where the optimal cost strictly
// improves, read straight off the DP root curves like TreeFrontier. Empty
// means infeasible everywhere up to the horizon.
func (is *IncrementalSolver) Frontier() []FrontierPoint {
	is.mu.Lock()
	defer is.mu.Unlock()
	if is.s == nil {
		return nil
	}
	is.s.recompute()
	return is.s.frontier()
}

// Close recycles the solver's curve arenas and scratch into the package
// pools. Every later method call fails with an error (or returns nothing);
// Close itself is idempotent.
func (is *IncrementalSolver) Close() {
	is.mu.Lock()
	defer is.mu.Unlock()
	if is.s == nil {
		return
	}
	is.s.release()
	is.s = nil
}
