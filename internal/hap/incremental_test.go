package hap

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
)

// incInstance is the mutable shadow an IncrementalSolver differential test
// maintains: the authoritative edge list and table the solver's answers are
// compared against a from-scratch TreeAssign of.
type incInstance struct {
	n        int
	edges    []dfg.Edge
	table    *fu.Table
	deadline int
}

func (ii *incInstance) graph(t *testing.T) *dfg.Graph {
	t.Helper()
	g := dfg.New()
	for v := 0; v < ii.n; v++ {
		g.MustAddNode(fmt.Sprintf("n%d", v), "op")
	}
	for _, e := range ii.edges {
		if err := g.AddEdge(e.From, e.To, e.Delays); err != nil {
			t.Fatalf("rebuilding graph: %v", err)
		}
	}
	return g
}

// randomForest builds a random out-forest over n nodes: each non-root node
// gets a random earlier parent via a zero-delay edge.
func randomForest(rng *rand.Rand, n int) []dfg.Edge {
	var edges []dfg.Edge
	for v := 1; v < n; v++ {
		if rng.Intn(5) == 0 {
			continue // extra root
		}
		edges = append(edges, dfg.Edge{From: dfg.NodeID(rng.Intn(v)), To: dfg.NodeID(v), Delays: 0})
	}
	return edges
}

// TestIncrementalDifferential drives randomized delta sequences through an
// IncrementalSolver and asserts after every step that its answer is
// bit-identical — assignment, cost, length — to a from-scratch TreeAssign
// of the mutated instance, and that the recompute count never exceeds the
// dirty-path bound.
func TestIncrementalDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		n := 6 + rng.Intn(20)
		k := 2 + rng.Intn(3)
		ii := &incInstance{n: n, edges: randomForest(rng, n), table: fu.RandomTable(rng, n, k)}
		g := ii.graph(t)
		min, err := MinMakespan(g, ii.table)
		if err != nil {
			t.Fatalf("trial %d: min makespan: %v", trial, err)
		}
		ii.deadline = min + rng.Intn(2*min+4)

		inc, err := NewIncrementalSolver(Problem{Graph: g, Table: ii.table, Deadline: ii.deadline})
		if err != nil {
			t.Fatalf("trial %d: build: %v", trial, err)
		}

		check := func(step string) {
			t.Helper()
			got, gerr := inc.Solve()
			fresh := ii.graph(t)
			want, werr := TreeAssign(Problem{Graph: fresh, Table: ii.table, Deadline: ii.deadline})
			if (gerr == nil) != (werr == nil) {
				t.Fatalf("trial %d %s: inc err %v, fresh err %v", trial, step, gerr, werr)
			}
			if gerr != nil {
				return
			}
			if got.Cost != want.Cost || got.Length != want.Length {
				t.Fatalf("trial %d %s: inc (cost %d, len %d) != fresh (cost %d, len %d)",
					trial, step, got.Cost, got.Length, want.Cost, want.Length)
			}
			for v := range got.Assign {
				if got.Assign[v] != want.Assign[v] {
					t.Fatalf("trial %d %s: assignment differs at node %d: %d != %d",
						trial, step, v, got.Assign[v], want.Assign[v])
				}
			}
		}
		check("initial")

		for step := 0; step < 12; step++ {
			switch op := rng.Intn(4); {
			case op == 0: // row edit
				v := rng.Intn(n)
				times := make([]int, k)
				costs := make([]int64, k)
				for j := 0; j < k; j++ {
					times[j] = 1 + rng.Intn(10)
					costs[j] = int64(1 + rng.Intn(50))
				}
				if err := inc.SetRow(v, times, costs); err != nil {
					t.Fatalf("trial %d step %d: SetRow: %v", trial, step, err)
				}
				ii.table.MustSet(v, times, costs)
				if rec := inc.Recomputed(); rec > n {
					t.Fatalf("trial %d step %d: recomputed %d > n=%d", trial, step, rec, n)
				}
			case op == 1: // remove a random zero-delay edge
				if len(ii.edges) == 0 {
					continue
				}
				i := rng.Intn(len(ii.edges))
				e := ii.edges[i]
				if err := inc.RemoveEdge(e.From, e.To, e.Delays); err != nil {
					t.Fatalf("trial %d step %d: RemoveEdge(%d,%d): %v", trial, step, e.From, e.To, err)
				}
				ii.edges = append(ii.edges[:i:i], ii.edges[i+1:]...)
			case op == 2: // attach a current root under a random other node
				fresh := ii.graph(t)
				roots := fresh.Roots()
				if len(roots) < 2 {
					continue
				}
				child := roots[rng.Intn(len(roots))]
				parent := dfg.NodeID(rng.Intn(n))
				if parent == child {
					continue
				}
				err := inc.AddEdge(parent, child, 0)
				if err != nil {
					// The only legal rejection here is a would-be cycle
					// (parent inside child's subtree).
					fresh.MustAddEdge(parent, child, 0)
					if fresh.Validate() == nil {
						t.Fatalf("trial %d step %d: AddEdge(%d,%d) rejected a valid edge: %v",
							trial, step, parent, child, err)
					}
					continue
				}
				ii.edges = append(ii.edges, dfg.Edge{From: parent, To: child, Delays: 0})
			default: // retarget the deadline
				ii.deadline = min + rng.Intn(2*min+4)
				if err := inc.SetDeadline(ii.deadline); err != nil {
					t.Fatalf("trial %d step %d: SetDeadline: %v", trial, step, err)
				}
			}
			check(fmt.Sprintf("step %d", step))
		}
		inc.Close()
	}
}

// TestIncrementalDirtyPath pins the O(dirty path) contract on a long chain:
// editing a leaf's row must recompute the leaf-to-root path, not the tree.
func TestIncrementalDirtyPath(t *testing.T) {
	const n = 64
	g := dfg.New()
	for v := 0; v < n; v++ {
		g.MustAddNode(fmt.Sprintf("c%d", v), "op")
		if v > 0 {
			g.MustAddEdge(dfg.NodeID(v-1), dfg.NodeID(v), 0)
		}
	}
	tab := fu.UniformTable(n, []int{1, 2}, []int64{5, 1})
	inc, err := NewIncrementalSolver(Problem{Graph: g, Table: tab, Deadline: 2 * n})
	if err != nil {
		t.Fatal(err)
	}
	defer inc.Close()
	if _, err := inc.Solve(); err != nil {
		t.Fatal(err)
	}
	if rec := inc.Recomputed(); rec != n {
		t.Fatalf("first solve recomputed %d, want the full %d", rec, n)
	}
	// Chain is 0 -> 1 -> ... -> n-1; in the solver's (out-forest)
	// orientation, node n-1 is the deepest leaf, whose dirty path is the
	// whole chain, while node 0's path is just itself.
	if err := inc.SetRow(0, []int{1, 3}, []int64{7, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Solve(); err != nil {
		t.Fatal(err)
	}
	if rec := inc.Recomputed(); rec != 1 {
		t.Fatalf("root row edit recomputed %d nodes, want 1", rec)
	}
	// A deadline retarget inside the horizon is a pure re-trace.
	if err := inc.SetDeadline(n + 3); err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Solve(); err != nil {
		t.Fatal(err)
	}
	if rec := inc.Recomputed(); rec != 0 {
		t.Fatalf("deadline retarget recomputed %d nodes, want 0", rec)
	}
}

// TestIncrementalShapeAndClose covers the rejection paths: non-tree shapes
// at build, forest-breaking edges, unknown edges, bad rows, use after Close.
func TestIncrementalShapeAndClose(t *testing.T) {
	g := dfg.New()
	a := g.MustAddNode("a", "op")
	b := g.MustAddNode("b", "op")
	c := g.MustAddNode("c", "op")
	g.MustAddEdge(a, c, 0)
	g.MustAddEdge(b, c, 0) // in-degree 2: not an out-forest
	g.MustAddEdge(a, b, 0) // and out-degree 2 on a: not an in-forest either
	tab := fu.UniformTable(3, []int{1}, []int64{1})
	if _, err := NewIncrementalSolver(Problem{Graph: g, Table: tab, Deadline: 10}); err == nil {
		t.Fatal("non-forest build succeeded, want ErrShape")
	}

	g2 := dfg.New()
	a2 := g2.MustAddNode("a", "op")
	b2 := g2.MustAddNode("b", "op")
	c2 := g2.MustAddNode("c", "op")
	g2.MustAddEdge(a2, b2, 0)
	inc, err := NewIncrementalSolver(Problem{Graph: g2, Table: tab, Deadline: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.AddEdge(c2, b2, 0); err == nil {
		t.Fatal("second parent accepted, want ErrShape")
	}
	if err := inc.AddEdge(b2, a2, 0); err == nil {
		t.Fatal("cycle-closing edge accepted, want ErrShape")
	}
	if err := inc.RemoveEdge(a2, c2, 0); err == nil {
		t.Fatal("removing a nonexistent edge succeeded")
	}
	if err := inc.SetRow(0, []int{0}, []int64{1}); err == nil {
		t.Fatal("zero execution time accepted")
	}
	if err := inc.SetRow(0, []int{1}, []int64{-1}); err == nil {
		t.Fatal("negative cost accepted")
	}
	if err := inc.SetRow(9, []int{1}, []int64{1}); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	// Delayed edges are structural no-ops in both directions.
	if err := inc.AddEdge(b2, a2, 2); err != nil {
		t.Fatalf("delayed back-edge: %v", err)
	}
	if err := inc.RemoveEdge(b2, a2, 2); err != nil {
		t.Fatalf("delayed edge removal: %v", err)
	}
	if got := inc.Frontier(); len(got) == 0 {
		t.Fatal("frontier empty for a feasible instance")
	}
	if got, want := inc.Target(), 10; got != want {
		t.Fatalf("target %d, want %d", got, want)
	}
	inc.Close()
	inc.Close() // idempotent
	if _, err := inc.Solve(); err == nil {
		t.Fatal("Solve after Close succeeded")
	}
	if err := inc.SetRow(0, []int{1}, []int64{1}); err == nil {
		t.Fatal("SetRow after Close succeeded")
	}
	if err := inc.AddEdge(a2, c2, 0); err == nil {
		t.Fatal("AddEdge after Close succeeded")
	}
	if err := inc.RemoveEdge(a2, b2, 0); err == nil {
		t.Fatal("RemoveEdge after Close succeeded")
	}
	if err := inc.SetDeadline(5); err == nil {
		t.Fatal("SetDeadline after Close succeeded")
	}
	if inc.Frontier() != nil {
		t.Fatal("Frontier after Close returned points")
	}
}

// TestAnytimeObserverMonotone asserts the Observer contract: incumbent
// costs strictly decrease across updates, the last update matches the
// returned solution, and tree fast paths emit exactly one exact update.
func TestAnytimeObserverMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Non-tree instance so the full ladder runs.
	g := dfg.New()
	for v := 0; v < 10; v++ {
		g.MustAddNode(fmt.Sprintf("n%d", v), "op")
	}
	for v := 2; v < 10; v++ {
		g.MustAddEdge(dfg.NodeID(v-2), dfg.NodeID(v), 0)
		g.MustAddEdge(dfg.NodeID(v-1), dfg.NodeID(v), 0)
	}
	tab := fu.RandomTable(rng, 10, 3)
	min, err := MinMakespan(g, tab)
	if err != nil {
		t.Fatal(err)
	}
	p := Problem{Graph: g, Table: tab, Deadline: min + 3}
	var seen []IncumbentUpdate
	res, err := SolveAnytime(context.Background(), p, AnytimeOptions{
		Sequential: true,
		Observer:   func(u IncumbentUpdate) { seen = append(seen, u) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) == 0 {
		t.Fatal("observer never fired")
	}
	for i := 1; i < len(seen); i++ {
		if seen[i].Cost >= seen[i-1].Cost {
			t.Fatalf("update %d cost %d !< previous %d", i, seen[i].Cost, seen[i-1].Cost)
		}
	}
	last := seen[len(seen)-1]
	if last.Cost != res.Cost {
		t.Fatalf("last update cost %d != result cost %d", last.Cost, res.Cost)
	}
	if last.Gap < 0 {
		t.Fatalf("negative gap %f", last.Gap)
	}

	// Tree fast path: one update, exact, zero gap.
	chain := dfg.New()
	for v := 0; v < 4; v++ {
		chain.MustAddNode(fmt.Sprintf("c%d", v), "op")
		if v > 0 {
			chain.MustAddEdge(dfg.NodeID(v-1), dfg.NodeID(v), 0)
		}
	}
	// A branch keeps it a tree but not a simple path.
	chain.MustAddNode("c4", "op")
	chain.MustAddEdge(0, 4, 0)
	ctab := fu.RandomTable(rng, 5, 3)
	cmin, err := MinMakespan(chain, ctab)
	if err != nil {
		t.Fatal(err)
	}
	seen = nil
	tres, err := SolveAnytime(context.Background(), Problem{Graph: chain, Table: ctab, Deadline: cmin + 2}, AnytimeOptions{
		Observer: func(u IncumbentUpdate) { seen = append(seen, u) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 || seen[0].Stage != "tree" || seen[0].Cost != tres.Cost || seen[0].Gap != 0 {
		t.Fatalf("tree fast path updates = %+v, want one exact tree update at cost %d", seen, tres.Cost)
	}
}
