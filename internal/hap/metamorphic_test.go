package hap

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
)

// Metamorphic properties: transformations of a problem with a known effect
// on the optimum. They catch bugs that fixed oracles miss because both
// sides run through the same (possibly wrong) code path on DIFFERENT
// inputs.

// TestMetamorphicCostScaling: multiplying every cost by a positive
// constant scales the optimal cost by exactly that constant.
func TestMetamorphicCostScaling(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng, 9, true)
		c := int64(2 + rng.Intn(5))
		scaled := p.Table.Clone()
		for v := 0; v < scaled.N(); v++ {
			for k := 0; k < scaled.K(); k++ {
				scaled.Cost[v][k] *= c
			}
		}
		p2 := Problem{Graph: p.Graph, Table: scaled, Deadline: p.Deadline}
		a, err1 := TreeAssign(p)
		b, err2 := TreeAssign(p2)
		if errors.Is(err1, ErrInfeasible) {
			return errors.Is(err2, ErrInfeasible)
		}
		if err1 != nil || err2 != nil {
			return false
		}
		return b.Cost == c*a.Cost
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestMetamorphicNodeOrderInvariance: rebuilding the same tree with nodes
// inserted in a different order (renaming IDs) leaves the optimal cost
// unchanged.
func TestMetamorphicNodeOrderInvariance(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		g := dfg.RandomTree(rng, n)
		tab := fu.RandomTable(rng, n, 2)
		// Permute node identities.
		perm := rng.Perm(n)
		g2 := dfg.New()
		names := make([]string, n)
		for i := 0; i < n; i++ {
			names[i] = g.Node(dfg.NodeID(i)).Name
		}
		newID := make([]dfg.NodeID, n) // old id -> new id
		for _, old := range perm {
			newID[old] = g2.MustAddNode(names[old], "")
		}
		for _, e := range g.Edges() {
			g2.MustAddEdge(newID[e.From], newID[e.To], e.Delays)
		}
		tab2 := fu.NewTable(n, tab.K())
		for old := 0; old < n; old++ {
			tab2.MustSet(int(newID[old]), tab.Time[old], tab.Cost[old])
		}
		min, _ := MinMakespan(g, tab)
		L := min + rng.Intn(min+3)
		a, err1 := TreeAssign(Problem{Graph: g, Table: tab, Deadline: L})
		b, err2 := TreeAssign(Problem{Graph: g2, Table: tab2, Deadline: L})
		if errors.Is(err1, ErrInfeasible) {
			return errors.Is(err2, ErrInfeasible)
		}
		if err1 != nil || err2 != nil {
			return false
		}
		return a.Cost == b.Cost
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestMetamorphicIsolatedNodeAddsItsOwnOptimum: adding a disconnected node
// raises the optimum by exactly that node's cheapest deadline-feasible
// option.
func TestMetamorphicIsolatedNodeAddsItsOwnOptimum(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng, 8, true)
		base, err := TreeAssign(p)
		if err != nil {
			return errors.Is(err, ErrInfeasible)
		}
		g2 := p.Graph.Clone()
		g2.MustAddNode("island", "")
		tab2 := fu.NewTable(g2.N(), p.K())
		for v := 0; v < p.Table.N(); v++ {
			tab2.MustSet(v, p.Table.Time[v], p.Table.Cost[v])
		}
		// The island's options: random times, random costs.
		times := make([]int, p.K())
		costs := make([]int64, p.K())
		for k := range times {
			times[k] = 1 + rng.Intn(p.Deadline+2)
			costs[k] = int64(1 + rng.Intn(20))
		}
		tab2.MustSet(g2.N()-1, times, costs)
		var islandBest int64 = -1
		for k := range times {
			if times[k] <= p.Deadline && (islandBest < 0 || costs[k] < islandBest) {
				islandBest = costs[k]
			}
		}
		p2 := Problem{Graph: g2, Table: tab2, Deadline: p.Deadline}
		sol, err := TreeAssign(p2)
		if islandBest < 0 {
			return errors.Is(err, ErrInfeasible)
		}
		if err != nil {
			return false
		}
		return sol.Cost == base.Cost+islandBest
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestMetamorphicUniformSpeedupScalesDeadline: halving every execution
// time while halving the (even) deadline preserves the optimal cost.
func TestMetamorphicUniformSpeedupScalesDeadline(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		g := dfg.RandomTree(rng, n)
		// Times all even so the scaled instance stays integral.
		tab := fu.NewTable(n, 2)
		for v := 0; v < n; v++ {
			t1 := 2 * (1 + rng.Intn(3))
			tab.MustSet(v, []int{t1, t1 + 2}, []int64{int64(5 + rng.Intn(9)), int64(1 + rng.Intn(4))})
		}
		min, _ := MinMakespan(g, tab)
		L := min + 2*rng.Intn(min)
		if L%2 == 1 {
			L++
		}
		half := tab.Clone()
		for v := 0; v < n; v++ {
			for k := 0; k < 2; k++ {
				half.Time[v][k] /= 2
			}
		}
		a, err1 := TreeAssign(Problem{Graph: g, Table: tab, Deadline: L})
		b, err2 := TreeAssign(Problem{Graph: g, Table: half, Deadline: L / 2})
		if errors.Is(err1, ErrInfeasible) {
			return errors.Is(err2, ErrInfeasible)
		}
		if err1 != nil || err2 != nil {
			return false
		}
		return a.Cost == b.Cost
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
