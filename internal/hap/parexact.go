package hap

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"hetsynth/internal/fu"
)

// errStopped is the sentinel a worker returns when it unwound because the
// shared stop flag was raised by another worker (or by cancellation); it
// never escapes to callers.
var errStopped = errors.New("hap: search stopped")

// incumbent is the workers' shared best-so-far. The cost bound is read
// lock-free on the hot path; the assignment behind it is mutex-protected.
type incumbent struct {
	cost       atomic.Int64
	mu         sync.Mutex
	assign     Assignment // guarded by mu
	assignCost int64      // guarded by mu; cost of assign, kept consistent with it
}

// record lowers the incumbent to (cost, a) when it improves on the current
// bound; the CAS loop keeps losing workers off the mutex entirely.
func (b *incumbent) record(cost int64, a Assignment) {
	for {
		cur := b.cost.Load()
		if cost >= cur {
			return
		}
		if b.cost.CompareAndSwap(cur, cost) {
			b.mu.Lock()
			// Another goroutine may have swapped in an even better
			// cost after our CAS; only overwrite if we still hold it.
			if b.cost.Load() == cost {
				b.assign = a.Clone()
				b.assignCost = cost
			}
			b.mu.Unlock()
			return
		}
	}
}

// snapshot returns the recorded assignment with its cost, read consistently
// under the mutex; ok is false when nothing feasible landed. Callers must
// treat the returned assignment as read-only (SearchStats.Incumbent clones).
func (b *incumbent) snapshot() (Assignment, int64, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.assign == nil {
		return nil, 0, false
	}
	return b.assign, b.assignCost, true
}

// ExactParallel is Exact with the top level of the branch-and-bound fanned
// out over worker goroutines: the K type choices of the first node in
// topological order become K independent subtree searches, each with its
// own mutable state, sharing only the incumbent bound through an atomic.
// Sharing the bound is what makes this worthwhile — a worker that finds a
// good solution immediately tightens the pruning of every other worker.
//
// The result is the same optimum Exact finds (the incumbent is only ever
// lowered); the explored-state total can differ run to run because bound
// propagation is timing-dependent, so the state budget is enforced
// per-worker.
func ExactParallel(p Problem, opts ExactOptions) (Solution, error) {
	return ExactParallelCtx(context.Background(), p, opts)
}

// ExactParallelCtx is ExactParallel — the exponential branch-and-bound over
// K-way type choices, parallelized at the top level — with cooperative
// cancellation. Workers
// poll the context every ~1k explored states and raise a shared stop flag
// the moment it reports done (or any worker fails), so the whole fan-out
// unwinds promptly — cancellation latency is bounded by one poll interval,
// not by the remaining search. All workers are always joined before the
// function returns: a cancelled call leaks no goroutines.
func ExactParallelCtx(ctx context.Context, p Problem, opts ExactOptions) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	if err := ctx.Err(); err != nil {
		return Solution{}, err
	}
	K := p.K()
	workers := runtime.GOMAXPROCS(0)
	if workers <= 1 || K <= 1 || p.Graph.N() < 2 {
		return ExactCtx(ctx, p, opts)
	}
	budget := opts.MaxStates
	if budget <= 0 {
		budget = DefaultMaxStates
	}
	stats := opts.Stats

	order, err := p.Graph.TopoOrder()
	if err != nil {
		return Solution{}, err
	}
	t := p.Table
	n := p.Graph.N()
	if minLen, err := MinMakespan(p.Graph, t); err != nil {
		return Solution{}, err
	} else if minLen > p.Deadline {
		return Solution{}, ErrInfeasible
	}

	// With stats attached, the stats incumbent IS the shared incumbent, so
	// observers see every improvement the moment a worker records it.
	inc := &incumbent{}
	if stats != nil {
		stats.reset()
		inc = &stats.inc
	}
	inc.cost.Store(int64(inf))
	for _, seed := range []func(Problem) (Solution, error){GreedyRatio, Greedy, AssignOnce} {
		if s, err := seed(p); err == nil {
			inc.record(s.Cost, s.Assign)
		}
	}

	minCostSuffix := make([]int64, n+1)
	for i := n - 1; i >= 0; i-- {
		v := int(order[i])
		minCostSuffix[i] = minCostSuffix[i+1] + t.Cost[v][t.MinCostType(v)]
	}
	fastTimes := Times(t, minTimeAssignment(t))
	cands := make([][]fu.TypeID, n)
	for v := 0; v < n; v++ {
		cands[v] = distinctOptions(t, v)
	}

	// stop fans a failure or cancellation out to every worker: each polls it
	// (and the context) every 1024 states, so the whole search collapses
	// within one poll interval of the first worker noticing.
	var stop atomic.Bool
	first := int(order[0])
	var wg sync.WaitGroup
	errs := make([]error, K)
	// Per-worker frontier bounds and state counts; each worker owns its own
	// index, read only after the join.
	fronts := make([]int64, K)
	statesBy := make([]int64, K)
	for k0 := 0; k0 < K; k0++ {
		fronts[k0] = int64(inf)
		wg.Add(1)
		go func(k0 int) {
			defer wg.Done()
			times := append([]int(nil), fastTimes...)
			assign := make(Assignment, n)
			assign[first] = fu.TypeID(k0)
			times[first] = t.Time[first][k0]
			states := 0
			note := func(b int64) {
				if b < fronts[k0] {
					fronts[k0] = b
				}
			}
			var rec func(i int, cost int64) error
			rec = func(i int, cost int64) error {
				states++
				if states&1023 == 0 {
					if stop.Load() {
						note(cost + minCostSuffix[i])
						return errStopped
					}
					if ctx.Err() != nil {
						stop.Store(true)
						note(cost + minCostSuffix[i])
						return errStopped
					}
				}
				if states > budget {
					stop.Store(true)
					note(cost + minCostSuffix[i])
					return fmt.Errorf("%w (budget %d per worker)", ErrSearchTooLarge, budget)
				}
				if cost+minCostSuffix[i] >= inc.cost.Load() {
					return nil
				}
				//hetsynth:ignore retval LongestPath fails only on malformed
				// weights; times is sized by the validated table.
				if l, _, _ := p.Graph.LongestPath(times); l > p.Deadline {
					return nil
				}
				if i == n {
					inc.record(cost, assign)
					return nil
				}
				v := int(order[i])
				saved := times[v]
				for idx, k := range cands[v] {
					assign[v] = k
					times[v] = t.Time[v][k]
					if err := rec(i+1, cost+t.Cost[v][k]); err != nil {
						// The aborted child accounted for its own remainder;
						// the untried siblings are accounted for here.
						for _, k2 := range cands[v][idx+1:] {
							note(cost + t.Cost[v][k2] + minCostSuffix[i+1])
						}
						return err
					}
				}
				times[v] = saved
				return nil
			}
			errs[k0] = rec(1, t.Cost[first][k0])
			statesBy[k0] = int64(states)
		}(k0)
	}
	wg.Wait()

	var stopErr error
	for _, err := range errs {
		if err != nil && !errors.Is(err, errStopped) {
			stopErr = err
			break
		}
	}
	earlyStop := ctx.Err() != nil || stopErr != nil
	if stats != nil {
		var tot int64
		for _, s := range statesBy {
			tot += s
		}
		stats.explored.Store(tot)
		_, cost, ok := inc.snapshot()
		switch {
		case earlyStop:
			lb := int64(inf)
			for _, fb := range fronts {
				if fb < lb {
					lb = fb
				}
			}
			if ok && cost < lb {
				lb = cost
			}
			stats.lower.Store(lb)
		case ok:
			// All workers ran dry: the incumbent is the optimum.
			stats.lower.Store(cost)
		}
	}
	if err := ctx.Err(); err != nil {
		return Solution{}, err
	}
	if stopErr != nil {
		return Solution{}, stopErr
	}
	a, _, ok := inc.snapshot()
	if !ok {
		return Solution{}, ErrInfeasible
	}
	return Evaluate(p, a)
}
