package hap

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
)

func TestExactParallelMatchesSerial(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng, 9, false)
		a, err1 := Exact(p, ExactOptions{})
		b, err2 := ExactParallel(p, ExactOptions{})
		if errors.Is(err1, ErrInfeasible) {
			return errors.Is(err2, ErrInfeasible)
		}
		if err1 != nil || err2 != nil {
			return false
		}
		return a.Cost == b.Cost && b.Length <= p.Deadline
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestExactParallelBudget(t *testing.T) {
	// A chain where the cost lower bound is uselessly loose (the cheap
	// type is far too slow to use everywhere), so the search must descend
	// and the per-worker budget trips deterministically.
	n := 20
	g := dfg.Chain(n)
	tab := fu.NewTable(n, 2)
	for v := 0; v < n; v++ {
		tab.MustSet(v, []int{1, 3}, []int64{10, 1})
	}
	p := Problem{Graph: g, Table: tab, Deadline: 2 * n}
	if _, err := ExactParallel(p, ExactOptions{MaxStates: 10}); !errors.Is(err, ErrSearchTooLarge) {
		t.Fatalf("want ErrSearchTooLarge, got %v", err)
	}
}

func TestExactParallelValidates(t *testing.T) {
	if _, err := ExactParallel(Problem{}, ExactOptions{}); err == nil {
		t.Fatal("nil problem accepted")
	}
}

func TestExactParallelSingleNodeFallsBack(t *testing.T) {
	// A single-node graph takes the serial fallback path.
	g := dfg.Chain(1)
	tab := fu.NewTable(1, 3)
	tab.MustSet(0, []int{1, 3, 7}, []int64{9, 2, 1})
	s, err := ExactParallel(Problem{Graph: g, Table: tab, Deadline: 5}, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Type 2 (cost 1) misses the deadline; type 1 (cost 2) is optimal.
	if s.Cost != 2 {
		t.Fatalf("cost = %d, want 2 (cheapest feasible)", s.Cost)
	}
}
