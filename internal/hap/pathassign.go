package hap

import (
	"fmt"

	"hetsynth/internal/fu"
)

// PathAssign solves HAP optimally when the DAG portion is a simple path
// v1 -> v2 -> ... -> vn. This is Algorithm Path_Assign of the paper (§5.1),
// the single-child specialization of Tree_Assign, kept as an independent
// implementation: it uses O(n·L) memory with a per-prefix DP
//
//	B_i[j] = minimum cost of v1..vi with total execution time at most j
//	       = min over types k with T_k(vi) <= j of B_{i−1}[j − T_k(vi)] + C_k(vi)
//
// and recovers the assignment by tracing from B_n[L], exactly like the
// worked example of Figure 5. Complexity O(n·L·K).
//
// Tests cross-check PathAssign against TreeAssign and the exact solver.
func PathAssign(p Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	if !p.Graph.IsSimplePath() {
		return Solution{}, fmt.Errorf("%w: Path_Assign needs a simple path", ErrShape)
	}
	order, err := p.Graph.TopoOrder() // path order v1..vn
	if err != nil {
		return Solution{}, err
	}
	t, L := p.Table, p.Deadline
	n, K := len(order), t.K()

	// B[i][j] as documented; row 0 is the empty prefix.
	B := make([][]int64, n+1)
	pick := make([][]fu.TypeID, n+1)
	B[0] = make([]int64, L+1)
	for i := 1; i <= n; i++ {
		B[i] = make([]int64, L+1)
		pick[i] = make([]fu.TypeID, L+1)
		v := int(order[i-1])
		for j := 0; j <= L; j++ {
			best := int64(inf)
			bestK := fu.TypeID(-1)
			for k := 0; k < K; k++ {
				rem := j - t.Time[v][k]
				if rem < 0 || B[i-1][rem] == inf {
					continue
				}
				if c := B[i-1][rem] + t.Cost[v][k]; c < best {
					best = c
					bestK = fu.TypeID(k)
				}
			}
			B[i][j] = best
			pick[i][j] = bestK
		}
	}
	if B[n][L] == inf {
		return Solution{}, ErrInfeasible
	}

	assign := make(Assignment, n)
	j := L
	for i := n; i >= 1; i-- {
		v := int(order[i-1])
		k := pick[i][j]
		assign[v] = k
		j -= t.Time[v][k]
	}
	sol, err := Evaluate(p, assign)
	if err != nil {
		return Solution{}, err
	}
	if sol.Cost != B[n][L] {
		return Solution{}, fmt.Errorf("hap: internal error: traceback cost %d != DP value %d", sol.Cost, B[n][L])
	}
	return sol, nil
}
