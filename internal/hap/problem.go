// Package hap implements the heterogeneous assignment problem (HAP) — the
// core contribution of the paper — and all of its solvers:
//
//   - PathAssign: optimal on simple paths (Algorithm Path_Assign, §5.1)
//   - TreeAssign: optimal on trees/out-forests (Algorithm Tree_Assign, §5.2)
//   - AssignOnce: heuristic on general DFGs (Algorithm DFG_Assign_Once, §5.3)
//   - AssignRepeat: heuristic on general DFGs (Algorithm DFG_Assign_Repeat, §5.3)
//   - Greedy: the baseline of Chang–Wang–Parhi the paper compares against
//   - Exact: branch-and-bound optimum (the ILP surrogate), for small graphs
//
// The problem: given a DFG whose node v runs in Time[v][k] control steps at
// cost Cost[v][k] on FU type k, find the type assignment minimizing total
// cost such that every root-to-leaf path of the DAG portion finishes within
// the timing constraint. The problem is NP-complete in general (see package
// knapsack for the reduction), pseudo-polynomial on paths and trees.
package hap

import (
	"errors"
	"fmt"
	"math"

	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
)

// Problem is one HAP instance.
type Problem struct {
	Graph    *dfg.Graph
	Table    *fu.Table // per-(node, type) times and costs
	Deadline int       // timing constraint L, in control steps
}

// Validate checks that the instance is well-formed: acyclic DAG portion,
// rectangular positive-time table covering every node, positive deadline.
func (p Problem) Validate() error {
	if p.Graph == nil || p.Table == nil {
		return errors.New("hap: nil graph or table")
	}
	if p.Graph.N() == 0 {
		return errors.New("hap: empty graph")
	}
	if err := p.Graph.Validate(); err != nil {
		return err
	}
	if err := p.Table.Validate(); err != nil {
		return err
	}
	if p.Table.N() != p.Graph.N() {
		return fmt.Errorf("hap: table covers %d nodes, graph has %d", p.Table.N(), p.Graph.N())
	}
	if p.Deadline < 1 {
		return fmt.Errorf("hap: non-positive deadline %d", p.Deadline)
	}
	return nil
}

// K is the number of FU types of the instance.
func (p Problem) K() int { return p.Table.K() }

// Assignment maps each node (by ID) to an FU type.
type Assignment []fu.TypeID

// Clone returns a copy of the assignment.
func (a Assignment) Clone() Assignment {
	c := make(Assignment, len(a))
	copy(c, a)
	return c
}

// Solution is the result of a solver run.
type Solution struct {
	Assign Assignment
	Cost   int64 // total system cost under Assign
	Length int   // longest-path execution time under Assign
}

// ErrInfeasible is returned when no assignment meets the timing constraint,
// i.e. the deadline is below the graph's minimum makespan.
var ErrInfeasible = errors.New("hap: no assignment satisfies the timing constraint")

// ErrShape is returned when a shape-restricted solver receives a graph of
// the wrong shape (PathAssign on a non-path, TreeAssign on a non-forest).
var ErrShape = errors.New("hap: graph shape not supported by this solver")

const inf = math.MaxInt64

// Times projects the per-node execution times chosen by a.
func Times(t *fu.Table, a Assignment) []int {
	w := make([]int, len(a))
	for v, k := range a {
		w[v] = t.Time[v][k]
	}
	return w
}

// CostOf sums the execution costs chosen by a.
func CostOf(t *fu.Table, a Assignment) int64 {
	var c int64
	for v, k := range a {
		c += t.Cost[v][k]
	}
	return c
}

// Evaluate computes the system cost and schedule-length (longest-path time)
// of an assignment, verifying it is complete and in range. It runs one
// longest-path pass — O(|V|+|E|) — and performs no search, so it is exact
// for the given assignment but makes no optimality claim about it.
func Evaluate(p Problem, a Assignment) (Solution, error) {
	if len(a) != p.Graph.N() {
		return Solution{}, fmt.Errorf("hap: assignment covers %d nodes, graph has %d", len(a), p.Graph.N())
	}
	for v, k := range a {
		if k < 0 || int(k) >= p.K() {
			return Solution{}, fmt.Errorf("hap: node %d assigned invalid type %d", v, k)
		}
	}
	length, _, err := p.Graph.LongestPath(Times(p.Table, a))
	if err != nil {
		return Solution{}, err
	}
	return Solution{Assign: a, Cost: CostOf(p.Table, a), Length: length}, nil
}

// Feasible reports whether a meets the timing constraint.
func Feasible(p Problem, a Assignment) bool {
	s, err := Evaluate(p, a)
	return err == nil && s.Length <= p.Deadline
}

// MinMakespan returns the smallest achievable schedule length: the longest
// path when every node uses its fastest type. It is the tightest deadline
// for which the instance is feasible, and the first timing constraint used
// in the paper's experiments.
func MinMakespan(g *dfg.Graph, t *fu.Table) (int, error) {
	w := make([]int, g.N())
	for v := range w {
		w[v] = t.MinTime(v)
	}
	length, _, err := g.LongestPath(w)
	return length, err
}

// minCostAssignment assigns every node its cheapest type — the optimum when
// the deadline is unconstrained and the greedy baseline's starting point.
func minCostAssignment(t *fu.Table) Assignment {
	a := make(Assignment, t.N())
	for v := range a {
		a[v] = t.MinCostType(v)
	}
	return a
}

// minTimeAssignment assigns every node its fastest type.
func minTimeAssignment(t *fu.Table) Assignment {
	a := make(Assignment, t.N())
	for v := range a {
		a[v] = t.MinTimeType(v)
	}
	return a
}
