package hap

import "hetsynth/internal/fu"

// PruneDominated removes dominated FU-type options from a problem's table:
// type j is dominated for node v when some other type is no slower AND no
// costlier (with a strict improvement in at least one dimension, ties
// keeping the lower index). A dominated option can never appear in any
// optimal solution — replacing it changes neither feasibility nor cost —
// so every solver is free to skip it.
//
// Because the Table format is rectangular, pruning is expressed by
// overwriting a dominated row entry with the dominating one: the option
// remains selectable but is identical to its dominator, which preserves
// solver correctness while collapsing the effective choice set. The
// returned count says how many (node, type) options were collapsed; the
// ablation benchmark measures the resulting DP speedup (fewer distinct
// branches) on wide tables.
func PruneDominated(t *fu.Table) (*fu.Table, int) {
	out := t.Clone()
	collapsed := 0
	for v := 0; v < t.N(); v++ {
		for j := 0; j < t.K(); j++ {
			bestT, bestC := out.Time[v][j], out.Cost[v][j]
			winner := j
			for i := 0; i < t.K(); i++ {
				if i == j {
					continue
				}
				ti, ci := out.Time[v][i], out.Cost[v][i]
				dominates := (ti <= bestT && ci <= bestC) && (ti < bestT || ci < bestC || i < winner)
				if dominates && (ti < bestT || ci < bestC) {
					bestT, bestC, winner = ti, ci, i
				}
			}
			if winner != j {
				out.Time[v][j] = bestT
				out.Cost[v][j] = bestC
				collapsed++
			}
		}
	}
	return out, collapsed
}

// distinctOptions returns one representative type per distinct
// (time, cost) pair of node v, in ascending type order. Interchangeable
// duplicates — including the collapsed rows PruneDominated leaves behind —
// are skipped by the solvers that call this.
func distinctOptions(t *fu.Table, v int) []fu.TypeID {
	out := make([]fu.TypeID, 0, t.K())
	for k := 0; k < t.K(); k++ {
		dup := false
		for j := 0; j < k; j++ {
			if t.Time[v][j] == t.Time[v][k] && t.Cost[v][j] == t.Cost[v][k] {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, fu.TypeID(k))
		}
	}
	return out
}

// EffectiveOptions counts the distinct (time, cost) pairs per node after
// pruning — the real branching factor the DPs see.
func EffectiveOptions(t *fu.Table) []int {
	out := make([]int, t.N())
	for v := 0; v < t.N(); v++ {
		type pair struct {
			t int
			c int64
		}
		seen := map[pair]bool{}
		for j := 0; j < t.K(); j++ {
			seen[pair{t.Time[v][j], t.Cost[v][j]}] = true
		}
		out[v] = len(seen)
	}
	return out
}
