package hap

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
)

func TestPruneDominatedCollapsesStrictlyWorseOptions(t *testing.T) {
	tab := fu.NewTable(1, 3)
	// Type 1 is both slower and costlier than type 0: dominated.
	// Type 2 is slower but cheaper: kept.
	tab.MustSet(0, []int{2, 3, 5}, []int64{5, 7, 2})
	out, collapsed := PruneDominated(tab)
	if collapsed != 1 {
		t.Fatalf("collapsed = %d, want 1", collapsed)
	}
	if out.Time[0][1] != 2 || out.Cost[0][1] != 5 {
		t.Fatalf("dominated option not overwritten: %v %v", out.Time[0], out.Cost[0])
	}
	if out.Time[0][2] != 5 || out.Cost[0][2] != 2 {
		t.Fatalf("pareto option clobbered: %v %v", out.Time[0], out.Cost[0])
	}
	opts := EffectiveOptions(out)
	if opts[0] != 2 {
		t.Fatalf("effective options = %v, want 2", opts)
	}
}

func TestPruneDominatedNoOpOnParetoTables(t *testing.T) {
	// RandomTable rows are strictly monotone in both dimensions: nothing
	// dominates anything.
	rng := rand.New(rand.NewSource(4))
	tab := fu.RandomTable(rng, 10, 3)
	_, collapsed := PruneDominated(tab)
	if collapsed != 0 {
		t.Fatalf("collapsed %d options of a pareto table", collapsed)
	}
}

// TestPruneDominatedPreservesOptimalCost is the correctness property: the
// optimum of the pruned problem equals the optimum of the original, for
// tables that deliberately contain dominated options.
func TestPruneDominatedPreservesOptimalCost(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		g := dfg.RandomDAG(rng, n, 0.35)
		// Fully random rows: dominated options are common.
		tab := fu.NewTable(n, 3)
		for v := 0; v < n; v++ {
			times := make([]int, 3)
			costs := make([]int64, 3)
			for k := 0; k < 3; k++ {
				times[k] = 1 + rng.Intn(6)
				costs[k] = int64(1 + rng.Intn(12))
			}
			tab.MustSet(v, times, costs)
		}
		min, err := MinMakespan(g, tab)
		if err != nil {
			return false
		}
		p := Problem{Graph: g, Table: tab, Deadline: min + rng.Intn(5)}
		pruned, _ := PruneDominated(tab)
		p2 := Problem{Graph: g, Table: pruned, Deadline: p.Deadline}
		a, err1 := BruteForce(p)
		b, err2 := BruteForce(p2)
		if errors.Is(err1, ErrInfeasible) || errors.Is(err2, ErrInfeasible) {
			return errors.Is(err1, ErrInfeasible) && errors.Is(err2, ErrInfeasible)
		}
		if err1 != nil || err2 != nil {
			return false
		}
		return a.Cost == b.Cost
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEffectiveOptionsCountsDistinctPairs(t *testing.T) {
	tab := fu.NewTable(2, 3)
	tab.MustSet(0, []int{1, 1, 2}, []int64{5, 5, 3})
	tab.MustSet(1, []int{1, 2, 3}, []int64{9, 5, 1})
	opts := EffectiveOptions(tab)
	if opts[0] != 2 || opts[1] != 3 {
		t.Fatalf("opts = %v, want [2 3]", opts)
	}
}
