//go:build !race

package hap

// raceEnabled reports whether the race detector is active; the allocation
// assertions only hold without its instrumentation overhead.
const raceEnabled = false
