//go:build race

package hap

const raceEnabled = true
