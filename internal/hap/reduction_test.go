package hap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hetsynth/internal/knapsack"
)

// TestKnapsackReductionEquivalence executes the NP-completeness argument of
// §4: solving the reduced HAP instance optimally (Path_Assign) recovers the
// optimal knapsack value, and the recovered selection is itself a valid
// optimal knapsack solution.
func TestKnapsackReductionEquivalence(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := knapsack.Instance{Capacity: rng.Intn(25)}
		n := 1 + rng.Intn(10)
		for i := 0; i < n; i++ {
			in.Items = append(in.Items, knapsack.Item{
				Value:  int64(rng.Intn(40)),
				Weight: rng.Intn(10),
			})
		}
		wantValue, _, err := knapsack.Solve(in)
		if err != nil {
			return false
		}
		red, err := knapsack.Reduce(in)
		if err != nil {
			return false
		}
		p := Problem{Graph: red.Graph, Table: red.Table, Deadline: red.Deadline}
		sol, err := PathAssign(p)
		if err != nil {
			// L = capacity + n always admits the all-skip assignment.
			return false
		}
		if red.RecoverValue(sol.Cost) != wantValue {
			return false
		}
		// The selection encoded by the assignment must be weight-feasible
		// and achieve the optimal value.
		sel := red.RecoverSelection(sol.Assign)
		var v int64
		w := 0
		for i, s := range sel {
			if s {
				v += in.Items[i].Value
				w += in.Items[i].Weight
			}
		}
		return w <= in.Capacity && v == wantValue
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestKnapsackReductionViaTreeAssign repeats the equivalence through
// Tree_Assign, confirming the generalized DP subsumes the path case on the
// hardness construction too.
func TestKnapsackReductionViaTreeAssign(t *testing.T) {
	in := knapsack.Instance{
		Items: []knapsack.Item{
			{Value: 60, Weight: 5}, {Value: 50, Weight: 4},
			{Value: 70, Weight: 6}, {Value: 30, Weight: 3},
		},
		Capacity: 10,
	}
	red, err := knapsack.Reduce(in)
	if err != nil {
		t.Fatal(err)
	}
	p := Problem{Graph: red.Graph, Table: red.Table, Deadline: red.Deadline}
	sol, err := TreeAssign(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := red.RecoverValue(sol.Cost); got != 120 {
		t.Fatalf("recovered value %d, want 120", got)
	}
}
