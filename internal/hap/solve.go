package hap

import (
	"context"
	"fmt"

	"hetsynth/internal/fu"
)

// Algorithm selects a HAP solver.
type Algorithm int

const (
	// AlgoAuto picks the best solver for the graph shape: Path_Assign on
	// simple paths, Tree_Assign on out-forests, DFG_Assign_Repeat otherwise
	// (the paper's recommendation).
	AlgoAuto Algorithm = iota
	// AlgoPath is Algorithm Path_Assign (optimal, simple paths only).
	AlgoPath
	// AlgoTree is Algorithm Tree_Assign (optimal, out-forests only).
	AlgoTree
	// AlgoOnce is Algorithm DFG_Assign_Once.
	AlgoOnce
	// AlgoRepeat is Algorithm DFG_Assign_Repeat.
	AlgoRepeat
	// AlgoGreedy is the baseline greedy heuristic (speed-driven, after the
	// paper's reference [3]).
	AlgoGreedy
	// AlgoGreedyRatio is the cost-aware greedy variant (ablation baseline).
	AlgoGreedyRatio
	// AlgoExact is the branch-and-bound optimum (small graphs).
	AlgoExact
	// AlgoAnytime is the deadline-aware ladder (greedy → repeat → anneal →
	// exact) that returns the best feasible incumbent when the context
	// expires; see SolveAnytime for the full contract.
	AlgoAnytime
)

var algoNames = map[Algorithm]string{
	AlgoAuto:        "auto",
	AlgoPath:        "path",
	AlgoTree:        "tree",
	AlgoOnce:        "once",
	AlgoRepeat:      "repeat",
	AlgoGreedy:      "greedy",
	AlgoGreedyRatio: "greedy-ratio",
	AlgoExact:       "exact",
	AlgoAnytime:     "anytime",
}

// String returns the CLI name of the algorithm.
func (a Algorithm) String() string {
	if s, ok := algoNames[a]; ok {
		return s
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// ParseAlgorithm resolves a CLI name to an Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	for a, name := range algoNames {
		if name == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("hap: unknown algorithm %q (want auto|path|tree|once|repeat|greedy|greedy-ratio|exact|anytime)", s)
}

// Solve runs the selected algorithm on the problem. Complexity follows the
// algorithm: path/tree are optimal polynomial DPs on their graph classes,
// once/repeat are the paper's polynomial heuristics, greedy variants are
// baseline heuristics, and exact is an exponential branch-and-bound.
func Solve(p Problem, algo Algorithm) (Solution, error) {
	return SolveCtx(context.Background(), p, algo)
}

// SolveCtx is Solve with cooperative cancellation. The polynomial solvers
// (path, tree, greedy) run to completion — they finish in microseconds to
// milliseconds — while the iterative and exponential ones (Repeat, Exact)
// poll the context periodically and unwind with its error when cancelled.
func SolveCtx(ctx context.Context, p Problem, algo Algorithm) (Solution, error) {
	if err := ctx.Err(); err != nil {
		return Solution{}, err
	}
	switch algo {
	case AlgoAuto:
		switch {
		case p.Graph != nil && p.Graph.IsSimplePath():
			return PathAssign(p)
		case p.Graph != nil && (p.Graph.IsOutForest() || p.Graph.IsInForest()):
			return TreeAssign(p)
		default:
			return AssignRepeatCtx(ctx, p)
		}
	case AlgoPath:
		return PathAssign(p)
	case AlgoTree:
		return TreeAssign(p)
	case AlgoOnce:
		return AssignOnce(p)
	case AlgoRepeat:
		return AssignRepeatCtx(ctx, p)
	case AlgoGreedy:
		return Greedy(p)
	case AlgoGreedyRatio:
		return GreedyRatio(p)
	case AlgoExact:
		return ExactCtx(ctx, p, ExactOptions{})
	case AlgoAnytime:
		r, err := SolveAnytime(ctx, p, AnytimeOptions{})
		return r.Solution, err
	default:
		return Solution{}, fmt.Errorf("hap: unknown algorithm %v", algo)
	}
}

// Describe renders an assignment as "name:type" pairs, one per node.
func Describe(p Problem, lib *fu.Library, a Assignment) []string {
	return dfgNodeNames(p.Graph, lib, a)
}
