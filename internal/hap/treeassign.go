package hap

import (
	"fmt"

	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
)

// TreeAssign solves HAP optimally when the DAG portion of the graph is an
// out-forest (every node has at most one parent). This is Algorithm
// Tree_Assign of the paper, generalized to forests: the paper's pseudo root
// node (zero time and cost for every type) that joins multiple roots is
// equivalent to summing the per-root optima, which is what we do directly.
//
// Dynamic program, children before parents:
//
//	X_v[j] = minimum cost of the subtree rooted at v such that the longest
//	         execution-time path from v to any leaf is at most j
//	       = min over types k with T_k(v) <= j of
//	         C_k(v) + sum over children c of X_c[j - T_k(v)]
//
// The per-child minima are independent because distinct root-to-leaf paths
// of a tree share only ancestors, which are accounted at v and above; this
// independence is exactly what fails on general DFGs and why HAP on DAGs is
// NP-complete while trees admit an O(|V|·L·K) pseudo-polynomial optimum.
//
// TreeAssign returns ErrShape on non-forests and ErrInfeasible when even
// all-fastest types miss the deadline.
// In-forests (fan-in computation trees, the usual shape of filter DFGs) are
// handled by solving on the transpose: reversing every edge preserves the
// length of every path and the per-node choices, so the optimum carries over
// unchanged.
func TreeAssign(p Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	switch {
	case p.Graph.IsOutForest():
		return treeAssignMasked(p, nil)
	case p.Graph.IsInForest():
		rp := Problem{Graph: p.Graph.Transpose(), Table: p.Table, Deadline: p.Deadline}
		sol, err := treeAssignMasked(rp, nil)
		if err != nil {
			return Solution{}, err
		}
		return Evaluate(p, sol.Assign)
	default:
		return Solution{}, fmt.Errorf("%w: Tree_Assign needs an out-forest or in-forest", ErrShape)
	}
}

// treeAssignMasked is TreeAssign with an optional per-node type mask:
// allowed[v][k] == false forbids assigning type k to node v. A nil mask (or
// nil row) allows everything. DFG_Assign_Repeat uses the mask to pin
// duplicated nodes to an already-fixed type between re-runs.
func treeAssignMasked(p Problem, allowed [][]bool) (Solution, error) {
	g, t, L := p.Graph, p.Table, p.Deadline
	n, K := g.N(), t.K()

	// Per node, the candidate types: masked rows verbatim, unmasked rows
	// with duplicate (time, cost) pairs collapsed — interchangeable options
	// cannot change the optimum, and skipping them is what makes the
	// PruneDominated pre-pass pay off inside the DP.
	candidates := make([][]fu.TypeID, n)
	for v := 0; v < n; v++ {
		if allowed != nil && allowed[v] != nil {
			for k := 0; k < K; k++ {
				if allowed[v][k] {
					candidates[v] = append(candidates[v], fu.TypeID(k))
				}
			}
			continue
		}
		candidates[v] = distinctOptions(t, v)
	}

	rev, err := g.ReverseTopoOrder()
	if err != nil {
		return Solution{}, err
	}

	// X[v][j]: DP value as documented above; inf marks infeasibility.
	// choice[v][j]: the type realizing X[v][j], for traceback.
	X := make([][]int64, n)
	choice := make([][]fu.TypeID, n)
	for v := 0; v < n; v++ {
		X[v] = make([]int64, L+1)
		choice[v] = make([]fu.TypeID, L+1)
	}

	for _, vid := range rev {
		v := int(vid)
		children := g.Succ(vid)
		for j := 0; j <= L; j++ {
			best := int64(inf)
			bestK := fu.TypeID(-1)
			for _, k := range candidates[v] {
				rem := j - t.Time[v][k]
				if rem < 0 {
					continue
				}
				sum := t.Cost[v][k]
				ok := true
				for _, c := range children {
					xc := X[c][rem]
					if xc == inf {
						ok = false
						break
					}
					sum += xc
				}
				if ok && sum < best {
					best = sum
					bestK = fu.TypeID(k)
				}
			}
			X[v][j] = best
			choice[v][j] = bestK
		}
	}

	var total int64
	for _, r := range g.Roots() {
		if X[r][L] == inf {
			return Solution{}, ErrInfeasible
		}
		total += X[r][L]
	}

	// Traceback: every child of v inherits the remaining budget
	// j − T_k(v); within a subtree all children share it.
	assign := make(Assignment, n)
	var walk func(v int, j int)
	walk = func(v int, j int) {
		k := choice[v][j]
		assign[v] = k
		rem := j - t.Time[v][k]
		for _, c := range g.Succ(dfg.NodeID(v)) {
			walk(int(c), rem)
		}
	}
	for _, r := range g.Roots() {
		walk(int(r), L)
	}

	sol, err := Evaluate(p, assign)
	if err != nil {
		return Solution{}, err
	}
	if sol.Cost != total {
		return Solution{}, fmt.Errorf("hap: internal error: traceback cost %d != DP value %d", sol.Cost, total)
	}
	if sol.Length > L {
		return Solution{}, fmt.Errorf("hap: internal error: Tree_Assign produced length %d > %d", sol.Length, L)
	}
	return sol, nil
}
