package hap

import (
	"fmt"

	"hetsynth/internal/dfg"
)

// TreeAssign solves HAP optimally when the DAG portion of the graph is an
// out-forest (every node has at most one parent). This is Algorithm
// Tree_Assign of the paper, generalized to forests: the paper's pseudo root
// node (zero time and cost for every type) that joins multiple roots is
// equivalent to summing the per-root optima, which is what we do directly.
//
// Dynamic program, children before parents:
//
//	X_v[j] = minimum cost of the subtree rooted at v such that the longest
//	         execution-time path from v to any leaf is at most j
//	       = min over types k with T_k(v) <= j of
//	         C_k(v) + sum over children c of X_c[j - T_k(v)]
//
// The per-child minima are independent because distinct root-to-leaf paths
// of a tree share only ancestors, which are accounted at v and above; this
// independence is exactly what fails on general DFGs and why HAP on DAGs is
// NP-complete while trees admit a pseudo-polynomial optimum.
//
// The engine stores each X_v sparsely, as the breakpoints of the
// non-increasing step function j ↦ X_v[j] (see curve.go), so per-node work
// is O((B_children + K·B_v) log) in the breakpoint counts B instead of the
// dense table's O(L·K), and memory is the total frontier size instead of
// O(|V|·L). Costs and assignments are identical to the dense formulation
// (treeAssignDense keeps it as the differential-test oracle). Forests with
// at least parallelMinDirty nodes are evaluated by a worker pool over
// independent sibling subtrees.
//
// TreeAssign returns ErrShape on non-forests and ErrInfeasible when even
// all-fastest types miss the deadline.
// In-forests (fan-in computation trees, the usual shape of filter DFGs) are
// handled by solving on the transpose: reversing every edge preserves the
// length of every path and the per-node choices, so the optimum carries over
// unchanged.
func TreeAssign(p Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	switch {
	case outForestShape(p.Graph):
		return treeAssignMasked(p, nil)
	case inForestShape(p.Graph):
		// Solved on the edge-reversed orientation in place (see
		// newTreeSolver): path lengths and per-node choices are preserved,
		// so the solution needs no translation back.
		s, err := newTreeSolver(p, nil, true)
		if err != nil {
			return Solution{}, err
		}
		defer s.release()
		return s.solve()
	default:
		return Solution{}, fmt.Errorf("%w: Tree_Assign needs an out-forest or in-forest", ErrShape)
	}
}

// outForestShape / inForestShape are Graph.IsOutForest / IsInForest minus
// the acyclicity re-check: the callers here have already run
// Problem.Validate, which proved the DAG portion acyclic, so only the
// degree conditions remain to be tested.
func outForestShape(g *dfg.Graph) bool {
	for v := 0; v < g.N(); v++ {
		if g.InDegree(dfg.NodeID(v)) > 1 {
			return false
		}
	}
	return true
}

func inForestShape(g *dfg.Graph) bool {
	for v := 0; v < g.N(); v++ {
		if g.OutDegree(dfg.NodeID(v)) > 1 {
			return false
		}
	}
	return true
}

// treeAssignMasked is TreeAssign with an optional per-node type mask:
// allowed[v][k] == false forbids assigning type k to node v. A nil mask (or
// nil row) allows everything. It is a one-shot convenience over treeSolver,
// which DFG_Assign_Repeat uses directly to re-solve incrementally after
// pinning duplicated nodes.
func treeAssignMasked(p Problem, allowed [][]bool) (Solution, error) {
	s, err := newTreeSolver(p, allowed, false)
	if err != nil {
		return Solution{}, err
	}
	defer s.release()
	return s.solve()
}
