package hap

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
)

// parallelMinDirty is the dirty-node count below which the tree DP stays
// serial: handing a node to a worker costs more than computing a small
// curve, and the paper's benchmark trees are all far below this size.
const parallelMinDirty = 512

// treeSolver carries the sparse-DP state of one out-forest problem so that
// callers can re-solve incrementally. TreeAssign builds one, solves once and
// discards it; DFG_Assign_Repeat keeps it across iterations — pinning a
// duplicated node's copies dirties only the curves on the copies' ancestor
// paths (tree parents are unique), so each re-solve recomputes Σ affected
// path lengths worth of nodes instead of the whole tree.
type treeSolver struct {
	p        Problem
	children [][]dfg.NodeID // zero-delay successors, precomputed once
	parent   []int32        // unique tree parent, -1 at roots
	roots    []dfg.NodeID
	order    []dfg.NodeID // children before parents
	cand     [][]fu.TypeID

	// Retained per-node curves. The default representation is a curveRef per
	// node into the solver-owned flat arenas (arena.go): contiguous storage,
	// 12-byte handles, pooled backing stores. sliceMode switches to one
	// []curvePoint allocation per node — the representation the arenas
	// replaced — which is retained as the storage-layout oracle for the
	// arena differential tests.
	refs        []curveRef
	arenas      []*curveArena
	sliceCurves []curve
	sliceMode   bool

	// arenaMu guards growth of the arenas slice on the (unreachable in
	// practice) overflow path of a parallel solve; see recomputeParallel.
	arenaMu sync.Mutex
	// ptmp carries curve slice headers from the worker that computed a node
	// to the worker that reads it during a parallel solve. Workers must not
	// read an arena's mutable pts header while its owner appends, so each
	// store captures the (immutable once written) points as a slice and the
	// parent reads that instead of resolving its curveRef.
	ptmp []curve

	dirty  []bool
	ndirty int
	down   []int      // scratch for the longest-path check in solve
	tb     []tbFrame  // traceback stack, reused across solveAt calls
	sc     *dpScratch // serial-path scratch, reused across re-solves; nil after release
}

// newTreeSolver prepares the solver for an out-forest problem, with the same
// optional per-node type mask treeAssignMasked documents: allowed[v][k] ==
// false forbids type k on node v; a nil mask (or nil row) allows everything.
// Every node starts dirty, so the first solve computes the full DP.
//
// reversed runs the DP on the edge-reversed graph without materializing the
// transpose: children become the zero-delay predecessors and a plain
// topological order serves as the children-before-parents order. Reversing
// edges preserves every path length and the per-node type choices, so the
// optimum (cost, length, assignment) carries over to the original unchanged —
// this is how in-forests are solved without copying the graph each call.
func newTreeSolver(p Problem, allowed [][]bool, reversed bool) (*treeSolver, error) {
	return newTreeSolverMode(p, allowed, reversed, false)
}

// newTreeSolverMode is newTreeSolver with an explicit curve-storage mode:
// sliceMode retains one []curvePoint per node instead of arena refs. Only
// the arena differential tests ask for slice mode; every production caller
// goes through newTreeSolver.
func newTreeSolverMode(p Problem, allowed [][]bool, reversed, sliceMode bool) (*treeSolver, error) {
	g, t := p.Graph, p.Table
	n, K := g.N(), t.K()
	var order []dfg.NodeID
	var err error
	if reversed {
		order, err = g.TopoOrder()
	} else {
		order, err = g.ReverseTopoOrder()
	}
	if err != nil {
		return nil, err
	}
	s := &treeSolver{
		p:         p,
		children:  make([][]dfg.NodeID, n),
		parent:    make([]int32, n),
		order:     order,
		cand:      make([][]fu.TypeID, n),
		sliceMode: sliceMode,
		dirty:     make([]bool, n),
		ndirty:    n,
		// hetsynth:pool-escape solver-owned scratch, held until release() recycles it
		sc: getScratch(),
	}
	if sliceMode {
		s.sliceCurves = make([]curve, n)
	} else {
		s.refs = make([]curveRef, n)
		// hetsynth:pool-escape serial arena, held until release() recycles it
		s.arenas = append(s.arenas, getArena())
	}
	for v := 0; v < n; v++ {
		s.parent[v] = -1
		s.dirty[v] = true
	}
	// Adjacency from the raw edge list into one shared arena: two
	// allocations total instead of one g.Succ slice per node.
	m := g.M()
	deg := make([]int, n)
	total := 0
	for i := 0; i < m; i++ {
		if e := g.Edge(i); e.Delays == 0 {
			if reversed {
				deg[e.To]++
			} else {
				deg[e.From]++
			}
			total++
		}
	}
	childArena := make([]dfg.NodeID, 0, total)
	for v := 0; v < n; v++ {
		at := len(childArena)
		s.children[v] = childArena[at:at:at+deg[v]]
		childArena = childArena[:at+deg[v]]
	}
	fill := deg // reuse as per-node cursor
	for v := range fill {
		fill[v] = 0
	}
	for i := 0; i < m; i++ {
		e := g.Edge(i)
		if e.Delays != 0 {
			continue
		}
		from, to := e.From, e.To
		if reversed {
			from, to = to, from
		}
		s.children[from] = s.children[from][:fill[from]+1]
		s.children[from][fill[from]] = to
		fill[from]++
		s.parent[to] = int32(from)
	}
	for v := 0; v < n; v++ {
		if s.parent[v] < 0 {
			s.roots = append(s.roots, dfg.NodeID(v))
		}
	}
	// Per node, the candidate types: masked rows verbatim, unmasked rows
	// with duplicate (time, cost) pairs collapsed — interchangeable options
	// cannot change the optimum, and skipping them is what makes the
	// PruneDominated pre-pass pay off inside the DP. One arena backs every
	// row (each appends at most K entries, so it never reallocates).
	candArena := make([]fu.TypeID, 0, n*K)
	for v := 0; v < n; v++ {
		at := len(candArena)
		if allowed != nil && allowed[v] != nil {
			for k := 0; k < K; k++ {
				if allowed[v][k] {
					candArena = append(candArena, fu.TypeID(k))
				}
			}
		} else {
			candArena = appendCandTypes(candArena, t, v)
		}
		s.cand[v] = candArena[at:len(candArena):len(candArena)]
	}
	return s, nil
}

// appendCandTypes appends node v's candidate types to dst: every type of the
// table row, with duplicate (time, cost) pairs collapsed onto the lowest
// type id. Construction and incremental row edits both go through this one
// rule, so a re-solved row can never diverge from a from-scratch build.
func appendCandTypes(dst []fu.TypeID, t *fu.Table, v int) []fu.TypeID {
	K := t.K()
	for k := 0; k < K; k++ {
		dup := false
		for j := 0; j < k; j++ {
			if t.Time[v][j] == t.Time[v][k] && t.Cost[v][j] == t.Cost[v][k] {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, fu.TypeID(k))
		}
	}
	return dst
}

// release recycles the solver's scratch buffers and curve arenas — the
// backing stores every retained curve lives in — into the package pools. The
// solver, its curves, and any frontier read off them are invalid afterwards;
// callers may release only when they are discarding the solver and have
// copied everything they keep (Solution and FrontierPoint values copy, never
// alias). Solvers retained for later tracebacks (FrontierSolver) are never
// released.
func (s *treeSolver) release() {
	if s.sc != nil {
		putScratch(s.sc)
		s.sc = nil
	}
	for _, a := range s.arenas {
		putArena(a)
	}
	s.arenas = nil
	s.refs = nil
}

// curveOf returns node v's retained curve: a view into the owning arena (or
// the node's own slice in slice mode). Callers must not append to it; the
// arena view's capacity is pinned, so a stray append cannot corrupt a
// neighbor, but the result must be treated as read-only either way.
//
// hetsynth:hotpath
func (s *treeSolver) curveOf(v dfg.NodeID) curve {
	if s.sliceMode {
		return s.sliceCurves[v]
	}
	r := s.refs[v]
	if r.n == 0 {
		return nil
	}
	pts := s.arenas[r.ar].pts
	return curve(pts[r.off : r.off+r.n : r.off+r.n])
}

// storeCurve retains pts (a transient envelope result) as node v's curve by
// copying it into arena ar. In slice mode the copy is a fresh per-node
// allocation instead. A nil/empty pts records the infeasible curve.
//
// hetsynth:hotpath
func (s *treeSolver) storeCurve(v dfg.NodeID, pts curve, ar int32) {
	if s.sliceMode {
		if len(pts) == 0 {
			s.sliceCurves[v] = nil
			return
		}
		s.sliceCurves[v] = append(curve(nil), pts...)
		return
	}
	if len(pts) == 0 {
		s.refs[v] = curveRef{}
		return
	}
	a := s.arenas[ar]
	if len(a.pts)+len(pts) > maxArenaPoints {
		s.compactArena(ar)
		a = s.arenas[ar]
		if len(a.pts)+len(pts) > maxArenaPoints {
			// Even fully compacted the live curves don't fit one arena's
			// offset space; open a fresh arena and store there. Unreachable
			// for real instances (2^31 points is 32 GiB of curve), but the
			// DP must stay correct if it ever happens.
			ar = int32(len(s.arenas))
			// hetsynth:pool-escape overflow arena, held until release() recycles it
			s.arenas = append(s.arenas, getArena())
			a = s.arenas[ar]
		}
	}
	at := len(a.pts)
	a.pts = append(a.pts, pts...)
	s.refs[v] = curveRef{off: int32(at), n: int32(len(pts)), ar: ar}
}

// compactArena rewrites arena ar to contain only the curves still referenced
// by a node, reclaiming the ranges abandoned by incremental re-solves. It
// runs only when an arena would outgrow its int32 offset space.
func (s *treeSolver) compactArena(ar int32) {
	old := s.arenas[ar].pts
	fresh := make([]curvePoint, 0, len(old))
	for v := range s.refs {
		r := s.refs[v]
		if r.ar != ar || r.n == 0 {
			continue
		}
		at := len(fresh)
		fresh = append(fresh, old[r.off:r.off+r.n:r.off+r.n]...)
		s.refs[v] = curveRef{off: int32(at), n: r.n, ar: ar}
	}
	s.arenas[ar].pts = fresh
}

// pin restricts every listed node to the single type k and dirties the
// curves that depend on it: the node itself and its ancestors up to the
// root.
func (s *treeSolver) pin(nodes []dfg.NodeID, k fu.TypeID) {
	for _, w := range nodes {
		s.cand[w] = []fu.TypeID{k}
		s.markDirty(w)
	}
}

// markDirty invalidates node w's curve and every curve that depends on it:
// the ancestors up to the root. The climb stops at the first already-dirty
// node, whose own climb has marked the rest of the path, so a batch of
// invalidations costs Σ fresh path lengths, not Σ full path lengths.
func (s *treeSolver) markDirty(w dfg.NodeID) {
	for v := int32(w); v >= 0; v = s.parent[v] {
		if s.dirty[v] {
			break
		}
		s.dirty[v] = true
		s.ndirty++
	}
}

// markAllDirty invalidates every curve; the next recompute is a full DP.
func (s *treeSolver) markAllDirty() {
	for v := range s.dirty {
		s.dirty[v] = true
	}
	s.ndirty = len(s.dirty)
}

// computeCurve builds node v's Pareto curve from its children's curves. The
// result is transient (it aliases sc.pts); the caller copies it into retained
// storage via storeCurve. tmp, when non-nil, overrides the child lookup with
// captured slice headers — the parallel path's race-free handoff (see ptmp).
func (s *treeSolver) computeCurve(v int, sc *dpScratch, tmp []curve) curve {
	var kids []curve
	if n := len(s.children[v]); n > 0 {
		if cap(sc.kids) < n {
			sc.kids = make([]curve, n)
		}
		kids = sc.kids[:n]
		if tmp != nil {
			for i, c := range s.children[v] {
				kids[i] = tmp[c]
			}
		} else {
			for i, c := range s.children[v] {
				kids[i] = s.curveOf(c)
			}
		}
	}
	sum := sumCurves(kids, s.p.Deadline, sc)
	if len(sum) == 0 {
		return nil
	}
	t := s.p.Table
	return envelope(sum, s.cand[v], t.Time[v], t.Cost[v], s.p.Deadline, sc)
}

// recompute brings every dirty curve up to date, children before parents.
// Large all-dirty solves fan independent sibling subtrees out over a worker
// pool; incremental re-solves dirty only root paths (no parallelism to
// exploit) and small trees don't amortize the handoff, so both stay serial.
func (s *treeSolver) recompute() {
	if s.ndirty == 0 {
		return
	}
	if s.ndirty >= parallelMinDirty && runtime.GOMAXPROCS(0) > 1 {
		s.recomputeParallel()
	} else {
		for _, v := range s.order {
			if s.dirty[v] {
				s.storeCurve(v, s.computeCurve(int(v), s.sc, nil), 0)
				s.dirty[v] = false
			}
		}
	}
	s.ndirty = 0
}

// recomputeParallel is the worker-pool evaluation of the dirty set: a node
// becomes ready once its dirty children are done, so independent sibling
// subtrees proceed concurrently. Each worker owns its scratch; a node's
// curve is written by exactly one worker and read by its parent's worker
// only after the ready handoff (atomic counter + channel), which is the
// happens-before edge that keeps the solve race-free.
func (s *treeSolver) recomputeParallel() {
	pending := make([]int32, len(s.dirty))
	ready := make(chan dfg.NodeID, s.ndirty)
	for _, v := range s.order {
		if !s.dirty[v] {
			continue
		}
		cnt := int32(0)
		for _, c := range s.children[v] {
			if s.dirty[c] {
				cnt++
			}
		}
		pending[v] = cnt
		if cnt == 0 {
			ready <- v
		}
	}
	var remaining atomic.Int32
	remaining.Store(int32(s.ndirty))
	workers := runtime.GOMAXPROCS(0)
	if workers > s.ndirty {
		workers = s.ndirty
	}
	// ptmp hands each computed curve to the parent's worker as a captured
	// slice header: resolving a curveRef reads the owning arena's mutable pts
	// header, which would race with the owner's appends even though the
	// points themselves are immutable once written. Clean nodes contribute
	// their retained curves up front, before any worker starts.
	if cap(s.ptmp) < len(s.order) {
		s.ptmp = make([]curve, len(s.order))
	}
	tmp := s.ptmp[:len(s.order)]
	for _, v := range s.order {
		if s.dirty[v] {
			tmp[v] = nil
		} else {
			tmp[v] = s.curveOf(v)
		}
	}
	// One private arena per worker, registered before the workers spawn so
	// the arenas slice itself stays immutable during the run (the overflow
	// path below is the sole, mutex-guarded exception).
	base := len(s.arenas)
	if !s.sliceMode {
		for w := 0; w < workers; w++ {
			// hetsynth:pool-escape per-worker arena, held until release() recycles it
			s.arenas = append(s.arenas, getArena())
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		ar := int32(0)
		var a *curveArena
		if !s.sliceMode {
			ar = int32(base + w)
			a = s.arenas[ar]
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := getScratch()
			defer putScratch(sc)
			for v := range ready {
				pts := s.computeCurve(int(v), sc, tmp)
				if s.sliceMode {
					s.storeCurve(v, pts, 0)
					tmp[v] = s.sliceCurves[v]
				} else if len(pts) == 0 {
					s.refs[v] = curveRef{}
					tmp[v] = nil
				} else {
					if len(a.pts)+len(pts) > maxArenaPoints {
						// Worker arenas never compact mid-run — other
						// workers' refs are in flight — so overflow opens a
						// fresh arena instead. Appends that relocate a.pts
						// don't invalidate earlier refs or tmp entries:
						// append copies the prefix, so recorded offsets hold
						// against the final backing and old headers keep
						// aliasing the (immutable) prior one.
						s.arenaMu.Lock()
						ar = int32(len(s.arenas))
						// hetsynth:pool-escape worker overflow arena, recycled by release()
						s.arenas = append(s.arenas, getArena())
						a = s.arenas[ar]
						s.arenaMu.Unlock()
					}
					at := len(a.pts)
					a.pts = append(a.pts, pts...)
					s.refs[v] = curveRef{off: int32(at), n: int32(len(pts)), ar: ar}
					tmp[v] = curve(a.pts[at : at+len(pts) : at+len(pts)])
				}
				s.dirty[v] = false
				if p := s.parent[v]; p >= 0 && s.dirty[p] {
					if atomic.AddInt32(&pending[p], -1) == 0 {
						ready <- dfg.NodeID(p)
					}
				}
				if remaining.Add(-1) == 0 {
					close(ready)
				}
			}
		}()
	}
	wg.Wait()
}

// solve recomputes what is dirty and extracts the optimum at the deadline.
func (s *treeSolver) solve() (Solution, error) { return s.solveAt(s.p.Deadline) }

// solveAt extracts the optimum at an arbitrary budget <= p.Deadline from the
// already-computed curves. The curves are truncated at p.Deadline, so budgets
// beyond it would silently underreport feasibility; callers guard that.
func (s *treeSolver) solveAt(budget int) (Solution, error) {
	s.recompute()
	L := budget
	var total int64
	for _, r := range s.roots {
		x := s.curveOf(r).eval(L)
		if x == inf {
			return Solution{}, ErrInfeasible
		}
		total += x
	}
	assign, err := s.traceback(L)
	if err != nil {
		return Solution{}, err
	}
	// Cost and length come straight from the forest structure the solver
	// already holds — longest root-to-leaf time via the same children-first
	// order the DP uses — saving Evaluate's topological re-sort of the graph.
	t := s.p.Table
	var cost int64
	length := 0
	if cap(s.down) < len(s.order) {
		s.down = make([]int, len(s.order))
	}
	down := s.down[:len(s.order)]
	for _, v := range s.order {
		cost += t.Cost[v][assign[v]]
		d := 0
		for _, c := range s.children[v] {
			if down[c] > d {
				d = down[c]
			}
		}
		down[v] = d + t.Time[v][assign[v]]
		if down[v] > length {
			length = down[v]
		}
	}
	if cost != total {
		return Solution{}, fmt.Errorf("hap: internal error: traceback cost %d != DP value %d", cost, total)
	}
	if length > L {
		return Solution{}, fmt.Errorf("hap: internal error: Tree_Assign produced length %d > %d", length, L)
	}
	return Solution{Assign: assign, Cost: cost, Length: length}, nil
}

// traceback recovers the assignment realizing the DP optimum. At each node
// it repeats the dense DP's selection rule — the first candidate, in
// ascending type order, that strictly improves the subtree cost at the
// node's budget — so the sparse engine returns the same assignment the
// dense oracle would. The walk uses an explicit stack: path-shaped trees
// (unfolded filters) recurse thousands of frames deep and would overflow a
// goroutine stack.
func (s *treeSolver) traceback(L int) (Assignment, error) {
	t := s.p.Table
	n := len(s.order)
	assign := make(Assignment, n)
	stack := s.tb[:0]
	for _, r := range s.roots {
		stack = append(stack, tbFrame{r, L})
	}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		v := int(f.v)
		best := int64(inf)
		bestK := fu.TypeID(-1)
		for _, k := range s.cand[v] {
			rem := f.budget - t.Time[v][k]
			if rem < 0 {
				continue
			}
			sum := t.Cost[v][k]
			ok := true
			for _, c := range s.children[v] {
				xc := s.curveOf(c).eval(rem)
				if xc == inf {
					ok = false
					break
				}
				sum += xc
			}
			if ok && sum < best {
				best = sum
				bestK = k
			}
		}
		if bestK < 0 {
			return nil, fmt.Errorf("hap: internal error: no type for node %d within budget %d", v, f.budget)
		}
		assign[v] = bestK
		rem := f.budget - t.Time[v][bestK]
		for _, c := range s.children[v] {
			stack = append(stack, tbFrame{c, rem})
		}
	}
	s.tb = stack[:0]
	return assign, nil
}

// tbFrame is one pending subtree of the traceback walk.
type tbFrame struct {
	v      dfg.NodeID
	budget int
}

// frontier sums the root curves into the whole-forest deadline→cost curve:
// the minimal set of (deadline, optimal cost) points up to the problem's
// deadline, starting at the minimum makespan. Empty means no deadline up to
// p.Deadline is feasible. Curves must be up to date (recompute first).
func (s *treeSolver) frontier() []FrontierPoint {
	if cap(s.sc.kids) < len(s.roots) {
		s.sc.kids = make([]curve, len(s.roots))
	}
	kids := s.sc.kids[:len(s.roots)]
	for i, r := range s.roots {
		kids[i] = s.curveOf(r)
	}
	sum := sumCurves(kids, s.p.Deadline, s.sc)
	out := make([]FrontierPoint, len(sum))
	for i, q := range sum {
		out[i] = FrontierPoint{Deadline: q.T, Cost: q.C}
	}
	return out
}
