package hap

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
)

// parallelMinDirty is the dirty-node count below which the tree DP stays
// serial: handing a node to a worker costs more than computing a small
// curve, and the paper's benchmark trees are all far below this size.
const parallelMinDirty = 512

// treeSolver carries the sparse-DP state of one out-forest problem so that
// callers can re-solve incrementally. TreeAssign builds one, solves once and
// discards it; DFG_Assign_Repeat keeps it across iterations — pinning a
// duplicated node's copies dirties only the curves on the copies' ancestor
// paths (tree parents are unique), so each re-solve recomputes Σ affected
// path lengths worth of nodes instead of the whole tree.
type treeSolver struct {
	p        Problem
	children [][]dfg.NodeID // zero-delay successors, precomputed once
	parent   []int32        // unique tree parent, -1 at roots
	roots    []dfg.NodeID
	order    []dfg.NodeID // children before parents
	cand     [][]fu.TypeID
	curves   []curve
	dirty    []bool
	ndirty   int
	down     []int      // scratch for the longest-path check in solve
	tb       []tbFrame  // traceback stack, reused across solveAt calls
	sc       *dpScratch // serial-path scratch, reused across re-solves; nil after release
}

// newTreeSolver prepares the solver for an out-forest problem, with the same
// optional per-node type mask treeAssignMasked documents: allowed[v][k] ==
// false forbids type k on node v; a nil mask (or nil row) allows everything.
// Every node starts dirty, so the first solve computes the full DP.
//
// reversed runs the DP on the edge-reversed graph without materializing the
// transpose: children become the zero-delay predecessors and a plain
// topological order serves as the children-before-parents order. Reversing
// edges preserves every path length and the per-node type choices, so the
// optimum (cost, length, assignment) carries over to the original unchanged —
// this is how in-forests are solved without copying the graph each call.
func newTreeSolver(p Problem, allowed [][]bool, reversed bool) (*treeSolver, error) {
	g, t := p.Graph, p.Table
	n, K := g.N(), t.K()
	var order []dfg.NodeID
	var err error
	if reversed {
		order, err = g.TopoOrder()
	} else {
		order, err = g.ReverseTopoOrder()
	}
	if err != nil {
		return nil, err
	}
	s := &treeSolver{
		p:        p,
		children: make([][]dfg.NodeID, n),
		parent:   make([]int32, n),
		order:    order,
		cand:     make([][]fu.TypeID, n),
		curves:   make([]curve, n),
		dirty:    make([]bool, n),
		ndirty:   n,
		sc:       getScratch(),
	}
	for v := 0; v < n; v++ {
		s.parent[v] = -1
		s.dirty[v] = true
	}
	// Adjacency from the raw edge list into one shared arena: two
	// allocations total instead of one g.Succ slice per node.
	m := g.M()
	deg := make([]int, n)
	total := 0
	for i := 0; i < m; i++ {
		if e := g.Edge(i); e.Delays == 0 {
			if reversed {
				deg[e.To]++
			} else {
				deg[e.From]++
			}
			total++
		}
	}
	childArena := make([]dfg.NodeID, 0, total)
	for v := 0; v < n; v++ {
		at := len(childArena)
		s.children[v] = childArena[at:at:at+deg[v]]
		childArena = childArena[:at+deg[v]]
	}
	fill := deg // reuse as per-node cursor
	for v := range fill {
		fill[v] = 0
	}
	for i := 0; i < m; i++ {
		e := g.Edge(i)
		if e.Delays != 0 {
			continue
		}
		from, to := e.From, e.To
		if reversed {
			from, to = to, from
		}
		s.children[from] = s.children[from][:fill[from]+1]
		s.children[from][fill[from]] = to
		fill[from]++
		s.parent[to] = int32(from)
	}
	for v := 0; v < n; v++ {
		if s.parent[v] < 0 {
			s.roots = append(s.roots, dfg.NodeID(v))
		}
	}
	// Per node, the candidate types: masked rows verbatim, unmasked rows
	// with duplicate (time, cost) pairs collapsed — interchangeable options
	// cannot change the optimum, and skipping them is what makes the
	// PruneDominated pre-pass pay off inside the DP. One arena backs every
	// row (each appends at most K entries, so it never reallocates).
	candArena := make([]fu.TypeID, 0, n*K)
	for v := 0; v < n; v++ {
		at := len(candArena)
		if allowed != nil && allowed[v] != nil {
			for k := 0; k < K; k++ {
				if allowed[v][k] {
					candArena = append(candArena, fu.TypeID(k))
				}
			}
		} else {
			for k := 0; k < K; k++ {
				dup := false
				for j := 0; j < k; j++ {
					if t.Time[v][j] == t.Time[v][k] && t.Cost[v][j] == t.Cost[v][k] {
						dup = true
						break
					}
				}
				if !dup {
					candArena = append(candArena, fu.TypeID(k))
				}
			}
		}
		s.cand[v] = candArena[at:len(candArena):len(candArena)]
	}
	return s, nil
}

// release recycles the solver's scratch buffers — including the curve arena
// every retained curve aliases — into the package pool. The solver, its
// curves, and any frontier read off them are invalid afterwards; callers may
// release only when they are discarding the solver and have copied everything
// they keep (Solution and FrontierPoint values copy, never alias). Solvers
// retained for later tracebacks (FrontierSolver) are never released.
func (s *treeSolver) release() {
	if s.sc != nil {
		putScratch(s.sc)
		s.sc = nil
	}
}

// pin restricts every listed node to the single type k and dirties the
// curves that depend on it: the node itself and its ancestors up to the
// root. The climb stops at the first already-dirty node, whose own climb
// has marked the rest of the path.
func (s *treeSolver) pin(nodes []dfg.NodeID, k fu.TypeID) {
	for _, w := range nodes {
		s.cand[w] = []fu.TypeID{k}
		for v := int32(w); v >= 0; v = s.parent[v] {
			if s.dirty[v] {
				break
			}
			s.dirty[v] = true
			s.ndirty++
		}
	}
}

// computeCurve builds node v's Pareto curve from its children's curves.
func (s *treeSolver) computeCurve(v int, sc *dpScratch) curve {
	var kids []curve
	if n := len(s.children[v]); n > 0 {
		if cap(sc.kids) < n {
			sc.kids = make([]curve, n)
		}
		kids = sc.kids[:n]
		for i, c := range s.children[v] {
			kids[i] = s.curves[c]
		}
	}
	sum := sumCurves(kids, s.p.Deadline, sc)
	if len(sum) == 0 {
		return nil
	}
	t := s.p.Table
	return envelope(sum, s.cand[v], t.Time[v], t.Cost[v], s.p.Deadline, sc)
}

// recompute brings every dirty curve up to date, children before parents.
// Large all-dirty solves fan independent sibling subtrees out over a worker
// pool; incremental re-solves dirty only root paths (no parallelism to
// exploit) and small trees don't amortize the handoff, so both stay serial.
func (s *treeSolver) recompute() {
	if s.ndirty == 0 {
		return
	}
	if s.ndirty >= parallelMinDirty && runtime.GOMAXPROCS(0) > 1 {
		s.recomputeParallel()
	} else {
		for _, v := range s.order {
			if s.dirty[v] {
				s.curves[v] = s.computeCurve(int(v), s.sc)
				s.dirty[v] = false
			}
		}
	}
	s.ndirty = 0
}

// recomputeParallel is the worker-pool evaluation of the dirty set: a node
// becomes ready once its dirty children are done, so independent sibling
// subtrees proceed concurrently. Each worker owns its scratch; a node's
// curve is written by exactly one worker and read by its parent's worker
// only after the ready handoff (atomic counter + channel), which is the
// happens-before edge that keeps the solve race-free.
func (s *treeSolver) recomputeParallel() {
	pending := make([]int32, len(s.dirty))
	ready := make(chan dfg.NodeID, s.ndirty)
	for _, v := range s.order {
		if !s.dirty[v] {
			continue
		}
		cnt := int32(0)
		for _, c := range s.children[v] {
			if s.dirty[c] {
				cnt++
			}
		}
		pending[v] = cnt
		if cnt == 0 {
			ready <- v
		}
	}
	var remaining atomic.Int32
	remaining.Store(int32(s.ndirty))
	workers := runtime.GOMAXPROCS(0)
	if workers > s.ndirty {
		workers = s.ndirty
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Worker scratches go back via putScratchShared: the curves each
			// worker computed alias its arena and stay live in s.curves.
			sc := getScratch()
			defer putScratchShared(sc)
			for v := range ready {
				s.curves[v] = s.computeCurve(int(v), sc)
				s.dirty[v] = false
				if p := s.parent[v]; p >= 0 && s.dirty[p] {
					if atomic.AddInt32(&pending[p], -1) == 0 {
						ready <- dfg.NodeID(p)
					}
				}
				if remaining.Add(-1) == 0 {
					close(ready)
				}
			}
		}()
	}
	wg.Wait()
}

// solve recomputes what is dirty and extracts the optimum at the deadline.
func (s *treeSolver) solve() (Solution, error) { return s.solveAt(s.p.Deadline) }

// solveAt extracts the optimum at an arbitrary budget <= p.Deadline from the
// already-computed curves. The curves are truncated at p.Deadline, so budgets
// beyond it would silently underreport feasibility; callers guard that.
func (s *treeSolver) solveAt(budget int) (Solution, error) {
	s.recompute()
	L := budget
	var total int64
	for _, r := range s.roots {
		x := s.curves[r].eval(L)
		if x == inf {
			return Solution{}, ErrInfeasible
		}
		total += x
	}
	assign, err := s.traceback(L)
	if err != nil {
		return Solution{}, err
	}
	// Cost and length come straight from the forest structure the solver
	// already holds — longest root-to-leaf time via the same children-first
	// order the DP uses — saving Evaluate's topological re-sort of the graph.
	t := s.p.Table
	var cost int64
	length := 0
	if cap(s.down) < len(s.order) {
		s.down = make([]int, len(s.order))
	}
	down := s.down[:len(s.order)]
	for _, v := range s.order {
		cost += t.Cost[v][assign[v]]
		d := 0
		for _, c := range s.children[v] {
			if down[c] > d {
				d = down[c]
			}
		}
		down[v] = d + t.Time[v][assign[v]]
		if down[v] > length {
			length = down[v]
		}
	}
	if cost != total {
		return Solution{}, fmt.Errorf("hap: internal error: traceback cost %d != DP value %d", cost, total)
	}
	if length > L {
		return Solution{}, fmt.Errorf("hap: internal error: Tree_Assign produced length %d > %d", length, L)
	}
	return Solution{Assign: assign, Cost: cost, Length: length}, nil
}

// traceback recovers the assignment realizing the DP optimum. At each node
// it repeats the dense DP's selection rule — the first candidate, in
// ascending type order, that strictly improves the subtree cost at the
// node's budget — so the sparse engine returns the same assignment the
// dense oracle would. The walk uses an explicit stack: path-shaped trees
// (unfolded filters) recurse thousands of frames deep and would overflow a
// goroutine stack.
func (s *treeSolver) traceback(L int) (Assignment, error) {
	t := s.p.Table
	n := len(s.curves)
	assign := make(Assignment, n)
	stack := s.tb[:0]
	for _, r := range s.roots {
		stack = append(stack, tbFrame{r, L})
	}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		v := int(f.v)
		best := int64(inf)
		bestK := fu.TypeID(-1)
		for _, k := range s.cand[v] {
			rem := f.budget - t.Time[v][k]
			if rem < 0 {
				continue
			}
			sum := t.Cost[v][k]
			ok := true
			for _, c := range s.children[v] {
				xc := s.curves[c].eval(rem)
				if xc == inf {
					ok = false
					break
				}
				sum += xc
			}
			if ok && sum < best {
				best = sum
				bestK = k
			}
		}
		if bestK < 0 {
			return nil, fmt.Errorf("hap: internal error: no type for node %d within budget %d", v, f.budget)
		}
		assign[v] = bestK
		rem := f.budget - t.Time[v][bestK]
		for _, c := range s.children[v] {
			stack = append(stack, tbFrame{c, rem})
		}
	}
	s.tb = stack[:0]
	return assign, nil
}

// tbFrame is one pending subtree of the traceback walk.
type tbFrame struct {
	v      dfg.NodeID
	budget int
}

// frontier sums the root curves into the whole-forest deadline→cost curve:
// the minimal set of (deadline, optimal cost) points up to the problem's
// deadline, starting at the minimum makespan. Empty means no deadline up to
// p.Deadline is feasible. Curves must be up to date (recompute first).
func (s *treeSolver) frontier() []FrontierPoint {
	if cap(s.sc.kids) < len(s.roots) {
		s.sc.kids = make([]curve, len(s.roots))
	}
	kids := s.sc.kids[:len(s.roots)]
	for i, r := range s.roots {
		kids[i] = s.curves[r]
	}
	sum := sumCurves(kids, s.p.Deadline, s.sc)
	out := make([]FrontierPoint, len(sum))
	for i, q := range sum {
		out[i] = FrontierPoint{Deadline: q.T, Cost: q.C}
	}
	return out
}
