// Package hls is the end-to-end driver: it chains the kernel compiler, the
// heterogeneous assignment phase, the minimum-resource scheduler, register
// binding and the backends (Verilog, VCD, reports) into one call — the
// complete path from a textual DSP kernel to an architecture a user can
// inspect. cmd/hetsynthc is its command-line face.
package hls

import (
	"encoding/json"
	"fmt"
	"strings"

	"hetsynth/internal/dfg"
	"hetsynth/internal/expr"
	"hetsynth/internal/fu"
	"hetsynth/internal/hap"
	"hetsynth/internal/rtl"
	"hetsynth/internal/sched"
	"hetsynth/internal/sim"
)

// Request describes one synthesis job. Exactly one of Source or Graph must
// be set; Table may be nil when Catalog is set (the table is then derived
// from the graph's op classes).
type Request struct {
	Source  string     // kernel text (compiled with internal/expr)
	Graph   *dfg.Graph // pre-built DFG (alternative to Source)
	Catalog string     // FU catalog name (default "generic3")
	Table   *fu.Table  // explicit table; overrides Catalog
	// Deadline in control steps; 0 means minimum makespan + Slack.
	Deadline int
	Slack    int
	// Algorithm name as accepted by hap.ParseAlgorithm (default "auto").
	Algorithm string
	// ModuleName / Width configure the RTL backend.
	ModuleName string
	Width      int
}

// Bundle is everything one synthesis run produces.
type Bundle struct {
	Graph     *dfg.Graph
	Library   *fu.Library
	Table     *fu.Table
	Deadline  int
	Solution  hap.Solution
	Schedule  *sched.Schedule
	Config    sched.Config
	Registers int
	MuxWidest int
	MinII     int
	Verilog   string
}

// Run executes the full flow.
func Run(req Request) (*Bundle, error) {
	b := &Bundle{}

	switch {
	case req.Source != "" && req.Graph != nil:
		return nil, fmt.Errorf("hls: set either Source or Graph, not both")
	case req.Source != "":
		k, err := expr.Compile(req.Source)
		if err != nil {
			return nil, err
		}
		b.Graph = k.Graph
	case req.Graph != nil:
		b.Graph = req.Graph
	default:
		return nil, fmt.Errorf("hls: no input (Source or Graph)")
	}

	if req.Table != nil {
		b.Table = req.Table
		// A display library matching the table width.
		types := make([]fu.Type, b.Table.K())
		for i := range types {
			types[i] = fu.Type{Name: fmt.Sprintf("P%d", i+1)}
		}
		lib, err := fu.NewLibrary(types...)
		if err != nil {
			return nil, err
		}
		b.Library = lib
	} else {
		name := req.Catalog
		if name == "" {
			name = "generic3"
		}
		cat, err := fu.LookupCatalog(name)
		if err != nil {
			return nil, err
		}
		tab, err := cat.TableFor(b.Graph.N(), func(v int) string {
			return b.Graph.Node(dfg.NodeID(v)).Op
		})
		if err != nil {
			return nil, err
		}
		b.Table, b.Library = tab, cat.Library
	}

	min, err := hap.MinMakespan(b.Graph, b.Table)
	if err != nil {
		return nil, err
	}
	b.Deadline = req.Deadline
	if b.Deadline == 0 {
		b.Deadline = min + req.Slack
	}

	algoName := req.Algorithm
	if algoName == "" {
		algoName = "auto"
	}
	algo, err := hap.ParseAlgorithm(algoName)
	if err != nil {
		return nil, err
	}
	p := hap.Problem{Graph: b.Graph, Table: b.Table, Deadline: b.Deadline}
	b.Solution, err = hap.Solve(p, algo)
	if err != nil {
		return nil, err
	}
	b.Schedule, b.Config, err = sched.MinRSchedule(b.Graph, b.Table, b.Solution.Assign, b.Deadline)
	if err != nil {
		return nil, err
	}
	if _, b.Registers, err = sched.BindRegisters(b.Graph, b.Schedule); err != nil {
		return nil, err
	}
	_, b.MuxWidest = sched.MuxDemand(b.Graph, b.Schedule, b.Config)
	if b.MinII, err = sim.MinInitiationInterval(b.Graph, b.Schedule, b.Config); err != nil {
		return nil, err
	}
	b.Verilog, err = rtl.Emit(b.Graph, b.Library, b.Schedule, b.Config, rtl.Options{
		ModuleName: req.ModuleName,
		Width:      req.Width,
	})
	if err != nil {
		return nil, err
	}
	return b, nil
}

// Report renders a human-readable synthesis report.
func (b *Bundle) Report() string {
	var s strings.Builder
	fmt.Fprintf(&s, "hetsynth synthesis report\n")
	fmt.Fprintf(&s, "  graph:         %d operations, %d edges\n", b.Graph.N(), b.Graph.M())
	fmt.Fprintf(&s, "  deadline:      %d control steps\n", b.Deadline)
	fmt.Fprintf(&s, "  system cost:   %d\n", b.Solution.Cost)
	fmt.Fprintf(&s, "  critical path: %d steps\n", b.Solution.Length)
	fmt.Fprintf(&s, "  configuration: %s (%d FU instances)\n", b.Config, b.Config.Total())
	fmt.Fprintf(&s, "  registers:     %d\n", b.Registers)
	fmt.Fprintf(&s, "  widest mux:    %d inputs\n", b.MuxWidest)
	fmt.Fprintf(&s, "  min init intv: %d steps (schedule length %d)\n", b.MinII, b.Schedule.Length)
	fmt.Fprintf(&s, "  assignment:\n")
	for v := 0; v < b.Graph.N(); v++ {
		k := b.Solution.Assign[v]
		fmt.Fprintf(&s, "    %-14s %-8s start %2d, %d steps, cost %d\n",
			b.Graph.Node(dfg.NodeID(v)).Name, b.Library.Name(k),
			b.Schedule.Start[v], b.Schedule.Times[v], b.Table.Cost[v][k])
	}
	return s.String()
}

// scheduleJSON is the serialized form of a synthesis result.
type scheduleJSON struct {
	Deadline int        `json:"deadline"`
	Cost     int64      `json:"cost"`
	Length   int        `json:"length"`
	Config   []int      `json:"config"`
	Nodes    []nodeJSON `json:"nodes"`
	Library  []string   `json:"library"`
}

type nodeJSON struct {
	Name     string `json:"name"`
	Type     string `json:"type"`
	Start    int    `json:"start"`
	Steps    int    `json:"steps"`
	Instance int    `json:"instance"`
}

// MarshalJSON serializes the bundle's schedule and configuration (not the
// Verilog, which ships as its own artifact).
func (b *Bundle) MarshalJSON() ([]byte, error) {
	out := scheduleJSON{
		Deadline: b.Deadline,
		Cost:     b.Solution.Cost,
		Length:   b.Schedule.Length,
		Config:   b.Config,
	}
	for k := 0; k < b.Library.K(); k++ {
		out.Library = append(out.Library, b.Library.Name(fu.TypeID(k)))
	}
	for v := 0; v < b.Graph.N(); v++ {
		out.Nodes = append(out.Nodes, nodeJSON{
			Name:     b.Graph.Node(dfg.NodeID(v)).Name,
			Type:     b.Library.Name(b.Solution.Assign[v]),
			Start:    b.Schedule.Start[v],
			Steps:    b.Schedule.Times[v],
			Instance: b.Schedule.Instance[v],
		})
	}
	return json.MarshalIndent(out, "", "  ")
}
