package hls

import (
	"encoding/json"
	"strings"
	"testing"

	"hetsynth/internal/benchdfg"
	"hetsynth/internal/fu"
	"hetsynth/internal/sched"
	"hetsynth/internal/sim"
)

const lattice = `
	e1 = x - k1*b0@1
	b1 = b0@1 - k1*e1
	b0 = e1 + g*b1
`

func TestRunFromSource(t *testing.T) {
	b, err := Run(Request{Source: lattice, Slack: 3})
	if err != nil {
		t.Fatal(err)
	}
	if b.Graph.N() != 6 { // three muls, two subs, one add
		t.Fatalf("kernel graph has %d nodes, want 6", b.Graph.N())
	}
	if b.Solution.Length > b.Deadline || b.Schedule.Length > b.Deadline {
		t.Fatal("deadline violated")
	}
	if b.Registers < 1 || b.MuxWidest < 1 || b.MinII < 1 {
		t.Fatalf("degenerate metrics: %+v", b)
	}
	if !strings.Contains(b.Verilog, "endmodule") {
		t.Fatal("Verilog missing")
	}
	// The schedule must actually run.
	if _, err := sim.Run(b.Graph, b.Table, b.Schedule, b.Config, 5, b.Schedule.Length); err != nil {
		t.Fatal(err)
	}
}

func TestRunFromGraphWithCatalog(t *testing.T) {
	g := benchdfg.Elliptic()
	b, err := Run(Request{Graph: g, Catalog: "lowpower", Slack: 8, Algorithm: "repeat"})
	if err != nil {
		t.Fatal(err)
	}
	if b.Library.Name(0) != "turbo" {
		t.Fatalf("catalog not applied: %s", b.Library.Name(0))
	}
	if b.Config.Total() < 2 {
		t.Fatalf("suspicious config %v", b.Config)
	}
}

func TestRunWithExplicitTable(t *testing.T) {
	g := benchdfg.DiffEq()
	tab := fu.UniformTable(g.N(), []int{1, 2}, []int64{9, 2})
	b, err := Run(Request{Graph: g, Table: tab, Deadline: 20, ModuleName: "diffeq_core", Width: 32})
	if err != nil {
		t.Fatal(err)
	}
	if b.Library.K() != 2 {
		t.Fatalf("derived library has %d types", b.Library.K())
	}
	if !strings.Contains(b.Verilog, "module diffeq_core") || !strings.Contains(b.Verilog, "W = 32") {
		t.Fatal("RTL options not forwarded")
	}
}

func TestRunInputValidation(t *testing.T) {
	if _, err := Run(Request{}); err == nil {
		t.Error("empty request accepted")
	}
	if _, err := Run(Request{Source: "y = a+b", Graph: benchdfg.DiffEq()}); err == nil {
		t.Error("both inputs accepted")
	}
	if _, err := Run(Request{Source: "y ="}); err == nil {
		t.Error("bad kernel accepted")
	}
	if _, err := Run(Request{Source: "y = a+b", Catalog: "nope"}); err == nil {
		t.Error("unknown catalog accepted")
	}
	if _, err := Run(Request{Source: "y = a+b", Algorithm: "magic"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := Run(Request{Source: "y = a+b", Deadline: -1}); err == nil {
		t.Error("negative deadline accepted")
	}
}

func TestReportAndJSON(t *testing.T) {
	b, err := Run(Request{Source: lattice, Slack: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep := b.Report()
	for _, want := range []string{"system cost", "configuration", "registers", "widest mux", "sub1"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Deadline int `json:"deadline"`
		Nodes    []struct {
			Name  string `json:"name"`
			Start int    `json:"start"`
		} `json:"nodes"`
		Config []int `json:"config"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Deadline != b.Deadline || len(decoded.Nodes) != b.Graph.N() {
		t.Fatalf("JSON mismatch: %+v", decoded)
	}
	if len(decoded.Config) != len(b.Config) {
		t.Fatalf("config not serialized: %+v", decoded)
	}
	_ = sched.Config(decoded.Config)
}
