package ilp

import (
	"fmt"
	"math"

	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
	"hetsynth/internal/hap"
)

// EncodeHAP reconstructs the ILP formulation of heterogeneous assignment in
// the style of Ito, Lucke and Parhi ([11] in the paper):
//
//	minimize   sum_{v,k} C_k(v) · x_{v,k}
//	subject to sum_k x_{v,k} = 1                      for every node v
//	           s_v >= s_u + sum_k T_k(u) · x_{u,k}    for every edge (u,v)
//	           s_v + sum_k T_k(v) · x_{v,k} <= L      for every node v
//	           x_{v,k} in {0,1},  s_v >= 0
//
// where x_{v,k} selects the FU type of node v and the continuous s_v are
// operation start times. The encoding returns the model plus the variable
// index of each x_{v,k} for decoding.
func EncodeHAP(p hap.Problem) (*Model, [][]int, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	n, k := p.Graph.N(), p.K()
	m := NewModel()

	x := make([][]int, n)
	for v := 0; v < n; v++ {
		x[v] = make([]int, k)
		for t := 0; t < k; t++ {
			x[v][t] = m.AddBinary(
				fmt.Sprintf("x[%s,%d]", p.Graph.Node(dfg.NodeID(v)).Name, t),
				float64(p.Table.Cost[v][t]),
			)
		}
	}
	s := make([]int, n)
	for v := 0; v < n; v++ {
		s[v] = m.AddVar(fmt.Sprintf("s[%s]", p.Graph.Node(dfg.NodeID(v)).Name), 0)
		m.SetUpper(s[v], float64(p.Deadline)) // keeps the relaxation bounded
	}

	// One type per node.
	for v := 0; v < n; v++ {
		coef := make(map[int]float64, k)
		for t := 0; t < k; t++ {
			coef[x[v][t]] = 1
		}
		m.MustAdd(coef, EQ, 1)
	}
	// Precedence: s_u - s_v + sum_k T_k(u)·x_{u,k} <= 0.
	for _, e := range p.Graph.Edges() {
		if e.Delays != 0 {
			continue
		}
		coef := map[int]float64{s[e.From]: 1, s[e.To]: -1}
		for t := 0; t < k; t++ {
			coef[x[e.From][t]] += float64(p.Table.Time[e.From][t])
		}
		m.MustAdd(coef, LE, 0)
	}
	// Deadline: s_v + sum_k T_k(v)·x_{v,k} <= L.
	for v := 0; v < n; v++ {
		coef := map[int]float64{s[v]: 1}
		for t := 0; t < k; t++ {
			coef[x[v][t]] += float64(p.Table.Time[v][t])
		}
		m.MustAdd(coef, LE, float64(p.Deadline))
	}
	return m, x, nil
}

// SolveHAP encodes and solves the problem as a mixed-integer program —
// exact (optimal) but worst-case exponential in the branch-and-bound over
// fractional assignment variables — returning the same Solution shape as
// the combinatorial solvers in package hap. It returns
// hap.ErrInfeasible when the MIP proves no assignment meets the deadline.
func SolveHAP(p hap.Problem, opts Options) (hap.Solution, error) {
	m, x, err := EncodeHAP(p)
	if err != nil {
		return hap.Solution{}, err
	}
	res, err := SolveMIP(m, opts)
	if err != nil {
		return hap.Solution{}, err
	}
	if res.Status != Optimal {
		return hap.Solution{}, hap.ErrInfeasible
	}
	assign := make(hap.Assignment, p.Graph.N())
	for v := range x {
		bestT, bestX := 0, math.Inf(-1)
		for t, idx := range x[v] {
			if res.X[idx] > bestX {
				bestX = res.X[idx]
				bestT = t
			}
		}
		assign[v] = fu.TypeID(bestT)
	}
	sol, err := hap.Evaluate(p, assign)
	if err != nil {
		return hap.Solution{}, err
	}
	if sol.Length > p.Deadline {
		return hap.Solution{}, fmt.Errorf("ilp: internal error: decoded assignment misses the deadline (%d > %d)", sol.Length, p.Deadline)
	}
	if math.Abs(float64(sol.Cost)-res.Obj) > 1e-6*(1+math.Abs(res.Obj)) {
		return hap.Solution{}, fmt.Errorf("ilp: internal error: decoded cost %d != MIP objective %.3f", sol.Cost, res.Obj)
	}
	return sol, nil
}
