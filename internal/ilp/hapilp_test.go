package ilp

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
	"hetsynth/internal/hap"
)

func smallProblem() hap.Problem {
	g := dfg.New()
	a := g.MustAddNode("A", "")
	b := g.MustAddNode("B", "")
	c := g.MustAddNode("C", "")
	d := g.MustAddNode("D", "")
	g.MustAddEdge(a, b, 0)
	g.MustAddEdge(a, c, 0)
	g.MustAddEdge(b, d, 0)
	g.MustAddEdge(c, d, 0)
	t := fu.NewTable(4, 2)
	t.MustSet(0, []int{1, 3}, []int64{9, 2})
	t.MustSet(1, []int{2, 4}, []int64{8, 3})
	t.MustSet(2, []int{1, 2}, []int64{7, 1})
	t.MustSet(3, []int{1, 3}, []int64{6, 2})
	return hap.Problem{Graph: g, Table: t, Deadline: 7}
}

func TestEncodeHAPShape(t *testing.T) {
	p := smallProblem()
	m, x, err := EncodeHAP(p)
	if err != nil {
		t.Fatal(err)
	}
	// 4 nodes x 2 types binaries + 4 start times.
	if m.NumVars() != 12 {
		t.Fatalf("NumVars = %d, want 12", m.NumVars())
	}
	if len(x) != 4 || len(x[0]) != 2 {
		t.Fatalf("x index shape %dx%d", len(x), len(x[0]))
	}
	if m.VarName(x[0][0]) != "x[A,0]" {
		t.Fatalf("VarName = %q", m.VarName(x[0][0]))
	}
}

func TestSolveHAPMatchesCombinatorialExact(t *testing.T) {
	p := smallProblem()
	want, err := hap.Exact(p, hap.ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := SolveHAP(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Cost != want.Cost {
		t.Fatalf("ILP cost %d, combinatorial exact %d", got.Cost, want.Cost)
	}
	if got.Length > p.Deadline {
		t.Fatalf("ILP solution misses deadline: %d > %d", got.Length, p.Deadline)
	}
}

func TestSolveHAPInfeasible(t *testing.T) {
	p := smallProblem()
	p.Deadline = 2 // minimum makespan is 3 (1+1+1 path)
	if _, err := SolveHAP(p, Options{}); !errors.Is(err, hap.ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestSolveHAPMatchesTreeAssignOnTrees(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := dfg.RandomTree(rng, 2+rng.Intn(5))
		tab := fu.RandomTable(rng, g.N(), 2)
		min, _ := hap.MinMakespan(g, tab)
		p := hap.Problem{Graph: g, Table: tab, Deadline: min + rng.Intn(min+2)}
		want, err1 := hap.TreeAssign(p)
		got, err2 := SolveHAP(p, Options{})
		if err1 != nil || err2 != nil {
			return errors.Is(err1, hap.ErrInfeasible) && errors.Is(err2, hap.ErrInfeasible)
		}
		return got.Cost == want.Cost
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveHAPMatchesBruteForceOnRandomDAGs(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := dfg.RandomDAG(rng, 2+rng.Intn(5), 0.4)
		tab := fu.RandomTable(rng, g.N(), 2)
		min, _ := hap.MinMakespan(g, tab)
		p := hap.Problem{Graph: g, Table: tab, Deadline: min + rng.Intn(4)}
		want, err1 := hap.BruteForce(p)
		got, err2 := SolveHAP(p, Options{})
		if err1 != nil || err2 != nil {
			return errors.Is(err1, hap.ErrInfeasible) && errors.Is(err2, hap.ErrInfeasible)
		}
		return got.Cost == want.Cost
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveHAPOnDiffEqBenchmarkShape(t *testing.T) {
	// The paper's point about [11]: the ILP finds the optimum but needs
	// orders of magnitude more work than the heuristics. Verify the
	// optimum part on the diffeq-sized instance.
	g := dfg.New()
	names := []string{"m1", "m2", "m3", "s1", "s2", "a1"}
	for _, n := range names {
		g.MustAddNode(n, "")
	}
	g.MustAddEdge(0, 2, 0)
	g.MustAddEdge(1, 2, 0)
	g.MustAddEdge(2, 3, 0)
	g.MustAddEdge(3, 4, 0)
	g.MustAddEdge(1, 5, 0)
	rng := rand.New(rand.NewSource(3))
	tab := fu.RandomTable(rng, g.N(), 3)
	min, _ := hap.MinMakespan(g, tab)
	p := hap.Problem{Graph: g, Table: tab, Deadline: min + 3}
	want, err := hap.Exact(p, hap.ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := SolveHAP(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Cost != want.Cost {
		t.Fatalf("ILP %d != exact %d", got.Cost, want.Cost)
	}
}
