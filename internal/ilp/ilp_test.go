package ilp

import (
	"math"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSimplexTextbookLP(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (as min of the
	// negation): optimum x=2, y=6, objective 36.
	p := lp{
		c: []float64{-3, -5},
		rows: []row{
			{a: []float64{1, 0}, rel: LE, b: 4},
			{a: []float64{0, 2}, rel: LE, b: 12},
			{a: []float64{3, 2}, rel: LE, b: 18},
		},
	}
	x, obj, st := solveSimplex(p, 0)
	if st != Optimal {
		t.Fatalf("status %v", st)
	}
	if !almost(x[0], 2) || !almost(x[1], 6) || !almost(obj, -36) {
		t.Fatalf("x=%v obj=%v", x, obj)
	}
}

func TestSimplexGEAndEQ(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 10, x == 4 -> x=4, y=6, obj 26.
	p := lp{
		c: []float64{2, 3},
		rows: []row{
			{a: []float64{1, 1}, rel: GE, b: 10},
			{a: []float64{1, 0}, rel: EQ, b: 4},
		},
	}
	x, obj, st := solveSimplex(p, 0)
	if st != Optimal {
		t.Fatalf("status %v", st)
	}
	if !almost(x[0], 4) || !almost(x[1], 6) || !almost(obj, 26) {
		t.Fatalf("x=%v obj=%v", x, obj)
	}
}

func TestSimplexNegativeRHS(t *testing.T) {
	// min x s.t. -x <= -3 (i.e. x >= 3): x=3.
	p := lp{
		c:    []float64{1},
		rows: []row{{a: []float64{-1}, rel: LE, b: -3}},
	}
	x, obj, st := solveSimplex(p, 0)
	if st != Optimal || !almost(x[0], 3) || !almost(obj, 3) {
		t.Fatalf("x=%v obj=%v st=%v", x, obj, st)
	}
}

func TestSimplexInfeasible(t *testing.T) {
	// x >= 5 and x <= 2 cannot hold.
	p := lp{
		c: []float64{1},
		rows: []row{
			{a: []float64{1}, rel: GE, b: 5},
			{a: []float64{1}, rel: LE, b: 2},
		},
	}
	if _, _, st := solveSimplex(p, 0); st != Infeasible {
		t.Fatalf("status %v, want infeasible", st)
	}
}

func TestSimplexUnbounded(t *testing.T) {
	// min -x with only x >= 1: unbounded below.
	p := lp{
		c:    []float64{-1},
		rows: []row{{a: []float64{1}, rel: GE, b: 1}},
	}
	if _, _, st := solveSimplex(p, 0); st != Unbounded {
		t.Fatalf("status %v, want unbounded", st)
	}
}

func TestModelValidation(t *testing.T) {
	m := NewModel()
	x := m.AddVar("x", 1)
	if err := m.Add(map[int]float64{x + 5: 1}, LE, 1); err == nil {
		t.Fatal("unknown variable accepted")
	}
	if m.VarName(x) != "x" {
		t.Fatalf("VarName = %q", m.VarName(x))
	}
}

func TestSolveMIPKnapsack(t *testing.T) {
	// 0/1 knapsack as a MIP: max 60a + 50b + 70c + 30d, 5a+4b+6c+3d <= 10.
	// Optimum 120 (b and c).
	m := NewModel()
	a := m.AddBinary("a", -60)
	b := m.AddBinary("b", -50)
	c := m.AddBinary("c", -70)
	d := m.AddBinary("d", -30)
	m.MustAdd(map[int]float64{a: 5, b: 4, c: 6, d: 3}, LE, 10)
	res, err := SolveMIP(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || !almost(res.Obj, -120) {
		t.Fatalf("obj=%v status=%v", res.Obj, res.Status)
	}
	if !almost(res.X[b], 1) || !almost(res.X[c], 1) || !almost(res.X[a], 0) || !almost(res.X[d], 0) {
		t.Fatalf("x=%v", res.X)
	}
}

func TestSolveMIPForcesIntegrality(t *testing.T) {
	// LP optimum is fractional (x=y=0.5); the MIP must pay the integral
	// price: min x + y s.t. x + y >= 1 with both binary gives 1, but
	// 2x + 2y >= 3 forces x = y = 1 (cost 2) since 1.5 is unreachable.
	m := NewModel()
	x := m.AddBinary("x", 1)
	y := m.AddBinary("y", 1)
	m.MustAdd(map[int]float64{x: 2, y: 2}, GE, 3)
	res, err := SolveMIP(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || !almost(res.Obj, 2) {
		t.Fatalf("obj=%v status=%v", res.Obj, res.Status)
	}
}

func TestSolveMIPInfeasible(t *testing.T) {
	m := NewModel()
	x := m.AddBinary("x", 1)
	m.MustAdd(map[int]float64{x: 1}, GE, 2) // binary cannot reach 2
	res, err := SolveMIP(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", res.Status)
	}
}

func TestSolveMIPNodeBudget(t *testing.T) {
	m := NewModel()
	// A model engineered to branch: many symmetric binaries summing to a
	// half-integral target.
	coef := map[int]float64{}
	for i := 0; i < 12; i++ {
		v := m.AddBinary("v", 1)
		coef[v] = 2
	}
	m.MustAdd(coef, GE, 11)
	if _, err := SolveMIP(m, Options{MaxNodes: 2}); err == nil {
		t.Fatal("node budget not enforced")
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// min 10b + s  s.t. s >= 4 - 6b, s >= 0, b binary.
	// b=0 -> s=4 cost 4; b=1 -> s=0 cost 10. Optimum 4.
	m := NewModel()
	b := m.AddBinary("b", 10)
	s := m.AddVar("s", 1)
	m.SetUpper(s, 100)
	m.MustAdd(map[int]float64{s: 1, b: 6}, GE, 4)
	res, err := SolveMIP(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || !almost(res.Obj, 4) {
		t.Fatalf("obj=%v status=%v x=%v", res.Obj, res.Status, res.X)
	}
}
