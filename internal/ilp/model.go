package ilp

import (
	"fmt"
	"math"
)

// Model is a mixed-integer linear program: minimize c·x subject to linear
// constraints, with every variable bounded below by 0 and optionally marked
// binary (branch-and-bound then forces it to {0, 1}).
type Model struct {
	nvars   int
	obj     []float64
	binary  []bool
	upper   []float64 // +Inf when unbounded above
	name    []string
	constrs []Constraint
}

// Constraint is one linear constraint: sum of Coef[v]·x_v Rel RHS.
type Constraint struct {
	Coef map[int]float64
	Rel  Rel
	RHS  float64
}

// NewModel returns an empty minimization model.
func NewModel() *Model { return &Model{} }

// NumVars reports the number of variables.
func (m *Model) NumVars() int { return m.nvars }

// AddVar adds a continuous variable with objective coefficient c and lower
// bound 0, returning its index.
func (m *Model) AddVar(name string, c float64) int {
	m.obj = append(m.obj, c)
	m.binary = append(m.binary, false)
	m.upper = append(m.upper, math.Inf(1))
	m.name = append(m.name, name)
	m.nvars++
	return m.nvars - 1
}

// AddBinary adds a 0/1 variable with objective coefficient c.
func (m *Model) AddBinary(name string, c float64) int {
	v := m.AddVar(name, c)
	m.binary[v] = true
	m.upper[v] = 1
	return v
}

// SetUpper bounds variable v above by ub.
func (m *Model) SetUpper(v int, ub float64) { m.upper[v] = ub }

// VarName returns the label of variable v.
func (m *Model) VarName(v int) string { return m.name[v] }

// Add appends the constraint sum(coef_v · x_v) rel rhs.
func (m *Model) Add(coef map[int]float64, rel Rel, rhs float64) error {
	for v := range coef {
		if v < 0 || v >= m.nvars {
			return fmt.Errorf("%w: constraint references unknown variable %d", errModel, v)
		}
	}
	c := make(map[int]float64, len(coef))
	for v, x := range coef {
		c[v] = x
	}
	m.constrs = append(m.constrs, Constraint{Coef: c, Rel: rel, RHS: rhs})
	return nil
}

// MustAdd is Add for hand-built models; it panics on error.
func (m *Model) MustAdd(coef map[int]float64, rel Rel, rhs float64) {
	if err := m.Add(coef, rel, rhs); err != nil {
		panic(err)
	}
}

// relax builds the dense LP relaxation, folding in the variable bounds
// currently imposed (model bounds tightened by branch-and-bound fixings).
func (m *Model) relax(lo, hi []float64) lp {
	p := lp{c: append([]float64(nil), m.obj...)}
	for _, c := range m.constrs {
		a := make([]float64, m.nvars)
		for v, x := range c.Coef {
			a[v] = x
		}
		p.rows = append(p.rows, row{a: a, rel: c.Rel, b: c.RHS})
	}
	for v := 0; v < m.nvars; v++ {
		if !math.IsInf(hi[v], 1) {
			a := make([]float64, m.nvars)
			a[v] = 1
			p.rows = append(p.rows, row{a: a, rel: LE, b: hi[v]})
		}
		if lo[v] > 0 {
			a := make([]float64, m.nvars)
			a[v] = 1
			p.rows = append(p.rows, row{a: a, rel: GE, b: lo[v]})
		}
	}
	return p
}

// Result is the outcome of a MIP solve.
type Result struct {
	Status Status
	X      []float64
	Obj    float64
	Nodes  int // branch-and-bound nodes explored
}

// Options tunes SolveMIP.
type Options struct {
	// MaxNodes bounds branch-and-bound nodes; 0 means DefaultMaxNodes.
	MaxNodes int
}

// DefaultMaxNodes is the default branch-and-bound budget.
const DefaultMaxNodes = 200_000

const intTol = 1e-6

// SolveMIP solves the model by LP-relaxation branch-and-bound on the binary
// variables (depth-first, most-fractional branching, incumbent pruning).
func SolveMIP(m *Model, opts Options) (Result, error) {
	budget := opts.MaxNodes
	if budget <= 0 {
		budget = DefaultMaxNodes
	}
	lo := make([]float64, m.nvars)
	hi := append([]float64(nil), m.upper...)

	best := Result{Status: Infeasible, Obj: math.Inf(1)}
	nodes := 0

	var rec func(lo, hi []float64) error
	rec = func(lo, hi []float64) error {
		nodes++
		if nodes > budget {
			return fmt.Errorf("ilp: branch-and-bound exceeded %d nodes", budget)
		}
		x, obj, st := solveSimplex(m.relax(lo, hi), 0)
		switch st {
		case Infeasible:
			return nil
		case Unbounded:
			// A relaxation unbounded below means the MIP is unbounded or
			// the model lacks bounds; surface it.
			return fmt.Errorf("ilp: LP relaxation unbounded")
		case IterLimit:
			return fmt.Errorf("ilp: simplex iteration limit")
		}
		if obj >= best.Obj-1e-9 {
			return nil // bound: cannot improve the incumbent
		}
		// Find the most fractional binary variable.
		branch := -1
		worst := intTol
		for v := 0; v < m.nvars; v++ {
			if !m.binary[v] {
				continue
			}
			f := math.Abs(x[v] - math.Round(x[v]))
			if f > worst {
				worst = f
				branch = v
			}
		}
		if branch < 0 {
			// Integral: new incumbent.
			best = Result{Status: Optimal, X: append([]float64(nil), x...), Obj: obj}
			return nil
		}
		// Explore the side the relaxation leans toward first.
		first, second := 1.0, 0.0
		if x[branch] < 0.5 {
			first, second = 0.0, 1.0
		}
		for _, val := range []float64{first, second} {
			lo2 := append([]float64(nil), lo...)
			hi2 := append([]float64(nil), hi...)
			lo2[branch], hi2[branch] = val, val
			if err := rec(lo2, hi2); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(lo, hi); err != nil {
		return Result{}, err
	}
	best.Nodes = nodes
	if best.Status != Optimal {
		return Result{Status: Infeasible, Nodes: nodes}, nil
	}
	return best, nil
}
