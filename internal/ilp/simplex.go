// Package ilp is a small mixed-integer linear programming subsystem: a
// dense Big-M simplex solver for the LP relaxation and a branch-and-bound
// driver for binary integer variables.
//
// It exists because the work the paper builds on — Ito, Lucke and Parhi,
// "ILP-based cost-optimal DSP synthesis with module selection" ([11] in the
// paper) — formulates heterogeneous assignment as an integer linear
// program. Package hapilp (ilp/hapilp.go) reconstructs that formulation and
// solves it with this solver, giving the repo an independent optimum to
// cross-check the combinatorial branch-and-bound (hap.Exact) against, and
// letting the experiments reproduce the paper's "ILP is optimal but
// exponential" comparison honestly.
//
// The solver is dense and deliberately simple: models here have tens of
// variables. It is not a general-purpose LP package.
package ilp

import (
	"errors"
	"fmt"
	"math"
)

// Rel is a constraint relation.
type Rel int

// Constraint relations.
const (
	LE Rel = iota // <=
	GE            // >=
	EQ            // ==
)

// String renders the relation as its comparison operator.
func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	}
	return fmt.Sprintf("Rel(%d)", int(r))
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit
)

// String renders the solve outcome as a lowercase word.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

const (
	eps  = 1e-9
	bigM = 1e7
)

// lp is the LP relaxation in the raw form the simplex consumes:
// minimize c·x subject to rows, x >= 0 (upper bounds are explicit rows).
type lp struct {
	c    []float64
	rows []row
}

type row struct {
	a   []float64
	rel Rel
	b   float64
}

// solveSimplex runs a one-phase Big-M dense simplex on the lp and returns
// the optimal x (length len(c)), the objective value, and a status.
func solveSimplex(p lp, maxIter int) ([]float64, float64, Status) {
	n := len(p.c)
	m := len(p.rows)
	if maxIter <= 0 {
		maxIter = 200 * (n + m + 1)
	}

	// Normalize RHS to be non-negative.
	rows := make([]row, m)
	for i, r := range p.rows {
		a := append([]float64(nil), r.a...)
		b := r.b
		rel := r.rel
		if b < 0 {
			for j := range a {
				a[j] = -a[j]
			}
			b = -b
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		rows[i] = row{a: a, rel: rel, b: b}
	}

	// Column layout: [x (n)] [slack/surplus (m, some unused)] [artificial
	// (m, some unused)]; total columns allocated up front for simplicity.
	total := n + 2*m
	cost := make([]float64, total)
	copy(cost, p.c)
	tab := make([][]float64, m) // m rows of total+1 (last col = rhs)
	basis := make([]int, m)
	for i := range tab {
		tab[i] = make([]float64, total+1)
		copy(tab[i], rows[i].a)
		tab[i][total] = rows[i].b
		slackCol := n + i
		artCol := n + m + i
		switch rows[i].rel {
		case LE:
			tab[i][slackCol] = 1
			basis[i] = slackCol
		case GE:
			tab[i][slackCol] = -1
			tab[i][artCol] = 1
			cost[artCol] = bigM
			basis[i] = artCol
		case EQ:
			tab[i][artCol] = 1
			cost[artCol] = bigM
			basis[i] = artCol
		}
	}

	reduced := make([]float64, total)
	computeReduced := func() {
		for j := 0; j < total; j++ {
			z := 0.0
			for i := 0; i < m; i++ {
				z += cost[basis[i]] * tab[i][j]
			}
			reduced[j] = cost[j] - z
		}
	}

	for iter := 0; iter < maxIter; iter++ {
		computeReduced()
		// Entering column: most negative reduced cost (Dantzig), with
		// Bland's rule (smallest index) once we are deep into the run to
		// break potential cycles.
		enter := -1
		if iter < maxIter/2 {
			best := -eps
			for j := 0; j < total; j++ {
				if reduced[j] < best {
					best = reduced[j]
					enter = j
				}
			}
		} else {
			for j := 0; j < total; j++ {
				if reduced[j] < -eps {
					enter = j
					break
				}
			}
		}
		if enter < 0 {
			// Optimal for the Big-M program. If an artificial is still
			// basic at a positive level, the original LP is infeasible.
			for i := 0; i < m; i++ {
				if basis[i] >= n+m && tab[i][total] > 1e-6 {
					return nil, 0, Infeasible
				}
			}
			x := make([]float64, n)
			obj := 0.0
			for i := 0; i < m; i++ {
				if basis[i] < n {
					x[basis[i]] = tab[i][total]
				}
			}
			for j := 0; j < n; j++ {
				obj += p.c[j] * x[j]
			}
			return x, obj, Optimal
		}
		// Ratio test.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			if tab[i][enter] > eps {
				ratio := tab[i][total] / tab[i][enter]
				if ratio < bestRatio-eps || (math.Abs(ratio-bestRatio) <= eps && (leave < 0 || basis[i] < basis[leave])) {
					bestRatio = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return nil, 0, Unbounded
		}
		pivot(tab, leave, enter, total)
		basis[leave] = enter
	}
	return nil, 0, IterLimit
}

func pivot(tab [][]float64, r, c, total int) {
	pr := tab[r]
	pv := pr[c]
	for j := 0; j <= total; j++ {
		pr[j] /= pv
	}
	for i := range tab {
		if i == r {
			continue
		}
		f := tab[i][c]
		if f == 0 {
			continue
		}
		for j := 0; j <= total; j++ {
			tab[i][j] -= f * pr[j]
		}
	}
}

var errModel = errors.New("ilp: malformed model")
