// Package knapsack implements the 0/1 knapsack problem and the paper's
// NP-completeness construction, which transforms a knapsack instance into a
// heterogeneous assignment problem (HAP) on a simple path (§4 of the paper).
//
// The package serves two purposes: it documents the hardness proof as
// executable code, and it provides an independent oracle — the classic
// pseudo-polynomial knapsack DP — against which the assignment algorithms
// are cross-checked in the hap package's tests.
package knapsack

import (
	"errors"
	"fmt"

	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
)

// Item is one 0/1 knapsack item.
type Item struct {
	Value  int64 // profit if selected; must be >= 0
	Weight int   // capacity consumed if selected; must be >= 0
}

// Instance is a 0/1 knapsack instance: choose a subset of Items with total
// weight at most Capacity maximizing total value.
type Instance struct {
	Items    []Item
	Capacity int
}

// Validate checks non-negativity of all parameters.
func (in Instance) Validate() error {
	if in.Capacity < 0 {
		return fmt.Errorf("knapsack: negative capacity %d", in.Capacity)
	}
	for i, it := range in.Items {
		if it.Value < 0 {
			return fmt.Errorf("knapsack: item %d has negative value %d", i, it.Value)
		}
		if it.Weight < 0 {
			return fmt.Errorf("knapsack: item %d has negative weight %d", i, it.Weight)
		}
	}
	return nil
}

// Solve returns the maximum achievable value and one optimal selection
// (selected[i] reports whether item i is taken), using the standard
// O(n·Capacity) dynamic program.
func Solve(in Instance) (best int64, selected []bool, err error) {
	if err := in.Validate(); err != nil {
		return 0, nil, err
	}
	n := len(in.Items)
	w := in.Capacity
	// dp[i][c]: best value using items[0:i] within capacity c.
	dp := make([][]int64, n+1)
	for i := range dp {
		dp[i] = make([]int64, w+1)
	}
	for i := 1; i <= n; i++ {
		it := in.Items[i-1]
		for c := 0; c <= w; c++ {
			dp[i][c] = dp[i-1][c]
			if it.Weight <= c {
				if v := dp[i-1][c-it.Weight] + it.Value; v > dp[i][c] {
					dp[i][c] = v
				}
			}
		}
	}
	selected = make([]bool, n)
	c := w
	for i := n; i >= 1; i-- {
		if dp[i][c] != dp[i-1][c] {
			selected[i-1] = true
			c -= in.Items[i-1].Weight
		}
	}
	return dp[n][w], selected, nil
}

// SolveBrute enumerates all 2^n subsets; it exists as an independent oracle
// for property tests and refuses instances with more than 24 items.
func SolveBrute(in Instance) (int64, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	n := len(in.Items)
	if n > 24 {
		return 0, errors.New("knapsack: brute force limited to 24 items")
	}
	var best int64
	for mask := 0; mask < 1<<n; mask++ {
		var v int64
		wt := 0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				v += in.Items[i].Value
				wt += in.Items[i].Weight
			}
		}
		if wt <= in.Capacity && v > best {
			best = v
		}
	}
	return best, nil
}

// Reduction is the HAP instance produced from a knapsack instance by the
// NP-completeness construction, plus the bookkeeping needed to map the HAP
// optimum back to the knapsack optimum.
type Reduction struct {
	Graph    *dfg.Graph  // simple path v1 -> ... -> vn
	Library  *fu.Library // two types: "select", "skip"
	Table    *fu.Table
	Deadline int   // timing constraint L
	VMax     int64 // max item value, used by RecoverValue
}

// SelectType is the FU type whose choice at node i means "item i selected".
const SelectType fu.TypeID = 0

// Reduce performs the construction of §4: node v_i stands for item i.
// Assigning the "select" type to v_i takes Weight_i + 1 time units and costs
// VMax − Value_i; the "skip" type takes 1 time unit and costs VMax. With
// timing constraint L = Capacity + n, an assignment is feasible iff the
// selected items fit the knapsack, and its system cost is
// n·VMax − (total selected value). Minimizing HAP cost therefore maximizes
// knapsack value, so a polynomial HAP solver would solve knapsack.
func Reduce(in Instance) (*Reduction, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	n := len(in.Items)
	if n == 0 {
		return nil, errors.New("knapsack: reduction needs at least one item")
	}
	var vmax int64
	for _, it := range in.Items {
		if it.Value > vmax {
			vmax = it.Value
		}
	}
	g := dfg.Chain(n)
	tab := fu.NewTable(n, 2)
	for i, it := range in.Items {
		tab.MustSet(i,
			[]int{it.Weight + 1, 1},
			[]int64{vmax - it.Value, vmax},
		)
	}
	return &Reduction{
		Graph:    g,
		Library:  fu.MustLibrary(fu.Type{Name: "select"}, fu.Type{Name: "skip"}),
		Table:    tab,
		Deadline: in.Capacity + n,
		VMax:     vmax,
	}, nil
}

// RecoverValue maps the optimal HAP system cost back to the optimal knapsack
// value: value = n·VMax − cost.
func (r *Reduction) RecoverValue(hapCost int64) int64 {
	return int64(r.Graph.N())*r.VMax - hapCost
}

// RecoverSelection maps a HAP assignment (one type per path node) back to
// the knapsack selection it encodes.
func (r *Reduction) RecoverSelection(assignment []fu.TypeID) []bool {
	sel := make([]bool, len(assignment))
	for i, k := range assignment {
		sel[i] = k == SelectType
	}
	return sel
}
