package knapsack

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hetsynth/internal/fu"
)

func TestValidate(t *testing.T) {
	bad := []Instance{
		{Items: []Item{{Value: -1, Weight: 1}}, Capacity: 3},
		{Items: []Item{{Value: 1, Weight: -1}}, Capacity: 3},
		{Items: []Item{{Value: 1, Weight: 1}}, Capacity: -1},
	}
	for i, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("case %d validated", i)
		}
		if _, _, err := Solve(in); err == nil {
			t.Errorf("case %d solved", i)
		}
		if _, err := SolveBrute(in); err == nil {
			t.Errorf("case %d brute-solved", i)
		}
	}
}

func TestSolveKnownInstance(t *testing.T) {
	// Classic: capacity 10, items (v,w): (60,5) (50,4) (70,6) (30,3).
	// Optimum picks items 1 and 2: value 120, weight 10.
	in := Instance{
		Items:    []Item{{60, 5}, {50, 4}, {70, 6}, {30, 3}},
		Capacity: 10,
	}
	best, sel, err := Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if best != 120 {
		t.Fatalf("best = %d, want 120", best)
	}
	var v int64
	w := 0
	for i, s := range sel {
		if s {
			v += in.Items[i].Value
			w += in.Items[i].Weight
		}
	}
	if v != best || w > in.Capacity {
		t.Fatalf("selection inconsistent: value %d weight %d", v, w)
	}
}

func TestSolveEdgeCases(t *testing.T) {
	if best, _, _ := Solve(Instance{Capacity: 5}); best != 0 {
		t.Errorf("no items: best = %d", best)
	}
	in := Instance{Items: []Item{{10, 3}}, Capacity: 0}
	if best, sel, _ := Solve(in); best != 0 || sel[0] {
		t.Errorf("zero capacity: best = %d sel = %v", best, sel)
	}
	in = Instance{Items: []Item{{10, 0}, {5, 9}}, Capacity: 1}
	if best, _, _ := Solve(in); best != 10 {
		t.Errorf("zero-weight item: best = %d", best)
	}
}

func randInstance(rng *rand.Rand, maxItems int) Instance {
	n := 1 + rng.Intn(maxItems)
	in := Instance{Capacity: rng.Intn(30)}
	for i := 0; i < n; i++ {
		in.Items = append(in.Items, Item{
			Value:  int64(rng.Intn(50)),
			Weight: rng.Intn(12),
		})
	}
	return in
}

func TestSolveMatchesBruteForce(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randInstance(rng, 12)
		dp, _, err1 := Solve(in)
		bf, err2 := SolveBrute(in)
		if err1 != nil || err2 != nil {
			return false
		}
		return dp == bf
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBruteRefusesLargeInstances(t *testing.T) {
	in := Instance{Items: make([]Item, 25), Capacity: 1}
	if _, err := SolveBrute(in); err == nil {
		t.Fatal("25-item brute force accepted")
	}
}

func TestReduceShape(t *testing.T) {
	in := Instance{Items: []Item{{7, 2}, {9, 4}, {3, 1}}, Capacity: 5}
	red, err := Reduce(in)
	if err != nil {
		t.Fatal(err)
	}
	if !red.Graph.IsSimplePath() {
		t.Error("reduction graph is not a simple path")
	}
	if red.Graph.N() != 3 || red.Library.K() != 2 {
		t.Errorf("dims: %d nodes, %d types", red.Graph.N(), red.Library.K())
	}
	if red.Deadline != 5+3 {
		t.Errorf("deadline = %d, want 8", red.Deadline)
	}
	if err := red.Table.Validate(); err != nil {
		t.Errorf("reduction table invalid: %v", err)
	}
	// Node 1 (item value 9 = vmax): select costs 0, skip costs 9.
	if red.Table.Cost[1][0] != 0 || red.Table.Cost[1][1] != 9 {
		t.Errorf("node 1 costs = %v", red.Table.Cost[1])
	}
	// Select time = weight+1, skip time = 1.
	if red.Table.Time[0][0] != 3 || red.Table.Time[0][1] != 1 {
		t.Errorf("node 0 times = %v", red.Table.Time[0])
	}
}

func TestReduceRejectsEmptyAndInvalid(t *testing.T) {
	if _, err := Reduce(Instance{Capacity: 3}); err == nil {
		t.Error("empty instance accepted")
	}
	if _, err := Reduce(Instance{Items: []Item{{-1, 1}}, Capacity: 3}); err == nil {
		t.Error("invalid instance accepted")
	}
}

func TestRecoverValueAndSelection(t *testing.T) {
	in := Instance{Items: []Item{{7, 2}, {9, 4}}, Capacity: 6}
	red, err := Reduce(in)
	if err != nil {
		t.Fatal(err)
	}
	// Selecting both: cost = (9-7) + (9-9) = 2; value = 2*9 - 2 = 16.
	if got := red.RecoverValue(2); got != 16 {
		t.Fatalf("RecoverValue(2) = %d, want 16", got)
	}
	sel := red.RecoverSelection([]fu.TypeID{SelectType, 1})
	if !sel[0] || sel[1] {
		t.Fatalf("selection = %v, want [true false]", sel)
	}
}
