package lint

import (
	"go/ast"
	"regexp"
	"strings"
)

// APIDoc enforces the documentation contract on exported API. In every
// non-main package:
//
//   - exported functions, methods on exported receivers, and exported types
//     must carry a doc comment whose first word is the declared name
//     (standard Go doc style); and
//   - solver entry points — exported functions returning a named Solution or
//     FrontierSolver — must additionally state their complexity or
//     algorithmic contract (big-O, optimal/heuristic, the algorithm class),
//     so callers can tell an O(n·K) DP from an exponential search without
//     reading the body.
var APIDoc = &Analyzer{
	Name: "apidoc",
	Doc:  "exported API needs name-first doc comments; solver APIs must document complexity or contract",
	Run:  runAPIDoc,
}

// complexityRe matches the vocabulary a solver doc must use to state its
// contract: an explicit bound or a recognized algorithm class.
var complexityRe = regexp.MustCompile(`(?i)\bO\(|optimal|optimum|heuristic|greedy|branch-and-bound|exponential|polynomial|linear|metaheuristic|anneal|pareto|dynamic program|\bDP\b|enumerat`)

func runAPIDoc(pass *Pass) {
	if pass.Pkg.Name() == "main" {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				checkFuncDoc(pass, d)
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok || !ts.Name.IsExported() {
						continue
					}
					doc := ts.Doc
					if doc == nil {
						doc = d.Doc
					}
					if docText(doc) == "" {
						pass.Report(ts.Pos(), "exported type %s must have a doc comment", ts.Name.Name)
					}
				}
			}
		}
	}
}

func checkFuncDoc(pass *Pass, d *ast.FuncDecl) {
	if !d.Name.IsExported() || !receiverExported(d) {
		return
	}
	doc := docText(d.Doc)
	if doc == "" {
		pass.Report(d.Pos(), "exported %s %s must have a doc comment", declKind(d), d.Name.Name)
		return
	}
	if first := strings.Fields(doc)[0]; first != d.Name.Name {
		pass.Report(d.Pos(), "doc comment for %s should start with %q, not %q", d.Name.Name, d.Name.Name, first)
		return
	}
	if isSolverAPI(d) && !complexityRe.MatchString(doc) {
		pass.Report(d.Pos(), "solver API %s must document its complexity or algorithmic contract (big-O or algorithm class)", d.Name.Name)
	}
}

// receiverExported reports whether d is a plain function or a method whose
// receiver type is itself exported — doc requirements don't apply to methods
// of unexported types.
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.IsExported()
	}
	return true
}

// isSolverAPI reports whether the function's results include a named
// Solution or FrontierSolver — the shape of every solver entry point.
func isSolverAPI(d *ast.FuncDecl) bool {
	if d.Type.Results == nil {
		return false
	}
	for _, r := range d.Type.Results.List {
		t := r.Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		name := ""
		switch t := t.(type) {
		case *ast.Ident:
			name = t.Name
		case *ast.SelectorExpr:
			name = t.Sel.Name
		}
		if name == "Solution" || name == "FrontierSolver" {
			return true
		}
	}
	return false
}

func declKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

func docText(cg *ast.CommentGroup) string {
	if cg == nil {
		return ""
	}
	return strings.TrimSpace(cg.Text())
}
