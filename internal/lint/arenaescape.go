package lint

import (
	"go/ast"
	"go/types"
)

// ArenaEscape enforces the two rules that make the flat curve arenas sound
// (see internal/hap/arena.go): every slice expression over arena-backed
// points must be a full-slice expression (`a.pts[lo:hi:hi]`), so a stray
// append through a retained view can never clobber a neighboring curve; and
// an arena view — a slice of `pts`, an alias of one, or the result of a
// view-producing function like curveOf — must not be stored beyond the
// solver that owns the arena: not in a struct field, not in a package
// variable, not down a channel, and not returned from an exported function.
// Writes to a `pts` field itself (`a.pts = a.pts[:0]`, append-growth) are
// arena management, not views, and are exempt.
//
// The analysis is type-keyed: it anchors on the `pts` field of a struct type
// named curveArena in the analyzed package and tracks aliases and producer
// functions to a small fixed depth. Packages without such a type have no
// arenas and produce no findings.
var ArenaEscape = &Analyzer{
	Name: "arenaescape",
	Doc:  "arena-backed curve slices must use full-slice expressions and must not be stored beyond solver scope",
	Run:  runArenaEscape,
}

func runArenaEscape(pass *Pass) {
	ptsField := findArenaPtsField(pass.Pkg)
	if ptsField == nil {
		return
	}
	c := &arenaChecker{
		pass:      pass,
		pts:       ptsField,
		aliases:   map[*types.Var]bool{},
		producers: map[*types.Func]bool{},
	}
	// Alias and producer collection to a small fixed depth: an alias of an
	// alias of a view still aliases the arena. Three rounds cover every
	// chain in practice (ident ← slice ← producer ← ident).
	for i := 0; i < 3; i++ {
		c.collect()
	}
	c.check()
}

// findArenaPtsField locates the `pts` slice field of the package's
// curveArena struct, the anchor of the whole analysis.
func findArenaPtsField(pkg *types.Package) *types.Var {
	obj := pkg.Scope().Lookup("curveArena")
	if obj == nil {
		return nil
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() != "pts" {
			continue
		}
		if _, ok := f.Type().Underlying().(*types.Slice); ok {
			return f
		}
	}
	return nil
}

type arenaChecker struct {
	pass      *Pass
	pts       *types.Var            // curveArena.pts
	aliases   map[*types.Var]bool   // locals holding arena-backed slices
	producers map[*types.Func]bool  // functions returning arena views
}

// isPtsSelector reports whether e selects the curveArena.pts field.
func (c *arenaChecker) isPtsSelector(e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	return ok && c.pass.Info.Uses[sel.Sel] == c.pts
}

// isArenaBacked reports whether e evaluates to a slice sharing the arena's
// backing store: the pts field, a slice of arena-backed data, an alias
// variable, or a producer call. Conversions and parens are transparent.
func (c *arenaChecker) isArenaBacked(e ast.Expr) bool {
	e = exprCore(c.pass.Info, e)
	switch x := e.(type) {
	case *ast.SelectorExpr:
		return c.pass.Info.Uses[x.Sel] == c.pts
	case *ast.Ident:
		v, ok := c.pass.Info.Uses[x].(*types.Var)
		return ok && c.aliases[v]
	case *ast.SliceExpr:
		return c.isArenaBacked(x.X)
	case *ast.IndexExpr:
		// pts[i] is a curvePoint value, not a view; but a slice-of-slices
		// alias indexed still isn't pts-backed here. Not a view.
		return false
	case *ast.CallExpr:
		callee := calleeFunc(c.pass.Info, x)
		return callee != nil && c.producers[callee]
	}
	return false
}

// collect records alias variables and view-producing functions; called
// repeatedly to reach a fixpoint over short chains.
func (c *arenaChecker) collect() {
	for _, f := range c.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i := range n.Lhs {
					if !c.isArenaBacked(n.Rhs[i]) {
						continue
					}
					if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
						if v, ok := identVar(c.pass.Info, id).(*types.Var); ok && !v.IsField() {
							c.aliases[v] = true
						}
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) != len(n.Values) {
					return true
				}
				for i, id := range n.Names {
					if c.isArenaBacked(n.Values[i]) {
						if v, ok := c.pass.Info.Defs[id].(*types.Var); ok {
							c.aliases[v] = true
						}
					}
				}
			case *ast.FuncDecl:
				if n.Body == nil {
					return true
				}
				fn, ok := c.pass.Info.Defs[n.Name].(*types.Func)
				if !ok || c.producers[fn] {
					return true
				}
				ast.Inspect(n.Body, func(m ast.Node) bool {
					if ret, ok := m.(*ast.ReturnStmt); ok {
						for _, r := range ret.Results {
							if c.isArenaBacked(r) {
								c.producers[fn] = true
							}
						}
					}
					return true
				})
			}
			return true
		})
	}
}

func (c *arenaChecker) check() {
	for _, f := range c.pass.Files {
		// Slice expressions that are the RHS of a write into a pts field are
		// arena management (the reset/compact idiom), exempt from the
		// full-slice rule.
		exempt := map[ast.Node]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i := range as.Lhs {
				if c.isPtsSelector(as.Lhs[i]) {
					exempt[exprCore(c.pass.Info, as.Rhs[i])] = true
				}
			}
			return true
		})

		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SliceExpr:
				if !c.isArenaBacked(n.X) || exempt[n] {
					return true
				}
				if !n.Slice3 || n.Max == nil {
					c.pass.Report(n.Pos(), "slice of arena-backed points must pin its capacity with a full-slice expression [lo:hi:max]")
				}
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						if c.isArenaBacked(n.Rhs[i]) && c.escapingTarget(n.Lhs[i]) {
							c.pass.Report(n.Rhs[i].Pos(), "arena-backed curve is stored beyond the solver that owns it; copy the points instead")
						}
					}
				}
			case *ast.SendStmt:
				if c.isArenaBacked(n.Value) {
					c.pass.Report(n.Value.Pos(), "arena-backed curve is sent on a channel and may outlive its solver; copy the points instead")
				}
			case *ast.FuncDecl:
				if n.Body == nil || !n.Name.IsExported() {
					return true
				}
				ast.Inspect(n.Body, func(m ast.Node) bool {
					if _, ok := m.(*ast.FuncLit); ok {
						return false
					}
					if ret, ok := m.(*ast.ReturnStmt); ok {
						for _, r := range ret.Results {
							if c.isArenaBacked(r) {
								c.pass.Report(r.Pos(), "exported function returns an arena-backed view; copy the points before returning")
							}
						}
					}
					return true
				})
			}
			return true
		})
	}
}

// escapingTarget reports whether writing to lhs stores the value beyond the
// current solver scope: a struct field other than a pts field (writes into
// pts are arena management) or a package-level variable, possibly through an
// index.
func (c *arenaChecker) escapingTarget(lhs ast.Expr) bool {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		if c.pass.Info.Uses[x.Sel] == c.pts {
			return false
		}
		v, ok := c.pass.Info.Uses[x.Sel].(*types.Var)
		return ok && v.IsField()
	case *ast.Ident:
		v, ok := c.pass.Info.Uses[x].(*types.Var)
		return ok && v.Parent() == c.pass.Pkg.Scope()
	case *ast.IndexExpr:
		return c.escapingTarget(x.X)
	case *ast.StarExpr:
		return c.escapingTarget(x.X)
	}
	return false
}
