package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicField enforces all-or-nothing atomicity per struct field: once any
// code in the package accesses a field through the call-style sync/atomic
// API (`atomic.AddInt64(&s.n, 1)`), every other access to that field must be
// atomic too — a single plain read or write reintroduces exactly the data
// race the atomic was bought to remove, and it does so silently, because
// mixed access is valid Go that even the race detector only catches when the
// interleaving cooperates. Typed atomics (atomic.Int64 and friends) are
// immune by construction and are the repository's preferred style; this
// analyzer exists for the call-style residue, where the field's type gives
// no such protection.
//
// Scope: the field set is collected package-wide, the access scan covers
// every non-atomic selector of those fields, and mutex-guarded plain access
// mixed with atomics is still flagged — mixing the two disciplines on one
// field is at best misleading and at worst wrong (the mutex does not order
// the atomic's readers).
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "a struct field accessed via sync/atomic anywhere must never be read or written non-atomically",
	Run:  runAtomicField,
}

func runAtomicField(pass *Pass) {
	// Pass 1: fields accessed atomically anywhere in the package, plus the
	// exact selector nodes inside those atomic calls (so they are not
	// re-flagged as plain accesses).
	atomicFields := map[*types.Var]token.Pos{} // field → one atomic call site
	atomicSels := map[ast.Node]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass.Info, call) || len(call.Args) == 0 {
				return true
			}
			sel := addrOfFieldSel(pass.Info, call.Args[0])
			if sel == nil {
				return true
			}
			v := pass.Info.Uses[sel.Sel].(*types.Var)
			if _, seen := atomicFields[v]; !seen {
				atomicFields[v] = call.Pos()
			}
			atomicSels[sel] = true
			return true
		})
	}
	if len(atomicFields) == 0 {
		return
	}
	// Pass 2: any other selector of those fields is a plain access.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicSels[sel] {
				return true
			}
			v, ok := pass.Info.Uses[sel.Sel].(*types.Var)
			if !ok || !v.IsField() {
				return true
			}
			if _, atomic := atomicFields[v]; atomic {
				pass.Report(sel.Pos(), "field %s is accessed with sync/atomic elsewhere in this package; this plain access races with it", v.Name())
			}
			return true
		})
	}
}

// isAtomicCall reports whether call invokes a package-level sync/atomic
// function (Add*, Load*, Store*, Swap*, CompareAndSwap*). Methods on the
// typed atomics also live in sync/atomic but take no address argument and
// cannot be mixed with plain access, so only non-method functions count.
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	callee := calleeFunc(info, call)
	if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := callee.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// addrOfFieldSel unwraps `&x.f` to the field selector when f resolves to a
// struct field, or returns nil.
func addrOfFieldSel(info *types.Info, e ast.Expr) *ast.SelectorExpr {
	u, ok := ast.Unparen(e).(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return nil
	}
	sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	v, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return sel
}
