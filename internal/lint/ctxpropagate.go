package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxPropagate flags calls that drop an in-scope context on the floor: a
// function that declares a context.Context parameter must not call a
// non-context function when a sibling named <F>Ctx or <F>Context (with a
// context.Context parameter) exists in the callee's package or method set.
// This is the exact bug class the hetsynthd plumbing exists to prevent — a
// ctx-accepting path that silently falls back to an uncancellable solver
// variant (e.g. calling hap.Solve where hap.SolveCtx exists).
var CtxPropagate = &Analyzer{
	Name: "ctxpropagate",
	Doc:  "in ctx-accepting functions, call the Ctx/Context variant of a solver when one exists",
	Run:  runCtxPropagate,
}

func runCtxPropagate(pass *Pass) {
	// Collect the body ranges of every function (declaration or literal)
	// that declares a context.Context parameter. Nested literals inherit
	// the obligation: they capture the context lexically.
	var scopes []ast.Node
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil && declaresCtxParam(pass.Info, fn.Type) {
					scopes = append(scopes, fn.Body)
				}
			case *ast.FuncLit:
				if declaresCtxParam(pass.Info, fn.Type) {
					scopes = append(scopes, fn.Body)
				}
			}
			return true
		})
	}
	inScope := func(pos token.Pos) bool {
		for _, s := range scopes {
			if s.Pos() <= pos && pos <= s.End() {
				return true
			}
		}
		return false
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !inScope(call.Pos()) {
				return true
			}
			callee := calleeFunc(pass.Info, call)
			if callee == nil {
				return true
			}
			sig, ok := callee.Type().(*types.Signature)
			if !ok || hasCtxParam(sig) {
				return true
			}
			if sib := ctxSibling(callee); sib != nil {
				pass.Report(call.Pos(), "call to %s drops the in-scope context; use %s", callee.Name(), sib.Name())
			}
			return true
		})
	}
}

// declaresCtxParam reports whether the function type's own parameter list
// includes a context.Context.
func declaresCtxParam(info *types.Info, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if tv, ok := info.Types[field.Type]; ok && isCtxType(tv.Type) {
			return true
		}
	}
	return false
}

// ctxSibling looks up a <name>Ctx / <name>Context variant of fn that accepts
// a context.Context: in the package scope for plain functions, in the
// receiver's method set for methods.
func ctxSibling(fn *types.Func) *types.Func {
	sig := fn.Type().(*types.Signature)
	for _, suffix := range []string{"Ctx", "Context"} {
		name := fn.Name() + suffix
		var obj types.Object
		if recv := sig.Recv(); recv != nil {
			obj, _, _ = types.LookupFieldOrMethod(recv.Type(), true, fn.Pkg(), name)
		} else if fn.Pkg() != nil {
			obj = fn.Pkg().Scope().Lookup(name)
		}
		sib, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if ssig, ok := sib.Type().(*types.Signature); ok && hasCtxParam(ssig) {
			return sib
		}
	}
	return nil
}
