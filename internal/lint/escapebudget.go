package lint

import (
	"bufio"
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// EscapeBudgetAnalyzer is the suite's entry for the escape-budget gate. It
// has no per-package Run: the gate works on `go build -gcflags=-m` compiler
// output for the whole module, not on a single package's AST, so the driver
// (cmd/hetsynthlint) invokes EscapeBudget separately when this analyzer is
// selected. It lives in All() so `-list` shows it and `-only=escapebudget`
// resolves.
var EscapeBudgetAnalyzer = &Analyzer{
	Name: "escapebudget",
	Doc:  "functions annotated // hetsynth:hotpath must not gain heap escapes versus the committed baseline (testdata/escapes.golden)",
}

// hotpathRe matches the annotation that opts a function into the escape
// budget. It goes in the function's doc comment:
//
//	// hetsynth:hotpath
//	func (c *lruCache) getBytes(key []byte) (any, bool) { ... }
//
// The pattern is anchored to the whole comment line so prose that merely
// mentions the annotation (like this paragraph) does not opt anything in.
var hotpathRe = regexp.MustCompile(`^//\s*hetsynth:hotpath\s*$`)

// escapeLineRe matches one compiler diagnostic line from -gcflags=-m.
var escapeLineRe = regexp.MustCompile(`^(.+\.go):(\d+):\d+: (.+)$`)

// hotpathFunc is one annotated function: its baseline key and the file/line
// span compiler diagnostics are attributed against.
type hotpathFunc struct {
	key        string // pkgpath.Recv.Name or pkgpath.Name
	file       string // absolute, cleaned
	start, end int    // declaration line span, inclusive
	pos        token.Position
}

// EscapeBudget runs the gate: compile the module with -m, count heap
// escapes inside every // hetsynth:hotpath function, and report each
// function whose count exceeds the committed golden baseline. A hotpath
// function absent from the baseline is reported too — the budget must be
// set deliberately (run with -update-escapes), not defaulted.
func EscapeBudget(dir, goldenPath string, patterns []string) ([]Diagnostic, error) {
	funcs, counts, samples, err := escapeCounts(dir, patterns)
	if err != nil {
		return nil, err
	}
	golden, err := readEscapeGolden(goldenPath)
	if err != nil {
		return nil, err
	}
	var out []Diagnostic
	for _, fn := range funcs {
		got := counts[fn.key]
		want, inGolden := golden[fn.key]
		switch {
		case !inGolden:
			out = append(out, Diagnostic{
				Pos:      fn.pos,
				Analyzer: EscapeBudgetAnalyzer.Name,
				Message:  fmt.Sprintf("hotpath function %s has no escape baseline; run hetsynthlint -update-escapes to record its budget (%d)", fn.key, got),
			})
		case got > want:
			detail := ""
			if s := samples[fn.key]; len(s) > 0 {
				detail = " (" + strings.Join(s, "; ") + ")"
			}
			out = append(out, Diagnostic{
				Pos:      fn.pos,
				Analyzer: EscapeBudgetAnalyzer.Name,
				Message:  fmt.Sprintf("hotpath function %s gained heap escapes: %d, budget %d%s", fn.key, got, want, detail),
			})
		}
	}
	return out, nil
}

// WriteEscapeBaseline regenerates the golden baseline from the current
// compiler output, one `<funcKey> <count>` line per hotpath function.
func WriteEscapeBaseline(dir, goldenPath string, patterns []string) error {
	funcs, counts, _, err := escapeCounts(dir, patterns)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	buf.WriteString("# Escape budget per // hetsynth:hotpath function: the number of\n")
	buf.WriteString("# \"escapes to heap\"/\"moved to heap\" diagnostics go build -gcflags=-m\n")
	buf.WriteString("# attributes to its lines. Regenerate with: hetsynthlint -update-escapes\n")
	keys := make([]string, 0, len(funcs))
	for _, fn := range funcs {
		keys = append(keys, fn.key)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&buf, "%s %d\n", k, counts[k])
	}
	return os.WriteFile(goldenPath, buf.Bytes(), 0o644)
}

// escapeCounts compiles the module with escape diagnostics on and attributes
// "escapes to heap"/"moved to heap" lines to the hotpath function whose
// declaration spans them. samples carries up to three diagnostic snippets
// per function for actionable gate failures.
func escapeCounts(dir string, patterns []string) ([]hotpathFunc, map[string]int, map[string][]string, error) {
	funcs, err := findHotpathFuncs(dir, patterns)
	if err != nil {
		return nil, nil, nil, err
	}
	counts := map[string]int{}
	samples := map[string][]string{}
	for _, fn := range funcs {
		counts[fn.key] = 0
	}
	if len(funcs) == 0 {
		return funcs, counts, samples, nil
	}
	modPath, err := modulePath(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	// -gcflags applies -m to module packages only; the build cache replays
	// compiler diagnostics on unchanged packages, so repeat runs stay cheap
	// and still produce the full output.
	args := append([]string{"build", "-gcflags=" + modPath + "/...=-m"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, nil, nil, fmt.Errorf("lint: go build -gcflags=-m: %v\n%s", err, stderr.String())
	}
	absDir, err := filepath.Abs(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	sc := bufio.NewScanner(&stderr)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		m := escapeLineRe.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		msg := m[3]
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(absDir, file)
		}
		file = filepath.Clean(file)
		//hetsynth:ignore retval the capture group is \d+, Atoi cannot fail on it
		line, _ := strconv.Atoi(m[2])
		for i := range funcs {
			fn := &funcs[i]
			if fn.file == file && line >= fn.start && line <= fn.end {
				counts[fn.key]++
				if len(samples[fn.key]) < 3 {
					samples[fn.key] = append(samples[fn.key], fmt.Sprintf("line %d: %s", line, msg))
				}
				break
			}
		}
	}
	return funcs, counts, samples, nil
}

// findHotpathFuncs parses every module package matched by patterns and
// collects the functions annotated // hetsynth:hotpath in their doc comment.
func findHotpathFuncs(dir string, patterns []string) ([]hotpathFunc, error) {
	listed, err := goListCached(dir, patterns)
	if err != nil {
		return nil, err
	}
	var out []hotpathFunc
	fset := token.NewFileSet()
	for _, p := range listed {
		if p.Standard || p.DepOnly {
			continue
		}
		for _, name := range p.GoFiles {
			path := filepath.Join(p.Dir, name)
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: parse %s: %v", path, err)
			}
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				annotated := false
				for _, c := range fd.Doc.List {
					if hotpathRe.MatchString(c.Text) {
						annotated = true
					}
				}
				if !annotated {
					continue
				}
				out = append(out, hotpathFunc{
					key:   funcKey(p.ImportPath, fd),
					file:  filepath.Clean(path),
					start: fset.Position(fd.Pos()).Line,
					end:   fset.Position(fd.End()).Line,
					pos:   fset.Position(fd.Name.Pos()),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out, nil
}

// funcKey names a function for the golden file: pkgpath.Recv.Name for
// methods (pointer receivers stripped), pkgpath.Name otherwise.
func funcKey(pkgPath string, fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		t := fd.Recv.List[0].Type
		if st, ok := t.(*ast.StarExpr); ok {
			t = st.X
		}
		if id, ok := t.(*ast.Ident); ok {
			return pkgPath + "." + id.Name + "." + fd.Name.Name
		}
	}
	return pkgPath + "." + fd.Name.Name
}

// readEscapeGolden parses the `<funcKey> <count>` baseline; '#' starts a
// comment. A missing file is an error pointing at -update-escapes, so the
// gate cannot silently pass on a repo that never set a budget.
func readEscapeGolden(path string) (map[string]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("lint: escape baseline %s: %v (run hetsynthlint -update-escapes to create it)", path, err)
	}
	out := map[string]int{}
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 2 {
			return nil, fmt.Errorf("lint: escape baseline %s:%d: want \"funcKey count\", got %q", path, i+1, line)
		}
		n, err := strconv.Atoi(f[1])
		if err != nil {
			return nil, fmt.Errorf("lint: escape baseline %s:%d: bad count %q", path, i+1, f[1])
		}
		out[f[0]] = n
	}
	return out, nil
}

// modulePath reads the module path from the go.mod governing dir.
func modulePath(dir string) (string, error) {
	root := findModuleRoot(dir)
	if root == "" {
		return "", fmt.Errorf("lint: no go.mod above %s", dir)
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s/go.mod", root)
}
