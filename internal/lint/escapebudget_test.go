package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// repoRoot finds the module root of this repository for whole-module tests.
func repoRoot(t *testing.T) string {
	t.Helper()
	root := ModuleRoot(".")
	if root == "" {
		t.Fatal("module root not found")
	}
	return root
}

// TestEscapeBudgetCleanOnRepo is the positive gate: every hotpath function
// in this repository stays within its committed budget.
func TestEscapeBudgetCleanOnRepo(t *testing.T) {
	root := repoRoot(t)
	golden := filepath.Join(root, "internal", "lint", "testdata", "escapes.golden")
	diags, err := EscapeBudget(root, golden, []string{"./..."})
	if err != nil {
		t.Fatalf("escape budget: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s: %s", d.Pos, d.Message)
	}
}

// writeEscapeModule materializes a one-file module in a temp dir so gate
// behaviour can be tested without touching the repo's own baseline.
func writeEscapeModule(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	gomod := "module escapetest\n\ngo 1.24\n"
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte(gomod), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "esc.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

const leakySrc = `package esc

// Leak forces a heap escape: x outlives the frame through the returned
// pointer.
//
// hetsynth:hotpath
func Leak() *int {
	x := 42
	return &x
}
`

// TestEscapeBudgetGateFails is the negative gate required by the issue: a
// hotpath function that gains a heap allocation over its budget must fail.
func TestEscapeBudgetGateFails(t *testing.T) {
	dir := writeEscapeModule(t, leakySrc)
	golden := filepath.Join(dir, "escapes.golden")
	if err := os.WriteFile(golden, []byte("escapetest.Leak 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	diags, err := EscapeBudget(dir, golden, []string{"./..."})
	if err != nil {
		t.Fatalf("escape budget: %v", err)
	}
	if len(diags) != 1 {
		t.Fatalf("want exactly one over-budget diagnostic, got %v", diags)
	}
	msg := diags[0].Message
	if !strings.Contains(msg, "escapetest.Leak") || !strings.Contains(msg, "gained heap escapes: 1, budget 0") {
		t.Errorf("over-budget message should name the function and both counts, got %q", msg)
	}
	if !strings.Contains(msg, "moved to heap") && !strings.Contains(msg, "escapes to heap") {
		t.Errorf("over-budget message should carry a compiler sample line, got %q", msg)
	}
}

// TestEscapeBudgetRequiresBaselineEntry: a hotpath function missing from
// the golden file is itself a finding — budgets are set deliberately.
func TestEscapeBudgetRequiresBaselineEntry(t *testing.T) {
	dir := writeEscapeModule(t, leakySrc)
	golden := filepath.Join(dir, "escapes.golden")
	if err := os.WriteFile(golden, []byte("# empty baseline\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	diags, err := EscapeBudget(dir, golden, []string{"./..."})
	if err != nil {
		t.Fatalf("escape budget: %v", err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "no escape baseline") {
		t.Fatalf("want a no-baseline diagnostic, got %v", diags)
	}
}

// TestWriteEscapeBaselineRoundTrip: -update-escapes records the current
// counts, after which the gate passes on the same tree.
func TestWriteEscapeBaselineRoundTrip(t *testing.T) {
	dir := writeEscapeModule(t, leakySrc)
	golden := filepath.Join(dir, "escapes.golden")
	if err := WriteEscapeBaseline(dir, golden, []string{"./..."}); err != nil {
		t.Fatalf("write baseline: %v", err)
	}
	data, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "escapetest.Leak 1") {
		t.Fatalf("baseline should record the Leak escape, got:\n%s", data)
	}
	diags, err := EscapeBudget(dir, golden, []string{"./..."})
	if err != nil {
		t.Fatalf("escape budget: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("freshly regenerated baseline should pass, got %v", diags)
	}
}

// TestHotpathAnnotationAnchored: prose that merely mentions the annotation
// must not opt a function into the gate.
func TestHotpathAnnotationAnchored(t *testing.T) {
	const src = `package esc

// mention talks about hetsynth:hotpath without being annotated; adding the
// marker mid-sentence like hetsynth:hotpath here must not count either.
func mention() *int {
	x := 1
	return &x
}
`
	dir := writeEscapeModule(t, src)
	funcs, err := findHotpathFuncs(dir, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(funcs) != 0 {
		t.Fatalf("prose mention opted functions in: %+v", funcs)
	}
}

func TestReadEscapeGoldenErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := readEscapeGolden(filepath.Join(dir, "missing.golden")); err == nil ||
		!strings.Contains(err.Error(), "-update-escapes") {
		t.Errorf("missing baseline should point at -update-escapes, got %v", err)
	}
	bad := filepath.Join(dir, "bad.golden")
	if err := os.WriteFile(bad, []byte("only-one-field\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readEscapeGolden(bad); err == nil {
		t.Error("malformed baseline line should be an error")
	}
	if err := os.WriteFile(bad, []byte("k notanumber\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readEscapeGolden(bad); err == nil {
		t.Error("non-numeric count should be an error")
	}
}

// TestListCacheReuse: the go list cache is written under bin/lintcache on
// first use, reused while nothing changes, and invalidated by a source edit.
func TestListCacheReuse(t *testing.T) {
	dir := writeEscapeModule(t, "package esc\n")
	first, err := goListCached(dir, []string{"./..."})
	if err != nil {
		t.Fatalf("first list: %v", err)
	}
	cacheDir := filepath.Join(dir, "bin", "lintcache")
	entries, err := filepath.Glob(filepath.Join(cacheDir, "list-*.json"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("want one cache entry after first list, got %v (%v)", entries, err)
	}
	second, err := goListCached(dir, []string{"./..."})
	if err != nil {
		t.Fatalf("second list: %v", err)
	}
	if len(first) != len(second) {
		t.Fatalf("cached listing disagrees: %d vs %d packages", len(first), len(second))
	}
	// Editing a source file must change the key, producing a second entry.
	if err := os.WriteFile(filepath.Join(dir, "esc2.go"), []byte("package esc\n\nfunc two() {}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := goListCached(dir, []string{"./..."}); err != nil {
		t.Fatalf("list after edit: %v", err)
	}
	entries, _ = filepath.Glob(filepath.Join(cacheDir, "list-*.json"))
	if len(entries) != 2 {
		t.Fatalf("source edit should miss the cache, got entries %v", entries)
	}
}

// TestListCacheDisabled: HETSYNTHLINT_NOCACHE=1 bypasses the cache entirely.
func TestListCacheDisabled(t *testing.T) {
	t.Setenv("HETSYNTHLINT_NOCACHE", "1")
	dir := writeEscapeModule(t, "package esc\n")
	if _, err := goListCached(dir, []string{"./..."}); err != nil {
		t.Fatalf("uncached list: %v", err)
	}
	entries, _ := filepath.Glob(filepath.Join(dir, "bin", "lintcache", "list-*.json"))
	if len(entries) != 0 {
		t.Fatalf("NOCACHE run should write no cache entries, got %v", entries)
	}
}
