package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts the expectation from a `// want `+"`regexp`"+`` comment,
// the same convention analysistest uses (with backtick quoting).
var wantRe = regexp.MustCompile("want `([^`]*)`")

// runFixture loads testdata/src/<name> as one package, runs a single
// analyzer over it, and checks the surviving diagnostics against the
// fixture's // want comments: every diagnostic must be expected on its line
// and every expectation must be matched.
func runFixture(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	pkg, err := LoadDir(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	diags := RunPackage(pkg, []*Analyzer{a})

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want regexp %q: %v", m[1], err)
				}
				pos := pkg.Fset.Position(c.Pos())
				k := key{filepath.Base(pos.Filename), pos.Line}
				wants[k] = append(wants[k], re)
			}
		}
	}

	matched := map[key]int{}
	for _, d := range diags {
		k := key{filepath.Base(d.Pos.Filename), d.Pos.Line}
		ok := false
		for _, re := range wants[k] {
			if re.MatchString(d.Message) {
				ok = true
				matched[k]++
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic at %s:%d: %s", k.file, k.line, d.Message)
		}
	}
	for k, res := range wants {
		if matched[k] < len(res) {
			t.Errorf("missing diagnostic at %s:%d: want %v", k.file, k.line, res)
		}
	}
}

// writeFixture materializes one in-memory fixture file as a package in a
// fresh temp dir and loads it.
func writeFixture(t *testing.T, src string) *Package {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "fix.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("loading inline fixture: %v", err)
	}
	return pkg
}

func diagnosticsOf(pkg *Package, a *Analyzer) []string {
	var out []string
	for _, d := range RunPackage(pkg, []*Analyzer{a}) {
		out = append(out, fmt.Sprintf("%d: %s", d.Pos.Line, d.Message))
	}
	return out
}

func TestCtxPropagateFixture(t *testing.T)  { runFixture(t, CtxPropagate, "ctxprop") }
func TestGuardedByFixture(t *testing.T)     { runFixture(t, GuardedBy, "guardedby") }
func TestGoroutineLifeFixture(t *testing.T) { runFixture(t, GoroutineLife, "goroutinelife") }
func TestAPIDocFixture(t *testing.T)        { runFixture(t, APIDoc, "apidoc") }
func TestRetValFixture(t *testing.T)        { runFixture(t, RetVal, "retval") }
func TestPoolSafeFixture(t *testing.T)      { runFixture(t, PoolSafe, "poolsafe") }
func TestPinPairFixture(t *testing.T)       { runFixture(t, PinPair, "pinpair") }
func TestArenaEscapeFixture(t *testing.T)   { runFixture(t, ArenaEscape, "arenaescape") }
func TestAtomicFieldFixture(t *testing.T)   { runFixture(t, AtomicField, "atomicfield") }

// TestPoolSafeRequiresPut mirrors TestGoroutineLifeRequiresJoin for the
// dataflow generation: the exact same function passes with its Put present
// and fails the moment the recycle is deleted.
func TestPoolSafeRequiresPut(t *testing.T) {
	const good = `package p

import (
	"bytes"
	"sync"
)

var pool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func f() {
	b := pool.Get().(*bytes.Buffer)
	b.Reset()
	pool.Put(b)
}
`
	if ds := diagnosticsOf(writeFixture(t, good), PoolSafe); len(ds) != 0 {
		t.Fatalf("balanced Get/Put flagged: %v", ds)
	}
	bad := strings.Replace(good, "\tpool.Put(b)\n", "", 1)
	ds := diagnosticsOf(writeFixture(t, bad), PoolSafe)
	if len(ds) != 1 || !strings.Contains(ds[0], "not returned with Put") {
		t.Fatalf("removing pool.Put should flag the Get, got %v", ds)
	}
}

// TestPinPairRequiresRelease proves the lostcancel-class detection: an
// error return between acquire and release is flagged exactly when the
// release is missing from that path.
func TestPinPairRequiresRelease(t *testing.T) {
	const good = `package p

import "errors"

type cache struct{ m map[string]any }

func (c *cache) acquire(k string) (any, bool) { v, ok := c.m[k]; return v, ok }
func (c *cache) release(k string)             { delete(c.m, k) }

func f(c *cache, k string, fail bool) error {
	if _, ok := c.acquire(k); ok {
		if fail {
			c.release(k)
			return errors.New("x")
		}
		c.release(k)
	}
	return nil
}
`
	if ds := diagnosticsOf(writeFixture(t, good), PinPair); len(ds) != 0 {
		t.Fatalf("released-on-all-paths acquire flagged: %v", ds)
	}
	bad := strings.Replace(good, "\t\t\tc.release(k)\n", "", 1)
	ds := diagnosticsOf(writeFixture(t, bad), PinPair)
	if len(ds) != 1 || !strings.Contains(ds[0], "not released on this path") {
		t.Fatalf("removing the error-path release should flag it, got %v", ds)
	}
}

// TestGoroutineLifeRequiresJoin encodes the suite's core promise directly:
// the exact same goroutine passes with its join point present and fails the
// moment the wg.Wait() / done-channel receive is deleted.
func TestGoroutineLifeRequiresJoin(t *testing.T) {
	const waitGood = `package p

import "sync"

func f() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done() }()
	wg.Wait()
}
`
	if ds := diagnosticsOf(writeFixture(t, waitGood), GoroutineLife); len(ds) != 0 {
		t.Fatalf("WaitGroup-joined goroutine flagged: %v", ds)
	}
	waitBad := strings.Replace(waitGood, "\twg.Wait()\n", "", 1)
	ds := diagnosticsOf(writeFixture(t, waitBad), GoroutineLife)
	if len(ds) != 1 || !strings.Contains(ds[0], "calls Wait") {
		t.Fatalf("removing wg.Wait() should flag the goroutine, got %v", ds)
	}

	const chanGood = `package p

func f() {
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}
`
	if ds := diagnosticsOf(writeFixture(t, chanGood), GoroutineLife); len(ds) != 0 {
		t.Fatalf("done-channel goroutine flagged: %v", ds)
	}
	chanBad := strings.Replace(chanGood, "\t<-done\n", "", 1)
	ds = diagnosticsOf(writeFixture(t, chanBad), GoroutineLife)
	if len(ds) != 1 || !strings.Contains(ds[0], "signals a channel") {
		t.Fatalf("removing the done-channel receive should flag the goroutine, got %v", ds)
	}
}

// TestSuppressionNeedsReason verifies that bare markers do not suppress:
// //hetsynth:ignore, // detached: and // hetsynth:pool-escape all require a
// justification.
func TestSuppressionNeedsReason(t *testing.T) {
	const src = `package p

import "errors"

func fail() error { return errors.New("x") }

func f() {
	//hetsynth:ignore retval
	_ = fail()
}

func g() {
	// detached:
	go func() {}()
}
`
	pkg := writeFixture(t, src)
	if ds := diagnosticsOf(pkg, RetVal); len(ds) != 1 {
		t.Errorf("reasonless //hetsynth:ignore should not suppress retval, got %v", ds)
	}
	if ds := diagnosticsOf(pkg, GoroutineLife); len(ds) != 1 {
		t.Errorf("reasonless // detached: should not suppress goroutinelife, got %v", ds)
	}

	const poolSrc = `package p

import (
	"bytes"
	"sync"
)

var pool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

type h struct{ b *bytes.Buffer }

func f(x *h) {
	// hetsynth:pool-escape
	x.b = pool.Get().(*bytes.Buffer)
}
`
	if ds := diagnosticsOf(writeFixture(t, poolSrc), PoolSafe); len(ds) != 1 {
		t.Errorf("reasonless // hetsynth:pool-escape should not suppress poolsafe, got %v", ds)
	}
	withReason := strings.Replace(poolSrc, "// hetsynth:pool-escape", "// hetsynth:pool-escape held until close", 1)
	if ds := diagnosticsOf(writeFixture(t, withReason), PoolSafe); len(ds) != 0 {
		t.Errorf("justified pool-escape annotation should suppress poolsafe, got %v", ds)
	}
}
