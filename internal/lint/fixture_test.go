package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts the expectation from a `// want `+"`regexp`"+`` comment,
// the same convention analysistest uses (with backtick quoting).
var wantRe = regexp.MustCompile("want `([^`]*)`")

// runFixture loads testdata/src/<name> as one package, runs a single
// analyzer over it, and checks the surviving diagnostics against the
// fixture's // want comments: every diagnostic must be expected on its line
// and every expectation must be matched.
func runFixture(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	pkg, err := LoadDir(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	diags := RunPackage(pkg, []*Analyzer{a})

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want regexp %q: %v", m[1], err)
				}
				pos := pkg.Fset.Position(c.Pos())
				k := key{filepath.Base(pos.Filename), pos.Line}
				wants[k] = append(wants[k], re)
			}
		}
	}

	matched := map[key]int{}
	for _, d := range diags {
		k := key{filepath.Base(d.Pos.Filename), d.Pos.Line}
		ok := false
		for _, re := range wants[k] {
			if re.MatchString(d.Message) {
				ok = true
				matched[k]++
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic at %s:%d: %s", k.file, k.line, d.Message)
		}
	}
	for k, res := range wants {
		if matched[k] < len(res) {
			t.Errorf("missing diagnostic at %s:%d: want %v", k.file, k.line, res)
		}
	}
}

// writeFixture materializes one in-memory fixture file as a package in a
// fresh temp dir and loads it.
func writeFixture(t *testing.T, src string) *Package {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "fix.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("loading inline fixture: %v", err)
	}
	return pkg
}

func diagnosticsOf(pkg *Package, a *Analyzer) []string {
	var out []string
	for _, d := range RunPackage(pkg, []*Analyzer{a}) {
		out = append(out, fmt.Sprintf("%d: %s", d.Pos.Line, d.Message))
	}
	return out
}

func TestCtxPropagateFixture(t *testing.T)  { runFixture(t, CtxPropagate, "ctxprop") }
func TestGuardedByFixture(t *testing.T)     { runFixture(t, GuardedBy, "guardedby") }
func TestGoroutineLifeFixture(t *testing.T) { runFixture(t, GoroutineLife, "goroutinelife") }
func TestAPIDocFixture(t *testing.T)        { runFixture(t, APIDoc, "apidoc") }
func TestRetValFixture(t *testing.T)        { runFixture(t, RetVal, "retval") }

// TestGoroutineLifeRequiresJoin encodes the suite's core promise directly:
// the exact same goroutine passes with its join point present and fails the
// moment the wg.Wait() / done-channel receive is deleted.
func TestGoroutineLifeRequiresJoin(t *testing.T) {
	const waitGood = `package p

import "sync"

func f() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done() }()
	wg.Wait()
}
`
	if ds := diagnosticsOf(writeFixture(t, waitGood), GoroutineLife); len(ds) != 0 {
		t.Fatalf("WaitGroup-joined goroutine flagged: %v", ds)
	}
	waitBad := strings.Replace(waitGood, "\twg.Wait()\n", "", 1)
	ds := diagnosticsOf(writeFixture(t, waitBad), GoroutineLife)
	if len(ds) != 1 || !strings.Contains(ds[0], "calls Wait") {
		t.Fatalf("removing wg.Wait() should flag the goroutine, got %v", ds)
	}

	const chanGood = `package p

func f() {
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}
`
	if ds := diagnosticsOf(writeFixture(t, chanGood), GoroutineLife); len(ds) != 0 {
		t.Fatalf("done-channel goroutine flagged: %v", ds)
	}
	chanBad := strings.Replace(chanGood, "\t<-done\n", "", 1)
	ds = diagnosticsOf(writeFixture(t, chanBad), GoroutineLife)
	if len(ds) != 1 || !strings.Contains(ds[0], "signals a channel") {
		t.Fatalf("removing the done-channel receive should flag the goroutine, got %v", ds)
	}
}

// TestSuppressionNeedsReason verifies that bare markers do not suppress:
// both //hetsynth:ignore and // detached: require a justification.
func TestSuppressionNeedsReason(t *testing.T) {
	const src = `package p

import "errors"

func fail() error { return errors.New("x") }

func f() {
	//hetsynth:ignore retval
	_ = fail()
}

func g() {
	// detached:
	go func() {}()
}
`
	pkg := writeFixture(t, src)
	if ds := diagnosticsOf(pkg, RetVal); len(ds) != 1 {
		t.Errorf("reasonless //hetsynth:ignore should not suppress retval, got %v", ds)
	}
	if ds := diagnosticsOf(pkg, GoroutineLife); len(ds) != 1 {
		t.Errorf("reasonless // detached: should not suppress goroutinelife, got %v", ds)
	}
}
