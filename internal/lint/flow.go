package lint

import (
	"go/ast"
)

// This file is the small intraprocedural dataflow engine behind the
// resource-lifecycle analyzers (poolsafe, pinpair). It walks one function
// body in execution order over Go's structured control flow — blocks,
// if/else, for/range, switch/select — threading an analyzer-defined state
// through every path and merging states at join points with the analyzer's
// own lattice. It is deliberately not a basic-block CFG: Go bodies in this
// repository are structured (no goto), so a recursive walk with explicit
// joins models the same path facts in a fraction of the machinery. Bodies
// that do use goto or labels are skipped wholesale — the engine reports
// nothing rather than something wrong.
//
// Soundness posture, shared by its clients: paths through loop bodies are
// walked once (zero-or-once approximation), `break`/`continue` end the
// walked path at the statement (the post-loop join already includes the
// pre-iteration state), and nested function literals are NOT walked by the
// engine — the client sees them inside the statements it transfers and
// decides what capture means for its resources.

// flowState is an analyzer-owned state value threaded through the walk. The
// engine never inspects it; it only asks the client to clone and join.
type flowState any

// flowClient is one dataflow analysis plugged into walkFlow.
type flowClient interface {
	// transfer processes one straight-line statement (assignments, calls,
	// defers, go statements, declarations, sends, ...) mutating st in place.
	// Control-flow statements are decomposed by the engine and never reach
	// transfer whole.
	transfer(stmt ast.Stmt, st flowState)
	// use observes an expression evaluated for control flow (an if/for
	// condition, switch tag, range operand) on the current path.
	use(expr ast.Expr, st flowState)
	// refine narrows st on entering a conditional branch: cond evaluated
	// true when negated is false, false when negated is true.
	refine(cond ast.Expr, negated bool, st flowState)
	// atExit is called once per function exit: at each return statement
	// (ret non-nil) and at an implicit fall-off-the-end exit (ret nil).
	atExit(ret *ast.ReturnStmt, st flowState)
	// clone deep-copies a state so branches evolve independently.
	clone(st flowState) flowState
	// join merges two states reaching the same program point. Either
	// argument may be mutated and the result returned.
	join(a, b flowState) flowState
}

// walkFlow runs the client's analysis over body starting from entry. It
// returns false when the body contains control flow the engine does not
// model (goto or labeled branches), in which case no exit callbacks were
// guaranteed to fire and the client should discard any partial findings.
func walkFlow(body *ast.BlockStmt, entry flowState, c flowClient) bool {
	if hasGoto(body) {
		return false
	}
	w := &flowWalker{c: c}
	if exit := w.stmts(body.List, entry); exit != nil {
		c.atExit(nil, exit)
	}
	return true
}

// hasGoto reports whether the body contains goto statements or labels,
// which the structured walk cannot model.
func hasGoto(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.BranchStmt:
			if s.Tok.String() == "goto" {
				found = true
			}
		case *ast.FuncLit:
			return false // a nested literal's gotos are its own problem
		}
		return !found
	})
	return found
}

type flowWalker struct {
	c flowClient
}

// stmts walks one statement sequence from st. It returns the fall-through
// state, or nil when every path through the sequence left it (return,
// break, continue, or a provably non-terminating loop).
func (w *flowWalker) stmts(list []ast.Stmt, st flowState) flowState {
	for _, s := range list {
		st = w.stmt(s, st)
		if st == nil {
			return nil
		}
	}
	return st
}

// joinStates merges the non-nil of a and b (nil marks a path that already
// exited).
func (w *flowWalker) joinStates(a, b flowState) flowState {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	default:
		return w.c.join(a, b)
	}
}

func (w *flowWalker) stmt(s ast.Stmt, st flowState) flowState {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return w.stmts(s.List, st)

	case *ast.ReturnStmt:
		w.c.atExit(s, st)
		return nil

	case *ast.BranchStmt:
		// break/continue/fallthrough leave this statement sequence; the
		// enclosing loop/switch join already carries the pre-branch state.
		return nil

	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)

	case *ast.IfStmt:
		if s.Init != nil {
			w.c.transfer(s.Init, st)
		}
		w.c.use(s.Cond, st)
		thenSt := w.c.clone(st)
		w.c.refine(s.Cond, false, thenSt)
		thenSt = w.stmts(s.Body.List, thenSt)
		elseSt := w.c.clone(st)
		w.c.refine(s.Cond, true, elseSt)
		if s.Else != nil {
			elseSt = w.stmt(s.Else, elseSt)
		}
		return w.joinStates(thenSt, elseSt)

	case *ast.ForStmt:
		if s.Init != nil {
			w.c.transfer(s.Init, st)
		}
		if s.Cond != nil {
			w.c.use(s.Cond, st)
		}
		bodySt := w.stmts(s.Body.List, w.c.clone(st))
		if bodySt != nil && s.Post != nil {
			w.c.transfer(s.Post, bodySt)
		}
		if s.Cond == nil && !hasBreak(s.Body) {
			// `for { ... }` with no break never falls through.
			return nil
		}
		return w.joinStates(st, bodySt)

	case *ast.RangeStmt:
		w.c.use(s.X, st)
		bodySt := w.stmts(s.Body.List, w.c.clone(st))
		return w.joinStates(st, bodySt)

	case *ast.SwitchStmt:
		if s.Init != nil {
			w.c.transfer(s.Init, st)
		}
		if s.Tag != nil {
			w.c.use(s.Tag, st)
		}
		return w.clauses(s.Body, st, switchHasDefault(s.Body))

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.c.transfer(s.Init, st)
		}
		w.c.transfer(s.Assign, st)
		return w.clauses(s.Body, st, switchHasDefault(s.Body))

	case *ast.SelectStmt:
		var out flowState
		any := false
		for _, cl := range s.Body.List {
			comm := cl.(*ast.CommClause)
			caseSt := w.c.clone(st)
			if comm.Comm != nil {
				w.c.transfer(comm.Comm, caseSt)
			}
			out = w.joinStates(out, w.stmts(comm.Body, caseSt))
			any = true
		}
		if !any {
			return nil // empty select blocks forever
		}
		return out

	default:
		// Straight-line statement: assignments, expression statements,
		// declarations, defer, go, send, inc/dec, empty.
		w.c.transfer(s, st)
		return st
	}
}

// clauses walks a switch body: every case starts from the pre-switch state
// and the exits merge. Without a default clause the zero-case path falls
// through with the entry state.
func (w *flowWalker) clauses(body *ast.BlockStmt, st flowState, hasDefault bool) flowState {
	var out flowState
	for _, cl := range body.List {
		cc := cl.(*ast.CaseClause)
		caseSt := w.c.clone(st)
		for _, e := range cc.List {
			w.c.use(e, caseSt)
		}
		out = w.joinStates(out, w.stmts(cc.Body, caseSt))
	}
	if !hasDefault {
		out = w.joinStates(out, st)
	}
	return out
}

func switchHasDefault(body *ast.BlockStmt) bool {
	for _, cl := range body.List {
		if cc, ok := cl.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// hasBreak reports whether body contains a break that targets the loop the
// body belongs to (breaks inside nested loops, switches and selects bind to
// those constructs and are excluded; a labeled break is counted
// conservatively, since its target may well be this loop).
func hasBreak(body *ast.BlockStmt) bool {
	found := false
	var walk func(n ast.Node, breakable bool)
	walk = func(n ast.Node, breakable bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			if found || m == nil {
				return false
			}
			switch m := m.(type) {
			case *ast.BranchStmt:
				if m.Tok.String() == "break" && (breakable || m.Label != nil) {
					found = true
				}
			case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
				if m != n {
					walk(m, false)
					return false
				}
			case *ast.FuncLit:
				return false
			}
			return true
		})
	}
	walk(body, true)
	return found
}
