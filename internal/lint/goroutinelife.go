package lint

import (
	"go/ast"
	"go/types"
)

// GoroutineLife requires every `go` statement in production code to have a
// provable lifecycle tie-down, preventing the goroutine-leak class the
// server's leak test only catches dynamically. A goroutine is considered
// tied when its body (or the body of the same-package function it invokes):
//
//   - calls Done on a sync.WaitGroup that some function in the package
//     Waits on (removing the wg.Wait() breaks the proof);
//   - blocks on a channel itself — a receive, a range over a channel, or a
//     select — so its lifetime is bounded by its own exit signal; or
//   - signals completion outward by sending on or closing a channel declared
//     outside the goroutine that some function in the package receives from
//     (removing the receive breaks the proof).
//
// Anything else must carry a `// detached: <reason>` annotation on the go
// statement explaining why it legitimately outlives structured supervision.
var GoroutineLife = &Analyzer{
	Name: "goroutinelife",
	Doc:  "every go statement must be tied to a WaitGroup, a channel signal, or a // detached: justification",
	Run:  runGoroutineLife,
}

func runGoroutineLife(pass *Pass) {
	waited, received := collectJoinPoints(pass)
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := goBody(pass, g, decls)
			if body == nil {
				pass.Report(g.Pos(), "goroutine body is not analyzable (func value or cross-package call); tie it down or annotate with // detached:")
				return true
			}
			if reason := untiedReason(pass, body, waited, received); reason != "" {
				pass.Report(g.Pos(), "goroutine has no lifecycle tie-down (%s); join it or annotate with // detached:", reason)
			}
			return true
		})
	}
}

// collectJoinPoints indexes, package-wide, the WaitGroups that are Waited on
// and the channels that are received from (plain receive, range, or select).
func collectJoinPoints(pass *Pass) (waited, received map[types.Object]bool) {
	waited = map[types.Object]bool{}
	received = map[types.Object]bool{}
	markRecv := func(e ast.Expr) {
		if o := baseObject(pass.Info, e); o != nil {
			received[o] = true
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				callee := calleeFunc(pass.Info, n)
				if callee != nil && callee.Name() == "Wait" && callee.Pkg() != nil && callee.Pkg().Path() == "sync" {
					if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
						if o := baseObject(pass.Info, sel.X); o != nil && isNamedType(o.Type(), "sync", "WaitGroup") {
							waited[o] = true
						}
					}
				}
			case *ast.UnaryExpr:
				if n.Op.String() == "<-" {
					markRecv(n.X)
				}
			case *ast.RangeStmt:
				if tv, ok := pass.Info.Types[n.X]; ok {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						markRecv(n.X)
					}
				}
			}
			return true
		})
	}
	return waited, received
}

// goBody resolves the statement's goroutine body: the literal itself for
// `go func(){...}()`, or the declaration body for a call to a same-package
// function or method.
func goBody(pass *Pass, g *ast.GoStmt, decls map[*types.Func]*ast.FuncDecl) *ast.BlockStmt {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		return lit.Body
	}
	if callee := calleeFunc(pass.Info, g.Call); callee != nil {
		if fd, ok := decls[callee]; ok {
			return fd.Body
		}
	}
	return nil
}

// untiedReason scans a goroutine body for a lifecycle tie and returns a
// description of what is missing ("" when tied).
func untiedReason(pass *Pass, body *ast.BlockStmt, waited, received map[types.Object]bool) string {
	var doneNoWait, sendNoRecv bool
	tied := false
	ast.Inspect(body, func(n ast.Node) bool {
		if tied {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectStmt:
			tied = true
		case *ast.RangeStmt:
			if tv, ok := pass.Info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					tied = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				tied = true
			}
		case *ast.SendStmt:
			if o := baseObject(pass.Info, n.Chan); o != nil {
				if received[o] {
					tied = true
				} else {
					sendNoRecv = true
				}
			}
		case *ast.CallExpr:
			callee := calleeFunc(pass.Info, n)
			if callee == nil {
				// close(ch) is a builtin, not a *types.Func.
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
					if o := baseObject(pass.Info, n.Args[0]); o != nil {
						if received[o] {
							tied = true
						} else {
							sendNoRecv = true
						}
					}
				}
				return true
			}
			if callee.Name() == "Done" && callee.Pkg() != nil && callee.Pkg().Path() == "sync" {
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
					if o := baseObject(pass.Info, sel.X); o != nil && isNamedType(o.Type(), "sync", "WaitGroup") {
						if waited[o] {
							tied = true
						} else {
							doneNoWait = true
						}
					}
				}
			}
		}
		return true
	})
	switch {
	case tied:
		return ""
	case doneNoWait:
		return "calls wg.Done but nothing in the package calls Wait on that WaitGroup"
	case sendNoRecv:
		return "signals a channel nothing in the package receives from"
	default:
		return "no WaitGroup.Done, channel receive/range/select, or completion signal in the body"
	}
}
