package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// GuardedBy enforces the machine-readable mutex annotation convention: a
// struct field whose comment says "guarded by <mu>" (where <mu> is a
// sync.Mutex or sync.RWMutex field of the same struct) may only be read or
// written in a function that locks <mu> on the same receiver expression
// before the access. Keyed composite-literal initialization is exempt — the
// value is not yet shared. The check is lexical (a Lock anywhere earlier in
// the same function body satisfies it), which is deliberately conservative
// in what it *requires*, not in what it proves: it catches the "forgot to
// lock at all" class, not every interleaving.
var GuardedBy = &Analyzer{
	Name: "guardedby",
	Doc:  "fields annotated 'guarded by mu' must be accessed with that mutex held",
	Run:  runGuardedBy,
}

var guardedByRe = regexp.MustCompile(`guarded by (\w+)`)

func runGuardedBy(pass *Pass) {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkGuardScope(pass, guards, fn.Body)
				}
			case *ast.FuncLit:
				checkGuardScope(pass, guards, fn.Body)
			}
			return true
		})
	}
}

// collectGuards maps each annotated field to the mutex field that guards
// it, reporting annotations that name a missing or non-mutex sibling.
func collectGuards(pass *Pass) map[*types.Var]*types.Var {
	guards := map[*types.Var]*types.Var{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				name := guardAnnotation(field)
				if name == "" {
					continue
				}
				mu := structFieldByName(pass.Info, st, name)
				if mu == nil || !isSyncMutex(mu.Type()) {
					pass.Report(field.Pos(), "'guarded by %s' names no sync.Mutex/RWMutex field of this struct", name)
					continue
				}
				for _, id := range field.Names {
					if v, ok := pass.Info.Defs[id].(*types.Var); ok {
						guards[v] = mu
					}
				}
			}
			return true
		})
	}
	return guards
}

func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

func structFieldByName(info *types.Info, st *ast.StructType, name string) *types.Var {
	for _, field := range st.Fields.List {
		for _, id := range field.Names {
			if id.Name == name {
				if v, ok := info.Defs[id].(*types.Var); ok {
					return v
				}
			}
		}
	}
	return nil
}

func isSyncMutex(t types.Type) bool {
	return isNamedType(t, "sync", "Mutex") || isNamedType(t, "sync", "RWMutex")
}

// lockEvent is one base.mu.Lock()/RLock() call inside a function scope.
type lockEvent struct {
	mu   *types.Var // the mutex field locked
	base string     // rendered receiver expression, e.g. "j" in j.mu.Lock()
	pos  token.Pos
}

// checkGuardScope verifies guarded-field accesses in one function body,
// treating nested function literals as separate scopes: a lock taken in the
// enclosing function proves nothing about a closure that runs later.
func checkGuardScope(pass *Pass, guards map[*types.Var]*types.Var, body *ast.BlockStmt) {
	var locks []lockEvent
	walkScope(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		callee := calleeFunc(pass.Info, call)
		if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync" {
			return
		}
		if callee.Name() != "Lock" && callee.Name() != "RLock" {
			return
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		muObj, _ := baseObject(pass.Info, sel.X).(*types.Var)
		if muObj == nil {
			return
		}
		base := ""
		if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
			base = types.ExprString(inner.X)
		}
		locks = append(locks, lockEvent{mu: muObj, base: base, pos: call.Pos()})
	})
	walkScope(body, func(n ast.Node) {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return
		}
		field, ok := pass.Info.Uses[sel.Sel].(*types.Var)
		if !ok {
			return
		}
		mu, guarded := guards[field]
		if !guarded {
			return
		}
		base := types.ExprString(sel.X)
		for _, l := range locks {
			if l.mu == mu && l.base == base && l.pos < sel.Pos() {
				return
			}
		}
		pass.Report(sel.Pos(), "%s.%s is guarded by %s.%s but accessed without locking it in this function",
			base, field.Name(), base, mu.Name())
	})
}

// walkScope visits body without descending into nested function literals.
func walkScope(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}
