// Package lint implements hetsynthlint, a suite of static analyzers that
// machine-check the repository's concurrency, resource and API conventions.
//
// The lexical generation (PR 3): context propagation into solver calls
// (ctxpropagate), mutex discipline on fields annotated "guarded by mu"
// (guardedby), goroutine lifecycle tie-down (goroutinelife), documentation
// contracts on exported solver APIs (apidoc), and discarded error returns
// (retval).
//
// The dataflow generation: sync.Pool ownership (poolsafe), cache pin
// pairing (pinpair), arena view containment (arenaescape), and all-or-
// nothing field atomicity (atomicfield) run an intraprocedural dataflow or
// whole-package type analysis over the same go/ast + go/types
// representation (see flow.go). The tenth analyzer, escapebudget, is a
// compiler-output gate: it holds every // hetsynth:hotpath function to the
// heap-escape budget committed in testdata/escapes.golden.
//
// The Analyzer/Pass shape deliberately mirrors golang.org/x/tools/go/analysis
// so the suite could migrate onto the upstream driver later; the module
// itself stays stdlib-only, so the driver (load.go) feeds analyzers from
// `go list -export` build-cache export data instead of go/packages.
//
// Findings are suppressed with a justification comment on the flagged line
// or the line above:
//
//	//hetsynth:ignore <analyzer> <reason>
//
// goroutinelife additionally accepts the dedicated detachment annotation
//
//	// detached: <why this goroutine outlives structured supervision>
//
// and poolsafe accepts the dedicated retention annotation
//
//	// hetsynth:pool-escape <why this pooled value legitimately outlives the function>
//
// All forms require a non-empty reason; a bare marker does not suppress.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer is one named check. Run inspects a single type-checked package
// through its Pass and reports findings via Pass.Report. A nil Run marks a
// whole-module gate (escapebudget) that the driver executes outside the
// per-package loop; RunPackage skips it.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// A Pass hands one type-checked package to one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, positioned and attributed to its analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding as file:line:col: message [analyzer].
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// All returns the full suite in deterministic order: the five lexical
// analyzers, the four dataflow analyzers, and the escape-budget gate.
func All() []*Analyzer {
	return []*Analyzer{
		CtxPropagate, GuardedBy, GoroutineLife, APIDoc, RetVal,
		PoolSafe, PinPair, ArenaEscape, AtomicField,
		EscapeBudgetAnalyzer,
	}
}

// Select resolves a comma-separated analyzer name list against the full
// suite; an empty list selects everything.
func Select(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// RunPackage runs the analyzers over one loaded package and returns the
// findings that survive suppression filtering, in position order.
func RunPackage(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	sup := collectSuppressions(pkg.Fset, pkg.Files)
	var out []Diagnostic
	for _, a := range analyzers {
		if a.Run == nil {
			continue // whole-module gates run in the driver, not per package
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
		}
		pass.report = func(d Diagnostic) {
			if !sup.suppressed(d) {
				out = append(out, d)
			}
		}
		a.Run(pass)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// Run loads the packages matched by patterns (resolved relative to dir) and
// runs the analyzers over each, returning all findings in position order.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	pkgs, err := Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		out = append(out, RunPackage(pkg, analyzers)...)
	}
	return out, nil
}

// ---- suppression comments ----

var (
	ignoreRe     = regexp.MustCompile(`//hetsynth:ignore\s+([a-z]+)\s+\S`)
	detachedRe   = regexp.MustCompile(`//\s*detached:\s*\S`)
	poolEscapeRe = regexp.MustCompile(`//\s*hetsynth:pool-escape\s+\S`)
)

// suppressions maps file → line → analyzer names suppressed on that line.
// The pseudo-names "detached" and "pool-escape" stand for the goroutinelife
// detachment marker and the poolsafe retention marker.
type suppressions map[string]map[int]map[string]bool

func collectSuppressions(fset *token.FileSet, files []*ast.File) suppressions {
	sup := suppressions{}
	add := func(pos token.Position, name string) {
		byLine := sup[pos.Filename]
		if byLine == nil {
			byLine = map[int]map[string]bool{}
			sup[pos.Filename] = byLine
		}
		if byLine[pos.Line] == nil {
			byLine[pos.Line] = map[string]bool{}
		}
		byLine[pos.Line][name] = true
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			// A marker suppresses from the comment group's last line, so a
			// justification wrapped over several comment lines still covers
			// the code line that follows the group.
			end := fset.Position(cg.End())
			for _, c := range cg.List {
				if m := ignoreRe.FindStringSubmatch(c.Text); m != nil {
					add(fset.Position(c.Pos()), m[1])
					add(end, m[1])
				}
				if detachedRe.MatchString(c.Text) {
					add(fset.Position(c.Pos()), "detached")
					add(end, "detached")
				}
				if poolEscapeRe.MatchString(c.Text) {
					add(fset.Position(c.Pos()), "pool-escape")
					add(end, "pool-escape")
				}
			}
		}
	}
	return sup
}

// suppressed reports whether d is covered by a justification comment on its
// own line or the line immediately above.
func (s suppressions) suppressed(d Diagnostic) bool {
	byLine := s[d.Pos.Filename]
	if byLine == nil {
		return false
	}
	names := d.Analyzer
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		if marks := byLine[line]; marks != nil {
			if marks[names] {
				return true
			}
			if d.Analyzer == GoroutineLife.Name && marks["detached"] {
				return true
			}
			if d.Analyzer == PoolSafe.Name && marks["pool-escape"] {
				return true
			}
		}
	}
	return false
}

// ---- shared AST / type helpers ----

// baseObject resolves the identifier or selector chain e to the object of
// its final component: `wg` → the var wg, `p.wg` → the field var wg. It
// returns nil for anything more exotic (calls, indexing, literals).
func baseObject(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if o := info.Uses[e]; o != nil {
			return o
		}
		return info.Defs[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

// isNamedType reports whether t (possibly behind a pointer) is the named
// type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// isCtxType reports whether t is context.Context.
func isCtxType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// hasCtxParam reports whether the function signature declares a
// context.Context parameter.
func hasCtxParam(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isCtxType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// calleeFunc resolves a call expression to the function or method object it
// statically invokes, or nil for builtins, conversions, and func values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}
