package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// This file caches `go list -deps -export` output between hetsynthlint
// invocations. Listing with -export is the expensive step of every lint run
// — it compiles export data for the whole dependency graph — and `make
// check` runs the binary several times (lint, escape gate), so re-exporting
// the world each time dominated the target's latency. The cache key covers
// everything that can change the listing: the go toolchain version, the
// go.mod contents, the exact pattern list, and the path/size/mtime of every
// .go file under the module root. Any edit to any Go file changes the key,
// so a hit is byte-identical to what go list would print. Cached entries
// whose export-data files have been pruned from the go build cache are
// discarded and regenerated.
//
// Entries live in <moduleRoot>/bin/lintcache (bin/ is gitignored). Set
// HETSYNTHLINT_NOCACHE=1 to bypass the cache entirely.

const listCacheMax = 16 // entries kept per module before pruning oldest

// goListCached is goList behind the metadata-keyed cache.
func goListCached(dir string, patterns []string) ([]listedPkg, error) {
	if os.Getenv("HETSYNTHLINT_NOCACHE") != "" {
		return goList(dir, patterns)
	}
	root := findModuleRoot(dir)
	if root == "" {
		return goList(dir, patterns)
	}
	key, err := listCacheKey(root, patterns)
	if err != nil {
		return goList(dir, patterns)
	}
	cachePath := filepath.Join(root, "bin", "lintcache", "list-"+key+".json")
	if pkgs, ok := readListCache(cachePath); ok {
		return pkgs, nil
	}
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	writeListCache(cachePath, pkgs)
	return pkgs, nil
}

// ModuleRoot locates the module root governing dir (the nearest ancestor
// directory containing go.mod), or "" when dir is outside any module. The
// driver uses it to resolve the default escape-budget baseline path.
func ModuleRoot(dir string) string { return findModuleRoot(dir) }

// findModuleRoot walks up from dir to the directory containing go.mod.
func findModuleRoot(dir string) string {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return ""
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return ""
		}
		dir = parent
	}
}

// listCacheKey hashes everything the listing depends on.
func listCacheKey(root string, patterns []string) (string, error) {
	h := sha256.New()
	fmt.Fprintln(h, runtime.Version())
	fmt.Fprintln(h, strings.Join(patterns, "\x00"))
	gomod, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	h.Write(gomod)
	var lines []string
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// bin holds build artifacts and this cache itself; .git churns on
			// every command. Neither affects go list output.
			if name := d.Name(); name == ".git" || (name == "bin" && filepath.Dir(path) == root) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		lines = append(lines, fmt.Sprintf("%s %d %d", rel, info.Size(), info.ModTime().UnixNano()))
		return nil
	})
	if err != nil {
		return "", err
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Fprintln(h, l)
	}
	return hex.EncodeToString(h.Sum(nil))[:32], nil
}

// readListCache loads a cached listing, rejecting it when any export-data
// file it references has been garbage-collected from the go build cache.
func readListCache(path string) ([]listedPkg, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	var pkgs []listedPkg
	if err := json.Unmarshal(data, &pkgs); err != nil {
		return nil, false
	}
	for _, p := range pkgs {
		if p.Export == "" {
			continue
		}
		if _, err := os.Stat(p.Export); err != nil {
			return nil, false
		}
	}
	return pkgs, true
}

// writeListCache persists a listing and prunes the cache directory to the
// newest listCacheMax entries. Failures are silent: the cache is an
// optimization, never a correctness dependency.
func writeListCache(path string, pkgs []listedPkg) {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	data, err := json.Marshal(pkgs)
	if err != nil {
		return
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return
	}
	pruneListCache(dir)
}

func pruneListCache(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	type aged struct {
		name string
		mod  int64
	}
	var files []aged
	for _, e := range entries {
		if e.IsDir() || !strings.HasPrefix(e.Name(), "list-") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, aged{e.Name(), info.ModTime().UnixNano()})
	}
	if len(files) <= listCacheMax {
		return
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mod > files[j].mod })
	for _, f := range files[listCacheMax:] {
		os.Remove(filepath.Join(dir, f.name))
	}
}
