package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
}

// goList shells out to `go list -deps -export -json` in dir and returns the
// decoded package stream. -export populates each package's build-cache
// export-data file, which is what lets the stdlib gc importer type-check
// against compiled dependencies without golang.org/x/tools.
func goList(dir string, patterns []string) ([]listedPkg, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// newImporter builds a types.Importer that resolves every import path
// through the export-data files go list reported.
func newImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	})
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// Load type-checks the packages matched by patterns, resolved relative to
// dir (a directory inside the module). Test files are excluded — the suite
// checks production code — and packages are returned in import-path order.
func Load(dir string, patterns []string) ([]*Package, error) {
	listed, err := goListCached(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	var targets []listedPkg
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := newImporter(fset, exports)
	var out []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: parse %s: %v", name, err)
			}
			files = append(files, f)
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		pkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: typecheck %s: %v", t.ImportPath, err)
		}
		out = append(out, &Package{
			Path:  t.ImportPath,
			Dir:   t.Dir,
			Fset:  fset,
			Files: files,
			Types: pkg,
			Info:  info,
		})
	}
	return out, nil
}

// LoadDir parses and type-checks every .go file in dir as one package whose
// imports are restricted to the standard library. It exists for analyzer
// fixtures (testdata/src/...), which live outside the module proper.
func LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	importSet := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			importSet[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no .go files in %s", dir)
	}
	exports := map[string]string{}
	if len(importSet) > 0 {
		var paths []string
		for p := range importSet {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		listed, err := goListCached(dir, paths)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	info := newInfo()
	conf := types.Config{Importer: newImporter(fset, exports)}
	name := files[0].Name.Name
	pkg, err := conf.Check(name, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck fixture %s: %v", dir, err)
	}
	return &Package{Path: name, Dir: dir, Fset: fset, Files: files, Types: pkg, Info: info}, nil
}
