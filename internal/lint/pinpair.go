package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PinPair checks the cache pin protocol: a successful acquire/getAcquired
// (its ok result true) and every putAcquired leave the caller holding an
// eviction-exempting pin that must be dropped with release on every path
// out of the function — including early error returns, the path lostcancel
// taught everyone to forget. Pins are matched by receiver expression (the
// cache being pinned), not by key expression: callers routinely stash the
// key in another variable between acquire and release, and pins on the same
// cache discharge interchangeably.
//
// Two deliberate accommodations keep the repository's correct idioms clean:
// a release under a condition counts for both sides of the merge (the
// `pinned` flag pattern — the flag's value is exactly "a pin is held", which
// this analysis cannot track through a bool), and a deferred closure that
// releases the receiver covers every later acquisition on it (the batch
// sweep's release-at-exit pattern). Early returns before any release are
// still reported, because the report happens per exit path, not at merges.
var PinPair = &Analyzer{
	Name: "pinpair",
	Doc:  "successful cache acquire/getAcquired and putAcquired must be paired with release on every path, including error returns",
	Run:  runPinPair,
}

const (
	pinLive uint8 = iota
	pinReleased
	pinCovered
)

type pinRes struct {
	state uint8
	what  string       // "acquire", "getAcquired" or "putAcquired"
	pos   token.Pos    // acquisition site
	okObj types.Object // the bool result var guarding this acquisition, if any
}

type pinState struct {
	pins     map[string]*pinRes // receiver expression → obligation
	deferred map[string]bool    // receivers released by a deferred closure
}

func runPinPair(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body == nil {
					return true
				}
				// A function that IS the protocol (a forwarding wrapper or
				// the cache implementation itself) hands its pin to the
				// caller by contract; analyzing it against the caller-side
				// rules would flag the protocol for existing.
				switch fn.Name.Name {
				case "acquire", "getAcquired", "putAcquired", "release":
					return false
				}
			case *ast.FuncLit:
				// Literals are reached through their enclosing declaration's
				// Inspect walk below; analyze them independently there.
			}
			if body := bodyOf(n); body != nil {
				c := &pinClient{pass: pass, okVars: map[types.Object]string{}}
				c.analyze(body)
			}
			return true
		})
	}
}

// bodyOf returns the body of a function declaration or literal node.
func bodyOf(n ast.Node) *ast.BlockStmt {
	switch fn := n.(type) {
	case *ast.FuncDecl:
		return fn.Body
	case *ast.FuncLit:
		return fn.Body
	}
	return nil
}

type pinClient struct {
	pass   *Pass
	okVars map[types.Object]string // ok-result var → receiver it guards
}

func (c *pinClient) analyze(body *ast.BlockStmt) {
	walkFlow(body, &pinState{pins: map[string]*pinRes{}, deferred: map[string]bool{}}, c)
}

func (c *pinClient) clone(st flowState) flowState {
	s := st.(*pinState)
	out := &pinState{
		pins:     make(map[string]*pinRes, len(s.pins)),
		deferred: make(map[string]bool, len(s.deferred)),
	}
	for k, r := range s.pins {
		cp := *r
		out.pins[k] = &cp
	}
	for k := range s.deferred {
		out.deferred[k] = true
	}
	return out
}

func (c *pinClient) join(a, b flowState) flowState {
	sa, sb := a.(*pinState), b.(*pinState)
	for k, rb := range sb.pins {
		ra, ok := sa.pins[k]
		if !ok {
			sa.pins[k] = rb
			continue
		}
		ra.state = joinPin(ra.state, rb.state)
	}
	for k := range sb.deferred {
		sa.deferred[k] = true
	}
	return sa
}

// joinPin is deliberately optimistic about releases: a release observed on
// either branch discharges the merged obligation, because the repository's
// `if pinned { release }` flag pattern makes the release conditional on
// exactly the condition under which the pin exists. Missing releases are
// caught where they actually bite — on exit paths reached with a live pin.
func joinPin(a, b uint8) uint8 {
	if a == pinCovered || b == pinCovered {
		return pinCovered
	}
	if a == pinReleased || b == pinReleased {
		return pinReleased
	}
	return pinLive
}

// pinMethod classifies a call as one of the pin-protocol methods and
// returns the receiver expression string, or "" when it is not one. Only
// method calls count — the protocol lives on cache types.
func pinMethod(info *types.Info, call *ast.CallExpr) (recv, name string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "acquire", "getAcquired", "putAcquired", "release":
	default:
		return "", ""
	}
	callee := calleeFunc(info, call)
	if callee == nil {
		return "", ""
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", ""
	}
	switch sel.Sel.Name {
	case "acquire", "getAcquired":
		// get-plus-pin: (value, ok) results.
		if sig.Results().Len() != 2 {
			return "", ""
		}
		if b, ok := sig.Results().At(1).Type().Underlying().(*types.Basic); !ok || b.Kind() != types.Bool {
			return "", ""
		}
	case "release":
		if sig.Params().Len() != 1 {
			return "", ""
		}
	case "putAcquired":
		if sig.Params().Len() != 2 {
			return "", ""
		}
	}
	return types.ExprString(sel.X), sel.Sel.Name
}

func (c *pinClient) transfer(stmt ast.Stmt, st flowState) {
	s := st.(*pinState)
	if d, ok := stmt.(*ast.DeferStmt); ok {
		c.handleDeferredRelease(d, s)
		return
	}
	// ok-var association: v, ok := recv.acquire(key).
	var okIdent *ast.Ident
	var okRecv string
	if as, ok := stmt.(*ast.AssignStmt); ok && len(as.Lhs) == 2 && len(as.Rhs) == 1 {
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
			if recv, name := pinMethod(c.pass.Info, call); name == "acquire" || name == "getAcquired" {
				if id, ok := as.Lhs[1].(*ast.Ident); ok && id.Name != "_" {
					okIdent, okRecv = id, recv
				}
			}
		}
	}
	walkShallow(stmt, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		recv, name := pinMethod(c.pass.Info, call)
		switch name {
		case "acquire", "getAcquired", "putAcquired":
			r := &pinRes{state: pinLive, what: name, pos: call.Pos()}
			if s.deferred[recv] {
				r.state = pinCovered
			}
			if okIdent != nil && recv == okRecv && name != "putAcquired" {
				if o := identVar(c.pass.Info, okIdent); o != nil {
					c.okVars[o] = recv
					r.okObj = o
				}
			}
			s.pins[recv] = r
		case "release":
			if r := s.pins[recv]; r != nil && r.state == pinLive {
				r.state = pinReleased
			}
		}
	})
}

// handleDeferredRelease covers a receiver for the rest of the function when
// a deferred call (or deferred closure) releases it: the release runs at
// every exit, whatever is pinned by then.
func (c *pinClient) handleDeferredRelease(d *ast.DeferStmt, s *pinState) {
	cover := func(call *ast.CallExpr) {
		if recv, name := pinMethod(c.pass.Info, call); name == "release" {
			s.deferred[recv] = true
			if r := s.pins[recv]; r != nil && r.state == pinLive {
				r.state = pinCovered
			}
		}
	}
	cover(d.Call)
	if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				cover(call)
			}
			return true
		})
	}
}

func (c *pinClient) use(expr ast.Expr, st flowState) {}

// refine models the ok result of a conditional acquisition: on the true
// branch the pin is definitely held; on the false branch the acquisition
// failed and there is nothing to release.
func (c *pinClient) refine(cond ast.Expr, negated bool, st flowState) {
	s := st.(*pinState)
	switch e := ast.Unparen(cond).(type) {
	case *ast.Ident:
		o := c.pass.Info.Uses[e]
		if o == nil {
			return
		}
		recv, ok := c.okVars[o]
		if !ok {
			return
		}
		if r := s.pins[recv]; r != nil && r.okObj == o && negated {
			delete(s.pins, recv) // acquire failed: no pin on this branch
		}
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			c.refine(e.X, !negated, st)
		}
	case *ast.BinaryExpr:
		// `a && b` true refines both; `a || b` false refines both.
		if (e.Op == token.LAND && !negated) || (e.Op == token.LOR && negated) {
			c.refine(e.X, negated, st)
			c.refine(e.Y, negated, st)
		}
	}
}

func (c *pinClient) atExit(ret *ast.ReturnStmt, st flowState) {
	s := st.(*pinState)
	for recv, r := range s.pins {
		if r.state != pinLive {
			continue
		}
		pos := r.pos
		if ret != nil {
			pos = ret.Pos()
		}
		c.pass.Report(pos, "pin taken by %s.%s is not released on this path (missing %s.release)", recv, r.what, recv)
		r.state = pinCovered
	}
}
