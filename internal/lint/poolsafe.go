package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolSafe proves the sync.Pool ownership discipline the zero-alloc hot
// path depends on: a value taken from a pool (directly via Pool.Get or
// through a same-package getter wrapper such as getBuf/getScratch) must be
// returned with Put — directly or through a putter wrapper — on every path
// out of the acquiring function, must never be used after it has been Put,
// and must not be retained in a struct field or escaping closure. Returning
// the value transfers ownership to the caller (that is what the getter
// wrappers themselves do), and a retention that is deliberate — a solver
// that keeps its pooled scratch until release() — must say so with
//
//	// hetsynth:pool-escape <reason>
//
// on the retaining line or the line above. The analysis is a forward
// dataflow walk (see flow.go): loop bodies are walked once and nested
// function literals are separate scopes, so a Put inside a maybe-executed
// branch downgrades the value to "may not be returned" rather than proving
// it safe.
var PoolSafe = &Analyzer{
	Name: "poolsafe",
	Doc:  "sync.Pool values must be Put on every path, never used after Put, and never retained without a pool-escape annotation",
	Run:  runPoolSafe,
}

// Pool-resource states. covered means the obligation is discharged for the
// rest of the function: a deferred Put runs at every exit, and an annotated
// escape or an ownership-transferring return ends local responsibility.
const (
	poolLive uint8 = iota
	poolReleased
	poolMaybe
	poolCovered
)

type poolRes struct {
	state uint8
	name  string
	pos   token.Pos // acquisition site
}

type poolState struct {
	res map[*types.Var]*poolRes
}

func (s *poolState) get(v *types.Var) *poolRes { return s.res[v] }

func runPoolSafe(pass *Pass) {
	c := &poolClient{
		pass:    pass,
		getters: map[*types.Func]bool{},
		putters: map[*types.Func]int{},
	}
	c.collectWrappers()
	for _, body := range functionBodies(pass) {
		c.analyze(body)
	}
}

// functionBodies returns every function body in the package — declarations
// and function literals — each analyzed as its own scope.
func functionBodies(pass *Pass) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					out = append(out, fn.Body)
				}
			case *ast.FuncLit:
				out = append(out, fn.Body)
			}
			return true
		})
	}
	return out
}

type poolClient struct {
	pass    *Pass
	getters map[*types.Func]bool // same-package wrappers that hand out a pooled value
	putters map[*types.Func]int  // same-package wrappers that recycle param #i
}

// isPoolMethod reports whether call invokes the named method on a
// sync.Pool receiver.
func isPoolMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	callee := calleeFunc(info, call)
	if callee == nil || callee.Name() != name || callee.Pkg() == nil || callee.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isNamedType(sig.Recv().Type(), "sync", "Pool")
}

// exprCore unwraps parens, type assertions and single-argument conversions
// down to the expression that produces the value.
func exprCore(info *types.Info, e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		case *ast.CallExpr:
			// A conversion is a call whose "function" is a type.
			if len(x.Args) == 1 {
				if tv, ok := info.Types[x.Fun]; ok && tv.IsType() {
					e = x.Args[0]
					continue
				}
			}
			return e
		default:
			return e
		}
	}
}

// isPoolGet reports whether e's core is a sync.Pool Get call or a call to a
// same-package getter wrapper.
func (c *poolClient) isPoolGet(e ast.Expr) bool {
	call, ok := exprCore(c.pass.Info, e).(*ast.CallExpr)
	if !ok {
		return false
	}
	if isPoolMethod(c.pass.Info, call, "Get") {
		return true
	}
	callee := calleeFunc(c.pass.Info, call)
	return callee != nil && c.getters[callee]
}

// putTarget resolves a call that recycles a pooled value — Pool.Put or a
// putter wrapper — to the variable being recycled, or nil.
func (c *poolClient) putTarget(call *ast.CallExpr) *types.Var {
	arg := -1
	if isPoolMethod(c.pass.Info, call, "Put") {
		arg = 0
	} else if callee := calleeFunc(c.pass.Info, call); callee != nil {
		if i, ok := c.putters[callee]; ok {
			arg = i
		}
	}
	if arg < 0 || arg >= len(call.Args) {
		return nil
	}
	v, _ := baseObject(c.pass.Info, exprCore(c.pass.Info, call.Args[arg])).(*types.Var)
	return v
}

// collectWrappers finds the package's getter and putter wrappers, so the
// analysis treats getBuf()/putBuf(b) exactly like bufPool.Get()/Put(b).
func (c *poolClient) collectWrappers() {
	for _, f := range c.pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := c.pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if c.returnsPoolGet(fd) {
				c.getters[fn] = true
			}
			if i := c.recyclesParam(fd); i >= 0 {
				c.putters[fn] = i
			}
		}
	}
}

// returnsPoolGet reports whether fd returns a value that came from a
// sync.Pool Get in its own body (directly or via one local variable).
func (c *poolClient) returnsPoolGet(fd *ast.FuncDecl) bool {
	fromGet := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Lhs {
			call, ok := exprCore(c.pass.Info, as.Rhs[i]).(*ast.CallExpr)
			if !ok || !isPoolMethod(c.pass.Info, call, "Get") {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if o := c.pass.Info.Defs[id]; o != nil {
					fromGet[o] = true
				} else if o := c.pass.Info.Uses[id]; o != nil {
					fromGet[o] = true
				}
			}
		}
		return true
	})
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, r := range ret.Results {
			core := exprCore(c.pass.Info, r)
			if call, ok := core.(*ast.CallExpr); ok && isPoolMethod(c.pass.Info, call, "Get") {
				found = true
			}
			if id, ok := core.(*ast.Ident); ok && fromGet[c.pass.Info.Uses[id]] {
				found = true
			}
		}
		return true
	})
	return found
}

// recyclesParam returns the index of the parameter fd passes to a sync.Pool
// Put, or -1.
func (c *poolClient) recyclesParam(fd *ast.FuncDecl) int {
	if fd.Type.Params == nil {
		return -1
	}
	var params []types.Object
	for _, field := range fd.Type.Params.List {
		for _, id := range field.Names {
			params = append(params, c.pass.Info.Defs[id])
		}
	}
	idx := -1
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isPoolMethod(c.pass.Info, call, "Put") || len(call.Args) != 1 {
			return true
		}
		o, _ := baseObject(c.pass.Info, exprCore(c.pass.Info, call.Args[0])).(types.Object)
		for i, p := range params {
			if p != nil && o == p {
				idx = i
			}
		}
		return true
	})
	return idx
}

func (c *poolClient) analyze(body *ast.BlockStmt) {
	walkFlow(body, &poolState{res: map[*types.Var]*poolRes{}}, c)
}

func (c *poolClient) clone(st flowState) flowState {
	s := st.(*poolState)
	out := &poolState{res: make(map[*types.Var]*poolRes, len(s.res))}
	for v, r := range s.res {
		cp := *r
		out.res[v] = &cp
	}
	return out
}

func (c *poolClient) join(a, b flowState) flowState {
	sa, sb := a.(*poolState), b.(*poolState)
	for v, rb := range sb.res {
		ra, ok := sa.res[v]
		if !ok {
			// Acquired on only one branch: the obligation travels with it.
			sa.res[v] = rb
			continue
		}
		ra.state = joinPool(ra.state, rb.state)
	}
	return sa
}

// joinPool is the must-release lattice: agreeing branches keep their state;
// a deferred/transferred Put paired with an explicit one stays discharged;
// everything else degrades to "maybe released", which is reported.
func joinPool(a, b uint8) uint8 {
	if a == b {
		return a
	}
	if (a == poolCovered && b == poolReleased) || (a == poolReleased && b == poolCovered) {
		return poolCovered
	}
	return poolMaybe
}

func (c *poolClient) refine(ast.Expr, bool, flowState) {}

func (c *poolClient) use(expr ast.Expr, st flowState) {
	c.scanUses(expr, st.(*poolState), nil)
}

func (c *poolClient) transfer(stmt ast.Stmt, st flowState) {
	s := st.(*poolState)
	consumed := map[ast.Node]bool{} // get/put calls and idents already handled
	switch n := stmt.(type) {
	case *ast.DeferStmt:
		c.handleDefer(n, s, consumed)
	case *ast.GoStmt:
		c.handleClosures(n, s, consumed)
	case *ast.AssignStmt:
		c.handleAssign(n, s, consumed)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					c.handleValueSpec(vs, s, consumed)
				}
			}
		}
	}
	c.handlePuts(stmt, s, consumed)
	c.handleEscapes(stmt, s, consumed)
	c.scanUses(stmt, s, consumed)
}

// handleAssign registers acquisitions (`v := getBuf()`) and flags stores of
// a live pooled value into a field or package variable.
func (c *poolClient) handleAssign(as *ast.AssignStmt, s *poolState, consumed map[ast.Node]bool) {
	if len(as.Lhs) == len(as.Rhs) {
		for i := range as.Lhs {
			rhs := as.Rhs[i]
			if c.isPoolGet(rhs) {
				call := exprCore(c.pass.Info, rhs).(*ast.CallExpr)
				if id, ok := as.Lhs[i].(*ast.Ident); ok {
					consumed[call] = true
					if id.Name == "_" {
						c.pass.Report(rhs.Pos(), "sync.Pool value is discarded and can never be returned to the pool")
						continue
					}
					v, _ := identVar(c.pass.Info, id).(*types.Var)
					if v != nil {
						s.res[v] = &poolRes{state: poolLive, name: id.Name, pos: rhs.Pos()}
					}
					continue
				}
				// Assigned straight into a field, map or slice element:
				// retained beyond the function's control.
				consumed[call] = true
				c.reportEscape(rhs.Pos(), "sync.Pool value is stored outside the acquiring function")
			}
		}
	}
	// Storing a live pooled value into a field or package variable.
	for i, lhs := range as.Lhs {
		var rhs ast.Expr
		if len(as.Lhs) == len(as.Rhs) {
			rhs = as.Rhs[i]
		} else if len(as.Rhs) == 1 {
			rhs = as.Rhs[0]
		} else {
			continue
		}
		if !c.escapingLHS(lhs) {
			continue
		}
		for v, r := range c.storedVars(rhs, s) {
			if r.state != poolCovered {
				c.reportEscape(rhs.Pos(), "pooled value %s is retained in a field or package variable", v.Name())
				r.state = poolCovered
			}
		}
	}
}

// storedVars collects the tracked variables whose POINTER rhs stores — a
// bare mention or an append argument — as opposed to a read or write
// through the pointer (`a.pts`, `b[i]`), which retains nothing.
func (c *poolClient) storedVars(rhs ast.Expr, s *poolState) map[*types.Var]*poolRes {
	// Idents serving as the base of a selector/index/slice are
	// dereferences, not stores of the pointer itself.
	deref := map[*ast.Ident]bool{}
	markBase := func(x ast.Expr) {
		if id, ok := exprCore(c.pass.Info, x).(*ast.Ident); ok {
			deref[id] = true
		}
	}
	walkShallow(rhs, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			markBase(n.X)
		case *ast.IndexExpr:
			markBase(n.X)
		case *ast.SliceExpr:
			markBase(n.X)
		}
	})
	out := map[*types.Var]*poolRes{}
	walkShallow(rhs, func(n ast.Node) {
		id, ok := n.(*ast.Ident)
		if !ok || deref[id] {
			return
		}
		if v, ok := c.pass.Info.Uses[id].(*types.Var); ok {
			if r := s.get(v); r != nil {
				out[v] = r
			}
		}
	})
	return out
}

func (c *poolClient) handleValueSpec(vs *ast.ValueSpec, s *poolState, consumed map[ast.Node]bool) {
	if len(vs.Names) != len(vs.Values) {
		return
	}
	for i, id := range vs.Names {
		if c.isPoolGet(vs.Values[i]) {
			call := exprCore(c.pass.Info, vs.Values[i]).(*ast.CallExpr)
			consumed[call] = true
			if v, ok := c.pass.Info.Defs[id].(*types.Var); ok {
				s.res[v] = &poolRes{state: poolLive, name: id.Name, pos: vs.Values[i].Pos()}
			}
		}
	}
}

// handleDefer discharges obligations recycled by a deferred Put — directly
// (`defer putBuf(b)`) or inside a deferred closure.
func (c *poolClient) handleDefer(d *ast.DeferStmt, s *poolState, consumed map[ast.Node]bool) {
	mark := func(call *ast.CallExpr) {
		if v := c.putTarget(call); v != nil {
			if r := s.get(v); r != nil {
				r.state = poolCovered
				consumed[call] = true
			}
		}
	}
	mark(d.Call)
	if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
		consumed[lit] = true // a deferred closure runs in-function; capture is not an escape
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				mark(call)
			}
			return true
		})
	}
}

// handlePuts marks explicit (non-deferred) recycles on this path.
func (c *poolClient) handlePuts(stmt ast.Stmt, s *poolState, consumed map[ast.Node]bool) {
	if _, isDefer := stmt.(*ast.DeferStmt); isDefer {
		return
	}
	walkShallow(stmt, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || consumed[call] {
			return
		}
		v := c.putTarget(call)
		if v == nil {
			return
		}
		if r := s.get(v); r != nil {
			if r.state == poolReleased {
				c.pass.Report(call.Pos(), "%s is returned to its sync.Pool twice on this path", r.name)
			}
			if r.state != poolCovered {
				r.state = poolReleased
			}
			consumed[call] = true
			consumed[exprCore(c.pass.Info, call.Args[putArgIndex(c, call)])] = true
		}
	})
}

func putArgIndex(c *poolClient, call *ast.CallExpr) int {
	if isPoolMethod(c.pass.Info, call, "Put") {
		return 0
	}
	if callee := calleeFunc(c.pass.Info, call); callee != nil {
		if i, ok := c.putters[callee]; ok {
			return i
		}
	}
	return 0
}

// handleEscapes flags pool gets that never bind to a local (composite
// literal fields, call arguments, appends into fields) and closures that
// capture a live pooled value.
func (c *poolClient) handleEscapes(stmt ast.Stmt, s *poolState, consumed map[ast.Node]bool) {
	walkShallow(stmt, func(n ast.Node) {
		if call, ok := n.(*ast.CallExpr); ok && !consumed[call] {
			if c.isPoolGetCall(call) {
				consumed[call] = true
				c.reportEscape(call.Pos(), "sync.Pool value is retained outside the acquiring function (field, argument, or composite literal)")
			}
		}
	})
	// Closures other than deferred ones: capturing a live pooled value means
	// the value may be used after the function (and its Put) has returned.
	ast.Inspect(stmt, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok || consumed[lit] {
			return true
		}
		consumed[lit] = true
		for v, r := range c.trackedIn(lit.Body, s) {
			if r.state != poolCovered {
				c.reportEscape(lit.Pos(), "pooled value %s is captured by a closure that may outlive it", v.Name())
				r.state = poolCovered
			}
		}
		return false
	})
}

// handleClosures treats `go func(){...}()` bodies as escapes for any live
// pooled value they capture.
func (c *poolClient) handleClosures(g *ast.GoStmt, s *poolState, consumed map[ast.Node]bool) {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		consumed[lit] = true
		for v, r := range c.trackedIn(lit.Body, s) {
			if r.state != poolCovered {
				c.reportEscape(lit.Pos(), "pooled value %s is captured by a goroutine", v.Name())
				r.state = poolCovered
			}
		}
	}
}

func (c *poolClient) isPoolGetCall(call *ast.CallExpr) bool {
	if isPoolMethod(c.pass.Info, call, "Get") {
		return true
	}
	callee := calleeFunc(c.pass.Info, call)
	return callee != nil && c.getters[callee]
}

// scanUses reports uses of a value after it has been returned to its pool.
func (c *poolClient) scanUses(node ast.Node, s *poolState, consumed map[ast.Node]bool) {
	walkShallow(node, func(n ast.Node) {
		id, ok := n.(*ast.Ident)
		if !ok || (consumed != nil && consumed[id]) {
			return
		}
		v, _ := c.pass.Info.Uses[id].(*types.Var)
		if v == nil {
			return
		}
		if r := s.get(v); r != nil && r.state == poolReleased {
			c.pass.Report(id.Pos(), "%s is used after being returned to its sync.Pool", r.name)
			r.state = poolCovered // one report per path is enough
		}
	})
}

func (c *poolClient) atExit(ret *ast.ReturnStmt, st flowState) {
	s := st.(*poolState)
	transferred := map[*types.Var]bool{}
	if ret != nil {
		for _, r := range ret.Results {
			walkShallow(r, func(n ast.Node) {
				if id, ok := n.(*ast.Ident); ok {
					if v, ok := c.pass.Info.Uses[id].(*types.Var); ok && s.get(v) != nil {
						transferred[v] = true
					}
				}
			})
		}
	}
	for v, r := range s.res {
		if transferred[v] {
			if r.state == poolReleased {
				c.pass.Report(ret.Pos(), "%s is returned to the caller after being Put back in its sync.Pool", r.name)
			}
			continue // ownership moves to the caller (the getter-wrapper pattern)
		}
		pos := r.pos
		if ret != nil {
			pos = ret.Pos()
		}
		switch r.state {
		case poolLive:
			c.pass.Report(pos, "%s taken from a sync.Pool is not returned with Put on this path", r.name)
			r.state = poolCovered
		case poolMaybe:
			c.pass.Report(pos, "%s taken from a sync.Pool may not be returned with Put on every path to this exit", r.name)
			r.state = poolCovered
		}
	}
}

// trackedIn collects the live tracked variables referenced anywhere in n
// (including nested literals — capture is capture).
func (c *poolClient) trackedIn(n ast.Node, s *poolState) map[*types.Var]*poolRes {
	out := map[*types.Var]*poolRes{}
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if v, ok := c.pass.Info.Uses[id].(*types.Var); ok {
				if r := s.get(v); r != nil {
					out[v] = r
				}
			}
		}
		return true
	})
	return out
}

// reportEscape emits an escape finding; the site can be justified with the
// dedicated `// hetsynth:pool-escape <reason>` annotation (see lint.go).
func (c *poolClient) reportEscape(pos token.Pos, format string, args ...any) {
	c.pass.Report(pos, format+"; Put it on every path or annotate with // hetsynth:pool-escape <reason>", args...)
}

// escapingLHS reports whether assigning to lhs stores the value beyond the
// function: a struct field, a package-level variable, or an element of
// either.
func (c *poolClient) escapingLHS(lhs ast.Expr) bool {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		v, ok := c.pass.Info.Uses[x.Sel].(*types.Var)
		return ok && v.IsField()
	case *ast.Ident:
		v, ok := c.pass.Info.Uses[x].(*types.Var)
		return ok && v.Parent() == c.pass.Pkg.Scope()
	case *ast.IndexExpr:
		return c.escapingLHS(x.X)
	case *ast.StarExpr:
		return c.escapingLHS(x.X)
	}
	return false
}

// identVar resolves an identifier to its object, defining or using.
func identVar(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

// walkShallow visits n's subtree without descending into nested function
// literals — those are separate analysis scopes.
func walkShallow(n ast.Node, visit func(ast.Node)) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if m != nil {
			visit(m)
		}
		return true
	})
}
