package lint

import (
	"go/ast"
	"go/types"
)

// RetVal flags error returns discarded with the blank identifier. Production
// code may not write `_ = f()` or `v, _ := g()` when the discarded value is
// an error: either handle it or carry a `//hetsynth:ignore retval <reason>`
// justification. Test files are out of scope (the suite never loads them).
var RetVal = &Analyzer{
	Name: "retval",
	Doc:  "error returns must not be discarded with _ outside tests",
	Run:  runRetVal,
}

func runRetVal(pass *Pass) {
	errType := types.Universe.Lookup("error").Type()
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name != "_" {
					continue
				}
				if t := discardedType(pass.Info, as, i); t != nil && types.Identical(t, errType) {
					pass.Report(id.Pos(), "error result discarded with _; handle it or annotate //hetsynth:ignore retval")
				}
			}
			return true
		})
	}
}

// discardedType resolves the type flowing into the i-th assignment target,
// unpacking the tuple of a single multi-value call on the right-hand side.
func discardedType(info *types.Info, as *ast.AssignStmt, i int) types.Type {
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		tv, ok := info.Types[as.Rhs[0]]
		if !ok {
			return nil
		}
		tuple, ok := tv.Type.(*types.Tuple)
		if !ok || i >= tuple.Len() {
			return nil
		}
		return tuple.At(i).Type()
	}
	if i < len(as.Rhs) {
		if tv, ok := info.Types[as.Rhs[i]]; ok {
			return tv.Type
		}
	}
	return nil
}
