package lint

import "testing"

// TestSuiteCleanOnRepo is the meta-check behind `make lint`: the full
// analyzer suite, run over the repository itself, must report nothing. Any
// new finding either reveals a real invariant violation to fix or needs an
// explicit justification comment at the site.
func TestSuiteCleanOnRepo(t *testing.T) {
	diags, err := Run("../..", []string{"./..."}, All())
	if err != nil {
		t.Fatalf("running suite on repo: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Fatalf("hetsynthlint must exit clean on the repository: %d finding(s)", len(diags))
	}
}

// TestSelect covers the -only flag's analyzer resolution.
func TestSelect(t *testing.T) {
	all, err := Select("")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("Select(\"\") = %d analyzers, err %v; want the full suite", len(all), err)
	}
	two, err := Select("retval, guardedby")
	if err != nil || len(two) != 2 || two[0] != RetVal || two[1] != GuardedBy {
		t.Fatalf("Select(\"retval, guardedby\") = %v, err %v", two, err)
	}
	if _, err := Select("nosuch"); err == nil {
		t.Fatal("Select(\"nosuch\") should fail")
	}
}
