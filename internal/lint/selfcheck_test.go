package lint

import "testing"

// TestSuiteCleanOnRepo is the meta-check behind `make lint`: the full
// analyzer suite — including the poolsafe/pinpair/arenaescape/atomicfield
// dataflow generation — run over the repository itself, must report
// nothing. Any new finding either reveals a real invariant violation to fix
// or needs an explicit justification comment at the site. The escapebudget
// gate has no per-package Run and is exercised separately by
// TestEscapeBudgetCleanOnRepo.
func TestSuiteCleanOnRepo(t *testing.T) {
	suite := All()
	want := []string{
		"ctxpropagate", "guardedby", "goroutinelife", "apidoc", "retval",
		"poolsafe", "pinpair", "arenaescape", "atomicfield", "escapebudget",
	}
	if len(suite) != len(want) {
		t.Fatalf("All() = %d analyzers, want %d", len(suite), len(want))
	}
	for i, a := range suite {
		if a.Name != want[i] {
			t.Fatalf("All()[%d] = %s, want %s", i, a.Name, want[i])
		}
	}
	diags, err := Run("../..", []string{"./..."}, suite)
	if err != nil {
		t.Fatalf("running suite on repo: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Fatalf("hetsynthlint must exit clean on the repository: %d finding(s)", len(diags))
	}
}

// TestSelect covers the -only flag's analyzer resolution.
func TestSelect(t *testing.T) {
	all, err := Select("")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("Select(\"\") = %d analyzers, err %v; want the full suite", len(all), err)
	}
	two, err := Select("retval, guardedby")
	if err != nil || len(two) != 2 || two[0] != RetVal || two[1] != GuardedBy {
		t.Fatalf("Select(\"retval, guardedby\") = %v, err %v", two, err)
	}
	if _, err := Select("nosuch"); err == nil {
		t.Fatal("Select(\"nosuch\") should fail")
	}
}
