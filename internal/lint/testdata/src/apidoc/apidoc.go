// Package apidoc is the apidoc fixture: exported API with present, absent,
// misnamed, and contract-free doc comments.
package apidoc

// Solution is a solver result, mirroring hap.Solution's shape.
type Solution struct{ Cost int }

type Config struct{} // want `exported type Config must have a doc comment`

// Good finds the optimal solution by dynamic programming in O(n) time.
func Good(n int) (Solution, error) { return Solution{}, nil }

// Heuristic is a greedy baseline.
func Heuristic(n int) (Solution, error) { return Solution{}, nil }

func Undocumented() {} // want `exported function Undocumented must have a doc comment`

// Vague does something to the problem, somehow.
func Vague(n int) (Solution, error) { return Solution{}, nil } // want `solver API Vague must document its complexity or algorithmic contract`

// Something misleading: the doc does not start with the declared name.
func Misnamed() {} // want `doc comment for Misnamed should start with "Misnamed"`

// internal helpers are exempt however they look.
func helper() {}

type hidden struct{}

func (hidden) NoDoc() {}

// Widget is an exported type with documented and undocumented methods.
type Widget struct{}

// Weight reports the widget's weight.
func (Widget) Weight() int { return 0 }

func (Widget) Height() int { return 0 } // want `exported method Height must have a doc comment`
