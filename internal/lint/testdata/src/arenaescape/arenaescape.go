// Package arenaescape is the arenaescape fixture: slices over curveArena
// points must pin capacity with full-slice expressions, and arena views
// must not be stored beyond the solver that owns the arena.
package arenaescape

type curvePoint struct{ t, c int }

type curveArena struct{ pts []curvePoint }

type solver struct {
	arenas []*curveArena
	keep   []curvePoint
}

var leaked []curvePoint

// curveOf is a view producer: it returns arena-backed points (full-sliced,
// so the view's capacity is pinned).
func (s *solver) curveOf(off, n, ar int) []curvePoint {
	pts := s.arenas[ar].pts
	return pts[off : off+n : off+n]
}

// reset rewrites the pts field itself — arena management, exempt from the
// full-slice rule.
func (s *solver) reset(ar int) {
	a := s.arenas[ar]
	a.pts = a.pts[:0]
}

// copyOut materializes a curve as an owned slice; copying is the sanctioned
// way to keep points past the solver.
func (s *solver) copyOut(off, n, ar int) []curvePoint {
	pts := s.arenas[ar].pts
	out := make([]curvePoint, n)
	copy(out, pts[off:off+n:off+n])
	return out
}

func (s *solver) twoIndex(off, n, ar int) {
	pts := s.arenas[ar].pts
	_ = pts[off : off+n] // want `full-slice expression`
}

func (s *solver) storeField(off, n, ar int) {
	s.keep = s.curveOf(off, n, ar) // want `stored beyond the solver`
}

func (s *solver) storeFieldAlias(off, n, ar int) {
	v := s.curveOf(off, n, ar)
	s.keep = v // want `stored beyond the solver`
}

func (s *solver) storeGlobal(ar int) {
	leaked = s.arenas[ar].pts[0:1:1] // want `stored beyond the solver`
}

func (s *solver) send(ch chan []curvePoint, ar int) {
	ch <- s.arenas[ar].pts[0:1:1] // want `sent on a channel`
}

// View leaks a view across the package boundary, where no caller can know
// the slice dies with the solver.
func (s *solver) View(ar int) []curvePoint {
	return s.arenas[ar].pts[0:1:1] // want `exported function returns an arena-backed view`
}
