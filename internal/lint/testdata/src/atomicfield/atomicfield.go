// Package atomicfield is the atomicfield fixture: a struct field accessed
// via call-style sync/atomic anywhere must never be read or written plainly
// elsewhere.
package atomicfield

import "sync/atomic"

type counters struct {
	hits  int64
	total int64
}

func (c *counters) bump() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counters) read() int64 {
	return atomic.LoadInt64(&c.hits)
}

func (c *counters) race() int64 {
	return c.hits // want `plain access races`
}

func (c *counters) raceWrite() {
	c.hits = 0 // want `plain access races`
}

// total is never touched atomically; plain access is fine.
func (c *counters) plainOnly() int64 {
	c.total++
	return c.total
}

// typed atomics are immune by construction: their value can only be touched
// through methods.
type typed struct{ n atomic.Int64 }

func (t *typed) ok() int64 {
	t.n.Add(1)
	return t.n.Load()
}

// swap and CAS count as atomic accesses too.
type state struct{ flag uint32 }

func (s *state) set() bool {
	return atomic.CompareAndSwapUint32(&s.flag, 0, 1)
}

func (s *state) peek() uint32 {
	return s.flag // want `plain access races`
}
