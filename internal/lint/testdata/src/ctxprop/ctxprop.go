// Package ctxprop is the ctxpropagate fixture: solver pairs with and
// without Ctx/Context variants, called from context-carrying functions.
package ctxprop

import "context"

func solve(n int) int { return n }

func solveCtx(ctx context.Context, n int) int {
	if ctx.Err() != nil {
		return 0
	}
	return n
}

// lonely has no context sibling, so calling it anywhere is fine.
func lonely(n int) int { return n }

func good(ctx context.Context, n int) int { return solveCtx(ctx, n) }

func bad(ctx context.Context, n int) int {
	return solve(n) // want `call to solve drops the in-scope context; use solveCtx`
}

func callsLonely(ctx context.Context, n int) int {
	return lonely(n)
}

// wrapper is the blessed pattern: a non-context function may delegate to
// whatever it wants.
func wrapper(n int) int { return solve(n) }

type engine struct{}

func (engine) run(n int) int { return n }

func (engine) runContext(ctx context.Context, n int) int { return n }

func methodBad(ctx context.Context, e engine) int {
	return e.run(1) // want `call to run drops the in-scope context; use runContext`
}

func nestedLiteral(ctx context.Context) func() int {
	return func() int {
		return solve(1) // want `call to solve drops the in-scope context; use solveCtx`
	}
}

func suppressedCall(ctx context.Context, n int) int {
	//hetsynth:ignore ctxpropagate deliberately detached from the request context
	return solve(n)
}
