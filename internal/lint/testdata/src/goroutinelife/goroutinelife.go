// Package goroutinelife is the goroutinelife fixture: goroutines with and
// without a provable lifecycle tie-down.
package goroutinelife

import "sync"

func waited() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done() }()
	wg.Wait()
}

// leakWG is deliberately never Waited on.
var leakWG sync.WaitGroup

func leaky() {
	leakWG.Add(1)
	go func() { defer leakWG.Done() }() // want `nothing in the package calls Wait on that WaitGroup`
}

func doneChannel() {
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}

// orphan is deliberately never received from.
var orphan = make(chan struct{})

func orphanSignal() {
	go func() { close(orphan) }() // want `signals a channel nothing in the package receives from`
}

func resultChannel() error {
	errc := make(chan error, 1)
	go func() { errc <- nil }()
	return <-errc
}

func selectLoop(stop <-chan struct{}, work <-chan int) {
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-work:
			}
		}
	}()
}

func rangeLoop(jobs chan int) {
	go func() {
		for range jobs {
		}
	}()
}

func bare() {
	go func() {}() // want `no WaitGroup.Done, channel receive/range/select, or completion signal`
}

func detachedOK() {
	// detached: process-lifetime flusher, torn down with the process.
	go func() {
		for {
		}
	}()
}

// looper exercises the `go method()` form: the analyzer follows the call to
// the same-package declaration body.
type looper struct {
	wg sync.WaitGroup
	ch chan int
}

func (l *looper) run() {
	defer l.wg.Done()
	for range l.ch {
	}
}

func (l *looper) start() {
	l.wg.Add(1)
	go l.run()
}

func (l *looper) stop() {
	close(l.ch)
	l.wg.Wait()
}

func crossPackage() {
	go notAnalyzable() // want `goroutine body is not analyzable`
}

var notAnalyzable = func() {}
