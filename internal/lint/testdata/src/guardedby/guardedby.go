// Package guardedby is the guardedby fixture: annotated fields accessed
// with and without their mutex held.
package guardedby

import "sync"

type counter struct {
	mu   sync.Mutex
	n    int  // guarded by mu
	free bool // unannotated: never checked
}

type store struct {
	rw   sync.RWMutex
	vals map[string]int // guarded by rw
}

type broken struct {
	x int // guarded by lk -- want `'guarded by lk' names no sync.Mutex/RWMutex field of this struct`
}

func newCounter() *counter {
	// Keyed composite-literal initialization is exempt: not shared yet.
	return &counter{n: 1}
}

func (c *counter) goodInc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func (c *counter) badRead() int {
	return c.n // want `c\.n is guarded by c\.mu but accessed without locking it`
}

func (c *counter) freeRead() bool { return c.free }

func (s *store) goodGet(k string) int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.vals[k]
}

func (s *store) badPut(k string, v int) {
	s.vals[k] = v // want `s\.vals is guarded by s\.rw but accessed without locking it`
}

// closureLeak proves scope separation: the enclosing Lock does not license
// an access inside a literal that may run after Unlock.
func (c *counter) closureLeak() func() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return func() int {
		return c.n // want `c\.n is guarded by c\.mu but accessed without locking it`
	}
}

func otherBase(a, b *counter) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.n++
	b.n++ // want `b\.n is guarded by b\.mu but accessed without locking it`
}

func (c *counter) suppressed() int {
	//hetsynth:ignore guardedby snapshot read tolerated for metrics
	return c.n
}
