// Package pinpair is the pinpair fixture: a successful acquire (ok true)
// and every putAcquired must be paired with release on every path out of
// the function, including early error returns.
package pinpair

import "errors"

var errFail = errors.New("fail")

type cache struct{ m map[string]any }

// The protocol's own implementation hands pins to its callers by contract
// and is exempt from the caller-side rules.
func (c *cache) acquire(key string) (any, bool) { v, ok := c.m[key]; return v, ok }
func (c *cache) putAcquired(key string, v any)  { c.m[key] = v }
func (c *cache) release(key string)             { delete(c.m, key) }

func good(c *cache, k string) {
	if v, ok := c.acquire(k); ok {
		_ = v
		c.release(k)
	}
}

func goodFlag(c *cache, k string) {
	pinned := false
	if _, ok := c.acquire(k); ok {
		pinned = true
	}
	if pinned {
		c.release(k)
	}
}

func goodDefer(c *cache, keys []string) {
	held := ""
	defer func() {
		if held != "" {
			c.release(held)
		}
	}()
	for _, k := range keys {
		if _, ok := c.acquire(k); ok {
			held = k
		}
	}
}

func goodPutAcquired(c *cache, k string) {
	c.putAcquired(k, 1)
	c.release(k)
}

func goodFailedAcquire(c *cache, k string) {
	v, ok := c.acquire(k)
	if !ok {
		return // acquire failed: nothing to release
	}
	_ = v
	c.release(k)
}

func missingRelease(c *cache, k string) {
	if v, ok := c.acquire(k); ok { // want `not released on this path`
		_ = v
	}
}

func earlyReturn(c *cache, k string, fail bool) error {
	v, ok := c.acquire(k)
	if !ok {
		return nil
	}
	_ = v
	if fail {
		return errFail // want `not released on this path`
	}
	c.release(k)
	return nil
}

func putAcquiredLeak(c *cache, k string) {
	c.putAcquired(k, 1) // want `not released on this path`
}

func wrongCache(a, b *cache, k string) {
	if _, ok := a.acquire(k); ok { // want `missing a\.release`
		b.release(k)
	}
}
