// Package poolsafe is the poolsafe fixture: sync.Pool values must be Put on
// every path out of the acquiring function, never used after Put, and never
// retained in a field or closure without a pool-escape annotation.
package poolsafe

import (
	"bytes"
	"errors"
	"sync"
)

var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// getBuf is a getter wrapper: returning the pooled value transfers
// ownership to the caller, so the wrapper itself is clean.
func getBuf() *bytes.Buffer {
	b := bufPool.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

func putBuf(b *bytes.Buffer) { bufPool.Put(b) }

func good() {
	b := getBuf()
	b.WriteString("x")
	putBuf(b)
}

func goodDefer() error {
	b := getBuf()
	defer putBuf(b)
	b.WriteString("x")
	return nil
}

func goodDirect() {
	b := bufPool.Get().(*bytes.Buffer)
	b.Reset()
	bufPool.Put(b)
}

func goodLoop() {
	for i := 0; i < 3; i++ {
		b := getBuf()
		putBuf(b)
	}
}

func goodSwitch(n int) {
	b := getBuf()
	switch n {
	case 1:
		putBuf(b)
	default:
		putBuf(b)
	}
}

func missingPut() {
	b := getBuf() // want `not returned with Put on this path`
	b.WriteString("x")
}

func earlyReturn(fail bool) error {
	b := getBuf()
	if fail {
		return errors.New("x") // want `not returned with Put on this path`
	}
	putBuf(b)
	return nil
}

func maybePut(cond bool) {
	b := getBuf() // want `may not be returned with Put on every path`
	if cond {
		putBuf(b)
	}
}

func useAfterPut() {
	b := getBuf()
	putBuf(b)
	b.WriteString("x") // want `used after being returned to its sync.Pool`
}

func doublePut() {
	b := getBuf()
	putBuf(b)
	putBuf(b) // want `returned to its sync.Pool twice`
}

func discarded() {
	_ = getBuf() // want `discarded`
}

type holder struct{ buf *bytes.Buffer }

var global *bytes.Buffer

func escapeField(h *holder) {
	h.buf = getBuf() // want `stored outside the acquiring function`
}

func escapeVar() {
	b := getBuf()
	global = b // want `retained in a field or package variable`
}

func escapeClosure() {
	b := getBuf()
	f := func() { b.Reset() } // want `captured by a closure`
	f()
}

func escapeGo() {
	b := getBuf()
	go func() { putBuf(b) }() // want `captured by a goroutine`
}

// newHolder retains its pooled buffer deliberately; the annotation takes
// responsibility for recycling it elsewhere.
func newHolder() *holder {
	h := &holder{
		// hetsynth:pool-escape held until the holder is closed
		buf: getBuf(),
	}
	return h
}

// throughPointer writes through the pooled pointer's fields — that is use,
// not retention, and must stay clean.
type slab struct{ b []byte }

var slabPool = sync.Pool{New: func() any { return new(slab) }}

func getSlab() *slab {
	s := slabPool.Get().(*slab)
	s.b = s.b[:0]
	return s
}
