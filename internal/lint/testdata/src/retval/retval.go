// Package retval is the retval fixture: error returns discarded with the
// blank identifier versus handled or justified ones.
package retval

import "errors"

func fail() error { return errors.New("boom") }

func pair() (int, error) { return 0, errors.New("boom") }

func handled() error { return fail() }

func bad() {
	_ = fail() // want `error result discarded with _`
}

func badPair() int {
	n, _ := pair() // want `error result discarded with _`
	return n
}

func badReassign(n int) int {
	var err error
	n, err = pair()
	_ = err // want `error result discarded with _`
	return n
}

func suppressed() {
	//hetsynth:ignore retval fixture demonstrates the justification form
	_ = fail()
}

func nonError() int {
	n, _ := 1, "ignored string"
	_ = struct{}{}
	return n
}
