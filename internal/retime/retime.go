// Package retime implements Leiserson–Saxe retiming for cyclic data-flow
// graphs, the classic transformation the paper's framework sits on top of
// (its §1 cites rotation scheduling, a retiming-based loop pipeliner, as
// the surrounding literature; combining retiming with heterogeneous
// assignment is the natural extension).
//
// A retiming r assigns an integer lag to every node; edge delays become
// d_r(u→v) = d(u→v) + r(v) − r(u). Retiming preserves the input/output
// behavior of the DFG while redistributing the delays (registers), which
// can shorten the cycle period — the longest zero-delay path, i.e. the
// minimum schedule length of one loop iteration without resource limits.
//
// The implementation uses the FEAS feasibility test (relaxation over at
// most |V|−1 rounds) and a binary search over candidate periods. Node
// execution times come from the heterogeneous-assignment layer, so one can
// retime under the times of a particular FU assignment (see
// examples/retiming).
package retime

import (
	"errors"
	"fmt"

	"hetsynth/internal/dfg"
)

// Period returns the cycle period of g under the given node times: the
// maximum total execution time of a zero-delay path.
func Period(g *dfg.Graph, times []int) (int, error) {
	length, _, err := g.LongestPath(times)
	return length, err
}

// Apply returns a copy of g retimed by r, or an error if r is illegal
// (some edge would end up with negative delays, or a self-loop would lose
// its last delay — both would make the graph unschedulable).
func Apply(g *dfg.Graph, r []int) (*dfg.Graph, error) {
	if len(r) != g.N() {
		return nil, fmt.Errorf("retime: retiming covers %d nodes, graph has %d", len(r), g.N())
	}
	out := dfg.New()
	for _, n := range g.Nodes() {
		if _, err := out.AddNode(n.Name, n.Op); err != nil {
			return nil, err
		}
	}
	for _, e := range g.Edges() {
		d := e.Delays + r[e.To] - r[e.From]
		if d < 0 {
			return nil, fmt.Errorf("retime: edge %s->%s would carry %d delays",
				g.Node(e.From).Name, g.Node(e.To).Name, d)
		}
		if err := out.AddEdge(e.From, e.To, d); err != nil {
			return nil, err
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("retime: retimed graph invalid: %w", err)
	}
	return out, nil
}

// Feasible runs the FEAS test: it reports whether some retiming achieves
// cycle period at most c, and returns one such retiming when it exists.
//
// FEAS relaxes for |V|−1 rounds: in each round it computes, per node, the
// longest zero-delay-path time Δ(v) ending at v in the currently retimed
// graph and increments r(v) wherever Δ(v) > c. Incrementing r(v) pushes a
// delay from v's outgoing edges to its incoming ones; a zero-delay
// successor w of an incremented v always has Δ(w) > c too (its path runs
// through v), so w is incremented in the same round and no edge ever goes
// negative.
func Feasible(g *dfg.Graph, times []int, c int) (r []int, ok bool, err error) {
	if len(times) != g.N() {
		return nil, false, fmt.Errorf("retime: %d times for %d nodes", len(times), g.N())
	}
	for v, t := range times {
		if t < 1 {
			return nil, false, fmt.Errorf("retime: node %d has execution time %d (< 1)", v, t)
		}
		if t > c {
			return nil, false, nil // a single node already exceeds c
		}
	}
	if err := g.Validate(); err != nil {
		return nil, false, err
	}
	r = make([]int, g.N())
	cur := g
	for round := 0; round < g.N()-1; round++ {
		delta, err := arrivalTimes(cur, times)
		if err != nil {
			return nil, false, err
		}
		changed := false
		for v := range delta {
			if delta[v] > c {
				r[v]++
				changed = true
			}
		}
		if !changed {
			return r, true, nil
		}
		cur, err = Apply(g, r)
		if err != nil {
			// Unreachable per the invariant documented above.
			return nil, false, err
		}
	}
	period, err := Period(cur, times)
	if err != nil {
		return nil, false, err
	}
	if period <= c {
		return r, true, nil
	}
	return nil, false, nil
}

// arrivalTimes computes Δ(v): the largest total execution time over
// zero-delay paths ending at v.
func arrivalTimes(g *dfg.Graph, times []int) ([]int, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	delta := make([]int, g.N())
	for _, v := range order {
		delta[v] = times[v]
		for _, u := range g.Pred(v) {
			if d := delta[u] + times[v]; d > delta[v] {
				delta[v] = d
			}
		}
	}
	return delta, nil
}

// Minimize finds a retiming with the minimum achievable cycle period via
// binary search between the largest single-node time (no period can be
// smaller) and the current period, and returns the retimed graph, the
// retiming vector and the achieved period.
func Minimize(g *dfg.Graph, times []int) (*dfg.Graph, []int, int, error) {
	current, err := Period(g, times)
	if err != nil {
		return nil, nil, 0, err
	}
	if g.N() == 0 {
		return nil, nil, 0, errors.New("retime: empty graph")
	}
	lo := 0
	for _, t := range times {
		if t > lo {
			lo = t
		}
	}
	hi := current
	bestR := make([]int, g.N())
	bestC := current
	for lo < hi {
		mid := (lo + hi) / 2
		r, ok, err := Feasible(g, times, mid)
		if err != nil {
			return nil, nil, 0, err
		}
		if ok {
			bestR, bestC = r, mid
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	// lo == hi is the minimal feasible period; bestR/bestC track the last
	// success, which is exactly lo unless no search step succeeded (then
	// the identity retiming at the current period stands).
	if bestC > lo {
		if r, ok, err := Feasible(g, times, lo); err != nil {
			return nil, nil, 0, err
		} else if ok {
			bestR, bestC = r, lo
		}
	}
	out, err := Apply(g, bestR)
	if err != nil {
		return nil, nil, 0, err
	}
	return out, bestR, bestC, nil
}
