package retime

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hetsynth/internal/dfg"
)

// correlator builds the textbook Leiserson–Saxe example shape: a cycle of
// compute nodes where all delays sit on one back edge, so retiming can
// spread them and cut the period.
func correlator() (*dfg.Graph, []int) {
	g := dfg.New()
	a := g.MustAddNode("a", "add")
	b := g.MustAddNode("b", "add")
	c := g.MustAddNode("c", "add")
	d := g.MustAddNode("d", "add")
	g.MustAddEdge(a, b, 0)
	g.MustAddEdge(b, c, 0)
	g.MustAddEdge(c, d, 0)
	g.MustAddEdge(d, a, 3) // three registers on the feedback
	return g, []int{1, 1, 1, 1}
}

func TestPeriodOfCorrelator(t *testing.T) {
	g, times := correlator()
	p, err := Period(g, times)
	if err != nil {
		t.Fatal(err)
	}
	if p != 4 {
		t.Fatalf("period = %d, want 4", p)
	}
}

func TestMinimizeCutsCorrelatorToUnitPeriod(t *testing.T) {
	g, times := correlator()
	out, r, c, err := Minimize(g, times)
	if err != nil {
		t.Fatal(err)
	}
	// With three delays on a four-node unit-time cycle, every node can be
	// separated: the optimum period is 1 (one delay between each pair
	// except one zero-delay edge... which still allows period 2). Compute
	// what FEAS actually certifies and cross-check by validating.
	got, err := Period(out, times)
	if err != nil {
		t.Fatal(err)
	}
	if got != c {
		t.Fatalf("achieved period %d != reported %d", got, c)
	}
	if c > 2 {
		t.Fatalf("period %d, want <= 2 (three registers over four unit nodes)", c)
	}
	if r[0] == 0 && r[1] == 0 && r[2] == 0 && r[3] == 0 {
		t.Fatal("identity retiming cannot cut the period")
	}
}

func TestApplyPreservesCycleDelaySums(t *testing.T) {
	g, times := correlator()
	out, _, _, err := Minimize(g, times)
	if err != nil {
		t.Fatal(err)
	}
	sum := func(gr *dfg.Graph) int {
		s := 0
		for _, e := range gr.Edges() {
			s += e.Delays
		}
		return s
	}
	// For a single cycle, total delays around the cycle are invariant.
	if sum(g) != sum(out) {
		t.Fatalf("delay sum changed: %d -> %d", sum(g), sum(out))
	}
}

func TestApplyRejectsIllegalRetiming(t *testing.T) {
	g, _ := correlator()
	if _, err := Apply(g, []int{5, 0, 0, 0}); err == nil {
		t.Fatal("negative-delay retiming accepted")
	}
	if _, err := Apply(g, []int{1, 1}); err == nil {
		t.Fatal("short retiming vector accepted")
	}
	// Identity retiming is always legal.
	if _, err := Apply(g, []int{0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyKeepsSelfLoopDelays(t *testing.T) {
	g := dfg.New()
	a := g.MustAddNode("a", "")
	g.MustAddEdge(a, a, 2)
	out, err := Apply(g, []int{7})
	if err != nil {
		t.Fatal(err)
	}
	if out.Edge(0).Delays != 2 {
		t.Fatalf("self-loop delays = %d, want 2", out.Edge(0).Delays)
	}
}

func TestFeasibleValidatesInput(t *testing.T) {
	g, times := correlator()
	if _, _, err := Feasible(g, times[:2], 3); err == nil {
		t.Error("short times accepted")
	}
	if _, _, err := Feasible(g, []int{1, 1, 0, 1}, 3); err == nil {
		t.Error("zero time accepted")
	}
	// Target below the largest node time is trivially infeasible.
	if _, ok, err := Feasible(g, []int{5, 1, 1, 1}, 4); err != nil || ok {
		t.Errorf("ok=%v err=%v, want infeasible", ok, err)
	}
}

func TestPipeliningADag(t *testing.T) {
	// Retiming a pure DAG inserts pipeline registers: a chain of three
	// 2-step nodes (period 6) pipelines down to period 2.
	g := dfg.Chain(3)
	times := []int{2, 2, 2}
	out, _, c, err := Minimize(g, times)
	if err != nil {
		t.Fatal(err)
	}
	if c != 2 {
		t.Fatalf("pipelined period = %d, want 2", c)
	}
	delays := 0
	for _, e := range out.Edges() {
		delays += e.Delays
	}
	if delays != 2 {
		t.Fatalf("pipeline registers = %d, want 2", delays)
	}
}

// randomCyclicDFG builds a random DAG plus feedback delay edges, the shape
// of real DSP loop bodies.
func randomCyclicDFG(rng *rand.Rand, n int) (*dfg.Graph, []int) {
	g := dfg.RandomDAG(rng, n, 0.3)
	// Add a couple of delayed feedback edges from later to earlier nodes.
	for i := 0; i < 2; i++ {
		u := dfg.NodeID(rng.Intn(n))
		v := dfg.NodeID(rng.Intn(n))
		g.MustAddEdge(u, v, 1+rng.Intn(3))
	}
	times := make([]int, n)
	for i := range times {
		times[i] = 1 + rng.Intn(4)
	}
	return g, times
}

func TestMinimizeProperties(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, times := randomCyclicDFG(rng, 2+rng.Intn(12))
		before, err := Period(g, times)
		if err != nil {
			return false
		}
		out, r, c, err := Minimize(g, times)
		if err != nil {
			return false
		}
		// Period never worsens, meets the reported value, delays legal.
		after, err := Period(out, times)
		if err != nil || after != c || c > before {
			return false
		}
		for _, e := range out.Edges() {
			if e.Delays < 0 {
				return false
			}
		}
		// The retiming vector reproduces the output graph.
		re, err := Apply(g, r)
		if err != nil {
			return false
		}
		return re.String() == out.String()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMinimizeReachesMaxNodeTimeOnSingleCycleWithEnoughDelays(t *testing.T) {
	// Cycle of 3 nodes, times 3/1/2, four delays on the back edge: enough
	// registers to separate every node, so the bound max(times)=3 is met.
	g := dfg.New()
	a := g.MustAddNode("a", "")
	b := g.MustAddNode("b", "")
	c := g.MustAddNode("c", "")
	g.MustAddEdge(a, b, 0)
	g.MustAddEdge(b, c, 0)
	g.MustAddEdge(c, a, 4)
	_, _, period, err := Minimize(g, []int{3, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if period != 3 {
		t.Fatalf("period = %d, want 3", period)
	}
}
