// Package rotate implements rotation scheduling (Chao, LaPaugh and Sha,
// reference [4] of the paper): a loop-pipelining technique that combines
// retiming with resource-constrained list scheduling.
//
// One rotation takes the nodes scheduled in the first control step — these
// are roots of the DAG portion, so every incoming edge carries at least one
// delay — and retimes them by −1 (in the d_r(u→v) = d + r(v) − r(u)
// convention of package retime). That moves one delay from each of their
// incoming edges to each outgoing edge: the rotated nodes are now computed
// one iteration ahead, the DAG portion re-shapes, and list scheduling gets
// a chance to pack the loop body tighter. Repeating the step walks the
// schedule "around" the loop, hence the name.
//
// With the heterogeneous assignment fixed (phase one of the paper), Rotate
// searches for the static schedule of minimum length under a fixed FU
// configuration — the resource-constrained side the paper's §1 calls
// NP-complete.
package rotate

import (
	"fmt"

	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
	"hetsynth/internal/hap"
	"hetsynth/internal/retime"
	"hetsynth/internal/sched"
)

// Result is the outcome of a rotation-scheduling run.
type Result struct {
	// Graph is the retimed DFG realizing the best schedule.
	Graph *dfg.Graph
	// Retiming is the per-node lag from the input graph to Graph.
	Retiming []int
	// Schedule is the best static schedule found (over Graph's DAG
	// portion).
	Schedule *sched.Schedule
	// Rotations is the number of rotation steps performed.
	Rotations int
	// InitialLength is the list-schedule length before any rotation.
	InitialLength int
}

// Rotate runs up to maxRotations rotation steps on g under the given
// assignment and FU configuration and returns the best schedule seen.
// maxRotations <= 0 defaults to 2·|V|, enough for the schedule pattern to
// wrap around the loop body twice.
func Rotate(g *dfg.Graph, tab *fu.Table, assign hap.Assignment, cfg sched.Config, maxRotations int) (Result, error) {
	if err := g.Validate(); err != nil {
		return Result{}, err
	}
	if maxRotations <= 0 {
		maxRotations = 2 * g.N()
	}
	r := make([]int, g.N())
	cur := g.Clone()

	s, err := sched.ListSchedule(cur, tab, assign, cfg)
	if err != nil {
		return Result{}, err
	}
	best := Result{
		Graph:         cur,
		Retiming:      append([]int(nil), r...),
		Schedule:      s,
		InitialLength: s.Length,
	}

	for i := 0; i < maxRotations; i++ {
		// The first-row nodes of the current schedule.
		var firstRow []dfg.NodeID
		for v := 0; v < cur.N(); v++ {
			if s.Start[v] == 1 {
				firstRow = append(firstRow, dfg.NodeID(v))
			}
		}
		if len(firstRow) == 0 {
			break // cannot happen with a valid schedule; stay safe
		}
		for _, v := range firstRow {
			// A first-row node must be a DAG root: every incoming edge
			// carries a delay, so shifting one delay across it is legal.
			if cur.InDegree(v) != 0 {
				return Result{}, fmt.Errorf("rotate: internal error: first-row node %s has zero-delay predecessors", cur.Node(v).Name)
			}
			r[v]--
		}
		next, err := retime.Apply(g, r)
		if err != nil {
			// Rotating a root is always legal; an error means the caller's
			// graph has a root with a delay-free incoming edge, i.e. a bug.
			return Result{}, fmt.Errorf("rotate: rotation became illegal: %w", err)
		}
		cur = next
		s, err = sched.ListSchedule(cur, tab, assign, cfg)
		if err != nil {
			return Result{}, err
		}
		if s.Length < best.Schedule.Length {
			best = Result{
				Graph:         cur,
				Retiming:      append([]int(nil), r...),
				Schedule:      s,
				Rotations:     i + 1,
				InitialLength: best.InitialLength,
			}
		}
	}
	return best, nil
}
