package rotate

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
	"hetsynth/internal/hap"
	"hetsynth/internal/sched"
)

// pipelineLoop builds the canonical rotation-scheduling win: a chain
// a -> b -> c -> d whose feedback edge d -> a carries several delays. The
// plain list schedule serializes the chain (length 4 on one FU... the
// chain dependency itself forces length 4 even with many FUs); rotation
// moves delays into the chain so the four nodes can overlap.
func pipelineLoop() (*dfg.Graph, *fu.Table) {
	g := dfg.New()
	a := g.MustAddNode("a", "")
	b := g.MustAddNode("b", "")
	c := g.MustAddNode("c", "")
	d := g.MustAddNode("d", "")
	g.MustAddEdge(a, b, 0)
	g.MustAddEdge(b, c, 0)
	g.MustAddEdge(c, d, 0)
	g.MustAddEdge(d, a, 3)
	tab := fu.UniformTable(4, []int{1}, []int64{1})
	return g, tab
}

func TestRotateShortensPipelineLoop(t *testing.T) {
	g, tab := pipelineLoop()
	assign := make(hap.Assignment, 4)
	res, err := Rotate(g, tab, assign, sched.Config{4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.InitialLength != 4 {
		t.Fatalf("initial length = %d, want 4", res.InitialLength)
	}
	// With 3 feedback delays and 4 FUs, rotation can overlap iterations;
	// the best static schedule shrinks to 2 or less... the loop has a
	// cycle (time 4 / 3 delays), so 2 is achievable.
	if res.Schedule.Length > 2 {
		t.Fatalf("rotated length = %d, want <= 2 (initial 4)", res.Schedule.Length)
	}
	if res.Rotations == 0 {
		t.Fatal("no rotation performed despite improvement")
	}
	// The reported retiming must reproduce the reported graph.
	if len(res.Retiming) != 4 {
		t.Fatalf("retiming size %d", len(res.Retiming))
	}
}

func TestRotateRespectsResources(t *testing.T) {
	g, tab := pipelineLoop()
	assign := make(hap.Assignment, 4)
	// One FU: 4 unit-time nodes can never beat length 4.
	res, err := Rotate(g, tab, assign, sched.Config{1}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Length != 4 {
		t.Fatalf("length = %d, want 4 (resource bound)", res.Schedule.Length)
	}
	if err := sched.ValidateSchedule(res.Graph, res.Schedule, sched.Config{1}, res.Schedule.Length); err != nil {
		t.Fatal(err)
	}
}

func TestRotateOnAcyclicGraphIsHarmlessPipelining(t *testing.T) {
	// A pure DAG: rotation pipelines it (like retiming a DAG). The best
	// schedule must never be worse than the initial one.
	g := dfg.Chain(4)
	tab := fu.UniformTable(4, []int{2}, []int64{1})
	assign := make(hap.Assignment, 4)
	res, err := Rotate(g, tab, assign, sched.Config{4}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Length > res.InitialLength {
		t.Fatalf("rotation worsened: %d > %d", res.Schedule.Length, res.InitialLength)
	}
}

func TestRotateValidatesInput(t *testing.T) {
	bad := dfg.New()
	a := bad.MustAddNode("a", "")
	b := bad.MustAddNode("b", "")
	bad.MustAddEdge(a, b, 0)
	bad.MustAddEdge(b, a, 0)
	tab := fu.UniformTable(2, []int{1}, []int64{1})
	if _, err := Rotate(bad, tab, make(hap.Assignment, 2), sched.Config{1}, 2); err == nil {
		t.Fatal("zero-delay cycle accepted")
	}
}

// TestRotateProperties: on random cyclic DFGs, rotation never worsens the
// schedule, every reported schedule validates, and the retiming vector
// reproduces the reported graph.
func TestRotateProperties(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		g := dfg.RandomDAG(rng, n, 0.3)
		for i := 0; i < 2; i++ {
			g.MustAddEdge(dfg.NodeID(rng.Intn(n)), dfg.NodeID(rng.Intn(n)), 1+rng.Intn(2))
		}
		tab := fu.RandomTable(rng, n, 2)
		assign := make(hap.Assignment, n)
		for v := range assign {
			assign[v] = fu.TypeID(rng.Intn(2))
		}
		cfg := sched.Config{1 + rng.Intn(3), 1 + rng.Intn(3)}
		res, err := Rotate(g, tab, assign, cfg, 2*n)
		if err != nil {
			return false
		}
		if res.Schedule.Length > res.InitialLength {
			return false
		}
		if sched.ValidateSchedule(res.Graph, res.Schedule, cfg, res.Schedule.Length) != nil {
			return false
		}
		// Retiming must be legal w.r.t. the input graph and reproduce the
		// reported graph.
		for _, e := range res.Graph.Edges() {
			if e.Delays < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
