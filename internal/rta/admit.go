package rta

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"hetsynth/internal/hap"
)

// Options tunes admission analysis. The zero value uses package defaults.
type Options struct {
	// MaxCandidates caps how many operating points are sampled per task off
	// its cost/deadline frontier (default 6). More candidates admit more
	// sets at lower energy, at more placement work per task.
	MaxCandidates int
}

func (o Options) withDefaults() Options {
	if o.MaxCandidates < 1 {
		o.MaxCandidates = 6
	}
	return o
}

// rtaIterCap bounds the fixed-point iterations of one member's response
// test; a fixed point that has not converged by then is treated as
// unschedulable, which is always sound (admission only errs toward "no").
const rtaIterCap = 256

// ladderMaxStates bounds the branch-and-bound effort of each anytime rung
// during candidate sampling. Admission samples a handful of operating
// points per task, so a full-depth exact proof per rung (the solver's
// 20M-state default) would dominate the whole analysis; a capped run still
// returns the best incumbent found, it merely reports heuristic quality.
const ladderMaxStates = 200_000

// Admit decides whether the task set fits the FU configuration: it samples
// candidate operating points per task (frontier breakpoints for tree DFGs,
// anytime-ladder solutions otherwise), then greedily places tasks —
// hardest first — preferring shared light channels and falling back to
// dedicated heavy partitions grown one FU at a time. The verdict is sound:
// Admitted implies every placement's response-time bound is at most its
// deadline under the package's scheduling model (see channelRTA and
// heavyBound). Complexity: one frontier or anytime solve per task plus
// O(tasks² · candidates · RTA) placement work. The error is non-nil only
// for malformed input or a dead context; "does not fit" is a verdict, not
// an error.
func Admit(ctx context.Context, set TaskSet, cfg Config, opts Options) (Verdict, error) {
	pr, err := prepare(ctx, set, opts)
	if err != nil {
		return Verdict{}, err
	}
	if err := set.validateConfig(cfg); err != nil {
		return Verdict{}, err
	}
	return pr.admit(cfg), nil
}

// prepared holds the per-task candidate operating points, computed once and
// reusable across many configuration probes (the search loop's hot path).
type prepared struct {
	set     TaskSet
	cands   [][]*demand // per task, cheapest energy first
	order   []int       // task indices, hardest (densest) first
	quality hap.Quality
}

// prepare samples candidate operating points for every task. A task whose
// fastest assignment still misses its deadline gets zero candidates; admit
// then rejects the set naming that task.
func prepare(ctx context.Context, set TaskSet, opts Options) (*prepared, error) {
	if err := set.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	pr := &prepared{set: set, quality: hap.QualityExact}
	for i, t := range set {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cands, q, err := candidates(ctx, t, opts.MaxCandidates)
		if err != nil {
			return nil, fmt.Errorf("rta: task %d (%s): %w", i, t.Name, err)
		}
		pr.cands = append(pr.cands, cands)
		pr.quality = worseQuality(pr.quality, q)
	}
	// Hardest first: highest minimal density (least work any candidate
	// needs, relative to the deadline) placed while capacity is plentiful.
	pr.order = make([]int, len(set))
	for i := range pr.order {
		pr.order[i] = i
	}
	sort.SliceStable(pr.order, func(a, b int) bool {
		return pr.density(pr.order[a]) > pr.density(pr.order[b])
	})
	return pr, nil
}

// density scores task i's tightness: minimal sequential work over its
// candidates, relative to its deadline. Tasks without candidates sort first
// (they fail admission immediately, with a reason).
func (pr *prepared) density(i int) float64 {
	if len(pr.cands[i]) == 0 {
		return 2.0 * float64(maxHorizon)
	}
	min := pr.cands[i][0].total
	for _, d := range pr.cands[i][1:] {
		if d.total < min {
			min = d.total
		}
	}
	return float64(min) / float64(pr.set[i].RelDeadline())
}

// worseQuality merges two quality verdicts, keeping the weaker claim.
func worseQuality(a, b hap.Quality) hap.Quality {
	rank := func(q hap.Quality) int {
		switch q {
		case hap.QualityExact:
			return 0
		case hap.QualityHeuristic:
			return 1
		default:
			return 2 // timeout
		}
	}
	if rank(b) > rank(a) {
		return b
	}
	return a
}

// candidates samples up to maxCand operating points for one task, cheapest
// energy first. Tree-shaped DFGs read exact points off the PR-1
// cost/deadline frontier in one DP run; general DFGs run the PR-4 anytime
// ladder at up to three deadlines (fastest, middle, full slack). An
// infeasible task (critical path beyond the deadline even at full speed)
// yields zero candidates and no error.
func candidates(ctx context.Context, t Task, maxCand int) ([]*demand, hap.Quality, error) {
	p := hap.Problem{Graph: t.Graph, Table: t.Table, Deadline: t.RelDeadline()}
	if t.Graph.IsOutForest() || t.Graph.IsInForest() {
		return treeCandidates(p, t, maxCand)
	}
	return ladderCandidates(ctx, p, t, maxCand)
}

// treeCandidates reads candidates off the exact frontier of a tree task.
func treeCandidates(p hap.Problem, t Task, maxCand int) ([]*demand, hap.Quality, error) {
	fs, err := hap.NewFrontierSolver(p)
	if errors.Is(err, hap.ErrInfeasible) {
		return nil, hap.QualityExact, nil
	}
	if err != nil {
		return nil, hap.QualityExact, err
	}
	front := fs.Frontier()
	if len(front) == 0 {
		return nil, hap.QualityExact, nil
	}
	picks := sampleFrontier(front, maxCand)
	var out []*demand
	for _, fp := range picks {
		sol, err := fs.SolveAt(fp.Deadline)
		if err != nil {
			return nil, hap.QualityExact, err
		}
		d, err := newDemand(t, sol.Assign)
		if err != nil {
			return nil, hap.QualityExact, err
		}
		out = append(out, d)
	}
	sortByEnergy(out)
	return out, hap.QualityExact, nil
}

// sampleFrontier picks at most maxCand breakpoints spread across the
// frontier, always keeping the fastest (first) and cheapest (last) points.
func sampleFrontier(front []hap.FrontierPoint, maxCand int) []hap.FrontierPoint {
	if len(front) <= maxCand {
		return front
	}
	picks := make([]hap.FrontierPoint, 0, maxCand)
	for i := 0; i < maxCand; i++ {
		// Even spread over [0, len-1], endpoints included.
		idx := i * (len(front) - 1) / (maxCand - 1)
		picks = append(picks, front[idx])
	}
	return picks
}

// ladderCandidates produces candidates for a general DFG by running the
// anytime ladder at up to three deadlines between the minimum makespan and
// the task deadline.
func ladderCandidates(ctx context.Context, p hap.Problem, t Task, maxCand int) ([]*demand, hap.Quality, error) {
	minMk, err := hap.MinMakespan(t.Graph, t.Table)
	if err != nil {
		return nil, hap.QualityHeuristic, err
	}
	d := t.RelDeadline()
	if minMk > d {
		return nil, hap.QualityExact, nil // provably infeasible: even full speed misses
	}
	// The anytime DP's horizon grows with the deadline, but rungs beyond the
	// fully serialized slowest assignment cannot yield new operating points
	// (that horizon already fits every assignment); clamp so a task with a
	// huge period costs the same to sample as a tight one. Sound: a smaller
	// candidate deadline only restricts the assignments considered.
	serial := 0
	for v := 0; v < t.Graph.N(); v++ {
		serial += t.Table.MaxTime(v)
	}
	if serial < minMk {
		serial = minMk
	}
	if d > serial {
		d = serial
	}
	deadlines := []int{d}
	if mid := (minMk + d) / 2; mid != d && mid >= minMk {
		deadlines = append(deadlines, mid)
	}
	if minMk != d {
		deadlines = append(deadlines, minMk)
	}
	if len(deadlines) > maxCand {
		deadlines = deadlines[:maxCand]
	}
	quality := hap.QualityExact
	var out []*demand
	for _, dl := range deadlines {
		if err := ctx.Err(); err != nil {
			return nil, quality, err
		}
		sub := p
		sub.Deadline = dl
		res, err := hap.SolveAnytime(ctx, sub, hap.AnytimeOptions{
			// Sequential keeps the sampled assignments deterministic across
			// runs (the cache and the differential tests rely on equal
			// requests producing equal verdicts).
			Exact:      hap.ExactOptions{MaxStates: ladderMaxStates},
			Sequential: true,
		})
		switch {
		case errors.Is(err, hap.ErrInfeasible):
			continue // this rung is too tight; looser rungs may still work
		case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
			return nil, hap.QualityTimeout, err
		case err != nil:
			return nil, quality, err
		}
		quality = worseQuality(quality, res.Quality)
		dem, err := newDemand(t, res.Assign)
		if err != nil {
			return nil, quality, err
		}
		if !dupDemand(out, dem) {
			out = append(out, dem)
		}
	}
	sortByEnergy(out)
	return out, quality, nil
}

// dupDemand reports whether an identical assignment is already sampled.
func dupDemand(have []*demand, d *demand) bool {
	for _, h := range have {
		if len(h.assign) != len(d.assign) {
			continue
		}
		same := true
		for i := range h.assign {
			if h.assign[i] != d.assign[i] {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}

// sortByEnergy orders candidates cheapest first (ties: shorter critical
// path, then larger total work — slower points keep expensive types free).
func sortByEnergy(ds []*demand) {
	sort.SliceStable(ds, func(a, b int) bool {
		if ds[a].energy != ds[b].energy {
			return ds[a].energy < ds[b].energy
		}
		if ds[a].length != ds[b].length {
			return ds[a].length < ds[b].length
		}
		return ds[a].total > ds[b].total
	})
}

// channelState is one shared light channel under construction: the FU
// types it owns (one instance each) and its members in priority order.
type channelState struct {
	owns    []bool
	members []*member
	cands   []*demand // parallel to members: the chosen operating point
}

// admit runs the pure placement phase against one configuration. It is
// deterministic and side-effect free, so the configuration search can probe
// many configurations against one prepared candidate set.
func (pr *prepared) admit(cfg Config) Verdict {
	k := pr.set.K()
	remaining := cfg.Clone()
	var channels []*channelState
	type placed struct {
		d       *demand
		heavy   bool
		part    []int
		channel int
	}
	placedBy := make(map[int]*placed, len(pr.set))

	for _, ti := range pr.order {
		t := pr.set[ti]
		if len(pr.cands[ti]) == 0 {
			return Verdict{
				Admitted: false,
				Reason: fmt.Sprintf("task %d (%s) is infeasible: no assignment meets its deadline %d",
					ti, t.Name, t.RelDeadline()),
				Quality: pr.quality,
			}
		}
		var ok bool
		for _, d := range pr.cands[ti] {
			// Light first: serialized channel sharing is the cheapest home.
			if d.total <= int64(t.RelDeadline()) {
				if ch := tryLight(channels, remaining, ti, t, d, k); ch >= 0 {
					placedBy[ti] = &placed{d: d, channel: ch}
					if ch == len(channels) {
						channels = append(channels, newChannel(k))
					}
					commitLight(channels[ch], remaining, ti, t, d)
					ok = true
					break
				}
			}
			if part := tryHeavy(t, d, remaining); part != nil {
				for ky := range part {
					remaining[ky] -= part[ky]
				}
				placedBy[ti] = &placed{d: d, heavy: true, part: part}
				ok = true
				break
			}
		}
		if !ok {
			return Verdict{
				Admitted: false,
				Reason: fmt.Sprintf("task %d (%s) does not fit: no candidate placement within the remaining capacity",
					ti, t.Name),
				Quality: pr.quality,
			}
		}
	}

	// Assemble the verdict: final channel RTAs give the reported bounds.
	v := Verdict{Admitted: true, Quality: pr.quality, Used: make(Config, k)}
	chanResp := make([][]int, len(channels))
	for ci, ch := range channels {
		resp, fits := channelRTA(ch.members)
		if !fits {
			// Insertions only ever pass a full-channel RTA, so the final
			// recheck cannot fail; treat a failure as the bug it would be.
			panic("rta: committed channel fails its own RTA")
		}
		chanResp[ci] = resp
		mi := make([]int, len(ch.members))
		for i, m := range ch.members {
			mi[i] = m.task
		}
		v.Channels = append(v.Channels, mi)
		for ky, own := range ch.owns {
			if own {
				v.Used[ky]++
			}
		}
	}
	for ti := range pr.set {
		p, ok := placedBy[ti]
		if !ok {
			continue
		}
		pl := Placement{
			Task:      ti,
			Assign:    p.d.assign,
			Heavy:     p.heavy,
			Channel:   -1,
			Length:    p.d.length,
			TotalWork: p.d.total,
			Work:      append([]int64(nil), p.d.work...),
			Energy:    p.d.energy,
		}
		if p.heavy {
			pl.Partition = p.part
			pl.Response = heavyBound(pr.set[ti], p.d, p.part)
			for ky := range p.part {
				v.Used[ky] += p.part[ky]
			}
		} else {
			pl.Channel = p.channel
			for i, m := range channels[p.channel].members {
				if m.task == ti {
					pl.Response = chanResp[p.channel][i]
					break
				}
			}
		}
		v.Placements = append(v.Placements, pl)
	}
	return v
}

// newChannel allocates an empty channel over a k-type library.
func newChannel(k int) *channelState {
	return &channelState{owns: make([]bool, k)}
}

// tryLight finds the first channel (existing, or a fresh one at index
// len(channels)) that can take task ti at operating point d: enough spare
// FUs for any newly needed types, and the whole channel — existing members
// included — still passes its RTA. Returns -1 when none fits.
//
// hetsynth:hotpath
func tryLight(channels []*channelState, remaining Config, ti int, t Task, d *demand, k int) int {
	m := &member{task: ti, period: t.Period, dl: t.RelDeadline(), c: d.total, blk: d.maxNode}
	for ci, ch := range channels {
		need := 0
		for ky := range d.used {
			if d.used[ky] && !ch.owns[ky] {
				if remaining[ky] < 1 {
					need = -1
					break
				}
				need++
			}
		}
		if need < 0 {
			continue
		}
		trial := insertByPrio(ch.members, m)
		if _, fits := channelRTA(trial); fits {
			return ci
		}
	}
	// Fresh channel: needs one FU of every used type; alone on it, the
	// task's response is exactly its sequential work, already <= deadline.
	for ky := range d.used {
		if d.used[ky] && remaining[ky] < 1 {
			return -1
		}
	}
	return len(channels)
}

// commitLight inserts the member into the channel and claims any newly
// owned types from the remaining capacity.
func commitLight(ch *channelState, remaining Config, ti int, t Task, d *demand) {
	for ky := range d.used {
		if d.used[ky] && !ch.owns[ky] {
			ch.owns[ky] = true
			remaining[ky]--
		}
	}
	m := &member{task: ti, period: t.Period, dl: t.RelDeadline(), c: d.total, blk: d.maxNode}
	ch.members = insertByPrio(ch.members, m)
	ch.cands = append(ch.cands, d)
}

// insertByPrio returns a new slice with m inserted into the
// priority-ordered member list.
func insertByPrio(members []*member, m *member) []*member {
	out := make([]*member, 0, len(members)+1)
	inserted := false
	for _, x := range members {
		if !inserted && prioBefore(m, x) {
			out = append(out, m)
			inserted = true
		}
		out = append(out, x)
	}
	if !inserted {
		out = append(out, m)
	}
	return out
}

// tryHeavy grows a dedicated partition for task t at operating point d —
// one FU per used type, then one more FU at a time on the type that
// improves the typed Graham/Han bound most — until the bound meets the
// deadline or capacity runs out. Returns the partition, or nil when the
// task cannot fit heavy within the remaining capacity.
func tryHeavy(t Task, d *demand, remaining Config) []int {
	part := make([]int, len(remaining))
	for ky, used := range d.used {
		if !used {
			continue
		}
		if remaining[ky] < 1 {
			return nil
		}
		part[ky] = 1
	}
	bound := heavyBound(t, d, part)
	for bound > t.RelDeadline() {
		bestK, bestBound := -1, bound
		for ky, used := range d.used {
			if !used || part[ky] >= MaxPartition || part[ky] >= remaining[ky] {
				continue
			}
			part[ky]++
			if b := heavyBound(t, d, part); b < bestBound {
				bestK, bestBound = ky, b
			}
			part[ky]--
		}
		if bestK < 0 {
			return nil // no increment improves the bound (or no capacity left)
		}
		part[bestK]++
		bound = bestBound
	}
	return part
}
