package rta

import (
	"hetsynth/internal/hap"
)

// demand is one candidate operating point of a task: a concrete assignment
// and the resource demand it induces.
type demand struct {
	assign  hap.Assignment
	length  int     // critical path (control steps) under assign
	total   int64   // sequential execution time: summed node times
	work    []int64 // per-type summed node times
	maxNode int     // largest single node time (non-preemptive blocking grain)
	energy  int64   // summed HAP cost (the paper's phase-1 objective)
	used    []bool  // used[k]: assign places at least one node on type k
}

// newDemand evaluates an assignment into a demand. It runs one longest-path
// pass, O(|V|+|E|).
func newDemand(t Task, a hap.Assignment) (*demand, error) {
	sol, err := hap.Evaluate(hap.Problem{Graph: t.Graph, Table: t.Table, Deadline: t.RelDeadline()}, a)
	if err != nil {
		return nil, err
	}
	k := t.Table.K()
	d := &demand{
		assign: a,
		length: sol.Length,
		energy: sol.Cost,
		work:   make([]int64, k),
		used:   make([]bool, k),
	}
	for v, ty := range a {
		w := t.Table.Time[v][ty]
		d.work[ty] += int64(w)
		d.total += int64(w)
		if w > d.maxNode {
			d.maxNode = w
		}
		d.used[ty] = true
	}
	return d, nil
}

// gcd returns the greatest common divisor of two positive ints.
func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// lcm returns the least common multiple of two positive ints.
func lcm(a, b int) int { return a / gcd(a, b) * b }

// heavyBound computes the typed Graham/Han response-time bound of one DAG
// job executed by any work-conserving typed list scheduler on a dedicated
// partition of part[k] FUs of each type k:
//
//	R  <=  sum_k W_k/part_k  +  max over paths λ of sum_{v in λ} w_v·(1 − 1/part_{type(v)})
//
// (Han et al., response-time bounds for typed DAG tasks on heterogeneous
// multi-cores; for a single type this is Graham's classic W/m + (1−1/m)·L.)
// Every type with work must have part[k] >= 1; callers guarantee it. The
// bound is evaluated in exact rational arithmetic over the common
// denominator lcm(part…) <= lcm(1..MaxPartition) and rounded up, so the
// returned integer never under-approximates. O(|V|·K + |E|).
func heavyBound(t Task, d *demand, part []int) int {
	// Common denominator of all partition sizes in use.
	den := 1
	for k, m := range part {
		if m > 0 && d.work[k] > 0 {
			den = lcm(den, m)
		}
	}
	// Volume term: sum_k W_k·(den/part_k), over denominator den.
	var volNum int64
	for k, w := range d.work {
		if w > 0 {
			volNum += w * int64(den/part[k])
		}
	}
	// Scaled critical path: node v weighs w_v·(den − den/part_{type(v)}),
	// over denominator den. Longest path over the zero-delay DAG portion in
	// topological order.
	order, err := t.Graph.TopoOrder()
	if err != nil {
		// Validated task sets are acyclic; an error here means the caller
		// skipped Validate, and the zero bound would be unsound — fail loud.
		panic("rta: heavyBound on cyclic graph: " + err.Error())
	}
	dist := make([]int64, t.Graph.N())
	var lpNum int64
	for _, v := range order {
		ty := d.assign[v]
		wv := int64(t.Table.Time[v][ty]) * int64(den-den/part[ty])
		best := int64(0)
		for _, u := range t.Graph.Pred(v) {
			if dist[u] > best {
				best = dist[u]
			}
		}
		dist[v] = best + wv
		if dist[v] > lpNum {
			lpNum = dist[v]
		}
	}
	num := volNum + lpNum
	return int((num + int64(den) - 1) / int64(den))
}

// member is one light task placed on a shared channel, carrying the
// per-channel RTA inputs of its chosen operating point.
type member struct {
	task   int   // task index in the set
	period int
	dl     int   // relative deadline
	c      int64 // sequential execution time (demand.total)
	blk    int   // largest single node time (blocking grain)
}

// prioBefore orders members by deadline-monotonic priority: smaller
// relative deadline first, ties by smaller period, then task index.
func prioBefore(a, b *member) bool {
	if a.dl != b.dl {
		return a.dl < b.dl
	}
	if a.period != b.period {
		return a.period < b.period
	}
	return a.task < b.task
}

// channelRTA runs the iterative response-time test for every member of one
// serialized channel, in priority order (members must already be sorted by
// prioBefore). The channel executes at most one node at a time across all
// member jobs, re-arbitrating by deadline-monotonic priority at node
// boundaries, so member i's worst response is bounded by the fixed point of
//
//	R_i = C_i + B_i + sum_{j in hp(i)} ceil((R_i + (D_j − C_j)) / T_j) · C_j
//
// where B_i is the largest single node of any lower-priority member (at
// most one lower-priority node can be in flight when a job of i arrives,
// and node execution is non-preemptive) and the (D_j − C_j) padding
// upper-bounds higher-priority self-suspension as release jitter (the
// standard suspension-as-jitter transformation — safe here, where jobs do
// not actually suspend, and required the moment they do).
//
// It returns the per-member response bounds and whether every member makes
// its deadline. Each fixed point converges in at most D_i iterations;
// overall O(n² · iterations) for n members, with n small (bin-packed
// channels hold few tasks).
func channelRTA(members []*member) ([]int, bool) {
	resp := make([]int, len(members))
	for i, mi := range members {
		// Blocking: the largest node of any lower-priority member.
		var blk int64
		for _, mj := range members[i+1:] {
			if int64(mj.blk) > blk {
				blk = int64(mj.blk)
			}
		}
		r := mi.c + blk
		for iter := 0; ; iter++ {
			if r > int64(mi.dl) || iter >= rtaIterCap {
				// Past the deadline, or the fixed point crawls (rtaIterCap
				// bounds work): both reject, which is always sound.
				return resp, false
			}
			next := mi.c + blk
			for _, mj := range members[:i] {
				jitter := int64(mj.dl) - mj.c // >= 0: admitted members have C <= D
				next += ceilDiv(r+jitter, int64(mj.period)) * mj.c
			}
			if next == r {
				break
			}
			r = next
		}
		resp[i] = int(r)
	}
	return resp, true
}

// ceilDiv returns ceil(a/b) for a >= 0, b > 0.
func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }
