package rta

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
	"hetsynth/internal/sim"
)

// randomTaskSet draws a small harmonic task set: 2–5 tasks over a shared
// 2–3 type library, each a random chain, tree or DAG of 3–6 nodes with a
// paper-style random table, a period from {32, 64, 128} (pairwise harmonic)
// and a deadline of the full period or three quarters of it.
func randomTaskSet(rng *rand.Rand) TaskSet {
	n := 2 + rng.Intn(4)
	k := 2 + rng.Intn(2)
	set := make(TaskSet, 0, n)
	periods := []int{32, 64, 128}
	for i := 0; i < n; i++ {
		nodes := 3 + rng.Intn(4)
		var g *dfg.Graph
		switch rng.Intn(3) {
		case 0:
			g = dfg.Chain(nodes)
		case 1:
			g = dfg.RandomTree(rng, nodes)
		default:
			g = dfg.RandomDAG(rng, nodes, 0.4)
		}
		p := periods[rng.Intn(len(periods))]
		d := p
		if rng.Intn(2) == 0 {
			d = p * 3 / 4
		}
		set = append(set, Task{
			Name:     fmt.Sprintf("t%d", i),
			Graph:    g,
			Table:    fu.RandomTable(rng, nodes, k),
			Period:   p,
			Deadline: d,
		})
	}
	return set
}

// placedTasks converts an admitted verdict into the simulator's input.
func placedTasks(t *testing.T, set TaskSet, v Verdict) []sim.PlacedTask {
	t.Helper()
	if len(v.Placements) != len(set) {
		t.Fatalf("admitted verdict places %d of %d tasks", len(v.Placements), len(set))
	}
	placed := make([]sim.PlacedTask, len(set))
	seen := make([]bool, len(set))
	for _, p := range v.Placements {
		if seen[p.Task] {
			t.Fatalf("task %d placed twice", p.Task)
		}
		seen[p.Task] = true
		task := set[p.Task]
		placed[p.Task] = sim.PlacedTask{
			Task: sim.PeriodicTask{
				Graph:    task.Graph,
				Table:    task.Table,
				Assign:   p.Assign,
				Period:   task.Period,
				Deadline: task.RelDeadline(),
			},
			Heavy:     p.Heavy,
			Partition: p.Partition,
			Channel:   p.Channel,
		}
	}
	return placed
}

// checkCapacity asserts the verdict's accounting: Used never exceeds the
// configuration, and Used equals dedicated partitions plus one FU per
// channel-owned type (a type is channel-owned when any member uses it).
func checkCapacity(t *testing.T, set TaskSet, cfg Config, v Verdict) {
	t.Helper()
	k := set.K()
	want := make(Config, k)
	for _, p := range v.Placements {
		if p.Heavy {
			for ky := range p.Partition {
				want[ky] += p.Partition[ky]
			}
		}
	}
	owned := make([][]bool, len(v.Channels))
	for ci := range v.Channels {
		owned[ci] = make([]bool, k)
	}
	for _, p := range v.Placements {
		if p.Heavy {
			continue
		}
		for ky, w := range p.Work {
			if w > 0 {
				owned[p.Channel][ky] = true
			}
		}
	}
	for ci := range owned {
		for ky, own := range owned[ci] {
			if own {
				want[ky]++
			}
		}
	}
	for ky := 0; ky < k; ky++ {
		if v.Used[ky] != want[ky] {
			t.Fatalf("used %v, recomputed %v", v.Used, want)
		}
		if v.Used[ky] > cfg[ky] {
			t.Fatalf("used %v exceeds configuration %v", v.Used, cfg)
		}
	}
}

// simulateVerdict runs the hyperperiod simulation and asserts soundness:
// zero deadline misses and per-task worst responses within the analytical
// bounds reported by the placements.
func simulateVerdict(t *testing.T, set TaskSet, v Verdict, label string) {
	t.Helper()
	placed := placedTasks(t, set, v)
	rep, err := sim.SimulatePeriodic(placed)
	if err != nil {
		t.Fatalf("%s: simulate: %v", label, err)
	}
	if rep.Missed != 0 {
		t.Fatalf("%s: admitted set missed %d of %d job deadlines (set %+v, verdict %+v)",
			label, rep.Missed, rep.Jobs, set, v)
	}
	for _, p := range v.Placements {
		if rep.WorstResponse[p.Task] > p.Response {
			t.Fatalf("%s: task %d simulated response %d exceeds analytical bound %d",
				label, p.Task, rep.WorstResponse[p.Task], p.Response)
		}
	}
}

// TestAdmitDifferential cross-checks admission against brute-force
// hyperperiod simulation over hundreds of randomized harmonic task sets:
// every admitted verdict must survive simulation with zero deadline misses
// and simulated responses within the analytical bounds.
func TestAdmitDifferential(t *testing.T) {
	const trials = 300
	rng := rand.New(rand.NewSource(7))
	ctx := context.Background()
	admitted := 0
	for trial := 0; trial < trials; trial++ {
		set := randomTaskSet(rng)
		k := set.K()
		cfg := make(Config, k)
		for ky := range cfg {
			cfg[ky] = 1 + rng.Intn(4)
		}
		v, err := Admit(ctx, set, cfg, Options{})
		if err != nil {
			t.Fatalf("trial %d: Admit: %v", trial, err)
		}
		if !v.Admitted {
			continue
		}
		admitted++
		checkCapacity(t, set, cfg, v)
		simulateVerdict(t, set, v, fmt.Sprintf("trial %d", trial))
	}
	if admitted < trials/10 {
		t.Fatalf("only %d of %d trials admitted; the differential test is vacuous", admitted, trials)
	}
	t.Logf("admitted %d of %d randomized task sets; all survived simulation", admitted, trials)
}

// TestCheapestConfigDifferential simulates the winning configuration of the
// cheapest-fit search on randomized sets.
func TestCheapestConfigDifferential(t *testing.T) {
	const trials = 60
	rng := rand.New(rand.NewSource(11))
	ctx := context.Background()
	found := 0
	for trial := 0; trial < trials; trial++ {
		set := randomTaskSet(rng)
		prices := make([]int64, set.K())
		for ky := range prices {
			prices[ky] = int64(1 + rng.Intn(9))
		}
		res, err := CheapestConfig(ctx, set, SearchOptions{Prices: prices, MaxPerType: 4}, Options{})
		if err != nil {
			t.Fatalf("trial %d: CheapestConfig: %v", trial, err)
		}
		if !res.Found {
			continue
		}
		found++
		if res.Price != configPrice(res.Config, prices) {
			t.Fatalf("trial %d: price %d does not match config %v", trial, res.Price, res.Config)
		}
		checkCapacity(t, set, res.Config, res.Verdict)
		simulateVerdict(t, set, res.Verdict, fmt.Sprintf("trial %d", trial))
	}
	if found < trials/10 {
		t.Fatalf("only %d of %d searches found a configuration; the differential test is vacuous", found, trials)
	}
	t.Logf("found and simulated %d of %d cheapest configurations", found, trials)
}
