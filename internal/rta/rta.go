// Package rta implements response-time analysis and admission control for
// sets of periodic DSP tasks sharing one heterogeneous FU configuration.
//
// The paper's solvers answer "what does ONE data-flow graph cost under ONE
// timing constraint"; this package answers the serving-scale question: given
// a fleet of periodic DAG tasks (each an existing HAP instance plus a period
// and a relative deadline), does the fleet fit a given FU configuration —
// and if not, what is the cheapest configuration that does?
//
// The analysis composes three layers:
//
//   - Per task, candidate operating points (assignment, critical path, work
//     per FU type, energy) are read off the PR-1 cost/deadline frontier for
//     tree-shaped DFGs, or produced by the PR-4 anytime ladder otherwise.
//   - Across tasks, federated capacity partitioning: heavy tasks (whose
//     sequential execution cannot meet the deadline) receive dedicated FU
//     shares and are bounded by a typed Graham/Han response-time bound;
//     light tasks are packed onto shared serialized channels and admitted by
//     an iterative deadline-monotonic RTA with non-preemptive blocking and
//     suspension-as-jitter padding (cf. TypedDAG federated scheduling).
//   - On top, CheapestConfig greedily searches a priced FU catalog for the
//     minimum-cost configuration that admits the whole set.
//
// Verdicts are sound by construction against the package sim hyperperiod
// simulator: an admitted set never misses a deadline under the simulated
// work-conserving schedulers (the differential tests check this over
// hundreds of randomized task sets).
package rta

import (
	"errors"
	"fmt"

	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
	"hetsynth/internal/hap"
)

// maxHorizon caps periods and deadlines so that all fixed-point arithmetic
// (response times, ceiling terms, hyperperiods in tests) stays far from
// int64 overflow.
const maxHorizon = 1 << 30

// maxTaskWork caps one task's total sequential work; together with
// maxPartition it keeps the exact rational arithmetic of the heavy bound
// inside int64.
const maxTaskWork = 1 << 40

// maxTasks bounds the admission problem size; admission is interactive
// (every task needs at least one HAP solve), so fleets beyond this belong in
// several requests.
const maxTasks = 256

// MaxPartition is the largest dedicated FU count per type a single heavy
// task may receive, and the default per-type ceiling of the configuration
// search. Keeping it at 16 bounds lcm(1..16)=720720, the common denominator
// of the exact heavy-bound arithmetic.
const MaxPartition = 16

// Task is one periodic DAG task: a HAP instance (graph + per-type
// time/cost table) released every Period control steps, each release having
// to finish within Deadline steps. Deadline 0 means implicit (= Period);
// the analysis requires constrained deadlines, Deadline <= Period.
type Task struct {
	Name     string
	Graph    *dfg.Graph
	Table    *fu.Table
	Period   int
	Deadline int
}

// RelDeadline returns the task's effective relative deadline (Period when
// Deadline is unset).
func (t Task) RelDeadline() int {
	if t.Deadline == 0 {
		return t.Period
	}
	return t.Deadline
}

// TaskSet is an ordered set of periodic tasks sharing one FU configuration.
type TaskSet []Task

// Config counts the FU instances of each type in the shared configuration:
// Config[k] instances of library type k. Its length must equal the K of
// every task's table.
type Config []int

// Total returns the summed FU instance count of the configuration.
func (c Config) Total() int {
	n := 0
	for _, m := range c {
		n += m
	}
	return n
}

// Clone returns a copy of the configuration.
func (c Config) Clone() Config {
	out := make(Config, len(c))
	copy(out, c)
	return out
}

// ErrNoTasks is returned when an empty task set is submitted for admission.
var ErrNoTasks = errors.New("rta: task set is empty")

// Validate checks that the task set is well-formed: every task a valid HAP
// instance, all tables the same width K, periods and deadlines positive,
// constrained (Deadline <= Period) and under maxHorizon, and per-task total
// work under maxTaskWork. It runs in O(sum of table sizes).
func (s TaskSet) Validate() error {
	if len(s) == 0 {
		return ErrNoTasks
	}
	if len(s) > maxTasks {
		return fmt.Errorf("rta: %d tasks exceeds the supported maximum %d", len(s), maxTasks)
	}
	k := -1
	for i, t := range s {
		p := hap.Problem{Graph: t.Graph, Table: t.Table, Deadline: t.RelDeadline()}
		if err := p.Validate(); err != nil {
			return fmt.Errorf("rta: task %d (%s): %w", i, t.Name, err)
		}
		if k < 0 {
			k = t.Table.K()
		} else if t.Table.K() != k {
			return fmt.Errorf("rta: task %d (%s) has %d FU types, task 0 has %d (all tasks must share one library)",
				i, t.Name, t.Table.K(), k)
		}
		if t.Period < 1 || t.Period > maxHorizon {
			return fmt.Errorf("rta: task %d (%s) period %d out of range [1, %d]", i, t.Name, t.Period, maxHorizon)
		}
		d := t.RelDeadline()
		if d < 1 || d > t.Period {
			return fmt.Errorf("rta: task %d (%s) deadline %d not in [1, period %d] (constrained deadlines required)",
				i, t.Name, d, t.Period)
		}
		var work int64
		for v := 0; v < t.Table.N(); v++ {
			work += int64(t.Table.MaxTime(v))
		}
		if work > maxTaskWork {
			return fmt.Errorf("rta: task %d (%s) total work %d exceeds the supported maximum %d", i, t.Name, work, maxTaskWork)
		}
	}
	return nil
}

// K returns the number of FU types shared by the (validated) task set.
func (s TaskSet) K() int {
	if len(s) == 0 {
		return 0
	}
	return s[0].Table.K()
}

// validateConfig checks a configuration against the set's library width.
func (s TaskSet) validateConfig(cfg Config) error {
	if len(cfg) != s.K() {
		return fmt.Errorf("rta: config covers %d FU types, task set has %d", len(cfg), s.K())
	}
	for k, m := range cfg {
		if m < 0 {
			return fmt.Errorf("rta: negative FU count %d for type %d", m, k)
		}
		if m > MaxPartition*maxTasks {
			return fmt.Errorf("rta: FU count %d for type %d exceeds the supported maximum %d", m, k, MaxPartition*maxTasks)
		}
	}
	return nil
}

// Placement records where one admitted task landed and at which operating
// point: the chosen assignment with its critical path, per-type work and
// energy, whether the task runs heavy (dedicated Partition FUs per type) or
// light (serialized on shared Channel), and the proven response-time bound.
type Placement struct {
	Task      int            `json:"task"`
	Assign    hap.Assignment `json:"-"`
	Heavy     bool           `json:"heavy"`
	Partition []int          `json:"partition,omitempty"` // heavy: dedicated FUs per type
	Channel   int            `json:"channel"`             // light: channel index; -1 for heavy
	Length    int            `json:"length"`              // critical path under Assign
	TotalWork int64          `json:"total_work"`          // sequential execution time
	Work      []int64        `json:"work"`                // per-type work
	Energy    int64          `json:"energy"`              // HAP cost of Assign
	Response  int            `json:"response"`            // proven response-time bound
}

// Verdict is the outcome of an admission test: whether the set fits,
// per-task placements when it does, the FU instances actually consumed, a
// reason when it does not, and how trustworthy the per-task operating
// points are (exact frontier, heuristic ladder, or timeout-degraded).
type Verdict struct {
	Admitted   bool        `json:"admitted"`
	Placements []Placement `json:"placements,omitempty"`
	// Channels lists, per shared channel, the member task indices in
	// priority order (deadline-monotonic).
	Channels [][]int `json:"channels,omitempty"`
	// Used counts the FU instances consumed per type (dedicated partitions
	// plus one per channel-owned type).
	Used    Config `json:"used,omitempty"`
	Reason  string `json:"reason,omitempty"`
	Quality hap.Quality `json:"quality"`
}
