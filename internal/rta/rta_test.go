package rta

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
	"hetsynth/internal/hap"
)

// parGraph builds n independent nodes (maximal parallelism, no edges).
func parGraph(n int) *dfg.Graph {
	g := dfg.New()
	for i := 0; i < n; i++ {
		g.MustAddNode(fmt.Sprintf("n%d", i), "op")
	}
	return g
}

// uniTask wraps a graph with a uniform table into a periodic task.
func uniTask(name string, g *dfg.Graph, times []int, costs []int64, period, dl int) Task {
	return Task{Name: name, Graph: g, Table: fu.UniformTable(g.N(), times, costs), Period: period, Deadline: dl}
}

func mustDemand(t *testing.T, task Task, a hap.Assignment) *demand {
	t.Helper()
	d, err := newDemand(task, a)
	if err != nil {
		t.Fatalf("newDemand: %v", err)
	}
	return d
}

func TestValidate(t *testing.T) {
	if err := TaskSet(nil).Validate(); err != ErrNoTasks {
		t.Fatalf("empty set: got %v, want ErrNoTasks", err)
	}
	ok := uniTask("a", dfg.Chain(3), []int{2}, []int64{1}, 20, 10)
	cases := []struct {
		name string
		set  TaskSet
		want string
	}{
		{"bad instance", TaskSet{{Name: "x", Graph: dfg.Chain(2), Table: fu.UniformTable(3, []int{1}, []int64{1}), Period: 10}}, "task 0"},
		{"mixed K", TaskSet{ok, uniTask("b", dfg.Chain(2), []int{1, 2}, []int64{2, 1}, 10, 10)}, "FU types"},
		{"bad period", TaskSet{{Name: "p", Graph: ok.Graph, Table: ok.Table, Period: 0}}, "deadline"},
		{"huge period", TaskSet{{Name: "p", Graph: ok.Graph, Table: ok.Table, Period: maxHorizon + 1, Deadline: 5}}, "period"},
		{"deadline past period", TaskSet{{Name: "d", Graph: ok.Graph, Table: ok.Table, Period: 10, Deadline: 11}}, "constrained"},
	}
	for _, tc := range cases {
		err := tc.set.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want substring %q", tc.name, err, tc.want)
		}
	}
	if err := (TaskSet{ok}).Validate(); err != nil {
		t.Fatalf("valid set rejected: %v", err)
	}
	big := make(TaskSet, maxTasks+1)
	for i := range big {
		big[i] = ok
	}
	if err := big.Validate(); err == nil || !strings.Contains(err.Error(), "maximum") {
		t.Fatalf("oversize set: got %v", err)
	}
}

func TestValidateConfig(t *testing.T) {
	set := TaskSet{uniTask("a", dfg.Chain(2), []int{1}, []int64{1}, 10, 10)}
	if err := set.validateConfig(Config{1, 1}); err == nil {
		t.Fatal("width mismatch accepted")
	}
	if err := set.validateConfig(Config{-1}); err == nil {
		t.Fatal("negative count accepted")
	}
	if err := set.validateConfig(Config{MaxPartition*maxTasks + 1}); err == nil {
		t.Fatal("oversized count accepted")
	}
	if err := set.validateConfig(Config{3}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestConfigHelpers(t *testing.T) {
	c := Config{2, 0, 3}
	if c.Total() != 5 {
		t.Fatalf("Total = %d, want 5", c.Total())
	}
	d := c.Clone()
	d[0] = 9
	if c[0] != 2 {
		t.Fatal("Clone aliases the original")
	}
}

func TestRelDeadline(t *testing.T) {
	if got := (Task{Period: 7}).RelDeadline(); got != 7 {
		t.Fatalf("implicit deadline = %d, want 7", got)
	}
	if got := (Task{Period: 7, Deadline: 5}).RelDeadline(); got != 5 {
		t.Fatalf("explicit deadline = %d, want 5", got)
	}
}

// Single type, m=1: the bound degenerates to total sequential work.
// Single type, m FUs: Graham's W/m + (1−1/m)·L, rounded up.
func TestHeavyBound(t *testing.T) {
	task := uniTask("p", parGraph(4), []int{2}, []int64{1}, 100, 100)
	d := mustDemand(t, task, hap.Assignment{0, 0, 0, 0})
	if got := heavyBound(task, d, []int{1}); got != 8 {
		t.Fatalf("m=1: bound = %d, want 8 (total work)", got)
	}
	// m=2: W/m = 4, path = single node of 2 scaled by (1−1/2) = 1 → 5.
	if got := heavyBound(task, d, []int{2}); got != 5 {
		t.Fatalf("m=2: bound = %d, want 5", got)
	}
	// m=3: 8/3 + 2·(2/3) = 4 exactly.
	if got := heavyBound(task, d, []int{3}); got != 4 {
		t.Fatalf("m=3: bound = %d, want 4", got)
	}

	chain := uniTask("c", dfg.Chain(3), []int{4}, []int64{1}, 100, 100)
	dc := mustDemand(t, chain, hap.Assignment{0, 0, 0})
	// A chain gains nothing from parallelism but the bound stays sound:
	// m=2 gives 12/2 + 12·(1/2) = 12 = the serial length.
	if got := heavyBound(chain, dc, []int{2}); got != 12 {
		t.Fatalf("chain m=2: bound = %d, want 12", got)
	}
}

func TestChannelRTA(t *testing.T) {
	m1 := &member{task: 0, period: 10, dl: 10, c: 3, blk: 3}
	m2 := &member{task: 1, period: 20, dl: 20, c: 4, blk: 4}
	resp, ok := channelRTA([]*member{m1, m2})
	if !ok {
		t.Fatal("schedulable channel rejected")
	}
	// m1: own 3 + blocking 4 (one m2 node in flight) = 7.
	// m2: 4 + interference ceil((R+7)/10)·3 → fixed point 10.
	if resp[0] != 7 || resp[1] != 10 {
		t.Fatalf("responses = %v, want [7 10]", resp)
	}

	// Overload: two tasks each needing 8 of every 10 steps.
	h1 := &member{task: 0, period: 10, dl: 10, c: 8, blk: 8}
	h2 := &member{task: 1, period: 10, dl: 10, c: 8, blk: 8}
	if _, ok := channelRTA([]*member{h1, h2}); ok {
		t.Fatal("overloaded channel admitted")
	}
}

func TestPrioBefore(t *testing.T) {
	a := &member{task: 0, period: 10, dl: 5}
	b := &member{task: 1, period: 8, dl: 5}
	c := &member{task: 2, period: 10, dl: 6}
	if !prioBefore(a, c) || prioBefore(c, a) {
		t.Fatal("deadline order broken")
	}
	if !prioBefore(b, a) {
		t.Fatal("period tiebreak broken")
	}
	if !prioBefore(a, &member{task: 3, period: 10, dl: 5}) {
		t.Fatal("index tiebreak broken")
	}
}

func TestWorseQuality(t *testing.T) {
	if q := worseQuality(hap.QualityExact, hap.QualityHeuristic); q != hap.QualityHeuristic {
		t.Fatalf("got %v", q)
	}
	if q := worseQuality(hap.QualityTimeout, hap.QualityHeuristic); q != hap.QualityTimeout {
		t.Fatalf("got %v", q)
	}
	if q := worseQuality(hap.QualityExact, hap.QualityExact); q != hap.QualityExact {
		t.Fatalf("got %v", q)
	}
}

func TestSampleFrontier(t *testing.T) {
	front := make([]hap.FrontierPoint, 10)
	for i := range front {
		front[i] = hap.FrontierPoint{Deadline: i, Cost: int64(100 - i)}
	}
	picks := sampleFrontier(front, 4)
	if len(picks) != 4 || picks[0].Deadline != 0 || picks[3].Deadline != 9 {
		t.Fatalf("picks = %v", picks)
	}
	if got := sampleFrontier(front[:3], 4); len(got) != 3 {
		t.Fatalf("small frontier resampled: %v", got)
	}
}

// Two light tasks share one channel and one FU instance.
func TestAdmitLightSharing(t *testing.T) {
	set := TaskSet{
		uniTask("a", dfg.Chain(2), []int{2}, []int64{1}, 20, 10),
		uniTask("b", dfg.Chain(2), []int{2}, []int64{1}, 20, 20),
	}
	v, err := Admit(context.Background(), set, Config{1}, Options{})
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	if !v.Admitted {
		t.Fatalf("rejected: %s", v.Reason)
	}
	if len(v.Channels) != 1 || len(v.Channels[0]) != 2 {
		t.Fatalf("channels = %v, want one channel with both tasks", v.Channels)
	}
	if !reflect.DeepEqual(v.Used, Config{1}) {
		t.Fatalf("used = %v, want [1]", v.Used)
	}
	for _, p := range v.Placements {
		if p.Heavy || p.Channel != 0 {
			t.Fatalf("placement %+v, want light on channel 0", p)
		}
		if p.Response > set[p.Task].RelDeadline() {
			t.Fatalf("task %d response %d beyond deadline", p.Task, p.Response)
		}
	}
	if v.Quality != hap.QualityExact {
		t.Fatalf("quality = %v, want exact", v.Quality)
	}
}

// A task whose sequential work misses the deadline goes heavy on a grown
// partition.
func TestAdmitHeavyGrowth(t *testing.T) {
	set := TaskSet{uniTask("wide", parGraph(4), []int{4}, []int64{1}, 8, 8)}
	v, err := Admit(context.Background(), set, Config{4}, Options{})
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	if !v.Admitted {
		t.Fatalf("rejected: %s", v.Reason)
	}
	p := v.Placements[0]
	if !p.Heavy || len(p.Partition) != 1 || p.Partition[0] < 2 {
		t.Fatalf("placement %+v, want heavy with a grown partition", p)
	}
	if p.Response > 8 {
		t.Fatalf("response %d beyond deadline 8", p.Response)
	}
	if v.Used[0] != p.Partition[0] {
		t.Fatalf("used %v does not match partition %v", v.Used, p.Partition)
	}
	// The same task cannot fit on a single FU.
	v, err = Admit(context.Background(), set, Config{1}, Options{})
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	if v.Admitted {
		t.Fatal("16 steps of work admitted against deadline 8 on one FU")
	}
	if !strings.Contains(v.Reason, "does not fit") {
		t.Fatalf("reason = %q", v.Reason)
	}
}

// A task infeasible at any speed is reported by name, not as capacity.
func TestAdmitInfeasibleTask(t *testing.T) {
	set := TaskSet{uniTask("slow", dfg.Chain(4), []int{5}, []int64{1}, 10, 10)}
	v, err := Admit(context.Background(), set, Config{8}, Options{})
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	if v.Admitted || !strings.Contains(v.Reason, "infeasible") {
		t.Fatalf("verdict %+v, want infeasible rejection", v)
	}
}

func TestAdmitErrors(t *testing.T) {
	set := TaskSet{uniTask("a", dfg.Chain(2), []int{1}, []int64{1}, 10, 10)}
	if _, err := Admit(context.Background(), nil, Config{1}, Options{}); err != ErrNoTasks {
		t.Fatalf("empty set: %v", err)
	}
	if _, err := Admit(context.Background(), set, Config{1, 2}, Options{}); err == nil {
		t.Fatal("config width mismatch accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Admit(ctx, set, Config{1}, Options{}); err == nil {
		t.Fatal("dead context accepted")
	}
}

func TestAdmitDeterministic(t *testing.T) {
	set := TaskSet{
		uniTask("a", dfg.Chain(3), []int{1, 2}, []int64{4, 1}, 16, 16),
		uniTask("b", parGraph(3), []int{2, 3}, []int64{4, 1}, 12, 12),
		uniTask("c", dfg.Chain(2), []int{1, 3}, []int64{5, 2}, 8, 8),
	}
	v1, err := Admit(context.Background(), set, Config{2, 2}, Options{})
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	v2, err := Admit(context.Background(), set, Config{2, 2}, Options{})
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	if !reflect.DeepEqual(v1, v2) {
		t.Fatalf("verdicts differ:\n%+v\n%+v", v1, v2)
	}
}

func TestCheapestConfig(t *testing.T) {
	set := TaskSet{
		uniTask("a", dfg.Chain(2), []int{2, 4}, []int64{4, 1}, 16, 16),
		uniTask("b", parGraph(4), []int{2, 4}, []int64{4, 1}, 10, 10),
	}
	res, err := CheapestConfig(context.Background(), set, SearchOptions{Prices: []int64{5, 2}}, Options{})
	if err != nil {
		t.Fatalf("CheapestConfig: %v", err)
	}
	if !res.Found {
		t.Fatalf("no configuration found: %s", res.Reason)
	}
	if !res.Verdict.Admitted {
		t.Fatal("winning configuration's verdict not admitted")
	}
	if res.Steps < 2 {
		t.Fatalf("steps = %d, want at least the full probe plus one descent", res.Steps)
	}
	if want := configPrice(res.Config, []int64{5, 2}); res.Price != want {
		t.Fatalf("price = %d, want %d", res.Price, want)
	}
	// Local minimality: no single instance can be removed.
	for k := range res.Config {
		if res.Config[k] == 0 {
			continue
		}
		trial := res.Config.Clone()
		trial[k]--
		v, err := Admit(context.Background(), set, trial, Options{})
		if err != nil {
			t.Fatalf("Admit probe: %v", err)
		}
		if v.Admitted {
			t.Fatalf("config %v is not locally minimal: %v still admits", res.Config, trial)
		}
	}
}

func TestCheapestConfigRejects(t *testing.T) {
	// Infeasible task: even the full configuration rejects.
	set := TaskSet{uniTask("slow", dfg.Chain(4), []int{5}, []int64{1}, 10, 10)}
	res, err := CheapestConfig(context.Background(), set, SearchOptions{}, Options{})
	if err != nil {
		t.Fatalf("CheapestConfig: %v", err)
	}
	if res.Found || !strings.Contains(res.Reason, "no admissible configuration") {
		t.Fatalf("result %+v, want not-found with reason", res)
	}
	ok := TaskSet{uniTask("a", dfg.Chain(2), []int{1}, []int64{1}, 10, 10)}
	if _, err := CheapestConfig(context.Background(), ok, SearchOptions{Prices: []int64{1, 2}}, Options{}); err == nil {
		t.Fatal("price width mismatch accepted")
	}
	if _, err := CheapestConfig(context.Background(), ok, SearchOptions{Prices: []int64{-1}}, Options{}); err == nil {
		t.Fatal("negative price accepted")
	}
	if _, err := CheapestConfig(context.Background(), ok, SearchOptions{MaxPerType: MaxPartition + 1}, Options{}); err == nil {
		t.Fatal("oversized max_per_type accepted")
	}
}

func TestCheapestConfigAnytime(t *testing.T) {
	set := TaskSet{
		uniTask("a", dfg.Chain(2), []int{2, 4}, []int64{4, 1}, 16, 16),
		uniTask("b", parGraph(4), []int{2, 4}, []int64{4, 1}, 10, 10),
	}
	pr, err := prepare(context.Background(), set, Options{})
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	_ = pr
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		// Cancel after prepare; the descent then stops with best-so-far.
		cancel()
	}()
	res, err := CheapestConfig(ctx, set, SearchOptions{}, Options{})
	if err != nil {
		// The context may die before prepare finishes; that path errors.
		return
	}
	if res.Found && res.Quality != hap.QualityTimeout && !res.Verdict.Admitted {
		t.Fatalf("anytime result inconsistent: %+v", res)
	}
}

func TestTypesByPriceDesc(t *testing.T) {
	got := typesByPriceDesc([]int64{3, 9, 9, 1})
	want := []int{1, 2, 0, 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
}

// General (non-forest) DFGs go through the anytime ladder.
func TestLadderCandidates(t *testing.T) {
	g := dfg.New()
	a := g.MustAddNode("a", "op")
	b := g.MustAddNode("b", "op")
	c := g.MustAddNode("c", "op")
	d := g.MustAddNode("d", "op")
	g.MustAddEdge(a, b, 0)
	g.MustAddEdge(a, c, 0)
	g.MustAddEdge(b, d, 0)
	g.MustAddEdge(c, d, 0) // diamond: two preds at d → not a forest
	if g.IsOutForest() || g.IsInForest() {
		t.Fatal("diamond classified as forest")
	}
	task := Task{Name: "dia", Graph: g, Table: fu.UniformTable(4, []int{1, 2}, []int64{3, 1}), Period: 12, Deadline: 12}
	set := TaskSet{task}
	v, err := Admit(context.Background(), set, Config{1, 1}, Options{})
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	if !v.Admitted {
		t.Fatalf("diamond task rejected: %s", v.Reason)
	}
	// Infeasible general DFG: zero candidates, named rejection.
	tight := Task{Name: "tight", Graph: g, Table: fu.UniformTable(4, []int{5, 6}, []int64{3, 1}), Period: 10, Deadline: 10}
	v, err = Admit(context.Background(), TaskSet{tight}, Config{1, 1}, Options{})
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	if v.Admitted || !strings.Contains(v.Reason, "infeasible") {
		t.Fatalf("verdict %+v, want infeasible rejection", v)
	}
}
