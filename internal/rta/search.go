package rta

import (
	"context"
	"fmt"

	"hetsynth/internal/hap"
)

// maxPrice caps per-instance FU prices so summed configuration prices stay
// far from int64 overflow.
const maxPrice = int64(1) << 40

// SearchOptions tunes the cheapest-configuration search.
type SearchOptions struct {
	// Prices gives the per-instance price of each FU type; nil means every
	// instance costs 1 (the search then minimizes total FU count).
	Prices []int64
	// MaxPerType caps the FU instances per type the search may propose
	// (default 8, at most MaxPartition).
	MaxPerType int
}

// SearchResult is the outcome of a cheapest-configuration search.
type SearchResult struct {
	// Found reports whether any configuration within MaxPerType admits the
	// set; when false, Reason says why (Verdict holds the last rejection).
	Found bool
	// Config is the cheapest admitting configuration found; its Verdict has
	// the placements.
	Config  Config
	Price   int64
	Verdict Verdict
	// Steps counts admission probes — the search-effort measure surfaced in
	// metrics and responses.
	Steps int
	// Quality is the weakest per-task solve quality encountered, degraded
	// to timeout when the budget expired before the greedy descent
	// finished (the result is then the best configuration found so far).
	Quality hap.Quality
	Reason  string
}

// CheapestConfig finds a locally minimal-price FU configuration that admits
// the task set: it starts from the full configuration (MaxPerType instances
// of every type), verifies admissibility, then greedily removes one FU
// instance at a time — most expensive types first — keeping every removal
// that still admits the set, until no single removal does. Candidate
// operating points are prepared once and shared across all probes, so each
// probe costs only placement work. Complexity: O(K·MaxPerType) admission
// probes in the worst case, each O(tasks² · candidates · RTA). Under a
// context deadline the search is anytime: it returns the best (cheapest)
// admitting configuration found before the budget expired, with Quality
// timeout. The error is non-nil only for malformed input or a context that
// died before any complete probe.
func CheapestConfig(ctx context.Context, set TaskSet, so SearchOptions, opts Options) (SearchResult, error) {
	pr, err := prepare(ctx, set, opts)
	if err != nil {
		return SearchResult{}, err
	}
	k := set.K()
	prices := so.Prices
	if prices == nil {
		prices = make([]int64, k)
		for i := range prices {
			prices[i] = 1
		}
	}
	if len(prices) != k {
		return SearchResult{}, fmt.Errorf("rta: %d prices for %d FU types", len(prices), k)
	}
	for i, p := range prices {
		if p < 0 || p > maxPrice {
			return SearchResult{}, fmt.Errorf("rta: price %d for type %d out of range [0, %d]", p, i, maxPrice)
		}
	}
	maxPer := so.MaxPerType
	if maxPer == 0 {
		maxPer = 8
	}
	if maxPer < 1 || maxPer > MaxPartition {
		return SearchResult{}, fmt.Errorf("rta: max_per_type %d out of range [1, %d]", maxPer, MaxPartition)
	}

	full := make(Config, k)
	for i := range full {
		full[i] = maxPer
	}
	res := SearchResult{Quality: pr.quality}
	v := pr.admit(full)
	res.Steps++
	if !v.Admitted {
		res.Verdict = v
		res.Reason = "no admissible configuration within max_per_type: " + v.Reason
		return res, nil
	}
	res.Found = true
	res.Config = full
	res.Verdict = v

	// Greedy descent: drop the priciest droppable instance, restart.
	improved := true
	for improved {
		improved = false
		for _, ky := range typesByPriceDesc(prices) {
			if res.Config[ky] == 0 {
				continue
			}
			if ctx.Err() != nil {
				res.Quality = hap.QualityTimeout
				res.Price = configPrice(res.Config, prices)
				return res, nil
			}
			trial := res.Config.Clone()
			trial[ky]--
			tv := pr.admit(trial)
			res.Steps++
			if tv.Admitted {
				res.Config = trial
				res.Verdict = tv
				improved = true
				break
			}
		}
	}
	res.Price = configPrice(res.Config, prices)
	return res, nil
}

// typesByPriceDesc orders type indices most expensive first (ties: lower
// index first), the order the greedy descent tries removals in.
func typesByPriceDesc(prices []int64) []int {
	order := make([]int, len(prices))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ { // insertion sort: K is small
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			if prices[b] > prices[a] || (prices[b] == prices[a] && b < a) {
				order[j-1], order[j] = b, a
			} else {
				break
			}
		}
	}
	return order
}

// configPrice sums the instance prices of a configuration.
func configPrice(cfg Config, prices []int64) int64 {
	var total int64
	for k, m := range cfg {
		total += int64(m) * prices[k]
	}
	return total
}
