package rtl

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"hetsynth/internal/benchdfg"
	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
	"hetsynth/internal/hap"
	"hetsynth/internal/sched"
)

func synth(t testing.TB, g *dfg.Graph, seed int64, slack int) (*fu.Table, *sched.Schedule, sched.Config) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tab := fu.RandomTable(rng, g.N(), 3)
	min, err := hap.MinMakespan(g, tab)
	if err != nil {
		t.Fatal(err)
	}
	p := hap.Problem{Graph: g, Table: tab, Deadline: min + slack}
	sol, err := hap.AssignRepeat(p)
	if err != nil {
		t.Fatal(err)
	}
	s, cfg, err := sched.MinRSchedule(g, tab, sol.Assign, p.Deadline)
	if err != nil {
		t.Fatal(err)
	}
	return tab, s, cfg
}

func TestEmitDiffEqModule(t *testing.T) {
	g := benchdfg.DiffEq()
	_, s, cfg := synth(t, g, 1, 4)
	lib := fu.StandardLibrary()
	v, err := Emit(g, lib, s, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"module hetsynth_core #(",
		"parameter W = 16",
		"input  wire clk",
		"input  wire [W-1:0] in_ld_u",  // root
		"output reg  [W-1:0] out_sub2", // u' leaf
		"output reg  [W-1:0] out_cmp",  // comparison leaf
		"case (step)",
		"endmodule",
		"FU allocation",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("emitted Verilog missing %q", want)
		}
	}
	// The shared u·dx (mul2) must appear as a multiplication.
	if !strings.Contains(v, "*") {
		t.Error("no multiplication emitted")
	}
	// Balanced structure.
	if strings.Count(v, "begin") != strings.Count(v, "end")-strings.Count(v, "endcase")-strings.Count(v, "endmodule") {
		t.Errorf("begin/end imbalance: %d begin, %d end",
			strings.Count(v, "begin"), strings.Count(v, "end"))
	}
}

func TestEmitOptions(t *testing.T) {
	g := dfg.Chain(3)
	tab := fu.UniformTable(3, []int{1}, []int64{1})
	s, cfg, err := sched.MinRSchedule(g, tab, make(hap.Assignment, 3), 3)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Emit(g, nil, s, cfg, Options{ModuleName: "fir_core", Width: 24})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(v, "module fir_core") || !strings.Contains(v, "parameter W = 24") {
		t.Fatalf("options ignored:\n%s", v)
	}
}

func TestEmitLoopCarriedState(t *testing.T) {
	// s = in + k*s@1: the add's value crosses iterations, so a state
	// register must exist and feed the multiply.
	g := dfg.New()
	m := g.MustAddNode("mul1", "mul")
	a := g.MustAddNode("add1", "add")
	g.MustAddEdge(m, a, 0)
	g.MustAddEdge(a, m, 1)
	tab := fu.UniformTable(2, []int{1}, []int64{1})
	s, cfg, err := sched.MinRSchedule(g, tab, make(hap.Assignment, 2), 2)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Emit(g, nil, s, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(v, "state_add1") {
		t.Fatalf("loop-carried state register missing:\n%s", v)
	}
	if !strings.Contains(v, "state_add1 <=") {
		t.Fatalf("state register never written:\n%s", v)
	}
}

func TestEmitRejectsInvalidSchedule(t *testing.T) {
	g := dfg.Chain(2)
	bad := &sched.Schedule{
		Assign: make(hap.Assignment, 2), Start: []int{1, 1},
		Times: []int{1, 1}, Instance: []int{0, 0}, Length: 1,
	}
	if _, err := Emit(g, nil, bad, sched.Config{1}, Options{}); err == nil {
		t.Fatal("overlapping schedule accepted")
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("u'"); got != "u_" {
		t.Errorf("sanitize(u') = %q", got)
	}
	if got := sanitize("a-b.c"); got != "a_b_c" {
		t.Errorf("sanitize = %q", got)
	}
}

// TestEmitStructuralInvariants: whatever the flow synthesizes, the emitted
// module mentions every output leaf and assigns every value register.
func TestEmitStructuralInvariants(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		g := dfg.RandomDAG(rng, n, 0.3)
		tab := fu.RandomTable(rng, n, 2)
		min, err := hap.MinMakespan(g, tab)
		if err != nil {
			return false
		}
		p := hap.Problem{Graph: g, Table: tab, Deadline: min + rng.Intn(4)}
		sol, err := hap.AssignRepeat(p)
		if err != nil {
			return false
		}
		s, cfg, err := sched.MinRSchedule(g, tab, sol.Assign, p.Deadline)
		if err != nil {
			return false
		}
		v, err := Emit(g, nil, s, cfg, Options{})
		if err != nil {
			return false
		}
		for _, leaf := range g.Leaves() {
			if !strings.Contains(v, "out_"+sanitize(g.Node(leaf).Name)+" <=") {
				return false
			}
		}
		_, regs, err := sched.BindRegisters(g, s)
		if err != nil {
			return false
		}
		for r := 0; r < regs; r++ {
			if !strings.Contains(v, "r"+itoa(r)+" <=") {
				return false
			}
		}
		return strings.Contains(v, "endmodule")
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}
