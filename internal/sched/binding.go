package sched

import (
	"fmt"
	"sort"

	"hetsynth/internal/dfg"
)

// ValueBinding records where the value produced by one node lives.
type ValueBinding struct {
	Producer dfg.NodeID
	Register int // register index assigned by BindRegisters
	Birth    int // first step the value is available (producer finish + 1)
	Death    int // last step some consumer still needs it
}

// BindRegisters allocates one register to every live value of a
// non-overlapped schedule using the left-edge algorithm, the classical
// register-binding companion of the Ito–Parhi register-minimization metric:
// values are sorted by birth step and each takes the lowest-indexed
// register free at that step. For non-overlapped execution (initiation
// interval >= every lifetime) the left-edge allocation is optimal, so the
// register count equals RegisterDemand(g, s, ii) for large ii.
//
// Values never consumed (primary outputs handled outside the loop body)
// get no binding. The bindings are returned sorted by birth step, together
// with the number of registers used.
func BindRegisters(g *dfg.Graph, s *Schedule) ([]ValueBinding, int, error) {
	n := g.N()
	if len(s.Start) != n || len(s.Times) != n {
		return nil, 0, fmt.Errorf("sched: schedule does not cover the graph")
	}
	var values []ValueBinding
	for v := 0; v < n; v++ {
		vid := dfg.NodeID(v)
		birth := s.Finish(vid) + 1
		death := -1
		for _, e := range g.Edges() {
			if e.From != vid {
				continue
			}
			// Within one iteration only: delayed consumers are fed through
			// the delay line registers counted by RegisterDemand, not by
			// this single-iteration binding.
			if e.Delays != 0 {
				continue
			}
			if need := s.Start[e.To]; need > death {
				death = need
			}
		}
		if death < birth {
			continue
		}
		values = append(values, ValueBinding{Producer: vid, Birth: birth, Death: death})
	}
	sort.Slice(values, func(i, j int) bool {
		if values[i].Birth != values[j].Birth {
			return values[i].Birth < values[j].Birth
		}
		return values[i].Producer < values[j].Producer
	})
	var regFree []int // per register: first step it is free again
	for i := range values {
		placed := false
		for r := range regFree {
			if regFree[r] <= values[i].Birth {
				values[i].Register = r
				regFree[r] = values[i].Death + 1
				placed = true
				break
			}
		}
		if !placed {
			values[i].Register = len(regFree)
			regFree = append(regFree, values[i].Death+1)
		}
	}
	return values, len(regFree), nil
}
