package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
	"hetsynth/internal/hap"
)

func TestBindRegistersChain(t *testing.T) {
	g := dfg.Chain(3)
	tab := fu.UniformTable(3, []int{1}, []int64{1})
	s, _, err := MinRSchedule(g, tab, make(hap.Assignment, 3), 3)
	if err != nil {
		t.Fatal(err)
	}
	vals, regs, err := BindRegisters(g, s)
	if err != nil {
		t.Fatal(err)
	}
	// Two values (v1->v2, v2->v3) with disjoint lifetimes: one register.
	if regs != 1 {
		t.Fatalf("registers = %d, want 1 (%+v)", regs, vals)
	}
	if len(vals) != 2 {
		t.Fatalf("%d values, want 2", len(vals))
	}
}

func TestBindRegistersFanOutNeedsTwo(t *testing.T) {
	g := dfg.New()
	a := g.MustAddNode("a", "")
	b := g.MustAddNode("b", "")
	c := g.MustAddNode("c", "")
	g.MustAddEdge(a, b, 0)
	g.MustAddEdge(a, c, 0)
	g.MustAddEdge(b, c, 0)
	tab := fu.UniformTable(3, []int{1}, []int64{1})
	s, _, err := MinRSchedule(g, tab, make(hap.Assignment, 3), 3)
	if err != nil {
		t.Fatal(err)
	}
	_, regs, err := BindRegisters(g, s)
	if err != nil {
		t.Fatal(err)
	}
	if regs != 2 {
		t.Fatalf("registers = %d, want 2", regs)
	}
}

func TestBindRegistersValidatesInput(t *testing.T) {
	g := dfg.Chain(2)
	if _, _, err := BindRegisters(g, &Schedule{Start: []int{1}}); err == nil {
		t.Fatal("short schedule accepted")
	}
}

// TestBindRegistersMatchesDemandNonOverlapped: for a non-overlapped
// repetition long enough that lifetimes never wrap, left-edge register
// count equals the RegisterDemand bound restricted to intra-iteration
// values (no delayed edges in these graphs).
func TestBindRegistersMatchesDemandNonOverlapped(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		g := dfg.RandomDAG(rng, n, 0.3)
		tab := fu.RandomTable(rng, n, 2)
		a := make(hap.Assignment, n)
		for v := range a {
			a[v] = fu.TypeID(rng.Intn(2))
		}
		length, _, err := g.LongestPath(hap.Times(tab, a))
		if err != nil {
			return false
		}
		s, _, err := MinRSchedule(g, tab, a, length+2)
		if err != nil {
			return false
		}
		vals, regs, err := BindRegisters(g, s)
		if err != nil {
			return false
		}
		// No binding may overlap another in the same register.
		for i := range vals {
			for j := i + 1; j < len(vals); j++ {
				if vals[i].Register != vals[j].Register {
					continue
				}
				if vals[i].Birth <= vals[j].Death && vals[j].Birth <= vals[i].Death {
					return false
				}
			}
		}
		// Left-edge is optimal: count equals max simultaneous liveness,
		// which for an II beyond all lifetimes equals RegisterDemand.
		demand, err := RegisterDemand(g, s, 4*s.Length+8)
		if err != nil {
			return false
		}
		return regs == demand
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
