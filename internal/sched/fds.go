package sched

import (
	"fmt"
	"math"

	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
	"hetsynth/internal/hap"
)

// ForceDirected implements force-directed scheduling after Paulin and
// Knight ("Force-directed scheduling for the behavioral synthesis of
// ASICs", reference [15] of the paper): a time-constrained scheduler that
// balances the expected concurrency of each FU type across control steps,
// which tends to minimize the number of FU instances the schedule needs.
//
// Each unscheduled node has a mobility window [ASAP, ALAP]. Assuming a
// uniform distribution over the window, the type-t distribution graph
// DG_t(s) sums, over type-t nodes, the probability of executing in step s.
// Fixing node v at start step a changes v's distribution from spread to
// concentrated; the self force is
//
//	sum_s DG_t(s) · (p_fixed(s) − p_spread(s))
//
// and fixing v also narrows the windows of its predecessors/successors,
// whose distribution changes are charged the same way (implied forces).
// The algorithm repeatedly commits the (node, step) pair with the lowest
// total force until everything is fixed, then packs nodes onto concrete FU
// instances with the left-edge algorithm. The resulting configuration is
// exactly the per-step concurrency maximum of the final schedule.
//
// ForceDirected is an alternative to MinRSchedule; the ablation benchmarks
// compare the configurations the two produce.
func ForceDirected(g *dfg.Graph, tab *fu.Table, assign hap.Assignment, L int) (*Schedule, Config, error) {
	times := hap.Times(tab, assign)
	asap, length, err := ASAP(g, times)
	if err != nil {
		return nil, nil, err
	}
	if length > L {
		return nil, nil, fmt.Errorf("%w: ASAP length %d exceeds deadline %d", hap.ErrInfeasible, length, L)
	}
	alap, err := ALAP(g, times, L)
	if err != nil {
		return nil, nil, err
	}

	n := g.N()
	k := tab.K()
	lo := append([]int(nil), asap...) // current earliest start per node
	hi := append([]int(nil), alap...) // current latest start per node
	fixed := make([]bool, n)

	// distributions returns DG[t][s] for the given windows.
	distributions := func(lo, hi []int) [][]float64 {
		dg := make([][]float64, k)
		for t := range dg {
			dg[t] = make([]float64, L+2)
		}
		for v := 0; v < n; v++ {
			w := hi[v] - lo[v] + 1
			p := 1.0 / float64(w)
			t := assign[v]
			for start := lo[v]; start <= hi[v]; start++ {
				for s := start; s < start+times[v] && s <= L; s++ {
					dg[t][s] += p
				}
			}
		}
		return dg
	}

	// propagate tightens every window after lo/hi changed for one node,
	// forward for earliest starts and backward for latest starts. It
	// reports false if some window empties (the tentative fix is illegal —
	// cannot happen for starts inside the current window, but guard).
	order, err := g.TopoOrder()
	if err != nil {
		return nil, nil, err
	}
	propagate := func(lo, hi []int) bool {
		for _, v := range order {
			for _, u := range g.Pred(v) {
				if e := lo[u] + times[u]; e > lo[v] {
					lo[v] = e
				}
			}
		}
		for i := len(order) - 1; i >= 0; i-- {
			v := order[i]
			for _, w := range g.Succ(v) {
				if l := hi[w] - times[v]; l < hi[v] {
					hi[v] = l
				}
			}
		}
		for v := 0; v < n; v++ {
			if lo[v] > hi[v] {
				return false
			}
		}
		return true
	}
	if !propagate(lo, hi) {
		return nil, nil, fmt.Errorf("%w: empty mobility window", hap.ErrInfeasible)
	}

	// force charges the distribution change from oldDG to newDG.
	force := func(oldDG, newDG [][]float64) float64 {
		f := 0.0
		for t := 0; t < k; t++ {
			for s := 1; s <= L; s++ {
				f += oldDG[t][s] * (newDG[t][s] - oldDG[t][s])
			}
		}
		return f
	}

	for remaining := n; remaining > 0; remaining-- {
		baseDG := distributions(lo, hi)
		bestV, bestStart := -1, 0
		bestForce := math.Inf(1)
		for v := 0; v < n; v++ {
			if fixed[v] {
				continue
			}
			for start := lo[v]; start <= hi[v]; start++ {
				lo2 := append([]int(nil), lo...)
				hi2 := append([]int(nil), hi...)
				lo2[v], hi2[v] = start, start
				if !propagate(lo2, hi2) {
					continue
				}
				f := force(baseDG, distributions(lo2, hi2))
				if f < bestForce || (f == bestForce && (bestV < 0 || v < bestV)) {
					bestForce, bestV, bestStart = f, v, start
				}
			}
		}
		if bestV < 0 {
			return nil, nil, fmt.Errorf("sched: internal error: no feasible fix found")
		}
		lo[bestV], hi[bestV] = bestStart, bestStart
		fixed[bestV] = true
		if !propagate(lo, hi) {
			return nil, nil, fmt.Errorf("sched: internal error: committed fix emptied a window")
		}
	}

	s := &Schedule{
		Assign:   assign.Clone(),
		Start:    lo,
		Times:    times,
		Instance: make([]int, n),
	}
	for v := 0; v < n; v++ {
		if f := lo[v] + times[v] - 1; f > s.Length {
			s.Length = f
		}
	}
	cfg := packInstances(g, s, k)
	if err := ValidateSchedule(g, s, cfg, L); err != nil {
		return nil, nil, fmt.Errorf("sched: internal error: %w", err)
	}
	return s, cfg, nil
}

// packInstances assigns concrete FU instances to the scheduled nodes with
// the left-edge algorithm (per type, sweep by start step and reuse the
// first instance free at that step) and returns the per-type instance
// counts.
func packInstances(g *dfg.Graph, s *Schedule, k int) Config {
	cfg := make(Config, k)
	type item struct{ v, start, finish int }
	byType := make([][]item, k)
	for v := 0; v < g.N(); v++ {
		t := s.Assign[v]
		byType[t] = append(byType[t], item{v: v, start: s.Start[v], finish: s.Finish(dfg.NodeID(v))})
	}
	for t := 0; t < k; t++ {
		items := byType[t]
		for i := 1; i < len(items); i++ { // insertion sort by start
			for j := i; j > 0 && (items[j-1].start > items[j].start ||
				(items[j-1].start == items[j].start && items[j-1].v > items[j].v)); j-- {
				items[j-1], items[j] = items[j], items[j-1]
			}
		}
		var instBusy []int // per instance: last occupied step
		for _, it := range items {
			placed := false
			for i := range instBusy {
				if instBusy[i] < it.start {
					instBusy[i] = it.finish
					s.Instance[it.v] = i
					placed = true
					break
				}
			}
			if !placed {
				instBusy = append(instBusy, it.finish)
				s.Instance[it.v] = len(instBusy) - 1
			}
		}
		cfg[t] = len(instBusy)
	}
	return cfg
}
